# Empty compiler generated dependencies file for bench_fig4_fidelity_plus.
# This may be replaced when dependencies are built.
