file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_fidelity_plus.dir/bench_fig4_fidelity_plus.cc.o"
  "CMakeFiles/bench_fig4_fidelity_plus.dir/bench_fig4_fidelity_plus.cc.o.d"
  "bench_fig4_fidelity_plus"
  "bench_fig4_fidelity_plus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_fidelity_plus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
