# Empty dependencies file for bench_fig1_ambiguity.
# This may be replaced when dependencies are built.
