file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_ambiguity.dir/bench_fig1_ambiguity.cc.o"
  "CMakeFiles/bench_fig1_ambiguity.dir/bench_fig1_ambiguity.cc.o.d"
  "bench_fig1_ambiguity"
  "bench_fig1_ambiguity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_ambiguity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
