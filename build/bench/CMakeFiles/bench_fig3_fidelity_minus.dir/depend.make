# Empty dependencies file for bench_fig3_fidelity_minus.
# This may be replaced when dependencies are built.
