file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_fidelity_minus.dir/bench_fig3_fidelity_minus.cc.o"
  "CMakeFiles/bench_fig3_fidelity_minus.dir/bench_fig3_fidelity_minus.cc.o.d"
  "bench_fig3_fidelity_minus"
  "bench_fig3_fidelity_minus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_fidelity_minus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
