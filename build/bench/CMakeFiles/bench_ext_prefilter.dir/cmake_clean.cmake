file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_prefilter.dir/bench_ext_prefilter.cc.o"
  "CMakeFiles/bench_ext_prefilter.dir/bench_ext_prefilter.cc.o.d"
  "bench_ext_prefilter"
  "bench_ext_prefilter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_prefilter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
