# Empty compiler generated dependencies file for bench_ext_prefilter.
# This may be replaced when dependencies are built.
