file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_7_top_flows.dir/bench_table6_7_top_flows.cc.o"
  "CMakeFiles/bench_table6_7_top_flows.dir/bench_table6_7_top_flows.cc.o.d"
  "bench_table6_7_top_flows"
  "bench_table6_7_top_flows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_7_top_flows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
