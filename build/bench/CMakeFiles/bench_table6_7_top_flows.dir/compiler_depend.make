# Empty compiler generated dependencies file for bench_table6_7_top_flows.
# This may be replaced when dependencies are built.
