
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table6_7_top_flows.cc" "bench/CMakeFiles/bench_table6_7_top_flows.dir/bench_table6_7_top_flows.cc.o" "gcc" "bench/CMakeFiles/bench_table6_7_top_flows.dir/bench_table6_7_top_flows.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/revelio_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/revelio_core.dir/DependInfo.cmake"
  "/root/repo/build/src/explain/CMakeFiles/revelio_explain.dir/DependInfo.cmake"
  "/root/repo/build/src/datasets/CMakeFiles/revelio_datasets.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/revelio_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/gnn/CMakeFiles/revelio_gnn.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/revelio_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/revelio_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/revelio_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/revelio_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
