file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_visualization.dir/bench_fig6_visualization.cc.o"
  "CMakeFiles/bench_fig6_visualization.dir/bench_fig6_visualization.cc.o.d"
  "bench_fig6_visualization"
  "bench_fig6_visualization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_visualization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
