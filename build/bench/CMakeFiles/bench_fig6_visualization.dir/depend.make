# Empty dependencies file for bench_fig6_visualization.
# This may be replaced when dependencies are built.
