# Empty dependencies file for layers_extra_test.
# This may be replaced when dependencies are built.
