file(REMOVE_RECURSE
  "CMakeFiles/layers_extra_test.dir/layers_extra_test.cc.o"
  "CMakeFiles/layers_extra_test.dir/layers_extra_test.cc.o.d"
  "layers_extra_test"
  "layers_extra_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/layers_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
