file(REMOVE_RECURSE
  "CMakeFiles/revelio_test.dir/revelio_test.cc.o"
  "CMakeFiles/revelio_test.dir/revelio_test.cc.o.d"
  "revelio_test"
  "revelio_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/revelio_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
