# Empty compiler generated dependencies file for revelio_test.
# This may be replaced when dependencies are built.
