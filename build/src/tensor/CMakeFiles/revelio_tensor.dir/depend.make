# Empty dependencies file for revelio_tensor.
# This may be replaced when dependencies are built.
