file(REMOVE_RECURSE
  "CMakeFiles/revelio_tensor.dir/init.cc.o"
  "CMakeFiles/revelio_tensor.dir/init.cc.o.d"
  "CMakeFiles/revelio_tensor.dir/op_helpers.cc.o"
  "CMakeFiles/revelio_tensor.dir/op_helpers.cc.o.d"
  "CMakeFiles/revelio_tensor.dir/ops.cc.o"
  "CMakeFiles/revelio_tensor.dir/ops.cc.o.d"
  "CMakeFiles/revelio_tensor.dir/ops_index.cc.o"
  "CMakeFiles/revelio_tensor.dir/ops_index.cc.o.d"
  "CMakeFiles/revelio_tensor.dir/tensor.cc.o"
  "CMakeFiles/revelio_tensor.dir/tensor.cc.o.d"
  "librevelio_tensor.a"
  "librevelio_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/revelio_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
