file(REMOVE_RECURSE
  "librevelio_tensor.a"
)
