file(REMOVE_RECURSE
  "CMakeFiles/revelio_eval.dir/metrics.cc.o"
  "CMakeFiles/revelio_eval.dir/metrics.cc.o.d"
  "CMakeFiles/revelio_eval.dir/runner.cc.o"
  "CMakeFiles/revelio_eval.dir/runner.cc.o.d"
  "librevelio_eval.a"
  "librevelio_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/revelio_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
