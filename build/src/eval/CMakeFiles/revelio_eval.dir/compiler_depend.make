# Empty compiler generated dependencies file for revelio_eval.
# This may be replaced when dependencies are built.
