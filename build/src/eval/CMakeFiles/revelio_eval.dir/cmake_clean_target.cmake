file(REMOVE_RECURSE
  "librevelio_eval.a"
)
