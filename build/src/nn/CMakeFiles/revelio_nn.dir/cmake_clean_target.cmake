file(REMOVE_RECURSE
  "librevelio_nn.a"
)
