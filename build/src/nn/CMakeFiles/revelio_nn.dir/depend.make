# Empty dependencies file for revelio_nn.
# This may be replaced when dependencies are built.
