file(REMOVE_RECURSE
  "CMakeFiles/revelio_nn.dir/linear.cc.o"
  "CMakeFiles/revelio_nn.dir/linear.cc.o.d"
  "CMakeFiles/revelio_nn.dir/loss.cc.o"
  "CMakeFiles/revelio_nn.dir/loss.cc.o.d"
  "CMakeFiles/revelio_nn.dir/module.cc.o"
  "CMakeFiles/revelio_nn.dir/module.cc.o.d"
  "CMakeFiles/revelio_nn.dir/optimizer.cc.o"
  "CMakeFiles/revelio_nn.dir/optimizer.cc.o.d"
  "librevelio_nn.a"
  "librevelio_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/revelio_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
