file(REMOVE_RECURSE
  "librevelio_graph.a"
)
