file(REMOVE_RECURSE
  "CMakeFiles/revelio_graph.dir/batch.cc.o"
  "CMakeFiles/revelio_graph.dir/batch.cc.o.d"
  "CMakeFiles/revelio_graph.dir/dot_export.cc.o"
  "CMakeFiles/revelio_graph.dir/dot_export.cc.o.d"
  "CMakeFiles/revelio_graph.dir/graph.cc.o"
  "CMakeFiles/revelio_graph.dir/graph.cc.o.d"
  "CMakeFiles/revelio_graph.dir/subgraph.cc.o"
  "CMakeFiles/revelio_graph.dir/subgraph.cc.o.d"
  "librevelio_graph.a"
  "librevelio_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/revelio_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
