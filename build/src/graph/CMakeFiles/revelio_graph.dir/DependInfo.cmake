
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/batch.cc" "src/graph/CMakeFiles/revelio_graph.dir/batch.cc.o" "gcc" "src/graph/CMakeFiles/revelio_graph.dir/batch.cc.o.d"
  "/root/repo/src/graph/dot_export.cc" "src/graph/CMakeFiles/revelio_graph.dir/dot_export.cc.o" "gcc" "src/graph/CMakeFiles/revelio_graph.dir/dot_export.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/graph/CMakeFiles/revelio_graph.dir/graph.cc.o" "gcc" "src/graph/CMakeFiles/revelio_graph.dir/graph.cc.o.d"
  "/root/repo/src/graph/subgraph.cc" "src/graph/CMakeFiles/revelio_graph.dir/subgraph.cc.o" "gcc" "src/graph/CMakeFiles/revelio_graph.dir/subgraph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/revelio_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/revelio_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
