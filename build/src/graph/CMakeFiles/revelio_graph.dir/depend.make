# Empty dependencies file for revelio_graph.
# This may be replaced when dependencies are built.
