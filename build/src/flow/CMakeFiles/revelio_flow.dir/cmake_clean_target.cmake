file(REMOVE_RECURSE
  "librevelio_flow.a"
)
