file(REMOVE_RECURSE
  "CMakeFiles/revelio_flow.dir/flow_scores.cc.o"
  "CMakeFiles/revelio_flow.dir/flow_scores.cc.o.d"
  "CMakeFiles/revelio_flow.dir/message_flow.cc.o"
  "CMakeFiles/revelio_flow.dir/message_flow.cc.o.d"
  "librevelio_flow.a"
  "librevelio_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/revelio_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
