# Empty dependencies file for revelio_flow.
# This may be replaced when dependencies are built.
