
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flow/flow_scores.cc" "src/flow/CMakeFiles/revelio_flow.dir/flow_scores.cc.o" "gcc" "src/flow/CMakeFiles/revelio_flow.dir/flow_scores.cc.o.d"
  "/root/repo/src/flow/message_flow.cc" "src/flow/CMakeFiles/revelio_flow.dir/message_flow.cc.o" "gcc" "src/flow/CMakeFiles/revelio_flow.dir/message_flow.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gnn/CMakeFiles/revelio_gnn.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/revelio_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/revelio_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/revelio_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/revelio_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
