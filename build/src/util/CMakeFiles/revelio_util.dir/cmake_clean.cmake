file(REMOVE_RECURSE
  "CMakeFiles/revelio_util.dir/check.cc.o"
  "CMakeFiles/revelio_util.dir/check.cc.o.d"
  "CMakeFiles/revelio_util.dir/flags.cc.o"
  "CMakeFiles/revelio_util.dir/flags.cc.o.d"
  "CMakeFiles/revelio_util.dir/logging.cc.o"
  "CMakeFiles/revelio_util.dir/logging.cc.o.d"
  "CMakeFiles/revelio_util.dir/rng.cc.o"
  "CMakeFiles/revelio_util.dir/rng.cc.o.d"
  "CMakeFiles/revelio_util.dir/status.cc.o"
  "CMakeFiles/revelio_util.dir/status.cc.o.d"
  "CMakeFiles/revelio_util.dir/table_printer.cc.o"
  "CMakeFiles/revelio_util.dir/table_printer.cc.o.d"
  "librevelio_util.a"
  "librevelio_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/revelio_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
