file(REMOVE_RECURSE
  "librevelio_util.a"
)
