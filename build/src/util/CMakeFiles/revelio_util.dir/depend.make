# Empty dependencies file for revelio_util.
# This may be replaced when dependencies are built.
