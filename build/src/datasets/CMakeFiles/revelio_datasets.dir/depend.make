# Empty dependencies file for revelio_datasets.
# This may be replaced when dependencies are built.
