
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datasets/citation.cc" "src/datasets/CMakeFiles/revelio_datasets.dir/citation.cc.o" "gcc" "src/datasets/CMakeFiles/revelio_datasets.dir/citation.cc.o.d"
  "/root/repo/src/datasets/dataset.cc" "src/datasets/CMakeFiles/revelio_datasets.dir/dataset.cc.o" "gcc" "src/datasets/CMakeFiles/revelio_datasets.dir/dataset.cc.o.d"
  "/root/repo/src/datasets/generators.cc" "src/datasets/CMakeFiles/revelio_datasets.dir/generators.cc.o" "gcc" "src/datasets/CMakeFiles/revelio_datasets.dir/generators.cc.o.d"
  "/root/repo/src/datasets/molecules.cc" "src/datasets/CMakeFiles/revelio_datasets.dir/molecules.cc.o" "gcc" "src/datasets/CMakeFiles/revelio_datasets.dir/molecules.cc.o.d"
  "/root/repo/src/datasets/synthetic.cc" "src/datasets/CMakeFiles/revelio_datasets.dir/synthetic.cc.o" "gcc" "src/datasets/CMakeFiles/revelio_datasets.dir/synthetic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gnn/CMakeFiles/revelio_gnn.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/revelio_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/revelio_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/revelio_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/revelio_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
