file(REMOVE_RECURSE
  "CMakeFiles/revelio_datasets.dir/citation.cc.o"
  "CMakeFiles/revelio_datasets.dir/citation.cc.o.d"
  "CMakeFiles/revelio_datasets.dir/dataset.cc.o"
  "CMakeFiles/revelio_datasets.dir/dataset.cc.o.d"
  "CMakeFiles/revelio_datasets.dir/generators.cc.o"
  "CMakeFiles/revelio_datasets.dir/generators.cc.o.d"
  "CMakeFiles/revelio_datasets.dir/molecules.cc.o"
  "CMakeFiles/revelio_datasets.dir/molecules.cc.o.d"
  "CMakeFiles/revelio_datasets.dir/synthetic.cc.o"
  "CMakeFiles/revelio_datasets.dir/synthetic.cc.o.d"
  "librevelio_datasets.a"
  "librevelio_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/revelio_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
