file(REMOVE_RECURSE
  "librevelio_datasets.a"
)
