file(REMOVE_RECURSE
  "librevelio_gnn.a"
)
