
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gnn/layer_edges.cc" "src/gnn/CMakeFiles/revelio_gnn.dir/layer_edges.cc.o" "gcc" "src/gnn/CMakeFiles/revelio_gnn.dir/layer_edges.cc.o.d"
  "/root/repo/src/gnn/layers.cc" "src/gnn/CMakeFiles/revelio_gnn.dir/layers.cc.o" "gcc" "src/gnn/CMakeFiles/revelio_gnn.dir/layers.cc.o.d"
  "/root/repo/src/gnn/model.cc" "src/gnn/CMakeFiles/revelio_gnn.dir/model.cc.o" "gcc" "src/gnn/CMakeFiles/revelio_gnn.dir/model.cc.o.d"
  "/root/repo/src/gnn/serialization.cc" "src/gnn/CMakeFiles/revelio_gnn.dir/serialization.cc.o" "gcc" "src/gnn/CMakeFiles/revelio_gnn.dir/serialization.cc.o.d"
  "/root/repo/src/gnn/trainer.cc" "src/gnn/CMakeFiles/revelio_gnn.dir/trainer.cc.o" "gcc" "src/gnn/CMakeFiles/revelio_gnn.dir/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/revelio_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/revelio_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/revelio_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/revelio_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
