file(REMOVE_RECURSE
  "CMakeFiles/revelio_gnn.dir/layer_edges.cc.o"
  "CMakeFiles/revelio_gnn.dir/layer_edges.cc.o.d"
  "CMakeFiles/revelio_gnn.dir/layers.cc.o"
  "CMakeFiles/revelio_gnn.dir/layers.cc.o.d"
  "CMakeFiles/revelio_gnn.dir/model.cc.o"
  "CMakeFiles/revelio_gnn.dir/model.cc.o.d"
  "CMakeFiles/revelio_gnn.dir/serialization.cc.o"
  "CMakeFiles/revelio_gnn.dir/serialization.cc.o.d"
  "CMakeFiles/revelio_gnn.dir/trainer.cc.o"
  "CMakeFiles/revelio_gnn.dir/trainer.cc.o.d"
  "librevelio_gnn.a"
  "librevelio_gnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/revelio_gnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
