# Empty compiler generated dependencies file for revelio_gnn.
# This may be replaced when dependencies are built.
