
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/explain/deeplift.cc" "src/explain/CMakeFiles/revelio_explain.dir/deeplift.cc.o" "gcc" "src/explain/CMakeFiles/revelio_explain.dir/deeplift.cc.o.d"
  "/root/repo/src/explain/explainer.cc" "src/explain/CMakeFiles/revelio_explain.dir/explainer.cc.o" "gcc" "src/explain/CMakeFiles/revelio_explain.dir/explainer.cc.o.d"
  "/root/repo/src/explain/flowx.cc" "src/explain/CMakeFiles/revelio_explain.dir/flowx.cc.o" "gcc" "src/explain/CMakeFiles/revelio_explain.dir/flowx.cc.o.d"
  "/root/repo/src/explain/gnnexplainer.cc" "src/explain/CMakeFiles/revelio_explain.dir/gnnexplainer.cc.o" "gcc" "src/explain/CMakeFiles/revelio_explain.dir/gnnexplainer.cc.o.d"
  "/root/repo/src/explain/gnnlrp.cc" "src/explain/CMakeFiles/revelio_explain.dir/gnnlrp.cc.o" "gcc" "src/explain/CMakeFiles/revelio_explain.dir/gnnlrp.cc.o.d"
  "/root/repo/src/explain/gradcam.cc" "src/explain/CMakeFiles/revelio_explain.dir/gradcam.cc.o" "gcc" "src/explain/CMakeFiles/revelio_explain.dir/gradcam.cc.o.d"
  "/root/repo/src/explain/graphmask.cc" "src/explain/CMakeFiles/revelio_explain.dir/graphmask.cc.o" "gcc" "src/explain/CMakeFiles/revelio_explain.dir/graphmask.cc.o.d"
  "/root/repo/src/explain/pgexplainer.cc" "src/explain/CMakeFiles/revelio_explain.dir/pgexplainer.cc.o" "gcc" "src/explain/CMakeFiles/revelio_explain.dir/pgexplainer.cc.o.d"
  "/root/repo/src/explain/pgm_explainer.cc" "src/explain/CMakeFiles/revelio_explain.dir/pgm_explainer.cc.o" "gcc" "src/explain/CMakeFiles/revelio_explain.dir/pgm_explainer.cc.o.d"
  "/root/repo/src/explain/random_explainer.cc" "src/explain/CMakeFiles/revelio_explain.dir/random_explainer.cc.o" "gcc" "src/explain/CMakeFiles/revelio_explain.dir/random_explainer.cc.o.d"
  "/root/repo/src/explain/subgraphx.cc" "src/explain/CMakeFiles/revelio_explain.dir/subgraphx.cc.o" "gcc" "src/explain/CMakeFiles/revelio_explain.dir/subgraphx.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gnn/CMakeFiles/revelio_gnn.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/revelio_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/revelio_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/revelio_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/revelio_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/revelio_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
