file(REMOVE_RECURSE
  "CMakeFiles/revelio_explain.dir/deeplift.cc.o"
  "CMakeFiles/revelio_explain.dir/deeplift.cc.o.d"
  "CMakeFiles/revelio_explain.dir/explainer.cc.o"
  "CMakeFiles/revelio_explain.dir/explainer.cc.o.d"
  "CMakeFiles/revelio_explain.dir/flowx.cc.o"
  "CMakeFiles/revelio_explain.dir/flowx.cc.o.d"
  "CMakeFiles/revelio_explain.dir/gnnexplainer.cc.o"
  "CMakeFiles/revelio_explain.dir/gnnexplainer.cc.o.d"
  "CMakeFiles/revelio_explain.dir/gnnlrp.cc.o"
  "CMakeFiles/revelio_explain.dir/gnnlrp.cc.o.d"
  "CMakeFiles/revelio_explain.dir/gradcam.cc.o"
  "CMakeFiles/revelio_explain.dir/gradcam.cc.o.d"
  "CMakeFiles/revelio_explain.dir/graphmask.cc.o"
  "CMakeFiles/revelio_explain.dir/graphmask.cc.o.d"
  "CMakeFiles/revelio_explain.dir/pgexplainer.cc.o"
  "CMakeFiles/revelio_explain.dir/pgexplainer.cc.o.d"
  "CMakeFiles/revelio_explain.dir/pgm_explainer.cc.o"
  "CMakeFiles/revelio_explain.dir/pgm_explainer.cc.o.d"
  "CMakeFiles/revelio_explain.dir/random_explainer.cc.o"
  "CMakeFiles/revelio_explain.dir/random_explainer.cc.o.d"
  "CMakeFiles/revelio_explain.dir/subgraphx.cc.o"
  "CMakeFiles/revelio_explain.dir/subgraphx.cc.o.d"
  "librevelio_explain.a"
  "librevelio_explain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/revelio_explain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
