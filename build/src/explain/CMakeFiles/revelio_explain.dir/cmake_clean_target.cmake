file(REMOVE_RECURSE
  "librevelio_explain.a"
)
