# Empty compiler generated dependencies file for revelio_explain.
# This may be replaced when dependencies are built.
