file(REMOVE_RECURSE
  "CMakeFiles/revelio_core.dir/revelio.cc.o"
  "CMakeFiles/revelio_core.dir/revelio.cc.o.d"
  "librevelio_core.a"
  "librevelio_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/revelio_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
