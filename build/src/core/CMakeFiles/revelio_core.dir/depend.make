# Empty dependencies file for revelio_core.
# This may be replaced when dependencies are built.
