file(REMOVE_RECURSE
  "librevelio_core.a"
)
