# Empty compiler generated dependencies file for molecule_explanation.
# This may be replaced when dependencies are built.
