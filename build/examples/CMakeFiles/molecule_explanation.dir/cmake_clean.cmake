file(REMOVE_RECURSE
  "CMakeFiles/molecule_explanation.dir/molecule_explanation.cpp.o"
  "CMakeFiles/molecule_explanation.dir/molecule_explanation.cpp.o.d"
  "molecule_explanation"
  "molecule_explanation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/molecule_explanation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
