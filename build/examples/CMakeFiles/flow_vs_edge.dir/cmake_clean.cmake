file(REMOVE_RECURSE
  "CMakeFiles/flow_vs_edge.dir/flow_vs_edge.cpp.o"
  "CMakeFiles/flow_vs_edge.dir/flow_vs_edge.cpp.o.d"
  "flow_vs_edge"
  "flow_vs_edge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flow_vs_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
