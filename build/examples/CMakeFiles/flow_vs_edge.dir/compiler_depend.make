# Empty compiler generated dependencies file for flow_vs_edge.
# This may be replaced when dependencies are built.
