// Ablations of Revelio's design choices called out in §IV-B:
//   1. tanh vs sigmoid flow masks (the paper argues tanh avoids inflating
//      edges that merely carry many flows);
//   2. exp vs softplus vs no per-layer weight activation for w (the paper
//      picks exp empirically).
// Reported: motif AUC and Fidelity- at sparsity 0.7 on BA-Shapes (GCN).

#include <cstdio>

#include "bench_common.h"
#include "core/revelio.h"
#include "eval/metrics.h"
#include "eval/runner.h"

namespace {

using namespace revelio;         // NOLINT
using namespace revelio::bench;  // NOLINT

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  BenchScope scope = ParseScope(flags, {"ba_shapes"}, 5, 100);

  std::printf("== Ablation: Revelio design choices (Eqs. 4-5) ==\n");
  PrintScope("ablation", scope);

  eval::PreparedModel prepared =
      eval::PrepareModel(scope.datasets[0], gnn::GnnArch::kGcn, scope.config);
  const auto instances =
      eval::SelectInstances(prepared, scope.config, eval::InstanceFilter::kMotifCorrect);
  LOG_INFO << instances.size() << " motif instances ready";

  struct Variant {
    std::string name;
    bool tanh;
    core::RevelioOptions::LayerScaling scaling;
  };
  const std::vector<Variant> variants = {
      {"tanh + exp(w) (paper)", true, core::RevelioOptions::LayerScaling::kExp},
      {"tanh + softplus(w)", true, core::RevelioOptions::LayerScaling::kSoftplus},
      {"tanh + no layer weights", true, core::RevelioOptions::LayerScaling::kNone},
      {"sigmoid + exp(w)", false, core::RevelioOptions::LayerScaling::kExp},
      {"sigmoid + no layer weights", false, core::RevelioOptions::LayerScaling::kNone},
  };

  util::TablePrinter table({"Variant", "AUC", "Fidelity- (s=0.7)"});
  for (const Variant& variant : variants) {
    core::RevelioOptions options;
    options.epochs = scope.config.explainer_epochs;
    options.use_tanh_flow_masks = variant.tanh;
    options.layer_scaling = variant.scaling;
    core::RevelioExplainer revelio(options);
    const double auc =
        eval::RunAuc(&revelio, prepared, instances, explain::Objective::kFactual);
    core::RevelioExplainer revelio_fidelity(options);
    const auto curve = eval::RunFidelity(&revelio_fidelity, prepared, instances,
                                         explain::Objective::kFactual, {0.7});
    table.AddRow({variant.name, util::TablePrinter::FormatDouble(auc, 3),
                  util::TablePrinter::FormatDouble(curve.values[0], 3)});
    LOG_INFO << variant.name << " done";
  }
  table.Print();
  std::printf("\nExpected shape (paper §IV-B): tanh masks beat sigmoid (which inflates\n"
              "many-flow edges); exp(w) layer scaling is the best performer.\n");
  return 0;
}
