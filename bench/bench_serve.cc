// Serving-engine bench: replays a seeded Poisson/bursty arrival trace
// against the explanation server (src/serve) and writes BENCH_serve.json.
//
// Phase A — admission replay (virtual time). A ManualClock plus synchronous
// RunOnce() turn the server into a discrete-event simulation: arrivals land
// at seeded Poisson times (with periodic bursts that overflow the bounded
// queue), each serviced request costs a fixed virtual 5ms, and every request
// carries a 12ms deadline. An independent arithmetic oracle replays the same
// trace — the server's accepted/rejected/timed-out counts must match it
// EXACTLY, and every served explanation must be bitwise-equal to batch
// eval::ExplainAll over the same tasks. The explainers really run (only time
// is virtual), so the phase also asserts the warm-pool steady state: zero
// pool misses after the warmup window.
//
// Phase B — throughput (real clock). A fresh server with worker threads and
// coalescing enabled serves the same request population; p50/p95/p99 latency
// come from the serve.latency_seconds obs histogram, and serve_speedup
// compares against the sequential pre-serving path (eval::ExplainAll with
// mega-batching disabled, timed on the same tasks).
//
// Flags: --quick (reduced trace, the tier-1 fixture mode), --requests N,
// --epochs N, --workers N, --queue-depth N, --seed S, --threads N,
// --legacy-loop (route Phase B through the sequential fallback), --serve-out
// FILE, plus the shared telemetry flags (bench_common.h).

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <future>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "eval/runner.h"
#include "explain/batch_runner.h"
#include "explain/explainer.h"
#include "gnn/model.h"
#include "graph/graph.h"
#include "obs/metrics.h"
#include "serve/clock.h"
#include "serve/model_registry.h"
#include "serve/server.h"
#include "tensor/tensor.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

using namespace revelio;  // NOLINT

constexpr int kFeatureDim = 4;
constexpr int kNumNodes = 10;
constexpr int64_t kServiceNanos = 5'000'000;   // virtual cost per request (5ms)
constexpr int64_t kDeadlineNanos = 12'000'000; // per-request deadline (12ms)
constexpr double kCalmGapMs = 6.0;             // mean inter-arrival, calm periods
constexpr double kBurstGapMs = 0.5;            // mean inter-arrival inside bursts
constexpr double kP99BoundSeconds = 30.0;      // quick-trace SLO envelope

// One fixed 10-node ring-with-chords shared by every request: identical
// tensor shapes across the whole trace are what make the zero-miss warm-pool
// gate exact.
graph::Graph MakeServeGraph() {
  graph::Graph graph(kNumNodes);
  for (int v = 0; v < kNumNodes; ++v) graph.AddUndirectedEdge(v, (v + 1) % kNumNodes);
  graph.AddEdge(0, 5);
  graph.AddEdge(3, 8);
  graph.AddEdge(7, 2);
  graph.AddEdge(9, 4);
  return graph;
}

std::unique_ptr<gnn::GnnModel> MakeModel(uint64_t seed) {
  gnn::GnnConfig config;
  config.arch = gnn::GnnArch::kGcn;
  config.task = gnn::TaskType::kNodeClassification;
  config.input_dim = kFeatureDim;
  config.hidden_dim = 8;
  config.num_classes = 2;
  config.num_layers = 2;
  config.seed = seed;
  return std::make_unique<gnn::GnnModel>(config);
}

struct TraceRequest {
  std::string model;
  tensor::Tensor features;
  int target_node = 0;
  int64_t arrival_nanos = 0;
};

// Seeded bursty Poisson process: blocks of calm exponential gaps with every
// fourth block arriving at burst rate, which is what overflows the bounded
// queue and exercises rejection + deadline expiry.
std::vector<TraceRequest> MakeTrace(int n, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<TraceRequest> trace;
  trace.reserve(n);
  int64_t now = 0;
  for (int i = 0; i < n; ++i) {
    const bool burst = (i / 4) % 4 == 3;
    const double mean_ms = burst ? kBurstGapMs : kCalmGapMs;
    const double gap_ms = -mean_ms * std::log(1.0 - rng.Uniform());
    now += static_cast<int64_t>(gap_ms * 1e6) + 1;
    TraceRequest request;
    // Blocks of eight per model keep same-key runs for Phase B coalescing.
    request.model = (i / 8) % 2 == 0 ? "m1" : "m2";
    request.features = tensor::Tensor::Uniform(kNumNodes, kFeatureDim, -1.0f, 1.0f, &rng);
    request.target_node = rng.UniformInt(kNumNodes);
    request.arrival_nanos = now;
    trace.push_back(std::move(request));
  }
  return trace;
}

serve::ExplainRequest MakeServeRequest(const TraceRequest& request, const graph::Graph& graph) {
  serve::ExplainRequest out;
  out.model = request.model;
  out.method = "Revelio";
  out.graph = graph;
  out.features = request.features;
  out.target_node = request.target_node;
  return out;
}

eval::RunnerConfig ExplainerConfig(uint64_t seed, int epochs) {
  eval::RunnerConfig config;
  config.seed = seed;
  config.explainer_epochs = epochs;
  return config;
}

// What the trace must produce, computed with plain arithmetic — no server,
// no queue, no clock. FIFO service order, capacity-bounded admission,
// deadline checked (strictly) at dequeue, 5ms per serviced request.
struct AdmissionOracle {
  uint64_t accepted = 0;
  uint64_t rejected_full = 0;
  uint64_t timed_out = 0;
  uint64_t served = 0;
  std::vector<bool> ran;  // per trace index: explainer executed
};

AdmissionOracle ComputeOracle(const std::vector<TraceRequest>& trace, size_t capacity) {
  struct QueuedItem {
    int64_t deadline = 0;
    size_t index = 0;
  };
  AdmissionOracle oracle;
  oracle.ran.assign(trace.size(), false);
  std::deque<QueuedItem> queue;
  int64_t server_free = 0;
  auto service_until = [&](int64_t horizon) {
    while (!queue.empty() && server_free <= horizon) {
      const QueuedItem item = queue.front();
      queue.pop_front();
      if (server_free > item.deadline) {
        ++oracle.timed_out;  // answered instantly; no service time
      } else {
        oracle.ran[item.index] = true;
        ++oracle.served;
        server_free += kServiceNanos;
      }
    }
  };
  for (size_t i = 0; i < trace.size(); ++i) {
    const int64_t arrival = trace[i].arrival_nanos;
    service_until(arrival);
    if (server_free < arrival) server_free = arrival;
    if (queue.size() >= capacity) {
      ++oracle.rejected_full;
      continue;
    }
    ++oracle.accepted;
    queue.push_back({arrival + kDeadlineNanos, i});
  }
  service_until(std::numeric_limits<int64_t>::max());
  return oracle;
}

bool BitwiseEqual(const explain::Explanation& a, const explain::Explanation& b) {
  return a.edge_scores == b.edge_scores && a.has_flow_scores == b.has_flow_scores &&
         a.flow_scores == b.flow_scores;
}

const obs::MetricsSnapshot::HistogramEntry* FindHistogram(
    const obs::MetricsSnapshot& snapshot, const std::string& name) {
  for (const auto& entry : snapshot.histograms) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

int Run(int argc, char** argv) {
  util::Flags flags(argc, argv);
  bench::InitTelemetry(flags, nullptr, nullptr);
  util::SetNumThreads(flags.GetInt("threads", 1));
  const bool quick = flags.GetBool("quick", false);
  const int num_requests = flags.GetInt("requests", quick ? 48 : 160);
  const int epochs = flags.GetInt("epochs", quick ? 12 : 40);
  const int workers = flags.GetInt("workers", 1);
  const size_t queue_depth =
      static_cast<size_t>(flags.GetInt("queue-depth", 5));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const bool legacy_loop = flags.GetBool("legacy-loop", false);
  const std::string serve_out = flags.GetString("serve-out", "BENCH_serve.json");

  const graph::Graph graph = MakeServeGraph();
  serve::ModelRegistry registry;
  CHECK(registry.Register("m1", MakeModel(seed + 1)).ok());
  CHECK(registry.Register("m2", MakeModel(seed + 2)).ok());
  const std::vector<TraceRequest> trace = MakeTrace(num_requests, seed + 3);

  // --- Reference + legacy timing: sequential eval::ExplainAll with
  // mega-batching off — the pre-serving code path over the same tasks.
  std::vector<explain::ExplanationTask> tasks;
  tasks.reserve(trace.size());
  for (const TraceRequest& request : trace) {
    explain::ExplanationTask task;
    task.model = registry.Lookup(request.model);
    task.graph = &graph;
    task.features = request.features;
    task.target_node = request.target_node;
    tasks.push_back(task);
  }
  std::unique_ptr<explain::Explainer> reference_explainer =
      eval::MakeExplainer("Revelio", ExplainerConfig(seed, epochs));
  const bool megabatch_was_enabled = explain::MegaBatchEnabled();
  explain::SetMegaBatchEnabled(false);
  util::Timer legacy_timer;
  const std::vector<explain::Explanation> reference =
      eval::ExplainAll(reference_explainer.get(), tasks, explain::Objective::kFactual);
  const double legacy_seconds = legacy_timer.ElapsedSeconds();
  explain::SetMegaBatchEnabled(megabatch_was_enabled);

  // --- Phase A: virtual-time admission replay against the oracle.
  const AdmissionOracle oracle = ComputeOracle(trace, queue_depth);
  serve::ManualClock manual_clock;
  serve::ServeOptions replay_options;
  replay_options.queue_capacity = queue_depth;
  replay_options.coalesce = false;  // one dequeue per virtual service slot
  replay_options.warmup_requests = 4;
  replay_options.clock = &manual_clock;
  serve::ExplanationServer replay_server(&registry, replay_options);
  replay_server.RegisterExplainer("Revelio",
                                  eval::MakeExplainer("Revelio", ExplainerConfig(seed, epochs)));

  std::vector<std::future<serve::ExplainResponse>> replay_futures(trace.size());
  std::vector<bool> replay_admitted(trace.size(), false);
  int64_t server_free = 0;
  auto replay_service_until = [&](int64_t horizon) {
    while (replay_server.queue_depth() > 0 && server_free <= horizon) {
      manual_clock.SetNanos(server_free);
      const serve::ExplanationServer::RunOnceResult result = replay_server.RunOnce();
      if (result.completed == 0) break;
      server_free += static_cast<int64_t>(result.ran) * kServiceNanos;
    }
  };
  for (size_t i = 0; i < trace.size(); ++i) {
    const int64_t arrival = trace[i].arrival_nanos;
    replay_service_until(arrival);
    if (server_free < arrival) server_free = arrival;
    manual_clock.SetNanos(arrival);
    serve::ExplainRequest request = MakeServeRequest(trace[i], graph);
    request.deadline_nanos = arrival + kDeadlineNanos;
    auto submitted = replay_server.TrySubmit(std::move(request));
    if (submitted.ok()) {
      replay_admitted[i] = true;
      replay_futures[i] = std::move(submitted).value();
    }
  }
  replay_service_until(std::numeric_limits<int64_t>::max());
  replay_server.Shutdown(serve::ExplanationServer::DrainMode::kDrain);
  const serve::ServerStats replay_stats = replay_server.stats();

  // Counts must match the oracle exactly, and every served explanation must
  // be bitwise-identical to the batch reference for the same trace index.
  bool counts_match = replay_stats.accepted == oracle.accepted &&
                      replay_stats.rejected_full == oracle.rejected_full &&
                      replay_stats.timed_out == oracle.timed_out &&
                      replay_stats.completed == oracle.served;
  bool bitwise_equal = true;
  uint64_t served_checked = 0;
  for (size_t i = 0; i < trace.size(); ++i) {
    if (!replay_admitted[i]) continue;
    serve::ExplainResponse response = replay_futures[i].get();
    if (response.status.ok() != oracle.ran[i]) {
      counts_match = false;
      continue;
    }
    if (!response.status.ok()) continue;
    ++served_checked;
    if (!BitwiseEqual(reference[i], response.explanation)) bitwise_equal = false;
  }

  LOG_INFO << "phase A replay: accepted " << replay_stats.accepted << "/" << num_requests
           << " (oracle " << oracle.accepted << "), rejected " << replay_stats.rejected_full
           << " (oracle " << oracle.rejected_full << "), timed out " << replay_stats.timed_out
           << " (oracle " << oracle.timed_out << "), warm pool misses "
           << replay_stats.warm_pool_misses;

  // --- Phase B: real-clock throughput with workers + coalescing.
  obs::SetEnabled(true);
  obs::MetricsRegistry::Global().GetHistogram("serve.latency_seconds")->Reset();
  obs::MetricsRegistry::Global().GetHistogram("serve.queue_seconds")->Reset();
  obs::MetricsRegistry::Global().GetHistogram("serve.run_seconds")->Reset();

  serve::ServeOptions throughput_options;
  throughput_options.queue_capacity = trace.size();
  throughput_options.num_workers = workers;
  throughput_options.coalesce = true;
  throughput_options.legacy_loop = legacy_loop;
  serve::ExplanationServer throughput_server(&registry, throughput_options);
  throughput_server.RegisterExplainer(
      "Revelio", eval::MakeExplainer("Revelio", ExplainerConfig(seed, epochs)));
  throughput_server.Start();

  util::Timer serve_timer;
  std::vector<std::future<serve::ExplainResponse>> throughput_futures;
  throughput_futures.reserve(trace.size());
  for (const TraceRequest& request : trace) {
    auto submitted = throughput_server.Submit(MakeServeRequest(request, graph));
    CHECK(submitted.ok()) << submitted.status().ToString();
    throughput_futures.push_back(std::move(submitted).value());
  }
  throughput_server.Shutdown(serve::ExplanationServer::DrainMode::kDrain);
  const double serve_seconds = serve_timer.ElapsedSeconds();
  for (size_t i = 0; i < throughput_futures.size(); ++i) {
    serve::ExplainResponse response = throughput_futures[i].get();
    CHECK(response.status.ok()) << response.status.ToString();
    if (!BitwiseEqual(reference[i], response.explanation)) bitwise_equal = false;
  }
  const serve::ServerStats throughput_stats = throughput_server.stats();
  const double serve_speedup = serve_seconds > 0.0 ? legacy_seconds / serve_seconds : 0.0;

  obs::HistogramSummary latency;
  const obs::MetricsSnapshot snapshot = obs::MetricsRegistry::Global().Snapshot();
  if (const auto* entry = FindHistogram(snapshot, "serve.latency_seconds")) {
    latency = obs::SummarizeHistogram(*entry);
  }

  LOG_INFO << "phase B throughput: " << num_requests << " requests in " << serve_seconds
           << "s (legacy " << legacy_seconds << "s, speedup " << serve_speedup
           << "x), p50/p95/p99 " << latency.p50 << "/" << latency.p95 << "/" << latency.p99
           << "s, coalesced groups " << throughput_stats.coalesced_groups;

  const bool wrote = bench::WriteBenchJson(serve_out, "serve_trace", [&](obs::JsonWriter* w) {
    w->BeginObject();
    w->Key("requests");
    w->Int(num_requests);
    w->Key("seed");
    w->Uint(seed);
    w->Key("queue_capacity");
    w->Uint(queue_depth);
    w->Key("service_ms");
    w->Double(static_cast<double>(kServiceNanos) * 1e-6);
    w->Key("deadline_ms");
    w->Double(static_cast<double>(kDeadlineNanos) * 1e-6);
    w->Key("workers");
    w->Int(workers);
    w->Key("legacy_loop");
    w->Bool(legacy_loop);
    w->Key("points");
    w->BeginArray();
    w->BeginObject();
    w->Key("expected_accepted");
    w->Uint(oracle.accepted);
    w->Key("observed_accepted");
    w->Uint(replay_stats.accepted);
    w->Key("expected_rejected");
    w->Uint(oracle.rejected_full);
    w->Key("observed_rejected");
    w->Uint(replay_stats.rejected_full);
    w->Key("expected_timed_out");
    w->Uint(oracle.timed_out);
    w->Key("observed_timed_out");
    w->Uint(replay_stats.timed_out);
    w->Key("expected_served");
    w->Uint(oracle.served);
    w->Key("observed_served");
    w->Uint(replay_stats.completed);
    w->Key("counts_match");
    w->Bool(counts_match);
    w->Key("served_checked");
    w->Uint(served_checked);
    w->Key("bitwise_equal");
    w->Bool(bitwise_equal);
    w->Key("warm_hits");
    w->Uint(replay_stats.warm_pool_hits);
    w->Key("warm_misses");
    w->Uint(replay_stats.warm_pool_misses);
    w->Key("legacy_seconds");
    w->Double(legacy_seconds);
    w->Key("serve_seconds");
    w->Double(serve_seconds);
    w->Key("serve_speedup");
    w->Double(serve_speedup);
    w->Key("p50_seconds");
    w->Double(latency.p50);
    w->Key("p95_seconds");
    w->Double(latency.p95);
    w->Key("p99_seconds");
    w->Double(latency.p99);
    w->Key("p99_bound_seconds");
    w->Double(kP99BoundSeconds);
    w->Key("coalesced_groups");
    w->Uint(throughput_stats.coalesced_groups);
    w->Key("coalesced_instances");
    w->Uint(throughput_stats.coalesced_instances);
    w->EndObject();
    w->EndArray();
    w->EndObject();
  });
  if (!wrote) return 1;
  if (!counts_match || !bitwise_equal) {
    std::fprintf(stderr, "bench_serve: trace validation failed (counts_match=%d "
                 "bitwise_equal=%d)\n", counts_match ? 1 : 0, bitwise_equal ? 1 : 0);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
