// Reproduces paper Tables VI/VII (with Figs. 7/8): the top-10 message flows
// reported by the flow-based methods (GNN-LRP, FlowX, Revelio) on one
// BA-Shapes node instance and one BA-2motifs graph instance. The paper's
// qualitative findings: all methods concentrate on motif-adjacent flows on
// BA-Shapes; score scales differ wildly across methods (LRP arbitrary,
// Shapley tiny, Revelio in (-1,1)).

#include <cstdio>

#include "bench_common.h"
#include "core/revelio.h"
#include "eval/runner.h"
#include "explain/flowx.h"
#include "explain/gnnlrp.h"
#include "flow/flow_scores.h"

namespace {

using namespace revelio;          // NOLINT
using namespace revelio::bench;   // NOLINT

void ReportTopFlows(const char* title, const eval::PreparedModel& prepared,
                    const eval::EvalInstance& instance, int epochs) {
  const explain::ExplanationTask task = instance.MakeTask(prepared.model.get());
  const gnn::LayerEdgeSet edges = gnn::BuildLayerEdges(*task.graph);
  flow::FlowSet flows =
      task.is_node_task()
          ? flow::EnumerateFlowsToTarget(edges, task.target_node, 3)
          : flow::EnumerateAllFlows(edges, 3);

  std::printf("\n-- %s: %d nodes, %d edges, %d flows, explained class %d --\n", title,
              task.graph->num_nodes(), task.graph->num_edges(), flows.num_flows(),
              task.target_class);
  std::printf("(motif nodes marked *; local node ids within the instance graph)\n");

  struct MethodResult {
    std::string name;
    std::vector<double> scores;
  };
  std::vector<MethodResult> results;

  explain::GnnLrpExplainer lrp{explain::GnnLrpOptions{}};
  results.push_back({"GNN-LRP", lrp.ScoreFlows(task, edges, flows)});

  explain::FlowXOptions flowx_options;
  flowx_options.shapley_iterations = 3;
  flowx_options.learning_epochs = epochs;
  explain::FlowXExplainer flowx(flowx_options);
  results.push_back({"FlowX", flowx.Explain(task, explain::Objective::kFactual).flow_scores});

  core::RevelioOptions revelio_options;
  revelio_options.epochs = epochs;
  core::RevelioExplainer revelio(revelio_options);
  results.push_back(
      {"Revelio", revelio.Explain(task, explain::Objective::kFactual).flow_scores});

  util::TablePrinter table({"Rank", "GNN-LRP flow", "score", "FlowX flow", "score",
                            "Revelio flow", "score"});
  std::vector<std::vector<int>> top(3);
  for (int m = 0; m < 3; ++m) top[m] = flow::TopKFlows(results[m].scores, 10);
  // Node-level motif membership derived from the edge ground truth.
  std::vector<char> node_in_motif(task.graph->num_nodes(), 0);
  for (int e = 0; e < task.graph->num_edges(); ++e) {
    if (!instance.edge_in_motif.empty() && instance.edge_in_motif[e]) {
      node_in_motif[task.graph->edge(e).src] = 1;
      node_in_motif[task.graph->edge(e).dst] = 1;
    }
  }
  auto annotate = [&](int k) {
    std::string text;
    const auto nodes = flows.FlowNodes(k, edges);
    for (size_t i = 0; i < nodes.size(); ++i) {
      if (i > 0) text += "->";
      text += std::to_string(nodes[i]);
      if (node_in_motif[nodes[i]]) text += "*";
    }
    return text;
  };
  for (int rank = 0; rank < 10; ++rank) {
    std::vector<std::string> row{std::to_string(rank + 1)};
    for (int m = 0; m < 3; ++m) {
      if (rank < static_cast<int>(top[m].size())) {
        const int k = top[m][rank];
        row.push_back(annotate(k));
        row.push_back(util::TablePrinter::FormatDouble(results[m].scores[k], 4));
      } else {
        row.push_back("-");
        row.push_back("-");
      }
    }
    table.AddRow(std::move(row));
  }
  table.Print();
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  BenchScope scope = ParseScope(flags, {}, 3, 100);

  std::printf("== Tables VI & VII: top-10 message flows by flow-based methods ==\n");

  {
    eval::PreparedModel prepared =
        eval::PrepareModel("ba_shapes", gnn::GnnArch::kGcn, scope.config);
    auto instances =
        eval::SelectInstances(prepared, scope.config, eval::InstanceFilter::kMotifCorrect);
    CHECK(!instances.empty());
    ReportTopFlows("Table VI: BA-Shapes node instance (GCN)", prepared, instances[0],
                   scope.config.explainer_epochs);
  }
  {
    eval::PreparedModel prepared =
        eval::PrepareModel("ba_2motifs", gnn::GnnArch::kGin, scope.config);
    auto instances =
        eval::SelectInstances(prepared, scope.config, eval::InstanceFilter::kMotifCorrect);
    CHECK(!instances.empty());
    ReportTopFlows("Table VII: BA-2motifs graph instance (GIN)", prepared, instances[0],
                   scope.config.explainer_epochs);
  }
  std::printf("\nExpected shapes (paper): GNN-LRP scores on an arbitrary scale, FlowX\n"
              "scores tiny (Shapley shares), Revelio scores in (-1,1); on BA-Shapes all\n"
              "three concentrate on flows within two hops of the target motif.\n");
  return 0;
}
