// Depth ablation: the paper fixes L = 3 everywhere but its complexity
// analysis (§IV-D) hinges on |F| growing as (d_- + 1)^L. This bench sweeps
// the GNN depth on a fixed Tree-Cycles instance pool and reports the flow
// count, Revelio's wall-clock, and its motif AUC — showing the method stays
// learnable while |F| explodes.

#include <cstdio>

#include "bench_common.h"
#include "core/revelio.h"
#include "eval/metrics.h"
#include "eval/runner.h"
#include "flow/message_flow.h"
#include "gnn/trainer.h"
#include "graph/subgraph.h"
#include "nn/loss.h"
#include "util/timer.h"

namespace {

using namespace revelio;         // NOLINT
using namespace revelio::bench;  // NOLINT

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const int epochs = flags.GetInt("epochs", 80);
  const int num_instances = flags.GetInt("instances", 4);
  const int max_depth = flags.GetInt("max-depth", 4);

  std::printf("== Depth ablation: flows, cost and AUC vs number of GNN layers ==\n\n");

  datasets::Dataset dataset = datasets::MakeTreeCycles(1);
  const auto& full = dataset.instances[0];

  util::TablePrinter table(
      {"L", "model acc", "mean |F|", "Revelio s/inst", "motif AUC"});
  for (int depth = 2; depth <= max_depth; ++depth) {
    gnn::GnnConfig config;
    config.arch = gnn::GnnArch::kGcn;
    config.input_dim = dataset.feature_dim;
    config.hidden_dim = 32;
    config.num_classes = dataset.num_classes;
    config.num_layers = depth;
    config.seed = 1001;  // mirror eval::PrepareModel's model seed
    gnn::GnnModel model(config);
    util::Rng rng(8);  // mirror eval::PrepareModel's split seed (1 + 7)
    const gnn::Split split = gnn::MakeSplit(full.graph.num_nodes(), 0.8, 0.1, &rng);
    gnn::TrainConfig train_config;
    train_config.epochs = 500;
    const auto metrics =
        gnn::TrainNodeModel(&model, full.graph, full.features, full.labels, split, train_config);

    // Motif instances with depth-matched computation subgraphs.
    util::Rng pick_rng(7);
    std::vector<int> candidates;
    for (int v = 0; v < full.graph.num_nodes(); ++v) {
      if (dataset.node_in_motif[0][v]) candidates.push_back(v);
    }
    pick_rng.Shuffle(&candidates);

    double total_flows = 0.0, total_seconds = 0.0, total_auc = 0.0;
    int used = 0;
    for (int v : candidates) {
      if (used >= num_instances) break;
      graph::Subgraph sub = graph::ExtractKHopInSubgraph(full.graph, v, depth);
      if (sub.graph.num_edges() < 12) continue;
      const gnn::LayerEdgeSet edges = gnn::BuildLayerEdges(sub.graph);
      const int64_t flows = flow::CountFlowsToTarget(edges, sub.target_local, depth);
      if (flows > 200'000) continue;

      explain::ExplanationTask task;
      task.model = &model;
      task.graph = &sub.graph;
      task.features = graph::SliceRows(full.features, sub.node_map);
      task.target_node = sub.target_local;
      task.target_class = explain::PredictedClass(task);

      core::RevelioOptions options;
      options.epochs = epochs;
      options.max_flows = 400'000;
      core::RevelioExplainer revelio(options);
      util::Timer timer;
      const auto scores = revelio.Explain(task, explain::Objective::kFactual).edge_scores;
      total_seconds += timer.ElapsedSeconds();
      total_flows += static_cast<double>(flows);

      std::vector<char> truth(sub.graph.num_edges());
      for (int e = 0; e < sub.graph.num_edges(); ++e) {
        truth[e] = dataset.edge_in_motif[0][sub.edge_map[e]];
      }
      total_auc += eval::RocAuc(scores, truth);
      ++used;
    }
    if (used == 0) {
      table.AddRow({std::to_string(depth), "-", "-", "-", "-"});
      continue;
    }
    table.AddRow({std::to_string(depth),
                  util::TablePrinter::FormatDouble(metrics.test_accuracy * 100.0, 1) + "%",
                  util::TablePrinter::FormatDouble(total_flows / used, 0),
                  util::TablePrinter::FormatDouble(total_seconds / used, 3),
                  util::TablePrinter::FormatDouble(total_auc / used, 3)});
    LOG_INFO << "depth " << depth << " done (" << used << " instances)";
  }
  table.Print();
  std::printf("\nExpected shape: |F| grows geometrically with L (the (d_-+1)^L bound of\n"
              "SIV-D) while Revelio's per-instance time grows far more slowly, since the\n"
              "dominant cost is T forward passes, not per-flow work.\n");
  return 0;
}
