#ifndef REVELIO_BENCH_BENCH_COMMON_H_
#define REVELIO_BENCH_BENCH_COMMON_H_

// Shared scope/flag handling for the per-table/figure bench binaries.
//
// Every bench runs standalone with scaled-down defaults sized for a 1-core
// box (fewer instances/epochs than the paper; the reduction is printed) and
// accepts:
//   --full                 paper-scale settings (50 instances, 500 epochs)
//   --datasets a,b,c       dataset subset
//   --archs GCN,GIN,GAT    architecture subset
//   --methods A,B,C        explainer subset
//   --instances N          instances per dataset
//   --epochs N             learning-based explainer epochs
//   --seed S
//   --threads N            worker threads (default: REVELIO_NUM_THREADS env
//                          or hardware concurrency); results are identical
//                          for any value
//   --gnn-epochs N         target-GNN pretraining epochs (0 = per-dataset
//                          default)
//   --trace-out FILE       enable telemetry; write Chrome trace JSON at exit
//   --metrics-out FILE     enable telemetry; write metrics snapshot at exit
//   --audit-out FILE       stream one audit record per explanation (JSONL)
//   --prom-out FILE        write Prometheus text exposition at exit; with
//                          REVELIO_METRICS_INTERVAL_MS=<ms> also rewrite it
//                          periodically during the run
//   --flight-out FILE      dump the flight-recorder ring (Chrome JSON) at exit
//   --profile              enable telemetry; print the span profile at exit
//
// Artifact paths (every *-out flag and the BENCH_*.json writers) are routed
// through PrepareArtifactPath: parent directories are created, overwriting an
// existing file logs a warning, and a bare filename lands in the gitignored
// artifacts/ directory instead of littering the working directory.

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "eval/runner.h"
#include "obs/audit.h"
#include "obs/export_prom.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/trace.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/table_printer.h"

namespace revelio::bench {

inline std::vector<std::string> SplitCsv(const std::string& value) {
  std::vector<std::string> parts;
  size_t begin = 0;
  while (begin <= value.size()) {
    const size_t comma = value.find(',', begin);
    if (comma == std::string::npos) {
      if (begin < value.size()) parts.push_back(value.substr(begin));
      break;
    }
    parts.push_back(value.substr(begin, comma - begin));
    begin = comma + 1;
  }
  return parts;
}

// Normalizes a bench artifact path before anything writes to it: a bare
// filename (no directory component) is routed into artifacts/, missing
// parent directories are created, and clobbering an existing file logs a
// warning first. Empty paths pass through untouched.
inline std::string PrepareArtifactPath(const std::string& path) {
  if (path.empty()) return path;
  namespace fs = std::filesystem;
  fs::path target(path);
  if (!target.has_parent_path()) target = fs::path("artifacts") / target;
  std::error_code ec;
  if (target.has_parent_path()) {
    fs::create_directories(target.parent_path(), ec);
    if (ec) LOG_WARNING << "cannot create " << target.parent_path().string() << ": "
                        << ec.message();
  }
  if (fs::exists(target, ec)) {
    LOG_WARNING << "overwriting existing artifact " << target.string();
  }
  return target.string();
}

struct BenchScope {
  std::vector<std::string> datasets;
  std::vector<gnn::GnnArch> archs;
  std::vector<std::string> methods;
  eval::RunnerConfig config;
  bool full = false;
  bool profile = false;  // print the span profile table at exit
};

namespace internal {

// Exit-time telemetry sinks, set once by InitTelemetry.
struct TelemetrySinks {
  std::string trace_out;
  std::string metrics_out;
  std::string prom_out;
  std::string flight_out;
  bool audit = false;  // AuditSink opened; close (flush) at exit
  bool profile = false;
};

inline TelemetrySinks& Sinks() {
  static TelemetrySinks sinks;
  return sinks;
}

}  // namespace internal

// Writes the configured telemetry outputs. Registered with atexit by
// InitTelemetry; safe to call directly (e.g. before a mid-run abort).
inline void FlushTelemetry() {
  const internal::TelemetrySinks& sinks = internal::Sinks();
  obs::StopMetricsExportThread();
  if (!sinks.trace_out.empty()) {
    if (obs::TraceRecorder::Global().WriteChromeTrace(sinks.trace_out)) {
      LOG_INFO << "wrote trace to " << sinks.trace_out;
    } else {
      LOG_ERROR << "failed to write trace to " << sinks.trace_out;
    }
  }
  if (!sinks.metrics_out.empty()) {
    if (obs::WriteMetricsJsonFile(sinks.metrics_out)) {
      LOG_INFO << "wrote metrics to " << sinks.metrics_out;
    } else {
      LOG_ERROR << "failed to write metrics to " << sinks.metrics_out;
    }
  }
  if (!sinks.prom_out.empty()) {
    if (obs::WritePrometheusTextFile(sinks.prom_out)) {
      LOG_INFO << "wrote Prometheus exposition to " << sinks.prom_out;
    } else {
      LOG_ERROR << "failed to write Prometheus exposition to " << sinks.prom_out;
    }
  }
  if (!sinks.flight_out.empty()) {
    if (obs::FlightRecorder::Global().WriteChromeTrace(sinks.flight_out)) {
      LOG_INFO << "wrote flight record to " << sinks.flight_out;
    } else {
      LOG_ERROR << "failed to write flight record to " << sinks.flight_out;
    }
  }
  if (sinks.audit) obs::AuditSink::Global().Close();
  if (sinks.profile) {
    const std::string table = obs::TraceRecorder::Global().ProfileTable();
    if (!table.empty()) std::fprintf(stderr, "\n== span profile ==\n%s", table.c_str());
  }
}

// Enables the obs subsystem when any telemetry flag is set and registers the
// exit-time flush. Called by ParseScope.
inline void InitTelemetry(const util::Flags& flags, eval::RunnerConfig* config,
                          bool* profile) {
  internal::TelemetrySinks& sinks = internal::Sinks();
  sinks.trace_out = PrepareArtifactPath(flags.GetString("trace-out", ""));
  sinks.metrics_out = PrepareArtifactPath(flags.GetString("metrics-out", ""));
  sinks.prom_out = PrepareArtifactPath(flags.GetString("prom-out", ""));
  sinks.flight_out = PrepareArtifactPath(flags.GetString("flight-out", ""));
  sinks.profile = flags.GetBool("profile", false);
  const std::string audit_out = PrepareArtifactPath(flags.GetString("audit-out", ""));
  if (!audit_out.empty()) {
    sinks.audit = obs::AuditSink::Global().OpenFile(audit_out);
    if (sinks.audit) {
      LOG_INFO << "streaming audit records to " << audit_out;
    } else {
      LOG_ERROR << "cannot open audit output " << audit_out;
    }
  }
  if (config != nullptr) {
    config->trace_out = sinks.trace_out;
    config->metrics_out = sinks.metrics_out;
    config->audit_out = audit_out;
  }
  if (profile != nullptr) *profile = sinks.profile;
  const bool any_sink = !sinks.trace_out.empty() || !sinks.metrics_out.empty() ||
                        !sinks.prom_out.empty() || !sinks.flight_out.empty() || sinks.audit ||
                        sinks.profile;
  if (!any_sink) return;
  // The flight recorder and audit sink run on their own switches; everything
  // else (spans, counters, histograms) needs the obs subsystem on.
  obs::SetEnabled(true);
  // Periodic SLO export: rewrite the exposition file during the run so a
  // scraper sees progress, not just the final snapshot.
  const int interval_ms = obs::MetricsExportIntervalFromEnv();
  if (interval_ms > 0 && !sinks.prom_out.empty()) {
    obs::StartMetricsExportThread(sinks.prom_out, interval_ms);
  }
  static bool registered = false;
  if (!registered) {
    registered = true;
    std::atexit(+[] { FlushTelemetry(); });
  }
}

inline gnn::GnnArch ArchFromName(const std::string& name) {
  if (name == "GCN" || name == "gcn") return gnn::GnnArch::kGcn;
  if (name == "GIN" || name == "gin") return gnn::GnnArch::kGin;
  if (name == "GAT" || name == "gat") return gnn::GnnArch::kGat;
  CHECK(false) << "unknown arch: " << name;
  return gnn::GnnArch::kGcn;
}

// Builds the scope from flags. `default_datasets` / `default_instances` /
// `default_epochs` are the bench's reduced 1-core defaults.
inline BenchScope ParseScope(const util::Flags& flags,
                             std::vector<std::string> default_datasets,
                             int default_instances, int default_epochs) {
  BenchScope scope;
  scope.full = flags.GetBool("full", false);
  scope.datasets = scope.full ? datasets::AllDatasetNames() : std::move(default_datasets);
  if (flags.Has("datasets")) scope.datasets = SplitCsv(flags.GetString("datasets", ""));

  scope.archs = {gnn::GnnArch::kGcn, gnn::GnnArch::kGin};
  if (scope.full) scope.archs.push_back(gnn::GnnArch::kGat);
  if (flags.Has("archs")) {
    scope.archs.clear();
    for (const auto& name : SplitCsv(flags.GetString("archs", ""))) {
      scope.archs.push_back(ArchFromName(name));
    }
  }

  scope.methods = eval::AllExplainerNames();
  if (flags.Has("methods")) scope.methods = SplitCsv(flags.GetString("methods", ""));

  scope.config.seed = flags.GetInt("seed", 1);
  scope.config.num_instances =
      flags.GetInt("instances", scope.full ? 50 : default_instances);
  scope.config.explainer_epochs = flags.GetInt("epochs", scope.full ? 500 : default_epochs);
  scope.config.gnn_train_epochs = flags.GetInt("gnn-epochs", 0);
  // Micro-subgraphs (a handful of edges) make fidelity pure noise; skip them
  // unless explicitly requested.
  scope.config.min_instance_edges = flags.GetInt("min-edges", 12);
  if (flags.Has("threads")) util::SetNumThreads(flags.GetInt("threads", 1));
  InitTelemetry(flags, &scope.config, &scope.profile);
  return scope;
}

// Shared BENCH_*.json writer: every bench result file carries the same
// envelope (schema version, bench name, thread count, and the run's metric
// snapshot) around a bench-specific payload written by `payload`.
template <typename PayloadFn>
inline bool WriteBenchJson(const std::string& raw_path, const std::string& bench_name,
                           const PayloadFn& payload) {
  const std::string path = PrepareArtifactPath(raw_path);
  obs::JsonWriter writer;
  writer.BeginObject();
  writer.Key("schema_version");
  writer.Int(1);
  writer.Key("bench");
  writer.String(bench_name);
  writer.Key("threads");
  writer.Int(util::NumThreads());
  writer.Key("hardware_threads");
  writer.Int(util::HardwareThreads());
  writer.Key("data");
  payload(&writer);
  writer.Key("metrics");
  obs::AppendMetricsSnapshot(&writer);
  writer.EndObject();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    LOG_ERROR << "cannot write " << path;
    return false;
  }
  const std::string& doc = writer.str();
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  std::fclose(f);
  LOG_INFO << "wrote " << path;
  return ok;
}

inline void PrintScope(const char* what, const BenchScope& scope) {
  std::string datasets;
  for (const auto& d : scope.datasets) datasets += d + " ";
  LOG_INFO << what << ": instances/dataset=" << scope.config.num_instances
           << " explainer epochs=" << scope.config.explainer_epochs
           << " threads=" << util::NumThreads()
           << (scope.full ? " (paper scale)" : " (reduced 1-core defaults; --full for paper scale)")
           << " datasets: " << datasets;
}

// Methods skipped for an arch (paper: GNN-LRP is incompatible with GAT).
inline bool MethodSupportsArch(const std::string& method, gnn::GnnArch arch) {
  return !(method == "GNN-LRP" && arch == gnn::GnnArch::kGat);
}

}  // namespace revelio::bench

#endif  // REVELIO_BENCH_BENCH_COMMON_H_
