#ifndef REVELIO_BENCH_BENCH_COMMON_H_
#define REVELIO_BENCH_BENCH_COMMON_H_

// Shared scope/flag handling for the per-table/figure bench binaries.
//
// Every bench runs standalone with scaled-down defaults sized for a 1-core
// box (fewer instances/epochs than the paper; the reduction is printed) and
// accepts:
//   --full                 paper-scale settings (50 instances, 500 epochs)
//   --datasets a,b,c       dataset subset
//   --archs GCN,GIN,GAT    architecture subset
//   --methods A,B,C        explainer subset
//   --instances N          instances per dataset
//   --epochs N             learning-based explainer epochs
//   --seed S
//   --threads N            worker threads (default: REVELIO_NUM_THREADS env
//                          or hardware concurrency); results are identical
//                          for any value

#include <memory>
#include <string>
#include <vector>

#include "eval/runner.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/table_printer.h"

namespace revelio::bench {

inline std::vector<std::string> SplitCsv(const std::string& value) {
  std::vector<std::string> parts;
  size_t begin = 0;
  while (begin <= value.size()) {
    const size_t comma = value.find(',', begin);
    if (comma == std::string::npos) {
      if (begin < value.size()) parts.push_back(value.substr(begin));
      break;
    }
    parts.push_back(value.substr(begin, comma - begin));
    begin = comma + 1;
  }
  return parts;
}

struct BenchScope {
  std::vector<std::string> datasets;
  std::vector<gnn::GnnArch> archs;
  std::vector<std::string> methods;
  eval::RunnerConfig config;
  bool full = false;
};

inline gnn::GnnArch ArchFromName(const std::string& name) {
  if (name == "GCN" || name == "gcn") return gnn::GnnArch::kGcn;
  if (name == "GIN" || name == "gin") return gnn::GnnArch::kGin;
  if (name == "GAT" || name == "gat") return gnn::GnnArch::kGat;
  CHECK(false) << "unknown arch: " << name;
  return gnn::GnnArch::kGcn;
}

// Builds the scope from flags. `default_datasets` / `default_instances` /
// `default_epochs` are the bench's reduced 1-core defaults.
inline BenchScope ParseScope(const util::Flags& flags,
                             std::vector<std::string> default_datasets,
                             int default_instances, int default_epochs) {
  BenchScope scope;
  scope.full = flags.GetBool("full", false);
  scope.datasets = scope.full ? datasets::AllDatasetNames() : std::move(default_datasets);
  if (flags.Has("datasets")) scope.datasets = SplitCsv(flags.GetString("datasets", ""));

  scope.archs = {gnn::GnnArch::kGcn, gnn::GnnArch::kGin};
  if (scope.full) scope.archs.push_back(gnn::GnnArch::kGat);
  if (flags.Has("archs")) {
    scope.archs.clear();
    for (const auto& name : SplitCsv(flags.GetString("archs", ""))) {
      scope.archs.push_back(ArchFromName(name));
    }
  }

  scope.methods = eval::AllExplainerNames();
  if (flags.Has("methods")) scope.methods = SplitCsv(flags.GetString("methods", ""));

  scope.config.seed = flags.GetInt("seed", 1);
  scope.config.num_instances =
      flags.GetInt("instances", scope.full ? 50 : default_instances);
  scope.config.explainer_epochs = flags.GetInt("epochs", scope.full ? 500 : default_epochs);
  // Micro-subgraphs (a handful of edges) make fidelity pure noise; skip them
  // unless explicitly requested.
  scope.config.min_instance_edges = flags.GetInt("min-edges", 12);
  if (flags.Has("threads")) util::SetNumThreads(flags.GetInt("threads", 1));
  return scope;
}

inline void PrintScope(const char* what, const BenchScope& scope) {
  std::string datasets;
  for (const auto& d : scope.datasets) datasets += d + " ";
  LOG_INFO << what << ": instances/dataset=" << scope.config.num_instances
           << " explainer epochs=" << scope.config.explainer_epochs
           << " threads=" << util::NumThreads()
           << (scope.full ? " (paper scale)" : " (reduced 1-core defaults; --full for paper scale)")
           << " datasets: " << datasets;
}

// Methods skipped for an arch (paper: GNN-LRP is incompatible with GAT).
inline bool MethodSupportsArch(const std::string& method, gnn::GnnArch arch) {
  return !(method == "GNN-LRP" && arch == gnn::GnnArch::kGat);
}

}  // namespace revelio::bench

#endif  // REVELIO_BENCH_BENCH_COMMON_H_
