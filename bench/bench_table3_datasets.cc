// Reproduces paper Table III: dataset statistics and the accuracy of the
// pretrained 3-layer GCN / GIN / GAT target models on every dataset.
//
// Flags: --epochs N (default 150), --datasets a,b,c, --seed S.

#include <cstdio>

#include "eval/runner.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace {

using revelio::eval::ArchSupportsDataset;
using revelio::eval::PrepareModel;
using revelio::eval::RunnerConfig;
using revelio::util::TablePrinter;

std::vector<std::string> SplitCsv(const std::string& value) {
  std::vector<std::string> parts;
  size_t begin = 0;
  while (begin <= value.size()) {
    const size_t comma = value.find(',', begin);
    if (comma == std::string::npos) {
      parts.push_back(value.substr(begin));
      break;
    }
    parts.push_back(value.substr(begin, comma - begin));
    begin = comma + 1;
  }
  return parts;
}

}  // namespace

int main(int argc, char** argv) {
  revelio::util::Flags flags(argc, argv);
  RunnerConfig config;
  config.seed = flags.GetInt("seed", 1);
  config.gnn_train_epochs = flags.GetInt("epochs", 0);  // 0 = per-dataset default

  std::vector<std::string> dataset_names = revelio::datasets::AllDatasetNames();
  if (flags.Has("datasets")) dataset_names = SplitCsv(flags.GetString("datasets", ""));

  std::printf("== Table III: dataset statistics and model accuracy ==\n");
  std::printf("(paper bands: GCN/GIN/GAT accuracies 69.8%%-99.0%%; N/A = GAT on synthetic)\n\n");

  TablePrinter table({"Dataset", "#graphs", "#nodes", "#edges", "#features", "#classes",
                      "GCN Acc.", "GIN Acc.", "GAT Acc.", "train s"});
  for (const std::string& name : dataset_names) {
    std::vector<std::string> row{name};
    double total_seconds = 0.0;
    std::string accuracy_cells[3];
    revelio::datasets::Dataset stats_source;
    const revelio::gnn::GnnArch archs[3] = {revelio::gnn::GnnArch::kGcn,
                                            revelio::gnn::GnnArch::kGin,
                                            revelio::gnn::GnnArch::kGat};
    for (int a = 0; a < 3; ++a) {
      if (!ArchSupportsDataset(archs[a], name)) {
        accuracy_cells[a] = "N/A";
        continue;
      }
      revelio::util::Timer timer;
      revelio::eval::PreparedModel prepared = PrepareModel(name, archs[a], config);
      total_seconds += timer.ElapsedSeconds();
      accuracy_cells[a] =
          TablePrinter::FormatDouble(prepared.metrics.test_accuracy * 100.0, 1) + "%";
      if (a == 0 || stats_source.instances.empty()) {
        stats_source = std::move(prepared.dataset);
      }
      LOG_INFO << name << " " << revelio::gnn::GnnArchName(archs[a]) << " test acc "
               << prepared.metrics.test_accuracy;
    }
    row.push_back(std::to_string(stats_source.num_graphs()));
    row.push_back(TablePrinter::FormatDouble(stats_source.AverageNodes(), 1));
    row.push_back(TablePrinter::FormatDouble(stats_source.AverageEdges(), 1));
    row.push_back(std::to_string(stats_source.feature_dim));
    row.push_back(std::to_string(stats_source.num_classes));
    for (const auto& cell : accuracy_cells) row.push_back(cell);
    row.push_back(TablePrinter::FormatDouble(total_seconds, 1));
    table.AddRow(std::move(row));
  }
  table.Print();
  return 0;
}
