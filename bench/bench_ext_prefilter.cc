// Extension bench (paper §VI future work, implemented here): top-k flow
// prefiltering before mask learning. Measures the speed/quality trade-off —
// explanation time and motif AUC as the kept-flow budget k shrinks.

#include <cstdio>

#include "bench_common.h"
#include "core/revelio.h"
#include "eval/runner.h"
#include "util/timer.h"

namespace {

using namespace revelio;         // NOLINT
using namespace revelio::bench;  // NOLINT

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  BenchScope scope = ParseScope(flags, {"ba_shapes"}, 5, 100);

  std::printf("== Extension (paper SVI): top-k flow prefiltering ==\n");
  PrintScope("prefilter", scope);

  eval::PreparedModel prepared =
      eval::PrepareModel(scope.datasets[0], gnn::GnnArch::kGcn, scope.config);
  const auto instances =
      eval::SelectInstances(prepared, scope.config, eval::InstanceFilter::kMotifCorrect);
  double mean_flows = 0.0;
  for (const auto& instance : instances) mean_flows += instance.num_flows;
  mean_flows /= std::max<size_t>(instances.size(), 1);
  LOG_INFO << instances.size() << " instances, mean |F| = " << mean_flows;

  util::TablePrinter table({"kept flows k", "AUC", "mean seconds/instance"});
  const std::vector<int> budgets = {0 /* all */, 512, 128, 32, 8};
  for (int k : budgets) {
    core::RevelioOptions options;
    options.epochs = scope.config.explainer_epochs;
    options.prefilter_top_k = k;
    core::RevelioExplainer revelio(options);
    util::Timer timer;
    const double auc =
        eval::RunAuc(&revelio, prepared, instances, explain::Objective::kFactual);
    const double seconds =
        instances.empty() ? 0.0 : timer.ElapsedSeconds() / instances.size();
    table.AddRow({k == 0 ? "all" : std::to_string(k),
                  util::TablePrinter::FormatDouble(auc, 3),
                  util::TablePrinter::FormatDouble(seconds, 3)});
    LOG_INFO << "k = " << k << " done";
  }
  table.Print();
  std::printf("\nExpected shape: AUC degrades gracefully as k shrinks while the time\n"
              "per instance drops — the memory/runtime saving the paper's §VI "
              "anticipates.\n");
  return 0;
}
