// Reproduces paper Fig. 1 quantitatively: edge-level explanations are
// ambiguous about message flows. For the figure's setting (a 4-layer GNN and
// a top-k edge explanation), we count how many distinct combinations of
// message flows are consistent with the same explanatory edge set — the
// source of the ambiguity the paper illustrates with two colorings.

#include <cstdio>

#include "bench_common.h"
#include "flow/message_flow.h"
#include "graph/graph.h"

namespace {

using namespace revelio;         // NOLINT
using namespace revelio::bench;  // NOLINT

// Fig. 1's grid-like toy graph: a 3x3 lattice, top-left source (0), bottom
// right target (8), all edges directed toward the target (right/down).
graph::Graph LatticeGraph() {
  graph::Graph g(9);
  auto id = [](int r, int c) { return 3 * r + c; };
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      if (c + 1 < 3) g.AddEdge(id(r, c), id(r, c + 1));
      if (r + 1 < 3) g.AddEdge(id(r, c), id(r + 1, c));
    }
  }
  return g;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  (void)flags;
  std::printf("== Fig. 1: why edge explanations are ambiguous about message flows ==\n\n");

  graph::Graph g = LatticeGraph();
  const gnn::LayerEdgeSet edges = gnn::BuildLayerEdges(g);
  const int num_layers = 4;
  const int target = 8;

  flow::FlowSet flows = flow::EnumerateFlowsToTarget(edges, target, num_layers);
  std::printf("3x3 lattice, %d-layer GNN, target node %d: %d message flows total\n",
              num_layers, target, flows.num_flows());

  // Take the corner-to-corner path edges as the "valid edge explanation" of
  // the figure (both lattice paths along the border), then count how many
  // full flows are consistent with those edges alone.
  std::vector<char> explanatory_edge(edges.num_layer_edges(), 0);
  for (int e = 0; e < g.num_edges(); ++e) explanatory_edge[e] = 1;  // all base edges
  // Restrict to a top-k edge set: the 6 border edges 0->1->2->5->8, 0->3->6->7?8.
  std::fill(explanatory_edge.begin(), explanatory_edge.end(), 0);
  auto mark = [&](int src, int dst) {
    for (int e = 0; e < g.num_edges(); ++e) {
      if (g.edge(e).src == src && g.edge(e).dst == dst) explanatory_edge[e] = 1;
    }
  };
  mark(0, 1);
  mark(1, 2);
  mark(2, 5);
  mark(5, 8);
  mark(0, 3);
  mark(3, 6);
  mark(6, 7);
  mark(7, 8);
  for (int v = 0; v < g.num_nodes(); ++v) explanatory_edge[edges.SelfLoopOf(v)] = 1;

  int consistent_flows = 0;
  int source_to_target = 0;
  for (int k = 0; k < flows.num_flows(); ++k) {
    bool inside = true;
    for (int l = 0; l < num_layers; ++l) {
      if (!explanatory_edge[flows.EdgeAt(l, k)]) inside = false;
    }
    if (!inside) continue;
    ++consistent_flows;
    if (flows.FlowNodes(k, edges).front() == 0) ++source_to_target;
  }
  // All source->target flows in the full graph, for contrast.
  int all_source_to_target = 0;
  for (int k = 0; k < flows.num_flows(); ++k) {
    if (flows.FlowNodes(k, edges).front() == 0) ++all_source_to_target;
  }
  std::printf("edge explanation: the 8 border edges (plus self-loops)\n");
  std::printf("source(0)->target(%d) flows in the full graph: %d\n", target,
              all_source_to_target);
  std::printf("flows fully consistent with the edge explanation: %d\n", consistent_flows);
  std::printf("of which source->target: %d\n", source_to_target);
  const long long pairs =
      static_cast<long long>(consistent_flows) * (consistent_flows - 1) / 2;
  std::printf("distinct 'top-2 flow' readings of the same edge set: %lld\n", pairs);
  std::printf("\nConclusion (paper Fig. 1): a single valid edge explanation admits many\n"
              "contradictory flow-level readings; flow scores (Revelio) resolve this.\n");
  return 0;
}
