// Reproduces paper Fig. 6: qualitative visualization of explanatory edges on
// BA-Shapes (GCN) and BA-2motifs (GIN). For each method, the top-k edges are
// rendered against the ground-truth motif; the printed recall corresponds to
// the dark-vs-dashed-red distinction in the paper's figure.

#include <cstdio>

#include "bench_common.h"
#include "eval/metrics.h"
#include "eval/runner.h"
#include "graph/dot_export.h"

namespace {

using namespace revelio;          // NOLINT
using namespace revelio::bench;   // NOLINT

void Visualize(const char* title, const eval::PreparedModel& prepared,
               const std::vector<eval::EvalInstance>& instances, const BenchScope& scope) {
  CHECK(!instances.empty());
  const eval::EvalInstance& instance = instances[0];
  const explain::ExplanationTask task = instance.MakeTask(prepared.model.get());

  int motif_edge_count = 0;
  for (char m : instance.edge_in_motif) motif_edge_count += m;
  std::printf("\n-- %s: %d nodes / %d edges, motif has %d directed edges --\n", title,
              task.graph->num_nodes(), task.graph->num_edges(), motif_edge_count);

  // Following the paper, report a few extra explanatory edges beyond |motif|.
  const int top_k = motif_edge_count + 4;
  util::TablePrinter table({"Method", "top-k edges (motif edges marked *)", "motif recall"});
  for (const std::string& method : scope.methods) {
    if (!MethodSupportsArch(method, prepared.arch)) continue;
    auto explainer = eval::MakeExplainer(method, scope.config);
    eval::TrainAmortized(explainer.get(), prepared, instances, explain::Objective::kFactual,
                         scope.config);
    const auto scores = explainer->Explain(task, explain::Objective::kFactual).edge_scores;
    const auto order = eval::RankEdges(scores);
    std::string rendered;
    int hits = 0;
    for (int rank = 0; rank < top_k && rank < static_cast<int>(order.size()); ++rank) {
      const int e = order[rank];
      const auto& edge = task.graph->edge(e);
      if (rank > 0) rendered += " ";
      rendered += std::to_string(edge.src) + ">" + std::to_string(edge.dst);
      if (instance.edge_in_motif[e]) {
        rendered += "*";
        ++hits;
      }
    }
    const double recall =
        motif_edge_count > 0 ? static_cast<double>(hits) / motif_edge_count : 0.0;
    table.AddRow({method, rendered, util::TablePrinter::FormatDouble(recall, 2)});
    LOG_INFO << method << " recall " << recall;

    // Graphviz artifact per method (render with `dot -Tpng`).
    graph::DotStyle style;
    style.edge_selected.assign(task.graph->num_edges(), 0);
    for (int rank = 0; rank < top_k && rank < static_cast<int>(order.size()); ++rank) {
      style.edge_selected[order[rank]] = 1;
    }
    style.edge_ground_truth.assign(instance.edge_in_motif.begin(),
                                   instance.edge_in_motif.end());
    style.target_node = instance.target_node;
    const std::string path = std::string("fig6_") + title[6] + "_" + method + ".dot";
    const util::Status status = graph::WriteDotFile(path, *task.graph, style);
    if (!status.ok()) LOG_WARNING << status.ToString();
  }
  table.Print();
  std::printf("(DOT files written alongside; render with `dot -Tpng fig6_*.dot`)\n");
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  BenchScope scope = ParseScope(flags, {}, 4, 80);

  std::printf("== Fig. 6: explanatory-edge visualization against motif ground truth ==\n");
  {
    eval::PreparedModel prepared =
        eval::PrepareModel("ba_shapes", gnn::GnnArch::kGcn, scope.config);
    auto instances =
        eval::SelectInstances(prepared, scope.config, eval::InstanceFilter::kMotifCorrect);
    Visualize("Fig. 6a: BA-Shapes with GCN", prepared, instances, scope);
  }
  {
    eval::PreparedModel prepared =
        eval::PrepareModel("ba_2motifs", gnn::GnnArch::kGin, scope.config);
    auto instances =
        eval::SelectInstances(prepared, scope.config, eval::InstanceFilter::kMotifCorrect);
    Visualize("Fig. 6b: BA-2motifs with GIN", prepared, instances, scope);
  }
  std::printf("\nExpected shape (paper): flow-based methods recover most motif edges;\n"
              "some methods also select the motif-attachment edges, reflecting the\n"
              "model's actual use of the connecting structure.\n");
  return 0;
}
