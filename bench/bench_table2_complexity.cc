// Verifies paper Table II empirically: how explanation time scales with the
// number of message flows |F| for each method family.
//
//   GNNExplainer O(T(|E| + T_Phi))            — flat in |F|
//   GNN-LRP      O(|F| (|x| + L|h| + T_Phi))  — linear in |F|
//   FlowX        O(S(|F| + L|E| T_Phi))       — |E| forward passes per sweep
//   Revelio      O(T(L|F| + T_Phi))           — mild linear term in |F|
//
// Instances are "shower-head" graphs: the target receives b in-neighbors,
// each receiving b in-neighbors, etc., so |F| grows as (b+1)^L while |E|
// grows only linearly in b.

#include <cstdio>

#include "bench_common.h"
#include "core/revelio.h"
#include "explain/flowx.h"
#include "explain/gnnexplainer.h"
#include "explain/gnnlrp.h"
#include "flow/message_flow.h"
#include "util/timer.h"

namespace {

using namespace revelio;         // NOLINT
using namespace revelio::bench;  // NOLINT

// Depth-3 in-tree toward node 0 with branching b.
graph::Graph ShowerGraph(int branching) {
  int nodes = 1 + branching + branching * branching + branching * branching * branching;
  graph::Graph g(nodes);
  int next = 1;
  std::vector<int> frontier{0};
  for (int depth = 0; depth < 3; ++depth) {
    std::vector<int> next_frontier;
    for (int parent : frontier) {
      for (int child = 0; child < branching; ++child) {
        g.AddEdge(next, parent);
        next_frontier.push_back(next);
        ++next;
      }
    }
    frontier = std::move(next_frontier);
  }
  CHECK_EQ(next, nodes);
  return g;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const int epochs = flags.GetInt("epochs", 30);
  const int max_branching = flags.GetInt("max-branching", 7);

  std::printf("== Table II: empirical time-vs-|F| scaling per method family ==\n");
  std::printf("Complexity rows (paper):\n");
  std::printf("  GNNExplainer O(T(|E|+T))   GNN-LRP O(|F|(|x|+L|h|+T))\n");
  std::printf("  FlowX O(S(|F|+L|E|T))      Revelio O(T(L|F|+T))\n\n");

  util::TablePrinter table({"b", "|V|", "|E|", "|F|", "GNNExplainer s", "GNN-LRP s",
                            "FlowX s", "Revelio s"});
  for (int b = 2; b <= max_branching; ++b) {
    graph::Graph g = ShowerGraph(b);
    gnn::GnnConfig config;
    config.arch = gnn::GnnArch::kGcn;
    config.input_dim = 32;
    config.hidden_dim = 16;
    config.num_classes = 2;
    config.seed = 11;
    gnn::GnnModel model(config);
    util::Rng rng(13);

    explain::ExplanationTask task;
    task.model = &model;
    task.graph = &g;
    task.features = tensor::Tensor::Randn(g.num_nodes(), 32, &rng);
    task.target_node = 0;
    task.target_class = 0;

    const gnn::LayerEdgeSet edges = gnn::BuildLayerEdges(g);
    const int64_t flows = flow::CountFlowsToTarget(edges, 0, 3);

    explain::GnnExplainerOptions gx_options;
    gx_options.epochs = epochs;
    explain::GnnExplainerMethod gnnexplainer(gx_options);
    util::Timer t1;
    (void)gnnexplainer.Explain(task, explain::Objective::kFactual);
    const double gx_seconds = t1.ElapsedSeconds();

    explain::GnnLrpExplainer lrp{explain::GnnLrpOptions{}};
    util::Timer t2;
    (void)lrp.Explain(task, explain::Objective::kFactual);
    const double lrp_seconds = t2.ElapsedSeconds();

    explain::FlowXOptions fx_options;
    fx_options.shapley_iterations = 3;
    fx_options.learning_epochs = epochs;
    explain::FlowXExplainer flowx(fx_options);
    util::Timer t3;
    (void)flowx.Explain(task, explain::Objective::kFactual);
    const double fx_seconds = t3.ElapsedSeconds();

    core::RevelioOptions rv_options;
    rv_options.epochs = epochs;
    core::RevelioExplainer revelio(rv_options);
    util::Timer t4;
    (void)revelio.Explain(task, explain::Objective::kFactual);
    const double rv_seconds = t4.ElapsedSeconds();

    table.AddRow({std::to_string(b), std::to_string(g.num_nodes()),
                  std::to_string(g.num_edges()), std::to_string(flows),
                  util::TablePrinter::FormatDouble(gx_seconds, 4),
                  util::TablePrinter::FormatDouble(lrp_seconds, 4),
                  util::TablePrinter::FormatDouble(fx_seconds, 4),
                  util::TablePrinter::FormatDouble(rv_seconds, 4)});
    LOG_INFO << "branching " << b << " done (|F| = " << flows << ")";
  }
  table.Print();
  std::printf("\nExpected shape: GNN-LRP time grows ~linearly with |F|; FlowX grows with\n"
              "|E| forward sweeps; Revelio grows much more slowly (per-epoch O(L|F|)\n"
              "bookkeeping vs per-flow model evaluations).\n");
  return 0;
}
