// google-benchmark microbenchmarks for the hot kernels every experiment sits
// on: matmul, message-passing gather/scatter, flow enumeration, the Eq. 5/7
// mask transformation, and a full masked GNN forward pass.
//
// Before the registered benchmarks run, main() sweeps the worker-thread count
// (1/2/4/8) over the three parallel hot paths — 512^3 matmul, scatter-add,
// and a batched Revelio explain — and writes machine-readable timings plus a
// bitwise-equality check against the 1-thread run to BENCH_parallel.json.
//
// A second sweep times the fused CSR SpMM aggregation against the legacy
// Gather -> RowScale -> ScatterAdd chain at 1 thread across three sizes and
// writes BENCH_spmm.json (with a bitwise fused-vs-chain output check).
// `--quick` runs only that sweep at reduced sizes — the mode the
// bench-regression ctest uses — and `--spmm-out FILE` overrides its output
// path.
//
// A third sweep times a full Revelio explanation (the allocation-heaviest
// inner loop in the repo) with the tensor pool enabled vs disabled across
// three graph sizes and writes BENCH_pool.json, recording the bitwise
// pooled-vs-unpooled score check and the pool miss count of a post-warmup
// explanation (must be zero: the steady-state contract). `--pool-only` runs
// just that sweep (with `--quick` sizes when combined); `--pool-out FILE`
// overrides its output path.
//
// A fourth sweep (`--simd-sweep`, writes BENCH_simd.json) times the scalar
// loops against the SIMD tier (tensor/simd.h) at 1 thread — interleaved
// min-of-N over elementwise/matmul/SpMM — plus a bf16-vs-f32 frozen-model
// probe whose tensor.matmul.input_bytes counter must read exactly half under
// REVELIO_EVAL_BF16 storage. `--simd-out FILE` overrides its output path.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/revelio.h"
#include "eval/runner.h"
#include "flow/message_flow.h"
#include "gnn/model.h"
#include "obs/metrics.h"
#include "plan/plan.h"
#include "tensor/bf16.h"
#include "tensor/ops.h"
#include "tensor/pool.h"
#include "tensor/simd.h"
#include "tensor/sparse.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

using namespace revelio;  // NOLINT

void BM_MatMul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  util::Rng rng(1);
  tensor::Tensor a = tensor::Tensor::Randn(n, n, &rng);
  tensor::Tensor b = tensor::Tensor::Randn(n, n, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * int64_t{2} * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128);

void BM_GatherScatter(benchmark::State& state) {
  const int edges = static_cast<int>(state.range(0));
  const int nodes = edges / 4 + 1;
  util::Rng rng(2);
  tensor::Tensor h = tensor::Tensor::Randn(nodes, 32, &rng);
  std::vector<int> src(edges), dst(edges);
  for (int e = 0; e < edges; ++e) {
    src[e] = rng.UniformInt(nodes);
    dst[e] = rng.UniformInt(nodes);
  }
  for (auto _ : state) {
    tensor::Tensor messages = tensor::GatherRows(h, src);
    benchmark::DoNotOptimize(tensor::ScatterAddRows(messages, dst, nodes));
  }
  state.SetItemsProcessed(state.iterations() * edges);
}
BENCHMARK(BM_GatherScatter)->Arg(1024)->Arg(8192);

void BM_FlowEnumeration(benchmark::State& state) {
  const int branching = static_cast<int>(state.range(0));
  // In-tree of depth 3 toward node 0.
  int nodes = 1 + branching + branching * branching + branching * branching * branching;
  graph::Graph g(nodes);
  int next = 1;
  std::vector<int> frontier{0};
  for (int depth = 0; depth < 3; ++depth) {
    std::vector<int> next_frontier;
    for (int parent : frontier) {
      for (int child = 0; child < branching; ++child) {
        g.AddEdge(next, parent);
        next_frontier.push_back(next++);
      }
    }
    frontier = std::move(next_frontier);
  }
  const gnn::LayerEdgeSet edges = gnn::BuildLayerEdges(g);
  int64_t flows = 0;
  for (auto _ : state) {
    flow::FlowSet set = flow::EnumerateFlowsToTarget(edges, 0, 3);
    flows = set.num_flows();
    benchmark::DoNotOptimize(set);
  }
  state.SetItemsProcessed(state.iterations() * flows);
}
BENCHMARK(BM_FlowEnumeration)->Arg(3)->Arg(6)->Arg(9);

void BM_MaskTransformation(benchmark::State& state) {
  // Eq. 7: omega[E] = sigmoid(I * omega[F] (.) exp(w)) via scatter-add.
  const int branching = static_cast<int>(state.range(0));
  int nodes = 1 + branching + branching * branching + branching * branching * branching;
  graph::Graph g(nodes);
  int next = 1;
  std::vector<int> frontier{0};
  for (int depth = 0; depth < 3; ++depth) {
    std::vector<int> next_frontier;
    for (int parent : frontier) {
      for (int child = 0; child < branching; ++child) {
        g.AddEdge(next, parent);
        next_frontier.push_back(next++);
      }
    }
    frontier = std::move(next_frontier);
  }
  const gnn::LayerEdgeSet edges = gnn::BuildLayerEdges(g);
  flow::FlowSet flows = flow::EnumerateFlowsToTarget(edges, 0, 3);
  util::Rng rng(3);
  tensor::Tensor mask_params =
      tensor::Tensor::Randn(flows.num_flows(), 1, &rng).WithRequiresGrad();
  tensor::Tensor layer_weights = tensor::Tensor::Zeros(3, 1).WithRequiresGrad();
  for (auto _ : state) {
    tensor::Tensor omega = tensor::Tanh(mask_params);
    tensor::Tensor scale = tensor::Exp(layer_weights);
    for (int l = 0; l < 3; ++l) {
      tensor::Tensor accumulated =
          tensor::ScatterAddRows(omega, flows.EdgesAtLayer(l), flows.num_layer_edges());
      benchmark::DoNotOptimize(tensor::Sigmoid(
          tensor::ScaleByScalarTensor(accumulated, tensor::Select(scale, l, 0))));
    }
  }
  state.SetItemsProcessed(state.iterations() * flows.num_flows() * 3);
}
BENCHMARK(BM_MaskTransformation)->Arg(4)->Arg(8);

void BM_MaskedGnnForward(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  util::Rng rng(5);
  graph::Graph g(nodes);
  for (int v = 1; v < nodes; ++v) g.AddUndirectedEdge(v, rng.UniformInt(v));
  gnn::GnnConfig config;
  config.arch = gnn::GnnArch::kGcn;
  config.input_dim = 16;
  config.hidden_dim = 32;
  config.num_classes = 4;
  gnn::GnnModel model(config);
  tensor::Tensor x = tensor::Tensor::Randn(nodes, 16, &rng);
  const gnn::LayerEdgeSet edges = gnn::BuildLayerEdges(g);
  std::vector<tensor::Tensor> masks(
      3, tensor::Tensor::Full(edges.num_layer_edges(), 1, 0.7f));
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Run(g, edges, x, masks).logits);
  }
  state.SetItemsProcessed(state.iterations() * edges.num_layer_edges());
}
BENCHMARK(BM_MaskedGnnForward)->Arg(128)->Arg(1024);

void BM_SpmmCsr(benchmark::State& state) {
  const int edges = static_cast<int>(state.range(0));
  const int nodes = edges / 4 + 1;
  util::Rng rng(6);
  tensor::Tensor x = tensor::Tensor::Randn(nodes, 32, &rng);
  tensor::Tensor w = tensor::Tensor::Uniform(edges, 1, 0.2f, 1.5f, &rng);
  std::vector<int> rows(edges), cols(edges);
  for (int e = 0; e < edges; ++e) {
    rows[e] = rng.UniformInt(nodes);
    cols[e] = rng.UniformInt(nodes);
  }
  const tensor::CsrPatternRef pattern = tensor::BuildCsrPattern(nodes, nodes, rows, cols);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::SpmmCsrWeighted(pattern, w, x));
  }
  state.SetItemsProcessed(state.iterations() * edges);
}
BENCHMARK(BM_SpmmCsr)->Arg(1024)->Arg(8192);

// --- Thread-count sweep (BENCH_parallel.json) --------------------------------

struct SweepPoint {
  int threads = 1;
  double seconds = 0.0;
  bool bitwise_equal = true;  // vs the 1-thread run of the same kernel
};

struct SweepResult {
  std::string kernel;
  std::vector<SweepPoint> points;
};

constexpr int kSweepThreads[] = {1, 2, 4, 8};

// Times `run` at each thread count. `run` returns a fingerprint vector that
// must match the 1-thread run bitwise (the determinism contract).
template <typename Fn>
SweepResult SweepKernel(const std::string& kernel, Fn run) {
  SweepResult result;
  result.kernel = kernel;
  std::vector<float> reference;
  for (int threads : kSweepThreads) {
    util::SetNumThreads(threads);
    util::Timer timer;
    std::vector<float> fingerprint = run();
    SweepPoint point;
    point.threads = threads;
    point.seconds = timer.ElapsedSeconds();
    if (threads == 1) {
      reference = std::move(fingerprint);
    } else {
      point.bitwise_equal = fingerprint == reference;
    }
    result.points.push_back(point);
  }
  util::SetNumThreads(1);
  return result;
}

SweepResult SweepMatMul() {
  util::Rng rng(11);
  const int n = 512;
  tensor::Tensor a = tensor::Tensor::Randn(n, n, &rng);
  tensor::Tensor b = tensor::Tensor::Randn(n, n, &rng);
  return SweepKernel("matmul_512", [&] {
    tensor::Tensor c = tensor::MatMul(a, b);
    return c.values();
  });
}

SweepResult SweepScatterAdd() {
  util::Rng rng(12);
  const int edges = 1 << 17;
  const int nodes = 1 << 15;
  const int dim = 64;
  tensor::Tensor messages = tensor::Tensor::Randn(edges, dim, &rng);
  std::vector<int> dst(edges);
  for (int e = 0; e < edges; ++e) dst[e] = rng.UniformInt(nodes);
  return SweepKernel("scatter_add_128k", [&] {
    tensor::Tensor out = tensor::ScatterAddRows(messages, dst, nodes);
    return out.values();
  });
}

SweepResult SweepRevelioExplain() {
  // A batch of small random graphs explained through eval::ExplainAll, the
  // same path the evaluation harness parallelizes per instance. The model is
  // untrained (runtime does not depend on the weights) but must be frozen so
  // concurrent backward passes skip the shared weight nodes.
  util::Rng rng(13);
  gnn::GnnConfig config;
  config.arch = gnn::GnnArch::kGcn;
  config.input_dim = 16;
  config.hidden_dim = 32;
  config.num_classes = 4;
  gnn::GnnModel model(config);
  model.Freeze();

  const int batch = 8;
  const int nodes = 36;
  std::vector<graph::Graph> graphs;
  std::vector<tensor::Tensor> features;
  graphs.reserve(batch);
  features.reserve(batch);
  for (int i = 0; i < batch; ++i) {
    graph::Graph g(nodes);
    for (int v = 1; v < nodes; ++v) g.AddUndirectedEdge(v, rng.UniformInt(v));
    graphs.push_back(std::move(g));
    features.push_back(tensor::Tensor::Randn(nodes, config.input_dim, &rng));
  }
  std::vector<explain::ExplanationTask> tasks(batch);
  for (int i = 0; i < batch; ++i) {
    tasks[i].model = &model;
    tasks[i].graph = &graphs[i];
    tasks[i].features = features[i];
    tasks[i].target_node = 0;
    tasks[i].target_class = 0;
  }

  core::RevelioOptions options;
  options.epochs = 12;
  core::RevelioExplainer explainer(options);
  return SweepKernel("revelio_explain_batch8", [&] {
    const std::vector<explain::Explanation> explanations =
        eval::ExplainAll(&explainer, tasks, explain::Objective::kFactual);
    std::vector<float> fingerprint;
    for (const auto& e : explanations) {
      for (double s : e.edge_scores) fingerprint.push_back(static_cast<float>(s));
    }
    return fingerprint;
  });
}

// Instrumentation overhead on the matmul hot path: the same 256^3 matmul
// timed with telemetry disabled and enabled. The disabled path must stay
// within the DESIGN.md §7 budget (<= 2% slowdown vs the uninstrumented
// kernel; disabled-mode cost is one relaxed load + branch per metric site).
struct OverheadResult {
  double disabled_seconds = 0.0;
  double enabled_seconds = 0.0;
  double overhead_pct = 0.0;  // enabled vs disabled
};

OverheadResult MeasureTelemetryOverhead() {
  const bool was_enabled = obs::Enabled();
  util::Rng rng(14);
  const int n = 256;
  const int reps = 6;
  tensor::Tensor a = tensor::Tensor::Randn(n, n, &rng);
  tensor::Tensor b = tensor::Tensor::Randn(n, n, &rng);
  auto time_reps = [&] {
    util::Timer timer;
    for (int r = 0; r < reps; ++r) {
      tensor::Tensor c = tensor::MatMul(a, b);
      benchmark::DoNotOptimize(c);
    }
    return timer.ElapsedSeconds();
  };
  // Interleave the two modes and keep the best trial of each: min-of-trials
  // cancels the scheduler/frequency noise that dominates a single timed run
  // on a loaded (or single-core) host.
  constexpr int kTrials = 5;
  OverheadResult result;
  result.disabled_seconds = std::numeric_limits<double>::infinity();
  result.enabled_seconds = std::numeric_limits<double>::infinity();
  obs::SetEnabled(false);
  (void)time_reps();  // warm up caches and the thread pool
  for (int trial = 0; trial < kTrials; ++trial) {
    obs::SetEnabled(false);
    result.disabled_seconds = std::min(result.disabled_seconds, time_reps());
    obs::SetEnabled(true);
    result.enabled_seconds = std::min(result.enabled_seconds, time_reps());
  }
  obs::SetEnabled(was_enabled);
  if (result.disabled_seconds > 0.0) {
    result.overhead_pct =
        100.0 * (result.enabled_seconds / result.disabled_seconds - 1.0);
  }
  return result;
}

void WriteSweepJson(const std::vector<SweepResult>& results, const OverheadResult& overhead,
                    const char* path) {
  bench::WriteBenchJson(path, "micro_kernels", [&](obs::JsonWriter* w) {
    w->BeginObject();
    w->Key("kernels");
    w->BeginArray();
    for (const SweepResult& r : results) {
      const double base = r.points.empty() ? 0.0 : r.points[0].seconds;
      w->BeginObject();
      w->Key("kernel");
      w->String(r.kernel);
      w->Key("points");
      w->BeginArray();
      for (const SweepPoint& p : r.points) {
        w->BeginObject();
        w->Key("threads");
        w->Int(p.threads);
        w->Key("seconds");
        w->Double(p.seconds);
        w->Key("speedup_vs_1");
        w->Double(p.seconds > 0.0 ? base / p.seconds : 0.0);
        w->Key("bitwise_equal_vs_1thread");
        w->Bool(p.bitwise_equal);
        w->EndObject();
      }
      w->EndArray();
      w->EndObject();
    }
    w->EndArray();
    w->Key("telemetry_overhead");
    w->BeginObject();
    w->Key("kernel");
    w->String("matmul_256_x6");
    w->Key("disabled_seconds");
    w->Double(overhead.disabled_seconds);
    w->Key("enabled_seconds");
    w->Double(overhead.enabled_seconds);
    w->Key("overhead_pct");
    w->Double(overhead.overhead_pct);
    w->EndObject();
    w->EndObject();
  });
}

void RunThreadSweep() {
  std::printf("== thread-count sweep (writes BENCH_parallel.json) ==\n");
  std::vector<SweepResult> results;
  results.push_back(SweepMatMul());
  results.push_back(SweepScatterAdd());
  results.push_back(SweepRevelioExplain());
  for (const SweepResult& r : results) {
    const double base = r.points[0].seconds;
    for (const SweepPoint& p : r.points) {
      std::printf("%-24s threads=%d  %8.4fs  speedup=%5.2fx  bitwise_equal=%s\n",
                  r.kernel.c_str(), p.threads, p.seconds,
                  p.seconds > 0.0 ? base / p.seconds : 0.0,
                  p.bitwise_equal ? "yes" : "NO");
    }
  }
  const OverheadResult overhead = MeasureTelemetryOverhead();
  std::printf("telemetry overhead (matmul 256^3 x6): disabled %.4fs, enabled %.4fs (%+.2f%%)\n",
              overhead.disabled_seconds, overhead.enabled_seconds, overhead.overhead_pct);
  WriteSweepJson(results, overhead, "BENCH_parallel.json");
  std::printf("hardware threads: %d (speedups are bounded by physical cores)\n\n",
              util::HardwareThreads());
}

// --- Fused SpMM vs legacy chain sweep (BENCH_spmm.json) ----------------------

struct SpmmPoint {
  int edges = 0;
  int nodes = 0;
  int dim = 0;
  double chain_seconds = 0.0;
  double fused_seconds = 0.0;
  double fused_speedup = 0.0;
  bool bitwise_equal = false;  // fused output vs chain output
};

// Times the fused SpmmCsrWeighted forward against the legacy
// Gather -> RowScale -> ScatterAdd chain on 1 thread (the paths are
// bitwise-equal, so the comparison is pure kernel cost; thread scaling is
// covered by the thread sweep above). Min-of-5 trials per path, repetitions
// sized so each trial is long enough to time.
std::vector<SpmmPoint> RunSpmmSweep(bool quick) {
  util::SetNumThreads(1);
  struct Size {
    int edges, nodes, dim;
  };
  const std::vector<Size> sizes =
      quick ? std::vector<Size>{{1 << 10, 1 << 8, 32}, {1 << 13, 1 << 11, 32},
                                {1 << 15, 1 << 13, 32}}
            : std::vector<Size>{{1 << 12, 1 << 10, 64}, {1 << 15, 1 << 13, 64},
                                {1 << 17, 1 << 15, 64}};
  std::vector<SpmmPoint> points;
  util::Rng rng(21);
  for (const Size& s : sizes) {
    std::vector<int> dst(s.edges), src(s.edges);
    for (int e = 0; e < s.edges; ++e) {
      dst[e] = rng.UniformInt(s.nodes);
      src[e] = rng.UniformInt(s.nodes);
    }
    const tensor::CsrPatternRef pattern = tensor::BuildCsrPattern(s.nodes, s.nodes, dst, src);
    tensor::Tensor x = tensor::Tensor::Randn(s.nodes, s.dim, &rng);
    tensor::Tensor w = tensor::Tensor::Uniform(s.edges, 1, 0.2f, 1.5f, &rng);

    auto chain = [&] {
      return tensor::ScatterAddRows(tensor::RowScale(tensor::GatherRows(x, src), w), dst,
                                    s.nodes);
    };
    auto fused = [&] { return tensor::SpmmCsrWeighted(pattern, w, x); };

    SpmmPoint point;
    point.edges = s.edges;
    point.nodes = s.nodes;
    point.dim = s.dim;
    point.bitwise_equal = chain().values() == fused().values();  // also warms caches

    const int reps = std::max(1, (1 << 23) / (s.edges * s.dim));
    constexpr int kTrials = 5;
    auto time_best = [reps](const std::function<tensor::Tensor()>& run) {
      double best = std::numeric_limits<double>::infinity();
      for (int trial = 0; trial < kTrials; ++trial) {
        util::Timer timer;
        for (int r = 0; r < reps; ++r) {
          tensor::Tensor out = run();
          benchmark::DoNotOptimize(out);
        }
        best = std::min(best, timer.ElapsedSeconds());
      }
      return best / reps;
    };
    point.chain_seconds = time_best(chain);
    point.fused_seconds = time_best(fused);
    point.fused_speedup =
        point.fused_seconds > 0.0 ? point.chain_seconds / point.fused_seconds : 0.0;
    points.push_back(point);
  }
  return points;
}

void WriteSpmmJson(const std::vector<SpmmPoint>& points, const std::string& path) {
  bench::WriteBenchJson(path, "spmm_fused_vs_chain", [&](obs::JsonWriter* w) {
    w->BeginObject();
    w->Key("points");
    w->BeginArray();
    for (const SpmmPoint& p : points) {
      w->BeginObject();
      w->Key("edges");
      w->Int(p.edges);
      w->Key("nodes");
      w->Int(p.nodes);
      w->Key("dim");
      w->Int(p.dim);
      w->Key("chain_seconds");
      w->Double(p.chain_seconds);
      w->Key("fused_seconds");
      w->Double(p.fused_seconds);
      w->Key("fused_speedup");
      w->Double(p.fused_speedup);
      w->Key("bitwise_equal");
      w->Bool(p.bitwise_equal);
      w->EndObject();
    }
    w->EndArray();
    w->EndObject();
  });
}

void RunSpmmSweepAndReport(bool quick, const std::string& out_path) {
  std::printf("== fused SpMM vs legacy chain sweep (writes %s) ==\n", out_path.c_str());
  const std::vector<SpmmPoint> points = RunSpmmSweep(quick);
  for (const SpmmPoint& p : points) {
    std::printf(
        "spmm edges=%-7d nodes=%-6d dim=%-3d  chain %8.5fs  fused %8.5fs  "
        "speedup=%5.2fx  bitwise_equal=%s\n",
        p.edges, p.nodes, p.dim, p.chain_seconds, p.fused_seconds, p.fused_speedup,
        p.bitwise_equal ? "yes" : "NO");
  }
  WriteSpmmJson(points, out_path);
}

// --- Pooled vs legacy allocator sweep (BENCH_pool.json) ----------------------

struct PoolPoint {
  int nodes = 0;
  int layer_edges = 0;
  int epochs = 0;
  double unpooled_seconds = 0.0;  // one explanation, pool disabled
  double pooled_seconds = 0.0;    // one explanation, pool enabled and warm
  double pool_speedup = 0.0;
  bool bitwise_equal = false;  // pooled vs unpooled edge scores
  uint64_t warm_misses = 0;    // pool misses in one post-warmup explanation
  uint64_t warm_hits = 0;
};

// Times a full Revelio explanation — mask training rebuilds the autograd tape
// every epoch, the allocation-heaviest loop in the repo — with the pool off
// (legacy allocator) and on. Pool mode must not change the scores (bitwise
// check), and after a two-explanation warmup every buffer must come from the
// free lists (warm_misses == 0). 1 thread so all stats land on this thread's
// pool.
std::vector<PoolPoint> RunPoolSweep(bool quick) {
  util::SetNumThreads(1);
  const std::vector<int> sizes =
      quick ? std::vector<int>{16, 32, 64} : std::vector<int>{32, 64, 128};
  const int epochs = quick ? 8 : 24;
  const bool pool_was_enabled = tensor::PoolEnabled();
  // This sweep measures the per-epoch allocator cost of the EAGER loop; with
  // a recorded plan replaying, epochs after the first allocate nothing and
  // the pooled-vs-legacy contrast vanishes. (bench_table5_runtime
  // --plan-sweep covers the plan path.)
  const bool plan_was_enabled = plan::ExecPlanEnabled();
  plan::SetExecPlanEnabled(false);
  std::vector<PoolPoint> points;
  util::Rng rng(31);
  for (int nodes : sizes) {
    graph::Graph g(nodes);
    for (int v = 1; v < nodes; ++v) g.AddUndirectedEdge(v, rng.UniformInt(v));
    gnn::GnnConfig config;
    config.arch = gnn::GnnArch::kGcn;
    config.input_dim = 16;
    config.hidden_dim = 32;
    config.num_classes = 4;
    gnn::GnnModel model(config);
    model.Freeze();
    tensor::Tensor x = tensor::Tensor::Randn(nodes, config.input_dim, &rng);
    explain::ExplanationTask task;
    task.model = &model;
    task.graph = &g;
    task.features = x;
    task.target_node = 0;
    task.target_class = 0;
    core::RevelioOptions options;
    options.epochs = epochs;
    core::RevelioExplainer explainer(options);
    auto explain_once = [&] { return explainer.Explain(task, explain::Objective::kFactual); };

    PoolPoint point;
    point.nodes = nodes;
    point.layer_edges = gnn::BuildLayerEdges(g).num_layer_edges();
    point.epochs = epochs;

    auto time_once = [&] {
      util::Timer timer;
      explain::Explanation e = explain_once();
      benchmark::DoNotOptimize(e);
      return timer.ElapsedSeconds();
    };

    tensor::SetPoolEnabled(false);
    const explain::Explanation unpooled = explain_once();  // also warms caches

    tensor::SetPoolEnabled(true);
    (void)explain_once();  // warmup 1 primes the size classes
    (void)explain_once();  // warmup 2 reaches the steady state
    if (tensor::TensorPool* pool = tensor::TensorPool::ThreadLocal()) {
      const tensor::PoolStats before = pool->stats();
      const explain::Explanation pooled = explain_once();
      const tensor::PoolStats after = pool->stats();
      point.warm_misses = after.misses - before.misses;
      point.warm_hits = after.hits - before.hits;
      point.bitwise_equal = pooled.edge_scores == unpooled.edge_scores;
    }

    // Interleaved A/B timing: alternate unpooled and pooled blocks so CPU
    // frequency drift and scheduling noise hit both modes equally; report the
    // min over all of a mode's trials. Disabling the pool trims this thread's
    // free lists, so each block runs one untimed explanation after the mode
    // switch (for the pooled block that re-warm is load-bearing).
    constexpr int kBlocks = 3;
    constexpr int kTrialsPerBlock = 3;
    double unpooled_best = std::numeric_limits<double>::infinity();
    double pooled_best = std::numeric_limits<double>::infinity();
    for (int block = 0; block < kBlocks; ++block) {
      tensor::SetPoolEnabled(false);
      (void)explain_once();
      for (int trial = 0; trial < kTrialsPerBlock; ++trial) {
        unpooled_best = std::min(unpooled_best, time_once());
      }
      tensor::SetPoolEnabled(true);
      (void)explain_once();
      for (int trial = 0; trial < kTrialsPerBlock; ++trial) {
        pooled_best = std::min(pooled_best, time_once());
      }
    }
    point.unpooled_seconds = unpooled_best;
    point.pooled_seconds = pooled_best;
    point.pool_speedup =
        point.pooled_seconds > 0.0 ? point.unpooled_seconds / point.pooled_seconds : 0.0;
    points.push_back(point);
  }
  tensor::SetPoolEnabled(pool_was_enabled);
  plan::SetExecPlanEnabled(plan_was_enabled);
  return points;
}

void WritePoolJson(const std::vector<PoolPoint>& points, const std::string& path) {
  bench::WriteBenchJson(path, "tensor_pool", [&](obs::JsonWriter* w) {
    w->BeginObject();
    w->Key("points");
    w->BeginArray();
    for (const PoolPoint& p : points) {
      w->BeginObject();
      w->Key("nodes");
      w->Int(p.nodes);
      w->Key("layer_edges");
      w->Int(p.layer_edges);
      w->Key("epochs");
      w->Int(p.epochs);
      w->Key("unpooled_seconds");
      w->Double(p.unpooled_seconds);
      w->Key("pooled_seconds");
      w->Double(p.pooled_seconds);
      w->Key("pool_speedup");
      w->Double(p.pool_speedup);
      w->Key("bitwise_equal");
      w->Bool(p.bitwise_equal);
      w->Key("warm_misses");
      w->Int(static_cast<int64_t>(p.warm_misses));
      w->Key("warm_hits");
      w->Int(static_cast<int64_t>(p.warm_hits));
      w->EndObject();
    }
    w->EndArray();
    w->EndObject();
  });
}

void RunPoolSweepAndReport(bool quick, const std::string& out_path) {
  std::printf("== pooled vs legacy allocator sweep (writes %s) ==\n", out_path.c_str());
  const std::vector<PoolPoint> points = RunPoolSweep(quick);
  for (const PoolPoint& p : points) {
    std::printf(
        "pool nodes=%-5d layer_edges=%-6d epochs=%-3d  unpooled %8.5fs  pooled %8.5fs  "
        "speedup=%5.2fx  bitwise_equal=%s  warm_misses=%llu  warm_hits=%llu\n",
        p.nodes, p.layer_edges, p.epochs, p.unpooled_seconds, p.pooled_seconds, p.pool_speedup,
        p.bitwise_equal ? "yes" : "NO", static_cast<unsigned long long>(p.warm_misses),
        static_cast<unsigned long long>(p.warm_hits));
  }
  WritePoolJson(points, out_path);
}

// --- SIMD tier sweep (BENCH_simd.json) ---------------------------------------

struct SimdPoint {
  std::string kernel;
  int64_t elements = 0;         // flat work size, used to pick the largest point
  double scalar_seconds = 0.0;  // REVELIO_SIMD=0 path
  double simd_seconds = 0.0;
  double simd_speedup = 0.0;
  bool bitwise_equal = false;  // SIMD output vs scalar output (forward only)
};

struct Bf16Point {
  std::string kernel;
  int64_t f32_input_bytes = 0;   // tensor.matmul.input_bytes, storage off
  int64_t bf16_input_bytes = 0;  // same probe, storage on (warm cache)
  double f32_seconds = 0.0;
  double bf16_seconds = 0.0;
  double max_abs_error = 0.0;  // bf16 probe output vs f32 (stated-epsilon class)
};

// Interleaved min-of-N A/B timing of `run` with the SIMD toggle off vs on,
// at 1 thread: alternating per trial cancels frequency drift on a loaded
// single-core host, min-of-trials cancels scheduler noise.
template <typename Fn>
void TimeScalarVsSimd(Fn run, int reps, SimdPoint* point) {
  constexpr int kTrials = 5;
  auto time_reps = [&run, reps] {
    util::Timer timer;
    for (int r = 0; r < reps; ++r) {
      tensor::Tensor out = run();
      benchmark::DoNotOptimize(out);
    }
    return timer.ElapsedSeconds();
  };
  point->scalar_seconds = std::numeric_limits<double>::infinity();
  point->simd_seconds = std::numeric_limits<double>::infinity();
  tensor::simd::SetEnabled(false);
  const std::vector<float> scalar_out = run().values();
  tensor::simd::SetEnabled(true);
  point->bitwise_equal = run().values() == scalar_out;  // also warms both paths
  for (int trial = 0; trial < kTrials; ++trial) {
    tensor::simd::SetEnabled(false);
    point->scalar_seconds = std::min(point->scalar_seconds, time_reps());
    tensor::simd::SetEnabled(true);
    point->simd_seconds = std::min(point->simd_seconds, time_reps());
  }
  point->scalar_seconds /= reps;
  point->simd_seconds /= reps;
  point->simd_speedup =
      point->simd_seconds > 0.0 ? point->scalar_seconds / point->simd_seconds : 0.0;
}

// Scalar-vs-SIMD on the three kernel families the explanation hot path is
// made of, plus a bf16-vs-f32 eval probe. Sizes are L1/L2-resident on
// purpose: explanation training and fidelity probes work on small-graph
// tensors (KBs to a few MB), the regime where operand width is the
// bottleneck; DRAM-bound sizes would only measure memory bandwidth.
void RunSimdSweep(bool quick, std::vector<SimdPoint>* points, Bf16Point* bf16_point) {
  util::SetNumThreads(1);
  util::Rng rng(41);

  // Elementwise: the fused plan-replay chunk shape (add -> mul -> relu).
  const std::vector<int64_t> ew_sizes =
      quick ? std::vector<int64_t>{1 << 12, 1 << 16} : std::vector<int64_t>{1 << 12, 1 << 18};
  for (const int64_t n : ew_sizes) {
    tensor::Tensor a = tensor::Tensor::Randn(static_cast<int>(n / 64), 64, &rng);
    tensor::Tensor b = tensor::Tensor::Randn(static_cast<int>(n / 64), 64, &rng);
    SimdPoint point;
    point.kernel = "elementwise_" + std::to_string(n);
    point.elements = n;
    const int reps = static_cast<int>(std::max<int64_t>(1, (1 << 22) / n));
    TimeScalarVsSimd([&] { return tensor::Relu(tensor::Mul(tensor::Add(a, b), a)); }, reps,
                     &point);
    points->push_back(point);
  }

  // MatMul forward (n = k = m).
  const std::vector<int> mm_sizes = quick ? std::vector<int>{48, 96} : std::vector<int>{64, 160};
  for (const int n : mm_sizes) {
    tensor::Tensor a = tensor::Tensor::Randn(n, n, &rng);
    tensor::Tensor b = tensor::Tensor::Randn(n, n, &rng);
    SimdPoint point;
    point.kernel = "matmul_" + std::to_string(n);
    point.elements = int64_t{1} * n * n * n;
    const int reps = static_cast<int>(std::max<int64_t>(1, (1 << 24) / point.elements));
    TimeScalarVsSimd([&] { return tensor::MatMul(a, b); }, reps, &point);
    points->push_back(point);
  }

  // SpMM forward (per-edge axpy over the feature row).
  const std::vector<int> spmm_edges =
      quick ? std::vector<int>{1 << 11, 1 << 13} : std::vector<int>{1 << 12, 1 << 15};
  for (const int edges : spmm_edges) {
    const int nodes = edges / 4 + 1;
    const int dim = 32;
    tensor::Tensor x = tensor::Tensor::Randn(nodes, dim, &rng);
    tensor::Tensor w = tensor::Tensor::Uniform(edges, 1, 0.2f, 1.5f, &rng);
    std::vector<int> dst(edges), src(edges);
    for (int e = 0; e < edges; ++e) {
      dst[e] = rng.UniformInt(nodes);
      src[e] = rng.UniformInt(nodes);
    }
    const tensor::CsrPatternRef pattern = tensor::BuildCsrPattern(nodes, nodes, dst, src);
    SimdPoint point;
    point.kernel = "spmm_" + std::to_string(edges) + "x" + std::to_string(dim);
    point.elements = int64_t{1} * edges * dim;
    const int reps = static_cast<int>(std::max<int64_t>(1, (1 << 22) / point.elements));
    TimeScalarVsSimd([&] { return tensor::SpmmCsrWeighted(pattern, w, x); }, reps, &point);
    points->push_back(point);
  }

  // bf16 eval probe: a frozen-weight MatMul inside an EvalScope, the shape of
  // a fidelity-sweep forward. The tensor.matmul.input_bytes counter must read
  // exactly half under bf16 storage (2-byte operands for both grad-free
  // leaves); the output error stays in the stated-epsilon class.
  {
    const int n = 256, k = 64, m = 64;
    tensor::Tensor a = tensor::Tensor::Randn(n, k, &rng);
    tensor::Tensor b = tensor::Tensor::Randn(k, m, &rng);
    bf16_point->kernel = "matmul_eval_" + std::to_string(n) + "x" + std::to_string(k) + "x" +
                         std::to_string(m);
    const bool obs_was_enabled = obs::Enabled();
    const bool bf16_was_enabled = tensor::bf16::EvalStorageEnabled();
    obs::SetEnabled(true);
    obs::Counter* input_bytes =
        obs::MetricsRegistry::Global().GetCounter("tensor.matmul.input_bytes");
    tensor::simd::SetEnabled(tensor::simd::Lanes() > 1);

    tensor::bf16::SetEvalStorage(false);
    std::vector<float> f32_out;
    {
      tensor::bf16::EvalScope scope;
      f32_out = tensor::MatMul(a, b).values();
      const uint64_t before = input_bytes->Total();
      tensor::Tensor out = tensor::MatMul(a, b);
      benchmark::DoNotOptimize(out);
      bf16_point->f32_input_bytes = static_cast<int64_t>(input_bytes->Total() - before);
    }
    tensor::bf16::SetEvalStorage(true);
    std::vector<float> bf16_out;
    {
      tensor::bf16::EvalScope scope;
      bf16_out = tensor::MatMul(a, b).values();  // first probe pays the pack
      const uint64_t before = input_bytes->Total();
      tensor::Tensor out = tensor::MatMul(a, b);  // warm: packed caches hit
      benchmark::DoNotOptimize(out);
      bf16_point->bf16_input_bytes = static_cast<int64_t>(input_bytes->Total() - before);
    }
    for (size_t i = 0; i < f32_out.size(); ++i) {
      bf16_point->max_abs_error = std::max(
          bf16_point->max_abs_error, static_cast<double>(std::fabs(bf16_out[i] - f32_out[i])));
    }

    // Interleaved min-of-N timing, both modes inside the scope.
    constexpr int kTrials = 5;
    const int reps = 8;
    auto time_reps = [&] {
      tensor::bf16::EvalScope scope;
      util::Timer timer;
      for (int r = 0; r < reps; ++r) {
        tensor::Tensor out = tensor::MatMul(a, b);
        benchmark::DoNotOptimize(out);
      }
      return timer.ElapsedSeconds();
    };
    bf16_point->f32_seconds = std::numeric_limits<double>::infinity();
    bf16_point->bf16_seconds = std::numeric_limits<double>::infinity();
    for (int trial = 0; trial < kTrials; ++trial) {
      tensor::bf16::SetEvalStorage(false);
      bf16_point->f32_seconds = std::min(bf16_point->f32_seconds, time_reps() / reps);
      tensor::bf16::SetEvalStorage(true);
      bf16_point->bf16_seconds = std::min(bf16_point->bf16_seconds, time_reps() / reps);
    }
    tensor::bf16::SetEvalStorage(bf16_was_enabled);
    obs::SetEnabled(obs_was_enabled);
  }
  tensor::simd::SetEnabled(tensor::simd::Lanes() > 1);
}

void WriteSimdJson(const std::vector<SimdPoint>& points, const Bf16Point& bf16_point,
                   const std::string& path) {
  bench::WriteBenchJson(path, "simd_sweep", [&](obs::JsonWriter* w) {
    w->BeginObject();
    w->Key("isa");
    w->String(tensor::simd::IsaName());
    w->Key("lanes");
    w->Int(tensor::simd::Lanes());
    w->Key("points");
    w->BeginArray();
    for (const SimdPoint& p : points) {
      w->BeginObject();
      w->Key("kernel");
      w->String(p.kernel);
      w->Key("elements");
      w->Int(p.elements);
      w->Key("scalar_seconds");
      w->Double(p.scalar_seconds);
      w->Key("simd_seconds");
      w->Double(p.simd_seconds);
      w->Key("simd_speedup");
      w->Double(p.simd_speedup);
      w->Key("bitwise_equal");
      w->Bool(p.bitwise_equal);
      w->EndObject();
    }
    w->EndArray();
    w->Key("bf16");
    w->BeginObject();
    w->Key("kernel");
    w->String(bf16_point.kernel);
    w->Key("f32_input_bytes");
    w->Int(bf16_point.f32_input_bytes);
    w->Key("bf16_input_bytes");
    w->Int(bf16_point.bf16_input_bytes);
    w->Key("f32_seconds");
    w->Double(bf16_point.f32_seconds);
    w->Key("bf16_seconds");
    w->Double(bf16_point.bf16_seconds);
    w->Key("max_abs_error");
    w->Double(bf16_point.max_abs_error);
    w->EndObject();
    w->EndObject();
  });
}

void RunSimdSweepAndReport(bool quick, const std::string& out_path) {
  std::printf("== scalar vs SIMD sweep, 1 thread, %s/%d lanes (writes %s) ==\n",
              tensor::simd::IsaName(), tensor::simd::Lanes(), out_path.c_str());
  std::vector<SimdPoint> points;
  Bf16Point bf16_point;
  RunSimdSweep(quick, &points, &bf16_point);
  for (const SimdPoint& p : points) {
    std::printf("%-22s scalar %9.6fs  simd %9.6fs  speedup=%5.2fx  bitwise_equal=%s\n",
                p.kernel.c_str(), p.scalar_seconds, p.simd_seconds, p.simd_speedup,
                p.bitwise_equal ? "yes" : "NO");
  }
  std::printf("%-22s f32 %lld bytes %9.6fs  bf16 %lld bytes %9.6fs  max_abs_err=%.3g\n",
              bf16_point.kernel.c_str(), static_cast<long long>(bf16_point.f32_input_bytes),
              bf16_point.f32_seconds, static_cast<long long>(bf16_point.bf16_input_bytes),
              bf16_point.bf16_seconds, bf16_point.max_abs_error);
  WriteSimdJson(points, bf16_point, out_path);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  // benchmark::Initialize strips its own flags; what remains is ours.
  util::Flags flags(argc, argv);
  bench::InitTelemetry(flags, nullptr, nullptr);
  if (flags.Has("threads")) util::SetNumThreads(flags.GetInt("threads", 1));
  const bool quick = flags.GetBool("quick", false);
  const std::string spmm_out = flags.GetString("spmm-out", "BENCH_spmm.json");
  const std::string pool_out = flags.GetString("pool-out", "BENCH_pool.json");
  const std::string simd_out = flags.GetString("simd-out", "BENCH_simd.json");
  if (flags.GetBool("simd-sweep", false)) {
    // Scalar-vs-SIMD and bf16-vs-f32 sweep only: the simd-regression ctest
    // path (with `--quick` sizes when combined).
    RunSimdSweepAndReport(quick, simd_out);
    benchmark::Shutdown();
    return 0;
  }
  if (flags.GetBool("pool-only", false)) {
    // Reduced-size allocator sweep only: the pool-regression ctest path.
    RunPoolSweepAndReport(quick, pool_out);
    benchmark::Shutdown();
    return 0;
  }
  if (quick) {
    // Reduced-size SpMM sweep only: the bench-regression ctest path.
    RunSpmmSweepAndReport(/*quick=*/true, spmm_out);
    benchmark::Shutdown();
    return 0;
  }
  RunThreadSweep();
  RunSpmmSweepAndReport(/*quick=*/false, spmm_out);
  RunPoolSweepAndReport(/*quick=*/false, pool_out);
  RunSimdSweepAndReport(/*quick=*/false, simd_out);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
