// google-benchmark microbenchmarks for the hot kernels every experiment sits
// on: matmul, message-passing gather/scatter, flow enumeration, the Eq. 5/7
// mask transformation, and a full masked GNN forward pass.

#include <benchmark/benchmark.h>

#include "flow/message_flow.h"
#include "gnn/model.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace {

using namespace revelio;  // NOLINT

void BM_MatMul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  util::Rng rng(1);
  tensor::Tensor a = tensor::Tensor::Randn(n, n, &rng);
  tensor::Tensor b = tensor::Tensor::Randn(n, n, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * int64_t{2} * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128);

void BM_GatherScatter(benchmark::State& state) {
  const int edges = static_cast<int>(state.range(0));
  const int nodes = edges / 4 + 1;
  util::Rng rng(2);
  tensor::Tensor h = tensor::Tensor::Randn(nodes, 32, &rng);
  std::vector<int> src(edges), dst(edges);
  for (int e = 0; e < edges; ++e) {
    src[e] = rng.UniformInt(nodes);
    dst[e] = rng.UniformInt(nodes);
  }
  for (auto _ : state) {
    tensor::Tensor messages = tensor::GatherRows(h, src);
    benchmark::DoNotOptimize(tensor::ScatterAddRows(messages, dst, nodes));
  }
  state.SetItemsProcessed(state.iterations() * edges);
}
BENCHMARK(BM_GatherScatter)->Arg(1024)->Arg(8192);

void BM_FlowEnumeration(benchmark::State& state) {
  const int branching = static_cast<int>(state.range(0));
  // In-tree of depth 3 toward node 0.
  int nodes = 1 + branching + branching * branching + branching * branching * branching;
  graph::Graph g(nodes);
  int next = 1;
  std::vector<int> frontier{0};
  for (int depth = 0; depth < 3; ++depth) {
    std::vector<int> next_frontier;
    for (int parent : frontier) {
      for (int child = 0; child < branching; ++child) {
        g.AddEdge(next, parent);
        next_frontier.push_back(next++);
      }
    }
    frontier = std::move(next_frontier);
  }
  const gnn::LayerEdgeSet edges = gnn::BuildLayerEdges(g);
  int64_t flows = 0;
  for (auto _ : state) {
    flow::FlowSet set = flow::EnumerateFlowsToTarget(edges, 0, 3);
    flows = set.num_flows();
    benchmark::DoNotOptimize(set);
  }
  state.SetItemsProcessed(state.iterations() * flows);
}
BENCHMARK(BM_FlowEnumeration)->Arg(3)->Arg(6)->Arg(9);

void BM_MaskTransformation(benchmark::State& state) {
  // Eq. 7: omega[E] = sigmoid(I * omega[F] (.) exp(w)) via scatter-add.
  const int branching = static_cast<int>(state.range(0));
  int nodes = 1 + branching + branching * branching + branching * branching * branching;
  graph::Graph g(nodes);
  int next = 1;
  std::vector<int> frontier{0};
  for (int depth = 0; depth < 3; ++depth) {
    std::vector<int> next_frontier;
    for (int parent : frontier) {
      for (int child = 0; child < branching; ++child) {
        g.AddEdge(next, parent);
        next_frontier.push_back(next++);
      }
    }
    frontier = std::move(next_frontier);
  }
  const gnn::LayerEdgeSet edges = gnn::BuildLayerEdges(g);
  flow::FlowSet flows = flow::EnumerateFlowsToTarget(edges, 0, 3);
  util::Rng rng(3);
  tensor::Tensor mask_params =
      tensor::Tensor::Randn(flows.num_flows(), 1, &rng).WithRequiresGrad();
  tensor::Tensor layer_weights = tensor::Tensor::Zeros(3, 1).WithRequiresGrad();
  for (auto _ : state) {
    tensor::Tensor omega = tensor::Tanh(mask_params);
    tensor::Tensor scale = tensor::Exp(layer_weights);
    for (int l = 0; l < 3; ++l) {
      tensor::Tensor accumulated =
          tensor::ScatterAddRows(omega, flows.EdgesAtLayer(l), flows.num_layer_edges());
      benchmark::DoNotOptimize(tensor::Sigmoid(
          tensor::ScaleByScalarTensor(accumulated, tensor::Select(scale, l, 0))));
    }
  }
  state.SetItemsProcessed(state.iterations() * flows.num_flows() * 3);
}
BENCHMARK(BM_MaskTransformation)->Arg(4)->Arg(8);

void BM_MaskedGnnForward(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  util::Rng rng(5);
  graph::Graph g(nodes);
  for (int v = 1; v < nodes; ++v) g.AddUndirectedEdge(v, rng.UniformInt(v));
  gnn::GnnConfig config;
  config.arch = gnn::GnnArch::kGcn;
  config.input_dim = 16;
  config.hidden_dim = 32;
  config.num_classes = 4;
  gnn::GnnModel model(config);
  tensor::Tensor x = tensor::Tensor::Randn(nodes, 16, &rng);
  const gnn::LayerEdgeSet edges = gnn::BuildLayerEdges(g);
  std::vector<tensor::Tensor> masks(
      3, tensor::Tensor::Full(edges.num_layer_edges(), 1, 0.7f));
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Run(g, edges, x, masks).logits);
  }
  state.SetItemsProcessed(state.iterations() * edges.num_layer_edges());
}
BENCHMARK(BM_MaskedGnnForward)->Arg(128)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();
