// Reproduces paper Table V: average running time (seconds) per explanation
// method per dataset. PGExplainer is reported as "training (inference)".
// The headline shape: traditional gradient methods are fastest; SubgraphX is
// slowest by orders of magnitude; among flow-based methods Revelio is the
// fastest and scales with T*T_Phi instead of |F|*T_Phi (Table II).

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <utility>

#include "bench_common.h"
#include "eval/runner.h"
#include "explain/batch_runner.h"
#include "explain/pgexplainer.h"
#include "obs/recorder.h"
#include "obs/trace.h"
#include "plan/plan.h"
#include "tensor/pool.h"
#include "util/timer.h"

namespace {

using namespace revelio;          // NOLINT
using namespace revelio::bench;   // NOLINT

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  BenchScope scope = ParseScope(
      flags, {"ba_shapes", "tree_cycles", "mutag_like", "ba_2motifs"}, 3, 60);
  // Table V uses GCN targets; override with --archs to measure others.
  if (!flags.Has("archs")) scope.archs = {gnn::GnnArch::kGcn};

  std::printf("== Table V: average explanation time in seconds (lower is better) ==\n");
  PrintScope("table5", scope);

  std::vector<std::string> header{"Method"};
  for (const auto& dataset : scope.datasets) header.push_back(dataset);
  util::TablePrinter table(header);

  const gnn::GnnArch arch = scope.archs[0];
  // Prepare models/instances once per dataset.
  std::vector<eval::PreparedModel> prepared;
  std::vector<std::vector<eval::EvalInstance>> instances;
  for (const auto& dataset : scope.datasets) {
    prepared.push_back(eval::PrepareModel(dataset, arch, scope.config));
    instances.push_back(
        eval::SelectInstances(prepared.back(), scope.config, eval::InstanceFilter::kAny));
    LOG_INFO << dataset << " ready (" << instances.back().size() << " instances)";
  }

  for (const std::string& method : scope.methods) {
    std::vector<std::string> row{method};
    for (size_t d = 0; d < scope.datasets.size(); ++d) {
      if (!MethodSupportsArch(method, arch) ||
          !eval::ArchSupportsDataset(arch, scope.datasets[d])) {
        row.push_back("N/A");
        continue;
      }
      auto explainer = eval::MakeExplainer(method, scope.config);
      // Amortized methods: report "training (inference)" like the paper.
      double train_seconds = 0.0;
      if (eval::NeedsAmortizedTraining(*explainer)) {
        obs::ScopedSpan train_span("table5.train_amortized");
        eval::TrainAmortized(explainer.get(), prepared[d], instances[d],
                             explain::Objective::kFactual, scope.config);
        train_seconds = train_span.ElapsedSeconds();
      }
      std::vector<explain::ExplanationTask> tasks;
      tasks.reserve(instances[d].size());
      for (const auto& instance : instances[d]) {
        tasks.push_back(instance.MakeTask(prepared[d].model.get()));
      }
      double explain_seconds = 0.0;
      {
        // The span doubles as the wall clock; it also lands in --trace-out.
        obs::ScopedSpan explain_span("table5.explain_all");
        // Instances run concurrently under --threads > 1; the reported number
        // is wall-clock per instance, i.e. throughput including the speedup.
        (void)eval::ExplainAll(explainer.get(), tasks, explain::Objective::kFactual);
        explain_seconds = explain_span.ElapsedSeconds();
      }
      const int count = static_cast<int>(tasks.size());
      const double per_instance = count > 0 ? explain_seconds / count : 0.0;
      if (eval::NeedsAmortizedTraining(*explainer)) {
        row.push_back(util::TablePrinter::FormatDouble(train_seconds, 2) + " (" +
                      util::TablePrinter::FormatDouble(per_instance, 3) + ")");
      } else {
        row.push_back(util::TablePrinter::FormatDouble(per_instance, 3));
      }
      LOG_INFO << method << " on " << scope.datasets[d] << ": " << per_instance << "s/inst";
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf("\nNote: per-instance seconds; the paper reports totals over 50 instances\n"
              "with 500 epochs. Shapes to compare: GradCAM/DeepLIFT fastest, SubgraphX\n"
              "slowest, Revelio fastest among flow-based methods on flow-heavy datasets.\n");

  // --pool-out FILE: re-run the Revelio column with the tensor pool disabled
  // and enabled and write the per-dataset comparison (the Table V counterpart
  // of the micro-kernel pool sweep; scores must match bitwise).
  const std::string pool_out = flags.GetString("pool-out", "");
  if (!pool_out.empty()) {
    struct PoolRow {
      std::string dataset;
      int instances = 0;
      double unpooled_seconds = 0.0;
      double pooled_seconds = 0.0;
      double pool_speedup = 0.0;
      bool bitwise_equal = false;
    };
    std::vector<PoolRow> rows;
    const bool pool_was_enabled = tensor::PoolEnabled();
    std::printf("\n== Revelio pooled vs unpooled (writes %s) ==\n", pool_out.c_str());
    for (size_t d = 0; d < scope.datasets.size(); ++d) {
      auto explainer = eval::MakeExplainer("Revelio", scope.config);
      std::vector<explain::ExplanationTask> tasks;
      tasks.reserve(instances[d].size());
      for (const auto& instance : instances[d]) {
        tasks.push_back(instance.MakeTask(prepared[d].model.get()));
      }
      auto run = [&] {
        util::Timer timer;
        std::vector<explain::Explanation> explanations =
            eval::ExplainAll(explainer.get(), tasks, explain::Objective::kFactual);
        return std::pair<std::vector<explain::Explanation>, double>(std::move(explanations),
                                                                    timer.ElapsedSeconds());
      };
      PoolRow row;
      row.dataset = scope.datasets[d];
      row.instances = static_cast<int>(tasks.size());
      tensor::SetPoolEnabled(false);
      (void)run();  // warm model/graph caches
      auto [unpooled, unpooled_seconds] = run();
      row.unpooled_seconds = unpooled_seconds;
      tensor::SetPoolEnabled(true);
      (void)run();  // prime each worker thread's pool
      auto [pooled, pooled_seconds] = run();
      row.pooled_seconds = pooled_seconds;
      row.pool_speedup = pooled_seconds > 0.0 ? unpooled_seconds / pooled_seconds : 0.0;
      row.bitwise_equal = true;
      for (size_t i = 0; i < pooled.size(); ++i) {
        if (pooled[i].edge_scores != unpooled[i].edge_scores) row.bitwise_equal = false;
      }
      std::printf("%-12s instances=%-3d  unpooled %8.4fs  pooled %8.4fs  speedup=%5.2fx  "
                  "bitwise_equal=%s\n",
                  row.dataset.c_str(), row.instances, row.unpooled_seconds, row.pooled_seconds,
                  row.pool_speedup, row.bitwise_equal ? "yes" : "NO");
      rows.push_back(std::move(row));
    }
    tensor::SetPoolEnabled(pool_was_enabled);
    bench::WriteBenchJson(pool_out, "table5_pool", [&](obs::JsonWriter* w) {
      w->BeginObject();
      w->Key("points");
      w->BeginArray();
      for (const PoolRow& r : rows) {
        w->BeginObject();
        w->Key("dataset");
        w->String(r.dataset);
        w->Key("instances");
        w->Int(r.instances);
        w->Key("unpooled_seconds");
        w->Double(r.unpooled_seconds);
        w->Key("pooled_seconds");
        w->Double(r.pooled_seconds);
        w->Key("pool_speedup");
        w->Double(r.pool_speedup);
        w->Key("bitwise_equal");
        w->Bool(r.bitwise_equal);
        w->EndObject();
      }
      w->EndArray();
      w->EndObject();
    });
  }

  // --batch-sweep FILE: measure mega-batched Revelio throughput against the
  // sequential per-instance loop at increasing group sizes, verifying every
  // point stays bitwise-equal to the sequential explanations. The speedup
  // comes from amortizing per-op dispatch over the fused block-diagonal
  // graph (see DESIGN.md section 10); run with --threads 1 for the paper
  // comparison.
  const std::string batch_sweep_out = flags.GetString("batch-sweep", "");
  if (!batch_sweep_out.empty()) {
    struct SweepRow {
      std::string dataset;
      int instances = 0;
      int batch_size = 0;  // 0 = the sequential baseline row
      double seconds = 0.0;
      double explanations_per_sec = 0.0;
      double speedup = 1.0;  // vs the sequential baseline
      bool bitwise_equal = true;
    };
    std::vector<SweepRow> rows;
    const bool megabatch_was_enabled = explain::MegaBatchEnabled();
    const int megabatch_old_size = explain::MegaBatchSize();
    // Pin execution plans off: replay would accelerate the sequential
    // baseline far more than the fused groups (small per-instance tensors are
    // dispatch-dominated), compressing the ratio this sweep isolates. The
    // plan x megabatch composition is measured by --plan-sweep instead.
    const bool batch_sweep_plans = plan::ExecPlanEnabled();
    plan::SetExecPlanEnabled(false);
    std::printf("\n== Revelio mega-batched vs sequential (writes %s) ==\n",
                batch_sweep_out.c_str());
    for (size_t d = 0; d < scope.datasets.size(); ++d) {
      auto explainer = eval::MakeExplainer("Revelio", scope.config);
      std::vector<explain::ExplanationTask> tasks;
      tasks.reserve(instances[d].size());
      for (const auto& instance : instances[d]) {
        tasks.push_back(instance.MakeTask(prepared[d].model.get()));
      }
      const int count = static_cast<int>(tasks.size());
      if (count == 0) continue;
      auto run = [&] {
        util::Timer timer;
        std::vector<explain::Explanation> explanations =
            eval::ExplainAll(explainer.get(), tasks, explain::Objective::kFactual);
        return std::pair<std::vector<explain::Explanation>, double>(std::move(explanations),
                                                                    timer.ElapsedSeconds());
      };
      explain::SetMegaBatchEnabled(false);
      (void)run();  // warm model/graph caches and the tensor pool
      auto [sequential, sequential_seconds] = run();
      SweepRow baseline;
      baseline.dataset = scope.datasets[d];
      baseline.instances = count;
      baseline.seconds = sequential_seconds;
      baseline.explanations_per_sec =
          sequential_seconds > 0.0 ? count / sequential_seconds : 0.0;
      std::printf("%-12s instances=%-3d sequential %8.4fs (%7.2f expl/s)\n",
                  baseline.dataset.c_str(), count, baseline.seconds,
                  baseline.explanations_per_sec);
      rows.push_back(baseline);

      explain::SetMegaBatchEnabled(true);
      for (const int batch_size : {1, 2, 4, 8, 16, 32}) {
        if (batch_size > count && batch_size != 32) continue;
        explain::SetMegaBatchSize(batch_size);
        (void)run();  // prime the pool size classes for this group geometry
        auto [batched, batched_seconds] = run();
        SweepRow row;
        row.dataset = scope.datasets[d];
        row.instances = count;
        row.batch_size = batch_size;
        row.seconds = batched_seconds;
        row.explanations_per_sec = batched_seconds > 0.0 ? count / batched_seconds : 0.0;
        row.speedup = batched_seconds > 0.0 ? sequential_seconds / batched_seconds : 0.0;
        row.bitwise_equal = batched.size() == sequential.size();
        for (size_t i = 0; i < batched.size() && row.bitwise_equal; ++i) {
          if (batched[i].edge_scores != sequential[i].edge_scores ||
              batched[i].flow_scores != sequential[i].flow_scores) {
            row.bitwise_equal = false;
          }
        }
        std::printf("%-12s batch=%-3d %8.4fs (%7.2f expl/s)  speedup=%5.2fx  "
                    "bitwise_equal=%s\n",
                    row.dataset.c_str(), row.batch_size, row.seconds,
                    row.explanations_per_sec, row.speedup, row.bitwise_equal ? "yes" : "NO");
        rows.push_back(std::move(row));
      }
    }
    explain::SetMegaBatchEnabled(megabatch_was_enabled);
    explain::SetMegaBatchSize(megabatch_old_size);
    plan::SetExecPlanEnabled(batch_sweep_plans);
    bench::WriteBenchJson(batch_sweep_out, "megabatch_sweep", [&](obs::JsonWriter* w) {
      w->BeginObject();
      w->Key("points");
      w->BeginArray();
      for (const SweepRow& r : rows) {
        w->BeginObject();
        w->Key("dataset");
        w->String(r.dataset);
        w->Key("instances");
        w->Int(r.instances);
        w->Key("batch_size");
        w->Int(r.batch_size);
        w->Key("seconds");
        w->Double(r.seconds);
        w->Key("explanations_per_sec");
        w->Double(r.explanations_per_sec);
        w->Key("speedup");
        w->Double(r.speedup);
        w->Key("bitwise_equal");
        w->Bool(r.bitwise_equal);
        w->EndObject();
      }
      w->EndArray();
      w->EndObject();
    });
  }

  // --plan-sweep FILE: measure the recorded-execution-plan replay path
  // (REVELIO_EXEC_PLAN, DESIGN.md section 12) against the fully eager loop at
  // increasing epoch counts. Epoch 0 records the tape either way; every
  // further epoch replays it (fused elementwise chains, level-parallel
  // steps, zero pool traffic), so the speedup grows as the record cost
  // amortizes — the largest epoch count is the gated point. Every point must
  // stay bitwise-equal and report zero replay-time pool acquisitions. Run
  // with --threads 1 for the paper comparison.
  const std::string plan_sweep_out = flags.GetString("plan-sweep", "");
  if (!plan_sweep_out.empty()) {
    struct PlanRow {
      std::string dataset;
      int instances = 0;
      int epochs = 0;
      double eager_seconds = 0.0;
      double plan_seconds = 0.0;
      double plan_speedup = 0.0;
      bool bitwise_equal = true;
      uint64_t replays = 0;
      uint64_t replay_pool_acquires = 0;
    };
    std::vector<PlanRow> rows;
    const bool plan_was_enabled = plan::ExecPlanEnabled();
    const bool metrics_were_enabled = obs::Enabled();
    obs::SetEnabled(true);  // the sweep reads the plan.* counters
    obs::Counter* replays_counter = obs::MetricsRegistry::Global().GetCounter("plan.replays");
    obs::Counter* acquires_counter =
        obs::MetricsRegistry::Global().GetCounter("plan.replay_pool_acquires");
    constexpr int kPlanReps = 5;
    std::printf("\n== Revelio plan replay vs eager (writes %s) ==\n", plan_sweep_out.c_str());
    for (size_t d = 0; d < scope.datasets.size(); ++d) {
      std::vector<int> epoch_points{scope.config.explainer_epochs / 10,
                                    scope.config.explainer_epochs / 2,
                                    scope.config.explainer_epochs};
      for (int& e : epoch_points) e = std::max(e, 2);
      epoch_points.erase(std::unique(epoch_points.begin(), epoch_points.end()),
                         epoch_points.end());
      for (const int epochs : epoch_points) {
        eval::RunnerConfig config = scope.config;
        config.explainer_epochs = epochs;
        auto explainer = eval::MakeExplainer("Revelio", config);
        std::vector<explain::ExplanationTask> tasks;
        tasks.reserve(instances[d].size());
        for (const auto& instance : instances[d]) {
          tasks.push_back(instance.MakeTask(prepared[d].model.get()));
        }
        if (tasks.empty()) continue;
        auto run = [&] {
          util::Timer timer;
          std::vector<explain::Explanation> explanations =
              eval::ExplainAll(explainer.get(), tasks, explain::Objective::kFactual);
          return std::pair<std::vector<explain::Explanation>, double>(std::move(explanations),
                                                                      timer.ElapsedSeconds());
        };
        PlanRow row;
        row.dataset = scope.datasets[d];
        row.instances = static_cast<int>(tasks.size());
        row.epochs = epochs;
        // Warm both modes (model/graph caches, pool size classes), then take
        // the best of interleaved reps so scheduler drift hits both equally.
        plan::SetExecPlanEnabled(false);
        (void)run();
        plan::SetExecPlanEnabled(true);
        (void)run();
        std::vector<explain::Explanation> eager_explanations;
        std::vector<explain::Explanation> plan_explanations;
        double eager_best = 0.0;
        double plan_best = 0.0;
        for (int rep = 0; rep < kPlanReps; ++rep) {
          plan::SetExecPlanEnabled(false);
          auto [eager, eager_seconds] = run();
          plan::SetExecPlanEnabled(true);
          const uint64_t replays_before = replays_counter->Total();
          const uint64_t acquires_before = acquires_counter->Total();
          auto [planned, plan_seconds] = run();
          row.replays = replays_counter->Total() - replays_before;
          row.replay_pool_acquires += acquires_counter->Total() - acquires_before;
          if (rep == 0 || eager_seconds < eager_best) eager_best = eager_seconds;
          if (rep == 0 || plan_seconds < plan_best) plan_best = plan_seconds;
          if (rep == 0) {
            eager_explanations = std::move(eager);
            plan_explanations = std::move(planned);
          }
        }
        row.eager_seconds = eager_best;
        row.plan_seconds = plan_best;
        row.plan_speedup = plan_best > 0.0 ? eager_best / plan_best : 0.0;
        row.bitwise_equal = eager_explanations.size() == plan_explanations.size();
        for (size_t i = 0; i < eager_explanations.size() && row.bitwise_equal; ++i) {
          if (eager_explanations[i].edge_scores != plan_explanations[i].edge_scores ||
              eager_explanations[i].flow_scores != plan_explanations[i].flow_scores) {
            row.bitwise_equal = false;
          }
        }
        std::printf("%-12s epochs=%-3d  eager %8.4fs  plan %8.4fs  speedup=%5.2fx  "
                    "replays=%llu  replay_acquires=%llu  bitwise_equal=%s\n",
                    row.dataset.c_str(), row.epochs, row.eager_seconds, row.plan_seconds,
                    row.plan_speedup, static_cast<unsigned long long>(row.replays),
                    static_cast<unsigned long long>(row.replay_pool_acquires),
                    row.bitwise_equal ? "yes" : "NO");
        rows.push_back(std::move(row));
      }
    }
    plan::SetExecPlanEnabled(plan_was_enabled);
    obs::SetEnabled(metrics_were_enabled);
    bench::WriteBenchJson(plan_sweep_out, "plan_sweep", [&](obs::JsonWriter* w) {
      w->BeginObject();
      w->Key("points");
      w->BeginArray();
      for (const PlanRow& r : rows) {
        w->BeginObject();
        w->Key("dataset");
        w->String(r.dataset);
        w->Key("instances");
        w->Int(r.instances);
        w->Key("epochs");
        w->Int(r.epochs);
        w->Key("eager_seconds");
        w->Double(r.eager_seconds);
        w->Key("plan_seconds");
        w->Double(r.plan_seconds);
        w->Key("plan_speedup");
        w->Double(r.plan_speedup);
        w->Key("bitwise_equal");
        w->Bool(r.bitwise_equal);
        w->Key("replays");
        w->Uint(r.replays);
        w->Key("replay_pool_acquires");
        w->Uint(r.replay_pool_acquires);
        w->EndObject();
      }
      w->EndArray();
      w->EndObject();
    });
  }

  // --obs-out FILE: measure the flight recorder's overhead on the Revelio
  // column. Runs the same task list with the recorder disabled and enabled,
  // interleaved min-of-N so drift hits both modes equally, and verifies the
  // explanations stay bitwise-equal — the observability layer must never
  // touch the numerics. obs_bench_check gates overhead_ratio in CI.
  const std::string obs_out = flags.GetString("obs-out", "");
  if (!obs_out.empty()) {
    struct ObsRow {
      std::string dataset;
      int instances = 0;
      double off_seconds = 0.0;  // REVELIO_FLIGHT_RECORDER=0 path, best of N
      double on_seconds = 0.0;   // recorder enabled, best of N
      double overhead_ratio = 0.0;
      bool bitwise_equal = false;
      uint64_t flight_events = 0;
    };
    std::vector<ObsRow> rows;
    const bool flight_was_enabled = obs::FlightEnabled();
    constexpr int kReps = 3;
    std::printf("\n== Revelio flight recorder on vs off (writes %s) ==\n", obs_out.c_str());
    for (size_t d = 0; d < scope.datasets.size(); ++d) {
      auto explainer = eval::MakeExplainer("Revelio", scope.config);
      std::vector<explain::ExplanationTask> tasks;
      tasks.reserve(instances[d].size());
      for (const auto& instance : instances[d]) {
        tasks.push_back(instance.MakeTask(prepared[d].model.get()));
      }
      if (tasks.empty()) continue;
      auto run = [&] {
        util::Timer timer;
        std::vector<explain::Explanation> explanations =
            eval::ExplainAll(explainer.get(), tasks, explain::Objective::kFactual);
        return std::pair<std::vector<explain::Explanation>, double>(std::move(explanations),
                                                                    timer.ElapsedSeconds());
      };
      ObsRow row;
      row.dataset = scope.datasets[d];
      row.instances = static_cast<int>(tasks.size());
      // Warm both modes: caches/pool for off, name interning + ring shards
      // for on, so neither mode pays first-touch costs inside the timing.
      obs::SetFlightEnabled(false);
      (void)run();
      obs::SetFlightEnabled(true);
      (void)run();
      std::vector<explain::Explanation> off_explanations;
      std::vector<explain::Explanation> on_explanations;
      double off_best = 0.0;
      double on_best = 0.0;
      for (int rep = 0; rep < kReps; ++rep) {
        obs::SetFlightEnabled(false);
        auto [off, off_seconds] = run();
        obs::SetFlightEnabled(true);
        auto [on, on_seconds] = run();
        if (rep == 0 || off_seconds < off_best) off_best = off_seconds;
        if (rep == 0 || on_seconds < on_best) on_best = on_seconds;
        if (rep == 0) {
          off_explanations = std::move(off);
          on_explanations = std::move(on);
        }
      }
      row.off_seconds = off_best;
      row.on_seconds = on_best;
      row.overhead_ratio = off_best > 0.0 ? on_best / off_best : 0.0;
      row.flight_events = obs::FlightRecorder::Global().total_recorded();
      row.bitwise_equal = off_explanations.size() == on_explanations.size();
      for (size_t i = 0; i < off_explanations.size() && row.bitwise_equal; ++i) {
        if (off_explanations[i].edge_scores != on_explanations[i].edge_scores ||
            off_explanations[i].flow_scores != on_explanations[i].flow_scores) {
          row.bitwise_equal = false;
        }
      }
      std::printf("%-12s instances=%-3d  off %8.4fs  on %8.4fs  overhead=%5.3fx  "
                  "events=%llu  bitwise_equal=%s\n",
                  row.dataset.c_str(), row.instances, row.off_seconds, row.on_seconds,
                  row.overhead_ratio, static_cast<unsigned long long>(row.flight_events),
                  row.bitwise_equal ? "yes" : "NO");
      rows.push_back(std::move(row));
    }
    obs::SetFlightEnabled(flight_was_enabled);
    bench::WriteBenchJson(obs_out, "table5_obs", [&](obs::JsonWriter* w) {
      w->BeginObject();
      w->Key("flight_capacity");
      w->Uint(obs::FlightRecorder::Global().capacity());
      w->Key("points");
      w->BeginArray();
      for (const ObsRow& r : rows) {
        w->BeginObject();
        w->Key("dataset");
        w->String(r.dataset);
        w->Key("instances");
        w->Int(r.instances);
        w->Key("off_seconds");
        w->Double(r.off_seconds);
        w->Key("on_seconds");
        w->Double(r.on_seconds);
        w->Key("overhead_ratio");
        w->Double(r.overhead_ratio);
        w->Key("bitwise_equal");
        w->Bool(r.bitwise_equal);
        w->Key("flight_events");
        w->Uint(r.flight_events);
        w->EndObject();
      }
      w->EndArray();
      w->EndObject();
    });
  }
  return 0;
}
