// Reproduces paper Table V: average running time (seconds) per explanation
// method per dataset. PGExplainer is reported as "training (inference)".
// The headline shape: traditional gradient methods are fastest; SubgraphX is
// slowest by orders of magnitude; among flow-based methods Revelio is the
// fastest and scales with T*T_Phi instead of |F|*T_Phi (Table II).

#include <cstdio>

#include "bench_common.h"
#include "eval/runner.h"
#include "explain/pgexplainer.h"
#include "obs/trace.h"
#include "tensor/pool.h"
#include "util/timer.h"

namespace {

using namespace revelio;          // NOLINT
using namespace revelio::bench;   // NOLINT

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  BenchScope scope = ParseScope(
      flags, {"ba_shapes", "tree_cycles", "mutag_like", "ba_2motifs"}, 3, 60);
  // Table V uses GCN targets; override with --archs to measure others.
  if (!flags.Has("archs")) scope.archs = {gnn::GnnArch::kGcn};

  std::printf("== Table V: average explanation time in seconds (lower is better) ==\n");
  PrintScope("table5", scope);

  std::vector<std::string> header{"Method"};
  for (const auto& dataset : scope.datasets) header.push_back(dataset);
  util::TablePrinter table(header);

  const gnn::GnnArch arch = scope.archs[0];
  // Prepare models/instances once per dataset.
  std::vector<eval::PreparedModel> prepared;
  std::vector<std::vector<eval::EvalInstance>> instances;
  for (const auto& dataset : scope.datasets) {
    prepared.push_back(eval::PrepareModel(dataset, arch, scope.config));
    instances.push_back(
        eval::SelectInstances(prepared.back(), scope.config, eval::InstanceFilter::kAny));
    LOG_INFO << dataset << " ready (" << instances.back().size() << " instances)";
  }

  for (const std::string& method : scope.methods) {
    std::vector<std::string> row{method};
    for (size_t d = 0; d < scope.datasets.size(); ++d) {
      if (!MethodSupportsArch(method, arch) ||
          !eval::ArchSupportsDataset(arch, scope.datasets[d])) {
        row.push_back("N/A");
        continue;
      }
      auto explainer = eval::MakeExplainer(method, scope.config);
      // Amortized methods: report "training (inference)" like the paper.
      double train_seconds = 0.0;
      if (eval::NeedsAmortizedTraining(*explainer)) {
        obs::ScopedSpan train_span("table5.train_amortized");
        eval::TrainAmortized(explainer.get(), prepared[d], instances[d],
                             explain::Objective::kFactual, scope.config);
        train_seconds = train_span.ElapsedSeconds();
      }
      std::vector<explain::ExplanationTask> tasks;
      tasks.reserve(instances[d].size());
      for (const auto& instance : instances[d]) {
        tasks.push_back(instance.MakeTask(prepared[d].model.get()));
      }
      double explain_seconds = 0.0;
      {
        // The span doubles as the wall clock; it also lands in --trace-out.
        obs::ScopedSpan explain_span("table5.explain_all");
        // Instances run concurrently under --threads > 1; the reported number
        // is wall-clock per instance, i.e. throughput including the speedup.
        (void)eval::ExplainAll(explainer.get(), tasks, explain::Objective::kFactual);
        explain_seconds = explain_span.ElapsedSeconds();
      }
      const int count = static_cast<int>(tasks.size());
      const double per_instance = count > 0 ? explain_seconds / count : 0.0;
      if (eval::NeedsAmortizedTraining(*explainer)) {
        row.push_back(util::TablePrinter::FormatDouble(train_seconds, 2) + " (" +
                      util::TablePrinter::FormatDouble(per_instance, 3) + ")");
      } else {
        row.push_back(util::TablePrinter::FormatDouble(per_instance, 3));
      }
      LOG_INFO << method << " on " << scope.datasets[d] << ": " << per_instance << "s/inst";
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf("\nNote: per-instance seconds; the paper reports totals over 50 instances\n"
              "with 500 epochs. Shapes to compare: GradCAM/DeepLIFT fastest, SubgraphX\n"
              "slowest, Revelio fastest among flow-based methods on flow-heavy datasets.\n");

  // --pool-out FILE: re-run the Revelio column with the tensor pool disabled
  // and enabled and write the per-dataset comparison (the Table V counterpart
  // of the micro-kernel pool sweep; scores must match bitwise).
  const std::string pool_out = flags.GetString("pool-out", "");
  if (!pool_out.empty()) {
    struct PoolRow {
      std::string dataset;
      int instances = 0;
      double unpooled_seconds = 0.0;
      double pooled_seconds = 0.0;
      double pool_speedup = 0.0;
      bool bitwise_equal = false;
    };
    std::vector<PoolRow> rows;
    const bool pool_was_enabled = tensor::PoolEnabled();
    std::printf("\n== Revelio pooled vs unpooled (writes %s) ==\n", pool_out.c_str());
    for (size_t d = 0; d < scope.datasets.size(); ++d) {
      auto explainer = eval::MakeExplainer("Revelio", scope.config);
      std::vector<explain::ExplanationTask> tasks;
      tasks.reserve(instances[d].size());
      for (const auto& instance : instances[d]) {
        tasks.push_back(instance.MakeTask(prepared[d].model.get()));
      }
      auto run = [&] {
        util::Timer timer;
        std::vector<explain::Explanation> explanations =
            eval::ExplainAll(explainer.get(), tasks, explain::Objective::kFactual);
        return std::pair<std::vector<explain::Explanation>, double>(std::move(explanations),
                                                                    timer.ElapsedSeconds());
      };
      PoolRow row;
      row.dataset = scope.datasets[d];
      row.instances = static_cast<int>(tasks.size());
      tensor::SetPoolEnabled(false);
      (void)run();  // warm model/graph caches
      auto [unpooled, unpooled_seconds] = run();
      row.unpooled_seconds = unpooled_seconds;
      tensor::SetPoolEnabled(true);
      (void)run();  // prime each worker thread's pool
      auto [pooled, pooled_seconds] = run();
      row.pooled_seconds = pooled_seconds;
      row.pool_speedup = pooled_seconds > 0.0 ? unpooled_seconds / pooled_seconds : 0.0;
      row.bitwise_equal = true;
      for (size_t i = 0; i < pooled.size(); ++i) {
        if (pooled[i].edge_scores != unpooled[i].edge_scores) row.bitwise_equal = false;
      }
      std::printf("%-12s instances=%-3d  unpooled %8.4fs  pooled %8.4fs  speedup=%5.2fx  "
                  "bitwise_equal=%s\n",
                  row.dataset.c_str(), row.instances, row.unpooled_seconds, row.pooled_seconds,
                  row.pool_speedup, row.bitwise_equal ? "yes" : "NO");
      rows.push_back(std::move(row));
    }
    tensor::SetPoolEnabled(pool_was_enabled);
    bench::WriteBenchJson(pool_out, "table5_pool", [&](obs::JsonWriter* w) {
      w->BeginObject();
      w->Key("points");
      w->BeginArray();
      for (const PoolRow& r : rows) {
        w->BeginObject();
        w->Key("dataset");
        w->String(r.dataset);
        w->Key("instances");
        w->Int(r.instances);
        w->Key("unpooled_seconds");
        w->Double(r.unpooled_seconds);
        w->Key("pooled_seconds");
        w->Double(r.pooled_seconds);
        w->Key("pool_speedup");
        w->Double(r.pool_speedup);
        w->Key("bitwise_equal");
        w->Bool(r.bitwise_equal);
        w->EndObject();
      }
      w->EndArray();
      w->EndObject();
    });
  }
  return 0;
}
