// Reproduces paper Table V: average running time (seconds) per explanation
// method per dataset. PGExplainer is reported as "training (inference)".
// The headline shape: traditional gradient methods are fastest; SubgraphX is
// slowest by orders of magnitude; among flow-based methods Revelio is the
// fastest and scales with T*T_Phi instead of |F|*T_Phi (Table II).

#include <cstdio>

#include "bench_common.h"
#include "eval/runner.h"
#include "explain/pgexplainer.h"
#include "obs/trace.h"

namespace {

using namespace revelio;          // NOLINT
using namespace revelio::bench;   // NOLINT

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  BenchScope scope = ParseScope(
      flags, {"ba_shapes", "tree_cycles", "mutag_like", "ba_2motifs"}, 3, 60);
  // Table V uses GCN targets; override with --archs to measure others.
  if (!flags.Has("archs")) scope.archs = {gnn::GnnArch::kGcn};

  std::printf("== Table V: average explanation time in seconds (lower is better) ==\n");
  PrintScope("table5", scope);

  std::vector<std::string> header{"Method"};
  for (const auto& dataset : scope.datasets) header.push_back(dataset);
  util::TablePrinter table(header);

  const gnn::GnnArch arch = scope.archs[0];
  // Prepare models/instances once per dataset.
  std::vector<eval::PreparedModel> prepared;
  std::vector<std::vector<eval::EvalInstance>> instances;
  for (const auto& dataset : scope.datasets) {
    prepared.push_back(eval::PrepareModel(dataset, arch, scope.config));
    instances.push_back(
        eval::SelectInstances(prepared.back(), scope.config, eval::InstanceFilter::kAny));
    LOG_INFO << dataset << " ready (" << instances.back().size() << " instances)";
  }

  for (const std::string& method : scope.methods) {
    std::vector<std::string> row{method};
    for (size_t d = 0; d < scope.datasets.size(); ++d) {
      if (!MethodSupportsArch(method, arch) ||
          !eval::ArchSupportsDataset(arch, scope.datasets[d])) {
        row.push_back("N/A");
        continue;
      }
      auto explainer = eval::MakeExplainer(method, scope.config);
      // Amortized methods: report "training (inference)" like the paper.
      double train_seconds = 0.0;
      if (eval::NeedsAmortizedTraining(*explainer)) {
        obs::ScopedSpan train_span("table5.train_amortized");
        eval::TrainAmortized(explainer.get(), prepared[d], instances[d],
                             explain::Objective::kFactual, scope.config);
        train_seconds = train_span.ElapsedSeconds();
      }
      std::vector<explain::ExplanationTask> tasks;
      tasks.reserve(instances[d].size());
      for (const auto& instance : instances[d]) {
        tasks.push_back(instance.MakeTask(prepared[d].model.get()));
      }
      double explain_seconds = 0.0;
      {
        // The span doubles as the wall clock; it also lands in --trace-out.
        obs::ScopedSpan explain_span("table5.explain_all");
        // Instances run concurrently under --threads > 1; the reported number
        // is wall-clock per instance, i.e. throughput including the speedup.
        (void)eval::ExplainAll(explainer.get(), tasks, explain::Objective::kFactual);
        explain_seconds = explain_span.ElapsedSeconds();
      }
      const int count = static_cast<int>(tasks.size());
      const double per_instance = count > 0 ? explain_seconds / count : 0.0;
      if (eval::NeedsAmortizedTraining(*explainer)) {
        row.push_back(util::TablePrinter::FormatDouble(train_seconds, 2) + " (" +
                      util::TablePrinter::FormatDouble(per_instance, 3) + ")");
      } else {
        row.push_back(util::TablePrinter::FormatDouble(per_instance, 3));
      }
      LOG_INFO << method << " on " << scope.datasets[d] << ": " << per_instance << "s/inst";
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf("\nNote: per-instance seconds; the paper reports totals over 50 instances\n"
              "with 500 epochs. Shapes to compare: GradCAM/DeepLIFT fastest, SubgraphX\n"
              "slowest, Revelio fastest among flow-based methods on flow-heavy datasets.\n");
  return 0;
}
