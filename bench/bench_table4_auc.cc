// Reproduces paper Table IV: explanation ROC-AUC against motif ground truth
// on the synthetic datasets (BA-Shapes, Tree-Cycles, BA-2motifs) with GCNs
// and GINs, for both factual and counterfactual variants. Instances are
// motif-associated and correctly predicted, per §V-B.

#include <cstdio>

#include "bench_common.h"
#include "eval/runner.h"

namespace {

using namespace revelio;          // NOLINT
using namespace revelio::bench;   // NOLINT

// Paper Table IV groups: methods reusing one score set ("General") vs
// methods trained per objective.
bool TrainsPerObjective(const std::string& method) {
  return method == "GNNExplainer" || method == "PGExplainer" || method == "GraphMask" ||
         method == "FlowX" || method == "Revelio";
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  BenchScope scope =
      ParseScope(flags, {"ba_shapes", "tree_cycles", "ba_2motifs"}, 5, 80);
  if (!flags.Has("datasets") && scope.full) {
    scope.datasets = {"ba_shapes", "tree_cycles", "ba_2motifs"};  // Table IV scope
  }
  if (!flags.Has("archs")) scope.archs = {gnn::GnnArch::kGcn, gnn::GnnArch::kGin};

  std::printf("== Table IV: explanation AUC on synthetic datasets (higher is better) ==\n");
  PrintScope("table4", scope);

  util::TablePrinter table({"Group", "Method", "Model", "Dataset", "AUC", "#inst"});
  for (gnn::GnnArch arch : scope.archs) {
    for (const std::string& dataset : scope.datasets) {
      if (!eval::ArchSupportsDataset(arch, dataset)) continue;
      eval::PreparedModel prepared = eval::PrepareModel(dataset, arch, scope.config);
      const auto instances =
          eval::SelectInstances(prepared, scope.config, eval::InstanceFilter::kMotifCorrect);
      LOG_INFO << dataset << "/" << gnn::GnnArchName(arch) << " acc "
               << prepared.metrics.test_accuracy << ", " << instances.size()
               << " motif instances";
      // RunAuc explains the instances concurrently under --threads; AUC values
      // are identical for any thread count (eval::ExplainAll).
      for (const std::string& method : scope.methods) {
        if (!MethodSupportsArch(method, arch)) continue;
        if (!TrainsPerObjective(method)) {
          auto explainer = eval::MakeExplainer(method, scope.config);
          const double auc = eval::RunAuc(explainer.get(), prepared, instances,
                                          explain::Objective::kFactual);
          table.AddRow({"General", method, gnn::GnnArchName(arch), dataset,
                        util::TablePrinter::FormatDouble(auc, 3),
                        std::to_string(instances.size())});
        } else {
          for (auto objective :
               {explain::Objective::kFactual, explain::Objective::kCounterfactual}) {
            auto explainer = eval::MakeExplainer(method, scope.config);
            eval::TrainAmortized(explainer.get(), prepared, instances, objective,
                                 scope.config);
            const double auc = eval::RunAuc(explainer.get(), prepared, instances, objective);
            table.AddRow({explain::ObjectiveName(objective), method, gnn::GnnArchName(arch),
                          dataset, util::TablePrinter::FormatDouble(auc, 3),
                          std::to_string(instances.size())});
          }
        }
        LOG_INFO << dataset << "/" << gnn::GnnArchName(arch) << " " << method << " done";
      }
    }
  }
  table.Print();
  return 0;
}
