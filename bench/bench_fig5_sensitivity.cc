// Reproduces paper Fig. 5: sensitivity of Revelio to the sparsity-constraint
// strength alpha (Eqs. 8/9) on a node-classification and a
// graph-classification dataset. The paper's shape: larger alpha helps at
// higher sparsity (smaller explanatory subgraphs), and a single well-chosen
// alpha is competitive across a sparsity range.

#include <cstdio>

#include "bench_common.h"
#include "core/revelio.h"
#include "eval/runner.h"

namespace {

using namespace revelio;          // NOLINT
using namespace revelio::bench;   // NOLINT

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  // Fig. 5 uses PubMed and MUTAG; the pubmed_like substitute is the largest
  // dataset here, so the reduced default swaps in tree_cycles for speed.
  BenchScope scope = ParseScope(flags, {"tree_cycles", "mutag_like"}, 4, 80);
  if (scope.full && !flags.Has("datasets")) {
    scope.datasets = {"pubmed_like", "mutag_like"};
  }
  const std::vector<double> alphas = {0.0, 0.05, 0.25, 0.5, 1.0};
  const std::vector<double> sparsities = {0.5, 0.7, 0.9};

  std::printf("== Fig. 5: Revelio sensitivity to the sparsity constraint alpha ==\n");
  PrintScope("fig5", scope);

  util::TablePrinter table({"Dataset", "Objective", "alpha", "s=0.5", "s=0.7", "s=0.9"});
  for (const std::string& dataset : scope.datasets) {
    eval::PreparedModel prepared =
        eval::PrepareModel(dataset, gnn::GnnArch::kGcn, scope.config);
    const auto instances =
        eval::SelectInstances(prepared, scope.config, eval::InstanceFilter::kAny);
    for (auto objective :
         {explain::Objective::kFactual, explain::Objective::kCounterfactual}) {
      for (double alpha : alphas) {
        core::RevelioOptions options;
        options.epochs = scope.config.explainer_epochs;
        options.alpha = static_cast<float>(alpha);
        core::RevelioExplainer revelio(options);
        const auto curve =
            eval::RunFidelity(&revelio, prepared, instances, objective, sparsities);
        std::vector<std::string> row{dataset, explain::ObjectiveName(objective),
                                     util::TablePrinter::FormatDouble(alpha, 2)};
        for (double v : curve.values) row.push_back(util::TablePrinter::FormatDouble(v, 3));
        table.AddRow(std::move(row));
      }
      LOG_INFO << dataset << " " << explain::ObjectiveName(objective) << " sweep done";
    }
  }
  table.Print();
  return 0;
}
