// Reproduces paper Fig. 3: Fidelity- (factual explanation) as a function of
// sparsity, for every explanation method x dataset x GNN. Lower is better;
// the paper's headline shape: flow-based methods (FlowX, Revelio) lead, with
// Revelio the most consistent across datasets.

#include <cstdio>

#include "bench_common.h"
#include "eval/runner.h"

namespace {

using namespace revelio;          // NOLINT
using namespace revelio::bench;   // NOLINT

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  BenchScope scope = ParseScope(
      flags, {"ba_shapes", "tree_cycles", "mutag_like", "ba_2motifs"}, 4, 60);
  const std::vector<double> sparsities = {0.5, 0.6, 0.7, 0.8, 0.9};

  std::printf("== Fig. 3: Fidelity- vs sparsity (factual explanations; lower is better) ==\n");
  PrintScope("fig3", scope);

  util::TablePrinter table({"Dataset", "Model", "Method", "s=0.5", "s=0.6", "s=0.7", "s=0.8",
                            "s=0.9", "#inst"});
  for (const std::string& dataset : scope.datasets) {
    for (gnn::GnnArch arch : scope.archs) {
      if (!eval::ArchSupportsDataset(arch, dataset)) continue;
      eval::PreparedModel prepared = eval::PrepareModel(dataset, arch, scope.config);
      LOG_INFO << dataset << "/" << gnn::GnnArchName(arch) << " model test acc "
               << prepared.metrics.test_accuracy;
      const auto instances =
          eval::SelectInstances(prepared, scope.config, eval::InstanceFilter::kAny);
      for (const std::string& method : scope.methods) {
        if (!MethodSupportsArch(method, arch)) {
          table.AddRow({dataset, gnn::GnnArchName(arch), method, "N/A", "N/A", "N/A", "N/A",
                        "N/A", "0"});
          continue;
        }
        auto explainer = eval::MakeExplainer(method, scope.config);
        eval::TrainAmortized(explainer.get(), prepared, instances,
                             explain::Objective::kFactual, scope.config);
        // RunFidelity explains the instances concurrently under --threads;
        // results are identical for any thread count (eval::ExplainAll).
        const auto curve = eval::RunFidelity(explainer.get(), prepared, instances,
                                             explain::Objective::kFactual, sparsities);
        std::vector<std::string> row{dataset, gnn::GnnArchName(arch), method};
        for (double v : curve.values) row.push_back(util::TablePrinter::FormatDouble(v, 3));
        row.push_back(std::to_string(curve.instances_evaluated));
        table.AddRow(std::move(row));
        LOG_INFO << dataset << "/" << gnn::GnnArchName(arch) << " " << method << " done";
      }
    }
  }
  table.Print();
  return 0;
}
