#!/usr/bin/env python3
"""Compare fresh BENCH_*.json results against the committed baselines.

Usage: scripts/bench_diff.py [--fresh DIR] [--baseline DIR] [--tolerance PCT]

For every committed baseline in bench/fixtures/BENCH_*.json, find the
same-named fresh result (written into build/ by the tier-1 bench fixtures),
extract the bench's primary performance field, and fail if the fresh value
regressed by more than the tolerance (default 10%). Prints a per-bench delta
table either way.

Each bench declares its primary field below: for speedup-style fields the
headline is the best point in the sweep (higher is better); for the
observability overhead the headline is the worst point (lower is better).
A baseline whose bench name is unknown is reported and skipped; a baseline
with no matching fresh file fails, since that means the tier-1 fixtures did
not regenerate it.

Exit codes: 0 ok, 1 regression (or missing fresh file), 2 usage error.
"""

import argparse
import json
import sys
from pathlib import Path

# bench name (the envelope's "bench" field) -> (primary field, direction).
# "higher": take the max over data.points and fail when the fresh max drops.
# "lower":  take the max (worst) over data.points and fail when it rises.
PRIMARY_FIELDS = {
    "spmm_fused_vs_chain": ("fused_speedup", "higher"),
    "tensor_pool": ("pool_speedup", "higher"),
    "megabatch_sweep": ("speedup", "higher"),
    "plan_sweep": ("plan_speedup", "higher"),
    "table5_obs": ("overhead_ratio", "lower"),
    "serve_trace": ("serve_speedup", "higher"),
    "simd_sweep": ("simd_speedup", "higher"),
}


def headline(doc, field, direction):
    """The bench's single headline number: best speedup or worst overhead."""
    points = doc.get("data", {}).get("points", [])
    values = [p[field] for p in points if field in p]
    if not values:
        return None
    return max(values)  # max is "best" for speedups and "worst" for overhead


def load(path):
    with open(path) as f:
        return json.load(f)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fresh", default="build", help="directory with fresh BENCH_*.json")
    parser.add_argument("--baseline", default="bench/fixtures",
                        help="directory with committed baselines")
    parser.add_argument("--tolerance", type=float, default=10.0,
                        help="allowed regression of the primary field, percent")
    args = parser.parse_args()

    baseline_dir = Path(args.baseline)
    fresh_dir = Path(args.fresh)
    baselines = sorted(baseline_dir.glob("BENCH_*.json"))
    if not baselines:
        print(f"bench_diff: no baselines under {baseline_dir}", file=sys.stderr)
        return 2

    rows = []
    failed = False
    for baseline_path in baselines:
        name = baseline_path.name
        fresh_path = fresh_dir / name
        base = load(baseline_path)
        bench = base.get("bench", "?")
        if bench not in PRIMARY_FIELDS:
            rows.append((name, bench, "-", "-", "-", "SKIP (unknown bench)"))
            continue
        field, direction = PRIMARY_FIELDS[bench]
        if not fresh_path.exists():
            rows.append((name, bench, "-", "-", "-", "FAIL (no fresh result)"))
            failed = True
            continue
        fresh = load(fresh_path)
        base_value = headline(base, field, direction)
        fresh_value = headline(fresh, field, direction)
        if base_value is None or fresh_value is None:
            rows.append((name, bench, "-", "-", "-", f"FAIL (no {field} points)"))
            failed = True
            continue

        if direction == "higher":
            delta_pct = (fresh_value / base_value - 1.0) * 100.0
            regressed = fresh_value < base_value * (1.0 - args.tolerance / 100.0)
        else:
            delta_pct = (fresh_value / base_value - 1.0) * 100.0
            regressed = fresh_value > base_value * (1.0 + args.tolerance / 100.0)
        status = "FAIL" if regressed else "ok"
        failed = failed or regressed
        rows.append((name, f"{bench}:{field}", f"{base_value:.3f}",
                     f"{fresh_value:.3f}", f"{delta_pct:+.1f}%", status))

    width = max(len(r[0]) for r in rows)
    field_width = max(len(r[1]) for r in rows)
    print(f"{'bench file':<{width}}  {'primary field':<{field_width}}  "
          f"{'baseline':>9}  {'fresh':>9}  {'delta':>7}  status")
    for row in rows:
        print(f"{row[0]:<{width}}  {row[1]:<{field_width}}  {row[2]:>9}  "
              f"{row[3]:>9}  {row[4]:>7}  {row[5]}")
    if failed:
        print(f"bench_diff: regression beyond {args.tolerance:.0f}% tolerance",
              file=sys.stderr)
        return 1
    print(f"bench_diff: all benches within {args.tolerance:.0f}% of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
