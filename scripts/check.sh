#!/usr/bin/env bash
# Full verification ladder: tier-1 -> property suites -> ASan -> UBSan -> TSan.
# The property stage includes the fused-SpMM equivalence suite
# (spmm_equivalence_test), the mega-batch equivalence suite
# (megabatch_equivalence_test), and the plan replay harness
# (plan_equivalence_test); the TSan pass runs each as its own named
# stage so a data race in the fused aggregation path, the shared batched
# backward, or the level-parallel plan executor is attributed directly. The
# pool and plan stages rerun their equivalence suites under ASan with
# REVELIO_POISON_POOL=1 so full-overwrite contract violations surface as NaNs,
# and the simd stage does the same for the SIMD/bf16 equivalence suites: any
# vector sweep that over-reads past a tensor's end or treats a poisoned pooled
# buffer as data trips ASan or the tolerance check respectively. (UBSan covers
# the intrinsic wrappers too — simd.cc and bf16.cc are in the instrumented
# smoke set, so misaligned or out-of-range lane arithmetic fails the ubsan
# stage.)
#
# Usage: scripts/check.sh [--fast] [-j N]
#   --fast   skip the sanitizer stages (tier1 + prop only)
#   -j N     build parallelism (default 4)
#
# Each stage configures/builds its preset if needed, then runs the matching
# ctest selection. A summary table is printed at the end; the exit code is
# non-zero if any stage failed.

set -u

cd "$(dirname "$0")/.."

JOBS=4
FAST=0
while [[ $# -gt 0 ]]; do
  case "$1" in
    --fast) FAST=1 ;;
    -j) shift; JOBS="$1" ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
  shift
done

STAGE_NAMES=()
STAGE_RESULTS=()
STAGE_SECONDS=()

# run_stage <name> <command...>
run_stage() {
  local name="$1"
  shift
  echo
  echo "=== ${name}: $* ==="
  local start=$SECONDS
  if "$@"; then
    STAGE_RESULTS+=("PASS")
  else
    STAGE_RESULTS+=("FAIL")
  fi
  STAGE_NAMES+=("${name}")
  STAGE_SECONDS+=($((SECONDS - start)))
}

# build_preset <preset>: configure once, then (re)build.
build_preset() {
  local preset="$1"
  local dir="build"
  [[ "${preset}" != "default" ]] && dir="build-${preset}"
  if [[ ! -f "${dir}/CMakeCache.txt" ]]; then
    cmake --preset "${preset}" || return 1
  fi
  cmake --build --preset "${preset}" -j "${JOBS}"
}

run_stage "build"      build_preset default
run_stage "tier1"      ctest --test-dir build -L tier1 --output-on-failure
run_stage "prop"       ctest --test-dir build -L prop --output-on-failure
# The tier-1 bench fixtures regenerated build/BENCH_*.json; fail if any
# bench's primary speedup field regressed >10% against the committed
# baselines in bench/fixtures/.
run_stage "bench-diff" python3 scripts/bench_diff.py
run_stage "san-smoke"  ctest --test-dir build -L san --output-on-failure

if [[ "${FAST}" -eq 0 ]]; then
  run_stage "asan-build"  build_preset asan
  run_stage "asan"        ctest --preset asan
  # Pool equivalence again under ASan with NaN-poisoned recycled buffers: any
  # kernel reading an "uninitialized" pooled output trips the bitwise check
  # while ASan watches the allocator itself.
  run_stage "pool"        env REVELIO_POISON_POOL=1 ctest --preset asan -R pool_equivalence_test
  # Plan replay again under ASan with NaN-poisoned recycled buffers: replay
  # writes every arena slot in place, so a step that skips (or under-writes)
  # an output surfaces as a NaN in the bitwise comparison while ASan watches
  # the arena's bounds.
  run_stage "plan"        env REVELIO_POISON_POOL=1 ctest --preset asan -R "plan_equivalence_test|plan_test"
  # SIMD + bf16 equivalence under ASan with NaN-poisoned recycled buffers: the
  # vector sweeps must never read past n (the scalar tail owns the remainder),
  # and the bf16 pack cache must repack rather than widen stale poisoned bits.
  run_stage "simd"        env REVELIO_POISON_POOL=1 ctest --preset asan -R "simd_equivalence_test|bf16_eval_test"
  run_stage "ubsan-build" build_preset ubsan
  run_stage "ubsan"       ctest --preset ubsan
  run_stage "tsan-build"  build_preset tsan
  run_stage "tsan-spmm"   ctest --preset tsan -R spmm_equivalence_test
  # Mega-batched explanation under TSan: the fused group shares one frozen
  # model across the batched backward, so a race here means the freeze
  # contract broke somewhere in the explainer loop. The flight recorder is
  # forced on so its lock-free ring takes concurrent writes from the same
  # run TSan is watching.
  run_stage "tsan-megabatch" env REVELIO_FLIGHT_RECORDER=1 ctest --preset tsan -R megabatch_equivalence_test
  # Serving engine under TSan: the fault-injection suite, the equivalence
  # sweep (concurrent workers + coalescing vs batch ExplainAll), and the
  # trace-replay fixture all hammer the admission queue with concurrent
  # submitters, worker pop/coalesce loops, and mid-stream shutdown.
  run_stage "tsan-serve"  ctest --preset tsan -L serve
  # Plan replay under TSan: level-parallel step execution shares the arena
  # across pool workers, and re-record after invalidation races the global
  # plan version bump; both must stay clean across thread counts.
  run_stage "tsan-plan"   ctest --preset tsan -R "plan_equivalence_test|plan_test"
  run_stage "tsan"        ctest --preset tsan -LE serve -E "spmm_equivalence_test|megabatch_equivalence_test|plan_equivalence_test|plan_test"
fi

echo
echo "== summary =="
printf '%-12s %-6s %8s\n' "stage" "result" "seconds"
FAILED=0
for i in "${!STAGE_NAMES[@]}"; do
  printf '%-12s %-6s %8s\n' "${STAGE_NAMES[$i]}" "${STAGE_RESULTS[$i]}" "${STAGE_SECONDS[$i]}"
  [[ "${STAGE_RESULTS[$i]}" == "FAIL" ]] && FAILED=1
done
if [[ "${FAILED}" -ne 0 ]]; then
  echo "RESULT: FAIL"
  exit 1
fi
echo "RESULT: PASS"
