// Paper Fig. 1, interactively: why edge-level explanations under-determine
// message flows, and how the flow-pattern API (paper §III notation F_{i*j},
// F_{?{n}ij*}) queries Revelio's flow-level output.
//
//   $ ./build/examples/flow_vs_edge

#include <cstdio>

#include "flow/flow_scores.h"
#include "flow/message_flow.h"
#include "graph/graph.h"

using namespace revelio;  // NOLINT

int main() {
  // The figure's setting: a small grid, information travels from the
  // top-left node (0) to the bottom-right target (8) through a 4-layer GNN.
  graph::Graph g(9);
  auto id = [](int r, int c) { return 3 * r + c; };
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      if (c + 1 < 3) g.AddEdge(id(r, c), id(r, c + 1));
      if (r + 1 < 3) g.AddEdge(id(r, c), id(r + 1, c));
    }
  }
  const gnn::LayerEdgeSet edges = gnn::BuildLayerEdges(g);
  const int target = 8;
  flow::FlowSet flows = flow::EnumerateFlowsToTarget(edges, target, /*num_layers=*/4);

  std::printf("3x3 grid, 4-layer GNN, target %d: %d message flows reach the target\n\n",
              target, flows.num_flows());

  // Flow-pattern queries (paper notation; '?'=any node, '*'=any sequence).
  struct Query {
    const char* description;
    const char* pattern;
  };
  const Query queries[] = {
      {"F_{0*8}   flows from source 0", "0 * 8"},
      {"F_{*58}   flows taking their last hop through node 5", "* 5 8"},
      {"F_{?{3}58} flows whose 4th step is edge 5->8", "?{3} 5 8"},
      {"F_{*22*}  flows that linger at node 2 (self-loop step)", "* 2 2 *"},
  };
  for (const Query& query : queries) {
    const auto matched = flow::MatchFlows(flows, edges, query.pattern);
    std::printf("%-55s %3zu flows\n", query.description, matched.size());
    for (size_t i = 0; i < matched.size() && i < 3; ++i) {
      std::printf("    e.g. %s\n", flows.FormatFlow(matched[i], edges).c_str());
    }
  }

  // The ambiguity of the figure: many distinct flows share the same edges.
  const auto through_border = flow::MatchFlows(flows, edges, "0 1 2 5 8");
  const auto through_middle = flow::MatchFlows(flows, edges, "0 1 4 5 8");
  std::printf("\nBoth %s and %s are single complete flows, yet they overlap on edges\n"
              "0->1 and 5->8 — a top-k EDGE explanation cannot say which one carried\n"
              "the decisive message. Flow-level scores can.\n",
              through_border.empty() ? "(none)" : flows.FormatFlow(through_border[0], edges).c_str(),
              through_middle.empty() ? "(none)" : flows.FormatFlow(through_middle[0], edges).c_str());
  return 0;
}
