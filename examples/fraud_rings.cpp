// Domain scenario (paper §I motivation: financial analysis / network
// security): a transaction network contains planted "fraud rings" — cycles
// of accounts laundering money. A GNN flags accounts in rings; Revelio's
// *counterfactual* explanation answers the analyst's question:
//   "Which transaction flows, if blocked, would clear this account's flag?"
//
//   $ ./build/examples/fraud_rings

#include <cstdio>

#include "core/revelio.h"
#include "datasets/dataset.h"
#include "eval/metrics.h"
#include "flow/flow_scores.h"
#include "gnn/trainer.h"
#include "graph/subgraph.h"
#include "nn/loss.h"

using namespace revelio;  // NOLINT

int main() {
  // Tree-Cycles is structurally identical to the fraud-ring task: a benign
  // hierarchy (tree = normal payment chains) plus cycles (rings).
  std::printf("Building a transaction network (benign hierarchy + fraud rings)...\n");
  datasets::Dataset network = datasets::MakeTreeCycles(/*seed=*/42);
  const auto& instance = network.instances[0];

  gnn::GnnConfig config;
  config.arch = gnn::GnnArch::kGin;  // structure-sensitive detector
  config.input_dim = network.feature_dim;
  config.hidden_dim = 32;
  config.num_classes = 2;
  gnn::GnnModel detector(config);
  util::Rng rng(7);
  const gnn::Split split = gnn::MakeSplit(instance.graph.num_nodes(), 0.8, 0.1, &rng);
  gnn::TrainConfig train_config;
  train_config.epochs = 400;
  const auto metrics = gnn::TrainNodeModel(&detector, instance.graph, instance.features,
                                           instance.labels, split, train_config);
  std::printf("  ring-detector accuracy: %.1f%%\n", metrics.test_accuracy * 100.0);

  // Pick a flagged (ring) account that the detector got right.
  int suspect = -1;
  const tensor::Tensor logits = detector.Logits(instance.graph, instance.features);
  for (int v = 0; v < instance.graph.num_nodes() && suspect < 0; ++v) {
    if (instance.labels[v] == 1 && nn::ArgmaxRow(logits, v) == 1) suspect = v;
  }
  CHECK_GE(suspect, 0);

  graph::Subgraph sub = graph::ExtractKHopInSubgraph(instance.graph, suspect, 3);
  explain::ExplanationTask task;
  task.model = &detector;
  task.graph = &sub.graph;
  task.features = graph::SliceRows(instance.features, sub.node_map);
  task.target_node = sub.target_local;
  task.target_class = 1;
  std::printf("\nAccount %d flagged as ring member. Investigating its %d-account "
              "neighborhood (%d transactions)...\n",
              suspect, sub.graph.num_nodes(), sub.graph.num_edges());

  // Counterfactual explanation: flows whose removal clears the flag.
  core::RevelioOptions options;
  options.epochs = 200;
  core::RevelioExplainer revelio(options);
  const auto result = revelio.ExplainFlows(task, explain::Objective::kCounterfactual);

  const gnn::LayerEdgeSet edges = gnn::BuildLayerEdges(sub.graph);
  std::printf("\nTransaction flows to block first (counterfactual top-5):\n");
  for (int k : flow::TopKFlows(result.flow_scores, 5)) {
    // Translate local ids back to global account ids for the analyst.
    const auto nodes = result.flows.FlowNodes(k, edges);
    std::string rendered;
    for (size_t i = 0; i < nodes.size(); ++i) {
      if (i > 0) rendered += " -> ";
      rendered += "acct" + std::to_string(sub.node_map[nodes[i]]);
    }
    std::printf("  %-46s necessity %+.3f\n", rendered.c_str(), result.flow_scores[k]);
  }

  // Validate: removing the top-ranked transactions should clear the flag.
  const double fidelity_plus = eval::FidelityPlus(task, result.edge_scores, 0.6);
  const double original = explain::PredictedProbability(task);
  std::printf("\nP(ring | all transactions) = %.3f; blocking the top 40%% of ranked "
              "transactions drops it by %.3f (Fidelity+)\n",
              original, fidelity_plus);
  return 0;
}
