// Domain scenario (paper §I motivation: drug discovery): a GNN classifies
// molecules by a property driven by a functional group (an NO2-like motif).
// Revelio's factual explanation surfaces the message flows through the
// group — the "reasoning about candidates" a chemist needs.
//
//   $ ./build/examples/molecule_explanation

#include <cstdio>

#include "core/revelio.h"
#include "datasets/dataset.h"
#include "eval/metrics.h"
#include "eval/runner.h"
#include "flow/flow_scores.h"

using namespace revelio;  // NOLINT

int main() {
  std::printf("Training a GIN property classifier on molecule-like graphs...\n");
  eval::RunnerConfig config;
  config.num_instances = 1;
  eval::PreparedModel prepared = eval::PrepareModel("mutag_like", gnn::GnnArch::kGin, config);
  std::printf("  test accuracy: %.1f%%\n", prepared.metrics.test_accuracy * 100.0);

  // Pick a correctly-predicted positive molecule (contains the group).
  const auto instances =
      eval::SelectInstances(prepared, config, eval::InstanceFilter::kMotifCorrect);
  const eval::EvalInstance& molecule = instances.at(0);
  const explain::ExplanationTask task = molecule.MakeTask(prepared.model.get());
  std::printf("\nMolecule: %d atoms, %d bonds (directed), predicted class %d\n",
              task.graph->num_nodes(), task.graph->num_edges(), task.target_class);

  core::RevelioOptions options;
  options.epochs = 150;
  core::RevelioExplainer revelio(options);
  const auto result = revelio.ExplainFlows(task, explain::Objective::kFactual);

  // Graph-classification flows cover the whole molecule; check how many of
  // the top flows touch the functional group.
  const gnn::LayerEdgeSet edges = gnn::BuildLayerEdges(*task.graph);
  std::vector<char> atom_in_group(task.graph->num_nodes(), 0);
  for (int e = 0; e < task.graph->num_edges(); ++e) {
    if (molecule.edge_in_motif[e]) {
      atom_in_group[task.graph->edge(e).src] = 1;
      atom_in_group[task.graph->edge(e).dst] = 1;
    }
  }
  const auto top = flow::TopKFlows(result.flow_scores, 10);
  int touching = 0;
  std::printf("\nTop-10 message flows (atoms in the functional group marked *):\n");
  for (int k : top) {
    const auto atoms = result.flows.FlowNodes(k, edges);
    std::string rendered;
    bool touches = false;
    for (size_t i = 0; i < atoms.size(); ++i) {
      if (i > 0) rendered += "->";
      rendered += std::to_string(atoms[i]);
      if (atom_in_group[atoms[i]]) {
        rendered += "*";
        touches = true;
      }
    }
    touching += touches;
    std::printf("  %-28s score %+.3f\n", rendered.c_str(), result.flow_scores[k]);
  }
  std::printf("\n%d of the top-10 flows touch the planted functional group.\n", touching);

  // Edge-level AUC against the known group (the Table IV protocol).
  const double auc = eval::RocAuc(result.edge_scores, molecule.edge_in_motif);
  std::printf("Edge-ranking AUC vs ground-truth group: %.3f\n", auc);
  return 0;
}
