// Quickstart: train a GNN on a synthetic dataset, explain one prediction
// with Revelio, and read the result at both flow and edge granularity.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "core/revelio.h"
#include "eval/metrics.h"
#include "eval/runner.h"
#include "flow/flow_scores.h"

using namespace revelio;  // NOLINT

int main() {
  // 1. Build a dataset and pretrain a 3-layer GCN target model.
  eval::RunnerConfig config;
  config.num_instances = 1;
  std::printf("Training a 3-layer GCN on BA-Shapes...\n");
  eval::PreparedModel prepared = eval::PrepareModel("ba_shapes", gnn::GnnArch::kGcn, config);
  std::printf("  test accuracy: %.1f%%\n", prepared.metrics.test_accuracy * 100.0);

  // 2. Pick a motif node and extract its 3-hop computation subgraph.
  const auto instances =
      eval::SelectInstances(prepared, config, eval::InstanceFilter::kMotifCorrect);
  const eval::EvalInstance& instance = instances.at(0);
  const explain::ExplanationTask task = instance.MakeTask(prepared.model.get());
  std::printf("\nExplaining node %d (class %d): %d-node subgraph, %lld message flows\n",
              task.target_node, task.target_class, task.graph->num_nodes(),
              static_cast<long long>(instance.num_flows));

  // 3. Run Revelio (factual objective: which flows SUFFICE for the prediction).
  core::RevelioOptions options;
  options.epochs = 150;
  core::RevelioExplainer revelio(options);
  const auto result = revelio.ExplainFlows(task, explain::Objective::kFactual);

  // 4. Flow-level view: the top-5 message flows.
  const gnn::LayerEdgeSet edges = gnn::BuildLayerEdges(*task.graph);
  std::printf("\nTop-5 message flows (local node ids, '->' = one GNN layer hop):\n");
  for (int k : flow::TopKFlows(result.flow_scores, 5)) {
    std::printf("  %-24s score %+.3f\n", result.flows.FormatFlow(k, edges).c_str(),
                result.flow_scores[k]);
  }

  // 5. Edge-level view plus a faithfulness check (Fidelity- at sparsity 0.7).
  const auto order = eval::RankEdges(result.edge_scores);
  std::printf("\nTop-5 edges:");
  for (int rank = 0; rank < 5 && rank < static_cast<int>(order.size()); ++rank) {
    const auto& edge = task.graph->edge(order[rank]);
    std::printf("  %d->%d", edge.src, edge.dst);
  }
  const double fidelity = eval::FidelityMinus(task, result.edge_scores, 0.7);
  std::printf("\nFidelity- at sparsity 0.7: %.3f (lower = explanation preserves the "
              "prediction)\n",
              fidelity);
  return 0;
}
