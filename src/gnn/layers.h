#ifndef REVELIO_GNN_LAYERS_H_
#define REVELIO_GNN_LAYERS_H_

// Message-passing layers. Each layer implements the three steps of
// Preliminaries III (message calculation, aggregation, node update) and
// accepts an optional per-layer-edge mask applied at MSG time (paper Eq. 6):
//
//   m_ij = MSG(h_i, h_j, e_ij) * mask[e_ij]
//
// The mask hook is the single integration point for Revelio, the
// perturbation-based baselines, and fidelity evaluation.

#include <memory>
#include <vector>

#include "gnn/layer_edges.h"
#include "nn/linear.h"
#include "nn/module.h"
#include "tensor/tensor.h"

namespace revelio::gnn {

// Runtime toggle for the fused CSR SpMM aggregation path. Defaults to on;
// REVELIO_FUSED_AGG=0 (or "false"/"off") at process start selects the legacy
// Gather -> RowScale -> ScatterAdd chain, kept alive as the differential
//-testing oracle. Layers also fall back to the chain when a LayerEdgeSet has
// no CSR pattern (default-constructed sets).
bool FusedAggregationEnabled();
void SetFusedAggregation(bool enabled);

class GnnLayer : public nn::Module {
 public:
  GnnLayer(int in_dim, int out_dim) : in_dim_(in_dim), out_dim_(out_dim) {}

  // Pre-activation output (the model applies non-linearities between layers).
  // `edge_mask` is (num_layer_edges x 1) or undefined for an unmasked pass.
  virtual tensor::Tensor Forward(const graph::Graph& graph, const LayerEdgeSet& edges,
                                 const tensor::Tensor& h,
                                 const tensor::Tensor& edge_mask) const = 0;

  int in_dim() const { return in_dim_; }
  int out_dim() const { return out_dim_; }

 private:
  int in_dim_;
  int out_dim_;
};

// Kipf & Welling GCN with symmetric normalization over the self-loop
// augmented edge set: h'_j = sum_e c_e * mask_e * (h W)_src(e) + b.
// `normalize = false` uses c_e = 1 (plain sum aggregation) — the variant the
// constant-feature graph-classification benchmarks require, matching the
// unnormalized GCN of PGExplainer's original BA-2motifs setup.
class GcnLayer : public GnnLayer {
 public:
  GcnLayer(int in_dim, int out_dim, util::Rng* rng, bool normalize = true);

  tensor::Tensor Forward(const graph::Graph& graph, const LayerEdgeSet& edges,
                         const tensor::Tensor& h, const tensor::Tensor& edge_mask) const override;

  // Accessors used by the GNN-LRP baseline (which re-derives the layer's
  // linear computation to propagate relevance).
  const nn::Linear& linear() const { return *linear_; }
  const tensor::Tensor& bias() const { return bias_added_; }
  bool normalize() const { return normalize_; }

  // The aggregation coefficient per layer edge (1 when unnormalized).
  std::vector<float> Coefficients(const graph::Graph& graph, const LayerEdgeSet& edges) const;

 private:
  std::unique_ptr<nn::Linear> linear_;
  tensor::Tensor bias_added_;  // added after aggregation
  bool normalize_;
};

// Xu et al. GIN: h'_j = MLP( sum_e coeff_e * mask_e * h_src(e) ), where the
// self-loop edge carries coefficient (1 + eps) and base edges coefficient 1.
class GinLayer : public GnnLayer {
 public:
  GinLayer(int in_dim, int out_dim, util::Rng* rng, float eps = 0.0f);

  tensor::Tensor Forward(const graph::Graph& graph, const LayerEdgeSet& edges,
                         const tensor::Tensor& h, const tensor::Tensor& edge_mask) const override;

  const nn::Linear& mlp_first() const { return *mlp_first_; }
  const nn::Linear& mlp_second() const { return *mlp_second_; }
  float eps() const { return eps_; }

 private:
  std::unique_ptr<nn::Linear> mlp_first_;
  std::unique_ptr<nn::Linear> mlp_second_;
  float eps_;
};

// Velickovic et al. GAT with multi-head additive attention over the in-edges
// (self-loop included). Heads are concatenated when `concat` is true (hidden
// layers) and averaged otherwise (final layer). Masks scale the attended
// message, leaving the attention distribution itself intact (Eq. 6 applies
// the mask to MSG output).
class GatLayer : public GnnLayer {
 public:
  GatLayer(int in_dim, int out_dim, int num_heads, bool concat, util::Rng* rng);

  tensor::Tensor Forward(const graph::Graph& graph, const LayerEdgeSet& edges,
                         const tensor::Tensor& h, const tensor::Tensor& edge_mask) const override;

  int num_heads() const { return num_heads_; }
  int head_dim() const { return head_dim_; }
  bool concat() const { return concat_; }

  // Per-head parameter accessors, used by the dense-reference differential
  // suite (tests/prop/dense_reference_test) to rebuild the layer's math over
  // a dense adjacency matrix.
  const nn::Linear& head_projection(int head) const { return *head_projections_[head]; }
  const tensor::Tensor& attention_src(int head) const { return attention_src_[head]; }
  const tensor::Tensor& attention_dst(int head) const { return attention_dst_[head]; }
  const tensor::Tensor& bias() const { return bias_; }

 private:
  int num_heads_;
  bool concat_;
  int head_dim_;
  std::vector<std::unique_ptr<nn::Linear>> head_projections_;  // in -> head_dim, no bias
  std::vector<tensor::Tensor> attention_src_;                  // head_dim x 1 per head
  std::vector<tensor::Tensor> attention_dst_;                  // head_dim x 1 per head
  tensor::Tensor bias_;                                        // 1 x out_dim
};

}  // namespace revelio::gnn

#endif  // REVELIO_GNN_LAYERS_H_
