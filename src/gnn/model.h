#ifndef REVELIO_GNN_MODEL_H_
#define REVELIO_GNN_MODEL_H_

// L-layer GNN models for node and graph classification.
//
// Architecture (uniform across GCN/GIN/GAT so explainers can treat the model
// as a black box): L message-passing layers with ReLU between them, then a
// linear head. Node tasks apply the head per node; graph tasks mean-pool the
// final embeddings per graph first. All layers accept per-layer-edge masks.

#include <memory>
#include <vector>

#include "gnn/layers.h"
#include "graph/graph.h"
#include "nn/linear.h"

namespace revelio::gnn {

enum class GnnArch { kGcn, kGin, kGat };
enum class TaskType { kNodeClassification, kGraphClassification };

// "GCN" / "GIN" / "GAT".
const char* GnnArchName(GnnArch arch);

struct GnnConfig {
  GnnArch arch = GnnArch::kGcn;
  TaskType task = TaskType::kNodeClassification;
  int input_dim = 0;
  int hidden_dim = 32;
  int num_classes = 2;
  int num_layers = 3;   // the paper uses 3 layers everywhere
  int num_heads = 8;    // GAT only (the paper uses 8 heads)
  // GCN only: symmetric normalization. Disabled for constant-feature graph
  // classification benchmarks, where normalization cancels the structural
  // signal (see GcnLayer).
  bool gcn_normalize = true;
  uint64_t seed = 1;
};

class GnnModel : public nn::Module {
 public:
  explicit GnnModel(const GnnConfig& config);

  struct ForwardResult {
    // embeddings[0] is the input features; embeddings[l] (l >= 1) is the
    // post-activation output of layer l. Used by GradCAM / PGExplainer /
    // GraphMask / GNN-LRP.
    std::vector<tensor::Tensor> embeddings;
    tensor::Tensor logits;  // N x C for node tasks, num_graphs x C for graph tasks
  };

  // Full forward pass. `layer_masks` is either empty (unmasked) or has one
  // entry per layer; an undefined entry leaves that layer unmasked. For
  // graph tasks `node_to_graph`/`num_graphs` describe the batch segments
  // (for a single graph pass nullptr and the readout pools all nodes).
  ForwardResult Run(const graph::Graph& graph, const LayerEdgeSet& edges,
                    const tensor::Tensor& x, const std::vector<tensor::Tensor>& layer_masks,
                    const std::vector<int>* node_to_graph = nullptr, int num_graphs = 1) const;

  // Unmasked logits over a standalone graph (builds the LayerEdgeSet
  // internally). For graph tasks this is a single-graph forward (1 x C).
  tensor::Tensor Logits(const graph::Graph& graph, const tensor::Tensor& x) const;

  const GnnConfig& config() const { return config_; }
  int num_layers() const { return config_.num_layers; }
  const GnnLayer& layer(int l) const { return *layers_[l]; }
  const nn::Linear& head() const { return *head_; }

 private:
  GnnConfig config_;
  std::vector<std::unique_ptr<GnnLayer>> layers_;
  std::unique_ptr<nn::Linear> head_;
};

}  // namespace revelio::gnn

#endif  // REVELIO_GNN_MODEL_H_
