#include "gnn/serialization.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace revelio::gnn {
namespace {

constexpr char kMagic[] = "revelio-gnn-v1";

int ArchToInt(GnnArch arch) { return static_cast<int>(arch); }
int TaskToInt(TaskType task) { return static_cast<int>(task); }

}  // namespace

util::Status SaveModel(const GnnModel& model, const std::string& path) {
  std::ofstream out(path);
  if (!out.good()) return util::Status::Internal("cannot open " + path + " for writing");
  const GnnConfig& config = model.config();
  out << kMagic << "\n";
  out << ArchToInt(config.arch) << " " << TaskToInt(config.task) << " " << config.input_dim
      << " " << config.hidden_dim << " " << config.num_classes << " " << config.num_layers
      << " " << config.num_heads << " " << (config.gcn_normalize ? 1 : 0) << " "
      << config.seed << "\n";
  const auto parameters = model.Parameters();
  out << parameters.size() << "\n";
  char buffer[64];
  for (const auto& parameter : parameters) {
    out << parameter.rows() << " " << parameter.cols();
    for (float v : parameter.values()) {
      std::snprintf(buffer, sizeof(buffer), " %a", static_cast<double>(v));
      out << buffer;
    }
    out << "\n";
  }
  if (!out.good()) return util::Status::Internal("write failed for " + path);
  return util::Status::Ok();
}

util::StatusOr<std::unique_ptr<GnnModel>> LoadModel(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) return util::Status::NotFound("cannot open " + path);
  std::string magic;
  std::getline(in, magic);
  if (magic != kMagic) {
    return util::Status::InvalidArgument("bad header in " + path + ": " + magic);
  }
  GnnConfig config;
  int arch = 0, task = 0, normalize = 1;
  uint64_t seed = 0;
  if (!(in >> arch >> task >> config.input_dim >> config.hidden_dim >> config.num_classes >>
        config.num_layers >> config.num_heads >> normalize >> seed)) {
    return util::Status::InvalidArgument("truncated config in " + path);
  }
  if (arch < 0 || arch > 2 || task < 0 || task > 1) {
    return util::Status::InvalidArgument("invalid arch/task in " + path);
  }
  config.arch = static_cast<GnnArch>(arch);
  config.task = static_cast<TaskType>(task);
  config.gcn_normalize = normalize != 0;
  config.seed = seed;

  auto model = std::make_unique<GnnModel>(config);
  auto parameters = model->Parameters();
  size_t count = 0;
  if (!(in >> count) || count != parameters.size()) {
    return util::Status::InvalidArgument("parameter count mismatch in " + path);
  }
  for (auto& parameter : parameters) {
    int rows = 0, cols = 0;
    if (!(in >> rows >> cols) || rows != parameter.rows() || cols != parameter.cols()) {
      return util::Status::InvalidArgument("parameter shape mismatch in " + path);
    }
    std::vector<float>* values = parameter.mutable_values();
    std::string token;
    for (auto& v : *values) {
      // Hex-float tokens ("0x1.8p+1") are not parsed by istream's double
      // extractor; go through strtod.
      if (!(in >> token)) {
        return util::Status::InvalidArgument("truncated parameter data in " + path);
      }
      char* end = nullptr;
      const double parsed = std::strtod(token.c_str(), &end);
      if (end == token.c_str()) {
        return util::Status::InvalidArgument("bad float token '" + token + "' in " + path);
      }
      v = static_cast<float>(parsed);
    }
  }
  return model;
}

}  // namespace revelio::gnn
