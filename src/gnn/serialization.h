#ifndef REVELIO_GNN_SERIALIZATION_H_
#define REVELIO_GNN_SERIALIZATION_H_

// Save/load of trained GNN models. The format is a versioned text file:
// the GnnConfig followed by every parameter tensor (hex floats, lossless
// round-trip). Parameter order is the Module registry order, which is
// deterministic for a given config.

#include <memory>
#include <string>

#include "gnn/model.h"
#include "util/status.h"

namespace revelio::gnn {

// Writes `model` (config + all trainable parameters) to `path`.
util::Status SaveModel(const GnnModel& model, const std::string& path);

// Reconstructs a model saved by SaveModel. Fails on malformed files or
// version mismatches.
util::StatusOr<std::unique_ptr<GnnModel>> LoadModel(const std::string& path);

}  // namespace revelio::gnn

#endif  // REVELIO_GNN_SERIALIZATION_H_
