#include "gnn/layer_edges.h"

#include <cmath>

namespace revelio::gnn {

LayerEdgeSet BuildLayerEdges(const graph::Graph& graph) {
  LayerEdgeSet set;
  set.num_nodes = graph.num_nodes();
  set.num_base_edges = graph.num_edges();
  const int total = graph.num_edges() + graph.num_nodes();
  set.src.reserve(total);
  set.dst.reserve(total);
  for (const graph::Edge& e : graph.edges()) {
    set.src.push_back(e.src);
    set.dst.push_back(e.dst);
  }
  for (int v = 0; v < graph.num_nodes(); ++v) {
    set.src.push_back(v);
    set.dst.push_back(v);
  }
  set.in_layer_edges.assign(graph.num_nodes(), {});
  for (int e = 0; e < total; ++e) set.in_layer_edges[set.dst[e]].push_back(e);
  return set;
}

std::vector<float> GcnCoefficients(const graph::Graph& graph, const LayerEdgeSet& edges) {
  std::vector<int> in_degrees = graph.InDegrees();
  std::vector<float> inv_sqrt(graph.num_nodes());
  for (int v = 0; v < graph.num_nodes(); ++v) {
    inv_sqrt[v] = 1.0f / std::sqrt(static_cast<float>(in_degrees[v] + 1));
  }
  std::vector<float> coefficients(edges.num_layer_edges());
  for (int e = 0; e < edges.num_layer_edges(); ++e) {
    coefficients[e] = inv_sqrt[edges.src[e]] * inv_sqrt[edges.dst[e]];
  }
  return coefficients;
}

}  // namespace revelio::gnn
