#include "gnn/layer_edges.h"

#include <cmath>
#include <memory>
#include <utility>

#include "tensor/pool.h"

namespace revelio::gnn {

LayerEdgeSet BuildLayerEdges(const graph::Graph& graph) {
  LayerEdgeSet set;
  set.num_nodes = graph.num_nodes();
  set.num_base_edges = graph.num_edges();
  const int total = graph.num_edges() + graph.num_nodes();
  set.src.reserve(total);
  set.dst.reserve(total);
  for (const graph::Edge& e : graph.edges()) {
    set.src.push_back(e.src);
    set.dst.push_back(e.dst);
  }
  for (int v = 0; v < graph.num_nodes(); ++v) {
    set.src.push_back(v);
    set.dst.push_back(v);
  }
  set.in_layer_edges.assign(graph.num_nodes(), {});
  for (int e = 0; e < total; ++e) set.in_layer_edges[set.dst[e]].push_back(e);

  // Splice one self-loop per node onto the graph's cached destination-grouped
  // CSR. Self-loop layer-edge ids (E + v) sort after every base edge id, so
  // appending them at the end of row v / transpose column v preserves the
  // increasing-edge-id order the fused SpMM kernels rely on for bitwise
  // equality with the legacy scatter scan.
  const tensor::CsrPattern& base = *graph.InCsr();
  const int n = graph.num_nodes();
  const int num_base = graph.num_edges();
  auto aug = std::make_shared<tensor::CsrPattern>();
  aug->num_rows = n;
  aug->num_cols = n;
  aug->num_edges = total;
  aug->row_ptr.resize(static_cast<size_t>(n) + 1);
  aug->tcol_ptr.resize(static_cast<size_t>(n) + 1);
  aug->col_idx.reserve(total);
  aug->edge_idx.reserve(total);
  aug->trow_idx.reserve(total);
  aug->tedge_idx.reserve(total);
  aug->row_ptr[0] = 0;
  aug->tcol_ptr[0] = 0;
  for (int v = 0; v < n; ++v) {
    for (int k = base.row_ptr[v]; k < base.row_ptr[v + 1]; ++k) {
      aug->col_idx.push_back(base.col_idx[k]);
      aug->edge_idx.push_back(base.edge_idx[k]);
    }
    aug->col_idx.push_back(v);
    aug->edge_idx.push_back(num_base + v);
    aug->row_ptr[static_cast<size_t>(v) + 1] = static_cast<int>(aug->col_idx.size());
    for (int k = base.tcol_ptr[v]; k < base.tcol_ptr[v + 1]; ++k) {
      aug->trow_idx.push_back(base.trow_idx[k]);
      aug->tedge_idx.push_back(base.tedge_idx[k]);
    }
    aug->trow_idx.push_back(v);
    aug->tedge_idx.push_back(num_base + v);
    aug->tcol_ptr[static_cast<size_t>(v) + 1] = static_cast<int>(aug->trow_idx.size());
  }
  set.csr = std::move(aug);
  return set;
}

std::vector<float> GcnCoefficients(const graph::Graph& graph, const LayerEdgeSet& edges) {
  std::vector<int> in_degrees = graph.InDegrees();
  // Per-forward scratch comes from the tensor pool: callers move the result
  // into a Tensor (FromData), whose node returns the buffer on destruction.
  std::vector<float> inv_sqrt = tensor::AcquireBuffer(static_cast<size_t>(graph.num_nodes()));
  for (int v = 0; v < graph.num_nodes(); ++v) {
    inv_sqrt[v] = 1.0f / std::sqrt(static_cast<float>(in_degrees[v] + 1));
  }
  std::vector<float> coefficients =
      tensor::AcquireBuffer(static_cast<size_t>(edges.num_layer_edges()));
  for (int e = 0; e < edges.num_layer_edges(); ++e) {
    coefficients[e] = inv_sqrt[edges.src[e]] * inv_sqrt[edges.dst[e]];
  }
  tensor::ReleaseBuffer(&inv_sqrt);
  return coefficients;
}

}  // namespace revelio::gnn
