#include "gnn/model.h"

#include "tensor/ops.h"

namespace revelio::gnn {

using tensor::Tensor;

const char* GnnArchName(GnnArch arch) {
  switch (arch) {
    case GnnArch::kGcn:
      return "GCN";
    case GnnArch::kGin:
      return "GIN";
    case GnnArch::kGat:
      return "GAT";
  }
  return "?";
}

GnnModel::GnnModel(const GnnConfig& config) : config_(config) {
  CHECK_GT(config.input_dim, 0);
  CHECK_GT(config.num_layers, 0);
  util::Rng rng(config.seed);
  for (int l = 0; l < config.num_layers; ++l) {
    const int in_dim = l == 0 ? config.input_dim : config.hidden_dim;
    switch (config.arch) {
      case GnnArch::kGcn:
        layers_.push_back(std::make_unique<GcnLayer>(in_dim, config.hidden_dim, &rng, config.gcn_normalize));
        break;
      case GnnArch::kGin:
        layers_.push_back(std::make_unique<GinLayer>(in_dim, config.hidden_dim, &rng));
        break;
      case GnnArch::kGat:
        // Hidden layers concatenate heads; the final GNN layer averages them.
        layers_.push_back(std::make_unique<GatLayer>(in_dim, config.hidden_dim, config.num_heads,
                                                     /*concat=*/l + 1 < config.num_layers, &rng));
        break;
    }
    RegisterChild(layers_.back().get());
  }
  const int head_in = config.task == TaskType::kGraphClassification
                          ? 2 * config.hidden_dim  // mean (+) max readout
                          : config.hidden_dim;
  head_ = std::make_unique<nn::Linear>(head_in, config.num_classes, &rng);
  RegisterChild(head_.get());
}

GnnModel::ForwardResult GnnModel::Run(const graph::Graph& graph, const LayerEdgeSet& edges,
                                      const tensor::Tensor& x,
                                      const std::vector<tensor::Tensor>& layer_masks,
                                      const std::vector<int>* node_to_graph,
                                      int num_graphs) const {
  CHECK(layer_masks.empty() ||
        static_cast<int>(layer_masks.size()) == config_.num_layers)
      << "expected one mask per layer";
  ForwardResult result;
  result.embeddings.reserve(config_.num_layers + 1);
  result.embeddings.push_back(x);
  Tensor h = x;
  for (int l = 0; l < config_.num_layers; ++l) {
    const Tensor mask = layer_masks.empty() ? Tensor() : layer_masks[l];
    h = layers_[l]->Forward(graph, edges, h, mask);
    if (l + 1 < config_.num_layers) h = tensor::Relu(h);
    result.embeddings.push_back(h);
  }
  if (config_.task == TaskType::kGraphClassification) {
    std::vector<int> segments;
    if (node_to_graph == nullptr) {
      segments.assign(graph.num_nodes(), 0);
      num_graphs = 1;
    } else {
      segments = *node_to_graph;
    }
    // sum (+) max readout: sum pooling (the GIN-style injective readout)
    // preserves count-based structural signals that mean pooling dilutes on
    // constant-feature benchmarks; the max channel adds motif-node peaks.
    Tensor pooled = tensor::ConcatCols(tensor::ScatterAddRows(h, segments, num_graphs),
                                       tensor::SegmentMaxRows(h, segments, num_graphs));
    result.logits = head_->Forward(pooled);
  } else {
    result.logits = head_->Forward(h);
  }
  return result;
}

tensor::Tensor GnnModel::Logits(const graph::Graph& graph, const tensor::Tensor& x) const {
  LayerEdgeSet edges = BuildLayerEdges(graph);
  return Run(graph, edges, x, {}).logits;
}

}  // namespace revelio::gnn
