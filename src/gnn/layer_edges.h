#ifndef REVELIO_GNN_LAYER_EDGES_H_
#define REVELIO_GNN_LAYER_EDGES_H_

// The augmented edge set a GNN layer actually passes messages over.
//
// The paper's flow alphabet includes self-transitions (e.g. flow
// 31->31->31->28 in Table VI), because GCN adds self-loops, GIN's (1+eps)h_v
// term keeps the node's own state, and GAT attends over neighbors-plus-self.
// All three are modeled uniformly: the layer-edge list is the base edge list
// (same indices/order) followed by one self-loop per node. Per-layer-edge
// masks (paper Eq. 6) index into this list.

#include <vector>

#include "graph/graph.h"
#include "tensor/sparse.h"

namespace revelio::gnn {

struct LayerEdgeSet {
  int num_nodes = 0;
  int num_base_edges = 0;              // == graph.num_edges()
  std::vector<int> src;                // per layer edge
  std::vector<int> dst;                // per layer edge
  std::vector<std::vector<int>> in_layer_edges;  // per node: incoming layer edges

  // Aggregation pattern over the augmented edge list, grouped by destination
  // node with weight slots = layer-edge indices; spliced from the graph's
  // cached InCsr() by BuildLayerEdges. Null on default-constructed sets, in
  // which case layers fall back to the legacy gather/scatter chain.
  tensor::CsrPatternRef csr;

  int num_layer_edges() const { return static_cast<int>(src.size()); }
  bool IsSelfLoop(int e) const { return e >= num_base_edges; }
  // Layer-edge index of node v's self-loop.
  int SelfLoopOf(int v) const { return num_base_edges + v; }
};

// Builds the augmented set for `graph` (base edges in order, then self-loops
// node 0..n-1).
LayerEdgeSet BuildLayerEdges(const graph::Graph& graph);

// GCN symmetric-normalization coefficient per layer edge:
//   c(i->j) = 1 / sqrt(d(i) * d(j)),  d(v) = in_degree(v) + 1.
std::vector<float> GcnCoefficients(const graph::Graph& graph, const LayerEdgeSet& edges);

}  // namespace revelio::gnn

#endif  // REVELIO_GNN_LAYER_EDGES_H_
