#include "gnn/trainer.h"

#include "nn/loss.h"
#include "nn/optimizer.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/trace.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace revelio::gnn {

using tensor::Tensor;

namespace {

void ReportTrainMetrics(const TrainMetrics& metrics) {
  if (!obs::Enabled()) return;
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.GetGauge("gnn.train.final_loss")->Set(metrics.final_loss);
  registry.GetGauge("gnn.train.train_accuracy")->Set(metrics.train_accuracy);
  registry.GetGauge("gnn.train.val_accuracy")->Set(metrics.val_accuracy);
  registry.GetGauge("gnn.train.test_accuracy")->Set(metrics.test_accuracy);
}

// Per-epoch wall time feeds the SLO histogram (p50/p95/p99 over the run) and
// a flight-ring phase marker so a crash dump shows training progress.
void ObserveTrainEpoch(double seconds) {
  static obs::Histogram* epoch_seconds =
      obs::MetricsRegistry::Global().GetHistogram("gnn.train.epoch_seconds");
  epoch_seconds->Observe(seconds);
  obs::RecordPhase("gnn.train.epoch_done");
}

}  // namespace

Split MakeSplit(int n, double train_fraction, double val_fraction, util::Rng* rng) {
  CHECK_GT(n, 0);
  CHECK_LE(train_fraction + val_fraction, 1.0);
  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;
  rng->Shuffle(&order);
  const int train_count = static_cast<int>(n * train_fraction);
  const int val_count = static_cast<int>(n * val_fraction);
  Split split;
  split.train.assign(order.begin(), order.begin() + train_count);
  split.val.assign(order.begin() + train_count, order.begin() + train_count + val_count);
  split.test.assign(order.begin() + train_count + val_count, order.end());
  return split;
}

namespace {

std::vector<int> GatherLabels(const std::vector<int>& labels, const std::vector<int>& rows) {
  std::vector<int> subset;
  subset.reserve(rows.size());
  for (int r : rows) subset.push_back(labels[r]);
  return subset;
}

}  // namespace

TrainMetrics TrainNodeModel(GnnModel* model, const graph::Graph& graph,
                            const tensor::Tensor& features, const std::vector<int>& labels,
                            const Split& split, const TrainConfig& config) {
  CHECK(model->config().task == TaskType::kNodeClassification);
  CHECK_EQ(static_cast<int>(labels.size()), graph.num_nodes());
  obs::ScopedSpan span("gnn.TrainNodeModel");
  const LayerEdgeSet edges = BuildLayerEdges(graph);
  nn::Adam optimizer(model->Parameters(), config.learning_rate, 0.9f, 0.999f, 1e-8f,
                     config.weight_decay);
  const std::vector<int> train_labels = GatherLabels(labels, split.train);
  TrainMetrics metrics;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    obs::ScopedSpan epoch_span("gnn.train.epoch");
    optimizer.ZeroGrad();
    Tensor logits = model->Run(graph, edges, features, {}).logits;
    Tensor train_logits = tensor::GatherRows(logits, split.train);
    Tensor loss = nn::CrossEntropyFromLogits(train_logits, train_labels);
    loss.Backward();
    optimizer.Step();
    metrics.final_loss = loss.Value();
    metrics.loss_curve.push_back(loss.Value());
    // Return this epoch's intermediates to the tensor pool; parameter values
    // and the recorded loss value survive the release.
    loss.ReleaseTape();
    ObserveTrainEpoch(epoch_span.ElapsedSeconds());
    if (config.verbose && (epoch % 20 == 0 || epoch + 1 == config.epochs)) {
      LOG_INFO << "node-train epoch " << epoch << " loss " << metrics.final_loss;
    }
  }
  Tensor logits = model->Run(graph, edges, features, {}).logits;
  metrics.train_accuracy = nn::Accuracy(logits, labels, split.train);
  metrics.val_accuracy = nn::Accuracy(logits, labels, split.val);
  metrics.test_accuracy = nn::Accuracy(logits, labels, split.test);
  ReportTrainMetrics(metrics);
  return metrics;
}

TrainMetrics TrainGraphModel(GnnModel* model, const std::vector<graph::GraphInstance>& instances,
                             const Split& split, const TrainConfig& config) {
  CHECK(model->config().task == TaskType::kGraphClassification);
  obs::ScopedSpan span("gnn.TrainGraphModel");
  auto make_batch = [&](const std::vector<int>& indices) {
    std::vector<const graph::GraphInstance*> members;
    members.reserve(indices.size());
    for (int i : indices) members.push_back(&instances[i]);
    return graph::MakeBatch(members);
  };
  const graph::GraphBatch train_batch = make_batch(split.train);
  const LayerEdgeSet train_edges = BuildLayerEdges(train_batch.graph);

  nn::Adam optimizer(model->Parameters(), config.learning_rate, 0.9f, 0.999f, 1e-8f,
                     config.weight_decay);
  TrainMetrics metrics;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    obs::ScopedSpan epoch_span("gnn.train.epoch");
    optimizer.ZeroGrad();
    Tensor logits = model->Run(train_batch.graph, train_edges, train_batch.features, {},
                               &train_batch.node_to_graph, train_batch.num_graphs)
                        .logits;
    Tensor loss = nn::CrossEntropyFromLogits(logits, train_batch.labels);
    loss.Backward();
    optimizer.Step();
    metrics.final_loss = loss.Value();
    metrics.loss_curve.push_back(loss.Value());
    loss.ReleaseTape();
    ObserveTrainEpoch(epoch_span.ElapsedSeconds());
    if (config.verbose && (epoch % 20 == 0 || epoch + 1 == config.epochs)) {
      LOG_INFO << "graph-train epoch " << epoch << " loss " << metrics.final_loss;
    }
  }

  auto evaluate = [&](const std::vector<int>& indices) {
    if (indices.empty()) return 0.0;
    const graph::GraphBatch batch = make_batch(indices);
    const LayerEdgeSet batch_edges = BuildLayerEdges(batch.graph);
    Tensor logits = model->Run(batch.graph, batch_edges, batch.features, {},
                               &batch.node_to_graph, batch.num_graphs)
                        .logits;
    return nn::Accuracy(logits, batch.labels);
  };
  metrics.train_accuracy = evaluate(split.train);
  metrics.val_accuracy = evaluate(split.val);
  metrics.test_accuracy = evaluate(split.test);
  ReportTrainMetrics(metrics);
  return metrics;
}

}  // namespace revelio::gnn
