#include "gnn/layers.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <string>
#include <utility>

#include "tensor/init.h"
#include "tensor/ops.h"
#include "tensor/pool.h"

namespace revelio::gnn {

using tensor::Tensor;

namespace {

bool FusedAggregationDefault() {
  const char* env = std::getenv("REVELIO_FUSED_AGG");
  if (env == nullptr) return true;
  const std::string value(env);
  return !(value == "0" || value == "false" || value == "off");
}

std::atomic<bool>& FusedAggregationFlag() {
  static std::atomic<bool> flag(FusedAggregationDefault());
  return flag;
}

// Aggregation step shared by all layers: out[j] = sum over in-layer-edges e
// of scale[e] * h[src(e)]. Dispatches to the fused SpMM when the edge set
// carries a CSR pattern and the toggle is on; both paths are bitwise-equal
// (the fused kernel reproduces the chain's serial scan order, see
// tensor/ops_spmm.cc and tests/prop/spmm_equivalence_test.cc).
Tensor AggregateMessages(const LayerEdgeSet& edges, const Tensor& scale, const Tensor& h) {
  if (FusedAggregationEnabled() && edges.csr != nullptr) {
    return tensor::SpmmCsrWeighted(edges.csr, scale, h);
  }
  Tensor messages = tensor::RowScale(tensor::GatherRows(h, edges.src), scale);
  return tensor::ScatterAddRows(messages, edges.dst, edges.num_nodes);
}

}  // namespace

bool FusedAggregationEnabled() { return FusedAggregationFlag().load(std::memory_order_relaxed); }

void SetFusedAggregation(bool enabled) {
  FusedAggregationFlag().store(enabled, std::memory_order_relaxed);
}

GcnLayer::GcnLayer(int in_dim, int out_dim, util::Rng* rng, bool normalize)
    : GnnLayer(in_dim, out_dim), normalize_(normalize) {
  // Bias is added after aggregation (PyG convention), so the inner Linear
  // stays bias-free and a dedicated bias parameter lives on the layer.
  linear_ = std::make_unique<nn::Linear>(in_dim, out_dim, rng, /*bias=*/false);
  RegisterChild(linear_.get());
  bias_added_ = RegisterParameter(Tensor::Zeros(1, out_dim));
}

std::vector<float> GcnLayer::Coefficients(const graph::Graph& graph,
                                          const LayerEdgeSet& edges) const {
  if (normalize_) return GcnCoefficients(graph, edges);
  std::vector<float> ones = tensor::AcquireBuffer(static_cast<size_t>(edges.num_layer_edges()));
  std::fill(ones.begin(), ones.end(), 1.0f);
  return ones;
}

tensor::Tensor GcnLayer::Forward(const graph::Graph& graph, const LayerEdgeSet& edges,
                                 const tensor::Tensor& h, const tensor::Tensor& edge_mask) const {
  Tensor hw = linear_->Forward(h);
  // FromData moves the pooled coefficient buffer into the tensor node, which
  // returns it to the pool on destruction.
  Tensor scale = Tensor::FromData(edges.num_layer_edges(), 1, Coefficients(graph, edges));
  if (edge_mask.defined()) scale = tensor::Mul(scale, edge_mask);
  Tensor aggregated = AggregateMessages(edges, scale, hw);
  return tensor::AddRowBroadcast(aggregated, bias_added_);
}

GinLayer::GinLayer(int in_dim, int out_dim, util::Rng* rng, float eps)
    : GnnLayer(in_dim, out_dim), eps_(eps) {
  mlp_first_ = std::make_unique<nn::Linear>(in_dim, out_dim, rng);
  mlp_second_ = std::make_unique<nn::Linear>(out_dim, out_dim, rng);
  RegisterChild(mlp_first_.get());
  RegisterChild(mlp_second_.get());
}

tensor::Tensor GinLayer::Forward(const graph::Graph& graph, const LayerEdgeSet& edges,
                                 const tensor::Tensor& h, const tensor::Tensor& edge_mask) const {
  (void)graph;
  std::vector<float> coefficients =
      tensor::AcquireBuffer(static_cast<size_t>(edges.num_layer_edges()));
  std::fill(coefficients.begin(), coefficients.begin() + edges.num_base_edges, 1.0f);
  for (int e = edges.num_base_edges; e < edges.num_layer_edges(); ++e) {
    coefficients[e] = 1.0f + eps_;
  }
  Tensor scale = Tensor::FromData(edges.num_layer_edges(), 1, std::move(coefficients));
  if (edge_mask.defined()) scale = tensor::Mul(scale, edge_mask);
  Tensor aggregated = AggregateMessages(edges, scale, h);
  return mlp_second_->Forward(tensor::Relu(mlp_first_->Forward(aggregated)));
}

GatLayer::GatLayer(int in_dim, int out_dim, int num_heads, bool concat, util::Rng* rng)
    : GnnLayer(in_dim, out_dim), num_heads_(num_heads), concat_(concat) {
  CHECK_GT(num_heads, 0);
  if (concat_) {
    CHECK_EQ(out_dim % num_heads, 0) << "GAT concat requires out_dim divisible by num_heads";
    head_dim_ = out_dim / num_heads;
  } else {
    head_dim_ = out_dim;
  }
  for (int k = 0; k < num_heads_; ++k) {
    head_projections_.push_back(
        std::make_unique<nn::Linear>(in_dim, head_dim_, rng, /*bias=*/false));
    RegisterChild(head_projections_.back().get());
    attention_src_.push_back(RegisterParameter(tensor::XavierUniform(head_dim_, 1, rng)));
    attention_dst_.push_back(RegisterParameter(tensor::XavierUniform(head_dim_, 1, rng)));
  }
  bias_ = RegisterParameter(Tensor::Zeros(1, out_dim));
}

tensor::Tensor GatLayer::Forward(const graph::Graph& graph, const LayerEdgeSet& edges,
                                 const tensor::Tensor& h, const tensor::Tensor& edge_mask) const {
  (void)graph;
  Tensor combined;
  for (int k = 0; k < num_heads_; ++k) {
    Tensor wh = head_projections_[k]->Forward(h);
    Tensor score_src = tensor::MatMul(wh, attention_src_[k]);  // N x 1
    Tensor score_dst = tensor::MatMul(wh, attention_dst_[k]);  // N x 1
    Tensor edge_logits = tensor::Add(tensor::GatherRows(score_src, edges.src),
                                     tensor::GatherRows(score_dst, edges.dst));
    edge_logits = tensor::LeakyRelu(edge_logits, 0.2f);
    Tensor attention = tensor::SegmentSoftmax(edge_logits, edges.dst, edges.num_nodes);
    Tensor scale = edge_mask.defined() ? tensor::Mul(attention, edge_mask) : attention;
    Tensor head_out = AggregateMessages(edges, scale, wh);
    if (!combined.defined()) {
      combined = head_out;
    } else if (concat_) {
      combined = tensor::ConcatCols(combined, head_out);
    } else {
      combined = tensor::Add(combined, head_out);
    }
  }
  if (!concat_ && num_heads_ > 1) {
    combined = tensor::MulScalar(combined, 1.0f / static_cast<float>(num_heads_));
  }
  return tensor::AddRowBroadcast(combined, bias_);
}

}  // namespace revelio::gnn
