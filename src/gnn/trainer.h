#ifndef REVELIO_GNN_TRAINER_H_
#define REVELIO_GNN_TRAINER_H_

// Full-batch training loops for node and graph classification, producing the
// pretrained target models the explainers are run against (paper Table III).

#include <vector>

#include "gnn/model.h"
#include "graph/batch.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace revelio::gnn {

struct TrainConfig {
  int epochs = 200;
  float learning_rate = 0.01f;
  float weight_decay = 5e-4f;
  bool verbose = false;
};

// Index-based train/val/test split.
struct Split {
  std::vector<int> train;
  std::vector<int> val;
  std::vector<int> test;
};

// Random split of [0, n) with the given fractions (test gets the rest).
Split MakeSplit(int n, double train_fraction, double val_fraction, util::Rng* rng);

struct TrainMetrics {
  double train_accuracy = 0.0;
  double val_accuracy = 0.0;
  double test_accuracy = 0.0;
  double final_loss = 0.0;
  // Training loss per epoch (loss_curve.back() == final_loss). With a fixed
  // Rng seed the curve is bitwise-reproducible across runs and thread counts
  // (the determinism contract; enforced by tests/prop/determinism_test).
  std::vector<float> loss_curve;
};

// Trains `model` (node-classification config) on one attributed graph.
TrainMetrics TrainNodeModel(GnnModel* model, const graph::Graph& graph,
                            const tensor::Tensor& features, const std::vector<int>& labels,
                            const Split& split, const TrainConfig& config);

// Trains `model` (graph-classification config) on a set of graph instances
// (split indexes into `instances`). Uses block-diagonal full-batch passes.
TrainMetrics TrainGraphModel(GnnModel* model, const std::vector<graph::GraphInstance>& instances,
                             const Split& split, const TrainConfig& config);

}  // namespace revelio::gnn

#endif  // REVELIO_GNN_TRAINER_H_
