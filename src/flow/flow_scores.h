#ifndef REVELIO_FLOW_FLOW_SCORES_H_
#define REVELIO_FLOW_FLOW_SCORES_H_

// Translation between flow-level and edge-level importance (paper Eq. 3) and
// the F_{i*j} flow-pattern notation of §III.

#include <string>
#include <vector>

#include "flow/message_flow.h"

namespace revelio::flow {

// Eq. (3) with f = summation: layer_edge_score[l][e] = sum of the scores of
// flows traversing layer edge e at layer l (0 where no flow passes).
std::vector<std::vector<double>> FlowScoresToLayerEdgeScores(
    const FlowSet& flows, const std::vector<double>& flow_scores);

// Collapses per-layer scores into one score per *base* edge: the mean over
// the layers where that edge carries at least one flow. Self-loop layer
// edges are excluded — fidelity evaluation removes only real edges.
std::vector<double> LayerEdgeScoresToEdgeScores(
    const FlowSet& flows, const gnn::LayerEdgeSet& edges,
    const std::vector<std::vector<double>>& layer_edge_scores);

// Indices of the k highest-scoring flows, descending (ties broken by index).
std::vector<int> TopKFlows(const std::vector<double>& flow_scores, int k);

// --- Flow pattern matching (F_{i*j} notation) --------------------------------

struct PatternToken {
  enum class Kind { kNode, kAnyOne, kAnySequence };
  Kind kind = Kind::kAnyOne;
  int node = -1;  // set when kind == kNode
};

// Parses a whitespace-separated pattern: integers match a specific node, "?"
// any single node, "?{n}" n single nodes, "*" any (possibly empty) sequence.
// Example: "?{2} 4 7 *" is the paper's F_{?{2}ij*} with i=4, j=7.
std::vector<PatternToken> ParseFlowPattern(const std::string& pattern);

// True if flow `k`'s node sequence matches the pattern.
bool FlowMatchesPattern(const FlowSet& flows, const gnn::LayerEdgeSet& edges, int k,
                        const std::vector<PatternToken>& pattern);

// All flow indices matching the pattern.
std::vector<int> MatchFlows(const FlowSet& flows, const gnn::LayerEdgeSet& edges,
                            const std::string& pattern);

}  // namespace revelio::flow

#endif  // REVELIO_FLOW_FLOW_SCORES_H_
