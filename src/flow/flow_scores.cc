#include "flow/flow_scores.h"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "util/check.h"

namespace revelio::flow {

std::vector<std::vector<double>> FlowScoresToLayerEdgeScores(
    const FlowSet& flows, const std::vector<double>& flow_scores) {
  CHECK_EQ(static_cast<int>(flow_scores.size()), flows.num_flows());
  std::vector<std::vector<double>> layer_scores(
      flows.num_layers(), std::vector<double>(flows.num_layer_edges(), 0.0));
  for (int l = 0; l < flows.num_layers(); ++l) {
    const std::vector<int>& edge_of_flow = flows.EdgesAtLayer(l);
    for (int k = 0; k < flows.num_flows(); ++k) {
      layer_scores[l][edge_of_flow[k]] += flow_scores[k];
    }
  }
  return layer_scores;
}

std::vector<double> LayerEdgeScoresToEdgeScores(
    const FlowSet& flows, const gnn::LayerEdgeSet& edges,
    const std::vector<std::vector<double>>& layer_edge_scores) {
  CHECK_EQ(static_cast<int>(layer_edge_scores.size()), flows.num_layers());
  std::vector<double> edge_scores(edges.num_base_edges, 0.0);
  for (int e = 0; e < edges.num_base_edges; ++e) {
    double total = 0.0;
    int carrying_layers = 0;
    for (int l = 0; l < flows.num_layers(); ++l) {
      if (!flows.EdgeCarriesFlow(l, e)) continue;
      total += layer_edge_scores[l][e];
      ++carrying_layers;
    }
    edge_scores[e] = carrying_layers > 0 ? total / carrying_layers : 0.0;
  }
  return edge_scores;
}

std::vector<int> TopKFlows(const std::vector<double>& flow_scores, int k) {
  std::vector<int> order(flow_scores.size());
  std::iota(order.begin(), order.end(), 0);
  k = std::min<int>(k, static_cast<int>(order.size()));
  std::partial_sort(order.begin(), order.begin() + k, order.end(), [&](int a, int b) {
    if (flow_scores[a] != flow_scores[b]) return flow_scores[a] > flow_scores[b];
    return a < b;
  });
  order.resize(k);
  return order;
}

std::vector<PatternToken> ParseFlowPattern(const std::string& pattern) {
  std::vector<PatternToken> tokens;
  std::istringstream in(pattern);
  std::string word;
  while (in >> word) {
    if (word == "*") {
      tokens.push_back({PatternToken::Kind::kAnySequence, -1});
    } else if (word == "?") {
      tokens.push_back({PatternToken::Kind::kAnyOne, -1});
    } else if (word.rfind("?{", 0) == 0) {
      CHECK(word.back() == '}') << "malformed pattern token: " << word;
      const int repeat = std::atoi(word.substr(2, word.size() - 3).c_str());
      CHECK_GT(repeat, 0);
      for (int i = 0; i < repeat; ++i) tokens.push_back({PatternToken::Kind::kAnyOne, -1});
    } else {
      tokens.push_back({PatternToken::Kind::kNode, std::atoi(word.c_str())});
    }
  }
  return tokens;
}

bool FlowMatchesPattern(const FlowSet& flows, const gnn::LayerEdgeSet& edges, int k,
                        const std::vector<PatternToken>& pattern) {
  const std::vector<int> nodes = flows.FlowNodes(k, edges);
  const int n = static_cast<int>(nodes.size());
  const int m = static_cast<int>(pattern.size());
  // match[i][j]: nodes[0..i) matches pattern[0..j).
  std::vector<std::vector<char>> match(n + 1, std::vector<char>(m + 1, 0));
  match[0][0] = 1;
  for (int j = 1; j <= m; ++j) {
    if (pattern[j - 1].kind == PatternToken::Kind::kAnySequence) match[0][j] = match[0][j - 1];
  }
  for (int i = 1; i <= n; ++i) {
    for (int j = 1; j <= m; ++j) {
      const PatternToken& token = pattern[j - 1];
      switch (token.kind) {
        case PatternToken::Kind::kNode:
          match[i][j] = match[i - 1][j - 1] && nodes[i - 1] == token.node;
          break;
        case PatternToken::Kind::kAnyOne:
          match[i][j] = match[i - 1][j - 1];
          break;
        case PatternToken::Kind::kAnySequence:
          match[i][j] = match[i][j - 1] || match[i - 1][j];
          break;
      }
    }
  }
  return match[n][m] != 0;
}

std::vector<int> MatchFlows(const FlowSet& flows, const gnn::LayerEdgeSet& edges,
                            const std::string& pattern) {
  const std::vector<PatternToken> tokens = ParseFlowPattern(pattern);
  std::vector<int> matched;
  for (int k = 0; k < flows.num_flows(); ++k) {
    if (FlowMatchesPattern(flows, edges, k, tokens)) matched.push_back(k);
  }
  return matched;
}

}  // namespace revelio::flow
