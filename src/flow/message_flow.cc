#include "flow/message_flow.h"

#include <sstream>

#include "util/check.h"

namespace revelio::flow {

std::vector<int> FlowSet::FlowNodes(int k, const gnn::LayerEdgeSet& edges) const {
  CHECK(k >= 0 && k < num_flows());
  std::vector<int> nodes;
  nodes.reserve(num_layers_ + 1);
  nodes.push_back(edges.src[EdgeAt(0, k)]);
  for (int l = 0; l < num_layers_; ++l) nodes.push_back(edges.dst[EdgeAt(l, k)]);
  return nodes;
}

std::string FlowSet::FormatFlow(int k, const gnn::LayerEdgeSet& edges) const {
  const std::vector<int> nodes = FlowNodes(k, edges);
  std::ostringstream out;
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (i > 0) out << "->";
    out << nodes[i];
  }
  return out.str();
}

void FlowSet::AddFlow(const std::vector<int>& layer_edge_path) {
  CHECK_EQ(static_cast<int>(layer_edge_path.size()), num_layers_);
  for (int l = 0; l < num_layers_; ++l) {
    DCHECK(layer_edge_path[l] >= 0 && layer_edge_path[l] < num_layer_edges_);
    edge_of_flow_[l].push_back(layer_edge_path[l]);
  }
  reverse_built_ = false;
}

const std::vector<int>& FlowSet::FlowsOnEdge(int l, int e) const {
  EnsureReverseIndex();
  CHECK(l >= 0 && l < num_layers_);
  CHECK(e >= 0 && e < num_layer_edges_);
  return flows_on_edge_[l][e];
}

bool FlowSet::EdgeCarriesFlow(int l, int e) const { return !FlowsOnEdge(l, e).empty(); }

std::vector<int> FlowSet::UsedEdgesAtLayer(int l) const {
  EnsureReverseIndex();
  std::vector<int> used;
  for (int e = 0; e < num_layer_edges_; ++e) {
    if (!flows_on_edge_[l][e].empty()) used.push_back(e);
  }
  return used;
}

void FlowSet::EnsureReverseIndex() const {
  if (reverse_built_) return;
  flows_on_edge_.assign(num_layers_, std::vector<std::vector<int>>(num_layer_edges_));
  for (int l = 0; l < num_layers_; ++l) {
    for (int k = 0; k < num_flows(); ++k) {
      flows_on_edge_[l][edge_of_flow_[l][k]].push_back(k);
    }
  }
  reverse_built_ = true;
}

int64_t CountFlowsToTarget(const gnn::LayerEdgeSet& edges, int target, int num_layers) {
  CHECK(target >= 0 && target < edges.num_nodes);
  // paths[v] = number of walks of the processed length from v to target.
  std::vector<int64_t> paths(edges.num_nodes, 0);
  paths[target] = 1;
  for (int step = 0; step < num_layers; ++step) {
    std::vector<int64_t> next(edges.num_nodes, 0);
    for (int e = 0; e < edges.num_layer_edges(); ++e) {
      next[edges.src[e]] += paths[edges.dst[e]];
    }
    paths = std::move(next);
  }
  int64_t total = 0;
  for (int64_t p : paths) total += p;
  return total;
}

int64_t CountAllFlows(const gnn::LayerEdgeSet& edges, int num_layers) {
  int64_t total = 0;
  for (int v = 0; v < edges.num_nodes; ++v) {
    total += CountFlowsToTarget(edges, v, num_layers);
  }
  return total;
}

namespace {

// Backward DFS over layers: position `l` chooses the layer edge used at
// layer l (0-based), starting from the deepest layer.
void EnumerateBackward(const gnn::LayerEdgeSet& edges, int node, int l,
                       std::vector<int>* path, FlowSet* out, int64_t max_flows) {
  if (l < 0) {
    CHECK_LE(out->num_flows() + 1, max_flows)
        << "flow enumeration exceeded max_flows; pre-screen with CountFlowsToTarget";
    out->AddFlow(*path);
    return;
  }
  for (int e : edges.in_layer_edges[node]) {
    (*path)[l] = e;
    EnumerateBackward(edges, edges.src[e], l - 1, path, out, max_flows);
  }
}

}  // namespace

FlowSet EnumerateFlowsToTarget(const gnn::LayerEdgeSet& edges, int target, int num_layers,
                               int64_t max_flows) {
  CHECK(target >= 0 && target < edges.num_nodes);
  CHECK_GT(num_layers, 0);
  FlowSet result(num_layers, edges.num_layer_edges());
  std::vector<int> path(num_layers);
  EnumerateBackward(edges, target, num_layers - 1, &path, &result, max_flows);
  return result;
}

FlowSet EnumerateAllFlows(const gnn::LayerEdgeSet& edges, int num_layers, int64_t max_flows) {
  CHECK_GT(num_layers, 0);
  FlowSet result(num_layers, edges.num_layer_edges());
  std::vector<int> path(num_layers);
  for (int v = 0; v < edges.num_nodes; ++v) {
    EnumerateBackward(edges, v, num_layers - 1, &path, &result, max_flows);
  }
  return result;
}

}  // namespace revelio::flow
