#ifndef REVELIO_FLOW_MESSAGE_FLOW_H_
#define REVELIO_FLOW_MESSAGE_FLOW_H_

// Message-flow enumeration (paper §III).
//
// A message flow in an L-layer GNN is a walk of L consecutive layer edges
// (self-loops included): information leaving node u_0 at layer 1 reaches
// node u_L after L steps. FlowSet stores all flows of a graph instance in
// flat arrays together with the layer-edge incidence needed by Eq. (5)/(7):
// edge_of_flow[l][k] is the layer edge that flow k traverses at layer l+1 —
// the sparse representation of the binary matrix I in Eq. (7).

#include <cstdint>
#include <string>
#include <vector>

#include "gnn/layer_edges.h"

namespace revelio::flow {

class FlowSet {
 public:
  FlowSet() = default;
  FlowSet(int num_layers, int num_layer_edges)
      : num_layers_(num_layers), num_layer_edges_(num_layer_edges) {
    edge_of_flow_.resize(num_layers);
  }

  int num_layers() const { return num_layers_; }
  int num_flows() const {
    return num_layers_ == 0 ? 0 : static_cast<int>(edge_of_flow_[0].size());
  }
  int num_layer_edges() const { return num_layer_edges_; }

  // Layer edge used by flow `k` at layer `l` (0-based layer).
  int EdgeAt(int l, int k) const { return edge_of_flow_[l][k]; }
  const std::vector<int>& EdgesAtLayer(int l) const { return edge_of_flow_[l]; }

  // Node sequence u_0 .. u_L of flow `k`.
  std::vector<int> FlowNodes(int k, const gnn::LayerEdgeSet& edges) const;

  // "31->31->28" style rendering of flow `k`.
  std::string FormatFlow(int k, const gnn::LayerEdgeSet& edges) const;

  // Appends a flow given its layer-edge path (length == num_layers).
  void AddFlow(const std::vector<int>& layer_edge_path);

  // Flow indices traversing layer edge `e` at layer `l` (computed lazily,
  // cached; invalidated by AddFlow).
  const std::vector<int>& FlowsOnEdge(int l, int e) const;

  // True if at least one flow traverses layer edge `e` at layer `l`.
  bool EdgeCarriesFlow(int l, int e) const;

  // Layer edges at layer `l` carrying at least one flow ("used by the GNN" in
  // the Eq. (8) regularizer sense).
  std::vector<int> UsedEdgesAtLayer(int l) const;

 private:
  void EnsureReverseIndex() const;

  int num_layers_ = 0;
  int num_layer_edges_ = 0;
  std::vector<std::vector<int>> edge_of_flow_;  // [L][|F|]

  mutable bool reverse_built_ = false;
  mutable std::vector<std::vector<std::vector<int>>> flows_on_edge_;  // [L][E][..]
};

// Counts flows ending at `target` without materializing them (dynamic
// programming over path counts).
int64_t CountFlowsToTarget(const gnn::LayerEdgeSet& edges, int target, int num_layers);

// Counts all flows in the graph.
int64_t CountAllFlows(const gnn::LayerEdgeSet& edges, int num_layers);

// Enumerates every flow of length `num_layers` ending at `target` (node
// classification instances). CHECK-fails if the count exceeds `max_flows`;
// callers should use CountFlowsToTarget to pre-screen infeasible instances.
FlowSet EnumerateFlowsToTarget(const gnn::LayerEdgeSet& edges, int target, int num_layers,
                               int64_t max_flows = 2'000'000);

// Enumerates every flow in the graph (graph classification instances).
FlowSet EnumerateAllFlows(const gnn::LayerEdgeSet& edges, int num_layers,
                          int64_t max_flows = 2'000'000);

}  // namespace revelio::flow

#endif  // REVELIO_FLOW_MESSAGE_FLOW_H_
