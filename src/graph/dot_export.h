#ifndef REVELIO_GRAPH_DOT_EXPORT_H_
#define REVELIO_GRAPH_DOT_EXPORT_H_

// Graphviz DOT rendering of explanation results (paper Fig. 6 style):
// explanatory edges dark, missed ground-truth edges dashed red, motif and
// target nodes colored.

#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace revelio::graph {

struct DotStyle {
  // Parallel to the graph's edges; selected = rendered bold/dark.
  std::vector<char> edge_selected;
  // Optional ground truth: unselected true edges render dashed red.
  std::vector<char> edge_ground_truth;
  // Optional node emphasis (motif membership) and a highlighted target.
  std::vector<char> node_in_motif;
  int target_node = -1;
  // Collapse directed pairs (u->v, v->u) into one undirected edge.
  bool merge_directed_pairs = true;
};

// Renders the graph to DOT text.
std::string ToDot(const Graph& graph, const DotStyle& style);

// Writes ToDot output to `path`.
util::Status WriteDotFile(const std::string& path, const Graph& graph, const DotStyle& style);

}  // namespace revelio::graph

#endif  // REVELIO_GRAPH_DOT_EXPORT_H_
