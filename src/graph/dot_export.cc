#include "graph/dot_export.h"

#include <fstream>
#include <sstream>

namespace revelio::graph {
namespace {

bool Selected(const std::vector<char>& flags, int index) {
  return index < static_cast<int>(flags.size()) && flags[index];
}

}  // namespace

std::string ToDot(const Graph& graph, const DotStyle& style) {
  std::ostringstream out;
  const bool merge = style.merge_directed_pairs;
  out << (merge ? "graph" : "digraph") << " explanation {\n";
  out << "  node [shape=circle, fontsize=10];\n";
  for (int v = 0; v < graph.num_nodes(); ++v) {
    out << "  " << v << " [";
    if (v == style.target_node) {
      out << "style=filled, fillcolor=\"#d62728\", fontcolor=white";
    } else if (Selected(style.node_in_motif, v)) {
      out << "style=filled, fillcolor=\"#ffdd57\"";
    } else {
      out << "style=filled, fillcolor=\"#e8e8e8\"";
    }
    out << "];\n";
  }
  std::vector<char> emitted(graph.num_edges(), 0);
  for (int e = 0; e < graph.num_edges(); ++e) {
    if (emitted[e]) continue;
    const Edge& edge = graph.edge(e);
    bool selected = Selected(style.edge_selected, e);
    bool truth = Selected(style.edge_ground_truth, e);
    if (merge) {
      // Mark the reverse edge as handled; either direction's flags count.
      for (int r : graph.OutEdges(edge.dst)) {
        if (graph.edge(r).dst == edge.src && !emitted[r]) {
          emitted[r] = 1;
          selected = selected || Selected(style.edge_selected, r);
          truth = truth || Selected(style.edge_ground_truth, r);
          break;
        }
      }
    }
    emitted[e] = 1;
    out << "  " << edge.src << (merge ? " -- " : " -> ") << edge.dst << " [";
    if (selected) {
      out << "color=\"#1f1f1f\", penwidth=2.2";
    } else if (truth) {
      // Ground-truth edge the explanation missed (Fig. 6 dashed red).
      out << "color=\"#d62728\", style=dashed";
    } else {
      out << "color=\"#bbbbbb\"";
    }
    out << "];\n";
  }
  out << "}\n";
  return out.str();
}

util::Status WriteDotFile(const std::string& path, const Graph& graph, const DotStyle& style) {
  std::ofstream file(path);
  if (!file.good()) {
    return util::Status::Internal("cannot open " + path + " for writing");
  }
  file << ToDot(graph, style);
  if (!file.good()) return util::Status::Internal("write failed for " + path);
  return util::Status::Ok();
}

}  // namespace revelio::graph
