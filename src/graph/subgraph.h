#ifndef REVELIO_GRAPH_SUBGRAPH_H_
#define REVELIO_GRAPH_SUBGRAPH_H_

// Computation-subgraph extraction for node-classification explanations.
//
// An L-layer GNN's prediction for node t only depends on the nodes that can
// reach t in at most L directed steps. Explainers therefore operate on this
// k-hop "computation subgraph" (the PyG convention), which keeps the cost of
// an explanation independent of the full graph size.

#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace revelio::graph {

struct Subgraph {
  Graph graph;                // relabeled induced subgraph
  std::vector<int> node_map;  // local node id -> global node id
  std::vector<int> edge_map;  // local edge id -> global edge id
  int target_local = -1;      // local id of the explanation target
};

// Nodes with a directed path of length <= k to `target` (plus the target),
// with all induced edges. The result is canonical: node_map ascends with the
// global node ids and edge_map with the global edge ids, independent of
// traversal order. Node 0 of the result need not be the target; use
// `target_local`.
Subgraph ExtractKHopInSubgraph(const Graph& graph, int target, int k);

// Status-returning variant for harness-generated inputs: rejects an
// out-of-range target (any target on an empty graph) or a negative radius
// with kInvalidArgument instead of CHECK-aborting. A target with no in-edges
// is valid and yields the single-node, zero-edge subgraph.
util::StatusOr<Subgraph> TryExtractKHopInSubgraph(const Graph& graph, int target, int k);

// Rows of `features` selected by `rows` (a detached leaf tensor).
tensor::Tensor SliceRows(const tensor::Tensor& features, const std::vector<int>& rows);

}  // namespace revelio::graph

#endif  // REVELIO_GRAPH_SUBGRAPH_H_
