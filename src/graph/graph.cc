#include "graph/graph.h"

#include <algorithm>
#include <atomic>
#include <sstream>
#include <unordered_set>

namespace revelio::graph {

namespace internal {

uint64_t NextGraphStructureVersion() {
  static std::atomic<uint64_t> counter(0);
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace internal

void Graph::set_num_nodes(int n) {
  CHECK_GE(n, num_nodes_);
  num_nodes_ = n;
  // The in/out adjacency lists are sized to the old node count; leaving
  // adjacency_built_ set would make InEdges/OutEdges on the new nodes index
  // out of bounds (and miss rebuilds after later AddEdge calls).
  adjacency_built_ = false;
  in_csr_.reset();
  out_csr_.reset();
  structure_version_ = internal::NextGraphStructureVersion();
}

int Graph::AddEdge(int src, int dst) {
  CHECK(src >= 0 && src < num_nodes_) << "src " << src << " out of range";
  CHECK(dst >= 0 && dst < num_nodes_) << "dst " << dst << " out of range";
  CHECK_NE(src, dst) << "self-loops are not stored in the base graph";
  edges_.push_back({src, dst});
  adjacency_built_ = false;
  in_csr_.reset();
  out_csr_.reset();
  structure_version_ = internal::NextGraphStructureVersion();
  return static_cast<int>(edges_.size()) - 1;
}

int Graph::AddUndirectedEdge(int u, int v) {
  const int first = AddEdge(u, v);
  AddEdge(v, u);
  return first;
}

bool Graph::HasEdge(int src, int dst) const {
  EnsureAdjacency();
  for (int e : out_edges_[src]) {
    if (edges_[e].dst == dst) return true;
  }
  return false;
}

const std::vector<int>& Graph::InEdges(int node) const {
  EnsureAdjacency();
  CHECK(node >= 0 && node < num_nodes_);
  return in_edges_[node];
}

const std::vector<int>& Graph::OutEdges(int node) const {
  EnsureAdjacency();
  CHECK(node >= 0 && node < num_nodes_);
  return out_edges_[node];
}

std::vector<int> Graph::InDegrees() const {
  std::vector<int> degrees(num_nodes_, 0);
  for (const Edge& e : edges_) ++degrees[e.dst];
  return degrees;
}

std::vector<int> Graph::OutDegrees() const {
  std::vector<int> degrees(num_nodes_, 0);
  for (const Edge& e : edges_) ++degrees[e.src];
  return degrees;
}

int Graph::MaxInDegree() const {
  int best = 0;
  for (int d : InDegrees()) best = std::max(best, d);
  return best;
}

const tensor::CsrPatternRef& Graph::InCsr() const {
  if (in_csr_ == nullptr) {
    std::vector<int> rows(edges_.size());
    std::vector<int> cols(edges_.size());
    for (size_t e = 0; e < edges_.size(); ++e) {
      rows[e] = edges_[e].dst;
      cols[e] = edges_[e].src;
    }
    in_csr_ = tensor::BuildCsrPattern(num_nodes_, num_nodes_, rows, cols);
  }
  return in_csr_;
}

const tensor::CsrPatternRef& Graph::OutCsr() const {
  if (out_csr_ == nullptr) {
    std::vector<int> rows(edges_.size());
    std::vector<int> cols(edges_.size());
    for (size_t e = 0; e < edges_.size(); ++e) {
      rows[e] = edges_[e].src;
      cols[e] = edges_[e].dst;
    }
    out_csr_ = tensor::BuildCsrPattern(num_nodes_, num_nodes_, rows, cols);
  }
  return out_csr_;
}

Graph Graph::RemoveEdges(const std::vector<int>& removed, std::vector<int>* index_map_out) const {
  std::unordered_set<int> removed_set(removed.begin(), removed.end());
  CHECK_EQ(removed_set.size(), removed.size()) << "duplicate edge indices in RemoveEdges";
  for (int e : removed) CHECK(e >= 0 && e < num_edges());
  Graph result(num_nodes_);
  std::vector<int> index_map(edges_.size(), -1);
  for (int e = 0; e < num_edges(); ++e) {
    if (removed_set.count(e)) continue;
    index_map[e] = result.AddEdge(edges_[e].src, edges_[e].dst);
  }
  if (index_map_out != nullptr) *index_map_out = std::move(index_map);
  return result;
}

std::string Graph::DebugString() const {
  std::ostringstream out;
  out << "Graph(n=" << num_nodes_ << ", m=" << num_edges() << ", edges=[";
  for (int e = 0; e < num_edges() && e < 32; ++e) {
    if (e > 0) out << ", ";
    out << edges_[e].src << "->" << edges_[e].dst;
  }
  if (num_edges() > 32) out << ", ...";
  out << "])";
  return out.str();
}

void Graph::EnsureAdjacency() const {
  if (adjacency_built_) return;
  in_edges_.assign(num_nodes_, {});
  out_edges_.assign(num_nodes_, {});
  for (int e = 0; e < num_edges(); ++e) {
    out_edges_[edges_[e].src].push_back(e);
    in_edges_[edges_[e].dst].push_back(e);
  }
  adjacency_built_ = true;
}

}  // namespace revelio::graph
