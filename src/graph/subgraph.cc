#include "graph/subgraph.h"

#include <algorithm>
#include <deque>
#include <unordered_map>

namespace revelio::graph {

Subgraph ExtractKHopInSubgraph(const Graph& graph, int target, int k) {
  CHECK(target >= 0 && target < graph.num_nodes());
  CHECK_GE(k, 0);

  // BFS backwards over in-edges to find every node within k steps of target.
  std::vector<int> distance(graph.num_nodes(), -1);
  distance[target] = 0;
  std::deque<int> queue{target};
  std::vector<int> included{target};
  while (!queue.empty()) {
    const int node = queue.front();
    queue.pop_front();
    if (distance[node] == k) continue;
    for (int e : graph.InEdges(node)) {
      const int src = graph.edge(e).src;
      if (distance[src] == -1) {
        distance[src] = distance[node] + 1;
        included.push_back(src);
        queue.push_back(src);
      }
    }
  }

  // Canonical order: local node ids ascend with the global ids, independent
  // of BFS discovery incidentals (queue order, edge insertion order among
  // equal-distance nodes). Mega-batching relies on extraction being a pure
  // function of the (graph, target, k) triple; edges below already iterate in
  // global edge order, so sorting the node set makes the whole Subgraph
  // canonical.
  std::sort(included.begin(), included.end());

  Subgraph result;
  result.graph = Graph(static_cast<int>(included.size()));
  result.node_map = included;
  std::unordered_map<int, int> global_to_local;
  global_to_local.reserve(included.size());
  for (size_t i = 0; i < included.size(); ++i) {
    global_to_local[included[i]] = static_cast<int>(i);
  }
  result.target_local = global_to_local[target];

  // Induced edges, preserving the global edge order.
  for (int e = 0; e < graph.num_edges(); ++e) {
    const Edge& edge = graph.edge(e);
    auto src_it = global_to_local.find(edge.src);
    auto dst_it = global_to_local.find(edge.dst);
    if (src_it == global_to_local.end() || dst_it == global_to_local.end()) continue;
    result.graph.AddEdge(src_it->second, dst_it->second);
    result.edge_map.push_back(e);
  }
  return result;
}

util::StatusOr<Subgraph> TryExtractKHopInSubgraph(const Graph& graph, int target, int k) {
  if (target < 0 || target >= graph.num_nodes()) {
    return util::Status::InvalidArgument(
        "k-hop target " + std::to_string(target) + " out of range for graph with " +
        std::to_string(graph.num_nodes()) + " nodes");
  }
  if (k < 0) {
    return util::Status::InvalidArgument("k-hop radius must be >= 0, got " + std::to_string(k));
  }
  return ExtractKHopInSubgraph(graph, target, k);
}

tensor::Tensor SliceRows(const tensor::Tensor& features, const std::vector<int>& rows) {
  const int cols = features.cols();
  std::vector<float> data;
  data.reserve(rows.size() * static_cast<size_t>(cols));
  for (int r : rows) {
    CHECK(r >= 0 && r < features.rows());
    for (int c = 0; c < cols; ++c) data.push_back(features.At(r, c));
  }
  return tensor::Tensor::FromData(static_cast<int>(rows.size()), cols, std::move(data));
}

}  // namespace revelio::graph
