#include "graph/batch.h"

namespace revelio::graph {

GraphBatch MakeBatch(const std::vector<const GraphInstance*>& instances) {
  CHECK(!instances.empty());
  GraphBatch batch;
  batch.num_graphs = static_cast<int>(instances.size());

  int total_nodes = 0;
  const int feature_dim = instances[0]->features.cols();
  for (const GraphInstance* instance : instances) {
    CHECK_EQ(instance->features.cols(), feature_dim);
    CHECK_EQ(instance->labels.size(), 1u) << "graph instances carry a single graph label";
    total_nodes += instance->graph.num_nodes();
  }

  batch.graph = Graph(total_nodes);
  std::vector<float> features;
  features.reserve(static_cast<size_t>(total_nodes) * feature_dim);
  batch.node_to_graph.reserve(total_nodes);

  int offset = 0;
  for (int g = 0; g < batch.num_graphs; ++g) {
    const GraphInstance* instance = instances[g];
    const int n = instance->graph.num_nodes();
    for (const Edge& e : instance->graph.edges()) {
      batch.graph.AddEdge(e.src + offset, e.dst + offset);
    }
    const auto& values = instance->features.values();
    features.insert(features.end(), values.begin(), values.end());
    for (int i = 0; i < n; ++i) batch.node_to_graph.push_back(g);
    batch.labels.push_back(instance->labels[0]);
    offset += n;
  }
  batch.features = tensor::Tensor::FromData(total_nodes, feature_dim, std::move(features));
  return batch;
}

util::StatusOr<GraphBatch> TryMakeBatch(const std::vector<const GraphInstance*>& instances) {
  if (instances.empty()) {
    return util::Status::InvalidArgument("cannot batch an empty instance list");
  }
  // Null-check every pointer before the first dereference: feature_dim reads
  // instances[0], which harness-generated lists may well leave null.
  for (size_t i = 0; i < instances.size(); ++i) {
    if (instances[i] == nullptr) {
      return util::Status::InvalidArgument("batch instance " + std::to_string(i) + " is null");
    }
  }
  const int feature_dim = instances[0]->features.cols();
  for (size_t i = 0; i < instances.size(); ++i) {
    const GraphInstance* instance = instances[i];
    if (instance->features.rows() != instance->graph.num_nodes()) {
      return util::Status::InvalidArgument(
          "batch instance " + std::to_string(i) + " has " +
          std::to_string(instance->features.rows()) + " feature rows for " +
          std::to_string(instance->graph.num_nodes()) + " nodes");
    }
    if (instance->features.cols() != feature_dim) {
      return util::Status::InvalidArgument(
          "batch instance " + std::to_string(i) + " feature dim " +
          std::to_string(instance->features.cols()) + " != " + std::to_string(feature_dim));
    }
    if (instance->labels.size() != 1u) {
      return util::Status::InvalidArgument("graph instances carry a single graph label, got " +
                                           std::to_string(instance->labels.size()));
    }
  }
  return MakeBatch(instances);
}

}  // namespace revelio::graph
