#ifndef REVELIO_GRAPH_GRAPH_H_
#define REVELIO_GRAPH_GRAPH_H_

// Directed graph container shared by datasets, GNN layers and explainers.
//
// Edges are directed and stored in insertion order (COO); CSR-style in/out
// adjacency indexes are built on demand. Following the paper, the stored
// edge list never contains self-loops; models that need them (GCN/GIN/GAT)
// work on the augmented LayerEdgeSet built by gnn::BuildLayerEdges.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "tensor/sparse.h"
#include "tensor/tensor.h"
#include "util/check.h"

namespace revelio::graph {

struct Edge {
  int src = 0;
  int dst = 0;
};

inline bool operator==(const Edge& a, const Edge& b) { return a.src == b.src && a.dst == b.dst; }

namespace internal {
// Next value of the process-wide graph structure stamp (atomic, starts at 1).
uint64_t NextGraphStructureVersion();
}  // namespace internal

class Graph {
 public:
  Graph() = default;
  explicit Graph(int num_nodes) : num_nodes_(num_nodes) {}

  int num_nodes() const { return num_nodes_; }
  int num_edges() const { return static_cast<int>(edges_.size()); }
  const std::vector<Edge>& edges() const { return edges_; }
  const Edge& edge(int e) const { return edges_[e]; }

  // Process-unique stamp advanced by every structural mutation (AddEdge,
  // set_num_nodes) — and therefore fresh on a RemoveEdges result, which is
  // rebuilt edge by edge. Recorded execution plans key on it (DESIGN.md
  // §12), so a mutated or rebuilt graph can never replay a stale plan.
  uint64_t structure_version() const { return structure_version_; }

  // Grows the node set (and invalidates every adjacency cache: the in/out
  // edge lists are sized to the node count, not just the CSR views).
  void set_num_nodes(int n);

  // Appends a directed edge src -> dst; returns its index. Self-loops are
  // rejected (the paper treats graphs as directed without self-loops).
  int AddEdge(int src, int dst);

  // Adds both directions; returns the index of the first.
  int AddUndirectedEdge(int u, int v);

  // True if a directed edge src -> dst exists.
  bool HasEdge(int src, int dst) const;

  // Indices of edges entering `node` (built lazily, cached).
  const std::vector<int>& InEdges(int node) const;
  // Indices of edges leaving `node`.
  const std::vector<int>& OutEdges(int node) const;

  // In-degree / out-degree of every node.
  std::vector<int> InDegrees() const;
  std::vector<int> OutDegrees() const;

  // Largest in-degree (the paper's d_-; bounds the number of message flows).
  int MaxInDegree() const;

  // Cached CSR view of the base edges grouped by destination node: row v
  // lists the edges entering v in increasing edge-index order, with the
  // edge index as the weight slot (feeds the fused SpMM aggregation path).
  // Built lazily; invalidated by AddEdge/set_num_nodes. RemoveEdges returns
  // a fresh Graph, so its caches start cold by construction.
  const tensor::CsrPatternRef& InCsr() const;
  // Same, grouped by source node (row v lists edges leaving v).
  const tensor::CsrPatternRef& OutCsr() const;

  // A copy of this graph without the edges whose indices are listed (node
  // set unchanged). `removed` must contain valid, distinct edge indices.
  // `index_map_out`, if non-null, receives old-edge-index -> new-edge-index
  // (-1 for removed edges).
  Graph RemoveEdges(const std::vector<int>& removed, std::vector<int>* index_map_out = nullptr) const;

  std::string DebugString() const;

 private:
  void EnsureAdjacency() const;

  int num_nodes_ = 0;
  std::vector<Edge> edges_;
  uint64_t structure_version_ = internal::NextGraphStructureVersion();

  // Lazily-built adjacency caches.
  mutable bool adjacency_built_ = false;
  mutable std::vector<std::vector<int>> in_edges_;
  mutable std::vector<std::vector<int>> out_edges_;
  mutable tensor::CsrPatternRef in_csr_;
  mutable tensor::CsrPatternRef out_csr_;
};

// Node features + labels packaged with a graph instance.
struct GraphInstance {
  Graph graph;
  tensor::Tensor features;   // num_nodes x feature_dim
  std::vector<int> labels;   // per node (node tasks) or {label} (graph tasks)
};

}  // namespace revelio::graph

#endif  // REVELIO_GRAPH_GRAPH_H_
