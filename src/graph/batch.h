#ifndef REVELIO_GRAPH_BATCH_H_
#define REVELIO_GRAPH_BATCH_H_

// Block-diagonal batching for graph classification: a set of graphs is merged
// into one disconnected graph so a whole mini-batch runs through the GNN in a
// single forward pass (node-to-graph segment ids drive the pooled readout).

#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace revelio::graph {

struct GraphBatch {
  Graph graph;                     // merged graph with offset node ids
  tensor::Tensor features;         // total_nodes x feature_dim
  std::vector<int> node_to_graph;  // segment id per node
  std::vector<int> labels;         // one label per member graph
  int num_graphs = 0;
};

// Merges `instances` (each with labels = {graph_label}). Pointers must stay
// valid for the duration of the call only.
GraphBatch MakeBatch(const std::vector<const GraphInstance*>& instances);

// Status-returning variant for harness-generated inputs: an empty instance
// list, a feature-dimension mismatch, or a malformed label vector yields
// kInvalidArgument instead of a CHECK-abort. A batch of a single zero-edge,
// single-node instance is valid.
util::StatusOr<GraphBatch> TryMakeBatch(const std::vector<const GraphInstance*>& instances);

}  // namespace revelio::graph

#endif  // REVELIO_GRAPH_BATCH_H_
