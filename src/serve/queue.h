#ifndef REVELIO_SERVE_QUEUE_H_
#define REVELIO_SERVE_QUEUE_H_

// Bounded admission queue for the explanation-serving engine.
//
// A deliberately small, lock-based MPMC FIFO with an explicit lifecycle FSM —
// the part of the server whose behavior must be provable under hostile load,
// so it depends on nothing but util (tests/parallel_tsan_test.cc compiles it
// straight into the always-on TSan smoke binary and hammers it with
// concurrent submitters racing a shutdown).
//
// Lifecycle (one-way transitions, guarded by the queue mutex):
//
//   kRunning ----BeginShutdown(cancel=false)----> kDraining ---+
//      |                                                       +--> kStopped
//      +--------BeginShutdown(cancel=true)-----> kCancelling --+
//
//   kRunning:    TryPush admits until `capacity` items are queued (then
//                ResourceExhausted); Push blocks for space.
//   kDraining:   admission closed (Unavailable); consumers keep popping
//                until the backlog is gone.
//   kCancelling: admission closed; BeginShutdown has already handed every
//                queued item back to the caller (who fails them), so
//                consumers see an empty queue and exit.
//   kStopped:    MarkStopped() after workers are joined; all operations
//                fail fast.
//
// Entries are POD descriptors; the `payload` pointer is owned by the caller
// (the server keeps a PendingRequest behind it). The queue never dereferences
// it. Deadlines are stamped by the server and checked by the server at pop
// time — the queue itself has no clock, which keeps its state machine pure.

#include <cstddef>
#include <cstdint>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <vector>

#include "util/status.h"

namespace revelio::serve {

struct QueueItem {
  uint64_t id = 0;
  uint64_t coalesce_key = 0;   // equal keys may fuse into one ExplainBatch
  int64_t enqueue_nanos = 0;   // server clock at admission
  int64_t deadline_nanos = 0;  // absolute server-clock deadline; 0 = none
  void* payload = nullptr;     // owned by the enqueuing server, opaque here
};

enum class QueueState { kRunning, kDraining, kCancelling, kStopped };

const char* QueueStateName(QueueState state);

class AdmissionQueue {
 public:
  explicit AdmissionQueue(size_t capacity);

  // Non-blocking admission. ResourceExhausted when full, Unavailable once
  // shutdown has begun.
  util::Status TryPush(const QueueItem& item);

  // Blocking admission: waits for space while the queue is running. Returns
  // Unavailable if shutdown begins while waiting.
  util::Status Push(const QueueItem& item);

  // Non-blocking pop of the oldest item. False when empty.
  bool TryPop(QueueItem* item);

  // Non-blocking pop of the oldest item ONLY if its coalesce_key matches —
  // the coalescing loop extends a batch with consecutive same-key requests
  // without ever reordering across keys (FIFO is preserved).
  bool TryPopMatching(uint64_t coalesce_key, QueueItem* item);

  // Blocking pop for worker threads: waits until an item is available or the
  // backlog can never grow again. Returns false exactly when the queue is
  // empty and no longer running (the worker-exit condition).
  bool WaitPop(QueueItem* item);

  // Closes admission. With cancel=true every queued item is removed and
  // returned so the caller can fail it; with cancel=false (drain) the
  // backlog stays for consumers and the returned vector is empty. Idempotent:
  // later calls return empty and leave the state at the first transition.
  std::vector<QueueItem> BeginShutdown(bool cancel);

  // Final transition once consumers are joined.
  void MarkStopped();

  size_t depth() const;
  size_t capacity() const { return capacity_; }
  QueueState state() const;

  // Lifetime totals (monotone, under the queue mutex) for the fault-injection
  // oracles: everything pushed is eventually popped or cancelled.
  uint64_t total_pushed() const;
  uint64_t total_popped() const;
  uint64_t total_cancelled() const;

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<QueueItem> items_;
  QueueState state_ = QueueState::kRunning;
  uint64_t total_pushed_ = 0;
  uint64_t total_popped_ = 0;
  uint64_t total_cancelled_ = 0;
};

}  // namespace revelio::serve

#endif  // REVELIO_SERVE_QUEUE_H_
