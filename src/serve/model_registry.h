#ifndef REVELIO_SERVE_MODEL_REGISTRY_H_
#define REVELIO_SERVE_MODEL_REGISTRY_H_

// Multi-tenant model registry: N trained GNNs resident in one process,
// looked up by name on every request. Registration freezes the model
// (nn::Module::Freeze), which is the contract that makes concurrent
// explanation against a shared model race-free — explainer backward passes
// then never touch the shared weight grad buffers (see eval::PrepareModel).

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "gnn/model.h"
#include "util/status.h"

namespace revelio::serve {

class ModelRegistry {
 public:
  ModelRegistry() = default;
  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  // Takes ownership and freezes the model. AlreadyExists on a duplicate name
  // (re-registering a tenant's model is a deploy step, not a silent swap);
  // InvalidArgument on an empty name or null model.
  util::Status Register(const std::string& name, std::unique_ptr<gnn::GnnModel> model);

  // NotFound when the name was never registered (or was removed).
  util::Status Remove(const std::string& name);

  // nullptr when absent. The pointer stays valid until Remove — in-flight
  // requests hold it only while the server keeps the registry alive, which
  // the server's shutdown ordering guarantees.
  const gnn::GnnModel* Lookup(const std::string& name) const;

  std::vector<std::string> Names() const;  // sorted
  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<gnn::GnnModel>> models_;
};

}  // namespace revelio::serve

#endif  // REVELIO_SERVE_MODEL_REGISTRY_H_
