#include "serve/queue.h"

namespace revelio::serve {

const char* QueueStateName(QueueState state) {
  switch (state) {
    case QueueState::kRunning:
      return "running";
    case QueueState::kDraining:
      return "draining";
    case QueueState::kCancelling:
      return "cancelling";
    case QueueState::kStopped:
      return "stopped";
  }
  return "unknown";
}

AdmissionQueue::AdmissionQueue(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

util::Status AdmissionQueue::TryPush(const QueueItem& item) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (state_ != QueueState::kRunning) {
      return util::Status::Unavailable(std::string("admission queue is ") +
                                       QueueStateName(state_));
    }
    if (items_.size() >= capacity_) {
      return util::Status::ResourceExhausted("admission queue full (" +
                                             std::to_string(capacity_) + " queued)");
    }
    items_.push_back(item);
    ++total_pushed_;
  }
  not_empty_.notify_one();
  return util::Status::Ok();
}

util::Status AdmissionQueue::Push(const QueueItem& item) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [this] {
      return state_ != QueueState::kRunning || items_.size() < capacity_;
    });
    if (state_ != QueueState::kRunning) {
      return util::Status::Unavailable(std::string("admission queue is ") +
                                       QueueStateName(state_));
    }
    items_.push_back(item);
    ++total_pushed_;
  }
  not_empty_.notify_one();
  return util::Status::Ok();
}

bool AdmissionQueue::TryPop(QueueItem* item) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return false;
    *item = items_.front();
    items_.pop_front();
    ++total_popped_;
  }
  not_full_.notify_one();
  return true;
}

bool AdmissionQueue::TryPopMatching(uint64_t coalesce_key, QueueItem* item) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty() || items_.front().coalesce_key != coalesce_key) return false;
    *item = items_.front();
    items_.pop_front();
    ++total_popped_;
  }
  not_full_.notify_one();
  return true;
}

bool AdmissionQueue::WaitPop(QueueItem* item) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] {
      return !items_.empty() || state_ != QueueState::kRunning;
    });
    if (items_.empty()) return false;  // shutdown with no backlog: worker exits
    *item = items_.front();
    items_.pop_front();
    ++total_popped_;
  }
  not_full_.notify_one();
  return true;
}

std::vector<QueueItem> AdmissionQueue::BeginShutdown(bool cancel) {
  std::vector<QueueItem> removed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (state_ != QueueState::kRunning) return removed;
    state_ = cancel ? QueueState::kCancelling : QueueState::kDraining;
    if (cancel) {
      removed.assign(items_.begin(), items_.end());
      items_.clear();
      total_cancelled_ += removed.size();
    }
  }
  // Wake every blocked producer (they fail with Unavailable) and every
  // waiting consumer (they drain the backlog or exit).
  not_full_.notify_all();
  not_empty_.notify_all();
  return removed;
}

void AdmissionQueue::MarkStopped() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    state_ = QueueState::kStopped;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

size_t AdmissionQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return items_.size();
}

QueueState AdmissionQueue::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

uint64_t AdmissionQueue::total_pushed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_pushed_;
}

uint64_t AdmissionQueue::total_popped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_popped_;
}

uint64_t AdmissionQueue::total_cancelled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_cancelled_;
}

}  // namespace revelio::serve
