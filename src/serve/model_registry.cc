#include "serve/model_registry.h"

namespace revelio::serve {

util::Status ModelRegistry::Register(const std::string& name,
                                     std::unique_ptr<gnn::GnnModel> model) {
  if (name.empty()) return util::Status::InvalidArgument("model name is empty");
  if (model == nullptr) return util::Status::InvalidArgument("model is null");
  model->Freeze();
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = models_.emplace(name, std::move(model));
  (void)it;
  if (!inserted) {
    return util::Status::AlreadyExists("model \"" + name + "\" is already registered");
  }
  return util::Status::Ok();
}

util::Status ModelRegistry::Remove(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (models_.erase(name) == 0) {
    return util::Status::NotFound("model \"" + name + "\" is not registered");
  }
  return util::Status::Ok();
}

const gnn::GnnModel* ModelRegistry::Lookup(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = models_.find(name);
  return it == models_.end() ? nullptr : it->second.get();
}

std::vector<std::string> ModelRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(models_.size());
  for (const auto& [name, model] : models_) names.push_back(name);
  return names;
}

size_t ModelRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return models_.size();
}

}  // namespace revelio::serve
