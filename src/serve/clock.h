#ifndef REVELIO_SERVE_CLOCK_H_
#define REVELIO_SERVE_CLOCK_H_

// Injectable time source for the serving engine.
//
// Every deadline and latency computation in src/serve goes through a Clock
// so the fault-injection tests (tests/serve_test.cc) and the trace-replay
// bench (bench/bench_serve.cc) can drive time deterministically: a
// ManualClock only moves when the test advances it, which makes timing
// assertions exact (no wall-clock sleeps, no flake margins — the same
// motivation as the monotonic TimerTest pattern). Production servers use
// MonotonicClock::Global(), a steady_clock wrapper.

#include <atomic>
#include <cstdint>

namespace revelio::serve {

class Clock {
 public:
  virtual ~Clock() = default;

  // Nanoseconds on a monotonic scale. Only differences are meaningful.
  virtual int64_t NowNanos() const = 0;

  double NowSeconds() const { return static_cast<double>(NowNanos()) * 1e-9; }
};

// std::chrono::steady_clock. Stateless; share the process-wide instance.
class MonotonicClock : public Clock {
 public:
  static const MonotonicClock* Global();
  int64_t NowNanos() const override;
};

// Test clock: time is a plain counter that moves only via Advance/Set.
// Reads and writes are atomic so worker threads may read it concurrently
// with a test thread advancing it.
class ManualClock : public Clock {
 public:
  explicit ManualClock(int64_t start_nanos = 0) : nanos_(start_nanos) {}

  int64_t NowNanos() const override { return nanos_.load(std::memory_order_acquire); }

  void AdvanceNanos(int64_t delta) { nanos_.fetch_add(delta, std::memory_order_acq_rel); }
  void AdvanceSeconds(double seconds) {
    AdvanceNanos(static_cast<int64_t>(seconds * 1e9));
  }
  void SetNanos(int64_t nanos) { nanos_.store(nanos, std::memory_order_release); }

 private:
  std::atomic<int64_t> nanos_;
};

}  // namespace revelio::serve

#endif  // REVELIO_SERVE_CLOCK_H_
