#ifndef REVELIO_SERVE_SERVER_H_
#define REVELIO_SERVE_SERVER_H_

// Explanation-serving engine: a long-lived, multi-tenant request loop over
// the batch machinery that eval::ExplainAll established.
//
// Composition (DESIGN.md §11):
//
//   Submit/TrySubmit ──> AdmissionQueue (bounded FIFO + lifecycle FSM)
//        │ validate            │
//        │ (registry lookup,   ▼
//        │  task validation) worker loop ──> deadline check at dequeue
//        │                     │             (expired: DeadlineExceeded,
//        ▼                     ▼              the explainer never runs)
//     explicit            coalesce run of consecutive same-
//     rejection           (method, model, objective) requests
//                              │
//                              ▼
//                  Explainer::ExplainBatch (PR 6 mega-batch fusion)
//                  / Explainer::Explain / legacy eval::ExplainAll,
//                  per-request MemoryScope + warm TensorPool reuse (PR 5)
//
// Responses travel back through per-request std::futures. Every request is
// answered exactly once, with either a result or an explicit util::Status
// (ResourceExhausted, DeadlineExceeded, Cancelled, Unavailable, NotFound,
// InvalidArgument) — the server never silently drops work.
//
// Determinism: explanation results depend only on the task and the method
// options, never on queueing, coalescing, worker count, or arrival order
// (tests/prop/serve_equivalence_test.cc pins bitwise equality against batch
// eval::ExplainAll). Time is injected via serve::Clock so the fault paths
// are testable without wall-clock sleeps.
//
// SLO instrumentation (obs registry, when enabled): counters
// serve.{submitted,accepted,rejected,timed_out,cancelled,completed,
// coalesced_groups,coalesced_instances}, gauge serve.queue_depth, histograms
// serve.{queue,run,latency}_seconds (p50/p95/p99 via SummarizeHistogram).
// The same totals are always available lock-free through stats(), so tests
// and admission oracles do not depend on the obs switch. Each explanation
// additionally emits the standard per-explanation AuditRecord (PR 7).

#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "explain/explainer.h"
#include "serve/clock.h"
#include "serve/model_registry.h"
#include "serve/queue.h"
#include "util/status.h"

namespace revelio::obs {
class Counter;
class Gauge;
class Histogram;
}  // namespace revelio::obs

namespace revelio::serve {

// Env knobs (read once by ServeOptionsFromEnv):
//   REVELIO_SERVE_QUEUE_DEPTH    admission-queue capacity (default 64)
//   REVELIO_SERVE_WORKERS        worker threads started by Start() (default 1)
//   REVELIO_SERVE_COALESCE       "0" disables batching of same-key requests
//   REVELIO_SERVE_COALESCE_SIZE  max requests fused per ExplainBatch (default 8)
//   REVELIO_SERVE_LEGACY_LOOP    "1" routes every request through sequential
//                                eval::ExplainAll (one task at a time; the
//                                pre-serving code path, kept as the fallback)
//   REVELIO_SERVE_DEADLINE_MS    default per-request deadline (0 = none)
struct ServeOptions {
  size_t queue_capacity = 64;
  int num_workers = 1;
  bool coalesce = true;
  int coalesce_limit = 8;
  bool legacy_loop = false;
  int64_t default_deadline_nanos = 0;  // applied when a request carries none
  // Requests that actually run after this many have already run count toward
  // the warm-pool steady-state totals (stats().warm_pool_*). The bench warms
  // each resident instance first, then asserts zero warm misses.
  uint64_t warmup_requests = 0;
  // Explainer construction (eval::MakeExplainer) for methods not registered
  // explicitly via RegisterExplainer.
  int explainer_epochs = 100;
  int64_t max_flows = 60'000;
  uint64_t seed = 1;
  const Clock* clock = nullptr;  // nullptr = MonotonicClock::Global()
};

ServeOptions ServeOptionsFromEnv();

struct ExplainRequest {
  std::string model;              // ModelRegistry name
  std::string method = "Revelio";
  explain::Objective objective = explain::Objective::kFactual;
  graph::Graph graph;             // owned; node tasks pass the k-hop subgraph
  tensor::Tensor features;        // num_nodes x input_dim
  int target_node = -1;           // -1 for graph tasks
  int target_class = 0;
  int64_t deadline_nanos = 0;     // absolute (server clock); 0 = options default
};

struct ExplainResponse {
  util::Status status;             // Ok, or why the request was not served
  explain::Explanation explanation;
  uint64_t request_id = 0;
  double queue_seconds = 0.0;      // admission -> dequeue (server clock)
  double run_seconds = 0.0;        // explainer execution (server clock)
  int batch_size = 1;              // size of the coalesced group it ran in
  uint64_t pool_hits = 0;          // tensor-pool delta of the serving call
  uint64_t pool_misses = 0;        // (group totals when batch_size > 1)
};

// Monotone lifetime totals. Lock-free snapshot; exact once activity quiesces.
struct ServerStats {
  uint64_t submitted = 0;
  uint64_t accepted = 0;
  uint64_t rejected_full = 0;      // bounded-queue admission rejections
  uint64_t rejected_invalid = 0;   // unknown model/method, task validation
  uint64_t rejected_shutdown = 0;  // submitted after shutdown began
  uint64_t timed_out = 0;          // deadline expired before service
  uint64_t cancelled = 0;          // dropped by Shutdown(kCancel)
  uint64_t completed = 0;          // futures fulfilled with Ok
  uint64_t coalesced_groups = 0;   // ExplainBatch calls with >= 2 requests
  uint64_t coalesced_instances = 0;
  uint64_t legacy_requests = 0;    // served via the sequential ExplainAll path
  uint64_t warm_pool_hits = 0;     // pool hits after the warmup window
  uint64_t warm_pool_misses = 0;   // pool misses after the warmup window
  size_t queue_depth = 0;
};

class ExplanationServer {
 public:
  // The registry must outlive the server. Models registered or removed while
  // serving take effect for subsequently admitted requests.
  ExplanationServer(const ModelRegistry* registry, ServeOptions options);
  ~ExplanationServer();  // Shutdown(kCancel) if still running
  ExplanationServer(const ExplanationServer&) = delete;
  ExplanationServer& operator=(const ExplanationServer&) = delete;

  // Installs a method explicitly (tests inject fakes; deployments can pin
  // options). Methods not registered here are built lazily on first use via
  // eval::MakeExplainer with this server's ServeOptions. Must be called
  // before requests for `method` are submitted.
  void RegisterExplainer(const std::string& method,
                         std::unique_ptr<explain::Explainer> explainer);

  // Spawns options.num_workers worker threads. Without Start() the server
  // runs synchronously: callers drain the queue via RunOnce() — the mode the
  // deterministic tests and the virtual-time trace replay use.
  void Start();

  // Validates and enqueues without blocking. The error Status tells the
  // caller exactly why admission failed (queue full, unknown model/method,
  // invalid task, shutdown). On success the future is fulfilled exactly once.
  util::StatusOr<std::future<ExplainResponse>> TrySubmit(ExplainRequest request);

  // Same, but blocks while the queue is full (backpressure instead of load
  // shedding). Fails with Unavailable if shutdown begins while waiting.
  util::StatusOr<std::future<ExplainResponse>> Submit(ExplainRequest request);

  struct RunOnceResult {
    int completed = 0;  // futures fulfilled by this call
    int ran = 0;        // requests whose explainer actually executed
    int timed_out = 0;  // requests answered DeadlineExceeded at dequeue
  };
  // Services the oldest queue entry on the calling thread: answers it
  // DeadlineExceeded if it expired in the queue, otherwise runs it —
  // extended, when coalescing is on, with the consecutive run of same-
  // (method, model, objective) requests behind it (one ExplainBatch call,
  // which mega-batches per PR 6). Returns zeros when the queue is empty.
  RunOnceResult RunOnce();

  enum class DrainMode {
    kDrain,   // serve the backlog, then stop
    kCancel,  // answer the backlog Cancelled; in-flight work still completes
  };
  // Closes admission, resolves the backlog per `mode`, joins workers (with
  // no workers, kDrain services the backlog on the calling thread), and
  // stops the queue. Idempotent; concurrent calls serialize and the first
  // one's mode wins.
  void Shutdown(DrainMode mode);

  ServerStats stats() const;
  size_t queue_depth() const { return queue_.depth(); }
  QueueState state() const { return queue_.state(); }
  const ServeOptions& options() const { return options_; }

 private:
  struct PendingRequest;

  util::StatusOr<std::future<ExplainResponse>> SubmitInternal(ExplainRequest request,
                                                              bool blocking);
  // Resolves (or lazily builds) the explainer serving `method`; nullptr with
  // a reason when the method is unknown.
  explain::Explainer* ResolveExplainer(const std::string& method, std::string* error);
  uint64_t CoalesceKey(const explain::Explainer* explainer, const gnn::GnnModel* model,
                       explain::Objective objective);
  void FinishTimedOut(std::unique_ptr<PendingRequest> pending, int64_t now_nanos);
  void FinishCancelled(std::unique_ptr<PendingRequest> pending);
  void RunGroup(std::vector<std::unique_ptr<PendingRequest>> group, int64_t dequeue_nanos);
  void WorkerLoop();
  void UpdateDepthGauge();

  const ModelRegistry* registry_;
  ServeOptions options_;
  const Clock* clock_;
  AdmissionQueue queue_;

  std::mutex explainers_mu_;
  std::map<std::string, std::unique_ptr<explain::Explainer>> explainers_;
  // Per-explainer serialization for methods whose Explain is not thread-safe
  // (RandomExplainer's RNG): workers take this mutex before running them.
  std::map<const explain::Explainer*, std::unique_ptr<std::mutex>> unsafe_mu_;

  std::mutex keys_mu_;
  std::map<std::tuple<const void*, const void*, int>, uint64_t> coalesce_keys_;
  uint64_t next_key_ = 1;

  std::mutex lifecycle_mu_;  // Start/Shutdown serialization
  std::vector<std::thread> workers_;
  bool started_ = false;
  bool shutdown_done_ = false;

  std::atomic<uint64_t> next_request_id_{1};
  std::atomic<uint64_t> runs_started_{0};  // warmup-window accounting

  struct Totals {
    std::atomic<uint64_t> submitted{0}, accepted{0}, rejected_full{0}, rejected_invalid{0},
        rejected_shutdown{0}, timed_out{0}, cancelled{0}, completed{0}, coalesced_groups{0},
        coalesced_instances{0}, legacy_requests{0}, warm_pool_hits{0}, warm_pool_misses{0};
  };
  Totals totals_;

  // obs registry handles (stable for process lifetime; updates are no-ops
  // while the obs switch is off).
  obs::Counter* c_submitted_;
  obs::Counter* c_accepted_;
  obs::Counter* c_rejected_;
  obs::Counter* c_timed_out_;
  obs::Counter* c_cancelled_;
  obs::Counter* c_completed_;
  obs::Counter* c_coalesced_groups_;
  obs::Counter* c_coalesced_instances_;
  obs::Gauge* g_queue_depth_;
  obs::Histogram* h_queue_seconds_;
  obs::Histogram* h_run_seconds_;
  obs::Histogram* h_latency_seconds_;
};

}  // namespace revelio::serve

#endif  // REVELIO_SERVE_SERVER_H_
