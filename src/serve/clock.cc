#include "serve/clock.h"

#include <chrono>

namespace revelio::serve {

const MonotonicClock* MonotonicClock::Global() {
  static MonotonicClock clock;
  return &clock;
}

int64_t MonotonicClock::NowNanos() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace revelio::serve
