#include "serve/server.h"

#include <algorithm>
#include <cstdlib>
#include <tuple>
#include <utility>

#include "eval/runner.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/pool.h"
#include "util/check.h"
#include "util/logging.h"

namespace revelio::serve {

namespace {

int EnvInt(const char* name, int fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  const int value = std::atoi(env);
  return value > 0 ? value : fallback;
}

bool EnvFlagDisabled(const char* name) {
  const char* env = std::getenv(name);
  if (env == nullptr) return false;
  const std::string value(env);
  return value == "0" || value == "false" || value == "off";
}

bool EnvFlagEnabled(const char* name) {
  const char* env = std::getenv(name);
  if (env == nullptr) return false;
  const std::string value(env);
  return !(value.empty() || value == "0" || value == "false" || value == "off");
}

bool KnownMethod(const std::string& method) {
  if (method == "Random") return true;
  const std::vector<std::string> names = eval::AllExplainerNames();
  return std::find(names.begin(), names.end(), method) != names.end();
}

tensor::PoolStats ThreadPoolStats() {
  tensor::TensorPool* pool = tensor::TensorPool::ThreadLocal();
  return pool != nullptr ? pool->stats() : tensor::PoolStats{};
}

}  // namespace

ServeOptions ServeOptionsFromEnv() {
  ServeOptions options;
  options.queue_capacity = static_cast<size_t>(EnvInt("REVELIO_SERVE_QUEUE_DEPTH", 64));
  options.num_workers = EnvInt("REVELIO_SERVE_WORKERS", 1);
  options.coalesce = !EnvFlagDisabled("REVELIO_SERVE_COALESCE");
  options.coalesce_limit = EnvInt("REVELIO_SERVE_COALESCE_SIZE", 8);
  options.legacy_loop = EnvFlagEnabled("REVELIO_SERVE_LEGACY_LOOP");
  options.default_deadline_nanos =
      static_cast<int64_t>(EnvInt("REVELIO_SERVE_DEADLINE_MS", 0)) * 1'000'000;
  return options;
}

struct ExplanationServer::PendingRequest {
  uint64_t id = 0;
  ExplainRequest request;
  explain::ExplanationTask task;  // graph/features pointers into `request`
  explain::Explainer* explainer = nullptr;
  const gnn::GnnModel* model = nullptr;
  int64_t enqueue_nanos = 0;
  int64_t deadline_nanos = 0;  // absolute; 0 = none
  std::promise<ExplainResponse> promise;
};

ExplanationServer::ExplanationServer(const ModelRegistry* registry, ServeOptions options)
    : registry_(registry),
      options_(std::move(options)),
      clock_(options_.clock != nullptr ? options_.clock : MonotonicClock::Global()),
      queue_(options_.queue_capacity) {
  CHECK(registry_ != nullptr);
  if (options_.num_workers < 1) options_.num_workers = 1;
  if (options_.coalesce_limit < 1) options_.coalesce_limit = 1;
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  c_submitted_ = metrics.GetCounter("serve.submitted");
  c_accepted_ = metrics.GetCounter("serve.accepted");
  c_rejected_ = metrics.GetCounter("serve.rejected");
  c_timed_out_ = metrics.GetCounter("serve.timed_out");
  c_cancelled_ = metrics.GetCounter("serve.cancelled");
  c_completed_ = metrics.GetCounter("serve.completed");
  c_coalesced_groups_ = metrics.GetCounter("serve.coalesced_groups");
  c_coalesced_instances_ = metrics.GetCounter("serve.coalesced_instances");
  g_queue_depth_ = metrics.GetGauge("serve.queue_depth");
  h_queue_seconds_ = metrics.GetHistogram("serve.queue_seconds");
  h_run_seconds_ = metrics.GetHistogram("serve.run_seconds");
  h_latency_seconds_ = metrics.GetHistogram("serve.latency_seconds");
}

ExplanationServer::~ExplanationServer() { Shutdown(DrainMode::kCancel); }

void ExplanationServer::RegisterExplainer(const std::string& method,
                                          std::unique_ptr<explain::Explainer> explainer) {
  CHECK(explainer != nullptr);
  std::lock_guard<std::mutex> lock(explainers_mu_);
  explain::Explainer* ptr = explainer.get();
  if (!ptr->thread_safe_explain()) {
    unsafe_mu_[ptr] = std::make_unique<std::mutex>();
  }
  explainers_[method] = std::move(explainer);
}

explain::Explainer* ExplanationServer::ResolveExplainer(const std::string& method,
                                                        std::string* error) {
  std::lock_guard<std::mutex> lock(explainers_mu_);
  auto it = explainers_.find(method);
  if (it != explainers_.end()) return it->second.get();
  if (!KnownMethod(method)) {
    *error = "unknown explanation method \"" + method + "\"";
    return nullptr;
  }
  eval::RunnerConfig config;
  config.seed = options_.seed;
  config.explainer_epochs = options_.explainer_epochs;
  config.max_flows = options_.max_flows;
  std::unique_ptr<explain::Explainer> created = eval::MakeExplainer(method, config);
  explain::Explainer* ptr = created.get();
  if (!ptr->thread_safe_explain()) {
    unsafe_mu_[ptr] = std::make_unique<std::mutex>();
  }
  explainers_[method] = std::move(created);
  return ptr;
}

uint64_t ExplanationServer::CoalesceKey(const explain::Explainer* explainer,
                                        const gnn::GnnModel* model,
                                        explain::Objective objective) {
  // Sequential ids per distinct (method, model, objective): equality of keys
  // must IMPLY batch-compatibility, so a hash (collisions possible) is out.
  const std::tuple<const void*, const void*, int> tuple_key(
      explainer, model, static_cast<int>(objective));
  std::lock_guard<std::mutex> lock(keys_mu_);
  auto [it, inserted] = coalesce_keys_.emplace(tuple_key, next_key_);
  if (inserted) ++next_key_;
  return it->second;
}

void ExplanationServer::UpdateDepthGauge() {
  g_queue_depth_->Set(static_cast<double>(queue_.depth()));
}

util::StatusOr<std::future<ExplainResponse>> ExplanationServer::TrySubmit(
    ExplainRequest request) {
  return SubmitInternal(std::move(request), /*blocking=*/false);
}

util::StatusOr<std::future<ExplainResponse>> ExplanationServer::Submit(ExplainRequest request) {
  return SubmitInternal(std::move(request), /*blocking=*/true);
}

util::StatusOr<std::future<ExplainResponse>> ExplanationServer::SubmitInternal(
    ExplainRequest request, bool blocking) {
  totals_.submitted.fetch_add(1, std::memory_order_relaxed);
  c_submitted_->Increment();

  const gnn::GnnModel* model = registry_->Lookup(request.model);
  if (model == nullptr) {
    totals_.rejected_invalid.fetch_add(1, std::memory_order_relaxed);
    c_rejected_->Increment();
    return util::Status::NotFound("model \"" + request.model + "\" is not registered");
  }
  std::string method_error;
  explain::Explainer* explainer = ResolveExplainer(request.method, &method_error);
  if (explainer == nullptr) {
    totals_.rejected_invalid.fetch_add(1, std::memory_order_relaxed);
    c_rejected_->Increment();
    return util::Status::InvalidArgument(method_error);
  }

  auto pending = std::make_unique<PendingRequest>();
  pending->id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
  pending->request = std::move(request);
  pending->model = model;
  pending->explainer = explainer;
  pending->task.model = model;
  pending->task.graph = &pending->request.graph;
  pending->task.features = pending->request.features;
  pending->task.target_node = pending->request.target_node;
  pending->task.target_class = pending->request.target_class;
  // Serve-side rejection: a malformed task is refused here with the precise
  // reason instead of CHECK-aborting the worker loop later.
  util::Status valid = explain::ValidateExplanationTask(pending->task);
  if (!valid.ok()) {
    totals_.rejected_invalid.fetch_add(1, std::memory_order_relaxed);
    c_rejected_->Increment();
    return valid;
  }

  pending->enqueue_nanos = clock_->NowNanos();
  pending->deadline_nanos =
      pending->request.deadline_nanos != 0
          ? pending->request.deadline_nanos
          : (options_.default_deadline_nanos > 0
                 ? pending->enqueue_nanos + options_.default_deadline_nanos
                 : 0);

  QueueItem item;
  item.id = pending->id;
  item.coalesce_key = CoalesceKey(explainer, model, pending->request.objective);
  item.enqueue_nanos = pending->enqueue_nanos;
  item.deadline_nanos = pending->deadline_nanos;
  item.payload = pending.get();

  std::future<ExplainResponse> future = pending->promise.get_future();
  const util::Status pushed = blocking ? queue_.Push(item) : queue_.TryPush(item);
  if (!pushed.ok()) {
    if (pushed.code() == util::StatusCode::kResourceExhausted) {
      totals_.rejected_full.fetch_add(1, std::memory_order_relaxed);
    } else {
      totals_.rejected_shutdown.fetch_add(1, std::memory_order_relaxed);
    }
    c_rejected_->Increment();
    return pushed;  // `pending` dies here; the never-returned future with it
  }
  pending.release();  // owned by the queue item until a worker takes it
  totals_.accepted.fetch_add(1, std::memory_order_relaxed);
  c_accepted_->Increment();
  UpdateDepthGauge();
  return future;
}

void ExplanationServer::FinishTimedOut(std::unique_ptr<PendingRequest> pending,
                                       int64_t now_nanos) {
  totals_.timed_out.fetch_add(1, std::memory_order_relaxed);
  c_timed_out_->Increment();
  ExplainResponse response;
  response.status = util::Status::DeadlineExceeded("deadline expired after " +
                                                   std::to_string(now_nanos -
                                                                  pending->enqueue_nanos) +
                                                   "ns in queue");
  response.request_id = pending->id;
  response.queue_seconds = static_cast<double>(now_nanos - pending->enqueue_nanos) * 1e-9;
  h_queue_seconds_->Observe(response.queue_seconds);
  h_latency_seconds_->Observe(response.queue_seconds);
  pending->promise.set_value(std::move(response));
}

void ExplanationServer::FinishCancelled(std::unique_ptr<PendingRequest> pending) {
  totals_.cancelled.fetch_add(1, std::memory_order_relaxed);
  c_cancelled_->Increment();
  ExplainResponse response;
  response.status = util::Status::Cancelled("server shut down before the request was served");
  response.request_id = pending->id;
  pending->promise.set_value(std::move(response));
}

void ExplanationServer::RunGroup(std::vector<std::unique_ptr<PendingRequest>> group,
                                 int64_t dequeue_nanos) {
  explain::Explainer* explainer = group[0]->explainer;
  const explain::Objective objective = group[0]->request.objective;
  obs::ScopedSpan span("serve.request");

  std::mutex* serialize = nullptr;
  if (!explainer->thread_safe_explain()) {
    std::lock_guard<std::mutex> lock(explainers_mu_);
    auto it = unsafe_mu_.find(explainer);
    if (it != unsafe_mu_.end()) serialize = it->second.get();
  }

  const uint64_t runs_before =
      runs_started_.fetch_add(group.size(), std::memory_order_relaxed);
  const tensor::PoolStats pool_before = ThreadPoolStats();
  const int64_t run_start = clock_->NowNanos();

  std::vector<explain::Explanation> results;
  {
    std::unique_lock<std::mutex> run_lock;
    if (serialize != nullptr) run_lock = std::unique_lock<std::mutex>(*serialize);
    if (options_.legacy_loop) {
      // Pre-serving fallback: each request goes through the batch driver one
      // task at a time, exactly as the sequential eval loop would.
      totals_.legacy_requests.fetch_add(group.size(), std::memory_order_relaxed);
      results.reserve(group.size());
      for (const auto& pending : group) {
        std::vector<explain::ExplanationTask> one{pending->task};
        std::vector<explain::Explanation> batch =
            eval::ExplainAll(explainer, one, pending->request.objective);
        results.push_back(std::move(batch[0]));
      }
    } else if (group.size() == 1) {
      results.push_back(explainer->Explain(group[0]->task, objective));
    } else {
      std::vector<const explain::ExplanationTask*> tasks;
      tasks.reserve(group.size());
      for (const auto& pending : group) tasks.push_back(&pending->task);
      results = explainer->ExplainBatch(tasks, objective);
      totals_.coalesced_groups.fetch_add(1, std::memory_order_relaxed);
      totals_.coalesced_instances.fetch_add(group.size(), std::memory_order_relaxed);
      c_coalesced_groups_->Increment();
      c_coalesced_instances_->Add(group.size());
    }
  }
  CHECK_EQ(results.size(), group.size());

  const int64_t run_end = clock_->NowNanos();
  const tensor::PoolStats pool_after = ThreadPoolStats();
  const uint64_t delta_hits = pool_after.hits - pool_before.hits;
  const uint64_t delta_misses = pool_after.misses - pool_before.misses;
  if (runs_before >= options_.warmup_requests) {
    totals_.warm_pool_hits.fetch_add(delta_hits, std::memory_order_relaxed);
    totals_.warm_pool_misses.fetch_add(delta_misses, std::memory_order_relaxed);
  }

  const double run_seconds = static_cast<double>(run_end - run_start) * 1e-9;
  for (size_t i = 0; i < group.size(); ++i) {
    PendingRequest* pending = group[i].get();
    ExplainResponse response;
    response.status = results[i].status;
    response.explanation = std::move(results[i]);
    response.request_id = pending->id;
    response.queue_seconds =
        static_cast<double>(dequeue_nanos - pending->enqueue_nanos) * 1e-9;
    response.run_seconds = run_seconds;
    response.batch_size = static_cast<int>(group.size());
    response.pool_hits = delta_hits;
    response.pool_misses = delta_misses;
    h_queue_seconds_->Observe(response.queue_seconds);
    h_run_seconds_->Observe(response.run_seconds);
    h_latency_seconds_->Observe(response.queue_seconds + response.run_seconds);
    if (response.status.ok()) {
      totals_.completed.fetch_add(1, std::memory_order_relaxed);
      c_completed_->Increment();
    } else {
      totals_.rejected_invalid.fetch_add(1, std::memory_order_relaxed);
      c_rejected_->Increment();
    }
    pending->promise.set_value(std::move(response));
  }
}

ExplanationServer::RunOnceResult ExplanationServer::RunOnce() {
  RunOnceResult result;
  QueueItem item;
  if (!queue_.TryPop(&item)) return result;
  UpdateDepthGauge();

  std::unique_ptr<PendingRequest> pending(static_cast<PendingRequest*>(item.payload));
  const int64_t now = clock_->NowNanos();
  if (pending->deadline_nanos != 0 && now > pending->deadline_nanos) {
    FinishTimedOut(std::move(pending), now);
    result.completed = 1;
    result.timed_out = 1;
    return result;
  }

  std::vector<std::unique_ptr<PendingRequest>> group;
  group.push_back(std::move(pending));
  if (options_.coalesce && !options_.legacy_loop && options_.coalesce_limit > 1) {
    QueueItem next;
    while (static_cast<int>(group.size()) < options_.coalesce_limit &&
           queue_.TryPopMatching(item.coalesce_key, &next)) {
      UpdateDepthGauge();
      std::unique_ptr<PendingRequest> extra(static_cast<PendingRequest*>(next.payload));
      const int64_t t = clock_->NowNanos();
      if (extra->deadline_nanos != 0 && t > extra->deadline_nanos) {
        FinishTimedOut(std::move(extra), t);
        ++result.completed;
        ++result.timed_out;
        continue;
      }
      group.push_back(std::move(extra));
    }
  }

  const int ran = static_cast<int>(group.size());
  RunGroup(std::move(group), now);
  result.completed += ran;
  result.ran = ran;
  return result;
}

void ExplanationServer::WorkerLoop() {
  while (true) {
    QueueItem item;
    if (!queue_.WaitPop(&item)) return;
    UpdateDepthGauge();
    // Re-enter the RunOnce path for the popped item: deadline check, then
    // coalesce-and-run. Duplicating the small head here keeps WaitPop's
    // blocking semantics out of RunOnce (which must never block).
    std::unique_ptr<PendingRequest> pending(static_cast<PendingRequest*>(item.payload));
    const int64_t now = clock_->NowNanos();
    if (pending->deadline_nanos != 0 && now > pending->deadline_nanos) {
      FinishTimedOut(std::move(pending), now);
      continue;
    }
    std::vector<std::unique_ptr<PendingRequest>> group;
    group.push_back(std::move(pending));
    if (options_.coalesce && !options_.legacy_loop && options_.coalesce_limit > 1) {
      QueueItem next;
      while (static_cast<int>(group.size()) < options_.coalesce_limit &&
             queue_.TryPopMatching(item.coalesce_key, &next)) {
        UpdateDepthGauge();
        std::unique_ptr<PendingRequest> extra(static_cast<PendingRequest*>(next.payload));
        const int64_t t = clock_->NowNanos();
        if (extra->deadline_nanos != 0 && t > extra->deadline_nanos) {
          FinishTimedOut(std::move(extra), t);
          continue;
        }
        group.push_back(std::move(extra));
      }
    }
    RunGroup(std::move(group), now);
  }
}

void ExplanationServer::Start() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (started_ || shutdown_done_) return;
  started_ = true;
  workers_.reserve(options_.num_workers);
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void ExplanationServer::Shutdown(DrainMode mode) {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (shutdown_done_) return;
  shutdown_done_ = true;

  std::vector<QueueItem> cancelled = queue_.BeginShutdown(mode == DrainMode::kCancel);
  for (const QueueItem& item : cancelled) {
    FinishCancelled(std::unique_ptr<PendingRequest>(static_cast<PendingRequest*>(item.payload)));
  }
  UpdateDepthGauge();

  // Workers observe the state change: they drain the backlog (kDraining saw
  // it stay queued) or find it empty (kCancelling), then WaitPop returns
  // false and they exit.
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();

  if (mode == DrainMode::kDrain) {
    // No-worker servers (the synchronous test/replay mode) drain here; with
    // workers the backlog is already gone and the loop exits immediately.
    while (RunOnce().completed > 0) {
    }
  }
  queue_.MarkStopped();
  UpdateDepthGauge();
}

ServerStats ExplanationServer::stats() const {
  ServerStats stats;
  stats.submitted = totals_.submitted.load(std::memory_order_relaxed);
  stats.accepted = totals_.accepted.load(std::memory_order_relaxed);
  stats.rejected_full = totals_.rejected_full.load(std::memory_order_relaxed);
  stats.rejected_invalid = totals_.rejected_invalid.load(std::memory_order_relaxed);
  stats.rejected_shutdown = totals_.rejected_shutdown.load(std::memory_order_relaxed);
  stats.timed_out = totals_.timed_out.load(std::memory_order_relaxed);
  stats.cancelled = totals_.cancelled.load(std::memory_order_relaxed);
  stats.completed = totals_.completed.load(std::memory_order_relaxed);
  stats.coalesced_groups = totals_.coalesced_groups.load(std::memory_order_relaxed);
  stats.coalesced_instances = totals_.coalesced_instances.load(std::memory_order_relaxed);
  stats.legacy_requests = totals_.legacy_requests.load(std::memory_order_relaxed);
  stats.warm_pool_hits = totals_.warm_pool_hits.load(std::memory_order_relaxed);
  stats.warm_pool_misses = totals_.warm_pool_misses.load(std::memory_order_relaxed);
  stats.queue_depth = queue_.depth();
  return stats;
}

}  // namespace revelio::serve
