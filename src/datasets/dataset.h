#ifndef REVELIO_DATASETS_DATASET_H_
#define REVELIO_DATASETS_DATASET_H_

// Dataset container and registry (paper Table III).
//
// The three synthetic benchmarks (BA-Shapes, Tree-Cycles, BA-2motifs) follow
// their published constructions and carry motif ground truth for the AUC
// study. The five real-world datasets cannot be downloaded in this
// environment and are substituted by generators that match the statistics
// that matter for the experiments (task type, size band, class count,
// learnability); see DESIGN.md §3.

#include <string>
#include <vector>

#include "gnn/model.h"
#include "graph/graph.h"

namespace revelio::datasets {

struct Dataset {
  std::string name;
  gnn::TaskType task = gnn::TaskType::kNodeClassification;
  int feature_dim = 0;
  int num_classes = 0;

  // Node-classification datasets hold exactly one instance.
  std::vector<graph::GraphInstance> instances;

  // Motif ground truth, parallel to `instances` (empty when absent).
  bool has_ground_truth = false;
  std::vector<std::vector<char>> edge_in_motif;  // per instance, per base edge
  std::vector<std::vector<char>> node_in_motif;  // per instance, per node

  bool is_node_task() const { return task == gnn::TaskType::kNodeClassification; }
  int num_graphs() const { return static_cast<int>(instances.size()); }
  double AverageNodes() const;
  double AverageEdges() const;
};

// --- Synthetic benchmarks with ground truth ----------------------------------

// 300-node Barabasi-Albert base + 80 five-node "house" motifs + noise edges.
// Node labels: 0 base, 1 roof, 2 middle, 3 bottom (Ying et al. 2019).
Dataset MakeBaShapes(uint64_t seed);

// Depth-8 balanced binary tree + 60 six-node cycles. Labels: 0 tree, 1 cycle
// (Ying et al. 2019).
Dataset MakeTreeCycles(uint64_t seed);

// 1000 graphs: 20-node BA base attached to a house motif (label 0) or a
// five-node cycle motif (label 1) (Luo et al. 2020).
Dataset MakeBa2Motifs(uint64_t seed, int num_graphs = 1000);

// --- Substitutes for the real-world datasets ---------------------------------

// Citation-style node classification: homophilous planted-partition graph
// with class-correlated sparse binary features.
Dataset MakeCitationLike(const std::string& name, int num_nodes, int num_undirected_edges,
                         int feature_dim, int num_classes, double homophily, uint64_t seed);

Dataset MakeCoraLike(uint64_t seed);      // 2708 nodes / ~10556 directed edges / 7 classes
Dataset MakeCiteseerLike(uint64_t seed);  // 3327 nodes / ~9104 directed edges / 6 classes
Dataset MakePubmedLike(uint64_t seed);    // scaled to 4000 nodes / 3 classes (see DESIGN.md)

// Molecule-style graph classification where the positive class is determined
// by a planted functional-group motif (ground truth available).
Dataset MakeMutagLike(uint64_t seed, int num_graphs = 188);
Dataset MakeBbbpLike(uint64_t seed, int num_graphs = 400);

// --- Registry -----------------------------------------------------------------

// All dataset names in the paper's Table III order.
std::vector<std::string> AllDatasetNames();

// Builds a dataset by registry name; CHECK-fails on unknown names.
Dataset MakeDataset(const std::string& name, uint64_t seed);

}  // namespace revelio::datasets

#endif  // REVELIO_DATASETS_DATASET_H_
