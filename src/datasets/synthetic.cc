// Synthetic benchmark datasets with motif ground truth: BA-Shapes and
// Tree-Cycles (Ying et al. 2019) and BA-2motifs (Luo et al. 2020), following
// the constructions referenced by the paper's Table III.

#include "datasets/dataset.h"
#include <algorithm>

#include "datasets/generators.h"

namespace revelio::datasets {
namespace {

// Attaches a five-node house motif starting at node id `base`:
//   square s0-s1-s2-s3 plus roof r adjacent to s0 and s1.
// Node order: {s0, s1, s2, s3, r} = {base, base+1, base+2, base+3, base+4}.
void AddHouseEdges(graph::Graph* graph, int base) {
  graph->AddUndirectedEdge(base + 0, base + 1);
  graph->AddUndirectedEdge(base + 1, base + 2);
  graph->AddUndirectedEdge(base + 2, base + 3);
  graph->AddUndirectedEdge(base + 3, base + 0);
  graph->AddUndirectedEdge(base + 4, base + 0);
  graph->AddUndirectedEdge(base + 4, base + 1);
}

}  // namespace

Dataset MakeBaShapes(uint64_t seed) {
  util::Rng rng(seed);
  constexpr int kBaseNodes = 300;
  constexpr int kNumHouses = 80;
  constexpr int kHouseSize = 5;
  const int total_nodes = kBaseNodes + kNumHouses * kHouseSize;

  graph::Graph graph(total_nodes);
  AddBaGraph(&graph, 0, kBaseNodes, /*m=*/5, &rng);

  std::vector<int> labels(total_nodes, 0);
  std::vector<int> node_motif_id(total_nodes, -1);
  for (int h = 0; h < kNumHouses; ++h) {
    const int base = kBaseNodes + h * kHouseSize;
    AddHouseEdges(&graph, base);
    graph.AddUndirectedEdge(base + 2, rng.UniformInt(kBaseNodes));  // attach via a bottom node
    labels[base + 0] = 2;  // middle (adjacent to roof)
    labels[base + 1] = 2;
    labels[base + 2] = 3;  // bottom
    labels[base + 3] = 3;
    labels[base + 4] = 1;  // roof / top
    for (int i = 0; i < kHouseSize; ++i) node_motif_id[base + i] = h;
  }
  AddRandomEdges(&graph, 0, total_nodes, total_nodes / 10, &rng);

  Dataset dataset;
  dataset.name = "ba_shapes";
  dataset.task = gnn::TaskType::kNodeClassification;
  dataset.feature_dim = 10;
  dataset.num_classes = 4;
  dataset.has_ground_truth = true;
  graph::GraphInstance instance;
  instance.features = OnesFeatures(total_nodes, dataset.feature_dim);
  instance.labels = labels;
  dataset.edge_in_motif.push_back(MarkMotifEdges(graph, node_motif_id));
  std::vector<char> in_motif(total_nodes);
  for (int v = 0; v < total_nodes; ++v) in_motif[v] = node_motif_id[v] >= 0;
  dataset.node_in_motif.push_back(std::move(in_motif));
  instance.graph = std::move(graph);
  dataset.instances.push_back(std::move(instance));
  return dataset;
}

Dataset MakeTreeCycles(uint64_t seed) {
  util::Rng rng(seed);
  constexpr int kTreeNodes = 511;  // balanced binary tree of depth 8
  constexpr int kNumCycles = 60;
  constexpr int kCycleSize = 6;
  const int total_nodes = kTreeNodes + kNumCycles * kCycleSize;

  graph::Graph graph(total_nodes);
  AddBalancedBinaryTree(&graph, 0, kTreeNodes);

  std::vector<int> labels(total_nodes, 0);
  std::vector<int> node_motif_id(total_nodes, -1);
  for (int c = 0; c < kNumCycles; ++c) {
    const int base = kTreeNodes + c * kCycleSize;
    for (int i = 0; i < kCycleSize; ++i) {
      graph.AddUndirectedEdge(base + i, base + (i + 1) % kCycleSize);
      labels[base + i] = 1;
      node_motif_id[base + i] = c;
    }
    graph.AddUndirectedEdge(base, rng.UniformInt(kTreeNodes));
  }
  AddRandomEdges(&graph, 0, total_nodes, 41, &rng);

  Dataset dataset;
  dataset.name = "tree_cycles";
  dataset.task = gnn::TaskType::kNodeClassification;
  dataset.feature_dim = 10;
  dataset.num_classes = 2;
  dataset.has_ground_truth = true;
  graph::GraphInstance instance;
  instance.features = OnesFeatures(total_nodes, dataset.feature_dim);
  instance.labels = labels;
  dataset.edge_in_motif.push_back(MarkMotifEdges(graph, node_motif_id));
  std::vector<char> in_motif(total_nodes);
  for (int v = 0; v < total_nodes; ++v) in_motif[v] = node_motif_id[v] >= 0;
  dataset.node_in_motif.push_back(std::move(in_motif));
  instance.graph = std::move(graph);
  dataset.instances.push_back(std::move(instance));
  return dataset;
}

Dataset MakeBa2Motifs(uint64_t seed, int num_graphs) {
  util::Rng rng(seed);
  constexpr int kBaseNodes = 20;
  constexpr int kMotifSize = 5;

  Dataset dataset;
  dataset.name = "ba_2motifs";
  dataset.task = gnn::TaskType::kGraphClassification;
  dataset.feature_dim = 10;
  dataset.num_classes = 2;
  dataset.has_ground_truth = true;

  for (int g = 0; g < num_graphs; ++g) {
    const int label = g % 2;  // balanced classes
    const int total_nodes = kBaseNodes + kMotifSize;
    graph::Graph graph(total_nodes);
    AddBaGraph(&graph, 0, kBaseNodes, /*m=*/1, &rng);
    std::vector<int> node_motif_id(total_nodes, -1);
    const int base = kBaseNodes;
    if (label == 0) {
      AddHouseEdges(&graph, base);
    } else {
      for (int i = 0; i < kMotifSize; ++i) {
        graph.AddUndirectedEdge(base + i, base + (i + 1) % kMotifSize);
      }
    }
    for (int i = 0; i < kMotifSize; ++i) node_motif_id[base + i] = 0;
    graph.AddUndirectedEdge(base, rng.UniformInt(kBaseNodes));

    graph::GraphInstance instance;
    // Constant all-ones features (the published construction): the label is
    // recoverable only through message passing. Note the GCN target model
    // uses unnormalized aggregation on this dataset (PrepareModel), since
    // symmetric normalization provably cancels count-based signals on
    // constant features (DESIGN.md §3).
    instance.features = OnesFeatures(total_nodes, dataset.feature_dim);
    instance.labels = {label};
    dataset.edge_in_motif.push_back(MarkMotifEdges(graph, node_motif_id));
    std::vector<char> in_motif(total_nodes);
    for (int v = 0; v < total_nodes; ++v) in_motif[v] = node_motif_id[v] >= 0;
    dataset.node_in_motif.push_back(std::move(in_motif));
    instance.graph = std::move(graph);
    dataset.instances.push_back(std::move(instance));
  }
  return dataset;
}

}  // namespace revelio::datasets
