#include "datasets/dataset.h"

namespace revelio::datasets {

double Dataset::AverageNodes() const {
  double total = 0.0;
  for (const auto& instance : instances) total += instance.graph.num_nodes();
  return instances.empty() ? 0.0 : total / instances.size();
}

double Dataset::AverageEdges() const {
  double total = 0.0;
  for (const auto& instance : instances) total += instance.graph.num_edges();
  return instances.empty() ? 0.0 : total / instances.size();
}

std::vector<std::string> AllDatasetNames() {
  return {"cora_like",   "citeseer_like", "pubmed_like", "ba_shapes",
          "tree_cycles", "mutag_like",    "bbbp_like",   "ba_2motifs"};
}

Dataset MakeDataset(const std::string& name, uint64_t seed) {
  if (name == "ba_shapes") return MakeBaShapes(seed);
  if (name == "tree_cycles") return MakeTreeCycles(seed);
  if (name == "ba_2motifs") return MakeBa2Motifs(seed);
  if (name == "cora_like") return MakeCoraLike(seed);
  if (name == "citeseer_like") return MakeCiteseerLike(seed);
  if (name == "pubmed_like") return MakePubmedLike(seed);
  if (name == "mutag_like") return MakeMutagLike(seed);
  if (name == "bbbp_like") return MakeBbbpLike(seed);
  CHECK(false) << "unknown dataset: " << name;
  return Dataset{};
}

}  // namespace revelio::datasets
