#ifndef REVELIO_DATASETS_GENERATORS_H_
#define REVELIO_DATASETS_GENERATORS_H_

// Shared random-graph building blocks used by the dataset generators.

#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace revelio::datasets {

// Barabasi-Albert preferential attachment: `num_nodes` nodes, each new node
// attaching `m` undirected edges to existing nodes proportionally to degree.
// Edges are added to `graph` (which must already contain the node range
// [offset, offset + num_nodes)).
void AddBaGraph(graph::Graph* graph, int offset, int num_nodes, int m, util::Rng* rng);

// Balanced binary tree over [offset, offset + num_nodes): node i's parent is
// (i - 1) / 2 (undirected edges).
void AddBalancedBinaryTree(graph::Graph* graph, int offset, int num_nodes);

// Uniform random spanning tree (random attachment) over the node range.
void AddRandomTree(graph::Graph* graph, int offset, int num_nodes, util::Rng* rng);

// Adds `count` random undirected edges between distinct, not-yet-connected
// node pairs in [offset, offset + num_nodes). Gives up on a pair after a few
// retries, so the result may contain slightly fewer edges on dense graphs.
void AddRandomEdges(graph::Graph* graph, int offset, int num_nodes, int count, util::Rng* rng);

// Constant-ones feature matrix (the synthetic benchmarks' convention).
tensor::Tensor OnesFeatures(int num_nodes, int feature_dim);

// One-hot "atom type" features.
tensor::Tensor OneHotFeatures(const std::vector<int>& types, int feature_dim);

// Marks every directed edge whose endpoints belong to the same motif
// instance. `node_motif_id` assigns -1 to non-motif nodes and a motif id to
// motif members (prevents cross-motif noise edges from being marked).
std::vector<char> MarkMotifEdges(const graph::Graph& graph, const std::vector<int>& node_motif_id);

}  // namespace revelio::datasets

#endif  // REVELIO_DATASETS_GENERATORS_H_
