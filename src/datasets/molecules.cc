// Molecule-style graph-classification substitutes for MUTAG and BBBP (see
// DESIGN.md §3). The positive class is determined by a planted functional
// group, giving the same "find the label-determining substructure" task the
// chemistry datasets pose — with exact ground truth for the AUC study.

#include "datasets/dataset.h"
#include "datasets/generators.h"

namespace revelio::datasets {
namespace {

struct MoleculeSpec {
  std::string name;
  int num_types = 7;       // one-hot atom-type feature dim
  int min_base_nodes = 12;
  int max_base_nodes = 20;
  double extra_edge_fraction = 0.2;  // extra random edges over the tree
};

// Builds one molecule-like instance. Positive graphs get the real motif,
// negative graphs a decoy of the same size (so node/edge counts carry no
// label signal). The motif/decoy builder appends `motif_size` nodes starting
// at `base` and returns the atom types of those nodes.
template <typename MotifBuilder>
void AddMoleculeInstance(Dataset* dataset, const MoleculeSpec& spec, int label, int motif_size,
                         const MotifBuilder& build_motif, util::Rng* rng) {
  const int base_nodes =
      spec.min_base_nodes + rng->UniformInt(spec.max_base_nodes - spec.min_base_nodes + 1);
  const int total_nodes = base_nodes + motif_size;
  graph::Graph graph(total_nodes);
  AddRandomTree(&graph, 0, base_nodes, rng);
  AddRandomEdges(&graph, 0, base_nodes,
                 static_cast<int>(base_nodes * spec.extra_edge_fraction), rng);

  // Skeleton atom types: mostly type 0 ("carbon"), occasionally others.
  std::vector<int> types(total_nodes, 0);
  for (int v = 0; v < base_nodes; ++v) {
    if (rng->Bernoulli(0.25)) types[v] = 1 + rng->UniformInt(spec.num_types - 1);
  }

  std::vector<int> node_motif_id(total_nodes, -1);
  build_motif(&graph, base_nodes, &types, rng);
  if (label == 1) {
    for (int i = 0; i < motif_size; ++i) node_motif_id[base_nodes + i] = 0;
  }
  graph.AddUndirectedEdge(base_nodes, rng->UniformInt(base_nodes));

  graph::GraphInstance instance;
  instance.features = OneHotFeatures(types, spec.num_types);
  instance.labels = {label};
  dataset->edge_in_motif.push_back(MarkMotifEdges(graph, node_motif_id));
  std::vector<char> in_motif(total_nodes);
  for (int v = 0; v < total_nodes; ++v) in_motif[v] = node_motif_id[v] >= 0;
  dataset->node_in_motif.push_back(std::move(in_motif));
  instance.graph = std::move(graph);
  dataset->instances.push_back(std::move(instance));
}

}  // namespace

Dataset MakeMutagLike(uint64_t seed, int num_graphs) {
  util::Rng rng(seed);
  MoleculeSpec spec;
  spec.name = "mutag_like";
  spec.num_types = 7;

  Dataset dataset;
  dataset.name = spec.name;
  dataset.task = gnn::TaskType::kGraphClassification;
  dataset.feature_dim = spec.num_types;
  dataset.num_classes = 2;
  dataset.has_ground_truth = true;

  constexpr int kMotifSize = 3;
  // NO2-like group: center "N" (type 3) bonded to two "O" atoms (type 4).
  auto nitro_motif = [](graph::Graph* graph, int base, std::vector<int>* types, util::Rng*) {
    (*types)[base] = 3;
    (*types)[base + 1] = 4;
    (*types)[base + 2] = 4;
    graph->AddUndirectedEdge(base, base + 1);
    graph->AddUndirectedEdge(base, base + 2);
  };
  // Decoy: the SAME atoms (N + 2 O) wired as a chain N-O-O instead of the
  // O-N-O star. Identical composition means atom-type counts carry no label
  // signal — the model must use message passing, so edge explanations are
  // meaningful (removing bonds changes the prediction).
  auto decoy_motif = [](graph::Graph* graph, int base, std::vector<int>* types, util::Rng*) {
    (*types)[base] = 3;
    (*types)[base + 1] = 4;
    (*types)[base + 2] = 4;
    graph->AddUndirectedEdge(base, base + 1);
    graph->AddUndirectedEdge(base + 1, base + 2);
  };
  for (int g = 0; g < num_graphs; ++g) {
    int label = g % 2;
    if (label == 1) {
      AddMoleculeInstance(&dataset, spec, label, kMotifSize, nitro_motif, &rng);
    } else {
      AddMoleculeInstance(&dataset, spec, label, kMotifSize, decoy_motif, &rng);
    }
    // Label noise keeps model accuracy in MUTAG's 75-87% band (Table III).
    if (rng.Bernoulli(0.10)) {
      dataset.instances.back().labels[0] = 1 - dataset.instances.back().labels[0];
    }
  }
  return dataset;
}

Dataset MakeBbbpLike(uint64_t seed, int num_graphs) {
  util::Rng rng(seed);
  MoleculeSpec spec;
  spec.name = "bbbp_like";
  spec.num_types = 9;
  spec.min_base_nodes = 16;
  spec.max_base_nodes = 26;

  Dataset dataset;
  dataset.name = spec.name;
  dataset.task = gnn::TaskType::kGraphClassification;
  dataset.feature_dim = spec.num_types;
  dataset.num_classes = 2;
  dataset.has_ground_truth = true;

  constexpr int kMotifSize = 6;
  // "Aromatic ring": six type-2 atoms in a cycle (permeable class).
  auto ring_motif = [](graph::Graph* graph, int base, std::vector<int>* types, util::Rng*) {
    for (int i = 0; i < kMotifSize; ++i) {
      (*types)[base + i] = 2;
      graph->AddUndirectedEdge(base + i, base + (i + 1) % kMotifSize);
    }
  };
  // Decoy: the SAME six type-2 atoms as an OPEN chain (no ring closure).
  // Identical composition forces the model to detect the ring structurally.
  auto chain_motif = [](graph::Graph* graph, int base, std::vector<int>* types, util::Rng*) {
    for (int i = 0; i < kMotifSize; ++i) {
      (*types)[base + i] = 2;
      if (i > 0) graph->AddUndirectedEdge(base + i, base + i - 1);
    }
  };
  for (int g = 0; g < num_graphs; ++g) {
    int label = g % 2;
    if (label == 1) {
      AddMoleculeInstance(&dataset, spec, label, kMotifSize, ring_motif, &rng);
    } else {
      AddMoleculeInstance(&dataset, spec, label, kMotifSize, chain_motif, &rng);
    }
    // Label noise keeps accuracy in BBBP's ~80-86% band (Table III).
    if (rng.Bernoulli(0.12)) {
      dataset.instances.back().labels[0] = 1 - dataset.instances.back().labels[0];
    }
  }
  return dataset;
}

}  // namespace revelio::datasets
