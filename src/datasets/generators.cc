#include "datasets/generators.h"

namespace revelio::datasets {

void AddBaGraph(graph::Graph* graph, int offset, int num_nodes, int m, util::Rng* rng) {
  CHECK_GT(num_nodes, m);
  // `targets` holds one entry per edge endpoint, so sampling uniformly from
  // it is degree-proportional.
  std::vector<int> endpoint_pool;
  // Seed clique over the first m + 1 nodes.
  for (int i = 0; i <= m; ++i) {
    for (int j = i + 1; j <= m; ++j) {
      graph->AddUndirectedEdge(offset + i, offset + j);
      endpoint_pool.push_back(offset + i);
      endpoint_pool.push_back(offset + j);
    }
  }
  for (int v = m + 1; v < num_nodes; ++v) {
    std::vector<int> chosen;
    int attempts = 0;
    while (static_cast<int>(chosen.size()) < m && attempts < 50 * m) {
      ++attempts;
      const int candidate = endpoint_pool[rng->UniformInt(static_cast<int>(endpoint_pool.size()))];
      bool duplicate = false;
      for (int c : chosen) duplicate |= (c == candidate);
      if (!duplicate) chosen.push_back(candidate);
    }
    for (int target : chosen) {
      graph->AddUndirectedEdge(offset + v, target);
      endpoint_pool.push_back(offset + v);
      endpoint_pool.push_back(target);
    }
  }
}

void AddBalancedBinaryTree(graph::Graph* graph, int offset, int num_nodes) {
  for (int i = 1; i < num_nodes; ++i) {
    graph->AddUndirectedEdge(offset + i, offset + (i - 1) / 2);
  }
}

void AddRandomTree(graph::Graph* graph, int offset, int num_nodes, util::Rng* rng) {
  for (int i = 1; i < num_nodes; ++i) {
    graph->AddUndirectedEdge(offset + i, offset + rng->UniformInt(i));
  }
}

void AddRandomEdges(graph::Graph* graph, int offset, int num_nodes, int count, util::Rng* rng) {
  for (int added = 0; added < count; ++added) {
    bool placed = false;
    for (int attempt = 0; attempt < 20 && !placed; ++attempt) {
      const int u = offset + rng->UniformInt(num_nodes);
      const int v = offset + rng->UniformInt(num_nodes);
      if (u == v || graph->HasEdge(u, v)) continue;
      graph->AddUndirectedEdge(u, v);
      placed = true;
    }
  }
}

tensor::Tensor OnesFeatures(int num_nodes, int feature_dim) {
  return tensor::Tensor::Ones(num_nodes, feature_dim);
}

tensor::Tensor OneHotFeatures(const std::vector<int>& types, int feature_dim) {
  tensor::Tensor features = tensor::Tensor::Zeros(static_cast<int>(types.size()), feature_dim);
  for (size_t i = 0; i < types.size(); ++i) {
    CHECK(types[i] >= 0 && types[i] < feature_dim);
    features.SetAt(static_cast<int>(i), types[i], 1.0f);
  }
  return features;
}

std::vector<char> MarkMotifEdges(const graph::Graph& graph,
                                 const std::vector<int>& node_motif_id) {
  std::vector<char> edge_in_motif(graph.num_edges(), 0);
  for (int e = 0; e < graph.num_edges(); ++e) {
    const graph::Edge& edge = graph.edge(e);
    edge_in_motif[e] =
        node_motif_id[edge.src] >= 0 && node_motif_id[edge.src] == node_motif_id[edge.dst];
  }
  return edge_in_motif;
}

}  // namespace revelio::datasets
