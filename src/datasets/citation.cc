// Citation-style node-classification substitutes for Cora / Citeseer /
// PubMed (the real datasets cannot be downloaded offline; see DESIGN.md §3).
// Construction: homophilous planted-partition edges plus class-correlated
// sparse binary bag-of-words features, so a 3-layer GNN lands in the paper's
// 70-90% accuracy band and explanations act on informative 3-hop
// neighborhoods.

#include "datasets/dataset.h"
#include "datasets/generators.h"

namespace revelio::datasets {

Dataset MakeCitationLike(const std::string& name, int num_nodes, int num_undirected_edges,
                         int feature_dim, int num_classes, double homophily, uint64_t seed) {
  util::Rng rng(seed);
  graph::Graph graph(num_nodes);

  std::vector<int> labels(num_nodes);
  std::vector<std::vector<int>> class_members(num_classes);
  for (int v = 0; v < num_nodes; ++v) {
    labels[v] = rng.UniformInt(num_classes);
    class_members[labels[v]].push_back(v);
  }

  // Spanning tree first so the graph is connected, preferring same-class
  // parents; then homophilous random edges up to the edge budget.
  for (int v = 1; v < num_nodes; ++v) {
    int parent = -1;
    if (rng.Bernoulli(homophily)) {
      for (int attempt = 0; attempt < 10; ++attempt) {
        const int candidate = rng.UniformInt(v);
        if (labels[candidate] == labels[v]) {
          parent = candidate;
          break;
        }
      }
    }
    if (parent < 0) parent = rng.UniformInt(v);
    graph.AddUndirectedEdge(v, parent);
  }
  int remaining = num_undirected_edges - (num_nodes - 1);
  while (remaining > 0) {
    const int u = rng.UniformInt(num_nodes);
    int v = -1;
    if (rng.Bernoulli(homophily)) {
      const auto& members = class_members[labels[u]];
      v = members[rng.UniformInt(static_cast<int>(members.size()))];
    } else {
      v = rng.UniformInt(num_nodes);
    }
    if (u == v || graph.HasEdge(u, v)) continue;
    graph.AddUndirectedEdge(u, v);
    --remaining;
  }

  // Sparse binary features: each class owns a block of feature positions;
  // in-block bits fire with high probability, off-block bits rarely.
  const int block = feature_dim / num_classes;
  CHECK_GT(block, 0);
  tensor::Tensor features = tensor::Tensor::Zeros(num_nodes, feature_dim);
  for (int v = 0; v < num_nodes; ++v) {
    const int begin = labels[v] * block;
    for (int f = 0; f < feature_dim; ++f) {
      const bool in_block = f >= begin && f < begin + block;
      const double p = in_block ? 0.4 : 0.03;
      if (rng.Bernoulli(p)) features.SetAt(v, f, 1.0f);
    }
  }

  Dataset dataset;
  dataset.name = name;
  dataset.task = gnn::TaskType::kNodeClassification;
  dataset.feature_dim = feature_dim;
  dataset.num_classes = num_classes;
  dataset.has_ground_truth = false;
  graph::GraphInstance instance;
  instance.graph = std::move(graph);
  instance.features = std::move(features);
  instance.labels = std::move(labels);
  dataset.instances.push_back(std::move(instance));
  return dataset;
}

Dataset MakeCoraLike(uint64_t seed) {
  // 2708 nodes / 5278 undirected (10556 directed) edges / 7 classes as in
  // Table III; feature dim reduced 1433 -> 70 for the 1-core budget.
  return MakeCitationLike("cora_like", 2708, 5278, 70, 7, 0.85, seed);
}

Dataset MakeCiteseerLike(uint64_t seed) {
  // 3327 nodes / 4552 undirected (9104 directed) edges / 6 classes;
  // feature dim reduced 3703 -> 60.
  return MakeCitationLike("citeseer_like", 3327, 4552, 60, 6, 0.85, seed);
}

Dataset MakePubmedLike(uint64_t seed) {
  // PubMed is scaled 19717 -> 4000 nodes (edge density preserved: 88648
  // directed edges / 19717 nodes = 2.25 undirected per node -> 9000
  // undirected edges); feature dim reduced 500 -> 50.
  return MakeCitationLike("pubmed_like", 4000, 9000, 50, 3, 0.85, seed);
}

}  // namespace revelio::datasets
