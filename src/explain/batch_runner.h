#ifndef REVELIO_EXPLAIN_BATCH_RUNNER_H_
#define REVELIO_EXPLAIN_BATCH_RUNNER_H_

// Mega-batched explanation: geometry + toggles for fusing a group of
// explainer tasks that share one frozen model into a single block-diagonal
// mega-graph, so the whole group trains with one forward/backward per
// optimizer step instead of one per instance.
//
// The fusion is a pure scheduling change: per-instance mask parameters stay
// independent variables living in disjoint segments of one concatenated
// vector, the batched loss is the sum of the per-instance losses, and every
// kernel in the chain accumulates per output element in serial scan order —
// so per-instance gradients, Adam updates, and final mask values are
// bitwise-equal to the sequential path (tests/prop/megabatch_equivalence_test).

#include <vector>

#include "explain/explainer.h"
#include "gnn/layer_edges.h"
#include "graph/batch.h"
#include "util/status.h"

namespace revelio::explain {

// Process-wide toggles, mirroring the fused-aggregation house rules:
// REVELIO_MEGABATCH ("0"/"false"/"off" disables; default on) gates the
// ExplainAll group dispatch, REVELIO_MEGABATCH_SIZE (default 32) caps the
// instances fused per group. Setters exist for benches/tests.
bool MegaBatchEnabled();
void SetMegaBatchEnabled(bool enabled);
int MegaBatchSize();
void SetMegaBatchSize(int size);

// Shared geometry of one fused group.
//
// Mega layer-edge ids follow gnn::BuildLayerEdges over the mega-graph: all
// base edges instance-major (instance i's base edge e is mega layer edge
// base_edge_offset[i] + e), then one self-loop per mega node (instance i's
// node v is mega layer edge E_mega + node_offset[i] + v, with
// E_mega = base_edge_offset.back()).
//
// The explainers build their per-epoch layer masks directly in this order,
// so the shared aggregation consumes them with no per-epoch permutation.
// Every mega row belongs to exactly one instance, and within one instance
// the base-edge rows (ascending) still precede the self-loop rows
// (ascending) — the same relative order as the instance's own LayerEdgeSet —
// which is what keeps per-row accumulation order identical to the
// sequential path.
//
// mask_offset remains the per-instance *count* prefix (base edges + nodes):
// instance i owns mask_offset[i+1] - mask_offset[i] layer edges, and
// mask_offset.back() equals the mega layer-edge count.
struct MegaBatchPlan {
  int num_instances = 0;
  bool node_task = true;

  graph::GraphBatch batch;       // block-diagonal mega-graph + features
  gnn::LayerEdgeSet mega_edges;  // layer edges of batch.graph (CSR attached)

  // Prefix sums, size num_instances + 1.
  std::vector<int> node_offset;
  std::vector<int> base_edge_offset;
  std::vector<int> mask_offset;

  // Per instance: the mega-logits row carrying the explained prediction
  // (node tasks: node_offset[i] + target_node; graph tasks: i).
  std::vector<int> logit_row;

  int num_mask_rows() const { return mask_offset.back(); }
  int instance_nodes(int i) const { return node_offset[i + 1] - node_offset[i]; }
  int instance_base_edges(int i) const {
    return base_edge_offset[i + 1] - base_edge_offset[i];
  }
};

// Builds the fused geometry for a group of tasks. Rejects with
// kInvalidArgument (callers fall back to the sequential path) when the group
// is empty, any task fails ValidateExplanationTask, the tasks do not all
// share one model, or graph::TryMakeBatch rejects the instance set.
util::StatusOr<MegaBatchPlan> BuildMegaBatchPlan(
    const std::vector<const ExplanationTask*>& tasks);

}  // namespace revelio::explain

#endif  // REVELIO_EXPLAIN_BATCH_RUNNER_H_
