#include "explain/deeplift.h"

#include "tensor/ops.h"

namespace revelio::explain {

Explanation DeepLiftExplainer::ExplainImpl(const ExplanationTask& task, Objective objective) {
  (void)objective;
  const gnn::GnnModel& model = *task.model;
  const gnn::LayerEdgeSet edges = gnn::BuildLayerEdges(*task.graph);
  const int num_layers = model.num_layers();

  // All-ones differentiable masks, one per layer.
  std::vector<tensor::Tensor> masks;
  masks.reserve(num_layers);
  for (int l = 0; l < num_layers; ++l) {
    masks.push_back(tensor::Tensor::Ones(edges.num_layer_edges(), 1).WithRequiresGrad());
  }
  const auto forward = model.Run(*task.graph, edges, task.features, masks);
  tensor::Tensor target_logit =
      tensor::Select(forward.logits, task.logit_row(), task.target_class);
  target_logit.Backward();

  Explanation explanation;
  explanation.edge_scores.assign(task.graph->num_edges(), 0.0);
  for (int e = 0; e < task.graph->num_edges(); ++e) {
    double contribution = 0.0;
    for (int l = 0; l < num_layers; ++l) contribution += masks[l].GradAt(e, 0);
    explanation.edge_scores[e] = contribution;
  }
  return explanation;
}

}  // namespace revelio::explain
