#ifndef REVELIO_EXPLAIN_GNNEXPLAINER_H_
#define REVELIO_EXPLAIN_GNNEXPLAINER_H_

// GNNExplainer (Ying et al. 2019): learns a single sigmoid edge mask shared
// across all GNN layers, optimizing mutual information between the masked
// prediction and the explained class, with size and entropy regularizers.
// For the counterfactual study the mask is trained with the paper's Eq. (2)
// objective and the importance of an edge is 1 - mask (removed = necessary).

#include "explain/explainer.h"

namespace revelio::explain {

struct GnnExplainerOptions {
  int epochs = 150;            // paper setup: 500
  float learning_rate = 0.01f; // paper setup: 1e-2
  float size_penalty = 0.005f;
  float entropy_penalty = 0.1f;
  uint64_t seed = 11;
};

class GnnExplainerMethod : public Explainer {
 public:
  explicit GnnExplainerMethod(const GnnExplainerOptions& options) : options_(options) {}

  std::string name() const override { return "GNNExplainer"; }
  bool supports_counterfactual() const override { return true; }
  bool supports_megabatch() const override { return true; }

  Explanation ExplainImpl(const ExplanationTask& task, Objective objective) override;

  // Mega-batched path (explain/batch_runner.h): one block-diagonal
  // forward/backward per Adam step for the whole group, bitwise-equal per
  // instance to ExplainImpl. Groups the plan builder rejects fall back to
  // the sequential loop.
  std::vector<Explanation> ExplainBatchImpl(const std::vector<const ExplanationTask*>& tasks,
                                            Objective objective) override;

 private:
  GnnExplainerOptions options_;
};

}  // namespace revelio::explain

#endif  // REVELIO_EXPLAIN_GNNEXPLAINER_H_
