#ifndef REVELIO_EXPLAIN_GRADCAM_H_
#define REVELIO_EXPLAIN_GRADCAM_H_

// Grad-CAM for graphs (Pope et al. 2019): channel weights are the mean
// gradient of the explained logit w.r.t. the final node embeddings; node
// importance is the ReLU'd weighted activation, and an edge inherits the
// mean of its endpoints. A white-box method that reuses its factual scores
// for the counterfactual study (paper §V-B).

#include "explain/explainer.h"

namespace revelio::explain {

class GradCamExplainer : public Explainer {
 public:
  std::string name() const override { return "GradCAM"; }

  Explanation ExplainImpl(const ExplanationTask& task, Objective objective) override;
};

}  // namespace revelio::explain

#endif  // REVELIO_EXPLAIN_GRADCAM_H_
