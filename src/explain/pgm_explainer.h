#ifndef REVELIO_EXPLAIN_PGM_EXPLAINER_H_
#define REVELIO_EXPLAIN_PGM_EXPLAINER_H_

// PGM-Explainer (Vu & Thai 2020): a black-box, node-centric perturbation
// method. Node features are randomly perturbed across many rounds; the
// dependency between "node v was perturbed" and "the prediction degraded" is
// measured with a chi-square statistic, giving node importance from which
// edge scores are derived (mean of endpoints). No gradient access needed.

#include "explain/explainer.h"
#include "util/rng.h"

namespace revelio::explain {

struct PgmExplainerOptions {
  int num_rounds = 100;           // perturbation samples
  double perturb_probability = 0.3;
  double prediction_drop_threshold = 0.05;
  uint64_t seed = 19;
};

class PgmExplainer : public Explainer {
 public:
  explicit PgmExplainer(const PgmExplainerOptions& options) : options_(options) {}

  std::string name() const override { return "PGMExplainer"; }

  Explanation ExplainImpl(const ExplanationTask& task, Objective objective) override;

 private:
  PgmExplainerOptions options_;
};

}  // namespace revelio::explain

#endif  // REVELIO_EXPLAIN_PGM_EXPLAINER_H_
