#include "explain/random_explainer.h"

namespace revelio::explain {

Explanation RandomExplainer::ExplainImpl(const ExplanationTask& task, Objective objective) {
  (void)objective;
  Explanation explanation;
  explanation.edge_scores.resize(task.graph->num_edges());
  for (auto& score : explanation.edge_scores) score = rng_.Uniform();
  return explanation;
}

}  // namespace revelio::explain
