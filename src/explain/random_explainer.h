#ifndef REVELIO_EXPLAIN_RANDOM_EXPLAINER_H_
#define REVELIO_EXPLAIN_RANDOM_EXPLAINER_H_

// Uniform-random edge scores: the sanity-check lower bound for every metric.

#include "explain/explainer.h"
#include "util/rng.h"

namespace revelio::explain {

class RandomExplainer : public Explainer {
 public:
  explicit RandomExplainer(uint64_t seed) : rng_(seed) {}

  std::string name() const override { return "Random"; }
  bool supports_counterfactual() const override { return true; }
  // The RNG advances across calls, so concurrent Explain() would race.
  bool thread_safe_explain() const override { return false; }

  Explanation ExplainImpl(const ExplanationTask& task, Objective objective) override;

 private:
  util::Rng rng_;
};

}  // namespace revelio::explain

#endif  // REVELIO_EXPLAIN_RANDOM_EXPLAINER_H_
