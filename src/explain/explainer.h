#ifndef REVELIO_EXPLAIN_EXPLAINER_H_
#define REVELIO_EXPLAIN_EXPLAINER_H_

// Common interface for every explanation method in the paper's evaluation.
//
// An ExplanationTask packages one instance: the pretrained model, the
// instance graph (for node tasks this is the L-hop computation subgraph with
// a local target id), its features, and the class being explained (the
// model's prediction, per the paper). Every method returns per-edge
// importance scores over the instance's base edges; flow-based methods
// additionally return flow-level scores.

#include <string>
#include <vector>

#include "gnn/model.h"
#include "graph/graph.h"
#include "util/status.h"

namespace revelio::explain {

struct ExplanationTask {
  const gnn::GnnModel* model = nullptr;
  const graph::Graph* graph = nullptr;
  tensor::Tensor features;  // leaf tensor, num_nodes x feature_dim
  int target_node = -1;     // local node id for node tasks; -1 for graph tasks
  int target_class = 0;

  bool is_node_task() const { return target_node >= 0; }
  // Row of the model's logits that carries the explained prediction.
  int logit_row() const { return is_node_task() ? target_node : 0; }
};

struct Explanation {
  // Ok for a produced explanation. Batch drivers (eval::ExplainAll, the
  // serving engine) park a per-task error here — a failed task must not
  // abort its whole batch, and the slot stays index-aligned either way.
  // When !status.ok() the score vectors are empty.
  util::Status status = util::Status::Ok();

  // Importance per base edge of task.graph (higher = more important). For
  // counterfactual explanations higher still means "more important", i.e.
  // removing high-scoring edges should destroy the prediction (paper §IV-C).
  std::vector<double> edge_scores;

  // Flow-level scores (flow-based methods only), parallel to the FlowSet the
  // method enumerated. Kept here for the top-k flow study (Tables VI/VII).
  bool has_flow_scores = false;
  std::vector<double> flow_scores;
};

enum class Objective { kFactual, kCounterfactual };

const char* ObjectiveName(Objective objective);

class Explainer {
 public:
  virtual ~Explainer() = default;

  virtual std::string name() const = 0;

  // Whether the method optimizes a dedicated counterfactual objective. For
  // methods that do not (GradCAM, DeepLIFT, PGM-Explainer, SubgraphX,
  // GNN-LRP), the paper reuses their original importance scores in the
  // Fidelity+ study; callers pass kCounterfactual and the method returns its
  // standard scores.
  virtual bool supports_counterfactual() const { return false; }

  // Model-specific methods (GNN-LRP) return false for unsupported
  // architectures; callers must skip those combinations (paper: "GNN-LRP is
  // not compatible with GATs").
  virtual bool SupportsArch(gnn::GnnArch arch) const {
    (void)arch;
    return true;
  }

  // True when concurrent Explain() calls on this object are safe (no mutable
  // per-call state shared across calls; the model must be frozen). Methods
  // with stateful members (RandomExplainer's RNG) override to false and the
  // harness falls back to the serial per-instance loop.
  virtual bool thread_safe_explain() const { return true; }

  // True when the method can train a whole group of tasks as one mega-batched
  // optimization over a block-diagonal mega-graph (explain/batch_runner.h).
  // Methods that return true must override ExplainBatchImpl and guarantee the
  // batched result is bitwise-equal to calling Explain per task.
  virtual bool supports_megabatch() const { return false; }

  // Shared entry point: opens the "explain.<name()>" telemetry span and
  // counts the call, then dispatches to ExplainImpl. Non-virtual so every
  // method is instrumented uniformly regardless of call site.
  Explanation Explain(const ExplanationTask& task, Objective objective);

  // Batched entry point: instruments the group (same span name as Explain,
  // plus megabatch counters) and dispatches to ExplainBatchImpl. Results are
  // index-parallel to `tasks`. All tasks must share the same model.
  std::vector<Explanation> ExplainBatch(const std::vector<const ExplanationTask*>& tasks,
                                        Objective objective);

 protected:
  virtual Explanation ExplainImpl(const ExplanationTask& task, Objective objective) = 0;

  // Default: the sequential per-task loop. Methods with supports_megabatch()
  // override this with a fused forward/backward over the whole group.
  virtual std::vector<Explanation> ExplainBatchImpl(
      const std::vector<const ExplanationTask*>& tasks, Objective objective);
};

// Validates a task before it reaches an explainer: null model/graph, an empty
// graph, a feature matrix whose shape disagrees with the graph or the model's
// input_dim, or an out-of-range target node/class all yield kInvalidArgument
// instead of a CHECK-abort deep inside the method. Degenerate-but-valid tasks
// (single node, zero edges) pass.
util::Status ValidateExplanationTask(const ExplanationTask& task);

// Makes a differentiable clone of the task's feature matrix (leaf).
tensor::Tensor CloneFeatures(const ExplanationTask& task);

// Runs the model unmasked and returns P(target_class) for the task instance.
double PredictedProbability(const ExplanationTask& task);

// The model's predicted class for the task instance.
int PredictedClass(const ExplanationTask& task);

}  // namespace revelio::explain

#endif  // REVELIO_EXPLAIN_EXPLAINER_H_
