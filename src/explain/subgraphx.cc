#include "explain/subgraphx.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>

#include "nn/loss.h"
#include "obs/trace.h"
#include "tensor/ops.h"

namespace revelio::explain {
namespace {

// Prediction probability with only the edges among `kept` nodes active
// (coalition forward pass; self-loops of excluded nodes are zeroed too).
double CoalitionProbability(const ExplanationTask& task, const gnn::LayerEdgeSet& edges,
                            const std::vector<char>& kept) {
  std::vector<float> mask_values(edges.num_layer_edges());
  for (int e = 0; e < edges.num_layer_edges(); ++e) {
    mask_values[e] = kept[edges.src[e]] && kept[edges.dst[e]] ? 1.0f : 0.0f;
  }
  tensor::Tensor mask = tensor::Tensor::FromVector(mask_values);
  std::vector<tensor::Tensor> masks(task.model->num_layers(), mask);
  const tensor::Tensor logits =
      task.model->Run(*task.graph, edges, task.features, masks).logits;
  return nn::SoftmaxRow(logits, task.logit_row())[task.target_class];
}

struct MctsNode {
  std::vector<char> kept;
  int num_kept = 0;
  double total_reward = 0.0;
  int visits = 0;
  bool expanded = false;
  std::vector<std::unique_ptr<MctsNode>> children;
};

}  // namespace

Explanation SubgraphXExplainer::ExplainImpl(const ExplanationTask& task, Objective objective) {
  (void)objective;  // SubgraphX scores serve both studies (paper §V-B).
  util::Rng rng(options_.seed);
  const gnn::LayerEdgeSet edges = gnn::BuildLayerEdges(*task.graph);
  const int num_nodes = task.graph->num_nodes();

  // Sampled Shapley reward of a kept-set: marginal contribution of the set
  // over random coalitions drawn from its complement.
  auto shapley_reward = [&](const std::vector<char>& kept) {
    double total = 0.0;
    for (int s = 0; s < options_.shapley_samples; ++s) {
      std::vector<char> coalition(num_nodes, 0);
      for (int v = 0; v < num_nodes; ++v) {
        if (!kept[v] && rng.Bernoulli(0.5)) coalition[v] = 1;
      }
      std::vector<char> with_set = coalition;
      for (int v = 0; v < num_nodes; ++v) {
        if (kept[v]) with_set[v] = 1;
      }
      if (task.is_node_task()) with_set[task.target_node] = 1;
      total += CoalitionProbability(task, edges, with_set) -
               CoalitionProbability(task, edges, coalition);
    }
    return total / options_.shapley_samples;
  };

  MctsNode root;
  root.kept.assign(num_nodes, 1);
  root.num_kept = num_nodes;

  // Per-edge reward accumulation over every evaluated state: an edge kept by
  // many high-reward subgraphs ranks high, giving a full graded ranking for
  // the sparsity sweeps.
  std::vector<double> edge_reward(task.graph->num_edges(), 0.0);
  std::vector<int> edge_count(task.graph->num_edges(), 0);
  auto record = [&](const std::vector<char>& kept, double reward) {
    for (int e = 0; e < task.graph->num_edges(); ++e) {
      const graph::Edge& edge = task.graph->edge(e);
      if (kept[edge.src] && kept[edge.dst]) {
        edge_reward[e] += reward;
        ++edge_count[e];
      }
    }
  };

  obs::ScopedSpan mcts_span("subgraphx.mcts");
  for (int iteration = 0; iteration < options_.mcts_iterations; ++iteration) {
    // Selection.
    std::vector<MctsNode*> path{&root};
    MctsNode* node = &root;
    while (node->expanded && !node->children.empty()) {
      MctsNode* best = nullptr;
      double best_uct = -1e30;
      for (auto& child : node->children) {
        const double mean =
            child->visits > 0 ? child->total_reward / child->visits : 0.0;
        const double explore =
            options_.exploration *
            std::sqrt(std::log(node->visits + 1.0) / (child->visits + 1.0));
        if (mean + explore > best_uct) {
          best_uct = mean + explore;
          best = child.get();
        }
      }
      node = best;
      path.push_back(node);
    }

    // Expansion: children prune one removable node each (sampled subset).
    if (!node->expanded && node->num_kept > options_.min_subgraph_nodes) {
      std::vector<int> removable;
      for (int v = 0; v < num_nodes; ++v) {
        if (node->kept[v] && v != task.target_node) removable.push_back(v);
      }
      rng.Shuffle(&removable);
      const int branch = std::min<int>(4, static_cast<int>(removable.size()));
      for (int b = 0; b < branch; ++b) {
        auto child = std::make_unique<MctsNode>();
        child->kept = node->kept;
        child->kept[removable[b]] = 0;
        child->num_kept = node->num_kept - 1;
        node->children.push_back(std::move(child));
      }
      node->expanded = true;
      if (!node->children.empty()) {
        node = node->children[rng.UniformInt(static_cast<int>(node->children.size()))].get();
        path.push_back(node);
      }
    }

    // Rollout: random pruning down to the minimum size, then evaluate.
    std::vector<char> rollout_kept = node->kept;
    int rollout_size = node->num_kept;
    while (rollout_size > options_.min_subgraph_nodes) {
      const int v = rng.UniformInt(num_nodes);
      if (!rollout_kept[v] || v == task.target_node) continue;
      rollout_kept[v] = 0;
      --rollout_size;
    }
    const double reward = shapley_reward(rollout_kept);
    record(rollout_kept, reward);
    record(node->kept, reward);
    for (MctsNode* visited : path) {
      visited->visits += 1;
      visited->total_reward += reward;
    }
  }

  Explanation explanation;
  explanation.edge_scores.resize(task.graph->num_edges());
  for (int e = 0; e < task.graph->num_edges(); ++e) {
    explanation.edge_scores[e] =
        edge_count[e] > 0 ? edge_reward[e] / edge_count[e] : 0.0;
  }
  return explanation;
}

}  // namespace revelio::explain
