#include "explain/batch_runner.h"

#include <atomic>
#include <cstdlib>
#include <string>

namespace revelio::explain {

namespace {

bool MegaBatchDefault() {
  const char* env = std::getenv("REVELIO_MEGABATCH");
  if (env == nullptr) return true;
  const std::string value(env);
  return !(value == "0" || value == "false" || value == "off");
}

std::atomic<bool>& MegaBatchFlag() {
  static std::atomic<bool> flag(MegaBatchDefault());
  return flag;
}

int MegaBatchSizeDefault() {
  constexpr int kDefault = 32;
  const char* env = std::getenv("REVELIO_MEGABATCH_SIZE");
  if (env == nullptr) return kDefault;
  const int value = std::atoi(env);
  return value >= 1 ? value : kDefault;
}

std::atomic<int>& MegaBatchSizeFlag() {
  static std::atomic<int> size(MegaBatchSizeDefault());
  return size;
}

}  // namespace

bool MegaBatchEnabled() { return MegaBatchFlag().load(std::memory_order_relaxed); }

void SetMegaBatchEnabled(bool enabled) {
  MegaBatchFlag().store(enabled, std::memory_order_relaxed);
}

int MegaBatchSize() { return MegaBatchSizeFlag().load(std::memory_order_relaxed); }

void SetMegaBatchSize(int size) {
  MegaBatchSizeFlag().store(size >= 1 ? size : 1, std::memory_order_relaxed);
}

util::StatusOr<MegaBatchPlan> BuildMegaBatchPlan(
    const std::vector<const ExplanationTask*>& tasks) {
  if (tasks.empty()) {
    return util::Status::InvalidArgument("cannot mega-batch an empty task group");
  }
  for (size_t i = 0; i < tasks.size(); ++i) {
    if (tasks[i] == nullptr) {
      return util::Status::InvalidArgument("mega-batch task " + std::to_string(i) + " is null");
    }
    util::Status status = ValidateExplanationTask(*tasks[i]);
    if (!status.ok()) return status;
    if (tasks[i]->model != tasks[0]->model) {
      return util::Status::InvalidArgument(
          "mega-batch task " + std::to_string(i) + " uses a different model; group by model first");
    }
  }

  MegaBatchPlan plan;
  plan.num_instances = static_cast<int>(tasks.size());
  plan.node_task = tasks[0]->is_node_task();

  // Route the instance graphs through graph::TryMakeBatch (the single source
  // of truth for block-diagonal merging). The temporary GraphInstances carry
  // the explained class as their one graph label; the label plays no role in
  // the mask optimization.
  std::vector<graph::GraphInstance> staging(tasks.size());
  std::vector<const graph::GraphInstance*> pointers(tasks.size());
  for (size_t i = 0; i < tasks.size(); ++i) {
    staging[i].graph = *tasks[i]->graph;
    staging[i].features = tasks[i]->features;
    staging[i].labels = {tasks[i]->target_class};
    pointers[i] = &staging[i];
  }
  util::StatusOr<graph::GraphBatch> batch_or = graph::TryMakeBatch(pointers);
  if (!batch_or.ok()) return batch_or.status();
  plan.batch = std::move(batch_or).value();
  plan.mega_edges = gnn::BuildLayerEdges(plan.batch.graph);

  const int num_instances = plan.num_instances;
  plan.node_offset.assign(num_instances + 1, 0);
  plan.base_edge_offset.assign(num_instances + 1, 0);
  plan.mask_offset.assign(num_instances + 1, 0);
  for (int i = 0; i < num_instances; ++i) {
    const int nodes = tasks[i]->graph->num_nodes();
    const int base_edges = tasks[i]->graph->num_edges();
    plan.node_offset[i + 1] = plan.node_offset[i] + nodes;
    plan.base_edge_offset[i + 1] = plan.base_edge_offset[i] + base_edges;
    plan.mask_offset[i + 1] = plan.mask_offset[i] + base_edges + nodes;
  }

  plan.logit_row.resize(num_instances);
  for (int i = 0; i < num_instances; ++i) {
    plan.logit_row[i] = plan.node_task ? plan.node_offset[i] + tasks[i]->target_node : i;
  }

  // The explainers build their epoch masks directly in this mega layer-edge
  // order (base edges instance-major, then self-loops instance-major), so the
  // plan carries no pack permutation — only the offsets above.
  CHECK_EQ(plan.mega_edges.num_layer_edges(), plan.mask_offset[num_instances]);
  return plan;
}

}  // namespace revelio::explain
