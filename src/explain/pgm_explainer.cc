#include "explain/pgm_explainer.h"

#include <array>
#include <cmath>

#include "nn/loss.h"

namespace revelio::explain {

Explanation PgmExplainer::ExplainImpl(const ExplanationTask& task, Objective objective) {
  (void)objective;  // PGM-Explainer's scores serve both studies (paper §V-B).
  util::Rng rng(options_.seed);
  const int num_nodes = task.graph->num_nodes();
  const double original_probability = PredictedProbability(task);

  // Contingency counts per node: perturbed x degraded.
  std::vector<std::array<std::array<double, 2>, 2>> counts(
      num_nodes, {{{0.0, 0.0}, {0.0, 0.0}}});

  std::vector<char> perturbed(num_nodes);
  for (int round = 0; round < options_.num_rounds; ++round) {
    tensor::Tensor features = CloneFeatures(task);
    int num_perturbed = 0;
    for (int v = 0; v < num_nodes; ++v) {
      perturbed[v] = rng.Bernoulli(options_.perturb_probability);
      if (!perturbed[v]) continue;
      ++num_perturbed;
      for (int f = 0; f < features.cols(); ++f) features.SetAt(v, f, 0.0f);
    }
    if (num_perturbed == 0) continue;
    const tensor::Tensor logits = task.model->Logits(*task.graph, features);
    const double probability = nn::SoftmaxRow(logits, task.logit_row())[task.target_class];
    const int degraded =
        original_probability - probability > options_.prediction_drop_threshold ? 1 : 0;
    for (int v = 0; v < num_nodes; ++v) counts[v][perturbed[v] ? 1 : 0][degraded] += 1.0;
  }

  // Chi-square statistic of the 2x2 contingency table per node.
  std::vector<double> node_scores(num_nodes, 0.0);
  for (int v = 0; v < num_nodes; ++v) {
    const auto& c = counts[v];
    const double total = c[0][0] + c[0][1] + c[1][0] + c[1][1];
    if (total <= 0.0) continue;
    double chi_square = 0.0;
    for (int a = 0; a < 2; ++a) {
      for (int b = 0; b < 2; ++b) {
        const double row = c[a][0] + c[a][1];
        const double col = c[0][b] + c[1][b];
        const double expected = row * col / total;
        if (expected > 1e-9) {
          const double diff = c[a][b] - expected;
          chi_square += diff * diff / expected;
        }
      }
    }
    // Sign by direction: perturbing an important node should co-occur with
    // degradation (positive association).
    const double association = c[1][1] * c[0][0] - c[1][0] * c[0][1];
    node_scores[v] = association >= 0.0 ? chi_square : 0.0;
  }

  Explanation explanation;
  explanation.edge_scores.resize(task.graph->num_edges());
  for (int e = 0; e < task.graph->num_edges(); ++e) {
    const graph::Edge& edge = task.graph->edge(e);
    explanation.edge_scores[e] = 0.5 * (node_scores[edge.src] + node_scores[edge.dst]);
  }
  return explanation;
}

}  // namespace revelio::explain
