#include "explain/explainer.h"

#include "nn/loss.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/pool.h"

namespace revelio::explain {

const char* ObjectiveName(Objective objective) {
  return objective == Objective::kFactual ? "factual" : "counterfactual";
}

Explanation Explainer::Explain(const ExplanationTask& task, Objective objective) {
  // Skip the name() call entirely when telemetry is off: the span then costs
  // one relaxed load and no allocation.
  obs::ScopedSpan span(obs::Enabled() ? "explain." + name() : std::string());
  static obs::Counter* calls = obs::MetricsRegistry::Global().GetCounter("explain.calls");
  calls->Increment();
  // One pool scope per explanation: on exit the calling thread's tensor pool
  // is trimmed back to its high-water mark, so repeated explanations reuse
  // the same buffers instead of growing the retained set.
  tensor::MemoryScope pool_scope("explain");
  return ExplainImpl(task, objective);
}

std::vector<Explanation> Explainer::ExplainBatch(const std::vector<const ExplanationTask*>& tasks,
                                                 Objective objective) {
  obs::ScopedSpan span(obs::Enabled() ? "explain." + name() : std::string());
  static obs::Counter* calls = obs::MetricsRegistry::Global().GetCounter("explain.calls");
  static obs::Counter* groups = obs::MetricsRegistry::Global().GetCounter("megabatch.groups");
  static obs::Counter* instances =
      obs::MetricsRegistry::Global().GetCounter("megabatch.instances");
  calls->Add(tasks.size());
  groups->Increment();
  instances->Add(tasks.size());
  tensor::MemoryScope pool_scope("explain");
  return ExplainBatchImpl(tasks, objective);
}

std::vector<Explanation> Explainer::ExplainBatchImpl(
    const std::vector<const ExplanationTask*>& tasks, Objective objective) {
  std::vector<Explanation> results;
  results.reserve(tasks.size());
  for (const ExplanationTask* task : tasks) {
    CHECK(task != nullptr);
    results.push_back(ExplainImpl(*task, objective));
  }
  return results;
}

util::Status ValidateExplanationTask(const ExplanationTask& task) {
  if (task.model == nullptr) return util::Status::InvalidArgument("task.model is null");
  if (task.graph == nullptr) return util::Status::InvalidArgument("task.graph is null");
  const int n = task.graph->num_nodes();
  if (n <= 0) {
    return util::Status::InvalidArgument("cannot explain an empty graph (0 nodes, no flows)");
  }
  if (task.features.rows() != n) {
    return util::Status::InvalidArgument(
        "features have " + std::to_string(task.features.rows()) + " rows for " +
        std::to_string(n) + " nodes");
  }
  const gnn::GnnConfig& config = task.model->config();
  if (task.features.cols() != config.input_dim) {
    return util::Status::InvalidArgument(
        "feature dim " + std::to_string(task.features.cols()) + " != model input_dim " +
        std::to_string(config.input_dim));
  }
  const bool node_task = config.task == gnn::TaskType::kNodeClassification;
  if (node_task != task.is_node_task()) {
    return util::Status::InvalidArgument(node_task
                                             ? "node-classification model requires target_node >= 0"
                                             : "graph-classification task must use target_node = -1");
  }
  if (node_task && task.target_node >= n) {
    return util::Status::InvalidArgument(
        "target_node " + std::to_string(task.target_node) + " out of range for " +
        std::to_string(n) + " nodes");
  }
  if (task.target_class < 0 || task.target_class >= config.num_classes) {
    return util::Status::InvalidArgument(
        "target_class " + std::to_string(task.target_class) + " out of range for " +
        std::to_string(config.num_classes) + " classes");
  }
  return util::Status::Ok();
}

tensor::Tensor CloneFeatures(const ExplanationTask& task) {
  return task.features.Detach();
}

double PredictedProbability(const ExplanationTask& task) {
  const tensor::Tensor logits = task.model->Logits(*task.graph, task.features);
  return nn::SoftmaxRow(logits, task.logit_row())[task.target_class];
}

int PredictedClass(const ExplanationTask& task) {
  const tensor::Tensor logits = task.model->Logits(*task.graph, task.features);
  return nn::ArgmaxRow(logits, task.logit_row());
}

}  // namespace revelio::explain
