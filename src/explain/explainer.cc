#include "explain/explainer.h"

#include "nn/loss.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace revelio::explain {

const char* ObjectiveName(Objective objective) {
  return objective == Objective::kFactual ? "factual" : "counterfactual";
}

Explanation Explainer::Explain(const ExplanationTask& task, Objective objective) {
  // Skip the name() call entirely when telemetry is off: the span then costs
  // one relaxed load and no allocation.
  obs::ScopedSpan span(obs::Enabled() ? "explain." + name() : std::string());
  static obs::Counter* calls = obs::MetricsRegistry::Global().GetCounter("explain.calls");
  calls->Increment();
  return ExplainImpl(task, objective);
}

tensor::Tensor CloneFeatures(const ExplanationTask& task) {
  return task.features.Detach();
}

double PredictedProbability(const ExplanationTask& task) {
  const tensor::Tensor logits = task.model->Logits(*task.graph, task.features);
  return nn::SoftmaxRow(logits, task.logit_row())[task.target_class];
}

int PredictedClass(const ExplanationTask& task) {
  const tensor::Tensor logits = task.model->Logits(*task.graph, task.features);
  return nn::ArgmaxRow(logits, task.logit_row());
}

}  // namespace revelio::explain
