#include "explain/explainer.h"

#include "nn/loss.h"

namespace revelio::explain {

const char* ObjectiveName(Objective objective) {
  return objective == Objective::kFactual ? "factual" : "counterfactual";
}

tensor::Tensor CloneFeatures(const ExplanationTask& task) {
  return task.features.Detach();
}

double PredictedProbability(const ExplanationTask& task) {
  const tensor::Tensor logits = task.model->Logits(*task.graph, task.features);
  return nn::SoftmaxRow(logits, task.logit_row())[task.target_class];
}

int PredictedClass(const ExplanationTask& task) {
  const tensor::Tensor logits = task.model->Logits(*task.graph, task.features);
  return nn::ArgmaxRow(logits, task.logit_row());
}

}  // namespace revelio::explain
