#include "explain/explainer.h"

#include <algorithm>

#include "nn/loss.h"
#include "obs/audit.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/trace.h"
#include "tensor/pool.h"

namespace revelio::explain {

namespace {

// How many of the final scores an audit record retains. Enough to see the
// shape of the distribution (and the paper's top-k sweeps stop well below
// this); full score vectors belong in result files, not per-call audit logs.
constexpr size_t kAuditTopScores = 32;

void FillAuditTaskShape(obs::AuditRecord* record, const ExplanationTask& task) {
  record->num_nodes = task.graph->num_nodes();
  record->num_edges = task.graph->num_edges();
  record->target_node = task.target_node;
  record->target_class = task.target_class;
}

void FillAuditResult(obs::AuditRecord* record, const Explanation& result) {
  const std::vector<double>& scores =
      result.has_flow_scores ? result.flow_scores : result.edge_scores;
  std::vector<double> top = scores;
  const size_t k = std::min(kAuditTopScores, top.size());
  std::partial_sort(top.begin(), top.begin() + k, top.end(), std::greater<double>());
  top.resize(k);
  record->top_scores = std::move(top);
}

void FillAuditCall(obs::AuditRecord* record, const std::string& method, Objective objective,
                   bool megabatched, const tensor::PoolStats& pool_delta, double wall_seconds) {
  record->method = method;
  record->objective = ObjectiveName(objective);
  record->megabatched = megabatched;
  record->pool_hits = pool_delta.hits;
  record->pool_misses = pool_delta.misses;
  record->wall_seconds = wall_seconds;
  record->config.emplace_back("tensor_pool", tensor::PoolEnabled() ? "1" : "0");
}

}  // namespace

const char* ObjectiveName(Objective objective) {
  return objective == Objective::kFactual ? "factual" : "counterfactual";
}

Explanation Explainer::Explain(const ExplanationTask& task, Objective objective) {
  // Skip the name() call entirely when telemetry is off: the span then costs
  // one relaxed load and no allocation. The flight recorder needs the name
  // too — its span events carry only an interned pointer.
  obs::ScopedSpan span(obs::Enabled() || obs::FlightEnabled() ? "explain." + name()
                                                              : std::string());
  static obs::Counter* calls = obs::MetricsRegistry::Global().GetCounter("explain.calls");
  calls->Increment();
  // One pool scope per explanation: on exit the calling thread's tensor pool
  // is trimmed back to its high-water mark, so repeated explanations reuse
  // the same buffers instead of growing the retained set.
  tensor::MemoryScope pool_scope("explain");
  obs::AuditScope audit(1);
  if (!audit.active()) return ExplainImpl(task, objective);

  FillAuditTaskShape(audit.record(0), task);
  Explanation result = ExplainImpl(task, objective);
  FillAuditResult(audit.record(0), result);
  FillAuditCall(audit.record(0), name(), objective, /*megabatched=*/false, pool_scope.Delta(),
                span.ElapsedSeconds());
  audit.SubmitAll();
  return result;
}

std::vector<Explanation> Explainer::ExplainBatch(const std::vector<const ExplanationTask*>& tasks,
                                                 Objective objective) {
  obs::ScopedSpan span(obs::Enabled() || obs::FlightEnabled() ? "explain." + name()
                                                              : std::string());
  static obs::Counter* calls = obs::MetricsRegistry::Global().GetCounter("explain.calls");
  static obs::Counter* groups = obs::MetricsRegistry::Global().GetCounter("megabatch.groups");
  static obs::Counter* instances =
      obs::MetricsRegistry::Global().GetCounter("megabatch.instances");
  calls->Add(tasks.size());
  groups->Increment();
  instances->Add(tasks.size());
  tensor::MemoryScope pool_scope("explain");
  obs::AuditScope audit(tasks.size());
  if (!audit.active()) return ExplainBatchImpl(tasks, objective);

  for (size_t i = 0; i < tasks.size(); ++i) {
    if (tasks[i] != nullptr) FillAuditTaskShape(audit.record(i), *tasks[i]);
  }
  std::vector<Explanation> results = ExplainBatchImpl(tasks, objective);
  const tensor::PoolStats pool_delta = pool_scope.Delta();
  const double wall_seconds = span.ElapsedSeconds();
  for (size_t i = 0; i < results.size() && i < tasks.size(); ++i) {
    FillAuditResult(audit.record(i), results[i]);
    FillAuditCall(audit.record(i), name(), objective, /*megabatched=*/tasks.size() > 1,
                  pool_delta, wall_seconds);
  }
  audit.SubmitAll();
  return results;
}

std::vector<Explanation> Explainer::ExplainBatchImpl(
    const std::vector<const ExplanationTask*>& tasks, Objective objective) {
  std::vector<Explanation> results;
  results.reserve(tasks.size());
  for (size_t i = 0; i < tasks.size(); ++i) {
    CHECK(tasks[i] != nullptr);
    // Point single-instance audit hooks (Current(0)) at this task's record.
    obs::AuditScope::SetInstanceBase(i);
    results.push_back(ExplainImpl(*tasks[i], objective));
  }
  obs::AuditScope::SetInstanceBase(0);
  return results;
}

util::Status ValidateExplanationTask(const ExplanationTask& task) {
  if (task.model == nullptr) return util::Status::InvalidArgument("task.model is null");
  if (task.graph == nullptr) return util::Status::InvalidArgument("task.graph is null");
  const int n = task.graph->num_nodes();
  if (n <= 0) {
    return util::Status::InvalidArgument("cannot explain an empty graph (0 nodes, no flows)");
  }
  if (task.features.rows() != n) {
    return util::Status::InvalidArgument(
        "features have " + std::to_string(task.features.rows()) + " rows for " +
        std::to_string(n) + " nodes");
  }
  const gnn::GnnConfig& config = task.model->config();
  if (task.features.cols() != config.input_dim) {
    return util::Status::InvalidArgument(
        "feature dim " + std::to_string(task.features.cols()) + " != model input_dim " +
        std::to_string(config.input_dim));
  }
  const bool node_task = config.task == gnn::TaskType::kNodeClassification;
  if (node_task != task.is_node_task()) {
    return util::Status::InvalidArgument(node_task
                                             ? "node-classification model requires target_node >= 0"
                                             : "graph-classification task must use target_node = -1");
  }
  if (node_task && task.target_node >= n) {
    return util::Status::InvalidArgument(
        "target_node " + std::to_string(task.target_node) + " out of range for " +
        std::to_string(n) + " nodes");
  }
  if (task.target_class < 0 || task.target_class >= config.num_classes) {
    return util::Status::InvalidArgument(
        "target_class " + std::to_string(task.target_class) + " out of range for " +
        std::to_string(config.num_classes) + " classes");
  }
  return util::Status::Ok();
}

tensor::Tensor CloneFeatures(const ExplanationTask& task) {
  return task.features.Detach();
}

double PredictedProbability(const ExplanationTask& task) {
  const tensor::Tensor logits = task.model->Logits(*task.graph, task.features);
  return nn::SoftmaxRow(logits, task.logit_row())[task.target_class];
}

int PredictedClass(const ExplanationTask& task) {
  const tensor::Tensor logits = task.model->Logits(*task.graph, task.features);
  return nn::ArgmaxRow(logits, task.logit_row());
}

}  // namespace revelio::explain
