#ifndef REVELIO_EXPLAIN_DEEPLIFT_H_
#define REVELIO_EXPLAIN_DEEPLIFT_H_

// DeepLIFT-style attribution (Shrikumar et al. 2017) adapted to edges.
//
// The Rescale rule with an empty-graph baseline (all edge masks 0) is
// approximated by gradient x input on the layer-edge masks evaluated at the
// all-ones mask: contribution(e, l) ~= d logit_c / d mask_e^l * (1 - 0).
// Edge importance is the total contribution across layers. Like the paper's
// DeepLIFT baseline, the same scores serve both fidelity studies.

#include "explain/explainer.h"

namespace revelio::explain {

class DeepLiftExplainer : public Explainer {
 public:
  std::string name() const override { return "DeepLIFT"; }

  Explanation ExplainImpl(const ExplanationTask& task, Objective objective) override;
};

}  // namespace revelio::explain

#endif  // REVELIO_EXPLAIN_DEEPLIFT_H_
