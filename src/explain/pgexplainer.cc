#include "explain/pgexplainer.h"

#include <numeric>

#include "nn/loss.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"
#include "util/timer.h"

namespace revelio::explain {

using tensor::Tensor;

struct PgExplainer::GateNet : public nn::Module {
  GateNet(int embedding_dim, int hidden, bool node_task, util::Rng* rng)
      : conditions_on_target(node_task),
        mlp({embedding_dim * (node_task ? 3 : 2), hidden, 1}, rng) {}

  bool conditions_on_target;
  nn::Mlp mlp;
};

PgExplainer::PgExplainer(const PgExplainerOptions& options) : options_(options) {}

PgExplainer::~PgExplainer() = default;

tensor::Tensor PgExplainer::EdgeLogits(const GateNet& net, const ExplanationTask& task,
                                       const gnn::LayerEdgeSet& edges) const {
  // Final-layer embeddings of the pretrained model, detached: PGExplainer
  // trains only the gate MLP.
  const auto forward = task.model->Run(*task.graph, edges, task.features, {});
  const Tensor embeddings = forward.embeddings.back().Detach();

  std::vector<int> srcs, dsts;
  srcs.reserve(edges.num_base_edges);
  dsts.reserve(edges.num_base_edges);
  for (int e = 0; e < edges.num_base_edges; ++e) {
    srcs.push_back(edges.src[e]);
    dsts.push_back(edges.dst[e]);
  }
  Tensor inputs = tensor::ConcatCols(tensor::GatherRows(embeddings, srcs),
                                     tensor::GatherRows(embeddings, dsts));
  if (net.conditions_on_target) {
    const std::vector<int> target_rows(edges.num_base_edges, task.target_node);
    inputs = tensor::ConcatCols(inputs, tensor::GatherRows(embeddings, target_rows));
  }
  return net.mlp.Forward(inputs);
}

void PgExplainer::Train(const std::vector<ExplanationTask>& tasks, Objective objective) {
  CHECK(!tasks.empty());
  util::Timer timer;
  util::Rng rng(options_.seed);
  const int embedding_dim = tasks[0].model->config().hidden_dim;
  auto net = std::make_unique<GateNet>(embedding_dim, options_.mlp_hidden,
                                       tasks[0].is_node_task(), &rng);
  nn::Adam optimizer(net->Parameters(), options_.learning_rate);

  for (int epoch = 0; epoch < options_.train_epochs; ++epoch) {
    for (const ExplanationTask& task : tasks) {
      const gnn::LayerEdgeSet edges = gnn::BuildLayerEdges(*task.graph);
      optimizer.ZeroGrad();
      Tensor gate = tensor::Sigmoid(EdgeLogits(*net, task, edges));
      // Expand to layer edges with self-loops kept at 1.
      std::vector<int> base_indices(edges.num_base_edges);
      std::iota(base_indices.begin(), base_indices.end(), 0);
      Tensor expanded = tensor::ScatterAddRows(gate, base_indices, edges.num_layer_edges());
      std::vector<float> self_ones(edges.num_layer_edges(), 0.0f);
      for (int e = edges.num_base_edges; e < edges.num_layer_edges(); ++e) self_ones[e] = 1.0f;
      Tensor layer_mask = tensor::Add(expanded, Tensor::FromVector(self_ones));
      std::vector<Tensor> masks(task.model->num_layers(), layer_mask);
      Tensor logits = task.model->Run(*task.graph, edges, task.features, masks).logits;

      Tensor loss =
          objective == Objective::kFactual
              ? nn::FactualObjective(logits, task.logit_row(), task.target_class)
              : nn::CounterfactualObjective(logits, task.logit_row(), task.target_class);
      Tensor size_term = objective == Objective::kFactual
                             ? tensor::Mean(gate)
                             : tensor::Mean(tensor::AddScalar(tensor::Neg(gate), 1.0f));
      loss = tensor::Add(loss, tensor::MulScalar(size_term, options_.size_penalty));
      loss.Backward();
      optimizer.Step();
      loss.ReleaseTape();
    }
  }
  if (objective == Objective::kFactual) {
    factual_net_ = std::move(net);
    factual_train_seconds_ = timer.ElapsedSeconds();
  } else {
    counterfactual_net_ = std::move(net);
    counterfactual_train_seconds_ = timer.ElapsedSeconds();
  }
}

bool PgExplainer::is_trained(Objective objective) const {
  return objective == Objective::kFactual ? factual_net_ != nullptr
                                          : counterfactual_net_ != nullptr;
}

double PgExplainer::last_train_seconds(Objective objective) const {
  return objective == Objective::kFactual ? factual_train_seconds_
                                          : counterfactual_train_seconds_;
}

Explanation PgExplainer::ExplainImpl(const ExplanationTask& task, Objective objective) {
  const GateNet* net =
      objective == Objective::kFactual ? factual_net_.get() : counterfactual_net_.get();
  CHECK(net != nullptr) << "PgExplainer::Train must run before Explain";
  const gnn::LayerEdgeSet edges = gnn::BuildLayerEdges(*task.graph);
  Tensor gate = tensor::Sigmoid(EdgeLogits(*net, task, edges));
  Explanation explanation;
  explanation.edge_scores.resize(edges.num_base_edges);
  for (int e = 0; e < edges.num_base_edges; ++e) {
    const double value = gate.At(e, 0);
    explanation.edge_scores[e] = objective == Objective::kFactual ? value : 1.0 - value;
  }
  return explanation;
}

}  // namespace revelio::explain
