#include "explain/gradcam.h"

#include <algorithm>

#include "tensor/ops.h"

namespace revelio::explain {

Explanation GradCamExplainer::ExplainImpl(const ExplanationTask& task, Objective objective) {
  (void)objective;  // Grad-CAM has a single importance notion.
  const gnn::GnnModel& model = *task.model;
  const gnn::LayerEdgeSet edges = gnn::BuildLayerEdges(*task.graph);
  // Differentiate through a feature clone rather than the model weights, so
  // the pass works against frozen models and never touches shared weight
  // grad buffers (required for concurrent per-instance explanation).
  const tensor::Tensor features = CloneFeatures(task).WithRequiresGrad();
  const auto forward = model.Run(*task.graph, edges, features, {});

  // Gradient of the explained logit w.r.t. the final node embeddings.
  tensor::Tensor target_logit =
      tensor::Select(forward.logits, task.logit_row(), task.target_class);
  target_logit.Backward();
  const tensor::Tensor embeddings = forward.embeddings.back();
  const int num_nodes = embeddings.rows();
  const int dim = embeddings.cols();

  // Channel weights: alpha_f = mean_v d logit / d h_{v,f}.
  std::vector<double> alpha(dim, 0.0);
  for (int v = 0; v < num_nodes; ++v) {
    for (int f = 0; f < dim; ++f) alpha[f] += embeddings.GradAt(v, f);
  }
  for (auto& a : alpha) a /= num_nodes;

  // Node importance: ReLU(sum_f alpha_f * h_{v,f}).
  std::vector<double> node_scores(num_nodes, 0.0);
  for (int v = 0; v < num_nodes; ++v) {
    double acc = 0.0;
    for (int f = 0; f < dim; ++f) acc += alpha[f] * embeddings.At(v, f);
    node_scores[v] = std::max(acc, 0.0);
  }

  Explanation explanation;
  explanation.edge_scores.resize(task.graph->num_edges());
  for (int e = 0; e < task.graph->num_edges(); ++e) {
    const graph::Edge& edge = task.graph->edge(e);
    explanation.edge_scores[e] = 0.5 * (node_scores[edge.src] + node_scores[edge.dst]);
  }
  return explanation;
}

}  // namespace revelio::explain
