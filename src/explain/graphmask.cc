#include "explain/graphmask.h"

#include <numeric>

#include "nn/loss.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"

namespace revelio::explain {

using tensor::Tensor;

struct GraphMaskExplainer::LayerGates : public nn::Module {
  LayerGates(const gnn::GnnModel& model, int hidden, util::Rng* rng) {
    for (int l = 0; l < model.num_layers(); ++l) {
      const int in_dim = model.layer(l).in_dim();
      gate_mlps.push_back(std::make_unique<nn::Mlp>(std::vector<int>{2 * in_dim, hidden, 1}, rng));
      RegisterChild(gate_mlps.back().get());
    }
  }
  std::vector<std::unique_ptr<nn::Mlp>> gate_mlps;
};

GraphMaskExplainer::GraphMaskExplainer(const GraphMaskOptions& options) : options_(options) {}

GraphMaskExplainer::~GraphMaskExplainer() = default;

std::vector<Tensor> GraphMaskExplainer::LayerMasks(const LayerGates& gates,
                                                   const ExplanationTask& task,
                                                   const gnn::LayerEdgeSet& edges) const {
  // Embeddings entering each layer come from an unmasked pass (detached:
  // only the gate MLPs train).
  const auto forward = task.model->Run(*task.graph, edges, task.features, {});

  std::vector<int> srcs, dsts;
  for (int e = 0; e < edges.num_base_edges; ++e) {
    srcs.push_back(edges.src[e]);
    dsts.push_back(edges.dst[e]);
  }
  std::vector<int> base_indices(edges.num_base_edges);
  std::iota(base_indices.begin(), base_indices.end(), 0);
  std::vector<float> self_ones(edges.num_layer_edges(), 0.0f);
  for (int e = edges.num_base_edges; e < edges.num_layer_edges(); ++e) self_ones[e] = 1.0f;

  std::vector<Tensor> masks;
  for (int l = 0; l < task.model->num_layers(); ++l) {
    const Tensor h = forward.embeddings[l].Detach();
    Tensor inputs =
        tensor::ConcatCols(tensor::GatherRows(h, srcs), tensor::GatherRows(h, dsts));
    Tensor gate = tensor::Sigmoid(gates.gate_mlps[l]->Forward(inputs));
    Tensor expanded = tensor::ScatterAddRows(gate, base_indices, edges.num_layer_edges());
    masks.push_back(tensor::Add(expanded, Tensor::FromVector(self_ones)));
  }
  return masks;
}

void GraphMaskExplainer::Train(const std::vector<ExplanationTask>& tasks, Objective objective) {
  CHECK(!tasks.empty());
  util::Rng rng(options_.seed);
  auto gates = std::make_unique<LayerGates>(*tasks[0].model, options_.mlp_hidden, &rng);
  nn::Adam optimizer(gates->Parameters(), options_.learning_rate);

  for (int epoch = 0; epoch < options_.train_epochs; ++epoch) {
    for (const ExplanationTask& task : tasks) {
      const gnn::LayerEdgeSet edges = gnn::BuildLayerEdges(*task.graph);
      optimizer.ZeroGrad();
      std::vector<Tensor> masks = LayerMasks(*gates, task, edges);
      Tensor logits = task.model->Run(*task.graph, edges, task.features, masks).logits;
      Tensor loss =
          objective == Objective::kFactual
              ? nn::FactualObjective(logits, task.logit_row(), task.target_class)
              : nn::CounterfactualObjective(logits, task.logit_row(), task.target_class);
      // Sparsity over gate values (base edges only; self-loop slots are 1).
      Tensor gate_mean;
      for (const Tensor& mask : masks) {
        std::vector<int> base_indices(edges.num_base_edges);
        std::iota(base_indices.begin(), base_indices.end(), 0);
        Tensor base_part = tensor::Mean(tensor::GatherRows(mask, base_indices));
        gate_mean = gate_mean.defined() ? tensor::Add(gate_mean, base_part) : base_part;
      }
      gate_mean = tensor::MulScalar(gate_mean, 1.0f / task.model->num_layers());
      if (objective == Objective::kCounterfactual) {
        gate_mean = tensor::AddScalar(tensor::Neg(gate_mean), 1.0f);
      }
      loss = tensor::Add(loss, tensor::MulScalar(gate_mean, options_.sparsity_penalty));
      loss.Backward();
      optimizer.Step();
      loss.ReleaseTape();
    }
  }
  if (objective == Objective::kFactual) {
    factual_gates_ = std::move(gates);
  } else {
    counterfactual_gates_ = std::move(gates);
  }
}

bool GraphMaskExplainer::is_trained(Objective objective) const {
  return objective == Objective::kFactual ? factual_gates_ != nullptr
                                          : counterfactual_gates_ != nullptr;
}

Explanation GraphMaskExplainer::ExplainImpl(const ExplanationTask& task, Objective objective) {
  const LayerGates* gates =
      objective == Objective::kFactual ? factual_gates_.get() : counterfactual_gates_.get();
  CHECK(gates != nullptr) << "GraphMaskExplainer::Train must run before Explain";
  const gnn::LayerEdgeSet edges = gnn::BuildLayerEdges(*task.graph);
  const std::vector<Tensor> masks = LayerMasks(*gates, task, edges);

  Explanation explanation;
  explanation.edge_scores.assign(edges.num_base_edges, 0.0);
  for (int e = 0; e < edges.num_base_edges; ++e) {
    double total = 0.0;
    for (const Tensor& mask : masks) total += mask.At(e, 0);
    const double mean_gate = total / masks.size();
    explanation.edge_scores[e] =
        objective == Objective::kFactual ? mean_gate : 1.0 - mean_gate;
  }
  return explanation;
}

}  // namespace revelio::explain
