#ifndef REVELIO_EXPLAIN_FLOWX_H_
#define REVELIO_EXPLAIN_FLOWX_H_

// FlowX (Gui et al. 2023): message-flow explanation via sampled Shapley
// values. Stage 1 removes edges in random orders; each removal's prediction
// drop is split evenly across the message flows it newly kills, giving an
// initial flow score. Stage 2 refines the scores with mask learning (the
// same flow-to-layer-edge transformation Revelio uses, without the
// per-layer weights). Serial implementation — the paper's GPU version
// duplicates graphs to parallelize, trading memory for time (Table V note).

#include "explain/explainer.h"
#include "flow/message_flow.h"

namespace revelio::explain {

struct FlowXOptions {
  int shapley_iterations = 5;   // S in the paper's Table II
  int learning_epochs = 100;
  float learning_rate = 0.01f;
  float alpha = 0.05f;
  int64_t max_flows = 500'000;
  uint64_t seed = 29;
};

class FlowXExplainer : public Explainer {
 public:
  explicit FlowXExplainer(const FlowXOptions& options) : options_(options) {}

  std::string name() const override { return "FlowX"; }
  bool supports_counterfactual() const override { return true; }

  Explanation ExplainImpl(const ExplanationTask& task, Objective objective) override;

  // Stage-1 scores only (used by tests and the complexity bench).
  std::vector<double> SampleShapleyScores(const ExplanationTask& task,
                                          const gnn::LayerEdgeSet& edges,
                                          const flow::FlowSet& flows);

 private:
  FlowXOptions options_;
};

}  // namespace revelio::explain

#endif  // REVELIO_EXPLAIN_FLOWX_H_
