#ifndef REVELIO_EXPLAIN_GNNLRP_H_
#define REVELIO_EXPLAIN_GNNLRP_H_

// GNN-LRP (Schnake et al. 2021): higher-order explanation via relevant
// walks. The relevance of the explained logit is decomposed over message
// flows by applying epsilon-LRP backwards through the network, restricting
// the propagation at each layer to the walk's edge. Model-specific: supports
// GCN and GIN; GAT is unsupported (as in the paper's evaluation).
//
// The per-flow cost is O(L * d^2), and the method evaluates every flow
// individually — the O(|F|(|x| + L|h| + T_Phi)) row of the paper's Table II.

#include <vector>

#include "explain/explainer.h"
#include "flow/message_flow.h"

namespace revelio::explain {

struct GnnLrpOptions {
  float epsilon = 1e-6f;       // LRP epsilon stabilizer
  int64_t max_flows = 500'000;
};

class GnnLrpExplainer : public Explainer {
 public:
  explicit GnnLrpExplainer(const GnnLrpOptions& options) : options_(options) {}

  std::string name() const override { return "GNN-LRP"; }

  bool SupportsArch(gnn::GnnArch arch) const override { return arch != gnn::GnnArch::kGat; }

  Explanation ExplainImpl(const ExplanationTask& task, Objective objective) override;

  // Flow-level scores over an externally enumerated flow set (shared with
  // the top-k flow study).
  std::vector<double> ScoreFlows(const ExplanationTask& task, const gnn::LayerEdgeSet& edges,
                                 const flow::FlowSet& flows) const;

 private:
  GnnLrpOptions options_;
};

}  // namespace revelio::explain

#endif  // REVELIO_EXPLAIN_GNNLRP_H_
