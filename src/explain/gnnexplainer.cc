#include "explain/gnnexplainer.h"

#include <numeric>

#include "nn/loss.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"

namespace revelio::explain {

using tensor::Tensor;

namespace {

// Expands a sigmoid base-edge mask (E_base x 1) to the layer-edge list with
// self-loops pinned at 1 (GNNExplainer does not mask self-information).
Tensor ExpandToLayerEdges(const Tensor& base_mask, const gnn::LayerEdgeSet& edges) {
  std::vector<int> base_indices(edges.num_base_edges);
  std::iota(base_indices.begin(), base_indices.end(), 0);
  Tensor expanded = tensor::ScatterAddRows(base_mask, base_indices, edges.num_layer_edges());
  std::vector<float> self_ones(edges.num_layer_edges(), 0.0f);
  for (int e = edges.num_base_edges; e < edges.num_layer_edges(); ++e) self_ones[e] = 1.0f;
  return tensor::Add(expanded, Tensor::FromVector(self_ones));
}

}  // namespace

Explanation GnnExplainerMethod::ExplainImpl(const ExplanationTask& task, Objective objective) {
  const gnn::GnnModel& model = *task.model;
  const gnn::LayerEdgeSet edges = gnn::BuildLayerEdges(*task.graph);
  const int num_base = edges.num_base_edges;
  CHECK_GT(num_base, 0);

  util::Rng rng(options_.seed);
  Tensor mask_params = Tensor::Randn(num_base, 1, &rng);
  for (auto& v : *mask_params.mutable_values()) v *= 0.1f;
  mask_params.WithRequiresGrad();
  nn::Adam optimizer({mask_params}, options_.learning_rate);

  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    optimizer.ZeroGrad();
    Tensor base_mask = tensor::Sigmoid(mask_params);
    Tensor layer_mask = ExpandToLayerEdges(base_mask, edges);
    std::vector<Tensor> masks(model.num_layers(), layer_mask);
    Tensor logits = model.Run(*task.graph, edges, task.features, masks).logits;

    Tensor loss = objective == Objective::kFactual
                      ? nn::FactualObjective(logits, task.logit_row(), task.target_class)
                      : nn::CounterfactualObjective(logits, task.logit_row(), task.target_class);
    // Size regularizer: keep the kept-edge set small (factual) or the
    // removed-edge set small (counterfactual).
    Tensor size_term = objective == Objective::kFactual
                           ? tensor::Mean(base_mask)
                           : tensor::Mean(tensor::AddScalar(tensor::Neg(base_mask), 1.0f));
    loss = tensor::Add(loss, tensor::MulScalar(size_term, options_.size_penalty));
    // Element-wise entropy pushes masks toward binary values.
    Tensor entropy = tensor::Neg(tensor::Add(
        tensor::Mul(base_mask, tensor::Log(base_mask)),
        tensor::Mul(tensor::AddScalar(tensor::Neg(base_mask), 1.0f),
                    tensor::Log(tensor::AddScalar(tensor::Neg(base_mask), 1.0f)))));
    loss = tensor::Add(loss, tensor::MulScalar(tensor::Mean(entropy), options_.entropy_penalty));
    loss.Backward();
    optimizer.Step();
    // Each epoch's graph of intermediates goes back to the tensor pool, so
    // after the first epoch primes the size classes the loop allocates
    // nothing new.
    loss.ReleaseTape();
  }

  Explanation explanation;
  explanation.edge_scores.resize(num_base);
  Tensor final_mask = tensor::Sigmoid(mask_params);
  for (int e = 0; e < num_base; ++e) {
    const double value = final_mask.At(e, 0);
    explanation.edge_scores[e] = objective == Objective::kFactual ? value : 1.0 - value;
  }
  return explanation;
}

}  // namespace revelio::explain
