#include "explain/gnnexplainer.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <string>
#include <utility>

#include "explain/batch_runner.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "obs/audit.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "plan/plan.h"
#include "tensor/ops.h"

namespace revelio::explain {

// The mega-batch MegaBatchPlan local below shadows the plan namespace.
namespace execplan = revelio::plan;

using tensor::Tensor;

namespace {

// Expands a sigmoid base-edge mask (E_base x 1) to the layer-edge list with
// self-loops pinned at 1 (GNNExplainer does not mask self-information).
Tensor ExpandToLayerEdges(const Tensor& base_mask, const gnn::LayerEdgeSet& edges) {
  std::vector<int> base_indices(edges.num_base_edges);
  std::iota(base_indices.begin(), base_indices.end(), 0);
  Tensor expanded = tensor::ScatterAddRows(base_mask, base_indices, edges.num_layer_edges());
  std::vector<float> self_ones(edges.num_layer_edges(), 0.0f);
  for (int e = edges.num_base_edges; e < edges.num_layer_edges(); ++e) self_ones[e] = 1.0f;
  return tensor::Add(expanded, Tensor::FromVector(self_ones));
}

// Mean binary entropy (nats) of the sigmoid mask rows [begin, end), clamped
// away from {0, 1} so saturated masks stay finite. Audit-only readout.
double MeanSigmoidMaskEntropy(const Tensor& mask, int begin, int end) {
  if (end <= begin) return 0.0;
  double total = 0.0;
  for (int e = begin; e < end; ++e) {
    const double p =
        std::min(1.0 - 1e-12, std::max(1e-12, static_cast<double>(mask.At(e, 0))));
    total += -p * std::log(p) - (1.0 - p) * std::log(1.0 - p);
  }
  return total / static_cast<double>(end - begin);
}

void AppendGnnExplainerAuditConfig(obs::AuditRecord* audit, const GnnExplainerOptions& options) {
  if (audit == nullptr) return;
  audit->config.emplace_back("epochs", std::to_string(options.epochs));
  audit->config.emplace_back("learning_rate", std::to_string(options.learning_rate));
  audit->config.emplace_back("size_penalty", std::to_string(options.size_penalty));
  audit->config.emplace_back("entropy_penalty", std::to_string(options.entropy_penalty));
  audit->config.emplace_back("seed", std::to_string(options.seed));
}

}  // namespace

Explanation GnnExplainerMethod::ExplainImpl(const ExplanationTask& task, Objective objective) {
  const gnn::GnnModel& model = *task.model;
  const gnn::LayerEdgeSet edges = gnn::BuildLayerEdges(*task.graph);
  const int num_base = edges.num_base_edges;
  CHECK_GT(num_base, 0);

  util::Rng rng(options_.seed);
  Tensor mask_params = Tensor::Randn(num_base, 1, &rng);
  for (auto& v : *mask_params.mutable_values()) v *= 0.1f;
  mask_params.WithRequiresGrad();
  nn::Adam optimizer({mask_params}, options_.learning_rate);
  AppendGnnExplainerAuditConfig(obs::AuditScope::Current(), options_);

  obs::ScopedSpan optimize_span("gnnexplainer.optimize");
  // Recorded execution plan (DESIGN.md §12): epoch 0 records while running
  // eagerly; later epochs replay the tape bitwise-identically.
  const bool use_plan = execplan::ExecPlanEnabled();
  execplan::PlanSession plan_session;
  auto make_key = [&] {
    return execplan::PlanKey{{task.graph->structure_version(),
                              static_cast<uint64_t>(num_base),
                              static_cast<uint64_t>(task.features.rows()),
                              static_cast<uint64_t>(task.features.cols()),
                              static_cast<uint64_t>(task.logit_row()),
                              static_cast<uint64_t>(task.target_class),
                              static_cast<uint64_t>(objective == Objective::kFactual ? 1 : 0)}};
  };
  Tensor base_mask;
  Tensor loss;
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    optimizer.ZeroGrad();
    const bool replayed = use_plan && plan_session.Replay(make_key());
    if (!replayed) {
      {
        execplan::PlanSession::RecordScope record(use_plan ? &plan_session : nullptr);
        base_mask = tensor::Sigmoid(mask_params);
        Tensor layer_mask = ExpandToLayerEdges(base_mask, edges);
        std::vector<Tensor> masks(model.num_layers(), layer_mask);
        Tensor logits = model.Run(*task.graph, edges, task.features, masks).logits;

        loss = objective == Objective::kFactual
                   ? nn::FactualObjective(logits, task.logit_row(), task.target_class)
                   : nn::CounterfactualObjective(logits, task.logit_row(), task.target_class);
        // Size regularizer: keep the kept-edge set small (factual) or the
        // removed-edge set small (counterfactual).
        Tensor size_term = objective == Objective::kFactual
                               ? tensor::Mean(base_mask)
                               : tensor::Mean(tensor::AddScalar(tensor::Neg(base_mask), 1.0f));
        loss = tensor::Add(loss, tensor::MulScalar(size_term, options_.size_penalty));
        // Element-wise entropy pushes masks toward binary values.
        Tensor entropy = tensor::Neg(tensor::Add(
            tensor::Mul(base_mask, tensor::Log(base_mask)),
            tensor::Mul(tensor::AddScalar(tensor::Neg(base_mask), 1.0f),
                        tensor::Log(tensor::AddScalar(tensor::Neg(base_mask), 1.0f)))));
        loss =
            tensor::Add(loss, tensor::MulScalar(tensor::Mean(entropy), options_.entropy_penalty));
      }
      loss.Backward();
      if (use_plan) plan_session.Seal(loss, make_key());
    }
    optimizer.Step();
    if (obs::AuditRecord* audit = obs::AuditScope::Current()) {
      audit->loss_curve.push_back(loss.At(0, 0));
      audit->mask_entropy.push_back(MeanSigmoidMaskEntropy(base_mask, 0, num_base));
    }
    // Legacy path: each epoch's intermediates go back to the tensor pool (the
    // plan path keeps the tape pinned for replay instead).
    if (!use_plan) loss.ReleaseTape();
  }
  obs::AuditScope::AddPhase("optimize", optimize_span.ElapsedSeconds());

  Explanation explanation;
  explanation.edge_scores.resize(num_base);
  Tensor final_mask = tensor::Sigmoid(mask_params);
  for (int e = 0; e < num_base; ++e) {
    const double value = final_mask.At(e, 0);
    explanation.edge_scores[e] = objective == Objective::kFactual ? value : 1.0 - value;
  }
  return explanation;
}

std::vector<Explanation> GnnExplainerMethod::ExplainBatchImpl(
    const std::vector<const ExplanationTask*>& tasks, Objective objective) {
  CHECK(!tasks.empty());
  std::vector<Explanation> explanations;
  if (tasks.size() == 1) {
    explanations.push_back(ExplainImpl(*tasks[0], objective));
    return explanations;
  }
  util::StatusOr<MegaBatchPlan> plan_or = BuildMegaBatchPlan(tasks);
  if (!plan_or.ok()) {
    // Heterogeneous or malformed group: sequential fallback.
    explanations.reserve(tasks.size());
    for (size_t i = 0; i < tasks.size(); ++i) {
      obs::AuditScope::SetInstanceBase(i);
      explanations.push_back(ExplainImpl(*tasks[i], objective));
    }
    obs::AuditScope::SetInstanceBase(0);
    return explanations;
  }
  for (size_t i = 0; i < tasks.size(); ++i) {
    AppendGnnExplainerAuditConfig(obs::AuditScope::Current(i), options_);
  }
  const MegaBatchPlan& plan = plan_or.value();
  const gnn::GnnModel& model = *tasks[0]->model;
  const int num_layers = model.num_layers();
  const int num_instances = plan.num_instances;
  const int total_mask_rows = plan.num_mask_rows();

  // Concatenated base-edge mask parameters: instance i owns the contiguous
  // segment [base_offset[i], base_offset[i+1]), initialized from its own
  // fresh Rng(seed) — the sequential draws exactly.
  std::vector<int> base_offset(num_instances + 1, 0);
  for (int i = 0; i < num_instances; ++i) {
    const int num_base = plan.instance_base_edges(i);
    CHECK_GT(num_base, 0);
    base_offset[i + 1] = base_offset[i] + num_base;
  }
  const int total_base = base_offset[num_instances];

  Tensor mask_params = Tensor::Zeros(total_base, 1);
  {
    std::vector<float>* values = mask_params.mutable_values();
    for (int i = 0; i < num_instances; ++i) {
      util::Rng rng(options_.seed);
      Tensor init = Tensor::Randn(plan.instance_base_edges(i), 1, &rng);
      const auto& src = init.values();
      for (size_t k = 0; k < src.size(); ++k) {
        (*values)[static_cast<size_t>(base_offset[i]) + k] = src[k] * 0.1f;
      }
    }
  }
  mask_params.WithRequiresGrad();
  nn::Adam optimizer({mask_params}, options_.learning_rate);

  // The concatenated base-edge parameter order IS the mega base-edge order
  // (both are instance-major prefix sums of instance_base_edges), so the
  // layer mask is built directly in mega layer-edge rows: an identity
  // scatter places the base masks in the mega base section and every row of
  // the mega self-loop section [total_base, total_mask_rows) is pinned at 1.
  // No per-epoch pack permutation is needed.
  std::vector<int> base_to_mask_row(total_base);
  std::iota(base_to_mask_row.begin(), base_to_mask_row.end(), 0);
  std::vector<int> base_seg(total_base);
  std::vector<float> self_ones(total_mask_rows, 0.0f);
  for (int r = total_base; r < total_mask_rows; ++r) self_ones[r] = 1.0f;
  std::vector<float> inv_base(num_instances);
  std::vector<int> target_classes(num_instances);
  for (int i = 0; i < num_instances; ++i) {
    const int num_base = plan.instance_base_edges(i);
    for (int e = 0; e < num_base; ++e) base_seg[base_offset[i] + e] = i;
    inv_base[i] = 1.0f / static_cast<float>(num_base);
    target_classes[i] = tasks[i]->target_class;
  }
  const Tensor inv_base_vec = Tensor::FromData(num_instances, 1, std::move(inv_base));
  const std::vector<int>* node_to_graph = plan.node_task ? nullptr : &plan.batch.node_to_graph;
  static obs::Counter* steps = obs::MetricsRegistry::Global().GetCounter("megabatch.steps");

  obs::ScopedSpan optimize_span("gnnexplainer.optimize");
  // Recorded execution plan over the fused step; the key folds in every
  // instance's graph stamp so membership or shape changes force a re-record.
  const bool use_plan = execplan::ExecPlanEnabled();
  execplan::PlanSession plan_session;
  auto make_key = [&] {
    execplan::PlanKey key;
    key.parts = {static_cast<uint64_t>(num_instances), static_cast<uint64_t>(total_base),
                 static_cast<uint64_t>(total_mask_rows), static_cast<uint64_t>(num_layers),
                 static_cast<uint64_t>(objective == Objective::kFactual ? 1 : 0)};
    for (int i = 0; i < num_instances; ++i) {
      key.parts.push_back(tasks[i]->graph->structure_version());
    }
    return key;
  };
  Tensor base_mask;
  Tensor p;
  Tensor size_term;
  Tensor entropy_term;
  Tensor loss;
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    optimizer.ZeroGrad();
    const bool replayed = use_plan && plan_session.Replay(make_key());
    if (!replayed) {
      {
        execplan::PlanSession::RecordScope record(use_plan ? &plan_session : nullptr);
        base_mask = tensor::Sigmoid(mask_params);
        Tensor layer_mask =
            tensor::Add(tensor::ScatterAddRows(base_mask, base_to_mask_row, total_mask_rows),
                        Tensor::FromVector(self_ones));
        std::vector<Tensor> masks(num_layers, layer_mask);
        Tensor logits =
            model.Run(plan.batch.graph, plan.mega_edges, plan.batch.features, masks, node_to_graph,
                      num_instances)
                .logits;

        // One shared row-softmax; each instance reads its own logits row. One
        // gather then reads every instance's explained probability; the
        // elementwise Log/Neg chain applies the same per-row float math as the
        // sequential 1x1 ops, and Sum's backward seeds each row with exactly 1.
        Tensor probs = tensor::RowSoftmax(logits);
        p = tensor::SelectMany(probs, plan.logit_row, target_classes);
        loss =
            tensor::Sum(objective == Objective::kFactual
                            ? tensor::Neg(tensor::Log(p))
                            : tensor::Neg(tensor::Log(tensor::AddScalar(tensor::Neg(p), 1.0f))));
        // Per-instance size and entropy means via segment sums over the
        // contiguous parameter segments (bitwise-equal to per-instance Mean).
        Tensor size_source = objective == Objective::kFactual
                                 ? base_mask
                                 : tensor::AddScalar(tensor::Neg(base_mask), 1.0f);
        size_term = tensor::Mul(
            tensor::SegmentSumRows(size_source, base_seg, num_instances), inv_base_vec);
        loss = tensor::Add(
            loss, tensor::Sum(tensor::MulScalar(size_term, options_.size_penalty)));
        Tensor entropy = tensor::Neg(tensor::Add(
            tensor::Mul(base_mask, tensor::Log(base_mask)),
            tensor::Mul(tensor::AddScalar(tensor::Neg(base_mask), 1.0f),
                        tensor::Log(tensor::AddScalar(tensor::Neg(base_mask), 1.0f)))));
        entropy_term = tensor::Mul(
            tensor::SegmentSumRows(entropy, base_seg, num_instances), inv_base_vec);
        loss = tensor::Add(
            loss, tensor::Sum(tensor::MulScalar(entropy_term, options_.entropy_penalty)));
      }
      loss.Backward();
      if (use_plan) plan_session.Seal(loss, make_key());
    }
    optimizer.Step();
    steps->Increment();
    if (obs::AuditScope::Current() != nullptr) {
      // Per-instance attribution inside the fused step: instance i's loss
      // reads back from its own probability and segment-mean rows, its
      // entropy from its contiguous base-edge mask segment.
      for (int i = 0; i < num_instances; ++i) {
        obs::AuditRecord* audit = obs::AuditScope::Current(i);
        if (audit == nullptr) continue;
        const double pi =
            std::min(1.0 - 1e-12, std::max(1e-12, static_cast<double>(p.At(i, 0))));
        const double objective_i =
            objective == Objective::kFactual ? -std::log(pi) : -std::log(1.0 - pi);
        audit->loss_curve.push_back(objective_i +
                                    options_.size_penalty * size_term.At(i, 0) +
                                    options_.entropy_penalty * entropy_term.At(i, 0));
        audit->mask_entropy.push_back(
            MeanSigmoidMaskEntropy(base_mask, base_offset[i], base_offset[i + 1]));
      }
    }
    if (!use_plan) loss.ReleaseTape();
  }
  obs::AuditScope::AddPhaseAll("optimize", optimize_span.ElapsedSeconds());

  explanations.resize(num_instances);
  Tensor final_mask = tensor::Sigmoid(mask_params);
  for (int i = 0; i < num_instances; ++i) {
    const int num_base = plan.instance_base_edges(i);
    explanations[i].edge_scores.resize(num_base);
    for (int e = 0; e < num_base; ++e) {
      const double value = final_mask.At(base_offset[i] + e, 0);
      explanations[i].edge_scores[e] = objective == Objective::kFactual ? value : 1.0 - value;
    }
  }
  return explanations;
}

}  // namespace revelio::explain
