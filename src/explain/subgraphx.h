#ifndef REVELIO_EXPLAIN_SUBGRAPHX_H_
#define REVELIO_EXPLAIN_SUBGRAPHX_H_

// SubgraphX (Yuan et al. 2021): Monte-Carlo tree search over node-pruned
// subgraphs, scoring candidate subgraphs with a sampled Shapley value
// (prediction with the subgraph's coalition vs without). Deliberately the
// most expensive method in the suite — its role in the paper's Table V is
// the runtime upper bound, and the implementation keeps that profile with a
// bounded iteration budget.

#include "explain/explainer.h"
#include "util/rng.h"

namespace revelio::explain {

struct SubgraphXOptions {
  int mcts_iterations = 30;
  int min_subgraph_nodes = 5;
  int shapley_samples = 10;   // coalition samples per leaf evaluation
  double exploration = 5.0;   // UCT constant
  uint64_t seed = 23;
};

class SubgraphXExplainer : public Explainer {
 public:
  explicit SubgraphXExplainer(const SubgraphXOptions& options) : options_(options) {}

  std::string name() const override { return "SubgraphX"; }

  Explanation ExplainImpl(const ExplanationTask& task, Objective objective) override;

 private:
  SubgraphXOptions options_;
};

}  // namespace revelio::explain

#endif  // REVELIO_EXPLAIN_SUBGRAPHX_H_
