#ifndef REVELIO_EXPLAIN_PGEXPLAINER_H_
#define REVELIO_EXPLAIN_PGEXPLAINER_H_

// PGExplainer (Luo et al. 2020): a group-level method. A shared MLP maps the
// pretrained model's final node embeddings of an edge's endpoints (plus the
// target node's embedding for node tasks) to an edge importance logit. The
// MLP is trained once over a set of instances; per-instance explanation is a
// single inference pass (hence the paper's "training (inference)" split in
// Table V). This implementation uses the deterministic sigmoid relaxation of
// the concrete distribution.

#include <memory>
#include <vector>

#include "explain/explainer.h"
#include "nn/linear.h"

namespace revelio::explain {

struct PgExplainerOptions {
  int train_epochs = 20;          // epochs over the training instances
  float learning_rate = 0.003f;   // paper setup: 3e-3
  float size_penalty = 0.05f;
  int mlp_hidden = 64;
  uint64_t seed = 13;
};

class PgExplainer : public Explainer {
 public:
  explicit PgExplainer(const PgExplainerOptions& options);
  ~PgExplainer() override;  // out-of-line: GateNet is incomplete here

  std::string name() const override { return "PGExplainer"; }
  bool supports_counterfactual() const override { return true; }

  // Amortized training over a group of instances; must be called before
  // Explain. Objectives are trained separately (one gate MLP each).
  void Train(const std::vector<ExplanationTask>& tasks, Objective objective);

  bool is_trained(Objective objective) const;
  double last_train_seconds(Objective objective) const;

  Explanation ExplainImpl(const ExplanationTask& task, Objective objective) override;

 private:
  struct GateNet;  // MLP over edge-endpoint (and target) embeddings

  // Edge logits (E_base x 1, differentiable through the gate net only).
  tensor::Tensor EdgeLogits(const GateNet& net, const ExplanationTask& task,
                            const gnn::LayerEdgeSet& edges) const;

  PgExplainerOptions options_;
  std::unique_ptr<GateNet> factual_net_;
  std::unique_ptr<GateNet> counterfactual_net_;
  double factual_train_seconds_ = 0.0;
  double counterfactual_train_seconds_ = 0.0;
};

}  // namespace revelio::explain

#endif  // REVELIO_EXPLAIN_PGEXPLAINER_H_
