#include "explain/flowx.h"

#include <algorithm>
#include <cmath>

#include "flow/flow_scores.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "obs/trace.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace revelio::explain {

using tensor::Tensor;

namespace {

// Probability of the target class with the given 0/1 base-edge keep vector
// (masks applied at every layer; self-loops always kept).
double MaskedProbability(const ExplanationTask& task, const gnn::LayerEdgeSet& edges,
                         const std::vector<char>& edge_kept) {
  std::vector<float> mask_values(edges.num_layer_edges(), 1.0f);
  for (int e = 0; e < edges.num_base_edges; ++e) {
    mask_values[e] = edge_kept[e] ? 1.0f : 0.0f;
  }
  Tensor mask = Tensor::FromVector(mask_values);
  std::vector<Tensor> masks(task.model->num_layers(), mask);
  const Tensor logits = task.model->Run(*task.graph, edges, task.features, masks).logits;
  return nn::SoftmaxRow(logits, task.logit_row())[task.target_class];
}

}  // namespace

std::vector<double> FlowXExplainer::SampleShapleyScores(const ExplanationTask& task,
                                                        const gnn::LayerEdgeSet& edges,
                                                        const flow::FlowSet& flows) {
  util::Rng rng(options_.seed);
  const int num_base = edges.num_base_edges;
  std::vector<double> scores(flows.num_flows(), 0.0);

  // Flows using base edge e at any layer.
  std::vector<std::vector<int>> flows_using_edge(num_base);
  for (int l = 0; l < flows.num_layers(); ++l) {
    for (int k = 0; k < flows.num_flows(); ++k) {
      const int e = flows.EdgeAt(l, k);
      if (e < num_base) flows_using_edge[e].push_back(k);
    }
  }

  std::vector<int> order(num_base);
  for (int e = 0; e < num_base; ++e) order[e] = e;

  for (int iteration = 0; iteration < options_.shapley_iterations; ++iteration) {
    rng.Shuffle(&order);
    std::vector<char> kept(num_base, 1);
    std::vector<char> killed(flows.num_flows(), 0);
    double previous = MaskedProbability(task, edges, kept);
    for (int e : order) {
      kept[e] = 0;
      const double current = MaskedProbability(task, edges, kept);
      const double drop = previous - current;
      // Flows newly killed by this removal share the marginal contribution.
      std::vector<int> newly_killed;
      for (int k : flows_using_edge[e]) {
        if (!killed[k]) {
          killed[k] = 1;
          newly_killed.push_back(k);
        }
      }
      if (!newly_killed.empty()) {
        const double share = drop / newly_killed.size();
        for (int k : newly_killed) scores[k] += share;
      }
      previous = current;
    }
  }
  for (auto& s : scores) s /= options_.shapley_iterations;
  return scores;
}

Explanation FlowXExplainer::ExplainImpl(const ExplanationTask& task, Objective objective) {
  const gnn::LayerEdgeSet edges = gnn::BuildLayerEdges(*task.graph);
  const int num_layers = task.model->num_layers();
  flow::FlowSet flows = [&] {
    obs::ScopedSpan span("flowx.enumerate");
    return task.is_node_task()
               ? flow::EnumerateFlowsToTarget(edges, task.target_node, num_layers,
                                              options_.max_flows)
               : flow::EnumerateAllFlows(edges, num_layers, options_.max_flows);
  }();

  // Stage 1: sampled Shapley initialization.
  std::vector<double> initial = [&] {
    obs::ScopedSpan span("flowx.shapley_init");
    return SampleShapleyScores(task, edges, flows);
  }();
  double max_magnitude = 1e-9;
  for (double s : initial) max_magnitude = std::max(max_magnitude, std::fabs(s));

  // Stage 2: learning refinement. Flow mask parameters start at
  // atanh(score / (2 * max|score|)) so stage-1 ordering seeds the learning.
  std::vector<float> init_params(flows.num_flows());
  for (int k = 0; k < flows.num_flows(); ++k) {
    init_params[k] = std::atanh(static_cast<float>(initial[k] / (2.0 * max_magnitude)));
  }
  Tensor flow_params = Tensor::FromVector(init_params).WithRequiresGrad();
  nn::Adam optimizer({flow_params}, options_.learning_rate);

  obs::ScopedSpan learn_span("flowx.learn");
  for (int epoch = 0; epoch < options_.learning_epochs; ++epoch) {
    optimizer.ZeroGrad();
    Tensor omega = tensor::Tanh(flow_params);
    std::vector<Tensor> masks;
    masks.reserve(num_layers);
    Tensor mask_mean;
    for (int l = 0; l < num_layers; ++l) {
      Tensor accumulated =
          tensor::ScatterAddRows(omega, flows.EdgesAtLayer(l), flows.num_layer_edges());
      Tensor mask = tensor::Sigmoid(accumulated);
      masks.push_back(mask);
      const std::vector<int> used = flows.UsedEdgesAtLayer(l);
      if (!used.empty()) {
        Tensor layer_mean = tensor::Mean(tensor::GatherRows(mask, used));
        mask_mean = mask_mean.defined() ? tensor::Add(mask_mean, layer_mean) : layer_mean;
      }
    }
    mask_mean = tensor::MulScalar(mask_mean, 1.0f / num_layers);
    Tensor logits = task.model->Run(*task.graph, edges, task.features, masks).logits;
    Tensor loss = objective == Objective::kFactual
                      ? nn::FactualObjective(logits, task.logit_row(), task.target_class)
                      : nn::CounterfactualObjective(logits, task.logit_row(), task.target_class);
    if (objective == Objective::kCounterfactual) {
      mask_mean = tensor::AddScalar(tensor::Neg(mask_mean), 1.0f);
    }
    loss = tensor::Add(loss, tensor::MulScalar(mask_mean, options_.alpha));
    loss.Backward();
    optimizer.Step();
    loss.ReleaseTape();
  }

  Explanation explanation;
  explanation.has_flow_scores = true;
  explanation.flow_scores.resize(flows.num_flows());
  Tensor omega = tensor::Tanh(flow_params);
  const double sign = objective == Objective::kCounterfactual ? -1.0 : 1.0;
  for (int k = 0; k < flows.num_flows(); ++k) {
    explanation.flow_scores[k] = sign * omega.At(k, 0);
  }
  // Translate flow scores into per-layer sigmoid masks, then edge scores.
  std::vector<std::vector<double>> layer_scores(
      num_layers, std::vector<double>(edges.num_layer_edges(), 0.0));
  for (int l = 0; l < num_layers; ++l) {
    Tensor accumulated =
        tensor::ScatterAddRows(omega.Detach(), flows.EdgesAtLayer(l), flows.num_layer_edges());
    for (int e = 0; e < edges.num_layer_edges(); ++e) {
      const double value = 1.0 / (1.0 + std::exp(-accumulated.At(e, 0)));
      layer_scores[l][e] = objective == Objective::kCounterfactual ? 1.0 - value : value;
    }
  }
  explanation.edge_scores = flow::LayerEdgeScoresToEdgeScores(flows, edges, layer_scores);
  return explanation;
}

}  // namespace revelio::explain
