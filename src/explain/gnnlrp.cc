#include "explain/gnnlrp.h"

#include <cmath>

#include "flow/flow_scores.h"
#include "nn/loss.h"
#include "tensor/ops.h"

namespace revelio::explain {
namespace {

using tensor::Tensor;

float Stabilize(float value, float epsilon) {
  return value >= 0.0f ? value + epsilon : value - epsilon;
}

// Cached activations needed to propagate relevance through one instance.
struct LrpTrace {
  // Per layer l (0-based): input activations h^{l-1} and, depending on the
  // architecture, the intermediate stages.
  std::vector<Tensor> inputs;          // h^0 .. h^{L-1}
  std::vector<Tensor> gcn_pre;         // GCN: z^l (pre-activation)
  std::vector<Tensor> gin_aggregate;   // GIN: aggregated sum entering the MLP
  std::vector<Tensor> gin_hidden;      // GIN: ReLU(agg W1 + b1)
  std::vector<Tensor> gin_pre;         // GIN: layer output pre-activation
  Tensor final_embeddings;             // h^L (input to the head)
  Tensor logits;
};

LrpTrace BuildTrace(const ExplanationTask& task, const gnn::LayerEdgeSet& edges) {
  const gnn::GnnModel& model = *task.model;
  LrpTrace trace;
  Tensor h = task.features;
  for (int l = 0; l < model.num_layers(); ++l) {
    trace.inputs.push_back(h);
    Tensor pre = model.layer(l).Forward(*task.graph, edges, h, Tensor());
    if (model.config().arch == gnn::GnnArch::kGcn) {
      trace.gcn_pre.push_back(pre);
      trace.gin_aggregate.emplace_back();
      trace.gin_hidden.emplace_back();
      trace.gin_pre.emplace_back();
    } else {
      // Recompute the GIN layer's internal stages.
      const auto& layer = static_cast<const gnn::GinLayer&>(model.layer(l));
      std::vector<float> coefficients(edges.num_layer_edges(), 1.0f);
      for (int e = edges.num_base_edges; e < edges.num_layer_edges(); ++e) {
        coefficients[e] = 1.0f + layer.eps();
      }
      Tensor messages = tensor::RowScale(tensor::GatherRows(h, edges.src),
                                         Tensor::FromVector(coefficients));
      Tensor aggregated = tensor::ScatterAddRows(messages, edges.dst, edges.num_nodes);
      Tensor hidden = tensor::Relu(layer.mlp_first().Forward(aggregated));
      trace.gcn_pre.emplace_back();
      trace.gin_aggregate.push_back(aggregated);
      trace.gin_hidden.push_back(hidden);
      trace.gin_pre.push_back(layer.mlp_second().Forward(hidden));
    }
    h = pre;
    if (l + 1 < model.num_layers()) h = tensor::Relu(h);
  }
  trace.final_embeddings = h;
  trace.logits = model.Run(*task.graph, edges, task.features, {}).logits;
  return trace;
}

// Epsilon-LRP through a dense layer y = x W + b at one "row" (node): given
// relevance over y, returns relevance over x.
std::vector<double> LrpThroughLinear(const std::vector<double>& relevance_out,
                                     const Tensor& weight, const Tensor& pre_activation,
                                     int row, const std::vector<float>& input_row,
                                     float epsilon) {
  const int in_dim = weight.rows();
  const int out_dim = weight.cols();
  std::vector<double> relevance_in(in_dim, 0.0);
  for (int g = 0; g < out_dim; ++g) {
    if (relevance_out[g] == 0.0) continue;
    const float denom = Stabilize(pre_activation.At(row, g), epsilon);
    const double share = relevance_out[g] / denom;
    for (int f = 0; f < in_dim; ++f) {
      relevance_in[f] += input_row[f] * weight.At(f, g) * share;
    }
  }
  return relevance_in;
}

}  // namespace

std::vector<double> GnnLrpExplainer::ScoreFlows(const ExplanationTask& task,
                                                const gnn::LayerEdgeSet& edges,
                                                const flow::FlowSet& flows) const {
  const gnn::GnnModel& model = *task.model;
  CHECK(SupportsArch(model.config().arch)) << "GNN-LRP does not support GAT";
  const int num_layers = model.num_layers();
  const float epsilon = options_.epsilon;
  const LrpTrace trace = BuildTrace(task, edges);

  // Head relevance: decompose the explained logit over h^L features of the
  // flow's terminal node. For graph tasks the mean-pool contributes 1/N.
  const nn::Linear& head = model.head();
  const int hidden = trace.final_embeddings.cols();
  const int num_nodes = task.graph->num_nodes();
  const double logit = trace.logits.At(task.logit_row(), task.target_class);
  const double pool_weight = task.is_node_task() ? 1.0 : 1.0 / num_nodes;

  // Precompute the GCN coefficients once (respecting the layer's
  // normalization setting; all layers share it).
  std::vector<float> gcn_coefficients;
  if (model.config().arch == gnn::GnnArch::kGcn) {
    gcn_coefficients =
        static_cast<const gnn::GcnLayer&>(model.layer(0)).Coefficients(*task.graph, edges);
  }

  std::vector<double> scores(flows.num_flows(), 0.0);
  std::vector<float> input_row;
  for (int k = 0; k < flows.num_flows(); ++k) {
    const std::vector<int> nodes = flows.FlowNodes(k, edges);
    const int terminal = nodes[num_layers];

    // Relevance over the terminal node's final embedding.
    std::vector<double> relevance(hidden, 0.0);
    {
      const float denom = Stabilize(static_cast<float>(logit), epsilon);
      for (int g = 0; g < hidden; ++g) {
        relevance[g] = trace.final_embeddings.At(terminal, g) * pool_weight *
                       head.weight().At(g, task.target_class) * logit / denom;
      }
    }

    // Walk backwards through the layers along the flow's edges.
    for (int l = num_layers - 1; l >= 0; --l) {
      const int node_in = nodes[l];
      const int node_out = nodes[l + 1];
      const int layer_edge = flows.EdgeAt(l, k);
      const Tensor& h_in = trace.inputs[l];
      const int in_dim = h_in.cols();

      if (model.config().arch == gnn::GnnArch::kGcn) {
        const auto& layer = static_cast<const gnn::GcnLayer&>(model.layer(l));
        const Tensor& weight = layer.linear().weight();
        const float coefficient = gcn_coefficients[layer_edge];
        std::vector<double> relevance_in(in_dim, 0.0);
        for (int g = 0; g < weight.cols(); ++g) {
          if (relevance[g] == 0.0) continue;
          const float denom = Stabilize(trace.gcn_pre[l].At(node_out, g), epsilon);
          const double share = relevance[g] / denom;
          for (int f = 0; f < in_dim; ++f) {
            relevance_in[f] += coefficient * h_in.At(node_in, f) * weight.At(f, g) * share;
          }
        }
        relevance = std::move(relevance_in);
      } else {
        const auto& layer = static_cast<const gnn::GinLayer&>(model.layer(l));
        // Through the MLP's second linear (inputs: hidden activations).
        input_row.assign(layer.mlp_second().in_features(), 0.0f);
        for (int f = 0; f < layer.mlp_second().in_features(); ++f) {
          input_row[f] = trace.gin_hidden[l].At(node_out, f);
        }
        std::vector<double> relevance_hidden = LrpThroughLinear(
            relevance, layer.mlp_second().weight(), trace.gin_pre[l], node_out, input_row,
            epsilon);
        // Through the first linear (inputs: the aggregated sum). The ReLU
        // between them passes relevance unchanged (LRP convention).
        input_row.assign(in_dim, 0.0f);
        for (int f = 0; f < in_dim; ++f) {
          input_row[f] = trace.gin_aggregate[l].At(node_out, f);
        }
        // Pre-activation of the first linear is not stored; its stabilized
        // denominator equals hidden before ReLU — reuse the aggregate pass.
        Tensor first_pre = layer.mlp_first().Forward(trace.gin_aggregate[l].Detach());
        std::vector<double> relevance_agg =
            LrpThroughLinear(relevance_hidden, layer.mlp_first().weight(), first_pre, node_out,
                             input_row, epsilon);
        // Through the aggregation: feature-wise split across in-edges; keep
        // only the walk's edge share.
        const float coefficient =
            edges.IsSelfLoop(layer_edge) ? 1.0f + layer.eps() : 1.0f;
        std::vector<double> relevance_in(in_dim, 0.0);
        for (int f = 0; f < in_dim; ++f) {
          if (relevance_agg[f] == 0.0) continue;
          const float denom = Stabilize(trace.gin_aggregate[l].At(node_out, f), epsilon);
          relevance_in[f] =
              coefficient * h_in.At(node_in, f) / denom * relevance_agg[f];
        }
        relevance = std::move(relevance_in);
      }
    }

    double total = 0.0;
    for (double r : relevance) total += r;
    scores[k] = total;
  }
  return scores;
}

Explanation GnnLrpExplainer::ExplainImpl(const ExplanationTask& task, Objective objective) {
  (void)objective;  // GNN-LRP's original scores serve both studies.
  const gnn::LayerEdgeSet edges = gnn::BuildLayerEdges(*task.graph);
  flow::FlowSet flows =
      task.is_node_task()
          ? flow::EnumerateFlowsToTarget(edges, task.target_node, task.model->num_layers(),
                                         options_.max_flows)
          : flow::EnumerateAllFlows(edges, task.model->num_layers(), options_.max_flows);
  Explanation explanation;
  explanation.flow_scores = ScoreFlows(task, edges, flows);
  explanation.has_flow_scores = true;
  // Edge ranking uses relevance magnitude: LRP relevances are signed
  // (negative = contradicts the class), but an edge carrying strongly
  // negative relevance is still important to the prediction.
  std::vector<double> magnitudes(explanation.flow_scores.size());
  for (size_t k = 0; k < magnitudes.size(); ++k) {
    magnitudes[k] = std::fabs(explanation.flow_scores[k]);
  }
  const auto layer_scores = flow::FlowScoresToLayerEdgeScores(flows, magnitudes);
  explanation.edge_scores = flow::LayerEdgeScoresToEdgeScores(flows, edges, layer_scores);
  return explanation;
}

}  // namespace revelio::explain
