#ifndef REVELIO_EXPLAIN_GRAPHMASK_H_
#define REVELIO_EXPLAIN_GRAPHMASK_H_

// GraphMask (Schlichtkrull et al. 2021): per-layer differentiable gates. A
// gate MLP per GNN layer maps the endpoint embeddings entering that layer to
// a keep-probability for each edge, trained amortized over a group of
// instances with a sparsity penalty. Simplification vs. the original (noted
// in DESIGN.md): hard-concrete sampling and the learned baseline message are
// replaced by a deterministic sigmoid gate that multiplies the message —
// i.e. the shared Eq. 6 mask hook.

#include <memory>
#include <vector>

#include "explain/explainer.h"
#include "nn/linear.h"

namespace revelio::explain {

struct GraphMaskOptions {
  int train_epochs = 10;          // paper setup: 200 epochs, lr 1e-2
  float learning_rate = 0.01f;
  float sparsity_penalty = 0.05f;
  int mlp_hidden = 32;
  uint64_t seed = 17;
};

class GraphMaskExplainer : public Explainer {
 public:
  explicit GraphMaskExplainer(const GraphMaskOptions& options);
  ~GraphMaskExplainer() override;

  std::string name() const override { return "GraphMask"; }
  bool supports_counterfactual() const override { return true; }

  void Train(const std::vector<ExplanationTask>& tasks, Objective objective);
  bool is_trained(Objective objective) const;

  Explanation ExplainImpl(const ExplanationTask& task, Objective objective) override;

 private:
  struct LayerGates;

  // Per-layer gate tensors over layer edges (self-loops pinned to 1).
  std::vector<tensor::Tensor> LayerMasks(const LayerGates& gates, const ExplanationTask& task,
                                         const gnn::LayerEdgeSet& edges) const;

  GraphMaskOptions options_;
  std::unique_ptr<LayerGates> factual_gates_;
  std::unique_ptr<LayerGates> counterfactual_gates_;
};

}  // namespace revelio::explain

#endif  // REVELIO_EXPLAIN_GRAPHMASK_H_
