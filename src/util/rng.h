#ifndef REVELIO_UTIL_RNG_H_
#define REVELIO_UTIL_RNG_H_

// Deterministic pseudo-random number generator used throughout Revelio.
// Every stochastic component (dataset generation, parameter init, sampling
// explainers) takes an explicit Rng or seed so experiments are reproducible.

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace revelio::util {

// xoshiro256** generator seeded via SplitMix64. Not cryptographic.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Uniform random 64-bit value.
  uint64_t NextUint64();

  // Uniform in [0, 1).
  double Uniform();

  // Uniform in [lo, hi).
  double Uniform(double lo, double hi);

  // Uniform integer in [0, n). Requires n > 0.
  int UniformInt(int n);

  // Standard normal via Box-Muller.
  double Normal();

  // Normal with the given mean / stddev.
  double Normal(double mean, double stddev);

  // True with probability p.
  bool Bernoulli(double p);

  // Samples an index in [0, weights.size()) proportionally to weights.
  // Requires at least one strictly positive weight.
  int WeightedIndex(const std::vector<double>& weights);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    for (int i = static_cast<int>(values->size()) - 1; i > 0; --i) {
      int j = UniformInt(i + 1);
      std::swap((*values)[i], (*values)[j]);
    }
  }

  // Samples k distinct indices from [0, n) without replacement (k <= n).
  std::vector<int> SampleWithoutReplacement(int n, int k);

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace revelio::util

#endif  // REVELIO_UTIL_RNG_H_
