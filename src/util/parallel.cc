#include "util/parallel.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"

namespace revelio::util {

namespace {

constexpr int kMaxThreads = 256;

thread_local bool tls_in_parallel_region = false;

// 0 = not yet resolved.
std::atomic<int> g_num_threads{0};

int ResolveDefaultThreads() {
  if (const char* env = std::getenv("REVELIO_NUM_THREADS")) {
    const int parsed = std::atoi(env);
    if (parsed >= 1) return std::min(parsed, kMaxThreads);
  }
  return HardwareThreads();
}

// Lazily-started worker pool. The singleton is intentionally leaked: workers
// block on the queue forever and die with the process, which avoids static
// destruction racing against late tasks.
class ThreadPool {
 public:
  static ThreadPool& Global() {
    static ThreadPool* pool = new ThreadPool();
    return *pool;
  }

  void EnsureWorkers(int count) {
    std::lock_guard<std::mutex> lock(mu_);
    while (static_cast<int>(workers_.size()) < count) {
      workers_.emplace_back([this] { WorkerLoop(); });
      workers_.back().detach();
    }
  }

  void Submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push_back(std::move(task));
    }
    cv_.notify_one();
  }

 private:
  void WorkerLoop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return !queue_.empty(); });
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
};

// One ParallelFor invocation. Heap-shared so helper tasks that wake after
// the caller has already returned still touch live memory.
struct Region {
  const std::function<void(int64_t, int64_t)>* fn = nullptr;
  std::vector<std::pair<int64_t, int64_t>> chunks;
  std::atomic<size_t> next_chunk{0};
  std::atomic<int> remaining_chunks{0};
  std::mutex mu;
  std::condition_variable done;
};

obs::Counter* WorkerBusyCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("parallel.worker_busy_us");
  return counter;
}

void RunChunks(const std::shared_ptr<Region>& region) {
  obs::ScopedSpan span("ParallelFor.worker", obs::FlightPolicy::kSkip);
  const bool prev = tls_in_parallel_region;
  tls_in_parallel_region = true;
  for (;;) {
    const size_t i = region->next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (i >= region->chunks.size()) break;
    (*region->fn)(region->chunks[i].first, region->chunks[i].second);
    if (region->remaining_chunks.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(region->mu);
      region->done.notify_all();
    }
  }
  tls_in_parallel_region = prev;
  if (obs::Enabled()) {
    WorkerBusyCounter()->Add(static_cast<uint64_t>(span.ElapsedSeconds() * 1e6));
  }
}

}  // namespace

int NumThreads() {
  int n = g_num_threads.load(std::memory_order_relaxed);
  if (n == 0) {
    int expected = 0;
    g_num_threads.compare_exchange_strong(expected, ResolveDefaultThreads());
    n = g_num_threads.load(std::memory_order_relaxed);
  }
  return n;
}

void SetNumThreads(int n) {
  CHECK_GE(n, 1) << "SetNumThreads requires n >= 1";
  g_num_threads.store(std::min(n, kMaxThreads), std::memory_order_relaxed);
}

int HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

bool InParallelRegion() { return tls_in_parallel_region; }

void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn) {
  if (end <= begin) return;
  if (grain < 1) grain = 1;
  const int64_t range = end - begin;
  const int64_t max_chunks = (range + grain - 1) / grain;
  const int num_chunks =
      static_cast<int>(std::min<int64_t>(NumThreads(), max_chunks));
  if (num_chunks <= 1 || tls_in_parallel_region) {
    // Serial fallback. Still marks the region so kernels called from fn do
    // not try to parallelize underneath a serial decision.
    static obs::Counter* serial_fallbacks =
        obs::MetricsRegistry::Global().GetCounter("parallel.serial_fallback");
    serial_fallbacks->Increment();
    const bool prev = tls_in_parallel_region;
    tls_in_parallel_region = true;
    {
      // The degenerate one-task execution; traced under the same span name
      // as pool tasks so profiles cover both paths.
      obs::ScopedSpan span("ParallelFor.worker", obs::FlightPolicy::kSkip);
      fn(begin, end);
      if (obs::Enabled()) {
        WorkerBusyCounter()->Add(static_cast<uint64_t>(span.ElapsedSeconds() * 1e6));
      }
    }
    tls_in_parallel_region = prev;
    return;
  }

  static obs::Counter* dispatches =
      obs::MetricsRegistry::Global().GetCounter("parallel.dispatches");
  static obs::Counter* tasks_dispatched =
      obs::MetricsRegistry::Global().GetCounter("parallel.tasks_dispatched");
  dispatches->Increment();
  tasks_dispatched->Add(static_cast<uint64_t>(num_chunks));

  auto region = std::make_shared<Region>();
  region->fn = &fn;
  region->chunks.reserve(num_chunks);
  // Near-equal contiguous chunks; the first `extra` chunks take one more.
  const int64_t base = range / num_chunks;
  const int64_t extra = range % num_chunks;
  int64_t cursor = begin;
  for (int c = 0; c < num_chunks; ++c) {
    const int64_t size = base + (c < extra ? 1 : 0);
    region->chunks.emplace_back(cursor, cursor + size);
    cursor += size;
  }
  region->remaining_chunks.store(num_chunks, std::memory_order_relaxed);

  ThreadPool& pool = ThreadPool::Global();
  pool.EnsureWorkers(NumThreads() - 1);
  // One helper task per chunk beyond the caller's; each loops claiming
  // whatever chunks remain, so work never waits on a particular thread.
  for (int c = 1; c < num_chunks; ++c) {
    pool.Submit([region] { RunChunks(region); });
  }
  RunChunks(region);
  std::unique_lock<std::mutex> lock(region->mu);
  region->done.wait(lock, [&region] {
    return region->remaining_chunks.load(std::memory_order_acquire) == 0;
  });
}

}  // namespace revelio::util
