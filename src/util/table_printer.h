#ifndef REVELIO_UTIL_TABLE_PRINTER_H_
#define REVELIO_UTIL_TABLE_PRINTER_H_

// Aligned console-table rendering for the benchmark harness. Bench binaries
// print the same rows/series the paper's tables and figures report.

#include <string>
#include <vector>

namespace revelio::util {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  // Appends a data row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  // Convenience: formats doubles with the given precision ("-" for NaN).
  static std::string FormatDouble(double value, int precision = 3);

  // Renders the table with column alignment and a separator under the header.
  std::string ToString() const;

  // Renders to stdout.
  void Print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Writes rows as CSV to `path` (header first). Returns false on I/O failure.
bool WriteCsv(const std::string& path, const std::vector<std::string>& header,
              const std::vector<std::vector<std::string>>& rows);

}  // namespace revelio::util

#endif  // REVELIO_UTIL_TABLE_PRINTER_H_
