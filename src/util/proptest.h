#ifndef REVELIO_UTIL_PROPTEST_H_
#define REVELIO_UTIL_PROPTEST_H_

// Minimal property-based testing framework.
//
// A property is checked against many inputs drawn from a Domain<T>: each case
// gets its own Rng seeded deterministically from (base seed, case index), so
// any failure is reproducible from the printed case seed alone. When a case
// fails, the framework greedily applies the domain's shrink candidates that
// still fail the property, and reports the shrunk counterexample together
// with the reproducing environment variables.
//
// The framework is test-framework agnostic: ForAll returns a CheckResult and
// the caller asserts on it (EXPECT_TRUE(r.ok) << r.report under GTest).
//
// Environment overrides (read by DefaultConfig):
//   REVELIO_PROP_SEED   base seed (decimal or 0x-hex); use the seed printed
//                       in a failure report to replay just that case
//   REVELIO_PROP_CASES  number of cases per property (set to 1 when replaying)

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "util/rng.h"

namespace revelio::util {

struct PropConfig {
  int num_cases = 100;
  uint64_t seed = 0x5eed5eedULL;
  // Upper bound on property evaluations spent shrinking a counterexample.
  int max_shrink_steps = 400;
  // True when REVELIO_PROP_SEED was set: the base seed is itself a case seed,
  // so cases are derived as (seed, seed+1, ...) without mixing.
  bool replay = false;
};

// Default config with environment overrides applied.
PropConfig DefaultPropConfig(int num_cases = 100, uint64_t seed = 0x5eed5eedULL);

// Deterministic per-case seed derived from the base seed (SplitMix64 mix).
uint64_t PropCaseSeed(uint64_t base_seed, int case_index);

// Formats a seed the way failure reports print it (0x-hex).
std::string FormatSeed(uint64_t seed);

// Outcome of one ForAll run. `report` is empty when ok.
struct CheckResult {
  bool ok = true;
  std::string report;
  int cases_run = 0;
  int shrink_steps = 0;
};

// --- Tolerance classes (DESIGN.md §13) ---------------------------------------
// Equivalence proofs between kernel variants declare how close "equal" is:
//   kBitwise        identical bit patterns, element by element. The contract
//                   for kernels that preserve the serial fold order exactly
//                   (elementwise ops, axpy accumulations, matmul/spmm forward).
//   kUlpBounded     within `max_ulps` representable-float steps, OR within
//                   abs_epsilon absolutely (the floor absorbs catastrophic
//                   cancellation, where a reordered sum lands near zero and
//                   ulp distance is meaningless). For deterministic
//                   reductions whose fold order differs from the serial loop
//                   (lane-partial dot products).
//   kStatedEpsilon  |a - e| <= abs_epsilon + rel_epsilon * |e|. For reduced-
//                   precision storage with a proven error model (bf16 RNE:
//                   rel 2^-8 per rounding).
enum class ToleranceClass { kBitwise, kUlpBounded, kStatedEpsilon };

struct Tolerance {
  ToleranceClass cls = ToleranceClass::kBitwise;
  int64_t max_ulps = 0;      // kUlpBounded
  double abs_epsilon = 0.0;  // kStatedEpsilon
  double rel_epsilon = 0.0;  // kStatedEpsilon

  static Tolerance Bitwise() { return {}; }
  static Tolerance Ulps(int64_t max_ulps, double abs_floor = 0.0) {
    Tolerance t;
    t.cls = ToleranceClass::kUlpBounded;
    t.max_ulps = max_ulps;
    t.abs_epsilon = abs_floor;
    return t;
  }
  static Tolerance Epsilon(double rel, double abs = 0.0) {
    Tolerance t;
    t.cls = ToleranceClass::kStatedEpsilon;
    t.rel_epsilon = rel;
    t.abs_epsilon = abs;
    return t;
  }
  // "bitwise", "ulp-bounded(<=N)" or "stated-epsilon(rel=..,abs=..)".
  std::string Name() const;
};

// Distance between a and b in representable-float steps (0 iff bitwise
// equal; INT64_MAX when exactly one is NaN, or both are NaN with different
// payloads). Adjacent finite floats — including -0.0f vs +0.0f — are 1 apart.
int64_t UlpDistance(float a, float b);

// Compares two float streams element by element under `tol`. Returns "" when
// every element passes, else a message naming the first offending index, the
// two values (bits included) and the measured distance. `label` prefixes the
// message (e.g. the op under test).
std::string CompareFloatStreams(const float* actual, const float* expected, int64_t n,
                                const Tolerance& tol, const std::string& label = "");

// A generator plus optional shrinker/printer for values of type T.
template <typename T>
struct Domain {
  // Draws one value. Must be fully deterministic in the Rng stream.
  std::function<T(Rng&)> generate;
  // Returns smaller candidates to try when `value` fails a property. May be
  // empty (no shrinking). Candidates are tried in order; the first one that
  // still fails becomes the new counterexample.
  std::function<std::vector<T>(const T&)> shrink;
  // Renders a counterexample for the failure report. May be empty.
  std::function<std::string(const T&)> describe;
};

// Checks `property` against `config.num_cases` inputs drawn from `domain`.
// The property returns an empty string on success and a failure message
// otherwise (exceptions are not used; CHECK-aborts are out of scope).
// Stops at the first failing case, shrinks it, and reports.
template <typename T>
CheckResult ForAll(const std::string& property_name, const Domain<T>& domain,
                   const std::function<std::string(const T&)>& property,
                   const PropConfig& config = DefaultPropConfig()) {
  CheckResult result;
  for (int c = 0; c < config.num_cases; ++c) {
    const uint64_t case_seed =
        config.replay ? config.seed + static_cast<uint64_t>(c) : PropCaseSeed(config.seed, c);
    Rng rng(case_seed);
    T input = domain.generate(rng);
    std::string failure = property(input);
    ++result.cases_run;
    if (failure.empty()) continue;

    // Greedy shrink: repeatedly take the first candidate that still fails.
    if (domain.shrink) {
      bool progressed = true;
      while (progressed && result.shrink_steps < config.max_shrink_steps) {
        progressed = false;
        for (T& candidate : domain.shrink(input)) {
          if (++result.shrink_steps > config.max_shrink_steps) break;
          std::string candidate_failure = property(candidate);
          if (!candidate_failure.empty()) {
            input = std::move(candidate);
            failure = std::move(candidate_failure);
            progressed = true;
            break;
          }
        }
      }
    }

    result.ok = false;
    std::string report;
    report += "[proptest] property '" + property_name + "' FAILED\n";
    report += "  case " + std::to_string(c) + " of " + std::to_string(config.num_cases) +
              ", case seed " + FormatSeed(case_seed) + "\n";
    report += "  reproduce with: REVELIO_PROP_SEED=" + FormatSeed(case_seed) +
              " REVELIO_PROP_CASES=1 <test binary>\n";
    if (result.shrink_steps > 0) {
      report += "  counterexample shrunk in " + std::to_string(result.shrink_steps) + " steps\n";
    }
    if (domain.describe) {
      report += "  counterexample: " + domain.describe(input) + "\n";
    }
    report += "  failure: " + failure;
    result.report = std::move(report);
    return result;
  }
  return result;
}

}  // namespace revelio::util

#endif  // REVELIO_UTIL_PROPTEST_H_
