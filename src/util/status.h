#ifndef REVELIO_UTIL_STATUS_H_
#define REVELIO_UTIL_STATUS_H_

// Lightweight Status / StatusOr error-handling types (RocksDB/absl idiom).
// Used for recoverable failures (I/O, parsing); programming errors use CHECK.

#include <string>
#include <utility>

#include "util/check.h"

namespace revelio::util {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
  // Serving-path codes (src/serve): admission, deadline, and lifecycle
  // failures that callers are expected to handle, not log-and-abort on.
  kAlreadyExists,       // duplicate registration (model registry)
  kResourceExhausted,   // bounded queue full — explicit admission rejection
  kDeadlineExceeded,    // request deadline expired before/while serving
  kCancelled,           // request dropped by a cancelling shutdown
  kUnavailable,         // server not running (before Start / after Shutdown)
};

// Returns a short human-readable name ("Ok", "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

// Value-semantic result of an operation that can fail.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  static Status Unimplemented(std::string message) {
    return Status(StatusCode::kUnimplemented, std::move(message));
  }
  static Status AlreadyExists(std::string message) {
    return Status(StatusCode::kAlreadyExists, std::move(message));
  }
  static Status ResourceExhausted(std::string message) {
    return Status(StatusCode::kResourceExhausted, std::move(message));
  }
  static Status DeadlineExceeded(std::string message) {
    return Status(StatusCode::kDeadlineExceeded, std::move(message));
  }
  static Status Cancelled(std::string message) {
    return Status(StatusCode::kCancelled, std::move(message));
  }
  static Status Unavailable(std::string message) {
    return Status(StatusCode::kUnavailable, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "Ok" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// Holds either a value of type T or an error Status. Accessing the value of
// a non-ok StatusOr is a fatal error.
template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : status_(Status::Ok()), value_(std::move(value)) {}  // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {                 // NOLINT
    CHECK(!status_.ok()) << "StatusOr constructed from Ok status without value";
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CHECK(ok()) << status_.ToString();
    return value_;
  }
  T& value() & {
    CHECK(ok()) << status_.ToString();
    return value_;
  }
  T&& value() && {
    CHECK(ok()) << status_.ToString();
    return std::move(value_);
  }

 private:
  Status status_;
  T value_{};
};

}  // namespace revelio::util

#define RETURN_IF_ERROR(expr)                        \
  do {                                               \
    ::revelio::util::Status _status = (expr);        \
    if (!_status.ok()) return _status;               \
  } while (false)

#endif  // REVELIO_UTIL_STATUS_H_
