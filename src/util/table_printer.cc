#include "util/table_printer.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/check.h"

namespace revelio::util {

TablePrinter::TablePrinter(std::vector<std::string> header) : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::FormatDouble(double value, int precision) {
  if (std::isnan(value)) return "-";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "| " : " | ");
      out << row[c] << std::string(widths[c] - row[c].size(), ' ');
    }
    out << " |\n";
  };
  emit_row(header_);
  for (size_t c = 0; c < header_.size(); ++c) {
    out << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
  }
  out << "-|\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

bool WriteCsv(const std::string& path, const std::vector<std::string>& header,
              const std::vector<std::vector<std::string>>& rows) {
  std::ofstream out(path);
  if (!out.good()) return false;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out << ",";
      out << row[i];
    }
    out << "\n";
  };
  emit(header);
  for (const auto& row : rows) emit(row);
  return out.good();
}

}  // namespace revelio::util
