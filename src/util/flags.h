#ifndef REVELIO_UTIL_FLAGS_H_
#define REVELIO_UTIL_FLAGS_H_

// Tiny command-line flag parser used by benches and examples.
// Accepts `--name=value`, `--name value`, and boolean `--name` forms.

#include <map>
#include <string>
#include <vector>

namespace revelio::util {

class Flags {
 public:
  // Parses argv, ignoring argv[0]. Unrecognized positional arguments are
  // collected into positional(). Aborts on malformed flags.
  Flags(int argc, char** argv);

  bool Has(const std::string& name) const;

  // Typed getters returning `fallback` when the flag is absent.
  std::string GetString(const std::string& name, const std::string& fallback) const;
  int GetInt(const std::string& name, int fallback) const;
  double GetDouble(const std::string& name, double fallback) const;
  bool GetBool(const std::string& name, bool fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace revelio::util

#endif  // REVELIO_UTIL_FLAGS_H_
