#ifndef REVELIO_UTIL_LOGGING_H_
#define REVELIO_UTIL_LOGGING_H_

// Minimal leveled logging to stderr. Intended for progress reporting in
// benches and examples; hot paths should not log.
//
// Lines are prefixed with an ISO-8601 UTC timestamp (millisecond precision)
// and a small dense per-thread id, e.g.
//   [2026-08-05T12:34:56.789Z INFO  t0] message
// The initial level comes from REVELIO_LOG_LEVEL (debug/info/warning|warn/
// error, case-insensitive, or 0-3), defaulting to kInfo; SetLogLevel
// overrides it.

#include <sstream>
#include <string>

namespace revelio::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Messages below this level are suppressed. Defaults to kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Emits one formatted log line to stderr if `level` is enabled.
void LogMessage(LogLevel level, const std::string& message);

namespace internal_logging {

class LogLineBuilder {
 public:
  explicit LogLineBuilder(LogLevel level) : level_(level) {}
  LogLineBuilder(const LogLineBuilder&) = delete;
  LogLineBuilder& operator=(const LogLineBuilder&) = delete;
  ~LogLineBuilder() { LogMessage(level_, stream_.str()); }

  template <typename T>
  LogLineBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace revelio::util

#define LOG_DEBUG ::revelio::util::internal_logging::LogLineBuilder(::revelio::util::LogLevel::kDebug)
#define LOG_INFO ::revelio::util::internal_logging::LogLineBuilder(::revelio::util::LogLevel::kInfo)
#define LOG_WARNING \
  ::revelio::util::internal_logging::LogLineBuilder(::revelio::util::LogLevel::kWarning)
#define LOG_ERROR ::revelio::util::internal_logging::LogLineBuilder(::revelio::util::LogLevel::kError)

#endif  // REVELIO_UTIL_LOGGING_H_
