#ifndef REVELIO_UTIL_TIMER_H_
#define REVELIO_UTIL_TIMER_H_

// Wall-clock timer used by the efficiency study (paper Table V).

#include <chrono>

namespace revelio::util {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  // Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration_cast<std::chrono::duration<double>>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace revelio::util

#endif  // REVELIO_UTIL_TIMER_H_
