#ifndef REVELIO_UTIL_CHECK_H_
#define REVELIO_UTIL_CHECK_H_

// Fatal assertion macros in the style of glog/absl. Revelio does not use
// exceptions; invariant violations abort with a message identifying the
// failing condition and source location.

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace revelio::util {

// Terminates the process after printing `message` to stderr. Never returns.
[[noreturn]] void CheckFailed(const char* file, int line, const std::string& message);

namespace internal_check {

// Stream sink that collects an optional user message appended with `<<` and
// aborts in its destructor. Used as the right-hand side of CHECK macros.
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* condition)
      : file_(file), line_(line) {
    stream_ << "CHECK failed: " << condition << " ";
  }

  CheckMessageBuilder(const CheckMessageBuilder&) = delete;
  CheckMessageBuilder& operator=(const CheckMessageBuilder&) = delete;

  [[noreturn]] ~CheckMessageBuilder() { CheckFailed(file_, line_, stream_.str()); }

  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal_check
}  // namespace revelio::util

#define CHECK(condition)                                                   \
  if (condition) {                                                         \
  } else /* NOLINT */                                                      \
    ::revelio::util::internal_check::CheckMessageBuilder(__FILE__, __LINE__, \
                                                         #condition)

#define CHECK_OP(lhs, rhs, op) CHECK((lhs)op(rhs)) << "(" << (lhs) << " vs " << (rhs) << ") "

#define CHECK_EQ(lhs, rhs) CHECK_OP(lhs, rhs, ==)
#define CHECK_NE(lhs, rhs) CHECK_OP(lhs, rhs, !=)
#define CHECK_LT(lhs, rhs) CHECK_OP(lhs, rhs, <)
#define CHECK_LE(lhs, rhs) CHECK_OP(lhs, rhs, <=)
#define CHECK_GT(lhs, rhs) CHECK_OP(lhs, rhs, >)
#define CHECK_GE(lhs, rhs) CHECK_OP(lhs, rhs, >=)

#ifdef NDEBUG
#define DCHECK(condition) CHECK(true || (condition))
#else
#define DCHECK(condition) CHECK(condition)
#endif

#endif  // REVELIO_UTIL_CHECK_H_
