#include "util/logging.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>

namespace revelio::util {
namespace {

constexpr int kLevelUnresolved = -1;

// Resolved lazily so the env var is honored no matter how early the first
// log line fires relative to static initialization.
std::atomic<int> g_log_level{kLevelUnresolved};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

bool EqualsIgnoreCase(const char* a, const char* b) {
  for (; *a != '\0' && *b != '\0'; ++a, ++b) {
    if (std::tolower(static_cast<unsigned char>(*a)) !=
        std::tolower(static_cast<unsigned char>(*b))) {
      return false;
    }
  }
  return *a == '\0' && *b == '\0';
}

// REVELIO_LOG_LEVEL accepts a level name (debug/info/warning|warn/error,
// case-insensitive) or its numeric value 0-3; anything else keeps kInfo.
int InitialLevel() {
  const char* env = std::getenv("REVELIO_LOG_LEVEL");
  if (env == nullptr || *env == '\0') return static_cast<int>(LogLevel::kInfo);
  if (EqualsIgnoreCase(env, "debug")) return static_cast<int>(LogLevel::kDebug);
  if (EqualsIgnoreCase(env, "info")) return static_cast<int>(LogLevel::kInfo);
  if (EqualsIgnoreCase(env, "warning") || EqualsIgnoreCase(env, "warn")) {
    return static_cast<int>(LogLevel::kWarning);
  }
  if (EqualsIgnoreCase(env, "error")) return static_cast<int>(LogLevel::kError);
  if (env[1] == '\0' && env[0] >= '0' && env[0] <= '3') return env[0] - '0';
  return static_cast<int>(LogLevel::kInfo);
}

int CurrentLevel() {
  int level = g_log_level.load(std::memory_order_relaxed);
  if (level == kLevelUnresolved) {
    int expected = kLevelUnresolved;
    g_log_level.compare_exchange_strong(expected, InitialLevel());
    level = g_log_level.load(std::memory_order_relaxed);
  }
  return level;
}

// Small dense thread ids for log prefixes (0 = first logging thread; the
// process main thread in practice). std::this_thread::get_id is opaque and
// unstable across runs, which makes log diffs noisy.
int ThisThreadId() {
  static std::atomic<int> next_id{0};
  thread_local const int id = next_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_log_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(CurrentLevel()); }

void LogMessage(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < CurrentLevel()) return;
  const auto now = std::chrono::system_clock::now();
  const std::time_t seconds = std::chrono::system_clock::to_time_t(now);
  const int millis = static_cast<int>(
      std::chrono::duration_cast<std::chrono::milliseconds>(now.time_since_epoch()).count() %
      1000);
  std::tm utc{};
#if defined(_WIN32)
  gmtime_s(&utc, &seconds);
#else
  gmtime_r(&seconds, &utc);
#endif
  char timestamp[32];
  std::strftime(timestamp, sizeof(timestamp), "%Y-%m-%dT%H:%M:%S", &utc);
  std::fprintf(stderr, "[%s.%03dZ %-5s t%d] %s\n", timestamp, millis, LevelName(level),
               ThisThreadId(), message.c_str());
}

}  // namespace revelio::util
