#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>

namespace revelio::util {
namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_log_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_log_level.load()); }

void LogMessage(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < g_log_level.load()) return;
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  const double elapsed =
      std::chrono::duration_cast<std::chrono::duration<double>>(Clock::now() - start).count();
  std::fprintf(stderr, "[%8.2fs %-5s] %s\n", elapsed, LevelName(level), message.c_str());
}

}  // namespace revelio::util
