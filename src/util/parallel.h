#ifndef REVELIO_UTIL_PARALLEL_H_
#define REVELIO_UTIL_PARALLEL_H_

// Shared thread pool and ParallelFor for the tensor kernels and the
// per-instance evaluation loops.
//
// Thread count resolution (first match wins):
//   1. SetNumThreads(n)            — CLI flags (`--threads` in the benches)
//   2. REVELIO_NUM_THREADS env var — deployment knob
//   3. std::thread::hardware_concurrency()
//
// Determinism contract: every parallel kernel in this repo partitions its
// OUTPUT range so each element is written by exactly one chunk, and the
// accumulation order within an element matches the serial loop. Results are
// therefore bitwise-identical for any thread count, including the n == 1
// serial fallback (see DESIGN.md "Parallel execution").
//
// ParallelFor calls issued from inside a running ParallelFor chunk (nested
// parallelism, e.g. a parallel tensor kernel inside a parallel per-instance
// explanation) execute serially on the calling thread, so the pool never
// deadlocks on itself and thread budgets are not multiplied.

#include <cstdint>
#include <functional>

namespace revelio::util {

// Worker threads available to ParallelFor (>= 1). Lazily resolved on first
// use; cheap to call afterwards.
int NumThreads();

// Overrides the thread count (n >= 1; clamped to kMaxThreads). Safe to call
// between parallel regions, e.g. for the bench thread sweeps.
void SetNumThreads(int n);

// What hardware_concurrency reports (>= 1).
int HardwareThreads();

// True while the calling thread executes a ParallelFor chunk; nested
// ParallelFor calls run serially when set.
bool InParallelRegion();

// Runs fn(chunk_begin, chunk_end) over contiguous chunks covering
// [begin, end). Chunks hold at least `grain` items (grain < 1 is treated as
// 1), so a range of at most `grain` items — or NumThreads() == 1, or a
// nested call — degenerates to a single fn(begin, end) call on the calling
// thread. fn must not throw; chunks may run on any thread, concurrently.
void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn);

}  // namespace revelio::util

#endif  // REVELIO_UTIL_PARALLEL_H_
