#include "util/status.h"

namespace revelio::util {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string result = StatusCodeName(code_);
  result += ": ";
  result += message_;
  return result;
}

}  // namespace revelio::util
