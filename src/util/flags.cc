#include "util/flags.h"

#include <cstdlib>

#include "util/check.h"

namespace revelio::util {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

bool Flags::Has(const std::string& name) const { return values_.count(name) > 0; }

std::string Flags::GetString(const std::string& name, const std::string& fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

int Flags::GetInt(const std::string& name, int fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return std::atoi(it->second.c_str());
}

double Flags::GetDouble(const std::string& name, double fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return std::atof(it->second.c_str());
}

bool Flags::GetBool(const std::string& name, bool fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

}  // namespace revelio::util
