#include "util/proptest.h"

#include <cstdlib>
#include <sstream>

namespace revelio::util {
namespace {

// SplitMix64 finalizer: decorrelates consecutive case indices into
// independent-looking 64-bit seeds.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

bool ParseUint64(const char* text, uint64_t* out) {
  if (text == nullptr || *text == '\0') return false;
  char* end = nullptr;
  const uint64_t value = std::strtoull(text, &end, 0);  // base 0: decimal or 0x-hex
  if (end == nullptr || *end != '\0') return false;
  *out = value;
  return true;
}

}  // namespace

PropConfig DefaultPropConfig(int num_cases, uint64_t seed) {
  PropConfig config;
  config.num_cases = num_cases;
  config.seed = seed;
  uint64_t env_value = 0;
  if (ParseUint64(std::getenv("REVELIO_PROP_SEED"), &env_value)) {
    config.seed = env_value;
    config.replay = true;  // the env seed is a printed case seed; use it directly
  }
  if (ParseUint64(std::getenv("REVELIO_PROP_CASES"), &env_value) && env_value > 0) {
    config.num_cases = static_cast<int>(env_value);
  }
  return config;
}

uint64_t PropCaseSeed(uint64_t base_seed, int case_index) {
  return SplitMix64(base_seed ^ SplitMix64(static_cast<uint64_t>(case_index)));
}

std::string FormatSeed(uint64_t seed) {
  std::ostringstream out;
  out << "0x" << std::hex << seed;
  return out.str();
}

}  // namespace revelio::util
