#include "util/proptest.h"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <sstream>

namespace revelio::util {
namespace {

// SplitMix64 finalizer: decorrelates consecutive case indices into
// independent-looking 64-bit seeds.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

bool ParseUint64(const char* text, uint64_t* out) {
  if (text == nullptr || *text == '\0') return false;
  char* end = nullptr;
  const uint64_t value = std::strtoull(text, &end, 0);  // base 0: decimal or 0x-hex
  if (end == nullptr || *end != '\0') return false;
  *out = value;
  return true;
}

}  // namespace

PropConfig DefaultPropConfig(int num_cases, uint64_t seed) {
  PropConfig config;
  config.num_cases = num_cases;
  config.seed = seed;
  uint64_t env_value = 0;
  if (ParseUint64(std::getenv("REVELIO_PROP_SEED"), &env_value)) {
    config.seed = env_value;
    config.replay = true;  // the env seed is a printed case seed; use it directly
  }
  if (ParseUint64(std::getenv("REVELIO_PROP_CASES"), &env_value) && env_value > 0) {
    config.num_cases = static_cast<int>(env_value);
  }
  return config;
}

uint64_t PropCaseSeed(uint64_t base_seed, int case_index) {
  return SplitMix64(base_seed ^ SplitMix64(static_cast<uint64_t>(case_index)));
}

std::string FormatSeed(uint64_t seed) {
  std::ostringstream out;
  out << "0x" << std::hex << seed;
  return out.str();
}

namespace {

// Maps the float's bit pattern onto an unsigned key that is monotone in the
// real-number ordering: negative floats flip all bits, non-negative floats
// set the sign bit. Adjacent representable floats then differ by exactly 1.
uint32_t OrderedFloatKey(float f) {
  uint32_t bits = 0;
  std::memcpy(&bits, &f, sizeof(bits));
  return (bits & 0x80000000u) != 0 ? ~bits : bits | 0x80000000u;
}

bool BitwiseEqual(float a, float b) {
  uint32_t ab = 0;
  uint32_t bb = 0;
  std::memcpy(&ab, &a, sizeof(ab));
  std::memcpy(&bb, &b, sizeof(bb));
  return ab == bb;
}

std::string FormatFloat(float f) {
  uint32_t bits = 0;
  std::memcpy(&bits, &f, sizeof(bits));
  std::ostringstream out;
  out.precision(9);
  out << f << " (0x" << std::hex << bits << ")";
  return out.str();
}

}  // namespace

std::string Tolerance::Name() const {
  std::ostringstream out;
  switch (cls) {
    case ToleranceClass::kBitwise:
      out << "bitwise";
      break;
    case ToleranceClass::kUlpBounded:
      out << "ulp-bounded(<=" << max_ulps;
      if (abs_epsilon > 0.0) out << ",abs<=" << abs_epsilon;
      out << ")";
      break;
    case ToleranceClass::kStatedEpsilon:
      out << "stated-epsilon(rel=" << rel_epsilon << ",abs=" << abs_epsilon << ")";
      break;
  }
  return out.str();
}

int64_t UlpDistance(float a, float b) {
  if (BitwiseEqual(a, b)) return 0;
  if (std::isnan(a) || std::isnan(b)) return std::numeric_limits<int64_t>::max();
  const int64_t ka = static_cast<int64_t>(OrderedFloatKey(a));
  const int64_t kb = static_cast<int64_t>(OrderedFloatKey(b));
  return ka > kb ? ka - kb : kb - ka;
}

std::string CompareFloatStreams(const float* actual, const float* expected, int64_t n,
                                const Tolerance& tol, const std::string& label) {
  for (int64_t i = 0; i < n; ++i) {
    const float a = actual[i];
    const float e = expected[i];
    bool ok = false;
    int64_t ulps = 0;
    switch (tol.cls) {
      case ToleranceClass::kBitwise:
        ok = BitwiseEqual(a, e);
        break;
      case ToleranceClass::kUlpBounded:
        ulps = UlpDistance(a, e);
        ok = ulps <= tol.max_ulps ||
             (!std::isnan(a) && !std::isnan(e) &&
              std::abs(static_cast<double>(a) - static_cast<double>(e)) <= tol.abs_epsilon);
        break;
      case ToleranceClass::kStatedEpsilon:
        if (std::isnan(e)) {
          ok = std::isnan(a);
        } else if (std::isinf(e)) {
          ok = a == e;
        } else {
          ok = std::abs(static_cast<double>(a) - static_cast<double>(e)) <=
               tol.abs_epsilon + tol.rel_epsilon * std::abs(static_cast<double>(e));
        }
        break;
    }
    if (ok) continue;
    std::ostringstream out;
    if (!label.empty()) out << label << ": ";
    out << "element " << i << " of " << n << " violates " << tol.Name() << ": actual "
        << FormatFloat(a) << " vs expected " << FormatFloat(e);
    if (tol.cls == ToleranceClass::kUlpBounded) out << ", distance " << ulps << " ulps";
    return out.str();
  }
  return "";
}

}  // namespace revelio::util
