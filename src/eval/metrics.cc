#include "eval/metrics.h"

#include <algorithm>
#include <numeric>

#include "nn/loss.h"
#include "tensor/bf16.h"

namespace revelio::eval {

std::vector<int> RankEdges(const std::vector<double>& edge_scores) {
  std::vector<int> order(edge_scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return edge_scores[a] > edge_scores[b];
  });
  return order;
}

std::vector<double> SymmetrizeEdgeScores(const graph::Graph& graph,
                                         const std::vector<double>& edge_scores) {
  CHECK_EQ(static_cast<int>(edge_scores.size()), graph.num_edges());
  std::vector<double> result = edge_scores;
  for (int e = 0; e < graph.num_edges(); ++e) {
    const graph::Edge& edge = graph.edge(e);
    for (int r : graph.OutEdges(edge.dst)) {
      if (graph.edge(r).dst == edge.src) {
        const double mean = 0.5 * (edge_scores[e] + edge_scores[r]);
        result[e] = mean;
        break;
      }
    }
  }
  return result;
}

double ProbabilityWithoutEdges(const explain::ExplanationTask& task,
                               const std::vector<int>& removed_edges) {
  const graph::Graph reduced = task.graph->RemoveEdges(removed_edges);
  const tensor::Tensor logits = task.model->Logits(reduced, task.features);
  return nn::SoftmaxRow(logits, task.logit_row())[task.target_class];
}

namespace {

// The number of explanatory edges retained at the given sparsity level.
int KeptEdgeCount(int num_edges, double sparsity) {
  const int kept = static_cast<int>(num_edges * (1.0 - sparsity) + 0.5);
  return std::clamp(kept, 0, num_edges);
}

}  // namespace

double FidelityMinus(const explain::ExplanationTask& task,
                     const std::vector<double>& edge_scores, double sparsity) {
  CHECK_EQ(static_cast<int>(edge_scores.size()), task.graph->num_edges());
  // Inference-only probes: under REVELIO_EVAL_BF16=1 the model forwards in
  // this scope read frozen weights/features from bf16 mirrors (tensor/bf16.h).
  tensor::bf16::EvalScope bf16_scope;
  const std::vector<int> order =
      RankEdges(SymmetrizeEdgeScores(*task.graph, edge_scores));
  const int kept = KeptEdgeCount(task.graph->num_edges(), sparsity);
  // Remove everything below the kept prefix.
  const std::vector<int> removed(order.begin() + kept, order.end());
  const double original = explain::PredictedProbability(task);
  return original - ProbabilityWithoutEdges(task, removed);
}

double FidelityPlus(const explain::ExplanationTask& task,
                    const std::vector<double>& edge_scores, double sparsity) {
  CHECK_EQ(static_cast<int>(edge_scores.size()), task.graph->num_edges());
  tensor::bf16::EvalScope bf16_scope;
  const std::vector<int> order =
      RankEdges(SymmetrizeEdgeScores(*task.graph, edge_scores));
  const int removed_count = KeptEdgeCount(task.graph->num_edges(), sparsity);
  // Remove the same number of edges as Fidelity- keeps, from the top.
  const std::vector<int> removed(order.begin(), order.begin() + removed_count);
  const double original = explain::PredictedProbability(task);
  return original - ProbabilityWithoutEdges(task, removed);
}

double RocAuc(const std::vector<double>& scores, const std::vector<char>& labels) {
  CHECK_EQ(scores.size(), labels.size());
  // Rank-sum (Mann-Whitney) formulation with midranks for ties.
  std::vector<int> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](int a, int b) { return scores[a] < scores[b]; });
  int64_t num_positive = 0;
  int64_t num_negative = 0;
  for (char l : labels) (l ? num_positive : num_negative) += 1;
  if (num_positive == 0 || num_negative == 0) return 0.5;

  double positive_rank_sum = 0.0;
  size_t i = 0;
  while (i < order.size()) {
    size_t j = i;
    while (j + 1 < order.size() && scores[order[j + 1]] == scores[order[i]]) ++j;
    const double midrank = 0.5 * (static_cast<double>(i + 1) + static_cast<double>(j + 1));
    for (size_t t = i; t <= j; ++t) {
      if (labels[order[t]]) positive_rank_sum += midrank;
    }
    i = j + 1;
  }
  const double u = positive_rank_sum -
                   static_cast<double>(num_positive) * (num_positive + 1) / 2.0;
  return u / (static_cast<double>(num_positive) * static_cast<double>(num_negative));
}

}  // namespace revelio::eval
