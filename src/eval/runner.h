#ifndef REVELIO_EVAL_RUNNER_H_
#define REVELIO_EVAL_RUNNER_H_

// Shared experiment harness: trains the target GNNs, selects evaluation
// instances (computation subgraphs for node tasks), constructs explainers by
// name, and runs the fidelity / AUC / runtime protocols of §V. Every bench
// binary is a thin wrapper over this module.

#include <memory>
#include <string>
#include <vector>

#include "datasets/dataset.h"
#include "explain/explainer.h"
#include "gnn/trainer.h"

namespace revelio::eval {

struct RunnerConfig {
  uint64_t seed = 1;
  int num_instances = 10;       // paper: 50 target instances per dataset
  int gnn_train_epochs = 0;     // 0 = per-dataset default (DefaultGnnTrainEpochs)
  int explainer_epochs = 100;   // learning-based explainers (paper: 500)
  int64_t max_flows = 60'000;   // skip instances whose flow count exceeds this
  int min_instance_edges = 6;   // skip degenerate subgraphs
  int pg_train_instances = 12;  // group size for amortized methods

  // Telemetry sinks (empty = disabled). Setting trace_out/metrics_out turns
  // on the obs subsystem for the run; audit_out streams one AuditRecord per
  // explanation as JSONL without requiring metrics/tracing. Bench binaries
  // inherit --trace-out/--metrics-out/--audit-out through bench_common.h.
  std::string trace_out;    // Chrome trace-event JSON
  std::string metrics_out;  // metrics snapshot JSON
  std::string audit_out;    // per-explanation audit records, JSONL
};

// A pretrained target model plus its dataset.
struct PreparedModel {
  datasets::Dataset dataset;
  gnn::GnnArch arch = gnn::GnnArch::kGcn;
  std::unique_ptr<gnn::GnnModel> model;
  gnn::TrainMetrics metrics;
};

// Pretraining epochs that land each dataset's models in the paper's Table
// III accuracy band (structure-only synthetic datasets need longer).
int DefaultGnnTrainEpochs(const std::string& dataset_name);

// Trains a 3-layer model of `arch` on `dataset_name` (paper Table III setup).
PreparedModel PrepareModel(const std::string& dataset_name, gnn::GnnArch arch,
                           const RunnerConfig& config);

// True for the paper's excluded combinations (GAT on the constant-feature
// synthetic datasets).
bool ArchSupportsDataset(gnn::GnnArch arch, const std::string& dataset_name);

// One evaluation instance. Owns its graph/features so ExplanationTask
// pointers can be constructed on demand.
struct EvalInstance {
  graph::Graph graph;
  tensor::Tensor features;
  int target_node = -1;  // local id (node tasks); -1 for graph tasks
  int target_class = 0;  // the model's prediction (the class explained)
  bool correct_prediction = false;
  bool target_in_motif = false;          // node tasks with ground truth
  std::vector<char> edge_in_motif;       // per edge of `graph` (may be empty)
  int64_t num_flows = 0;

  explain::ExplanationTask MakeTask(const gnn::GnnModel* model) const;
};

enum class InstanceFilter {
  kAny,          // paper §V-B "regardless of their labels"
  kMotifCorrect  // AUC study: motif-associated and correctly predicted
};

// Samples up to `config.num_instances` evaluation instances.
std::vector<EvalInstance> SelectInstances(const PreparedModel& prepared,
                                          const RunnerConfig& config, InstanceFilter filter);

// --- Explainer registry -------------------------------------------------------

// Paper order: GradCAM, DeepLIFT, GNNExplainer, PGExplainer, GraphMask,
// PGMExplainer, SubgraphX, GNN-LRP, FlowX, Revelio.
std::vector<std::string> AllExplainerNames();

std::unique_ptr<explain::Explainer> MakeExplainer(const std::string& name,
                                                  const RunnerConfig& config);

// True if the method needs amortized Train() over a task group before
// Explain (PGExplainer, GraphMask). TrainAmortized is a no-op otherwise.
bool NeedsAmortizedTraining(const explain::Explainer& explainer);
void TrainAmortized(explain::Explainer* explainer, const PreparedModel& prepared,
                    const std::vector<EvalInstance>& instances, explain::Objective objective,
                    const RunnerConfig& config);

// --- Protocols -----------------------------------------------------------------

// Explains every task with a shared explainer, concurrently across instances
// when the explainer reports thread_safe_explain() (requires the model to be
// frozen, which PrepareModel does after training). Results are index-aligned
// with `tasks` and identical to the serial loop for any thread count. A task
// that fails ValidateExplanationTask does not abort the batch: its slot
// carries the error in Explanation::status (empty scores) and every other
// task still runs.
std::vector<explain::Explanation> ExplainAll(explain::Explainer* explainer,
                                             const std::vector<explain::ExplanationTask>& tasks,
                                             explain::Objective objective);

// Mean Fidelity-/Fidelity+ over instances for each sparsity level.
struct FidelityCurve {
  std::vector<double> sparsities;
  std::vector<double> values;
  int instances_evaluated = 0;
};

FidelityCurve RunFidelity(explain::Explainer* explainer, const PreparedModel& prepared,
                          const std::vector<EvalInstance>& instances,
                          explain::Objective objective, const std::vector<double>& sparsities);

// Mean explanation AUC against motif ground truth (Table IV protocol).
double RunAuc(explain::Explainer* explainer, const PreparedModel& prepared,
              const std::vector<EvalInstance>& instances, explain::Objective objective);

}  // namespace revelio::eval

#endif  // REVELIO_EVAL_RUNNER_H_
