#ifndef REVELIO_EVAL_METRICS_H_
#define REVELIO_EVAL_METRICS_H_

// Evaluation metrics of the paper's §V-B: Fidelity- (Eq. 10), Fidelity+
// (Eq. 11) under a sparsity budget, and explanation ROC-AUC against motif
// ground truth.

#include <vector>

#include "explain/explainer.h"

namespace revelio::eval {

// Edge indices ranked by descending importance (ties by index).
std::vector<int> RankEdges(const std::vector<double>& edge_scores);

// Averages the scores of each directed edge pair (u->v, v->u). The
// benchmarks are undirected graphs stored as directed pairs; keeping one
// direction of a pair while dropping the other produces structurally
// meaningless subgraphs, so the fidelity protocol symmetrizes every
// method's scores uniformly before ranking (standard PyG-style practice).
std::vector<double> SymmetrizeEdgeScores(const graph::Graph& graph,
                                         const std::vector<double>& edge_scores);

// P(target_class) after removing `removed_edges` from the task graph.
// Node-task features/target are preserved (node set unchanged).
double ProbabilityWithoutEdges(const explain::ExplanationTask& task,
                               const std::vector<int>& removed_edges);

// Fidelity- at `sparsity`: keep the top (1 - sparsity)|E| edges, remove the
// rest, return P(c|G) - P(c|G_s) (Eq. 10 for one instance).
double FidelityMinus(const explain::ExplanationTask& task,
                     const std::vector<double>& edge_scores, double sparsity);

// Fidelity+ at `sparsity`: remove the top sparsity-complement... — following
// the paper's protocol, an *equivalent number* of edges is removed in both
// studies: here the top (1 - sparsity)|E| most important edges are removed
// and P(c|G) - P(c|G_s-bar) is returned (Eq. 11 for one instance).
double FidelityPlus(const explain::ExplanationTask& task,
                    const std::vector<double>& edge_scores, double sparsity);

// ROC-AUC of `scores` against binary `labels` (1 = positive). Returns 0.5
// when either class is absent.
double RocAuc(const std::vector<double>& scores, const std::vector<char>& labels);

}  // namespace revelio::eval

#endif  // REVELIO_EVAL_METRICS_H_
