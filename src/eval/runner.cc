#include "eval/runner.h"

#include <algorithm>

#include "core/revelio.h"
#include "eval/metrics.h"
#include "explain/batch_runner.h"
#include "explain/deeplift.h"
#include "explain/flowx.h"
#include "explain/gnnexplainer.h"
#include "explain/gnnlrp.h"
#include "explain/gradcam.h"
#include "explain/graphmask.h"
#include "explain/pgexplainer.h"
#include "explain/pgm_explainer.h"
#include "explain/random_explainer.h"
#include "explain/subgraphx.h"
#include "flow/message_flow.h"
#include "graph/subgraph.h"
#include "nn/loss.h"
#include "obs/trace.h"
#include "tensor/bf16.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace revelio::eval {

using explain::ExplanationTask;
using explain::Objective;

int DefaultGnnTrainEpochs(const std::string& dataset_name) {
  // Constant-feature synthetic benchmarks learn from structure alone and
  // need more epochs to reach the paper's accuracy band.
  if (dataset_name == "ba_shapes" || dataset_name == "tree_cycles") return 500;
  if (dataset_name == "ba_2motifs") return 300;
  if (dataset_name == "mutag_like" || dataset_name == "bbbp_like") return 100;
  return 150;  // citation-like node classification
}

PreparedModel PrepareModel(const std::string& dataset_name, gnn::GnnArch arch,
                           const RunnerConfig& config) {
  obs::ScopedSpan span("eval.PrepareModel");
  PreparedModel prepared;
  prepared.dataset = datasets::MakeDataset(dataset_name, config.seed);
  prepared.arch = arch;

  gnn::GnnConfig model_config;
  model_config.arch = arch;
  model_config.task = prepared.dataset.task;
  model_config.input_dim = prepared.dataset.feature_dim;
  model_config.hidden_dim = 32;
  model_config.num_classes = prepared.dataset.num_classes;
  model_config.num_layers = 3;
  model_config.num_heads = 8;
  // Symmetric normalization suppresses the count/structure signals the
  // graph-classification benchmarks are built on (constant features on
  // BA-2motifs; identical-composition motifs on the molecule substitutes),
  // so GCN targets use plain-sum aggregation there — matching PGExplainer's
  // original unnormalized BA-2motifs GCN. Node tasks keep symmetric norm.
  model_config.gcn_normalize =
      prepared.dataset.task == gnn::TaskType::kNodeClassification;
  model_config.seed = config.seed + 1000;
  prepared.model = std::make_unique<gnn::GnnModel>(model_config);

  gnn::TrainConfig train_config;
  train_config.epochs = config.gnn_train_epochs > 0 ? config.gnn_train_epochs
                                                    : DefaultGnnTrainEpochs(dataset_name);
  util::Rng split_rng(config.seed + 7);
  if (prepared.dataset.is_node_task()) {
    const auto& instance = prepared.dataset.instances[0];
    const gnn::Split split =
        gnn::MakeSplit(instance.graph.num_nodes(), 0.8, 0.1, &split_rng);
    prepared.metrics = gnn::TrainNodeModel(prepared.model.get(), instance.graph,
                                           instance.features, instance.labels, split,
                                           train_config);
  } else {
    const gnn::Split split =
        gnn::MakeSplit(prepared.dataset.num_graphs(), 0.8, 0.1, &split_rng);
    prepared.metrics =
        gnn::TrainGraphModel(prepared.model.get(), prepared.dataset.instances, split,
                             train_config);
  }
  // Evaluation only reads the weights from here on. Freezing them keeps
  // explainer backward passes off the shared weight grad buffers, which is
  // what makes concurrent per-instance explanation (ExplainAll) race-free.
  prepared.model->Freeze();
  return prepared;
}

bool ArchSupportsDataset(gnn::GnnArch arch, const std::string& dataset_name) {
  if (arch != gnn::GnnArch::kGat) return true;
  // Paper: "GATs do not work on synthetic datasets" (constant features give
  // degenerate attention).
  return dataset_name != "ba_shapes" && dataset_name != "tree_cycles" &&
         dataset_name != "ba_2motifs";
}

ExplanationTask EvalInstance::MakeTask(const gnn::GnnModel* model) const {
  ExplanationTask task;
  task.model = model;
  task.graph = &graph;
  task.features = features;
  task.target_node = target_node;
  task.target_class = target_class;
  return task;
}

std::vector<EvalInstance> SelectInstances(const PreparedModel& prepared,
                                          const RunnerConfig& config, InstanceFilter filter) {
  obs::ScopedSpan span("eval.SelectInstances");
  util::Rng rng(config.seed + 31);
  const gnn::GnnModel& model = *prepared.model;
  const datasets::Dataset& dataset = prepared.dataset;
  std::vector<EvalInstance> selected;

  if (dataset.is_node_task()) {
    const auto& instance = dataset.instances[0];
    std::vector<int> candidates(instance.graph.num_nodes());
    for (int v = 0; v < instance.graph.num_nodes(); ++v) candidates[v] = v;
    rng.Shuffle(&candidates);
    for (int v : candidates) {
      if (static_cast<int>(selected.size()) >= config.num_instances) break;
      if (filter == InstanceFilter::kMotifCorrect &&
          (!dataset.has_ground_truth || !dataset.node_in_motif[0][v])) {
        continue;
      }
      graph::Subgraph sub =
          graph::ExtractKHopInSubgraph(instance.graph, v, model.num_layers());
      if (sub.graph.num_edges() < config.min_instance_edges) continue;
      const gnn::LayerEdgeSet edges = gnn::BuildLayerEdges(sub.graph);
      const int64_t flow_count =
          flow::CountFlowsToTarget(edges, sub.target_local, model.num_layers());
      if (flow_count > config.max_flows) continue;

      EvalInstance eval_instance;
      eval_instance.features = graph::SliceRows(instance.features, sub.node_map);
      eval_instance.target_node = sub.target_local;
      eval_instance.num_flows = flow_count;
      if (dataset.has_ground_truth) {
        eval_instance.target_in_motif = dataset.node_in_motif[0][v];
        eval_instance.edge_in_motif.resize(sub.graph.num_edges());
        for (int e = 0; e < sub.graph.num_edges(); ++e) {
          eval_instance.edge_in_motif[e] = dataset.edge_in_motif[0][sub.edge_map[e]];
        }
      }
      eval_instance.graph = std::move(sub.graph);
      // Model prediction on the computation subgraph (the instance "G").
      const tensor::Tensor logits =
          model.Logits(eval_instance.graph, eval_instance.features);
      eval_instance.target_class = nn::ArgmaxRow(logits, eval_instance.target_node);
      eval_instance.correct_prediction =
          eval_instance.target_class == instance.labels[v];
      if (filter == InstanceFilter::kMotifCorrect && !eval_instance.correct_prediction) {
        continue;
      }
      selected.push_back(std::move(eval_instance));
    }
  } else {
    std::vector<int> candidates(dataset.num_graphs());
    for (int g = 0; g < dataset.num_graphs(); ++g) candidates[g] = g;
    rng.Shuffle(&candidates);
    for (int g : candidates) {
      if (static_cast<int>(selected.size()) >= config.num_instances) break;
      const auto& instance = dataset.instances[g];
      if (instance.graph.num_edges() < config.min_instance_edges) continue;
      const gnn::LayerEdgeSet edges = gnn::BuildLayerEdges(instance.graph);
      const int64_t flow_count = flow::CountAllFlows(edges, model.num_layers());
      if (flow_count > config.max_flows) continue;

      EvalInstance eval_instance;
      eval_instance.graph = instance.graph;
      eval_instance.features = instance.features;
      eval_instance.num_flows = flow_count;
      if (dataset.has_ground_truth) {
        eval_instance.edge_in_motif = dataset.edge_in_motif[g];
        eval_instance.target_in_motif = true;
      }
      const tensor::Tensor logits = model.Logits(eval_instance.graph, eval_instance.features);
      eval_instance.target_class = nn::ArgmaxRow(logits, 0);
      eval_instance.correct_prediction = eval_instance.target_class == instance.labels[0];
      if (filter == InstanceFilter::kMotifCorrect && !eval_instance.correct_prediction) {
        continue;
      }
      selected.push_back(std::move(eval_instance));
    }
  }
  return selected;
}

std::vector<std::string> AllExplainerNames() {
  return {"GradCAM",      "DeepLIFT",  "GNNExplainer", "PGExplainer", "GraphMask",
          "PGMExplainer", "SubgraphX", "GNN-LRP",      "FlowX",       "Revelio"};
}

std::unique_ptr<explain::Explainer> MakeExplainer(const std::string& name,
                                                  const RunnerConfig& config) {
  if (name == "GradCAM") return std::make_unique<explain::GradCamExplainer>();
  if (name == "DeepLIFT") return std::make_unique<explain::DeepLiftExplainer>();
  if (name == "Random") return std::make_unique<explain::RandomExplainer>(config.seed + 41);
  if (name == "GNNExplainer") {
    explain::GnnExplainerOptions options;
    options.epochs = config.explainer_epochs;
    return std::make_unique<explain::GnnExplainerMethod>(options);
  }
  if (name == "PGExplainer") {
    explain::PgExplainerOptions options;
    options.train_epochs = std::max(5, config.explainer_epochs / 10);
    return std::make_unique<explain::PgExplainer>(options);
  }
  if (name == "GraphMask") {
    explain::GraphMaskOptions options;
    options.train_epochs = std::max(4, config.explainer_epochs / 20);
    return std::make_unique<explain::GraphMaskExplainer>(options);
  }
  if (name == "PGMExplainer") {
    explain::PgmExplainerOptions options;
    return std::make_unique<explain::PgmExplainer>(options);
  }
  if (name == "SubgraphX") {
    explain::SubgraphXOptions options;
    return std::make_unique<explain::SubgraphXExplainer>(options);
  }
  if (name == "GNN-LRP") {
    explain::GnnLrpOptions options;
    options.max_flows = config.max_flows;
    return std::make_unique<explain::GnnLrpExplainer>(options);
  }
  if (name == "FlowX") {
    explain::FlowXOptions options;
    options.learning_epochs = config.explainer_epochs;
    options.max_flows = config.max_flows;
    return std::make_unique<explain::FlowXExplainer>(options);
  }
  if (name == "Revelio") {
    core::RevelioOptions options;
    options.epochs = config.explainer_epochs;
    options.max_flows = config.max_flows;
    return std::make_unique<core::RevelioExplainer>(options);
  }
  CHECK(false) << "unknown explainer: " << name;
  return nullptr;
}

bool NeedsAmortizedTraining(const explain::Explainer& explainer) {
  return explainer.name() == "PGExplainer" || explainer.name() == "GraphMask";
}

void TrainAmortized(explain::Explainer* explainer, const PreparedModel& prepared,
                    const std::vector<EvalInstance>& instances, Objective objective,
                    const RunnerConfig& config) {
  if (!NeedsAmortizedTraining(*explainer)) return;
  obs::ScopedSpan span("eval.TrainAmortized");
  std::vector<ExplanationTask> tasks;
  const int count = std::min<int>(config.pg_train_instances,
                                  static_cast<int>(instances.size()));
  tasks.reserve(count);
  for (int i = 0; i < count; ++i) {
    tasks.push_back(instances[i].MakeTask(prepared.model.get()));
  }
  if (auto* pg = dynamic_cast<explain::PgExplainer*>(explainer)) {
    if (!pg->is_trained(objective)) pg->Train(tasks, objective);
  } else if (auto* gm = dynamic_cast<explain::GraphMaskExplainer*>(explainer)) {
    if (!gm->is_trained(objective)) gm->Train(tasks, objective);
  }
}

namespace {

// The dispatch body of ExplainAll over tasks that already passed validation.
std::vector<explain::Explanation> ExplainAllValidated(explain::Explainer* explainer,
                                                      const std::vector<ExplanationTask>& tasks,
                                                      Objective objective) {
  std::vector<explain::Explanation> explanations(tasks.size());
  explain::Explanation* out = explanations.data();
  const ExplanationTask* in = tasks.data();
  // Mega-batch dispatch (REVELIO_MEGABATCH, default on): consecutive tasks
  // sharing one model fuse into groups of up to REVELIO_MEGABATCH_SIZE and
  // train with a single forward/backward per step. Parallelism moves from
  // instance level to kernel level inside the fused step; results stay
  // bitwise-equal to the sequential paths below.
  if (explain::MegaBatchEnabled() && explainer->supports_megabatch() && !tasks.empty()) {
    const size_t group_cap = static_cast<size_t>(explain::MegaBatchSize());
    size_t begin = 0;
    while (begin < tasks.size()) {
      size_t end = begin + 1;
      while (end < tasks.size() && end - begin < group_cap &&
             tasks[end].model == tasks[begin].model) {
        ++end;
      }
      std::vector<const ExplanationTask*> group;
      group.reserve(end - begin);
      for (size_t i = begin; i < end; ++i) group.push_back(&tasks[i]);
      std::vector<explain::Explanation> batch = explainer->ExplainBatch(group, objective);
      CHECK_EQ(batch.size(), group.size());
      for (size_t i = 0; i < batch.size(); ++i) out[begin + i] = std::move(batch[i]);
      begin = end;
    }
    return explanations;
  }
  if (!explainer->thread_safe_explain()) {
    for (size_t i = 0; i < tasks.size(); ++i) out[i] = explainer->Explain(in[i], objective);
    return explanations;
  }
  // One slot per instance, one writer per slot; each Explain call is
  // deterministic on its own, so the result does not depend on the thread
  // count. Tensor ops inside Explain detect the enclosing region and run
  // serially (instance-level parallelism wins over kernel-level). Each worker
  // thread keeps its own tensor pool (thread-local, no locking), so the first
  // instance a worker handles primes its size classes and the rest of its
  // share runs allocation-free.
  util::ParallelFor(0, static_cast<int64_t>(tasks.size()), 1,
                    [explainer, out, in, objective](int64_t begin, int64_t end) {
                      for (int64_t i = begin; i < end; ++i) {
                        out[i] = explainer->Explain(in[i], objective);
                      }
                    });
  return explanations;
}

}  // namespace

std::vector<explain::Explanation> ExplainAll(explain::Explainer* explainer,
                                             const std::vector<ExplanationTask>& tasks,
                                             Objective objective) {
  obs::ScopedSpan span("eval.ExplainAll");
  std::vector<explain::Explanation> explanations(tasks.size());
  // Per-task admission: a task that fails validation gets the error parked in
  // its (index-aligned) result slot instead of aborting the whole batch. The
  // remaining tasks compact and run through the unchanged dispatch paths —
  // grouping of the compacted run may differ from the original batch, which
  // is fine because results never depend on grouping (megabatch contract).
  std::vector<ExplanationTask> valid;
  std::vector<size_t> valid_index;
  valid.reserve(tasks.size());
  valid_index.reserve(tasks.size());
  for (size_t i = 0; i < tasks.size(); ++i) {
    util::Status status = explain::ValidateExplanationTask(tasks[i]);
    if (status.ok()) {
      valid.push_back(tasks[i]);
      valid_index.push_back(i);
    } else {
      explanations[i].status = std::move(status);
    }
  }
  if (valid.empty()) return explanations;
  std::vector<explain::Explanation> results =
      ExplainAllValidated(explainer, valid, objective);
  for (size_t j = 0; j < results.size(); ++j) {
    explanations[valid_index[j]] = std::move(results[j]);
  }
  return explanations;
}

FidelityCurve RunFidelity(explain::Explainer* explainer, const PreparedModel& prepared,
                          const std::vector<EvalInstance>& instances, Objective objective,
                          const std::vector<double>& sparsities) {
  obs::ScopedSpan span("eval.RunFidelity");
  FidelityCurve curve;
  curve.sparsities = sparsities;
  curve.values.assign(sparsities.size(), 0.0);
  TrainAmortized(explainer, prepared, instances, objective,
                 RunnerConfig{});  // default group size if not pre-trained
  std::vector<ExplanationTask> tasks;
  tasks.reserve(instances.size());
  for (const EvalInstance& instance : instances) {
    tasks.push_back(instance.MakeTask(prepared.model.get()));
  }
  const std::vector<explain::Explanation> explanations =
      ExplainAll(explainer, tasks, objective);
  // The fidelity sweep is inference-only: one EvalScope across the whole
  // loop keeps bf16-packed frozen weights/features cached across instances
  // and sparsity levels (no-op unless REVELIO_EVAL_BF16=1). Explanation
  // above stays outside the scope — explainers train masks and must not pay
  // pack traffic on their forward intermediates.
  tensor::bf16::EvalScope bf16_scope;
  // Serial reduction in instance order: parallel explanation changes neither
  // the per-instance values nor the order they are summed in.
  for (size_t i = 0; i < tasks.size(); ++i) {
    for (size_t s = 0; s < sparsities.size(); ++s) {
      const double value =
          objective == Objective::kFactual
              ? FidelityMinus(tasks[i], explanations[i].edge_scores, sparsities[s])
              : FidelityPlus(tasks[i], explanations[i].edge_scores, sparsities[s]);
      curve.values[s] += value;
    }
    ++curve.instances_evaluated;
  }
  if (curve.instances_evaluated > 0) {
    for (auto& v : curve.values) v /= curve.instances_evaluated;
  }
  return curve;
}

double RunAuc(explain::Explainer* explainer, const PreparedModel& prepared,
              const std::vector<EvalInstance>& instances, Objective objective) {
  obs::ScopedSpan span("eval.RunAuc");
  TrainAmortized(explainer, prepared, instances, objective, RunnerConfig{});
  std::vector<ExplanationTask> tasks;
  std::vector<const EvalInstance*> evaluated_instances;
  for (const EvalInstance& instance : instances) {
    if (instance.edge_in_motif.empty()) continue;
    tasks.push_back(instance.MakeTask(prepared.model.get()));
    evaluated_instances.push_back(&instance);
  }
  const std::vector<explain::Explanation> explanations =
      ExplainAll(explainer, tasks, objective);
  double total = 0.0;
  for (size_t i = 0; i < tasks.size(); ++i) {
    total += RocAuc(explanations[i].edge_scores, evaluated_instances[i]->edge_in_motif);
  }
  return tasks.empty() ? 0.5 : total / static_cast<double>(tasks.size());
}

}  // namespace revelio::eval
