#ifndef REVELIO_PLAN_PLAN_H_
#define REVELIO_PLAN_PLAN_H_

// Recorded execution plans (DESIGN.md §12).
//
// The explanation inner loops are shape-stable across optimizer epochs, so
// after recording one epoch's op tape (tensor/record.h) the remaining
// epochs replay through a compiled Plan instead of re-dispatching the eager
// ops: consecutive same-extent elementwise ops are fused into one parallel
// sweep, independent steps within a dependence level run on the PR 1 thread
// pool, and no tensor is re-acquired from the pool (the tape pins every
// buffer; the static arena layout in plan/arena.h is the specification a
// slab backend would allocate from). The backward pass replays through the
// node order cached at seal time — the exact order Tensor::Backward would
// compute — so a replayed epoch is bitwise-identical to an eager one at any
// thread count.
//
// Toggles:
//   REVELIO_EXEC_PLAN=0  (env) or SetExecPlanEnabled(false): training loops
//     run fully eager — the legacy path, bitwise-identical results.
//   REVELIO_PLAN_FUSE=0  (env) or SetPlanFuseEnabled(false): plans replay
//     op-by-op without elementwise fusion (fusion is bitwise-neutral; the
//     switch isolates it for debugging and benchmarks).
//
// Re-record triggers: a PlanKey mismatch (graph structure version, shapes,
// flow counts) or a BumpGlobalPlanVersion() call (fault injection, global
// invalidation) makes Replay() return false after discarding the stale
// plan; the caller then records a fresh epoch.

#include <cstdint>
#include <memory>
#include <vector>

#include "plan/arena.h"
#include "tensor/record.h"
#include "tensor/tensor.h"

namespace revelio::plan {

// Process-wide switches (relaxed atomics; defaults read the environment once).
bool ExecPlanEnabled();
void SetExecPlanEnabled(bool enabled);
bool PlanFuseEnabled();
void SetPlanFuseEnabled(bool enabled);

// Monotone global invalidation epoch. Bumping it invalidates every sealed
// plan in the process at its next Replay() — the hook fault injection and
// cross-cutting invalidation (e.g. registry reloads) use.
uint64_t GlobalPlanVersion();
void BumpGlobalPlanVersion();

// Everything a recorded plan depends on besides the tape itself: graph
// structure versions, tensor shapes, flow/mask counts, objective. Callers
// build one per training loop; any change forces a re-record.
struct PlanKey {
  std::vector<uint64_t> parts;

  friend bool operator==(const PlanKey& a, const PlanKey& b) { return a.parts == b.parts; }
  friend bool operator!=(const PlanKey& a, const PlanKey& b) { return !(a == b); }
};

// One executable unit: a single tape op, or a fused run of consecutive
// same-extent elementwise ops executed as one parallel sweep.
struct PlanStep {
  std::vector<int> op_indices;  // tape indices, in tape order
  bool fused = false;
  int64_t numel = 0;  // flat extent shared by a fused run
  int level = 0;      // dependence level (0 = no recorded producers)
};

class Plan {
 public:
  const std::vector<PlanStep>& steps() const { return steps_; }
  // Steps grouped by dependence level; steps within a level have no
  // dependencies on each other and may run concurrently.
  const std::vector<std::vector<int>>& levels() const { return levels_; }
  const MemoryPlan& memory() const { return memory_; }
  int num_ops() const { return num_ops_; }
  // Ops that were folded into multi-op fused steps.
  int fused_ops() const { return fused_ops_; }

 private:
  friend std::unique_ptr<Plan> BuildPlan(const tensor::rec::OpTape* tape, bool fuse);

  std::vector<PlanStep> steps_;
  std::vector<std::vector<int>> levels_;
  MemoryPlan memory_;
  int num_ops_ = 0;
  int fused_ops_ = 0;
};

// Compiles a recorded tape: fuses maximal runs of consecutive same-extent
// elementwise ops (when `fuse`), assigns dependence levels, and lays out the
// static arena. The tape must outlive the plan (steps index into it).
std::unique_ptr<Plan> BuildPlan(const tensor::rec::OpTape* tape, bool fuse);

// Owns one training loop's recorded tape, compiled plan, and cached backward
// order. Usage per epoch:
//
//   if (use_plan && session.Replay(MakeKey())) { /* replayed */ }
//   else {
//     { PlanSession::RecordScope record(use_plan ? &session : nullptr);
//       loss = BuildForward(); }
//     loss.Backward();
//     if (use_plan) session.Seal(loss, MakeKey());
//   }
//
// Not thread-safe; one session per loop, used from one thread at a time.
class PlanSession {
 public:
  PlanSession() = default;
  ~PlanSession();
  PlanSession(const PlanSession&) = delete;
  PlanSession& operator=(const PlanSession&) = delete;

  // Installs the session's tape as the thread's active tape for the scope's
  // lifetime (clearing any previous recording). A null session is a no-op,
  // so callers can gate recording on the runtime flag without duplicating
  // the forward-build code.
  class RecordScope {
   public:
    explicit RecordScope(PlanSession* session);
    ~RecordScope();
    RecordScope(const RecordScope&) = delete;
    RecordScope& operator=(const RecordScope&) = delete;

   private:
    tensor::rec::OpTape* previous_ = nullptr;
    bool installed_ = false;
  };

  // Compiles the recorded tape against `root` (the scalar loss) and caches
  // the backward order. `key` is the validity stamp for future Replay calls.
  void Seal(const tensor::Tensor& root, PlanKey key);

  // Re-executes the sealed plan (forward by level, then the cached backward
  // order) and returns true. Returns false — after discarding the stale
  // plan — when no plan is sealed, the key changed, or the global plan
  // version moved; the caller must re-record.
  bool Replay(const PlanKey& key);

  // Drops the plan, tape, and cached orders, severing the retained autograd
  // tape so intermediates return to the pool.
  void Invalidate();

  bool sealed() const { return plan_ != nullptr; }
  const Plan* plan() const { return plan_.get(); }
  const tensor::rec::OpTape& tape() const { return tape_; }

 private:
  tensor::rec::OpTape tape_;
  std::unique_ptr<Plan> plan_;
  tensor::Tensor root_;
  PlanKey key_;
  uint64_t global_version_ = 0;
  // Backward order cached at seal (post-order; run in reverse), and the
  // subset with backward_fns whose grads are zeroed before each replay.
  std::vector<tensor::internal::TensorNode*> backward_order_;
  std::vector<tensor::internal::TensorNode*> grad_nodes_;
};

}  // namespace revelio::plan

#endif  // REVELIO_PLAN_PLAN_H_
