#include "plan/arena.h"

#include <algorithm>
#include <unordered_map>

namespace revelio::plan {

namespace {

bool LiveOverlap(const ArenaSlot& a, const ArenaSlot& b) {
  return a.def <= b.last_use && b.def <= a.last_use;
}

bool ByteOverlap(const ArenaSlot& a, const ArenaSlot& b) {
  if (a.bytes == 0 || b.bytes == 0) return false;
  return a.offset < b.offset + b.bytes && b.offset < a.offset + a.bytes;
}

}  // namespace

MemoryPlan BuildMemoryPlan(const tensor::rec::OpTape& tape) {
  MemoryPlan plan;
  const auto& ops = tape.ops;
  const int n = static_cast<int>(ops.size());
  plan.slots.resize(n);

  std::unordered_map<const tensor::internal::TensorNode*, int> producer;
  producer.reserve(ops.size());
  for (int i = 0; i < n; ++i) {
    producer[ops[i].out.get()] = i;
  }

  for (int i = 0; i < n; ++i) {
    ArenaSlot& slot = plan.slots[i];
    slot.def = i;
    slot.last_use = i;
    slot.bytes = static_cast<size_t>(ops[i].out->numel()) * sizeof(float);
  }
  for (int i = 0; i < n; ++i) {
    for (const auto& input : ops[i].inputs) {
      auto it = producer.find(input.get());
      if (it != producer.end()) {
        plan.slots[it->second].last_use = std::max(plan.slots[it->second].last_use, i);
      }
    }
  }

  // First-fit in def order: place each slot at the lowest offset that clears
  // every already-placed slot whose liveness interval intersects its own.
  for (int i = 0; i < n; ++i) {
    ArenaSlot& slot = plan.slots[i];
    if (slot.bytes == 0) {
      slot.offset = 0;
      continue;
    }
    std::vector<const ArenaSlot*> conflicts;
    for (int j = 0; j < i; ++j) {
      const ArenaSlot& other = plan.slots[j];
      if (other.bytes > 0 && LiveOverlap(slot, other)) conflicts.push_back(&other);
    }
    std::sort(conflicts.begin(), conflicts.end(),
              [](const ArenaSlot* a, const ArenaSlot* b) { return a->offset < b->offset; });
    size_t offset = 0;
    for (const ArenaSlot* other : conflicts) {
      if (offset + slot.bytes <= other->offset) break;  // fits in the gap below `other`
      offset = std::max(offset, other->offset + other->bytes);
    }
    slot.offset = offset;
    plan.total_bytes = std::max(plan.total_bytes, offset + slot.bytes);
  }

  for (int i = 0; i < n; ++i) {
    size_t live = 0;
    for (const ArenaSlot& slot : plan.slots) {
      if (slot.def <= i && i <= slot.last_use) live += slot.bytes;
    }
    plan.peak_live_bytes = std::max(plan.peak_live_bytes, live);
  }
  return plan;
}

bool ValidateMemoryPlan(const MemoryPlan& plan) {
  const int n = static_cast<int>(plan.slots.size());
  for (int i = 0; i < n; ++i) {
    const ArenaSlot& a = plan.slots[i];
    if (a.last_use < a.def) return false;
    if (a.bytes > 0 && a.offset + a.bytes > plan.total_bytes) return false;
    for (int j = i + 1; j < n; ++j) {
      const ArenaSlot& b = plan.slots[j];
      if (LiveOverlap(a, b) && ByteOverlap(a, b)) return false;
    }
  }
  return true;
}

}  // namespace revelio::plan
