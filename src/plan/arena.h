#ifndef REVELIO_PLAN_ARENA_H_
#define REVELIO_PLAN_ARENA_H_

// Static memory plan for a recorded op tape (DESIGN.md §12).
//
// At seal time every op output gets a forward liveness interval
// [def, last_use] over op indices (def = the producing op, last_use = the
// last op reading it forward) and a byte extent, and first-fit coloring
// assigns arena offsets so that no two intervals that overlap in time
// overlap in memory. This is the layout a slab backend would allocate in one
// shot; today the physical backing is the pool buffers pinned by the tape
// (already resident, so replay performs zero acquisitions — gated by the
// pool-stats delta in tests), and the plan doubles as the specification the
// validity property suite checks.

#include <cstddef>
#include <vector>

#include "tensor/record.h"

namespace revelio::plan {

struct ArenaSlot {
  int def = 0;       // producing op index (tape order)
  int last_use = 0;  // last op index reading the output forward (>= def)
  size_t bytes = 0;  // float payload of the output tensor
  size_t offset = 0; // assigned arena offset
};

struct MemoryPlan {
  std::vector<ArenaSlot> slots;  // one per tape op, in tape order
  size_t total_bytes = 0;        // arena extent (max offset + bytes)
  size_t peak_live_bytes = 0;    // sum of bytes live at the busiest op index
};

// Computes liveness intervals and first-fit offsets for every op output on
// the tape. O(n^2) in the op count at seal time; replay never touches it.
MemoryPlan BuildMemoryPlan(const tensor::rec::OpTape& tape);

// True iff no two slots whose liveness intervals intersect occupy
// overlapping byte ranges (zero-byte slots never conflict) and every slot
// fits inside total_bytes. The plan-validity property suite drives this.
bool ValidateMemoryPlan(const MemoryPlan& plan);

}  // namespace revelio::plan

#endif  // REVELIO_PLAN_ARENA_H_
