#include "plan/plan.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <string>
#include <unordered_map>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/bf16.h"
#include "tensor/op_helpers.h"
#include "tensor/pool.h"
#include "util/check.h"
#include "util/parallel.h"

namespace revelio::plan {

namespace {

bool EnvFlagDefault(const char* name) {
  const char* env = std::getenv(name);
  if (env == nullptr) return true;
  const std::string value(env);
  return !(value == "0" || value == "false" || value == "off");
}

std::atomic<bool>& ExecPlanFlag() {
  static std::atomic<bool> flag(EnvFlagDefault("REVELIO_EXEC_PLAN"));
  return flag;
}

std::atomic<bool>& PlanFuseFlag() {
  static std::atomic<bool> flag(EnvFlagDefault("REVELIO_PLAN_FUSE"));
  return flag;
}

std::atomic<uint64_t>& GlobalVersionCounter() {
  static std::atomic<uint64_t> version(1);
  return version;
}

// Runs one plan step: a fused run sweeps every member chunk over each flat
// range in tape order (same bits as running the member ops back to back,
// since chunked kernels are pointwise); a plain step re-runs its recorded
// closure.
void ExecuteStep(const tensor::rec::OpTape& tape, const PlanStep& step) {
  if (step.fused) {
    const auto& ops = tape.ops;
    const auto& indices = step.op_indices;
    util::ParallelFor(0, step.numel, tensor::kElementwiseGrain,
                      [&ops, &indices](int64_t begin, int64_t end) {
                        for (int idx : indices) ops[idx].chunk(begin, end);
                      });
  } else {
    tape.ops[step.op_indices[0]].replay();
  }
}

}  // namespace

bool ExecPlanEnabled() { return ExecPlanFlag().load(std::memory_order_relaxed); }

void SetExecPlanEnabled(bool enabled) {
  ExecPlanFlag().store(enabled, std::memory_order_relaxed);
}

bool PlanFuseEnabled() { return PlanFuseFlag().load(std::memory_order_relaxed); }

void SetPlanFuseEnabled(bool enabled) {
  PlanFuseFlag().store(enabled, std::memory_order_relaxed);
}

uint64_t GlobalPlanVersion() {
  return GlobalVersionCounter().load(std::memory_order_relaxed);
}

void BumpGlobalPlanVersion() {
  GlobalVersionCounter().fetch_add(1, std::memory_order_relaxed);
}

std::unique_ptr<Plan> BuildPlan(const tensor::rec::OpTape* tape, bool fuse) {
  CHECK(tape != nullptr);
  auto plan = std::make_unique<Plan>();
  const auto& ops = tape->ops;
  const int n = static_cast<int>(ops.size());
  plan->num_ops_ = n;

  // Fusion: maximal runs of consecutive tape ops that expose a chunk kernel
  // with the same flat extent. Tape order resolves in-group dependencies
  // per chunk, so the fused sweep is bitwise-equal to the op-by-op replay.
  int i = 0;
  while (i < n) {
    PlanStep step;
    step.op_indices.push_back(i);
    if (fuse && ops[i].chunk) {
      int j = i + 1;
      while (j < n && ops[j].chunk && ops[j].numel == ops[i].numel) {
        step.op_indices.push_back(j);
        ++j;
      }
    }
    if (step.op_indices.size() > 1) {
      step.fused = true;
      step.numel = ops[i].numel;
      plan->fused_ops_ += static_cast<int>(step.op_indices.size());
    }
    i += static_cast<int>(step.op_indices.size());
    plan->steps_.push_back(std::move(step));
  }

  // Dependence levels: a step's level is one past the deepest step producing
  // any of its inputs. Steps sharing a level are independent.
  std::unordered_map<const tensor::internal::TensorNode*, int> producer_step;
  for (int s = 0; s < static_cast<int>(plan->steps_.size()); ++s) {
    for (int op : plan->steps_[s].op_indices) producer_step[ops[op].out.get()] = s;
  }
  int max_level = -1;
  for (int s = 0; s < static_cast<int>(plan->steps_.size()); ++s) {
    PlanStep& step = plan->steps_[s];
    int level = 0;
    for (int op : step.op_indices) {
      for (const auto& input : ops[op].inputs) {
        auto it = producer_step.find(input.get());
        if (it != producer_step.end() && it->second != s) {
          level = std::max(level, plan->steps_[it->second].level + 1);
        }
      }
    }
    step.level = level;
    max_level = std::max(max_level, level);
  }
  plan->levels_.assign(static_cast<size_t>(max_level + 1), {});
  for (int s = 0; s < static_cast<int>(plan->steps_.size()); ++s) {
    plan->levels_[plan->steps_[s].level].push_back(s);
  }

  plan->memory_ = BuildMemoryPlan(*tape);
  return plan;
}

PlanSession::~PlanSession() { Invalidate(); }

PlanSession::RecordScope::RecordScope(PlanSession* session) {
  if (session == nullptr) return;
  previous_ = tensor::rec::ActiveTape();
  session->tape_.ops.clear();
  tensor::rec::SetActiveTape(&session->tape_);
  installed_ = true;
}

PlanSession::RecordScope::~RecordScope() {
  if (installed_) tensor::rec::SetActiveTape(previous_);
}

void PlanSession::Seal(const tensor::Tensor& root, PlanKey key) {
  CHECK(root.defined());
  CHECK(tensor::rec::ActiveTape() != &tape_) << "Seal inside this session's RecordScope";
  obs::ScopedSpan span("plan.seal", obs::FlightPolicy::kSkip);
  root_ = root;
  key_ = std::move(key);
  global_version_ = GlobalPlanVersion();
  plan_ = BuildPlan(&tape_, PlanFuseEnabled());
  backward_order_.clear();
  grad_nodes_.clear();
  if (root.node()->requires_grad) {
    tensor::internal::CollectBackwardOrder(root.node().get(), &backward_order_);
    for (auto* node : backward_order_) {
      if (node->backward_fn) grad_nodes_.push_back(node);
    }
  }
  static obs::Counter* records = obs::MetricsRegistry::Global().GetCounter("plan.records");
  static obs::Counter* steps = obs::MetricsRegistry::Global().GetCounter("plan.steps");
  static obs::Counter* fused = obs::MetricsRegistry::Global().GetCounter("plan.fused_ops");
  records->Increment();
  steps->Add(plan_->steps().size());
  fused->Add(static_cast<uint64_t>(plan_->fused_ops()));
}

bool PlanSession::Replay(const PlanKey& key) {
  if (plan_ == nullptr) return false;
  if (global_version_ != GlobalPlanVersion() || key != key_) {
    static obs::Counter* invalidations =
        obs::MetricsRegistry::Global().GetCounter("plan.invalidations");
    invalidations->Increment();
    Invalidate();
    return false;
  }
  obs::ScopedSpan span("plan.replay", obs::FlightPolicy::kSkip);
  // Replay overwrites every tape output's `values` in place; any bf16 mirror
  // cached on those nodes (tensor/bf16.h) is stale the moment a step runs.
  for (const auto& op : tape_.ops) {
    if (op.out->bf16_values != nullptr) tensor::bf16::InvalidatePacked(op.out.get());
  }
  tensor::TensorPool* pool = tensor::TensorPool::ThreadLocal();
  const uint64_t acquires_before = pool ? pool->stats().hits + pool->stats().misses : 0;

  // Forward: levels in order; independent steps within a level go wide on
  // the thread pool (each step writes only its own output, and nested
  // ParallelFor inside a step runs serially — see util/parallel.h).
  for (const auto& level : plan_->levels()) {
    if (level.size() > 1 && util::NumThreads() > 1) {
      const auto& steps = plan_->steps();
      const auto& tape = tape_;
      util::ParallelFor(0, static_cast<int64_t>(level.size()), 1,
                        [&level, &steps, &tape](int64_t begin, int64_t end) {
                          for (int64_t s = begin; s < end; ++s) {
                            ExecuteStep(tape, steps[level[s]]);
                          }
                        });
    } else {
      for (int s : level) ExecuteStep(tape_, plan_->steps()[s]);
    }
  }

  // Backward: fresh grads for every tape node (leaf grads belong to the
  // optimizer), seed the root, then the cached order — exactly what an
  // eager Backward() on a freshly built tape computes.
  if (!backward_order_.empty()) {
    for (auto* node : grad_nodes_) {
      std::fill(node->grad.begin(), node->grad.end(), 0.0f);
    }
    tensor::internal::TensorNode* root = root_.node().get();
    root->EnsureGrad();
    root->grad[0] += 1.0f;
    for (auto it = backward_order_.rbegin(); it != backward_order_.rend(); ++it) {
      if ((*it)->backward_fn) (*it)->backward_fn();
    }
  }

  static obs::Counter* replays = obs::MetricsRegistry::Global().GetCounter("plan.replays");
  static obs::Counter* pool_acquires =
      obs::MetricsRegistry::Global().GetCounter("plan.replay_pool_acquires");
  replays->Increment();
  if (pool) {
    pool_acquires->Add(pool->stats().hits + pool->stats().misses - acquires_before);
  }
  return true;
}

void PlanSession::Invalidate() {
  if (root_.defined()) root_.ReleaseTape();
  root_ = tensor::Tensor();
  tape_.ops.clear();
  plan_.reset();
  backward_order_.clear();
  grad_nodes_.clear();
}

}  // namespace revelio::plan
