#ifndef REVELIO_CORE_REVELIO_H_
#define REVELIO_CORE_REVELIO_H_

// REVELIO: learning-based message-flow explanation (paper §IV).
//
// Given a pretrained GNN and one instance, Revelio learns one mask per
// message flow (M in R^{|F|}) plus a per-layer weight vector w in R^L:
//
//   omega[F]    = tanh(M)                                   (Eq. 4)
//   omega[e^l]  = sigmoid( sum_{F through (l,e)} omega[F] * exp(w_l) )  (Eq. 5/7)
//   m_ij^l      = MSG(...) * omega[e^l]                      (Eq. 6)
//
// trained with Adam on the factual objective -log P(c | G, F-hat) (Eq. 1) or
// the counterfactual objective -log(1 - P(c | ...)) (Eq. 2), each with the
// matching sparsity regularizer over flow-carrying layer edges (Eqs. 8/9).
//
// The output is flow-level importance in (-1, 1), translated into per-layer
// edge masks and per-edge scores. Counterfactual scores follow §IV-C:
// omega'[F] = -omega[F] and omega'[e] = 1 - omega[e], so higher always means
// more important.

#include <string>
#include <vector>

#include "explain/explainer.h"
#include "flow/flow_scores.h"
#include "flow/message_flow.h"

namespace revelio::core {

struct RevelioOptions {
  int epochs = 150;              // paper default: 500 (use --full benches for that)
  float learning_rate = 0.01f;   // paper: 1e-2
  float alpha = 0.05f;           // sparsity strength, adapted per dataset in the paper
  int64_t max_flows = 500'000;   // feasibility cap; pre-screen with CountFlowsToTarget
  uint64_t seed = 7;
  // Ablation switches (bench_ablation_design):
  bool use_tanh_flow_masks = true;    // false -> sigmoid (paper argues tanh is better)
  enum class LayerScaling { kExp, kSoftplus, kNone };
  LayerScaling layer_scaling = LayerScaling::kExp;

  // §VI future work, implemented: prefilter to the k most promising flows
  // before mask learning (0 = disabled). A single gradient pass at
  // initialization scores every flow by |d objective / d M_k|; only the
  // top-k flows' masks are then optimized (the rest score 0), cutting the
  // per-epoch O(L|F|) mask bookkeeping to O(L k).
  int prefilter_top_k = 0;
};

class RevelioExplainer : public explain::Explainer {
 public:
  explicit RevelioExplainer(const RevelioOptions& options) : options_(options) {}

  std::string name() const override { return "Revelio"; }
  bool supports_counterfactual() const override { return true; }

  // Full flow-level result, used by the qualitative studies (Tables VI/VII).
  struct FlowExplanation {
    flow::FlowSet flows;
    std::vector<double> flow_scores;  // omega[F], negated for counterfactual
    std::vector<std::vector<double>> layer_edge_masks;  // sigmoid outputs, [L][E_layer]
    std::vector<double> edge_scores;  // per base edge
    std::vector<double> layer_weights;  // learned w (length L)
  };
  FlowExplanation ExplainFlows(const explain::ExplanationTask& task,
                               explain::Objective objective);

  // Mega-batched variant over a group of tasks sharing one (frozen) model:
  // the group's computation subgraphs fuse into a block-diagonal mega-graph
  // and train with one shared forward/backward per Adam step. Per-instance
  // masks stay independent variables, the batched loss is the sum of the
  // per-instance losses, and every result is bitwise-equal to ExplainFlows
  // on the same task (see explain/batch_runner.h). Groups the plan builder
  // rejects fall back to the sequential loop internally.
  std::vector<FlowExplanation> ExplainFlowsBatch(
      const std::vector<const explain::ExplanationTask*>& tasks,
      explain::Objective objective);

  bool supports_megabatch() const override { return true; }

  const RevelioOptions& options() const { return options_; }
  void set_alpha(float alpha) { options_.alpha = alpha; }

 protected:
  explain::Explanation ExplainImpl(const explain::ExplanationTask& task,
                                   explain::Objective objective) override;
  std::vector<explain::Explanation> ExplainBatchImpl(
      const std::vector<const explain::ExplanationTask*>& tasks,
      explain::Objective objective) override;

 private:
  RevelioOptions options_;
};

}  // namespace revelio::core

#endif  // REVELIO_CORE_REVELIO_H_
