#include "core/revelio.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "explain/batch_runner.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "obs/audit.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "plan/plan.h"
#include "tensor/ops.h"
#include "util/check.h"

namespace revelio::core {

// The mega-batch MegaBatchPlan local below shadows the plan namespace.
namespace execplan = revelio::plan;

using explain::Explanation;
using explain::ExplanationTask;
using explain::Objective;
using tensor::Tensor;

namespace {

// Builds the per-layer edge masks omega[E] (Eq. 5/7) from the flow masks.
// Returns one (num_layer_edges x 1) tensor per layer, each differentiable
// w.r.t. `flow_masks` and `layer_weights`.
std::vector<Tensor> BuildLayerEdgeMasks(const flow::FlowSet& flows, const Tensor& flow_scores,
                                        const Tensor& layer_weights,
                                        RevelioOptions::LayerScaling scaling) {
  std::vector<Tensor> masks;
  masks.reserve(flows.num_layers());
  Tensor scale;
  switch (scaling) {
    case RevelioOptions::LayerScaling::kExp:
      scale = tensor::Exp(layer_weights);
      break;
    case RevelioOptions::LayerScaling::kSoftplus:
      scale = tensor::Softplus(layer_weights);
      break;
    case RevelioOptions::LayerScaling::kNone:
      break;
  }
  for (int l = 0; l < flows.num_layers(); ++l) {
    // Accumulate omega[F] onto the layer edges each flow traverses at l.
    Tensor accumulated =
        tensor::ScatterAddRows(flow_scores, flows.EdgesAtLayer(l), flows.num_layer_edges());
    if (scale.defined()) {
      accumulated = tensor::ScaleByScalarTensor(accumulated, tensor::Select(scale, l, 0));
    }
    masks.push_back(tensor::Sigmoid(accumulated));
  }
  return masks;
}

// Mean of mask values over flow-carrying layer edges (the Eq. 8 regularizer
// skips edges unused by the GNN's computation toward the target).
Tensor UsedEdgeMean(const flow::FlowSet& flows, const std::vector<Tensor>& masks) {
  Tensor total;
  int count = 0;
  for (int l = 0; l < flows.num_layers(); ++l) {
    const std::vector<int> used = flows.UsedEdgesAtLayer(l);
    if (used.empty()) continue;
    Tensor layer_sum = tensor::Sum(tensor::GatherRows(masks[l], used));
    total = total.defined() ? tensor::Add(total, layer_sum) : layer_sum;
    count += static_cast<int>(used.size());
  }
  CHECK(total.defined()) << "no flow-carrying layer edges";
  return tensor::MulScalar(total, 1.0f / static_cast<float>(count));
}

}  // namespace

namespace {

// One gradient pass at initialization: |d objective / d M_k| per flow.
// Used by the §VI prefiltering extension to pick the flows worth learning.
std::vector<double> InitialFlowSaliency(const ExplanationTask& task,
                                        const gnn::LayerEdgeSet& edges,
                                        const flow::FlowSet& flows, Objective objective,
                                        RevelioOptions::LayerScaling scaling) {
  Tensor flow_params = Tensor::Zeros(flows.num_flows(), 1).WithRequiresGrad();
  Tensor layer_weights = Tensor::Zeros(task.model->num_layers(), 1);
  std::vector<Tensor> masks =
      BuildLayerEdgeMasks(flows, tensor::Tanh(flow_params), layer_weights, scaling);
  Tensor logits = task.model->Run(*task.graph, edges, task.features, masks).logits;
  Tensor loss = objective == Objective::kFactual
                    ? nn::FactualObjective(logits, task.logit_row(), task.target_class)
                    : nn::CounterfactualObjective(logits, task.logit_row(), task.target_class);
  loss.Backward();
  std::vector<double> saliency(flows.num_flows());
  for (int k = 0; k < flows.num_flows(); ++k) {
    saliency[k] = std::fabs(flow_params.GradAt(k, 0));
  }
  return saliency;
}

// Keeps only the flows in `kept` (a FlowSet over the same layer-edge space).
flow::FlowSet RestrictFlows(const flow::FlowSet& flows, const gnn::LayerEdgeSet& edges,
                            const std::vector<int>& kept) {
  flow::FlowSet reduced(flows.num_layers(), edges.num_layer_edges());
  std::vector<int> path(flows.num_layers());
  for (int k : kept) {
    for (int l = 0; l < flows.num_layers(); ++l) path[l] = flows.EdgeAt(l, k);
    reduced.AddFlow(path);
  }
  return reduced;
}

// Detached readout shared by the sequential and mega-batched paths: given
// one instance's trained parameters, fills every score field of `result`
// (whose `flows` must already hold the learned flow set).
void FinishFlowExplanation(const gnn::LayerEdgeSet& edges, const Tensor& flow_mask_params,
                           const Tensor& layer_weights, Objective objective,
                           const RevelioOptions& options,
                           RevelioExplainer::FlowExplanation* result) {
  const flow::FlowSet& flows = result->flows;
  const int num_layers = flows.num_layers();
  Tensor omega_flows = options.use_tanh_flow_masks ? tensor::Tanh(flow_mask_params)
                                                   : tensor::Sigmoid(flow_mask_params);
  std::vector<Tensor> masks =
      BuildLayerEdgeMasks(flows, omega_flows, layer_weights, options.layer_scaling);

  result->flow_scores.resize(flows.num_flows());
  const float sign = objective == Objective::kCounterfactual ? -1.0f : 1.0f;
  for (int k = 0; k < flows.num_flows(); ++k) {
    result->flow_scores[k] = sign * omega_flows.At(k, 0);
  }
  result->layer_edge_masks.assign(num_layers,
                                  std::vector<double>(edges.num_layer_edges(), 0.0));
  for (int l = 0; l < num_layers; ++l) {
    for (int e = 0; e < edges.num_layer_edges(); ++e) {
      const double mask_value = masks[l].At(e, 0);
      // §IV-C: counterfactual layer-edge importance reduces to 1 - omega[e].
      result->layer_edge_masks[l][e] =
          objective == Objective::kCounterfactual ? 1.0 - mask_value : mask_value;
    }
  }
  result->edge_scores =
      flow::LayerEdgeScoresToEdgeScores(flows, edges, result->layer_edge_masks);
  result->layer_weights.resize(num_layers);
  for (int l = 0; l < num_layers; ++l) result->layer_weights[l] = layer_weights.At(l, 0);
}

// Mean binary entropy (nats) of the mask probabilities in rows [begin, end)
// of omega. Tanh masks live in [-1, 1] and map to p = (v + 1) / 2; p is
// clamped away from {0, 1} so the entropy stays finite once masks saturate.
// Audit-only readout: every access is a detached read of trained values.
double MeanMaskEntropy(const Tensor& omega, int begin, int end, bool tanh_masks) {
  if (end <= begin) return 0.0;
  double total = 0.0;
  for (int k = begin; k < end; ++k) {
    double p = omega.At(k, 0);
    if (tanh_masks) p = 0.5 * (p + 1.0);
    p = std::min(1.0 - 1e-12, std::max(1e-12, p));
    total += -p * std::log(p) - (1.0 - p) * std::log(1.0 - p);
  }
  return total / static_cast<double>(end - begin);
}

void AppendRevelioAuditConfig(obs::AuditRecord* audit, const RevelioOptions& options) {
  if (audit == nullptr) return;
  audit->config.emplace_back("epochs", std::to_string(options.epochs));
  audit->config.emplace_back("learning_rate", std::to_string(options.learning_rate));
  audit->config.emplace_back("alpha", std::to_string(options.alpha));
  audit->config.emplace_back("seed", std::to_string(options.seed));
  audit->config.emplace_back("max_flows", std::to_string(options.max_flows));
  audit->config.emplace_back("prefilter_top_k", std::to_string(options.prefilter_top_k));
  audit->config.emplace_back("tanh_flow_masks", options.use_tanh_flow_masks ? "1" : "0");
}

}  // namespace

RevelioExplainer::FlowExplanation RevelioExplainer::ExplainFlows(const ExplanationTask& task,
                                                                 Objective objective) {
  CHECK(task.model != nullptr && task.graph != nullptr);
  const gnn::GnnModel& model = *task.model;
  const int num_layers = model.num_layers();
  const gnn::LayerEdgeSet edges = gnn::BuildLayerEdges(*task.graph);

  AppendRevelioAuditConfig(obs::AuditScope::Current(), options_);

  FlowExplanation result;
  {
    obs::ScopedSpan span("revelio.enumerate_flows");
    if (task.is_node_task()) {
      result.flows =
          flow::EnumerateFlowsToTarget(edges, task.target_node, num_layers, options_.max_flows);
    } else {
      result.flows = flow::EnumerateAllFlows(edges, num_layers, options_.max_flows);
    }
    obs::AuditScope::AddPhase("enumerate_flows", span.ElapsedSeconds());
  }
  CHECK_GT(result.flows.num_flows(), 0);

  // §VI prefiltering: learn masks only for the top-k most salient flows.
  std::vector<int> kept_flows;  // indices into the FULL flow set (empty = all)
  if (options_.prefilter_top_k > 0 &&
      options_.prefilter_top_k < result.flows.num_flows()) {
    obs::ScopedSpan span("revelio.prefilter");
    const std::vector<double> saliency = InitialFlowSaliency(
        task, edges, result.flows, objective, options_.layer_scaling);
    kept_flows = flow::TopKFlows(saliency, options_.prefilter_top_k);
    result.flows = RestrictFlows(result.flows, edges, kept_flows);
    obs::AuditScope::AddPhase("prefilter", span.ElapsedSeconds());
  }
  const flow::FlowSet& flows = result.flows;

  // Learnable parameters: flow masks M and layer weights w.
  util::Rng rng(options_.seed);
  Tensor flow_mask_params = Tensor::Randn(flows.num_flows(), 1, &rng);
  for (auto& v : *flow_mask_params.mutable_values()) v *= 0.1f;
  flow_mask_params.WithRequiresGrad();
  Tensor layer_weights = Tensor::Zeros(num_layers, 1).WithRequiresGrad();

  nn::Adam optimizer({flow_mask_params, layer_weights}, options_.learning_rate);
  const int logit_row = task.logit_row();

  {
    obs::ScopedSpan optimize_span("revelio.optimize");
    // Recorded execution plan (DESIGN.md §12): epoch 0 records the op tape
    // while running eagerly; later epochs replay it (fused + level-parallel,
    // no pool traffic) with bitwise-identical results. Retained handles read
    // this epoch's values in place after a replay.
    const bool use_plan = execplan::ExecPlanEnabled();
    execplan::PlanSession plan_session;
    auto make_key = [&] {
      return execplan::PlanKey{{task.graph->structure_version(),
                            static_cast<uint64_t>(flows.num_flows()),
                            static_cast<uint64_t>(num_layers),
                            static_cast<uint64_t>(task.features.rows()),
                            static_cast<uint64_t>(task.features.cols()),
                            static_cast<uint64_t>(logit_row),
                            static_cast<uint64_t>(task.target_class),
                            static_cast<uint64_t>(objective == Objective::kFactual ? 1 : 0),
                            static_cast<uint64_t>(options_.use_tanh_flow_masks ? 1 : 0),
                            static_cast<uint64_t>(options_.layer_scaling)}};
    };
    Tensor omega_flows;
    Tensor loss;
    for (int epoch = 0; epoch < options_.epochs; ++epoch) {
      optimizer.ZeroGrad();
      const bool replayed = use_plan && plan_session.Replay(make_key());
      if (!replayed) {
        {
          execplan::PlanSession::RecordScope record(use_plan ? &plan_session : nullptr);
          omega_flows = options_.use_tanh_flow_masks ? tensor::Tanh(flow_mask_params)
                                                     : tensor::Sigmoid(flow_mask_params);
          std::vector<Tensor> masks =
              BuildLayerEdgeMasks(flows, omega_flows, layer_weights, options_.layer_scaling);
          Tensor logits = model.Run(*task.graph, edges, task.features, masks).logits;

          Tensor objective_loss =
              objective == Objective::kFactual
                  ? nn::FactualObjective(logits, logit_row, task.target_class)
                  : nn::CounterfactualObjective(logits, logit_row, task.target_class);
          Tensor regularizer = UsedEdgeMean(flows, masks);
          if (objective == Objective::kCounterfactual) {
            // Eq. 9 penalizes mean(1 - omega[E]).
            regularizer = tensor::AddScalar(tensor::Neg(regularizer), 1.0f);
          }
          loss = tensor::Add(objective_loss, tensor::MulScalar(regularizer, options_.alpha));
        }
        loss.Backward();
        if (use_plan) plan_session.Seal(loss, make_key());
      }
      optimizer.Step();
      if (obs::AuditRecord* audit = obs::AuditScope::Current()) {
        audit->loss_curve.push_back(loss.At(0, 0));
        audit->mask_entropy.push_back(
            MeanMaskEntropy(omega_flows, 0, flows.num_flows(), options_.use_tanh_flow_masks));
      }
      // Legacy path: recycle this epoch's intermediates (after the first
      // epoch primes the pool's size classes the loop runs allocation-free).
      // The plan path instead keeps the tape pinned for replay.
      if (!use_plan) loss.ReleaseTape();
    }
    obs::AuditScope::AddPhase("optimize", optimize_span.ElapsedSeconds());
  }

  obs::ScopedSpan extract_span("revelio.extract");
  // Final scores (detached).
  FinishFlowExplanation(edges, flow_mask_params, layer_weights, objective, options_, &result);
  obs::AuditScope::AddPhase("extract", extract_span.ElapsedSeconds());
  return result;
}

std::vector<RevelioExplainer::FlowExplanation> RevelioExplainer::ExplainFlowsBatch(
    const std::vector<const ExplanationTask*>& tasks, Objective objective) {
  CHECK(!tasks.empty());
  std::vector<FlowExplanation> results;
  if (tasks.size() == 1) {
    results.push_back(ExplainFlows(*tasks[0], objective));
    return results;
  }
  util::StatusOr<explain::MegaBatchPlan> plan_or = explain::BuildMegaBatchPlan(tasks);
  if (!plan_or.ok()) {
    // Heterogeneous or malformed group: sequential fallback.
    results.reserve(tasks.size());
    for (size_t i = 0; i < tasks.size(); ++i) {
      obs::AuditScope::SetInstanceBase(i);
      results.push_back(ExplainFlows(*tasks[i], objective));
    }
    obs::AuditScope::SetInstanceBase(0);
    return results;
  }
  for (size_t i = 0; i < tasks.size(); ++i) {
    AppendRevelioAuditConfig(obs::AuditScope::Current(i), options_);
  }
  const explain::MegaBatchPlan& plan = plan_or.value();
  const gnn::GnnModel& model = *tasks[0]->model;
  const int num_layers = model.num_layers();
  const int num_instances = plan.num_instances;

  // Per-instance flow enumeration and optional prefiltering stay sequential:
  // they are cheap relative to mask training and trivially bitwise-equal.
  results.resize(num_instances);
  std::vector<gnn::LayerEdgeSet> edges(num_instances);
  {
    obs::ScopedSpan span("revelio.enumerate_flows");
    for (int i = 0; i < num_instances; ++i) {
      edges[i] = gnn::BuildLayerEdges(*tasks[i]->graph);
      results[i].flows = tasks[i]->is_node_task()
                             ? flow::EnumerateFlowsToTarget(edges[i], tasks[i]->target_node,
                                                            num_layers, options_.max_flows)
                             : flow::EnumerateAllFlows(edges[i], num_layers, options_.max_flows);
      CHECK_GT(results[i].flows.num_flows(), 0);
    }
    obs::AuditScope::AddPhaseAll("enumerate_flows", span.ElapsedSeconds());
  }
  if (options_.prefilter_top_k > 0) {
    obs::ScopedSpan span("revelio.prefilter");
    for (int i = 0; i < num_instances; ++i) {
      if (options_.prefilter_top_k >= results[i].flows.num_flows()) continue;
      const std::vector<double> saliency = InitialFlowSaliency(
          *tasks[i], edges[i], results[i].flows, objective, options_.layer_scaling);
      const std::vector<int> kept = flow::TopKFlows(saliency, options_.prefilter_top_k);
      results[i].flows = RestrictFlows(results[i].flows, edges[i], kept);
    }
    obs::AuditScope::AddPhaseAll("prefilter", span.ElapsedSeconds());
  }

  // Concatenated learnable parameters: every instance owns a contiguous
  // segment of the flow-mask vector and of the (B*L x 1) layer weights.
  // Each segment is initialized from its own fresh Rng(seed), reproducing
  // the sequential draws exactly.
  std::vector<int> flow_offset(num_instances + 1, 0);
  for (int i = 0; i < num_instances; ++i) {
    flow_offset[i + 1] = flow_offset[i] + results[i].flows.num_flows();
  }
  const int total_flows = flow_offset[num_instances];
  const int total_mask_rows = plan.num_mask_rows();

  Tensor flow_mask_params = Tensor::Zeros(total_flows, 1);
  {
    std::vector<float>* values = flow_mask_params.mutable_values();
    for (int i = 0; i < num_instances; ++i) {
      util::Rng rng(options_.seed);
      Tensor init = Tensor::Randn(results[i].flows.num_flows(), 1, &rng);
      const auto& src = init.values();
      for (size_t k = 0; k < src.size(); ++k) {
        (*values)[static_cast<size_t>(flow_offset[i]) + k] = src[k] * 0.1f;
      }
    }
  }
  flow_mask_params.WithRequiresGrad();
  Tensor layer_weights = Tensor::Zeros(num_instances * num_layers, 1).WithRequiresGrad();
  nn::Adam optimizer({flow_mask_params, layer_weights}, options_.learning_rate);

  // Static index plumbing reused every epoch: flow -> mega layer-edge row
  // per layer (Eq. 5 scatter), the per-row layer-scale source, and the
  // flow-carrying rows + instance segment ids behind the Eq. 8 regularizer.
  //
  // Masks are built directly in mega layer-edge order (base edges
  // instance-major, then self-loops instance-major), so the shared
  // SpmmCsrWeighted aggregation consumes them without a per-epoch pack
  // permutation. Per-instance accumulation order is unchanged: within one
  // instance the scatter/gather index lists keep their sequential order, and
  // every destination row still belongs to exactly one instance.
  const int mega_base_edges = plan.base_edge_offset[num_instances];
  auto mega_row = [&plan, mega_base_edges](int i, int e) {
    const int base = plan.instance_base_edges(i);
    return e < base ? plan.base_edge_offset[i] + e
                    : mega_base_edges + plan.node_offset[i] + (e - base);
  };
  std::vector<std::vector<int>> scatter_idx(num_layers);
  std::vector<std::vector<int>> used_idx(num_layers);
  std::vector<std::vector<int>> used_seg(num_layers);
  const bool scaled = options_.layer_scaling != RevelioOptions::LayerScaling::kNone;
  std::vector<std::vector<int>> scale_rows(scaled ? num_layers : 0);
  std::vector<int> used_counts(num_instances, 0);
  for (int l = 0; l < num_layers; ++l) {
    scatter_idx[l].reserve(total_flows);
    for (int i = 0; i < num_instances; ++i) {
      const flow::FlowSet& flows = results[i].flows;
      for (int e : flows.EdgesAtLayer(l)) scatter_idx[l].push_back(mega_row(i, e));
      const std::vector<int> used = flows.UsedEdgesAtLayer(l);
      for (int e : used) {
        used_idx[l].push_back(mega_row(i, e));
        used_seg[l].push_back(i);
      }
      used_counts[i] += static_cast<int>(used.size());
    }
    if (scaled) {
      scale_rows[l].resize(total_mask_rows);
      for (int i = 0; i < num_instances; ++i) {
        for (int r = plan.base_edge_offset[i]; r < plan.base_edge_offset[i + 1]; ++r) {
          scale_rows[l][r] = i * num_layers + l;
        }
        for (int v = plan.node_offset[i]; v < plan.node_offset[i + 1]; ++v) {
          scale_rows[l][mega_base_edges + v] = i * num_layers + l;
        }
      }
    }
  }
  std::vector<int> target_classes(num_instances);
  for (int i = 0; i < num_instances; ++i) target_classes[i] = tasks[i]->target_class;
  std::vector<float> inv_counts(num_instances);
  for (int i = 0; i < num_instances; ++i) {
    CHECK_GT(used_counts[i], 0) << "no flow-carrying layer edges";
    inv_counts[i] = 1.0f / static_cast<float>(used_counts[i]);
  }
  const Tensor inv_count_vec = Tensor::FromData(num_instances, 1, std::move(inv_counts));

  {
    obs::ScopedSpan optimize_span("revelio.optimize");
    static obs::Counter* steps = obs::MetricsRegistry::Global().GetCounter("megabatch.steps");
    const std::vector<int>* node_to_graph = plan.node_task ? nullptr : &plan.batch.node_to_graph;
    // Recorded execution plan over the fused step (DESIGN.md §12): the key
    // folds in every instance's graph stamp plus the fused extents, so any
    // membership or shape change forces a re-record.
    const bool use_plan = execplan::ExecPlanEnabled();
    execplan::PlanSession plan_session;
    auto make_key = [&] {
      execplan::PlanKey key;
      key.parts = {static_cast<uint64_t>(num_instances),
                   static_cast<uint64_t>(total_flows),
                   static_cast<uint64_t>(total_mask_rows),
                   static_cast<uint64_t>(num_layers),
                   static_cast<uint64_t>(objective == Objective::kFactual ? 1 : 0),
                   static_cast<uint64_t>(options_.use_tanh_flow_masks ? 1 : 0),
                   static_cast<uint64_t>(options_.layer_scaling)};
      for (int i = 0; i < num_instances; ++i) {
        key.parts.push_back(tasks[i]->graph->structure_version());
      }
      return key;
    };
    Tensor omega_flows;
    Tensor p;
    Tensor regularizer;
    Tensor loss;
    for (int epoch = 0; epoch < options_.epochs; ++epoch) {
      optimizer.ZeroGrad();
      const bool replayed = use_plan && plan_session.Replay(make_key());
      if (!replayed) {
        {
          execplan::PlanSession::RecordScope record(use_plan ? &plan_session : nullptr);
          omega_flows = options_.use_tanh_flow_masks ? tensor::Tanh(flow_mask_params)
                                                     : tensor::Sigmoid(flow_mask_params);
          Tensor scale;
          switch (options_.layer_scaling) {
            case RevelioOptions::LayerScaling::kExp:
              scale = tensor::Exp(layer_weights);
              break;
            case RevelioOptions::LayerScaling::kSoftplus:
              scale = tensor::Softplus(layer_weights);
              break;
            case RevelioOptions::LayerScaling::kNone:
              break;
          }
          std::vector<Tensor> masks(num_layers);
          for (int l = 0; l < num_layers; ++l) {
            // Mask rows land directly in mega layer-edge order, ready for the
            // shared SpmmCsrWeighted aggregation — no pack permutation.
            Tensor accumulated =
                tensor::ScatterAddRows(omega_flows, scatter_idx[l], total_mask_rows);
            if (scale.defined()) {
              // Per-row variant of ScaleByScalarTensor: row r of instance i
              // scales by exp(w[i, l]), the same float product per element.
              accumulated =
                  tensor::RowScale(accumulated, tensor::GatherRows(scale, scale_rows[l]));
            }
            masks[l] = tensor::Sigmoid(accumulated);
          }
          Tensor logits = model.Run(plan.batch.graph, plan.mega_edges, plan.batch.features, masks,
                                    node_to_graph, num_instances)
                              .logits;
          // One shared row-softmax; each instance reads its own logits row, so
          // per-row values and gradients match the per-instance softmax bitwise.
          Tensor probs = tensor::RowSoftmax(logits);
          // One gather reads every instance's explained probability; the
          // elementwise Log/Neg chain applies the same per-row float math as the
          // sequential 1x1 ops, and Sum's backward seeds each row with exactly
          // the 1.0 the per-instance losses receive from the sequential Add.
          p = tensor::SelectMany(probs, plan.logit_row, target_classes);
          Tensor objective_total =
              tensor::Sum(objective == Objective::kFactual
                              ? tensor::Neg(tensor::Log(p))
                              : tensor::Neg(tensor::Log(tensor::AddScalar(tensor::Neg(p), 1.0f))));
          // Per-instance UsedEdgeMean via segment sums: each instance's rows are
          // contiguous and in its own layer order, so every segment reproduces
          // the sequential Sum's double-accumulator chain bitwise.
          Tensor used_total;
          for (int l = 0; l < num_layers; ++l) {
            if (used_idx[l].empty()) continue;
            Tensor layer_sum = tensor::SegmentSumRows(tensor::GatherRows(masks[l], used_idx[l]),
                                                      used_seg[l], num_instances);
            used_total = used_total.defined() ? tensor::Add(used_total, layer_sum) : layer_sum;
          }
          regularizer = tensor::Mul(used_total, inv_count_vec);
          if (objective == Objective::kCounterfactual) {
            // Eq. 9 penalizes mean(1 - omega[E]).
            regularizer = tensor::AddScalar(tensor::Neg(regularizer), 1.0f);
          }
          // Batched loss = sum of the per-instance losses: gradients of disjoint
          // parameter segments never mix, so each instance trains as if alone.
          loss = tensor::Add(objective_total,
                             tensor::Sum(tensor::MulScalar(regularizer, options_.alpha)));
        }
        loss.Backward();
        if (use_plan) plan_session.Seal(loss, make_key());
      }
      optimizer.Step();
      steps->Increment();
      if (obs::AuditScope::Current() != nullptr) {
        // Per-instance attribution inside the fused step: instance i's loss
        // reads back from its own probability/regularizer rows, its entropy
        // from its contiguous flow-mask segment.
        for (int i = 0; i < num_instances; ++i) {
          obs::AuditRecord* audit = obs::AuditScope::Current(i);
          if (audit == nullptr) continue;
          const double pi =
              std::min(1.0 - 1e-12, std::max(1e-12, static_cast<double>(p.At(i, 0))));
          const double objective_i =
              objective == Objective::kFactual ? -std::log(pi) : -std::log(1.0 - pi);
          audit->loss_curve.push_back(objective_i +
                                      options_.alpha * regularizer.At(i, 0));
          audit->mask_entropy.push_back(MeanMaskEntropy(
              omega_flows, flow_offset[i], flow_offset[i + 1], options_.use_tanh_flow_masks));
        }
      }
      if (!use_plan) loss.ReleaseTape();
    }
    obs::AuditScope::AddPhaseAll("optimize", optimize_span.ElapsedSeconds());
  }

  obs::ScopedSpan extract_span("revelio.extract");
  const auto& trained_flows = flow_mask_params.values();
  const auto& trained_weights = layer_weights.values();
  for (int i = 0; i < num_instances; ++i) {
    std::vector<float> flow_segment(trained_flows.begin() + flow_offset[i],
                                    trained_flows.begin() + flow_offset[i + 1]);
    std::vector<float> weight_segment(trained_weights.begin() + i * num_layers,
                                      trained_weights.begin() + (i + 1) * num_layers);
    const Tensor inst_params =
        Tensor::FromData(results[i].flows.num_flows(), 1, std::move(flow_segment));
    const Tensor inst_weights = Tensor::FromData(num_layers, 1, std::move(weight_segment));
    FinishFlowExplanation(edges[i], inst_params, inst_weights, objective, options_, &results[i]);
  }
  obs::AuditScope::AddPhaseAll("extract", extract_span.ElapsedSeconds());
  return results;
}

Explanation RevelioExplainer::ExplainImpl(const ExplanationTask& task, Objective objective) {
  FlowExplanation flow_explanation = ExplainFlows(task, objective);
  Explanation explanation;
  explanation.edge_scores = std::move(flow_explanation.edge_scores);
  explanation.has_flow_scores = true;
  explanation.flow_scores = std::move(flow_explanation.flow_scores);
  return explanation;
}

std::vector<Explanation> RevelioExplainer::ExplainBatchImpl(
    const std::vector<const ExplanationTask*>& tasks, Objective objective) {
  std::vector<FlowExplanation> flow_results = ExplainFlowsBatch(tasks, objective);
  std::vector<Explanation> explanations;
  explanations.reserve(flow_results.size());
  for (FlowExplanation& flow_explanation : flow_results) {
    Explanation explanation;
    explanation.edge_scores = std::move(flow_explanation.edge_scores);
    explanation.has_flow_scores = true;
    explanation.flow_scores = std::move(flow_explanation.flow_scores);
    explanations.push_back(std::move(explanation));
  }
  return explanations;
}

}  // namespace revelio::core
