#include "core/revelio.h"

#include <cmath>

#include "nn/loss.h"
#include "nn/optimizer.h"
#include "obs/trace.h"
#include "tensor/ops.h"
#include "util/check.h"

namespace revelio::core {

using explain::Explanation;
using explain::ExplanationTask;
using explain::Objective;
using tensor::Tensor;

namespace {

// Builds the per-layer edge masks omega[E] (Eq. 5/7) from the flow masks.
// Returns one (num_layer_edges x 1) tensor per layer, each differentiable
// w.r.t. `flow_masks` and `layer_weights`.
std::vector<Tensor> BuildLayerEdgeMasks(const flow::FlowSet& flows, const Tensor& flow_scores,
                                        const Tensor& layer_weights,
                                        RevelioOptions::LayerScaling scaling) {
  std::vector<Tensor> masks;
  masks.reserve(flows.num_layers());
  Tensor scale;
  switch (scaling) {
    case RevelioOptions::LayerScaling::kExp:
      scale = tensor::Exp(layer_weights);
      break;
    case RevelioOptions::LayerScaling::kSoftplus:
      scale = tensor::Softplus(layer_weights);
      break;
    case RevelioOptions::LayerScaling::kNone:
      break;
  }
  for (int l = 0; l < flows.num_layers(); ++l) {
    // Accumulate omega[F] onto the layer edges each flow traverses at l.
    Tensor accumulated =
        tensor::ScatterAddRows(flow_scores, flows.EdgesAtLayer(l), flows.num_layer_edges());
    if (scale.defined()) {
      accumulated = tensor::ScaleByScalarTensor(accumulated, tensor::Select(scale, l, 0));
    }
    masks.push_back(tensor::Sigmoid(accumulated));
  }
  return masks;
}

// Mean of mask values over flow-carrying layer edges (the Eq. 8 regularizer
// skips edges unused by the GNN's computation toward the target).
Tensor UsedEdgeMean(const flow::FlowSet& flows, const std::vector<Tensor>& masks) {
  Tensor total;
  int count = 0;
  for (int l = 0; l < flows.num_layers(); ++l) {
    const std::vector<int> used = flows.UsedEdgesAtLayer(l);
    if (used.empty()) continue;
    Tensor layer_sum = tensor::Sum(tensor::GatherRows(masks[l], used));
    total = total.defined() ? tensor::Add(total, layer_sum) : layer_sum;
    count += static_cast<int>(used.size());
  }
  CHECK(total.defined()) << "no flow-carrying layer edges";
  return tensor::MulScalar(total, 1.0f / static_cast<float>(count));
}

}  // namespace

namespace {

// One gradient pass at initialization: |d objective / d M_k| per flow.
// Used by the §VI prefiltering extension to pick the flows worth learning.
std::vector<double> InitialFlowSaliency(const ExplanationTask& task,
                                        const gnn::LayerEdgeSet& edges,
                                        const flow::FlowSet& flows, Objective objective,
                                        RevelioOptions::LayerScaling scaling) {
  Tensor flow_params = Tensor::Zeros(flows.num_flows(), 1).WithRequiresGrad();
  Tensor layer_weights = Tensor::Zeros(task.model->num_layers(), 1);
  std::vector<Tensor> masks =
      BuildLayerEdgeMasks(flows, tensor::Tanh(flow_params), layer_weights, scaling);
  Tensor logits = task.model->Run(*task.graph, edges, task.features, masks).logits;
  Tensor loss = objective == Objective::kFactual
                    ? nn::FactualObjective(logits, task.logit_row(), task.target_class)
                    : nn::CounterfactualObjective(logits, task.logit_row(), task.target_class);
  loss.Backward();
  std::vector<double> saliency(flows.num_flows());
  for (int k = 0; k < flows.num_flows(); ++k) {
    saliency[k] = std::fabs(flow_params.GradAt(k, 0));
  }
  return saliency;
}

// Keeps only the flows in `kept` (a FlowSet over the same layer-edge space).
flow::FlowSet RestrictFlows(const flow::FlowSet& flows, const gnn::LayerEdgeSet& edges,
                            const std::vector<int>& kept) {
  flow::FlowSet reduced(flows.num_layers(), edges.num_layer_edges());
  std::vector<int> path(flows.num_layers());
  for (int k : kept) {
    for (int l = 0; l < flows.num_layers(); ++l) path[l] = flows.EdgeAt(l, k);
    reduced.AddFlow(path);
  }
  return reduced;
}

}  // namespace

RevelioExplainer::FlowExplanation RevelioExplainer::ExplainFlows(const ExplanationTask& task,
                                                                 Objective objective) {
  CHECK(task.model != nullptr && task.graph != nullptr);
  const gnn::GnnModel& model = *task.model;
  const int num_layers = model.num_layers();
  const gnn::LayerEdgeSet edges = gnn::BuildLayerEdges(*task.graph);

  FlowExplanation result;
  {
    obs::ScopedSpan span("revelio.enumerate_flows");
    if (task.is_node_task()) {
      result.flows =
          flow::EnumerateFlowsToTarget(edges, task.target_node, num_layers, options_.max_flows);
    } else {
      result.flows = flow::EnumerateAllFlows(edges, num_layers, options_.max_flows);
    }
  }
  CHECK_GT(result.flows.num_flows(), 0);

  // §VI prefiltering: learn masks only for the top-k most salient flows.
  std::vector<int> kept_flows;  // indices into the FULL flow set (empty = all)
  if (options_.prefilter_top_k > 0 &&
      options_.prefilter_top_k < result.flows.num_flows()) {
    obs::ScopedSpan span("revelio.prefilter");
    const std::vector<double> saliency = InitialFlowSaliency(
        task, edges, result.flows, objective, options_.layer_scaling);
    kept_flows = flow::TopKFlows(saliency, options_.prefilter_top_k);
    result.flows = RestrictFlows(result.flows, edges, kept_flows);
  }
  const flow::FlowSet& flows = result.flows;

  // Learnable parameters: flow masks M and layer weights w.
  util::Rng rng(options_.seed);
  Tensor flow_mask_params = Tensor::Randn(flows.num_flows(), 1, &rng);
  for (auto& v : *flow_mask_params.mutable_values()) v *= 0.1f;
  flow_mask_params.WithRequiresGrad();
  Tensor layer_weights = Tensor::Zeros(num_layers, 1).WithRequiresGrad();

  nn::Adam optimizer({flow_mask_params, layer_weights}, options_.learning_rate);
  const int logit_row = task.logit_row();

  {
    obs::ScopedSpan optimize_span("revelio.optimize");
    for (int epoch = 0; epoch < options_.epochs; ++epoch) {
      optimizer.ZeroGrad();
      Tensor omega_flows = options_.use_tanh_flow_masks ? tensor::Tanh(flow_mask_params)
                                                        : tensor::Sigmoid(flow_mask_params);
      std::vector<Tensor> masks =
          BuildLayerEdgeMasks(flows, omega_flows, layer_weights, options_.layer_scaling);
      Tensor logits = model.Run(*task.graph, edges, task.features, masks).logits;

      Tensor objective_loss =
          objective == Objective::kFactual
              ? nn::FactualObjective(logits, logit_row, task.target_class)
              : nn::CounterfactualObjective(logits, logit_row, task.target_class);
      Tensor regularizer = UsedEdgeMean(flows, masks);
      if (objective == Objective::kCounterfactual) {
        // Eq. 9 penalizes mean(1 - omega[E]).
        regularizer = tensor::AddScalar(tensor::Neg(regularizer), 1.0f);
      }
      Tensor loss = tensor::Add(objective_loss, tensor::MulScalar(regularizer, options_.alpha));
      loss.Backward();
      optimizer.Step();
      // Recycle this epoch's intermediates: after the first epoch primes the
      // pool's size classes, the optimization loop runs allocation-free.
      loss.ReleaseTape();
    }
  }

  obs::ScopedSpan extract_span("revelio.extract");
  // Final scores (detached).
  Tensor omega_flows = options_.use_tanh_flow_masks ? tensor::Tanh(flow_mask_params)
                                                    : tensor::Sigmoid(flow_mask_params);
  std::vector<Tensor> masks =
      BuildLayerEdgeMasks(flows, omega_flows, layer_weights, options_.layer_scaling);

  result.flow_scores.resize(flows.num_flows());
  const float sign = objective == Objective::kCounterfactual ? -1.0f : 1.0f;
  for (int k = 0; k < flows.num_flows(); ++k) {
    result.flow_scores[k] = sign * omega_flows.At(k, 0);
  }
  result.layer_edge_masks.assign(num_layers,
                                 std::vector<double>(edges.num_layer_edges(), 0.0));
  for (int l = 0; l < num_layers; ++l) {
    for (int e = 0; e < edges.num_layer_edges(); ++e) {
      const double mask_value = masks[l].At(e, 0);
      // §IV-C: counterfactual layer-edge importance reduces to 1 - omega[e].
      result.layer_edge_masks[l][e] =
          objective == Objective::kCounterfactual ? 1.0 - mask_value : mask_value;
    }
  }
  result.edge_scores =
      flow::LayerEdgeScoresToEdgeScores(flows, edges, result.layer_edge_masks);
  result.layer_weights.resize(num_layers);
  for (int l = 0; l < num_layers; ++l) result.layer_weights[l] = layer_weights.At(l, 0);
  return result;
}

Explanation RevelioExplainer::ExplainImpl(const ExplanationTask& task, Objective objective) {
  FlowExplanation flow_explanation = ExplainFlows(task, objective);
  Explanation explanation;
  explanation.edge_scores = std::move(flow_explanation.edge_scores);
  explanation.has_flow_scores = true;
  explanation.flow_scores = std::move(flow_explanation.flow_scores);
  return explanation;
}

}  // namespace revelio::core
