#ifndef REVELIO_OBS_TRACE_H_
#define REVELIO_OBS_TRACE_H_

// Scoped-span tracing: RAII spans record nested begin/end events into
// per-thread logs; the recorder exports Chrome trace-event JSON (loadable in
// chrome://tracing and Perfetto) and a hierarchical self/total-time profile
// table.
//
// ScopedSpan uses util::Timer (steady_clock) as its clock and is safe on any
// thread, including ParallelFor workers. When telemetry is disabled
// (obs::Enabled() == false) a span costs one relaxed atomic load and
// allocates nothing (the const char* constructor); events recorded while
// enabled cost one small heap push under an uncontended per-thread mutex.
// Each thread's log is capped (SetMaxEventsPerThread); events past the cap
// are counted as dropped instead of recorded.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "util/timer.h"

namespace revelio::obs {

struct TraceEvent {
  std::string name;
  double start_us = 0.0;  // since the recorder's process-wide epoch
  double dur_us = 0.0;
  int tid = 0;    // per-thread registration index (0 = first thread seen)
  int depth = 0;  // span nesting depth on its thread at begin
};

namespace internal {
struct ThreadLog;
}  // namespace internal

class TraceRecorder {
 public:
  static TraceRecorder& Global();

  // Microseconds since the recorder epoch (the first use in the process).
  static double NowMicros();

  // Drops every recorded event and the dropped-event count. Open spans keep
  // working; their completion events land in the cleared logs.
  void Clear();

  void SetMaxEventsPerThread(size_t cap);
  size_t max_events_per_thread() const;
  uint64_t dropped_events() const;

  // All completed events from every thread, sorted by start time.
  std::vector<TraceEvent> Consolidated() const;

  // Chrome trace-event JSON ("X" complete events + thread-name metadata).
  void AppendChromeTrace(JsonWriter* writer) const;
  bool WriteChromeTrace(const std::string& path) const;

  // Aggregated per-span profile: count, total, self (total minus direct
  // children), rendered with util::TablePrinter. Empty string when no
  // events were recorded.
  std::string ProfileTable() const;

 private:
  friend class ScopedSpan;
  TraceRecorder() = default;
  internal::ThreadLog* ThisThreadLog();
};

// Whether a span feeds the bounded flight ring in addition to the span log.
// Hot per-op kernel spans (fired thousands of times per explanation) opt out:
// their ring records cost more than the work they describe, and the crash
// ring wants coarse phase structure, not kernel-level noise — the same
// trade-off as Counter::DisableFlightRecording for the pool counters.
enum class FlightPolicy { kRecord, kSkip };

class ScopedSpan {
 public:
  // The const char* overload records the pointer only (no allocation when
  // disabled); the string overload is for computed names.
  explicit ScopedSpan(const char* name, FlightPolicy flight = FlightPolicy::kRecord);
  explicit ScopedSpan(std::string name, FlightPolicy flight = FlightPolicy::kRecord);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  // Wall-clock seconds since construction, available whether or not the
  // span is being recorded — the replacement for ad-hoc util::Timer use.
  double ElapsedSeconds() const { return timer_.ElapsedSeconds(); }

 private:
  void Begin(FlightPolicy flight);
  util::Timer timer_;
  const char* literal_name_ = nullptr;
  std::string owned_name_;
  double start_us_ = 0.0;
  internal::ThreadLog* log_ = nullptr;   // non-null while recording
  const char* flight_name_ = nullptr;    // non-null while flight-recording
};

}  // namespace revelio::obs

#endif  // REVELIO_OBS_TRACE_H_
