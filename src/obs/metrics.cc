#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

namespace revelio::obs {

namespace internal {

std::atomic<bool> g_enabled{false};

int ThisThreadShard() {
  static std::atomic<int> next_shard{0};
  thread_local const int shard =
      next_shard.fetch_add(1, std::memory_order_relaxed) & (kMetricShards - 1);
  return shard;
}

}  // namespace internal

namespace {

// Relaxed double accumulation via CAS (atomic<double>::fetch_add is C++20
// but not yet universal across libstdc++ versions in the field).
void AtomicAddDouble(std::atomic<double>* target, double delta) {
  double current = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(current, current + delta, std::memory_order_relaxed)) {
  }
}

}  // namespace

void SetEnabled(bool enabled) {
  internal::g_enabled.store(enabled, std::memory_order_relaxed);
}

// --- Counter -----------------------------------------------------------------

uint64_t Counter::Total() const {
  uint64_t total = 0;
  for (const Cell& cell : cells_) total += cell.value.load(std::memory_order_relaxed);
  return total;
}

void Counter::Reset() {
  for (Cell& cell : cells_) cell.value.store(0, std::memory_order_relaxed);
}

// --- Histogram ---------------------------------------------------------------

Histogram::Histogram(std::string name, std::vector<double> bounds)
    : name_(std::move(name)), bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  shards_.reserve(kMetricShards);
  for (int s = 0; s < kMetricShards; ++s) {
    shards_.push_back(std::make_unique<Shard>(bounds_.size() + 1));
  }
}

void Histogram::Observe(double value) {
  if (!Enabled()) return;
  const size_t bucket =
      std::upper_bound(bounds_.begin(), bounds_.end(), value) - bounds_.begin();
  Shard& shard = *shards_[internal::ThisThreadShard()];
  shard.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  shard.total.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(&shard.sum, value);
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->total.load(std::memory_order_relaxed);
  return total;
}

double Histogram::Sum() const {
  double total = 0.0;
  for (const auto& shard : shards_) total += shard->sum.load(std::memory_order_relaxed);
  return total;
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> counts(bounds_.size() + 1, 0);
  for (const auto& shard : shards_) {
    for (size_t b = 0; b < counts.size(); ++b) {
      counts[b] += shard->counts[b].load(std::memory_order_relaxed);
    }
  }
  return counts;
}

void Histogram::Reset() {
  for (const auto& shard : shards_) {
    for (auto& count : shard->counts) count.store(0, std::memory_order_relaxed);
    shard->total.store(0, std::memory_order_relaxed);
    shard->sum.store(0.0, std::memory_order_relaxed);
  }
}

// --- Registry ----------------------------------------------------------------

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked singleton: hot paths cache metric pointers, so the registry must
  // outlive every static destructor.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot.reset(new Counter(name));
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot.reset(new Gauge(name));
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name, std::vector<double> bounds) {
  if (bounds.empty()) {
    // Decade grid for seconds-scale timings: 1us .. 100s.
    bounds = {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0};
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot.reset(new Histogram(name, std::move(bounds)));
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.emplace_back(name, counter->Total());
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.emplace_back(name, gauge->Value());
  }
  for (const auto& [name, histogram] : histograms_) {
    MetricsSnapshot::HistogramEntry entry;
    entry.name = name;
    entry.bounds = histogram->bucket_bounds();
    entry.counts = histogram->BucketCounts();
    entry.count = histogram->Count();
    entry.sum = histogram->Sum();
    snapshot.histograms.push_back(std::move(entry));
  }
  return snapshot;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

// --- SLO summarization -------------------------------------------------------

double HistogramQuantile(const MetricsSnapshot::HistogramEntry& entry, double q) {
  if (entry.count == 0 || entry.counts.empty()) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double rank = q * static_cast<double>(entry.count);
  uint64_t cumulative = 0;
  for (size_t b = 0; b < entry.counts.size(); ++b) {
    const uint64_t in_bucket = entry.counts[b];
    if (in_bucket == 0) continue;
    const double cum_end = static_cast<double>(cumulative + in_bucket);
    if (rank <= cum_end) {
      if (b >= entry.bounds.size()) {
        // Overflow bucket: saturate at the largest finite bound.
        return entry.bounds.empty() ? 0.0 : entry.bounds.back();
      }
      const double upper = entry.bounds[b];
      const double lower = b == 0 ? std::min(0.0, entry.bounds[0]) : entry.bounds[b - 1];
      const double into_bucket = rank - static_cast<double>(cumulative);
      return lower + (upper - lower) * (into_bucket / static_cast<double>(in_bucket));
    }
    cumulative += in_bucket;
  }
  return entry.bounds.empty() ? 0.0 : entry.bounds.back();
}

HistogramSummary SummarizeHistogram(const MetricsSnapshot::HistogramEntry& entry) {
  HistogramSummary summary;
  summary.p50 = HistogramQuantile(entry, 0.50);
  summary.p95 = HistogramQuantile(entry, 0.95);
  summary.p99 = HistogramQuantile(entry, 0.99);
  return summary;
}

bool MergeHistogramEntry(MetricsSnapshot::HistogramEntry* into,
                         const MetricsSnapshot::HistogramEntry& from) {
  if (into->bounds != from.bounds || into->counts.size() != from.counts.size()) return false;
  for (size_t b = 0; b < into->counts.size(); ++b) into->counts[b] += from.counts[b];
  into->count += from.count;
  into->sum += from.sum;
  return true;
}

// --- Export ------------------------------------------------------------------

void AppendMetricsSnapshot(JsonWriter* writer) {
  const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  writer->BeginObject();
  writer->Key("counters");
  writer->BeginObject();
  for (const auto& [name, value] : snapshot.counters) {
    writer->Key(name);
    writer->Uint(value);
  }
  writer->EndObject();
  writer->Key("gauges");
  writer->BeginObject();
  for (const auto& [name, value] : snapshot.gauges) {
    writer->Key(name);
    writer->Double(value);
  }
  writer->EndObject();
  writer->Key("histograms");
  writer->BeginObject();
  for (const auto& entry : snapshot.histograms) {
    writer->Key(entry.name);
    writer->BeginObject();
    writer->Key("count");
    writer->Uint(entry.count);
    writer->Key("sum");
    writer->Double(entry.sum);
    const HistogramSummary summary = SummarizeHistogram(entry);
    writer->Key("p50");
    writer->Double(summary.p50);
    writer->Key("p95");
    writer->Double(summary.p95);
    writer->Key("p99");
    writer->Double(summary.p99);
    writer->Key("bounds");
    writer->BeginArray();
    for (double b : entry.bounds) writer->Double(b);
    writer->EndArray();
    writer->Key("bucket_counts");
    writer->BeginArray();
    for (uint64_t c : entry.counts) writer->Uint(c);
    writer->EndArray();
    writer->EndObject();
  }
  writer->EndObject();
  writer->EndObject();
}

bool WriteMetricsJsonFile(const std::string& path) {
  JsonWriter writer;
  writer.BeginObject();
  writer.Key("metrics");
  AppendMetricsSnapshot(&writer);
  writer.EndObject();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string& doc = writer.str();
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace revelio::obs
