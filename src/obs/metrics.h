#ifndef REVELIO_OBS_METRICS_H_
#define REVELIO_OBS_METRICS_H_

// Process-wide metrics registry: named counters, gauges, and fixed-bucket
// histograms with thread-local sharded aggregation.
//
// Overhead contract (see DESIGN.md §7):
//   - disabled (the default): every update is one relaxed atomic load and a
//     branch; no allocation, no stores.
//   - enabled: counters/histograms pay ~one relaxed atomic RMW on a
//     shard selected per thread, so concurrent updaters rarely share a
//     cache line. Reads (Total/Snapshot) sum the shards and may tear
//     between shards; totals are exact once updaters quiesce.
//
// Metric objects are created on first GetCounter/GetGauge/GetHistogram and
// never destroyed, so hot paths can cache the returned pointer in a
// function-local static.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/recorder.h"

namespace revelio::obs {

// Global switch shared by metrics and tracing. Defaults to off.
namespace internal {
extern std::atomic<bool> g_enabled;
// Stable per-thread shard index in [0, kMetricShards).
int ThisThreadShard();
}  // namespace internal

inline constexpr int kMetricShards = 16;

inline bool Enabled() { return internal::g_enabled.load(std::memory_order_relaxed); }
void SetEnabled(bool enabled);

class Counter {
 public:
  void Add(uint64_t n) {
    if (n == 0) return;
    // Counter deltas also land in the bounded flight ring (independent of the
    // metrics switch) so a post-mortem shows what was being counted.
    if (flight_ && FlightEnabled()) {
      FlightRecorder::Global().Record(FlightEventKind::kCounterDelta, name_.c_str(),
                                      static_cast<double>(n));
    }
    if (!Enabled()) return;
    cells_[internal::ThisThreadShard()].value.fetch_add(n, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  // Opts this counter out of flight-ring recording. For counters ticked on
  // paths cheaper than a ring record itself (the pool's per-Acquire hit/miss),
  // where the events would both dominate the cost and flood the bounded ring.
  void DisableFlightRecording() { flight_ = false; }

  uint64_t Total() const;
  void Reset();
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::string name) : name_(std::move(name)) {}

  struct alignas(64) Cell {
    std::atomic<uint64_t> value{0};
  };
  std::string name_;
  bool flight_ = true;
  Cell cells_[kMetricShards];
};

// Last-write-wins scalar (e.g. training loss per epoch).
class Gauge {
 public:
  void Set(double value) {
    if (!Enabled()) return;
    value_.store(value, std::memory_order_relaxed);
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  std::string name_;
  std::atomic<double> value_{0.0};
};

// Fixed-bucket histogram: bucket i counts observations <= bounds[i]; one
// overflow bucket catches the rest. Bounds are fixed at registration.
class Histogram {
 public:
  void Observe(double value);

  uint64_t Count() const;
  double Sum() const;
  // Per-bucket totals, size bucket_bounds().size() + 1 (last = overflow).
  std::vector<uint64_t> BucketCounts() const;
  const std::vector<double>& bucket_bounds() const { return bounds_; }
  void Reset();
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  Histogram(std::string name, std::vector<double> bounds);

  struct alignas(64) Shard {
    explicit Shard(size_t buckets) : counts(buckets) {}
    std::vector<std::atomic<uint64_t>> counts;
    std::atomic<uint64_t> total{0};
    std::atomic<double> sum{0.0};
  };
  std::string name_;
  std::vector<double> bounds_;  // ascending
  std::vector<std::unique_ptr<Shard>> shards_;
};

// Read-only view of every registered metric at one point in time.
struct MetricsSnapshot {
  struct HistogramEntry {
    std::string name;
    std::vector<double> bounds;
    std::vector<uint64_t> counts;
    uint64_t count = 0;
    double sum = 0.0;
  };
  std::vector<std::pair<std::string, uint64_t>> counters;  // sorted by name
  std::vector<std::pair<std::string, double>> gauges;      // sorted by name
  std::vector<HistogramEntry> histograms;                  // sorted by name
};

// --- SLO summarization over fixed-boundary buckets ---------------------------
//
// Quantiles are estimated Prometheus-style: find the bucket holding the
// target rank, then interpolate linearly inside it. The first bucket's lower
// edge is taken as min(0, bounds[0]) (the grids here are timing/size scales),
// and any rank landing in the overflow bucket reports the largest finite
// bound — the estimate saturates rather than extrapolates.

// q in [0, 1]; returns 0 for an empty histogram.
double HistogramQuantile(const MetricsSnapshot::HistogramEntry& entry, double q);

struct HistogramSummary {
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};
HistogramSummary SummarizeHistogram(const MetricsSnapshot::HistogramEntry& entry);

// Element-wise merge of two shards of the same histogram (identical bounds).
// Returns false (and leaves `into` untouched) on a bounds mismatch. Merging
// is commutative and associative, so shard aggregation order never matters.
bool MergeHistogramEntry(MetricsSnapshot::HistogramEntry* into,
                         const MetricsSnapshot::HistogramEntry& from);

class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  // Create-on-first-use; the returned pointer is stable for process
  // lifetime. Re-registering a histogram ignores the new bounds.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  // Empty `bounds` selects a decade grid suited to seconds-scale timings.
  Histogram* GetHistogram(const std::string& name, std::vector<double> bounds = {});

  MetricsSnapshot Snapshot() const;
  // Zeroes every metric; registrations (and cached pointers) stay valid.
  void ResetAll();

 private:
  MetricsRegistry() = default;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// Appends the current snapshot as one JSON object value (writer must be
// positioned where a value is expected, e.g. right after Key()).
void AppendMetricsSnapshot(JsonWriter* writer);

// Writes `{"metrics": {...}}` to `path`. Returns false on I/O failure.
bool WriteMetricsJsonFile(const std::string& path);

}  // namespace revelio::obs

#endif  // REVELIO_OBS_METRICS_H_
