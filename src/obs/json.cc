#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace revelio::obs {

// --- Writer ------------------------------------------------------------------

void JsonWriter::BeforeValue() {
  if (!has_value_.empty()) {
    if (has_value_.back()) out_ += ',';
    has_value_.back() = true;
  }
}

void JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  has_value_.push_back(false);
}

void JsonWriter::EndObject() {
  if (!has_value_.empty()) has_value_.pop_back();
  out_ += '}';
}

void JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  has_value_.push_back(false);
}

void JsonWriter::EndArray() {
  if (!has_value_.empty()) has_value_.pop_back();
  out_ += ']';
}

void JsonWriter::Key(std::string_view key) {
  if (!has_value_.empty()) {
    if (has_value_.back()) out_ += ',';
    // The upcoming value must not emit another comma.
    has_value_.back() = false;
  }
  out_ += '"';
  out_ += Escape(key);
  out_ += "\":";
}

void JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_ += '"';
  out_ += Escape(value);
  out_ += '"';
}

void JsonWriter::Int(int64_t value) {
  BeforeValue();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  out_ += buf;
}

void JsonWriter::Uint(uint64_t value) {
  BeforeValue();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(value));
  out_ += buf;
}

void JsonWriter::Double(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    out_ += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  out_ += buf;
}

void JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
}

void JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
}

std::string JsonWriter::Escape(std::string_view raw) {
  std::string escaped;
  escaped.reserve(raw.size());
  for (unsigned char c : raw) {
    switch (c) {
      case '"':
        escaped += "\\\"";
        break;
      case '\\':
        escaped += "\\\\";
        break;
      case '\b':
        escaped += "\\b";
        break;
      case '\f':
        escaped += "\\f";
        break;
      case '\n':
        escaped += "\\n";
        break;
      case '\r':
        escaped += "\\r";
        break;
      case '\t':
        escaped += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          escaped += buf;
        } else {
          escaped += static_cast<char>(c);
        }
    }
  }
  return escaped;
}

// --- Parser ------------------------------------------------------------------

const JsonValue* JsonValue::Find(std::string_view key) const {
  for (const auto& [name, value] : object_items) {
    if (name == key) return &value;
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* error) : text_(text), error_(error) {}

  bool Parse(JsonValue* out) {
    SkipWhitespace();
    if (!ParseValue(out)) return false;
    SkipWhitespace();
    if (pos_ != text_.size()) return Fail("trailing content after document");
    return true;
  }

 private:
  bool Fail(const std::string& message) {
    if (error_ != nullptr) {
      *error_ = message + " at byte " + std::to_string(pos_);
    }
    return false;
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }

  bool Consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseValue(JsonValue* out) {
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->type = JsonValue::Type::kString;
        return ParseString(&out->string_value);
      case 't':
      case 'f':
        return ParseLiteral(out);
      case 'n':
        return ParseLiteral(out);
      default:
        return ParseNumber(out);
    }
  }

  bool ParseLiteral(JsonValue* out) {
    auto match = [&](std::string_view word) {
      if (text_.substr(pos_, word.size()) != word) return false;
      pos_ += word.size();
      return true;
    };
    if (match("true")) {
      out->type = JsonValue::Type::kBool;
      out->bool_value = true;
      return true;
    }
    if (match("false")) {
      out->type = JsonValue::Type::kBool;
      out->bool_value = false;
      return true;
    }
    if (match("null")) {
      out->type = JsonValue::Type::kNull;
      return true;
    }
    return Fail("invalid literal");
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '-' ||
            text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      pos_ = start;
      return Fail("malformed number");
    }
    out->type = JsonValue::Type::kNumber;
    out->number_value = value;
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return Fail("expected '\"'");
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          *out += '"';
          break;
        case '\\':
          *out += '\\';
          break;
        case '/':
          *out += '/';
          break;
        case 'b':
          *out += '\b';
          break;
        case 'f':
          *out += '\f';
          break;
        case 'n':
          *out += '\n';
          break;
        case 'r':
          *out += '\r';
          break;
        case 't':
          *out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Fail("invalid \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // produced by our writer; decode them as-is).
          if (code < 0x80) {
            *out += static_cast<char>(code);
          } else if (code < 0x800) {
            *out += static_cast<char>(0xC0 | (code >> 6));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            *out += static_cast<char>(0xE0 | (code >> 12));
            *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return Fail("invalid escape character");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseObject(JsonValue* out) {
    if (!Consume('{')) return Fail("expected '{'");
    out->type = JsonValue::Type::kObject;
    SkipWhitespace();
    if (Consume('}')) return true;
    for (;;) {
      SkipWhitespace();
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWhitespace();
      if (!Consume(':')) return Fail("expected ':'");
      SkipWhitespace();
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->object_items.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return true;
      return Fail("expected ',' or '}'");
    }
  }

  bool ParseArray(JsonValue* out) {
    if (!Consume('[')) return Fail("expected '['");
    out->type = JsonValue::Type::kArray;
    SkipWhitespace();
    if (Consume(']')) return true;
    for (;;) {
      SkipWhitespace();
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->array_items.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return true;
      return Fail("expected ',' or ']'");
    }
  }

  std::string_view text_;
  std::string* error_;
  size_t pos_ = 0;
};

}  // namespace

bool ParseJson(std::string_view text, JsonValue* out, std::string* error) {
  *out = JsonValue();
  return Parser(text, error).Parse(out);
}

}  // namespace revelio::obs
