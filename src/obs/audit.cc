#include "obs/audit.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace revelio::obs {

namespace {

// Sink state lives behind one mutex: audit submission happens once per
// explanation (not per epoch), so contention is irrelevant next to the
// optimizer work it summarizes. `g_audit_enabled` is the lock-free fast path
// checked by AuditScope's constructor.
std::atomic<bool> g_audit_enabled{false};

struct SinkState {
  std::mutex mu;
  std::FILE* file = nullptr;
  bool in_memory = false;
  std::vector<AuditRecord> retained;
  std::atomic<uint64_t> next_record_id{0};
  std::atomic<uint64_t> submitted{0};
};

SinkState& State() {
  static SinkState* state = new SinkState();
  return *state;
}

// One-shot env pickup: REVELIO_AUDIT_OUT=path streams JSONL there without any
// code changes at the call site (mirrors REVELIO_FLIGHT_DUMP).
void InitFromEnvOnce() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* path = std::getenv("REVELIO_AUDIT_OUT");
    if (path != nullptr && path[0] != '\0') AuditSink::Global().OpenFile(path);
  });
}

// The innermost active scope on this thread. Raw pointer: scopes are
// stack-allocated and strictly nested, so the previous value is restored on
// destruction.
thread_local AuditScope* t_scope = nullptr;

void AppendDoubleArray(JsonWriter* writer, const char* key, const std::vector<double>& values) {
  writer->Key(key);
  writer->BeginArray();
  for (double v : values) writer->Double(v);
  writer->EndArray();
}

}  // namespace

std::string AuditRecordToJson(const AuditRecord& record) {
  JsonWriter writer;
  writer.BeginObject();
  writer.Key("record_id");
  writer.Uint(record.record_id);
  writer.Key("method");
  writer.String(record.method);
  writer.Key("objective");
  writer.String(record.objective);
  writer.Key("megabatched");
  writer.Bool(record.megabatched);
  writer.Key("group_size");
  writer.Int(record.group_size);
  writer.Key("instance_in_group");
  writer.Int(record.instance_in_group);
  writer.Key("task");
  writer.BeginObject();
  writer.Key("num_nodes");
  writer.Int(record.num_nodes);
  writer.Key("num_edges");
  writer.Int(record.num_edges);
  writer.Key("target_node");
  writer.Int(record.target_node);
  writer.Key("target_class");
  writer.Int(record.target_class);
  writer.EndObject();
  AppendDoubleArray(&writer, "loss_curve", record.loss_curve);
  AppendDoubleArray(&writer, "mask_entropy", record.mask_entropy);
  AppendDoubleArray(&writer, "top_scores", record.top_scores);
  writer.Key("pool");
  writer.BeginObject();
  writer.Key("hits");
  writer.Uint(record.pool_hits);
  writer.Key("misses");
  writer.Uint(record.pool_misses);
  writer.EndObject();
  writer.Key("wall_seconds");
  writer.Double(record.wall_seconds);
  writer.Key("phases");
  writer.BeginObject();
  for (const auto& [name, seconds] : record.phase_seconds) {
    writer.Key(name);
    writer.Double(seconds);
  }
  writer.EndObject();
  writer.Key("config");
  writer.BeginObject();
  for (const auto& [key, value] : record.config) {
    writer.Key(key);
    writer.String(value);
  }
  writer.EndObject();
  writer.EndObject();
  return writer.TakeString();
}

// --- AuditSink ---------------------------------------------------------------

AuditSink& AuditSink::Global() {
  static AuditSink* sink = new AuditSink();
  return *sink;
}

bool AuditSink::enabled() const {
  InitFromEnvOnce();
  return g_audit_enabled.load(std::memory_order_relaxed);
}

bool AuditSink::OpenFile(const std::string& path) {
  SinkState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  if (state.file != nullptr) std::fclose(state.file);
  state.file = std::fopen(path.c_str(), "w");
  state.in_memory = false;
  state.retained.clear();
  const bool ok = state.file != nullptr;
  g_audit_enabled.store(ok, std::memory_order_relaxed);
  return ok;
}

void AuditSink::CollectInMemory() {
  SinkState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  if (state.file != nullptr) {
    std::fclose(state.file);
    state.file = nullptr;
  }
  state.in_memory = true;
  state.retained.clear();
  g_audit_enabled.store(true, std::memory_order_relaxed);
}

std::vector<AuditRecord> AuditSink::TakeRecords() {
  SinkState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  std::vector<AuditRecord> out = std::move(state.retained);
  state.retained.clear();
  return out;
}

void AuditSink::Close() {
  SinkState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  if (state.file != nullptr) {
    std::fclose(state.file);
    state.file = nullptr;
  }
  state.in_memory = false;
  state.retained.clear();
  g_audit_enabled.store(false, std::memory_order_relaxed);
}

void AuditSink::Submit(AuditRecord record) {
  SinkState& state = State();
  record.record_id = state.next_record_id.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(state.mu);
  state.submitted.fetch_add(1, std::memory_order_relaxed);
  if (state.file != nullptr) {
    const std::string line = AuditRecordToJson(record);
    std::fwrite(line.data(), 1, line.size(), state.file);
    std::fputc('\n', state.file);
    std::fflush(state.file);
    return;
  }
  if (state.in_memory) state.retained.push_back(std::move(record));
}

uint64_t AuditSink::records_submitted() const {
  return State().submitted.load(std::memory_order_relaxed);
}

// --- AuditScope --------------------------------------------------------------

AuditScope::AuditScope(size_t group_size) {
  if (!AuditSink::Global().enabled()) return;
  if (t_scope != nullptr) return;  // nested Explain keeps feeding the outer scope
  active_ = true;
  owns_slot_ = true;
  records_.resize(group_size == 0 ? 1 : group_size);
  for (size_t i = 0; i < records_.size(); ++i) {
    records_[i].instance_in_group = static_cast<int>(i);
    records_[i].group_size = static_cast<int>(records_.size());
  }
  t_scope = this;
}

AuditScope::~AuditScope() {
  if (owns_slot_) t_scope = nullptr;
}

size_t AuditScope::group_size() const { return records_.size(); }

AuditRecord* AuditScope::record(size_t i) {
  if (!active_ || i >= records_.size()) return nullptr;
  return &records_[i];
}

AuditRecord* AuditScope::Current(size_t i) {
  if (t_scope == nullptr || !t_scope->active_) return nullptr;
  return t_scope->record(t_scope->instance_base_ + i);
}

void AuditScope::SetInstanceBase(size_t base) {
  if (t_scope == nullptr || !t_scope->active_) return;
  t_scope->instance_base_ = base;
}

void AuditScope::AddPhase(const char* name, double seconds) {
  if (AuditRecord* record = Current(0)) record->phase_seconds.emplace_back(name, seconds);
}

void AuditScope::AddPhaseAll(const char* name, double seconds) {
  if (t_scope == nullptr || !t_scope->active_) return;
  for (AuditRecord& record : t_scope->records_) {
    record.phase_seconds.emplace_back(name, seconds);
  }
}

void AuditScope::SubmitAll() {
  if (!active_) return;
  for (AuditRecord& record : records_) {
    AuditSink::Global().Submit(std::move(record));
  }
  records_.clear();
  active_ = false;
}

}  // namespace revelio::obs
