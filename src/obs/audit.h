#ifndef REVELIO_OBS_AUDIT_H_
#define REVELIO_OBS_AUDIT_H_

// Per-explanation audit records: every Explainer::Explain call (and every
// instance of a mega-batched ExplainBatch) can emit one AuditRecord capturing
// how the explanation was produced — the loss/convergence curve, mask entropy
// per epoch, the top-k score distribution, pool hit/miss deltas, per-phase
// wall time, and the config that drove the run. Records are exported as JSON
// Lines (one object per line) so long runs stream instead of buffering.
//
// Collection is pull-free: the non-virtual Explainer::Explain wrapper opens
// an AuditScope; explainer internals call AuditScope::Current(i) and get
// nullptr when auditing is off (one thread-local load — no allocation, no
// formatting). Everything the hooks do is *read-only* with respect to the
// numerics: audit on vs off is bitwise-identical by construction, pinned by
// tests/prop/audit_equivalence_test.cc.
//
// Enabling: AuditSink::Global().OpenFile(path) (bench --audit-out),
// AuditSink::Global().CollectInMemory() (tests), or the REVELIO_AUDIT_OUT
// environment variable picked up on first use.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.h"

namespace revelio::obs {

struct AuditRecord {
  // Identity. `record_id` is assigned by the sink at submit time and is
  // unique per process; `instance_in_group` is the position inside a
  // mega-batched group (0 for sequential calls).
  uint64_t record_id = 0;
  std::string method;
  std::string objective;
  bool megabatched = false;
  int group_size = 1;
  int instance_in_group = 0;

  // Task shape.
  int num_nodes = 0;
  int num_edges = 0;
  int target_node = -1;
  int target_class = 0;

  // Convergence: one entry per optimizer epoch (empty for non-learning
  // methods). Entropy is the mean binary entropy of the method's mask
  // distribution that epoch — a falling curve means masks are binarizing.
  std::vector<double> loss_curve;
  std::vector<double> mask_entropy;

  // Final score distribution: the top-k scores, sorted descending (flow
  // scores when the method produces them, base-edge scores otherwise).
  std::vector<double> top_scores;

  // Pool delta over the call. For a mega-batched group the delta is
  // group-scoped (the fused step shares one pool), recorded on each record.
  uint64_t pool_hits = 0;
  uint64_t pool_misses = 0;

  // Wall time. Phases are method-reported (enumerate/prefilter/optimize/...);
  // for mega-batched groups each phase is the group's shared wall time.
  double wall_seconds = 0.0;
  std::vector<std::pair<std::string, double>> phase_seconds;

  // The config that produced this explanation (method options plus the
  // process-level switches that affect the execution path).
  std::vector<std::pair<std::string, std::string>> config;
};

// Serializes one record as a single-line JSON object (no trailing newline).
std::string AuditRecordToJson(const AuditRecord& record);

class AuditSink {
 public:
  static AuditSink& Global();

  bool enabled() const;

  // Streams records to `path` as JSONL. Creates/truncates the file; returns
  // false (sink disabled) when the file cannot be opened.
  bool OpenFile(const std::string& path);
  // Collects records in memory instead (tests). TakeRecords drains them.
  void CollectInMemory();
  std::vector<AuditRecord> TakeRecords();
  // Flushes and disables the sink.
  void Close();

  // Stamps record_id, then writes or retains the record. Thread-safe.
  void Submit(AuditRecord record);

  uint64_t records_submitted() const;

 private:
  AuditSink() = default;
};

// RAII collection scope for one Explain/ExplainBatch call. When the sink is
// disabled, constructing a scope is a no-op and Current() stays nullptr, so
// per-epoch hooks cost one thread-local load. Scopes do not nest: an
// explainer that recursively explains (SubgraphX fidelity probes) keeps
// writing into the outermost scope's records.
class AuditScope {
 public:
  explicit AuditScope(size_t group_size);
  ~AuditScope();
  AuditScope(const AuditScope&) = delete;
  AuditScope& operator=(const AuditScope&) = delete;

  bool active() const { return active_; }
  size_t group_size() const;
  AuditRecord* record(size_t i);

  // The (base + i)-th record of the innermost active scope on this thread, or
  // nullptr when auditing is off. Explainer hooks use this so they need no
  // plumbing: a fused batch step passes its own instance index, a
  // single-instance optimizer passes nothing.
  static AuditRecord* Current(size_t i = 0);

  // Shifts Current(i) to record(base + i). The sequential fallback loop in
  // Explainer::ExplainBatchImpl sets this before each per-task ExplainImpl so
  // single-instance hooks (which always pass i = 0) land on the right record.
  static void SetInstanceBase(size_t base);

  // Appends a phase timing to the current instance's record (no-op when
  // auditing is off). A single-instance optimizer reports its own phases.
  static void AddPhase(const char* name, double seconds);

  // Appends a phase timing to every record of the scope: a fused mega-batch
  // step's phases are shared by the whole group.
  static void AddPhaseAll(const char* name, double seconds);

  // Submits every record of this scope to the sink now (called by the
  // Explain wrapper after it finishes stamping totals).
  void SubmitAll();

 private:
  bool active_ = false;
  bool owns_slot_ = false;
  size_t instance_base_ = 0;
  std::vector<AuditRecord> records_;
};

}  // namespace revelio::obs

#endif  // REVELIO_OBS_AUDIT_H_
