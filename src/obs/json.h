#ifndef REVELIO_OBS_JSON_H_
#define REVELIO_OBS_JSON_H_

// Minimal JSON support for the telemetry subsystem: a streaming writer used
// by the Chrome-trace/metrics exporters and the shared BENCH_*.json emitter,
// and a small recursive-descent parser used by the tests and the
// trace-validation tool to parse exported files back. No external deps.

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace revelio::obs {

// Streaming JSON writer. Call sequence is validated loosely: inside an
// object, every value must be preceded by Key(); commas and escaping are
// handled internally. Non-finite doubles are emitted as null (JSON has no
// NaN/Inf).
class JsonWriter {
 public:
  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();
  void Key(std::string_view key);
  void String(std::string_view value);
  void Int(int64_t value);
  void Uint(uint64_t value);
  void Double(double value);
  void Bool(bool value);
  void Null();

  // The document built so far.
  const std::string& str() const { return out_; }
  std::string TakeString() { return std::move(out_); }

  static std::string Escape(std::string_view raw);

 private:
  void BeforeValue();
  std::string out_;
  // One entry per open container: true once the container holds a value
  // (i.e. the next value needs a leading comma).
  std::vector<bool> has_value_;
};

// Parsed JSON document node. Object member order is preserved.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool bool_value = false;
  double number_value = 0.0;
  std::string string_value;
  std::vector<JsonValue> array_items;
  std::vector<std::pair<std::string, JsonValue>> object_items;

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_string() const { return type == Type::kString; }
  bool is_number() const { return type == Type::kNumber; }

  // First member with the given key, or nullptr (objects only).
  const JsonValue* Find(std::string_view key) const;
};

// Parses `text` into `*out`. On failure returns false and, if `error` is
// non-null, fills it with a message that includes the byte offset.
bool ParseJson(std::string_view text, JsonValue* out, std::string* error);

}  // namespace revelio::obs

#endif  // REVELIO_OBS_JSON_H_
