#ifndef REVELIO_OBS_RECORDER_H_
#define REVELIO_OBS_RECORDER_H_

// Flight recorder: a fixed-capacity, thread-sharded, lock-free ring buffer of
// structured events that answers "what was the process doing just before
// now?" without a debugger. Span begin/end, counter deltas, tensor-pool
// high-water transitions, and explainer phase markers are appended as
// fixed-size records; when the ring wraps, the oldest records are simply
// overwritten, so memory stays bounded no matter how long the process runs.
//
// Write path (Record*): one relaxed fetch_add to claim a slot plus a handful
// of relaxed stores — wait-free, allocation-free, safe from any thread
// including ParallelFor workers and signal-adjacent code. Every event field
// is a relaxed atomic so concurrent writers and a concurrent DumpFlightRecord
// never constitute a data race; a dump taken while writers are active may
// contain a few torn records, which the exporter tolerates (post-mortem
// artifacts prefer availability over perfection).
//
// Toggles (read once at startup, overridable at runtime for benches):
//   REVELIO_FLIGHT_RECORDER=0   disables recording; the hot path is then one
//                               relaxed load + branch (measured-zero overhead,
//                               gated by BENCH_obs.json)
//   REVELIO_FLIGHT_CAPACITY=N   total event capacity (default 65536)
//   REVELIO_FLIGHT_DUMP=path    arms the SIGABRT/SIGSEGV crash handler: any
//                               crash writes the last-N-events Chrome trace
//                               to `path` before the default signal action
//
// Event names must be string literals or interned strings: the ring stores
// `const char*` only. Use InternFlightName for computed names (explainer
// phase markers); interning is a mutex + map hit, so keep it off per-epoch
// hot paths.

#include <atomic>
#include <cstdint>
#include <string>

#include "obs/json.h"

namespace revelio::obs {

enum class FlightEventKind : uint8_t {
  kSpanBegin = 0,
  kSpanEnd = 1,
  kCounterDelta = 2,
  kPoolHighWater = 3,
  kPhase = 4,
};

// One decoded record, as returned by FlightRecorder::Collect.
struct FlightEvent {
  uint64_t seq = 0;  // global claim order (monotone per shard)
  FlightEventKind kind = FlightEventKind::kPhase;
  const char* name = nullptr;
  double t_us = 0.0;   // microseconds since the trace epoch
  double value = 0.0;  // counter delta / pool bytes / span duration (end)
  int tid = 0;         // metric shard index of the writing thread
};

// Global on/off switch, initialized from REVELIO_FLIGHT_RECORDER (default on).
bool FlightEnabled();
void SetFlightEnabled(bool enabled);

// Interns `name` into process-lifetime storage and returns a stable pointer.
// Repeated calls with the same contents return the same pointer.
const char* InternFlightName(const std::string& name);

class FlightRecorder {
 public:
  static FlightRecorder& Global();

  // Appends one event. No-op (one relaxed load) when FlightEnabled() is
  // false. `name` must outlive the process (literal or interned).
  void Record(FlightEventKind kind, const char* name, double value = 0.0);

  // Decoded snapshot of every retained event, oldest first. Safe to call
  // while writers are active (records claimed mid-dump may be torn or
  // skipped).
  std::vector<FlightEvent> Collect() const;

  // Total events the ring can retain across all shards.
  size_t capacity() const;
  // Events ever recorded (>= capacity once wrapped).
  uint64_t total_recorded() const;
  // Drops every retained event (testing; writers may run concurrently).
  void Clear();

  // Chrome trace-event JSON of the retained events: "B"/"E" span events,
  // "C" counter samples, "i" instants for pool/phase markers.
  void AppendChromeTrace(JsonWriter* writer) const;
  bool WriteChromeTrace(const std::string& path) const;

  // Crash-dump plumbing. SetDumpPath + InstallCrashHandler arm SIGABRT and
  // SIGSEGV handlers that best-effort write the flight record to the dump
  // path and then re-raise with the default action. REVELIO_FLIGHT_DUMP=path
  // does both automatically on first FlightRecorder use.
  void SetDumpPath(const std::string& path);
  std::string dump_path() const;

 private:
  FlightRecorder();
  struct Shard;
  Shard* shards_;  // fixed array of kFlightShards, leaked with the singleton
  size_t shard_capacity_ = 0;
};

// Installs the SIGABRT/SIGSEGV flight-dump handlers (idempotent). The dump
// handler is best-effort, not strictly async-signal-safe; it exists to leave
// a post-mortem artifact, not to guarantee one under arbitrary corruption.
void InstallCrashHandler();

// Convenience wrappers used by the instrumentation sites.
inline void RecordFlightEvent(FlightEventKind kind, const char* name, double value = 0.0) {
  if (!FlightEnabled()) return;
  FlightRecorder::Global().Record(kind, name, value);
}
inline void RecordPhase(const char* name) {
  RecordFlightEvent(FlightEventKind::kPhase, name);
}

// Writes the flight record to REVELIO_FLIGHT_DUMP / SetDumpPath target.
// Returns false when no path is configured or the write failed. Called by
// the crash handler and usable directly before an expected abort.
bool DumpFlightRecord();

}  // namespace revelio::obs

#endif  // REVELIO_OBS_RECORDER_H_
