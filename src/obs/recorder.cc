#include "obs/recorder.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <algorithm>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace revelio::obs {

namespace {

constexpr int kFlightShards = 16;
constexpr size_t kDefaultCapacity = size_t{1} << 16;

size_t EnvCapacity() {
  const char* env = std::getenv("REVELIO_FLIGHT_CAPACITY");
  if (env == nullptr) return kDefaultCapacity;
  const long parsed = std::strtol(env, nullptr, 10);
  if (parsed <= 0) return kDefaultCapacity;
  return static_cast<size_t>(parsed);
}

bool EnvFlightEnabled() {
  const char* env = std::getenv("REVELIO_FLIGHT_RECORDER");
  if (env == nullptr) return true;
  const std::string value(env);
  return !(value == "0" || value == "false" || value == "off");
}

std::atomic<bool>& FlightFlag() {
  static std::atomic<bool> flag(EnvFlightEnabled());
  return flag;
}

// Round up to a power of two so the ring index is a mask, not a modulo.
size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

struct DumpState {
  std::mutex mu;
  std::string path;  // guarded by mu
};

DumpState& Dump() {
  static DumpState* state = new DumpState();
  return *state;
}

extern "C" void FlightCrashHandler(int signum) {
  // Best effort: restore the default action first so a second fault (or the
  // re-raise below) terminates instead of recursing.
  std::signal(signum, SIG_DFL);
  DumpFlightRecord();
  std::raise(signum);
}

}  // namespace

// One cache-line-padded ring per shard. Every field of a slot is a relaxed
// atomic: concurrent writers own distinct claimed slots, and a concurrent
// reader sees either a complete record or a torn one it can discard via the
// per-slot seq stamp — never a data race.
struct FlightRecorder::Shard {
  struct Slot {
    std::atomic<uint64_t> seq{0};  // 0 = never written; else claim index + 1
    std::atomic<const char*> name{nullptr};
    std::atomic<double> t_us{0.0};
    std::atomic<double> value{0.0};
    std::atomic<uint8_t> kind{0};
    std::atomic<int> tid{0};
  };
  alignas(64) std::atomic<uint64_t> cursor{0};
  std::unique_ptr<Slot[]> slots;
  size_t mask = 0;
};

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

FlightRecorder::FlightRecorder() {
  shard_capacity_ = RoundUpPow2(std::max<size_t>(1, EnvCapacity() / kFlightShards));
  shards_ = new Shard[kFlightShards];
  for (int s = 0; s < kFlightShards; ++s) {
    shards_[s].slots = std::make_unique<Shard::Slot[]>(shard_capacity_);
    shards_[s].mask = shard_capacity_ - 1;
  }
  const char* env = std::getenv("REVELIO_FLIGHT_DUMP");
  if (env != nullptr && env[0] != '\0') {
    SetDumpPath(env);
    InstallCrashHandler();
  }
}

bool FlightEnabled() { return FlightFlag().load(std::memory_order_relaxed); }

void SetFlightEnabled(bool enabled) {
  FlightFlag().store(enabled, std::memory_order_relaxed);
}

const char* InternFlightName(const std::string& name) {
  static std::mutex mu;
  // Keys own the storage; node-based map keeps c_str() pointers stable.
  static std::map<std::string, bool>* interned = new std::map<std::string, bool>();
  std::lock_guard<std::mutex> lock(mu);
  return (*interned).emplace(name, true).first->first.c_str();
}

void FlightRecorder::Record(FlightEventKind kind, const char* name, double value) {
  if (!FlightEnabled()) return;
  const int tid = internal::ThisThreadShard();
  Shard& shard = shards_[tid & (kFlightShards - 1)];
  const uint64_t claim = shard.cursor.fetch_add(1, std::memory_order_relaxed);
  Shard::Slot& slot = shard.slots[claim & shard.mask];
  // seq is stamped last so a reader that sees the new seq has a good chance
  // of seeing the matching payload; a torn record only surfaces when a dump
  // races the writer on this exact slot.
  slot.name.store(name, std::memory_order_relaxed);
  slot.t_us.store(TraceRecorder::NowMicros(), std::memory_order_relaxed);
  slot.value.store(value, std::memory_order_relaxed);
  slot.kind.store(static_cast<uint8_t>(kind), std::memory_order_relaxed);
  slot.tid.store(tid, std::memory_order_relaxed);
  slot.seq.store(claim + 1, std::memory_order_release);
}

std::vector<FlightEvent> FlightRecorder::Collect() const {
  std::vector<FlightEvent> events;
  events.reserve(std::min<size_t>(total_recorded(), capacity()));
  for (int s = 0; s < kFlightShards; ++s) {
    const Shard& shard = shards_[s];
    const uint64_t cursor = shard.cursor.load(std::memory_order_acquire);
    const uint64_t retained = std::min<uint64_t>(cursor, shard_capacity_);
    for (uint64_t i = cursor - retained; i < cursor; ++i) {
      const Shard::Slot& slot = shard.slots[i & shard.mask];
      const uint64_t seq = slot.seq.load(std::memory_order_acquire);
      // Discard never-written and visibly-torn slots (a writer lapped us).
      if (seq == 0 || seq != i + 1) continue;
      FlightEvent event;
      event.seq = seq - 1;
      event.kind = static_cast<FlightEventKind>(slot.kind.load(std::memory_order_relaxed));
      event.name = slot.name.load(std::memory_order_relaxed);
      event.t_us = slot.t_us.load(std::memory_order_relaxed);
      event.value = slot.value.load(std::memory_order_relaxed);
      event.tid = slot.tid.load(std::memory_order_relaxed);
      // Re-check the stamp: a writer that lapped us mid-read left a mix of
      // old and new fields, which the second load exposes.
      if (slot.seq.load(std::memory_order_acquire) != seq) continue;
      if (event.name == nullptr) continue;
      events.push_back(event);
    }
  }
  std::sort(events.begin(), events.end(), [](const FlightEvent& a, const FlightEvent& b) {
    if (a.t_us != b.t_us) return a.t_us < b.t_us;
    return a.seq < b.seq;
  });
  return events;
}

size_t FlightRecorder::capacity() const {
  return shard_capacity_ * static_cast<size_t>(kFlightShards);
}

uint64_t FlightRecorder::total_recorded() const {
  uint64_t total = 0;
  for (int s = 0; s < kFlightShards; ++s) {
    total += shards_[s].cursor.load(std::memory_order_relaxed);
  }
  return total;
}

void FlightRecorder::Clear() {
  for (int s = 0; s < kFlightShards; ++s) {
    Shard& shard = shards_[s];
    for (size_t i = 0; i < shard_capacity_; ++i) {
      shard.slots[i].seq.store(0, std::memory_order_relaxed);
    }
    shard.cursor.store(0, std::memory_order_relaxed);
  }
}

void FlightRecorder::AppendChromeTrace(JsonWriter* writer) const {
  const std::vector<FlightEvent> events = Collect();
  writer->BeginObject();
  writer->Key("displayTimeUnit");
  writer->String("ms");
  writer->Key("otherData");
  writer->BeginObject();
  writer->Key("source");
  writer->String("revelio-flight-recorder");
  writer->Key("capacity");
  writer->Uint(capacity());
  writer->Key("total_recorded");
  writer->Uint(total_recorded());
  writer->EndObject();
  writer->Key("traceEvents");
  writer->BeginArray();
  for (const FlightEvent& event : events) {
    writer->BeginObject();
    writer->Key("name");
    writer->String(event.name);
    writer->Key("cat");
    writer->String("flight");
    writer->Key("ph");
    switch (event.kind) {
      case FlightEventKind::kSpanBegin:
        writer->String("B");
        break;
      case FlightEventKind::kSpanEnd:
        writer->String("E");
        break;
      case FlightEventKind::kCounterDelta:
        writer->String("C");
        break;
      case FlightEventKind::kPoolHighWater:
      case FlightEventKind::kPhase:
        writer->String("i");
        break;
    }
    writer->Key("ts");
    writer->Double(event.t_us);
    writer->Key("pid");
    writer->Int(0);
    writer->Key("tid");
    writer->Int(event.tid);
    if (event.kind == FlightEventKind::kCounterDelta) {
      writer->Key("args");
      writer->BeginObject();
      writer->Key("delta");
      writer->Double(event.value);
      writer->EndObject();
    } else if (event.kind == FlightEventKind::kPoolHighWater) {
      writer->Key("s");
      writer->String("t");  // thread-scoped instant
      writer->Key("args");
      writer->BeginObject();
      writer->Key("bytes_peak");
      writer->Double(event.value);
      writer->EndObject();
    } else if (event.kind == FlightEventKind::kPhase) {
      writer->Key("s");
      writer->String("g");  // global instant
    }
    writer->Key("args_seq");
    writer->Uint(event.seq);
    writer->EndObject();
  }
  writer->EndArray();
  writer->EndObject();
}

bool FlightRecorder::WriteChromeTrace(const std::string& path) const {
  JsonWriter writer;
  AppendChromeTrace(&writer);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string& doc = writer.str();
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  return std::fclose(f) == 0 && ok;
}

void FlightRecorder::SetDumpPath(const std::string& path) {
  std::lock_guard<std::mutex> lock(Dump().mu);
  Dump().path = path;
}

std::string FlightRecorder::dump_path() const {
  std::lock_guard<std::mutex> lock(Dump().mu);
  return Dump().path;
}

void InstallCrashHandler() {
  static std::once_flag once;
  std::call_once(once, [] {
    std::signal(SIGABRT, FlightCrashHandler);
    std::signal(SIGSEGV, FlightCrashHandler);
  });
}

bool DumpFlightRecord() {
  const std::string path = FlightRecorder::Global().dump_path();
  if (path.empty()) return false;
  return FlightRecorder::Global().WriteChromeTrace(path);
}

}  // namespace revelio::obs
