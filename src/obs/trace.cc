#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>

#include "obs/recorder.h"
#include "util/table_printer.h"

namespace revelio::obs {

namespace internal {

// Owned jointly by the registering thread (thread_local shared_ptr) and the
// recorder's registry, so logs survive thread exit until export.
struct ThreadLog {
  mutable std::mutex mu;  // guards events/dropped against concurrent export
  std::vector<TraceEvent> events;
  uint64_t dropped = 0;
  int tid = 0;
  int depth = 0;  // open-span depth; touched only by the owning thread
};

}  // namespace internal

namespace {

using internal::ThreadLog;

struct LogRegistry {
  std::mutex mu;  // guards `logs`
  std::vector<std::shared_ptr<ThreadLog>> logs;
  std::atomic<size_t> max_events_per_thread{size_t{1} << 20};
};

LogRegistry& Registry() {
  static LogRegistry* registry = new LogRegistry();
  return *registry;
}

// Process-wide epoch for trace timestamps.
const util::Timer& Epoch() {
  static const util::Timer* epoch = new util::Timer();
  return *epoch;
}

}  // namespace

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

double TraceRecorder::NowMicros() { return Epoch().ElapsedSeconds() * 1e6; }

internal::ThreadLog* TraceRecorder::ThisThreadLog() {
  thread_local std::shared_ptr<ThreadLog> log = [] {
    auto created = std::make_shared<ThreadLog>();
    LogRegistry& registry = Registry();
    std::lock_guard<std::mutex> lock(registry.mu);
    created->tid = static_cast<int>(registry.logs.size());
    registry.logs.push_back(created);
    return created;
  }();
  return log.get();
}

void TraceRecorder::Clear() {
  LogRegistry& registry = Registry();
  std::lock_guard<std::mutex> lock(registry.mu);
  for (const auto& log : registry.logs) {
    std::lock_guard<std::mutex> log_lock(log->mu);
    log->events.clear();
    log->dropped = 0;
  }
}

void TraceRecorder::SetMaxEventsPerThread(size_t cap) {
  Registry().max_events_per_thread.store(std::max<size_t>(1, cap), std::memory_order_relaxed);
}

size_t TraceRecorder::max_events_per_thread() const {
  return Registry().max_events_per_thread.load(std::memory_order_relaxed);
}

uint64_t TraceRecorder::dropped_events() const {
  LogRegistry& registry = Registry();
  std::lock_guard<std::mutex> lock(registry.mu);
  uint64_t dropped = 0;
  for (const auto& log : registry.logs) {
    std::lock_guard<std::mutex> log_lock(log->mu);
    dropped += log->dropped;
  }
  return dropped;
}

std::vector<TraceEvent> TraceRecorder::Consolidated() const {
  std::vector<TraceEvent> events;
  {
    LogRegistry& registry = Registry();
    std::lock_guard<std::mutex> lock(registry.mu);
    for (const auto& log : registry.logs) {
      std::lock_guard<std::mutex> log_lock(log->mu);
      events.insert(events.end(), log->events.begin(), log->events.end());
    }
  }
  std::sort(events.begin(), events.end(), [](const TraceEvent& a, const TraceEvent& b) {
    if (a.start_us != b.start_us) return a.start_us < b.start_us;
    return a.dur_us > b.dur_us;  // parents before their children
  });
  return events;
}

void TraceRecorder::AppendChromeTrace(JsonWriter* writer) const {
  const std::vector<TraceEvent> events = Consolidated();
  int max_tid = 0;
  for (const TraceEvent& event : events) max_tid = std::max(max_tid, event.tid);

  writer->BeginObject();
  writer->Key("displayTimeUnit");
  writer->String("ms");
  writer->Key("otherData");
  writer->BeginObject();
  writer->Key("dropped_events");
  writer->Uint(dropped_events());
  writer->EndObject();
  writer->Key("traceEvents");
  writer->BeginArray();
  writer->BeginObject();
  writer->Key("name");
  writer->String("process_name");
  writer->Key("ph");
  writer->String("M");
  writer->Key("pid");
  writer->Int(0);
  writer->Key("tid");
  writer->Int(0);
  writer->Key("args");
  writer->BeginObject();
  writer->Key("name");
  writer->String("revelio");
  writer->EndObject();
  writer->EndObject();
  for (int tid = 0; tid <= max_tid; ++tid) {
    writer->BeginObject();
    writer->Key("name");
    writer->String("thread_name");
    writer->Key("ph");
    writer->String("M");
    writer->Key("pid");
    writer->Int(0);
    writer->Key("tid");
    writer->Int(tid);
    writer->Key("args");
    writer->BeginObject();
    writer->Key("name");
    writer->String(tid == 0 ? "main" : ("worker-" + std::to_string(tid)));
    writer->EndObject();
    writer->EndObject();
  }
  for (const TraceEvent& event : events) {
    writer->BeginObject();
    writer->Key("name");
    writer->String(event.name);
    writer->Key("cat");
    writer->String("revelio");
    writer->Key("ph");
    writer->String("X");
    writer->Key("ts");
    writer->Double(event.start_us);
    writer->Key("dur");
    writer->Double(event.dur_us);
    writer->Key("pid");
    writer->Int(0);
    writer->Key("tid");
    writer->Int(event.tid);
    writer->EndObject();
  }
  writer->EndArray();
  writer->EndObject();
}

bool TraceRecorder::WriteChromeTrace(const std::string& path) const {
  JsonWriter writer;
  AppendChromeTrace(&writer);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string& doc = writer.str();
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  return std::fclose(f) == 0 && ok;
}

std::string TraceRecorder::ProfileTable() const {
  const std::vector<TraceEvent> events = Consolidated();
  if (events.empty()) return "";

  // Self time per event: duration minus the durations of direct children,
  // reconstructed per thread from interval containment (spans nest properly
  // within a thread). `Consolidated` already orders parents before children.
  struct Open {
    double end_us;
    size_t index;
  };
  struct Aggregate {
    uint64_t count = 0;
    double total_us = 0.0;
    double self_us = 0.0;
  };
  std::vector<double> child_us(events.size(), 0.0);
  std::map<int, std::vector<Open>> stacks;  // tid -> open-span stack
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& event = events[i];
    std::vector<Open>& stack = stacks[event.tid];
    while (!stack.empty() && stack.back().end_us <= event.start_us) stack.pop_back();
    if (!stack.empty()) child_us[stack.back().index] += event.dur_us;
    stack.push_back({event.start_us + event.dur_us, i});
  }

  std::map<std::string, Aggregate> by_name;
  double trace_total_self_us = 0.0;
  for (size_t i = 0; i < events.size(); ++i) {
    Aggregate& aggregate = by_name[events[i].name];
    aggregate.count += 1;
    aggregate.total_us += events[i].dur_us;
    aggregate.self_us += std::max(0.0, events[i].dur_us - child_us[i]);
    trace_total_self_us += std::max(0.0, events[i].dur_us - child_us[i]);
  }

  std::vector<std::pair<std::string, Aggregate>> rows(by_name.begin(), by_name.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.total_us > b.second.total_us;
  });

  util::TablePrinter table({"Span", "Count", "Total s", "Self s", "Self %", "Avg ms"});
  for (const auto& [name, aggregate] : rows) {
    const double self_pct =
        trace_total_self_us > 0.0 ? 100.0 * aggregate.self_us / trace_total_self_us : 0.0;
    table.AddRow({name, std::to_string(aggregate.count),
                  util::TablePrinter::FormatDouble(aggregate.total_us / 1e6, 3),
                  util::TablePrinter::FormatDouble(aggregate.self_us / 1e6, 3),
                  util::TablePrinter::FormatDouble(self_pct, 1),
                  util::TablePrinter::FormatDouble(
                      aggregate.count > 0 ? aggregate.total_us / 1e3 / aggregate.count : 0.0,
                      3)});
  }
  return table.ToString();
}

// --- ScopedSpan --------------------------------------------------------------

void ScopedSpan::Begin(FlightPolicy flight) {
  // The flight recorder runs independently of the span log: spans feed the
  // bounded post-mortem ring even when full tracing is off.
  if (flight == FlightPolicy::kRecord && FlightEnabled()) {
    flight_name_ = literal_name_ != nullptr
                       ? literal_name_
                       : (owned_name_.empty() ? nullptr : InternFlightName(owned_name_));
    if (flight_name_ != nullptr) {
      FlightRecorder::Global().Record(FlightEventKind::kSpanBegin, flight_name_);
    }
  }
  if (!Enabled()) return;
  log_ = TraceRecorder::Global().ThisThreadLog();
  start_us_ = TraceRecorder::NowMicros();
  ++log_->depth;
}

ScopedSpan::ScopedSpan(const char* name, FlightPolicy flight) : literal_name_(name) {
  Begin(flight);
}

ScopedSpan::ScopedSpan(std::string name, FlightPolicy flight) : owned_name_(std::move(name)) {
  Begin(flight);
}

ScopedSpan::~ScopedSpan() {
  if (flight_name_ != nullptr) {
    // Record() re-checks the enable flag, so a span that straddles a
    // SetFlightEnabled(false) simply drops its end event.
    FlightRecorder::Global().Record(FlightEventKind::kSpanEnd, flight_name_,
                                    timer_.ElapsedSeconds() * 1e6);
  }
  if (log_ == nullptr) return;
  const double end_us = TraceRecorder::NowMicros();
  const int depth = --log_->depth;
  const size_t cap = Registry().max_events_per_thread.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(log_->mu);
  if (log_->events.size() >= cap) {
    ++log_->dropped;
    return;
  }
  TraceEvent event;
  event.name = literal_name_ != nullptr ? std::string(literal_name_) : std::move(owned_name_);
  event.start_us = start_us_;
  event.dur_us = end_us - start_us_;
  event.tid = log_->tid;
  event.depth = depth;
  log_->events.push_back(std::move(event));
}

}  // namespace revelio::obs
