#ifndef REVELIO_OBS_EXPORT_PROM_H_
#define REVELIO_OBS_EXPORT_PROM_H_

// Prometheus-style text exposition of the metrics registry, plus an optional
// background thread that re-exports a snapshot on a fixed interval so an
// external scraper (or a human with `watch cat`) sees live SLO numbers while
// a long run is in flight.
//
// Format notes (text exposition 0.0.4 subset):
//   - metric names are sanitized: '.' and '-' become '_', anything else
//     non-alphanumeric is dropped; every name gains a `revelio_` prefix.
//   - counters export as `<name>_total`, gauges as `<name>`.
//   - histograms export cumulative `<name>_bucket{le="..."}` series ending in
//     le="+Inf", plus `<name>_sum` / `<name>_count`, plus derived
//     `<name>_p50/p95/p99` gauges (Prometheus-style interpolation, see
//     obs/metrics.h) so dashboards get quantiles without PromQL.
//
// The writer consumes a MetricsSnapshot, so tests can round-trip: snapshot ->
// text -> parse -> compare against the same snapshot's JSON export.

#include <string>

#include "obs/metrics.h"

namespace revelio::obs {

// `raw` -> exposition-safe metric name (prefixed, sanitized). Exposed for the
// round-trip test.
std::string PrometheusMetricName(const std::string& raw);

// Renders the snapshot as a complete exposition document (# TYPE comments
// included, terminating newline included).
std::string PrometheusText(const MetricsSnapshot& snapshot);

// Snapshot the global registry and write the exposition to `path`
// (tmp+rename so scrapers never see a torn file). False on I/O failure.
bool WritePrometheusTextFile(const std::string& path);

// Background exporter: rewrites `path` every `interval_ms` until stopped.
// One exporter at a time; starting again replaces the previous one.
// REVELIO_METRICS_INTERVAL_MS=<ms> makes InitTelemetry-style callers start
// this automatically (see MetricsExportIntervalFromEnv).
void StartMetricsExportThread(const std::string& path, int interval_ms);
void StopMetricsExportThread();

// The REVELIO_METRICS_INTERVAL_MS value, or 0 when unset/invalid.
int MetricsExportIntervalFromEnv();

}  // namespace revelio::obs

#endif  // REVELIO_OBS_EXPORT_PROM_H_
