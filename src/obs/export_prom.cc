#include "obs/export_prom.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <sstream>
#include <thread>

namespace revelio::obs {

namespace {

// %.17g round-trips every double; exponents are fine in exposition values.
std::string FormatValue(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

void AppendHistogram(std::ostringstream* out, const MetricsSnapshot::HistogramEntry& entry) {
  const std::string name = PrometheusMetricName(entry.name);
  *out << "# TYPE " << name << " histogram\n";
  uint64_t cumulative = 0;
  for (size_t b = 0; b < entry.bounds.size(); ++b) {
    cumulative += b < entry.counts.size() ? entry.counts[b] : 0;
    *out << name << "_bucket{le=\"" << FormatValue(entry.bounds[b]) << "\"} " << cumulative
         << "\n";
  }
  *out << name << "_bucket{le=\"+Inf\"} " << entry.count << "\n";
  *out << name << "_sum " << FormatValue(entry.sum) << "\n";
  *out << name << "_count " << entry.count << "\n";
  const HistogramSummary summary = SummarizeHistogram(entry);
  *out << "# TYPE " << name << "_p50 gauge\n";
  *out << name << "_p50 " << FormatValue(summary.p50) << "\n";
  *out << "# TYPE " << name << "_p95 gauge\n";
  *out << name << "_p95 " << FormatValue(summary.p95) << "\n";
  *out << "# TYPE " << name << "_p99 gauge\n";
  *out << name << "_p99 " << FormatValue(summary.p99) << "\n";
}

struct Exporter {
  std::mutex mu;
  std::condition_variable cv;
  std::thread thread;
  bool stop = false;
};

Exporter& TheExporter() {
  static Exporter* exporter = new Exporter();
  return *exporter;
}

}  // namespace

std::string PrometheusMetricName(const std::string& raw) {
  std::string name = "revelio_";
  for (char c : raw) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      name.push_back(c);
    } else if (c == '.' || c == '-' || c == '_') {
      name.push_back('_');
    }
    // Anything else is dropped: exposition names admit only [a-zA-Z0-9_:].
  }
  return name;
}

std::string PrometheusText(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  for (const auto& [raw_name, value] : snapshot.counters) {
    const std::string name = PrometheusMetricName(raw_name) + "_total";
    out << "# TYPE " << name << " counter\n";
    out << name << " " << value << "\n";
  }
  for (const auto& [raw_name, value] : snapshot.gauges) {
    const std::string name = PrometheusMetricName(raw_name);
    out << "# TYPE " << name << " gauge\n";
    out << name << " " << FormatValue(value) << "\n";
  }
  for (const auto& entry : snapshot.histograms) {
    AppendHistogram(&out, entry);
  }
  return out.str();
}

bool WritePrometheusTextFile(const std::string& path) {
  const std::string text = PrometheusText(MetricsRegistry::Global().Snapshot());
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) return false;
  const bool wrote = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  if (std::fclose(f) != 0 || !wrote) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

void StartMetricsExportThread(const std::string& path, int interval_ms) {
  if (interval_ms <= 0) return;
  StopMetricsExportThread();
  Exporter& exporter = TheExporter();
  exporter.stop = false;
  exporter.thread = std::thread([path, interval_ms] {
    Exporter& self = TheExporter();
    std::unique_lock<std::mutex> lock(self.mu);
    while (!self.cv.wait_for(lock, std::chrono::milliseconds(interval_ms),
                             [&self] { return self.stop; })) {
      lock.unlock();
      WritePrometheusTextFile(path);
      lock.lock();
    }
  });
}

void StopMetricsExportThread() {
  Exporter& exporter = TheExporter();
  if (!exporter.thread.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(exporter.mu);
    exporter.stop = true;
  }
  exporter.cv.notify_all();
  exporter.thread.join();
}

int MetricsExportIntervalFromEnv() {
  const char* env = std::getenv("REVELIO_METRICS_INTERVAL_MS");
  if (env == nullptr || env[0] == '\0') return 0;
  const int interval = std::atoi(env);
  return interval > 0 ? interval : 0;
}

}  // namespace revelio::obs
