#ifndef REVELIO_TENSOR_INIT_H_
#define REVELIO_TENSOR_INIT_H_

// Parameter initialization schemes.

#include "tensor/tensor.h"
#include "util/rng.h"

namespace revelio::tensor {

// Glorot/Xavier uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out)).
Tensor XavierUniform(int fan_in, int fan_out, util::Rng* rng);

// He/Kaiming normal: N(0, sqrt(2 / fan_in)), suited to ReLU stacks.
Tensor HeNormal(int fan_in, int fan_out, util::Rng* rng);

}  // namespace revelio::tensor

#endif  // REVELIO_TENSOR_INIT_H_
