#include "tensor/pool.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdlib>
#include <string>

#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/trace.h"

namespace revelio::tensor {

namespace {

// Exponent all-ones + nonzero mantissa: a NaN that survives arithmetic, so a
// stale read of a recycled buffer poisons everything downstream of it.
const float kPoisonValue = std::bit_cast<float>(uint32_t{0x7fbadbad});

// Tiny workloads still deserve reuse: retain at least this much even before
// the in-use high-water mark has grown past it.
constexpr uint64_t kMinRetainBytes = uint64_t{1} << 20;

bool EnvFlagDisabled(const char* name) {
  const char* env = std::getenv(name);
  if (env == nullptr) return false;
  const std::string value(env);
  return value == "0" || value == "false" || value == "off";
}

bool EnvFlagEnabled(const char* name) {
  const char* env = std::getenv(name);
  if (env == nullptr) return false;
  const std::string value(env);
  return !(value.empty() || value == "0" || value == "false" || value == "off");
}

std::atomic<bool>& PoolEnabledFlag() {
  static std::atomic<bool> flag(!EnvFlagDisabled("REVELIO_TENSOR_POOL"));
  return flag;
}

std::atomic<bool>& PoolPoisonFlag() {
  static std::atomic<bool> flag(EnvFlagEnabled("REVELIO_POISON_POOL"));
  return flag;
}

// Mirrors of the per-thread stats in the process-wide registry (sharded
// atomics; no-ops while obs::Enabled() is false).
struct PoolMetrics {
  obs::Counter* hit;
  obs::Counter* miss;
  obs::Gauge* bytes_in_use;
  obs::Gauge* bytes_peak;
};

PoolMetrics& Metrics() {
  static PoolMetrics metrics = [] {
    PoolMetrics m{
        obs::MetricsRegistry::Global().GetCounter("tensor.pool.hit"),
        obs::MetricsRegistry::Global().GetCounter("tensor.pool.miss"),
        obs::MetricsRegistry::Global().GetGauge("tensor.pool.bytes_in_use"),
        obs::MetricsRegistry::Global().GetGauge("tensor.pool.bytes_peak"),
    };
    // Per-Acquire ticks are cheaper than a flight-ring record; the ring gets
    // the rare kPoolHighWater transitions instead of a flood of hit/miss.
    m.hit->DisableFlightRecording();
    m.miss->DisableFlightRecording();
    return m;
  }();
  return metrics;
}

// thread_local teardown guard: TensorNode destructors can run during thread
// exit after this thread's pool is gone; ThreadLocal() must then return null
// instead of resurrecting a destroyed object. Tri-state because the flag is
// also false before first use.
thread_local int t_pool_state = 0;  // 0 = not created, 1 = alive, 2 = destroyed

struct PoolHolder {
  TensorPool pool;
  PoolHolder() { t_pool_state = 1; }
  ~PoolHolder() { t_pool_state = 2; }
};

TensorPool* HolderPool() {
  thread_local PoolHolder holder;
  return &holder.pool;
}

}  // namespace

bool PoolEnabled() { return PoolEnabledFlag().load(std::memory_order_relaxed); }

void SetPoolEnabled(bool enabled) {
  PoolEnabledFlag().store(enabled, std::memory_order_relaxed);
  // Disabling must also stop serving from already-parked buffers, otherwise
  // "legacy allocator" mode would still be pool-backed for a while.
  if (!enabled) {
    if (TensorPool* pool = TensorPool::ThreadLocal()) pool->Trim();
  }
}

bool PoolPoisonEnabled() { return PoolPoisonFlag().load(std::memory_order_relaxed); }

void SetPoolPoison(bool enabled) {
  PoolPoisonFlag().store(enabled, std::memory_order_relaxed);
}

TensorPool* TensorPool::ThreadLocal() {
  if (t_pool_state == 2) return nullptr;
  return HolderPool();
}

std::vector<float> TensorPool::Acquire(size_t count) {
  if (count == 0) return {};
  const uint64_t bytes = uint64_t{count} * sizeof(float);
  auto it = buckets_.find(count);
  if (it != buckets_.end() && !it->second.empty()) {
    std::vector<float> buffer = std::move(it->second.back());
    it->second.pop_back();
    ++stats_.hits;
    stats_.bytes_retained -= bytes;
    stats_.bytes_in_use += bytes;
    if (stats_.bytes_in_use > stats_.bytes_peak) {
      stats_.bytes_peak = stats_.bytes_in_use;
      obs::RecordFlightEvent(obs::FlightEventKind::kPoolHighWater, "tensor.pool.high_water",
                             static_cast<double>(stats_.bytes_peak));
    }
    Metrics().hit->Increment();
    Metrics().bytes_in_use->Set(static_cast<double>(stats_.bytes_in_use));
    Metrics().bytes_peak->Set(static_cast<double>(stats_.bytes_peak));
    return buffer;
  }
  ++stats_.misses;
  stats_.bytes_in_use += bytes;
  if (stats_.bytes_in_use > stats_.bytes_peak) {
    stats_.bytes_peak = stats_.bytes_in_use;
    obs::RecordFlightEvent(obs::FlightEventKind::kPoolHighWater, "tensor.pool.high_water",
                           static_cast<double>(stats_.bytes_peak));
  }
  Metrics().miss->Increment();
  Metrics().bytes_in_use->Set(static_cast<double>(stats_.bytes_in_use));
  Metrics().bytes_peak->Set(static_cast<double>(stats_.bytes_peak));
  // The span marks only real allocations; steady-state epochs stay span-free.
  obs::ScopedSpan span("tensor.pool.Acquire", obs::FlightPolicy::kSkip);
  return std::vector<float>(count);
}

std::vector<float> TensorPool::AcquireZeroed(size_t count) {
  const bool recycled = [&] {
    auto it = buckets_.find(count);
    return it != buckets_.end() && !it->second.empty();
  }();
  std::vector<float> buffer = Acquire(count);
  // Fresh std::vector storage is already value-initialized; only recycled
  // buffers carry stale (or poisoned) contents.
  if (recycled) std::fill(buffer.begin(), buffer.end(), 0.0f);
  return buffer;
}

void TensorPool::Release(std::vector<float>* buffer) {
  if (buffer->empty()) return;
  const size_t count = buffer->size();
  const uint64_t bytes = uint64_t{count} * sizeof(float);
  ++stats_.releases;
  // Foreign buffers (FromData inputs) release more than was acquired; clamp.
  stats_.bytes_in_use -= std::min(stats_.bytes_in_use, bytes);
  Metrics().bytes_in_use->Set(static_cast<double>(stats_.bytes_in_use));
  const uint64_t cap = std::max(stats_.bytes_peak, kMinRetainBytes);
  if (stats_.bytes_retained + bytes > cap) {
    ++stats_.discards;
    std::vector<float>().swap(*buffer);
    return;
  }
  if (PoolPoisonEnabled()) std::fill(buffer->begin(), buffer->end(), kPoisonValue);
  stats_.bytes_retained += bytes;
  buckets_[count].push_back(std::move(*buffer));
  buffer->clear();
}

void TensorPool::Trim() {
  buckets_.clear();
  stats_.bytes_retained = 0;
}

void TensorPool::TrimToHighWater() { DiscardUntil(stats_.bytes_peak); }

void TensorPool::DiscardUntil(uint64_t target_retained_bytes) {
  if (stats_.bytes_retained <= target_retained_bytes) return;
  // Drop the largest size classes first: they pin the most memory and are
  // the least likely to recur once a big one-off explanation finished.
  std::vector<size_t> counts;
  counts.reserve(buckets_.size());
  for (const auto& [count, unused] : buckets_) counts.push_back(count);
  std::sort(counts.begin(), counts.end(), std::greater<size_t>());
  for (size_t count : counts) {
    auto it = buckets_.find(count);
    while (!it->second.empty() && stats_.bytes_retained > target_retained_bytes) {
      it->second.pop_back();
      stats_.bytes_retained -= uint64_t{count} * sizeof(float);
    }
    if (it->second.empty()) buckets_.erase(it);
    if (stats_.bytes_retained <= target_retained_bytes) break;
  }
}

void TensorPool::ResetStats() {
  const uint64_t retained = stats_.bytes_retained;
  stats_ = PoolStats{};
  stats_.bytes_retained = retained;
}

std::vector<float> AcquireBuffer(size_t count) {
  if (PoolEnabled()) {
    if (TensorPool* pool = TensorPool::ThreadLocal()) return pool->Acquire(count);
  }
  return std::vector<float>(count);
}

std::vector<float> AcquireZeroedBuffer(size_t count) {
  if (PoolEnabled()) {
    if (TensorPool* pool = TensorPool::ThreadLocal()) return pool->AcquireZeroed(count);
  }
  return std::vector<float>(count);
}

void ReleaseBuffer(std::vector<float>* buffer) {
  if (buffer->empty()) return;
  if (PoolEnabled()) {
    if (TensorPool* pool = TensorPool::ThreadLocal()) {
      pool->Release(buffer);
      return;
    }
  }
  std::vector<float>().swap(*buffer);
}

MemoryScope::MemoryScope(const char* label) : label_(label) {
  if (TensorPool* pool = TensorPool::ThreadLocal()) entry_ = pool->stats();
}

MemoryScope::~MemoryScope() {
  TensorPool* pool = TensorPool::ThreadLocal();
  if (pool == nullptr) return;
  pool->TrimToHighWater();
  Metrics().bytes_in_use->Set(static_cast<double>(pool->stats().bytes_in_use));
  Metrics().bytes_peak->Set(static_cast<double>(pool->stats().bytes_peak));
  (void)label_;
}

PoolStats MemoryScope::Delta() const {
  TensorPool* pool = TensorPool::ThreadLocal();
  if (pool == nullptr) return PoolStats{};
  const PoolStats& now = pool->stats();
  PoolStats delta;
  delta.hits = now.hits - entry_.hits;
  delta.misses = now.misses - entry_.misses;
  delta.releases = now.releases - entry_.releases;
  delta.discards = now.discards - entry_.discards;
  delta.bytes_in_use = now.bytes_in_use;
  delta.bytes_peak = now.bytes_peak;
  delta.bytes_retained = now.bytes_retained;
  return delta;
}

}  // namespace revelio::tensor
