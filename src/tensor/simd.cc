#include "tensor/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/metrics.h"

// The ONLY translation unit built with vector ISA flags (-mavx2 on x86; see
// src/tensor/CMakeLists.txt, which also defines exactly one of the
// REVELIO_SIMD_ISA_* macros below). Everything is written once against the
// width-agnostic VecF32 wrapper; the ISA blocks only define that wrapper.
//
// No FMA anywhere: mul and add are issued as separate IEEE operations so
// each lane computes bit-identical results to the scalar expression
// `acc += a * b`. This TU must never be compiled with -mfma or
// -ffp-contract=fast.

#if defined(REVELIO_SIMD_ISA_AVX2)
#include <immintrin.h>
#elif defined(REVELIO_SIMD_ISA_NEON)
#include <arm_neon.h>
#endif

namespace revelio::tensor::simd {

namespace {

#if defined(REVELIO_SIMD_ISA_AVX2)

struct VecF32 {
  static constexpr int kWidth = 8;
  __m256 v;

  static VecF32 Load(const float* p) { return {_mm256_loadu_ps(p)}; }
  void Store(float* p) const { _mm256_storeu_ps(p, v); }
  static VecF32 Broadcast(float s) { return {_mm256_set1_ps(s)}; }
  static VecF32 Zero() { return {_mm256_setzero_ps()}; }
  // Widening load of kWidth bf16 values (zero-extend into the high half of
  // each f32 lane — exact).
  static VecF32 LoadBf16(const uint16_t* p) {
    const __m128i raw = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
    const __m256i wide = _mm256_slli_epi32(_mm256_cvtepu16_epi32(raw), 16);
    return {_mm256_castsi256_ps(wide)};
  }
  friend VecF32 operator+(VecF32 a, VecF32 b) { return {_mm256_add_ps(a.v, b.v)}; }
  friend VecF32 operator-(VecF32 a, VecF32 b) { return {_mm256_sub_ps(a.v, b.v)}; }
  friend VecF32 operator*(VecF32 a, VecF32 b) { return {_mm256_mul_ps(a.v, b.v)}; }
  // All-ones lane mask where a > b (ordered: false on NaN, like the scalar
  // `>` operator).
  static VecF32 GtMask(VecF32 a, VecF32 b) { return {_mm256_cmp_ps(a.v, b.v, _CMP_GT_OQ)}; }
  // Lane-select: mask lanes take `yes`, others keep `no` bit-exactly.
  static VecF32 Blend(VecF32 no, VecF32 yes, VecF32 mask) {
    return {_mm256_blendv_ps(no.v, yes.v, mask.v)};
  }
};

#elif defined(REVELIO_SIMD_ISA_NEON)

struct VecF32 {
  static constexpr int kWidth = 4;
  float32x4_t v;

  static VecF32 Load(const float* p) { return {vld1q_f32(p)}; }
  void Store(float* p) const { vst1q_f32(p, v); }
  static VecF32 Broadcast(float s) { return {vdupq_n_f32(s)}; }
  static VecF32 Zero() { return {vdupq_n_f32(0.0f)}; }
  static VecF32 LoadBf16(const uint16_t* p) {
    const uint32x4_t wide = vshll_n_u16(vld1_u16(p), 16);
    return {vreinterpretq_f32_u32(wide)};
  }
  friend VecF32 operator+(VecF32 a, VecF32 b) { return {vaddq_f32(a.v, b.v)}; }
  friend VecF32 operator-(VecF32 a, VecF32 b) { return {vsubq_f32(a.v, b.v)}; }
  friend VecF32 operator*(VecF32 a, VecF32 b) { return {vmulq_f32(a.v, b.v)}; }
  static VecF32 GtMask(VecF32 a, VecF32 b) {
    return {vreinterpretq_f32_u32(vcgtq_f32(a.v, b.v))};
  }
  static VecF32 Blend(VecF32 no, VecF32 yes, VecF32 mask) {
    return {vbslq_f32(vreinterpretq_u32_f32(mask.v), yes.v, no.v)};
  }
};

#else  // scalar fallback build

struct VecF32 {
  static constexpr int kWidth = 1;
  float v;

  static VecF32 Load(const float* p) { return {*p}; }
  void Store(float* p) const { *p = v; }
  static VecF32 Broadcast(float s) { return {s}; }
  static VecF32 Zero() { return {0.0f}; }
  static VecF32 LoadBf16(const uint16_t* p);  // defined after Bf16Bits below
  friend VecF32 operator+(VecF32 a, VecF32 b) { return {a.v + b.v}; }
  friend VecF32 operator-(VecF32 a, VecF32 b) { return {a.v - b.v}; }
  friend VecF32 operator*(VecF32 a, VecF32 b) { return {a.v * b.v}; }
  static VecF32 GtMask(VecF32 a, VecF32 b) { return {a.v > b.v ? 1.0f : 0.0f}; }
  static VecF32 Blend(VecF32 no, VecF32 yes, VecF32 mask) {
    return {mask.v != 0.0f ? yes.v : no.v};
  }
};

#endif

constexpr int kW = VecF32::kWidth;

// Scalar bf16 -> f32: the packed value is the high half of the f32 bits.
inline float WidenOneBf16(uint16_t u) {
  const uint32_t bits = static_cast<uint32_t>(u) << 16;
  float f;
  std::memcpy(&f, &bits, sizeof(f));
  return f;
}

#if !defined(REVELIO_SIMD_ISA_AVX2) && !defined(REVELIO_SIMD_ISA_NEON)
inline VecF32 VecF32::LoadBf16(const uint16_t* p) { return {WidenOneBf16(*p)}; }
#endif

// Operand loaders for the mixed-precision matmul: one of the two pointers is
// null, and the loader widens bf16 lanes on the fly.
struct LoadF32 {
  const float* p;
  VecF32 Vec(int64_t i) const { return VecF32::Load(p + i); }
  float Scalar(int64_t i) const { return p[i]; }
};
struct LoadBf16Op {
  const uint16_t* p;
  VecF32 Vec(int64_t i) const { return VecF32::LoadBf16(p + i); }
  float Scalar(int64_t i) const { return WidenOneBf16(p[i]); }
};

bool SimdDefault() {
  if (kW == 1) return false;  // no vector tier compiled in
  const char* env = std::getenv("REVELIO_SIMD");
  if (env == nullptr) return true;
  const std::string value(env);
  return !(value == "0" || value == "false" || value == "off");
}

std::atomic<bool>& SimdFlag() {
  static std::atomic<bool> flag(SimdDefault());
  return flag;
}

}  // namespace

int Lanes() { return kW; }

const char* IsaName() {
#if defined(REVELIO_SIMD_ISA_AVX2)
  return "avx2";
#elif defined(REVELIO_SIMD_ISA_NEON)
  return "neon";
#else
  return "scalar";
#endif
}

bool CpuSupportsCompiledIsa() {
#if defined(REVELIO_SIMD_ISA_AVX2)
  return __builtin_cpu_supports("avx2") != 0;
#else
  // NEON is architecturally guaranteed on aarch64; the scalar build runs
  // anywhere.
  return true;
#endif
}

bool Enabled() { return SimdFlag().load(std::memory_order_relaxed); }

void SetEnabled(bool enabled) {
  SimdFlag().store(kW == 1 ? false : enabled, std::memory_order_relaxed);
}

void CountSweep(int64_t n) {
  static obs::Gauge* lanes = [] {
    obs::Gauge* g = obs::MetricsRegistry::Global().GetGauge("tensor.simd.lanes");
    g->Set(static_cast<double>(kW));
    return g;
  }();
  static obs::Counter* vector_ops =
      obs::MetricsRegistry::Global().GetCounter("tensor.simd.vector_ops");
  static obs::Counter* scalar_tail =
      obs::MetricsRegistry::Global().GetCounter("tensor.simd.scalar_tail");
  (void)lanes;
  vector_ops->Add(static_cast<uint64_t>(n / kW));
  scalar_tail->Add(static_cast<uint64_t>(n % kW));
}

// --- Elementwise kernels ----------------------------------------------------

void AddF32(const float* a, const float* b, float* o, int64_t n) {
  int64_t i = 0;
  for (; i + kW <= n; i += kW) (VecF32::Load(a + i) + VecF32::Load(b + i)).Store(o + i);
  for (; i < n; ++i) o[i] = a[i] + b[i];
}

void SubF32(const float* a, const float* b, float* o, int64_t n) {
  int64_t i = 0;
  for (; i + kW <= n; i += kW) (VecF32::Load(a + i) - VecF32::Load(b + i)).Store(o + i);
  for (; i < n; ++i) o[i] = a[i] - b[i];
}

void MulF32(const float* a, const float* b, float* o, int64_t n) {
  int64_t i = 0;
  for (; i + kW <= n; i += kW) (VecF32::Load(a + i) * VecF32::Load(b + i)).Store(o + i);
  for (; i < n; ++i) o[i] = a[i] * b[i];
}

void AddScalarF32(const float* a, float s, float* o, int64_t n) {
  const VecF32 sv = VecF32::Broadcast(s);
  int64_t i = 0;
  for (; i + kW <= n; i += kW) (VecF32::Load(a + i) + sv).Store(o + i);
  for (; i < n; ++i) o[i] = a[i] + s;
}

void MulScalarF32(const float* a, float s, float* o, int64_t n) {
  const VecF32 sv = VecF32::Broadcast(s);
  int64_t i = 0;
  for (; i + kW <= n; i += kW) (VecF32::Load(a + i) * sv).Store(o + i);
  for (; i < n; ++i) o[i] = a[i] * s;
}

void AddAccF32(const float* a, float* o, int64_t n) {
  int64_t i = 0;
  for (; i + kW <= n; i += kW) (VecF32::Load(o + i) + VecF32::Load(a + i)).Store(o + i);
  for (; i < n; ++i) o[i] += a[i];
}

void AddScalarAccF32(float s, float* o, int64_t n) {
  const VecF32 sv = VecF32::Broadcast(s);
  int64_t i = 0;
  for (; i + kW <= n; i += kW) (VecF32::Load(o + i) + sv).Store(o + i);
  for (; i < n; ++i) o[i] += s;
}

void MulAccF32(const float* a, float s, float* o, int64_t n) {
  const VecF32 sv = VecF32::Broadcast(s);
  int64_t i = 0;
  // Matches `o[i] += s * a[i]` (scale on the left, like AccumulateInto).
  for (; i + kW <= n; i += kW) (VecF32::Load(o + i) + sv * VecF32::Load(a + i)).Store(o + i);
  for (; i < n; ++i) o[i] += s * a[i];
}

void MulPairAccF32(const float* a, const float* b, float* o, int64_t n) {
  int64_t i = 0;
  for (; i + kW <= n; i += kW) {
    (VecF32::Load(o + i) + VecF32::Load(a + i) * VecF32::Load(b + i)).Store(o + i);
  }
  for (; i < n; ++i) o[i] += a[i] * b[i];
}

void AxpyF32(float a, const float* x, float* y, int64_t n) {
  const VecF32 av = VecF32::Broadcast(a);
  int64_t i = 0;
  for (; i + kW <= n; i += kW) (VecF32::Load(y + i) + av * VecF32::Load(x + i)).Store(y + i);
  for (; i < n; ++i) y[i] += a * x[i];
}

void ReluF32(const float* a, float* o, int64_t n) {
  const VecF32 zero = VecF32::Zero();
  int64_t i = 0;
  // Blend (not max) so NaN and -0.0 inputs produce exactly what the scalar
  // ternary `a > 0 ? a : 0` produces: +0.0.
  for (; i + kW <= n; i += kW) {
    const VecF32 av = VecF32::Load(a + i);
    VecF32::Blend(zero, av, VecF32::GtMask(av, zero)).Store(o + i);
  }
  for (; i < n; ++i) o[i] = a[i] > 0.0f ? a[i] : 0.0f;
}

void ReluGradAccF32(const float* g, const float* a, float* ga, int64_t n) {
  const VecF32 zero = VecF32::Zero();
  int64_t i = 0;
  // Lanes with a <= 0 keep their accumulator bits untouched — `+ 0.0f` would
  // break -0.0 accumulators, so the sum is blended in instead.
  for (; i + kW <= n; i += kW) {
    const VecF32 acc = VecF32::Load(ga + i);
    const VecF32 sum = acc + VecF32::Load(g + i);
    VecF32::Blend(acc, sum, VecF32::GtMask(VecF32::Load(a + i), zero)).Store(ga + i);
  }
  for (; i < n; ++i) {
    if (a[i] > 0.0f) ga[i] += g[i];
  }
}

void LeakyReluF32(const float* a, float slope, float* o, int64_t n) {
  const VecF32 zero = VecF32::Zero();
  const VecF32 sv = VecF32::Broadcast(slope);
  int64_t i = 0;
  for (; i + kW <= n; i += kW) {
    const VecF32 av = VecF32::Load(a + i);
    VecF32::Blend(sv * av, av, VecF32::GtMask(av, zero)).Store(o + i);
  }
  for (; i < n; ++i) o[i] = a[i] > 0.0f ? a[i] : slope * a[i];
}

void LeakyReluGradAccF32(const float* g, const float* a, float slope, float* ga, int64_t n) {
  const VecF32 zero = VecF32::Zero();
  const VecF32 one = VecF32::Broadcast(1.0f);
  const VecF32 sv = VecF32::Broadcast(slope);
  int64_t i = 0;
  for (; i + kW <= n; i += kW) {
    const VecF32 factor = VecF32::Blend(sv, one, VecF32::GtMask(VecF32::Load(a + i), zero));
    (VecF32::Load(ga + i) + VecF32::Load(g + i) * factor).Store(ga + i);
  }
  for (; i < n; ++i) ga[i] += g[i] * (a[i] > 0.0f ? 1.0f : slope);
}

void SigmoidGradAccF32(const float* g, const float* ov, float* ga, int64_t n) {
  const VecF32 one = VecF32::Broadcast(1.0f);
  int64_t i = 0;
  // Left-assoc (g * ov) * (1 - ov), matching the scalar expression.
  for (; i + kW <= n; i += kW) {
    const VecF32 y = VecF32::Load(ov + i);
    (VecF32::Load(ga + i) + VecF32::Load(g + i) * y * (one - y)).Store(ga + i);
  }
  for (; i < n; ++i) ga[i] += g[i] * ov[i] * (1.0f - ov[i]);
}

void TanhGradAccF32(const float* g, const float* ov, float* ga, int64_t n) {
  const VecF32 one = VecF32::Broadcast(1.0f);
  int64_t i = 0;
  for (; i + kW <= n; i += kW) {
    const VecF32 y = VecF32::Load(ov + i);
    (VecF32::Load(ga + i) + VecF32::Load(g + i) * (one - y * y)).Store(ga + i);
  }
  for (; i < n; ++i) ga[i] += g[i] * (1.0f - ov[i] * ov[i]);
}

// --- Reductions -------------------------------------------------------------

float DotF32(const float* a, const float* b, int64_t n) {
  VecF32 acc = VecF32::Zero();
  int64_t i = 0;
  for (; i + kW <= n; i += kW) acc = acc + VecF32::Load(a + i) * VecF32::Load(b + i);
  float partial[kW];
  acc.Store(partial);
  // Fixed left-to-right reduction of the lane partials, then the scalar
  // tail: deterministic for a given n, ulp-bounded against serial order.
  float r = partial[0];
  for (int l = 1; l < kW; ++l) r += partial[l];
  for (; i < n; ++i) r += a[i] * b[i];
  return r;
}

// --- Row-blocked matmul -----------------------------------------------------

namespace {

// Shared implementation: per output row, j-tiles of 4 (then 1) vectors are
// held in registers across the whole kk loop, so each output element folds
// its products in ascending-kk order — the scalar accumulation order — while
// rows of b stream through with unit stride.
template <typename ALoad, typename BLoad>
void MatMulRowsImpl(const ALoad& a, const BLoad& b, float* o, int64_t ib, int64_t ie, int k,
                    int m) {
  for (int64_t i = ib; i < ie; ++i) {
    const int64_t abase = i * k;
    float* orow = o + static_cast<size_t>(i) * m;
    int j = 0;
    for (; j + 4 * kW <= m; j += 4 * kW) {
      VecF32 acc0 = VecF32::Zero();
      VecF32 acc1 = VecF32::Zero();
      VecF32 acc2 = VecF32::Zero();
      VecF32 acc3 = VecF32::Zero();
      for (int kk = 0; kk < k; ++kk) {
        const float aik = a.Scalar(abase + kk);
        if (aik == 0.0f) continue;
        const VecF32 av = VecF32::Broadcast(aik);
        const int64_t bbase = static_cast<int64_t>(kk) * m + j;
        acc0 = acc0 + av * b.Vec(bbase);
        acc1 = acc1 + av * b.Vec(bbase + kW);
        acc2 = acc2 + av * b.Vec(bbase + 2 * kW);
        acc3 = acc3 + av * b.Vec(bbase + 3 * kW);
      }
      acc0.Store(orow + j);
      acc1.Store(orow + j + kW);
      acc2.Store(orow + j + 2 * kW);
      acc3.Store(orow + j + 3 * kW);
    }
    for (; j + kW <= m; j += kW) {
      VecF32 acc = VecF32::Zero();
      for (int kk = 0; kk < k; ++kk) {
        const float aik = a.Scalar(abase + kk);
        if (aik == 0.0f) continue;
        acc = acc + VecF32::Broadcast(aik) * b.Vec(static_cast<int64_t>(kk) * m + j);
      }
      acc.Store(orow + j);
    }
    for (; j < m; ++j) {
      float acc = 0.0f;
      for (int kk = 0; kk < k; ++kk) {
        const float aik = a.Scalar(abase + kk);
        if (aik == 0.0f) continue;
        acc += aik * b.Scalar(static_cast<int64_t>(kk) * m + j);
      }
      orow[j] = acc;
    }
  }
}

}  // namespace

void MatMulRowsF32(const float* a, const float* b, float* o, int64_t ib, int64_t ie, int k,
                   int m) {
  MatMulRowsImpl(LoadF32{a}, LoadF32{b}, o, ib, ie, k, m);
}

void MatMulGradARowsF32(const float* g, const float* b, float* ga, int64_t ib, int64_t ie, int k,
                        int m) {
  for (int64_t i = ib; i < ie; ++i) {
    const float* grow = g + static_cast<size_t>(i) * m;
    float* garow = ga + static_cast<size_t>(i) * k;
    for (int kk = 0; kk < k; ++kk) {
      garow[kk] += DotF32(grow, b + static_cast<size_t>(kk) * m, m);
    }
  }
}

void MatMulGradBRowsF32(const float* g, const float* a, float* gb, int64_t kb, int64_t ke, int n,
                        int k, int m) {
  for (int i = 0; i < n; ++i) {
    const float* grow = g + static_cast<size_t>(i) * m;
    const float* arow = a + static_cast<size_t>(i) * k;
    for (int64_t kk = kb; kk < ke; ++kk) {
      const float aik = arow[kk];
      if (aik == 0.0f) continue;
      AxpyF32(aik, grow, gb + static_cast<size_t>(kk) * m, m);
    }
  }
}

// --- bf16 kernels -----------------------------------------------------------

void AxpyBf16(float a, const uint16_t* x, float* y, int64_t n) {
  const VecF32 av = VecF32::Broadcast(a);
  int64_t i = 0;
  for (; i + kW <= n; i += kW) (VecF32::Load(y + i) + av * VecF32::LoadBf16(x + i)).Store(y + i);
  for (; i < n; ++i) y[i] += a * WidenOneBf16(x[i]);
}

void MatMulRowsMixed(const float* a32, const uint16_t* a16, const float* b32,
                     const uint16_t* b16, float* o, int64_t ib, int64_t ie, int k, int m) {
  if (a16 != nullptr && b16 != nullptr) {
    MatMulRowsImpl(LoadBf16Op{a16}, LoadBf16Op{b16}, o, ib, ie, k, m);
  } else if (a16 != nullptr) {
    MatMulRowsImpl(LoadBf16Op{a16}, LoadF32{b32}, o, ib, ie, k, m);
  } else if (b16 != nullptr) {
    MatMulRowsImpl(LoadF32{a32}, LoadBf16Op{b16}, o, ib, ie, k, m);
  } else {
    MatMulRowsImpl(LoadF32{a32}, LoadF32{b32}, o, ib, ie, k, m);
  }
}

void PackBf16(const float* src, uint16_t* dst, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    uint32_t bits;
    std::memcpy(&bits, src + i, sizeof(bits));
    if ((bits & 0x7fffffffu) > 0x7f800000u) {
      // NaN: keep sign and the high payload bits, force a quiet mantissa bit
      // so payloads that live only in the low half don't collapse to Inf.
      dst[i] = static_cast<uint16_t>((bits >> 16) | 0x0040u);
      continue;
    }
    // Round to nearest even: add 0x7fff plus the parity of the kept LSB.
    bits += 0x7fffu + ((bits >> 16) & 1u);
    dst[i] = static_cast<uint16_t>(bits >> 16);
  }
}

void WidenBf16(const uint16_t* src, float* dst, int64_t n) {
  int64_t i = 0;
  for (; i + kW <= n; i += kW) VecF32::LoadBf16(src + i).Store(dst + i);
  for (; i < n; ++i) dst[i] = WidenOneBf16(src[i]);
}

}  // namespace revelio::tensor::simd
