#include <algorithm>
#include <cmath>
#include <limits>

#include "tensor/op_helpers.h"
#include "tensor/ops.h"

namespace revelio::tensor {

using internal::TensorNode;

Tensor GatherRows(const Tensor& a, const std::vector<int>& indices) {
  const int cols = a.cols();
  auto out = NewNode(static_cast<int>(indices.size()), cols);
  const auto& av = a.values();
  for (size_t i = 0; i < indices.size(); ++i) {
    const int src = indices[i];
    DCHECK(src >= 0 && src < a.rows()) << "GatherRows index " << src << " out of range";
    std::copy(av.begin() + static_cast<size_t>(src) * cols,
              av.begin() + static_cast<size_t>(src + 1) * cols,
              out->values.begin() + i * cols);
  }
  AttachBackward(out, {a}, [indices, cols](TensorNode* o) {
    TensorNode* an = o->parents[0].get();
    if (!an->requires_grad) return;
    an->EnsureGrad();
    for (size_t i = 0; i < indices.size(); ++i) {
      const size_t dst_base = static_cast<size_t>(indices[i]) * cols;
      const size_t src_base = i * cols;
      for (int c = 0; c < cols; ++c) an->grad[dst_base + c] += o->grad[src_base + c];
    }
  });
  return Tensor::FromNode(out);
}

Tensor ScatterAddRows(const Tensor& src, const std::vector<int>& indices, int num_rows) {
  CHECK_EQ(src.rows(), static_cast<int>(indices.size()));
  const int cols = src.cols();
  auto out = NewNode(num_rows, cols);
  const auto& sv = src.values();
  for (size_t i = 0; i < indices.size(); ++i) {
    const int dst = indices[i];
    DCHECK(dst >= 0 && dst < num_rows) << "ScatterAddRows index " << dst << " out of range";
    const size_t dst_base = static_cast<size_t>(dst) * cols;
    const size_t src_base = i * cols;
    for (int c = 0; c < cols; ++c) out->values[dst_base + c] += sv[src_base + c];
  }
  AttachBackward(out, {src}, [indices, cols](TensorNode* o) {
    TensorNode* sn = o->parents[0].get();
    if (!sn->requires_grad) return;
    sn->EnsureGrad();
    for (size_t i = 0; i < indices.size(); ++i) {
      const size_t src_base = static_cast<size_t>(indices[i]) * cols;
      const size_t dst_base = i * cols;
      for (int c = 0; c < cols; ++c) sn->grad[dst_base + c] += o->grad[src_base + c];
    }
  });
  return Tensor::FromNode(out);
}

Tensor RowScale(const Tensor& a, const Tensor& scale) {
  CHECK_EQ(scale.rows(), a.rows());
  CHECK_EQ(scale.cols(), 1);
  const int cols = a.cols();
  auto out = NewNodeLike(a);
  const auto& av = a.values();
  const auto& sv = scale.values();
  for (int r = 0; r < a.rows(); ++r) {
    const size_t base = static_cast<size_t>(r) * cols;
    for (int c = 0; c < cols; ++c) out->values[base + c] = av[base + c] * sv[r];
  }
  AttachBackward(out, {a, scale}, [cols](TensorNode* o) {
    TensorNode* an = o->parents[0].get();
    TensorNode* sn = o->parents[1].get();
    if (an->requires_grad) {
      an->EnsureGrad();
      for (int r = 0; r < o->rows; ++r) {
        const size_t base = static_cast<size_t>(r) * cols;
        const float s = sn->values[r];
        for (int c = 0; c < cols; ++c) an->grad[base + c] += o->grad[base + c] * s;
      }
    }
    if (sn->requires_grad) {
      sn->EnsureGrad();
      for (int r = 0; r < o->rows; ++r) {
        const size_t base = static_cast<size_t>(r) * cols;
        float acc = 0.0f;
        for (int c = 0; c < cols; ++c) acc += o->grad[base + c] * an->values[base + c];
        sn->grad[r] += acc;
      }
    }
  });
  return Tensor::FromNode(out);
}

Tensor ConcatCols(const Tensor& a, const Tensor& b) {
  CHECK_EQ(a.rows(), b.rows());
  const int ac = a.cols();
  const int bc = b.cols();
  auto out = NewNode(a.rows(), ac + bc);
  const auto& av = a.values();
  const auto& bv = b.values();
  for (int r = 0; r < a.rows(); ++r) {
    std::copy(av.begin() + static_cast<size_t>(r) * ac,
              av.begin() + static_cast<size_t>(r + 1) * ac,
              out->values.begin() + static_cast<size_t>(r) * (ac + bc));
    std::copy(bv.begin() + static_cast<size_t>(r) * bc,
              bv.begin() + static_cast<size_t>(r + 1) * bc,
              out->values.begin() + static_cast<size_t>(r) * (ac + bc) + ac);
  }
  AttachBackward(out, {a, b}, [ac, bc](TensorNode* o) {
    TensorNode* an = o->parents[0].get();
    TensorNode* bn = o->parents[1].get();
    for (int r = 0; r < o->rows; ++r) {
      const size_t out_base = static_cast<size_t>(r) * (ac + bc);
      if (an->requires_grad) {
        an->EnsureGrad();
        for (int c = 0; c < ac; ++c) {
          an->grad[static_cast<size_t>(r) * ac + c] += o->grad[out_base + c];
        }
      }
      if (bn->requires_grad) {
        bn->EnsureGrad();
        for (int c = 0; c < bc; ++c) {
          bn->grad[static_cast<size_t>(r) * bc + c] += o->grad[out_base + ac + c];
        }
      }
    }
  });
  return Tensor::FromNode(out);
}

Tensor SegmentSoftmax(const Tensor& values, const std::vector<int>& segment_ids,
                      int num_segments) {
  CHECK_EQ(values.cols(), 1);
  CHECK_EQ(values.rows(), static_cast<int>(segment_ids.size()));
  const int n = values.rows();
  auto out = NewNode(n, 1);
  const auto& v = values.values();
  // Per-segment max for numerical stability, then normalize.
  std::vector<float> seg_max(num_segments, -std::numeric_limits<float>::infinity());
  for (int i = 0; i < n; ++i) {
    const int s = segment_ids[i];
    DCHECK(s >= 0 && s < num_segments);
    seg_max[s] = std::max(seg_max[s], v[i]);
  }
  std::vector<double> seg_sum(num_segments, 0.0);
  for (int i = 0; i < n; ++i) {
    out->values[i] = std::exp(v[i] - seg_max[segment_ids[i]]);
    seg_sum[segment_ids[i]] += out->values[i];
  }
  for (int i = 0; i < n; ++i) {
    out->values[i] /= static_cast<float>(seg_sum[segment_ids[i]]);
  }
  AttachBackward(out, {values}, [segment_ids, num_segments, n](TensorNode* o) {
    TensorNode* vn = o->parents[0].get();
    if (!vn->requires_grad) return;
    vn->EnsureGrad();
    // d v_i = y_i * (g_i - sum_{j in seg(i)} g_j y_j).
    std::vector<double> seg_dot(num_segments, 0.0);
    for (int i = 0; i < n; ++i) seg_dot[segment_ids[i]] += o->grad[i] * o->values[i];
    for (int i = 0; i < n; ++i) {
      vn->grad[i] +=
          o->values[i] * (o->grad[i] - static_cast<float>(seg_dot[segment_ids[i]]));
    }
  });
  return Tensor::FromNode(out);
}

Tensor SegmentMeanRows(const Tensor& a, const std::vector<int>& segment_ids, int num_segments) {
  CHECK_EQ(a.rows(), static_cast<int>(segment_ids.size()));
  const int cols = a.cols();
  auto out = NewNode(num_segments, cols);
  std::vector<int> counts(num_segments, 0);
  for (int s : segment_ids) {
    DCHECK(s >= 0 && s < num_segments);
    ++counts[s];
  }
  const auto& av = a.values();
  for (int r = 0; r < a.rows(); ++r) {
    const int s = segment_ids[r];
    const float inv = 1.0f / static_cast<float>(counts[s]);
    const size_t src = static_cast<size_t>(r) * cols;
    const size_t dst = static_cast<size_t>(s) * cols;
    for (int c = 0; c < cols; ++c) out->values[dst + c] += av[src + c] * inv;
  }
  AttachBackward(out, {a}, [segment_ids, counts, cols](TensorNode* o) {
    TensorNode* an = o->parents[0].get();
    if (!an->requires_grad) return;
    an->EnsureGrad();
    for (int r = 0; r < an->rows; ++r) {
      const int s = segment_ids[r];
      const float inv = 1.0f / static_cast<float>(counts[s]);
      const size_t src = static_cast<size_t>(s) * cols;
      const size_t dst = static_cast<size_t>(r) * cols;
      for (int c = 0; c < cols; ++c) an->grad[dst + c] += o->grad[src + c] * inv;
    }
  });
  return Tensor::FromNode(out);
}

Tensor SegmentMaxRows(const Tensor& a, const std::vector<int>& segment_ids, int num_segments) {
  CHECK_EQ(a.rows(), static_cast<int>(segment_ids.size()));
  const int cols = a.cols();
  auto out = NewNode(num_segments, cols);
  // argmax[(s, c)] = row index feeding the max (-1 for empty segments).
  std::vector<int> argmax(static_cast<size_t>(num_segments) * cols, -1);
  const auto& av = a.values();
  for (int r = 0; r < a.rows(); ++r) {
    const int s = segment_ids[r];
    DCHECK(s >= 0 && s < num_segments);
    for (int c = 0; c < cols; ++c) {
      const size_t flat = static_cast<size_t>(s) * cols + c;
      const float value = av[static_cast<size_t>(r) * cols + c];
      if (argmax[flat] < 0 || value > out->values[flat]) {
        out->values[flat] = value;
        argmax[flat] = r;
      }
    }
  }
  AttachBackward(out, {a}, [argmax, cols](TensorNode* o) {
    TensorNode* an = o->parents[0].get();
    if (!an->requires_grad) return;
    an->EnsureGrad();
    for (size_t flat = 0; flat < argmax.size(); ++flat) {
      if (argmax[flat] < 0) continue;
      an->grad[static_cast<size_t>(argmax[flat]) * cols + flat % cols] += o->grad[flat];
    }
  });
  return Tensor::FromNode(out);
}

Tensor Select(const Tensor& a, int row, int col) {
  CHECK(row >= 0 && row < a.rows() && col >= 0 && col < a.cols())
      << "Select(" << row << "," << col << ") out of range " << a.rows() << "x" << a.cols();
  auto out = NewNode(1, 1);
  out->values[0] = a.At(row, col);
  const size_t flat = static_cast<size_t>(row) * a.cols() + col;
  AttachBackward(out, {a}, [flat](TensorNode* o) {
    TensorNode* an = o->parents[0].get();
    if (!an->requires_grad) return;
    an->EnsureGrad();
    an->grad[flat] += o->grad[0];
  });
  return Tensor::FromNode(out);
}

Tensor NllLoss(const Tensor& log_probs, const std::vector<int>& targets) {
  CHECK_EQ(log_probs.rows(), static_cast<int>(targets.size()));
  CHECK_GT(targets.size(), 0u);
  const int cols = log_probs.cols();
  auto out = NewNode(1, 1);
  const auto& lp = log_probs.values();
  double acc = 0.0;
  for (size_t i = 0; i < targets.size(); ++i) {
    DCHECK(targets[i] >= 0 && targets[i] < cols);
    acc -= lp[i * cols + targets[i]];
  }
  out->values[0] = static_cast<float>(acc / static_cast<double>(targets.size()));
  AttachBackward(out, {log_probs}, [targets, cols](TensorNode* o) {
    TensorNode* ln = o->parents[0].get();
    if (!ln->requires_grad) return;
    ln->EnsureGrad();
    const float g = -o->grad[0] / static_cast<float>(targets.size());
    for (size_t i = 0; i < targets.size(); ++i) {
      ln->grad[i * cols + targets[i]] += g;
    }
  });
  return Tensor::FromNode(out);
}

}  // namespace revelio::tensor
