#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/op_helpers.h"
#include "tensor/ops.h"
#include "tensor/record.h"
#include "tensor/simd.h"
#include "util/parallel.h"

// Irregular (index-driven) kernels. Parallel variants partition the OUTPUT
// rows: chunks that scatter scan the whole index list and keep only the
// entries landing in their row range, so every output row has exactly one
// writer and accumulates in the serial scan order (bitwise-identical results
// for any thread count). The scan is redundant across chunks, which is the
// standard trade for deterministic lock-free scatter on CPUs; the grain
// thresholds keep small tensors on the single-scan serial path.

namespace revelio::tensor {

using internal::TensorNode;

namespace {

// Rows per chunk for a scatter partitioned over `num_rows` output rows when
// the full index scan costs `indices` lookups and the useful work per
// landing row is `cols` floats. Forces the serial path when the total work
// is too small to amortize a per-chunk scan.
int64_t ScatterGrain(int64_t num_rows, int64_t indices, int64_t cols) {
  constexpr int64_t kMinScatterWork = int64_t{1} << 14;
  if (indices * cols < kMinScatterWork) return std::max<int64_t>(1, num_rows);
  return 1;  // ParallelFor caps the chunk count at the thread count
}

}  // namespace

Tensor GatherRows(const Tensor& a, const std::vector<int>& indices) {
  const int cols = a.cols();
  obs::ScopedSpan span("tensor.GatherRows", obs::FlightPolicy::kSkip);
  static obs::Counter* calls = obs::MetricsRegistry::Global().GetCounter("tensor.gather.calls");
  static obs::Counter* bytes = obs::MetricsRegistry::Global().GetCounter("tensor.gather.bytes");
  calls->Increment();
  bytes->Add(uint64_t{2} * sizeof(float) * indices.size() * cols);
  auto out = NewNodeUninit(static_cast<int>(indices.size()), cols);
  const float* av = a.values().data();
  float* ov = out->values.data();
  const int num_src_rows = a.rows();
  const int64_t n = static_cast<int64_t>(indices.size());
  // The index list is caller-owned, so the kernel takes it as a parameter:
  // the eager call borrows it, the recorded closure owns a copy.
  auto kernel = [av, ov, cols, num_src_rows, n](const int* idx) {
    // Output rows are independent -> partition over i.
    util::ParallelFor(0, n, RowGrain(cols),
                      [av, ov, idx, cols, num_src_rows](int64_t ib, int64_t ie) {
                        (void)num_src_rows;
                        for (int64_t i = ib; i < ie; ++i) {
                          const int src = idx[i];
                          DCHECK(src >= 0 && src < num_src_rows)
                              << "GatherRows index " << src << " out of range";
                          std::copy(av + static_cast<size_t>(src) * cols,
                                    av + static_cast<size_t>(src + 1) * cols,
                                    ov + static_cast<size_t>(i) * cols);
                        }
                      });
  };
  kernel(indices.data());
  if (rec::Recording()) {
    rec::Record("GatherRows", out, {a.node()},
                [kernel, indices]() { kernel(indices.data()); });
  }
  AttachBackward(out, {a}, [indices, cols](TensorNode* o) {
    TensorNode* an = o->parents[0].get();
    if (!an->requires_grad) return;
    an->EnsureGrad();
    const float* g = o->grad.data();
    float* ga = an->grad.data();
    const int* idx = indices.data();
    const int64_t n = static_cast<int64_t>(indices.size());
    // Scatter into the source grad: partition over destination rows.
    util::ParallelFor(0, an->rows, ScatterGrain(an->rows, n, cols),
                      [g, ga, idx, cols, n](int64_t rb, int64_t re) {
                        const bool use_simd = simd::Enabled();
                        for (int64_t i = 0; i < n; ++i) {
                          const int dst = idx[i];
                          if (dst < rb || dst >= re) continue;
                          const size_t dst_base = static_cast<size_t>(dst) * cols;
                          const size_t src_base = static_cast<size_t>(i) * cols;
                          if (use_simd) {
                            simd::AddAccF32(g + src_base, ga + dst_base, cols);
                            continue;
                          }
                          for (int c = 0; c < cols; ++c) ga[dst_base + c] += g[src_base + c];
                        }
                      });
  });
  return Tensor::FromNode(out);
}

Tensor ScatterAddRows(const Tensor& src, const std::vector<int>& indices, int num_rows) {
  CHECK_EQ(src.rows(), static_cast<int>(indices.size()));
  const int cols = src.cols();
  obs::ScopedSpan span("tensor.ScatterAdd", obs::FlightPolicy::kSkip);
  static obs::Counter* calls =
      obs::MetricsRegistry::Global().GetCounter("tensor.scatter_add.calls");
  static obs::Counter* bytes =
      obs::MetricsRegistry::Global().GetCounter("tensor.scatter_add.bytes");
  calls->Increment();
  bytes->Add(uint64_t{2} * sizeof(float) * indices.size() * cols);
  auto out = NewNodeUninit(num_rows, cols);
  const float* sv = src.values().data();
  float* ov = out->values.data();
  const int64_t n = static_cast<int64_t>(indices.size());
  // Partition over destination rows; each chunk zeroes its own row range
  // (the pooled buffer arrives dirty), then scans all indices and adds the
  // rows landing in its range, in the serial scan order.
  auto kernel = [sv, ov, cols, n, num_rows](const int* idx) {
    util::ParallelFor(0, num_rows, ScatterGrain(num_rows, n, cols),
                      [sv, ov, idx, cols, n, num_rows](int64_t rb, int64_t re) {
                        (void)num_rows;
                        std::fill(ov + rb * cols, ov + re * cols, 0.0f);
                        const bool use_simd = simd::Enabled();
                        for (int64_t i = 0; i < n; ++i) {
                          const int dst = idx[i];
                          DCHECK(dst >= 0 && dst < num_rows)
                              << "ScatterAddRows index " << dst << " out of range";
                          if (dst < rb || dst >= re) continue;
                          const size_t dst_base = static_cast<size_t>(dst) * cols;
                          const size_t src_base = static_cast<size_t>(i) * cols;
                          if (use_simd) {
                            simd::AddAccF32(sv + src_base, ov + dst_base, cols);
                            continue;
                          }
                          for (int c = 0; c < cols; ++c) ov[dst_base + c] += sv[src_base + c];
                        }
                      });
  };
  kernel(indices.data());
  if (rec::Recording()) {
    rec::Record("ScatterAddRows", out, {src.node()},
                [kernel, indices]() { kernel(indices.data()); });
  }
  AttachBackward(out, {src}, [indices, cols](TensorNode* o) {
    TensorNode* sn = o->parents[0].get();
    if (!sn->requires_grad) return;
    sn->EnsureGrad();
    const float* g = o->grad.data();
    float* gs = sn->grad.data();
    const int* idx = indices.data();
    // The backward of a scatter is a gather: row i reads exactly one source
    // row, so the i loop partitions directly.
    util::ParallelFor(0, static_cast<int64_t>(indices.size()), RowGrain(cols),
                      [g, gs, idx, cols](int64_t ib, int64_t ie) {
                        const bool use_simd = simd::Enabled();
                        for (int64_t i = ib; i < ie; ++i) {
                          const size_t src_base = static_cast<size_t>(idx[i]) * cols;
                          const size_t dst_base = static_cast<size_t>(i) * cols;
                          if (use_simd) {
                            simd::AddAccF32(g + src_base, gs + dst_base, cols);
                            continue;
                          }
                          for (int c = 0; c < cols; ++c) gs[dst_base + c] += g[src_base + c];
                        }
                      });
  });
  return Tensor::FromNode(out);
}

Tensor RowScale(const Tensor& a, const Tensor& scale) {
  CHECK_EQ(scale.rows(), a.rows());
  CHECK_EQ(scale.cols(), 1);
  const int cols = a.cols();
  // Every entry is assigned in the scaling pass below.
  auto out = NewNodeLikeUninit(a);
  const float* av = a.values().data();
  const float* sv = scale.values().data();
  float* ov = out->values.data();
  const int rows = a.rows();
  auto run = [av, sv, ov, cols, rows]() {
    util::ParallelFor(0, rows, RowGrain(cols), [av, sv, ov, cols](int64_t rb, int64_t re) {
      const bool use_simd = simd::Enabled();
      for (int64_t r = rb; r < re; ++r) {
        const size_t base = static_cast<size_t>(r) * cols;
        if (use_simd) {
          simd::MulScalarF32(av + base, sv[r], ov + base, cols);
          continue;
        }
        for (int c = 0; c < cols; ++c) ov[base + c] = av[base + c] * sv[r];
      }
    });
  };
  run();
  if (rec::Recording()) {
    rec::Record("RowScale", out, {a.node(), scale.node()}, run);
  }
  AttachBackward(out, {a, scale}, [cols](TensorNode* o) {
    TensorNode* an = o->parents[0].get();
    TensorNode* sn = o->parents[1].get();
    const float* g = o->grad.data();
    if (an->requires_grad) {
      an->EnsureGrad();
      float* ga = an->grad.data();
      const float* sv = sn->values.data();
      util::ParallelFor(0, o->rows, RowGrain(cols), [g, ga, sv, cols](int64_t rb, int64_t re) {
        const bool use_simd = simd::Enabled();
        for (int64_t r = rb; r < re; ++r) {
          const size_t base = static_cast<size_t>(r) * cols;
          const float s = sv[r];
          if (use_simd) {
            simd::MulAccF32(g + base, s, ga + base, cols);
            continue;
          }
          for (int c = 0; c < cols; ++c) ga[base + c] += g[base + c] * s;
        }
      });
    }
    if (sn->requires_grad) {
      sn->EnsureGrad();
      float* gs = sn->grad.data();
      const float* av = an->values.data();
      // The SIMD path uses the shared DotF32 reduction — the same kernel
      // SpmmBackwardW uses, keeping the fused-vs-chain backward identity
      // bitwise between the two aggregation paths (ulp-bounded vs serial).
      util::ParallelFor(0, o->rows, RowGrain(cols), [g, gs, av, cols](int64_t rb, int64_t re) {
        const bool use_simd = simd::Enabled();
        for (int64_t r = rb; r < re; ++r) {
          const size_t base = static_cast<size_t>(r) * cols;
          if (use_simd) {
            gs[r] += simd::DotF32(g + base, av + base, cols);
            continue;
          }
          float acc = 0.0f;
          for (int c = 0; c < cols; ++c) acc += g[base + c] * av[base + c];
          gs[r] += acc;
        }
      });
    }
  });
  return Tensor::FromNode(out);
}

Tensor ConcatCols(const Tensor& a, const Tensor& b) {
  CHECK_EQ(a.rows(), b.rows());
  const int ac = a.cols();
  const int bc = b.cols();
  auto out = NewNodeUninit(a.rows(), ac + bc);
  const float* av = a.values().data();
  const float* bv = b.values().data();
  float* ov = out->values.data();
  const int rows = a.rows();
  auto run = [av, bv, ov, ac, bc, rows]() {
    util::ParallelFor(0, rows, RowGrain(ac + bc), [av, bv, ov, ac, bc](int64_t rb, int64_t re) {
      for (int64_t r = rb; r < re; ++r) {
        std::copy(av + static_cast<size_t>(r) * ac, av + static_cast<size_t>(r + 1) * ac,
                  ov + static_cast<size_t>(r) * (ac + bc));
        std::copy(bv + static_cast<size_t>(r) * bc, bv + static_cast<size_t>(r + 1) * bc,
                  ov + static_cast<size_t>(r) * (ac + bc) + ac);
      }
    });
  };
  run();
  if (rec::Recording()) {
    rec::Record("ConcatCols", out, {a.node(), b.node()}, run);
  }
  AttachBackward(out, {a, b}, [ac, bc](TensorNode* o) {
    TensorNode* an = o->parents[0].get();
    TensorNode* bn = o->parents[1].get();
    const float* g = o->grad.data();
    if (an->requires_grad) {
      an->EnsureGrad();
      float* ga = an->grad.data();
      util::ParallelFor(0, o->rows, RowGrain(ac), [g, ga, ac, bc](int64_t rb, int64_t re) {
        for (int64_t r = rb; r < re; ++r) {
          const size_t out_base = static_cast<size_t>(r) * (ac + bc);
          for (int c = 0; c < ac; ++c) {
            ga[static_cast<size_t>(r) * ac + c] += g[out_base + c];
          }
        }
      });
    }
    if (bn->requires_grad) {
      bn->EnsureGrad();
      float* gb = bn->grad.data();
      util::ParallelFor(0, o->rows, RowGrain(bc), [g, gb, ac, bc](int64_t rb, int64_t re) {
        for (int64_t r = rb; r < re; ++r) {
          const size_t out_base = static_cast<size_t>(r) * (ac + bc);
          for (int c = 0; c < bc; ++c) {
            gb[static_cast<size_t>(r) * bc + c] += g[out_base + ac + c];
          }
        }
      });
    }
  });
  return Tensor::FromNode(out);
}

Tensor SegmentSoftmax(const Tensor& values, const std::vector<int>& segment_ids,
                      int num_segments) {
  CHECK_EQ(values.cols(), 1);
  CHECK_EQ(values.rows(), static_cast<int>(segment_ids.size()));
  const int n = values.rows();
  // Every entry is written in the normalization pass (each belongs to
  // exactly one segment chunk), so the output can start dirty.
  auto out = NewNodeUninit(n, 1);
  const float* v = values.values().data();
  float* ov = out->values.data();
  // Per-segment max for numerical stability, then normalize. Partitioned
  // over segments (each chunk owns a segment range and scans all entries),
  // so both the reductions and the normalized outputs have one writer each.
  // The reduction scratch lives inside the kernel: every invocation
  // (eager or replayed) starts from fresh accumulators.
  auto kernel = [v, ov, n, num_segments](const int* seg) {
    std::vector<float> seg_max(num_segments, -std::numeric_limits<float>::infinity());
    std::vector<double> seg_sum(num_segments, 0.0);
    float* max_data = seg_max.data();
    double* sum_data = seg_sum.data();
    const int64_t seg_grain = ScatterGrain(num_segments, n, 2);
    util::ParallelFor(0, num_segments, seg_grain,
                      [v, ov, seg, max_data, sum_data, n, num_segments](int64_t sb, int64_t se) {
                        (void)num_segments;
                        for (int64_t i = 0; i < n; ++i) {
                          const int s = seg[i];
                          DCHECK(s >= 0 && s < num_segments);
                          if (s < sb || s >= se) continue;
                          max_data[s] = std::max(max_data[s], v[i]);
                        }
                        for (int64_t i = 0; i < n; ++i) {
                          const int s = seg[i];
                          if (s < sb || s >= se) continue;
                          ov[i] = std::exp(v[i] - max_data[s]);
                          sum_data[s] += ov[i];
                        }
                        for (int64_t i = 0; i < n; ++i) {
                          const int s = seg[i];
                          if (s < sb || s >= se) continue;
                          ov[i] /= static_cast<float>(sum_data[s]);
                        }
                      });
  };
  kernel(segment_ids.data());
  if (rec::Recording()) {
    rec::Record("SegmentSoftmax", out, {values.node()},
                [kernel, segment_ids]() { kernel(segment_ids.data()); });
  }
  AttachBackward(out, {values}, [segment_ids, num_segments, n](TensorNode* o) {
    TensorNode* vn = o->parents[0].get();
    if (!vn->requires_grad) return;
    vn->EnsureGrad();
    const float* g = o->grad.data();
    const float* ov = o->values.data();
    float* gv = vn->grad.data();
    const int* seg = segment_ids.data();
    // d v_i = y_i * (g_i - sum_{j in seg(i)} g_j y_j).
    std::vector<double> seg_dot(num_segments, 0.0);
    double* dot_data = seg_dot.data();
    util::ParallelFor(0, num_segments, ScatterGrain(num_segments, n, 2),
                      [g, ov, gv, seg, dot_data, n](int64_t sb, int64_t se) {
                        for (int64_t i = 0; i < n; ++i) {
                          const int s = seg[i];
                          if (s < sb || s >= se) continue;
                          dot_data[s] += g[i] * ov[i];
                        }
                        for (int64_t i = 0; i < n; ++i) {
                          const int s = seg[i];
                          if (s < sb || s >= se) continue;
                          gv[i] += ov[i] * (g[i] - static_cast<float>(dot_data[s]));
                        }
                      });
  });
  return Tensor::FromNode(out);
}

Tensor SegmentMeanRows(const Tensor& a, const std::vector<int>& segment_ids, int num_segments) {
  CHECK_EQ(a.rows(), static_cast<int>(segment_ids.size()));
  const int cols = a.cols();
  auto out = NewNodeUninit(num_segments, cols);
  std::vector<int> counts(num_segments, 0);
  for (int s : segment_ids) {
    DCHECK(s >= 0 && s < num_segments);
    ++counts[s];
  }
  const float* av = a.values().data();
  float* ov = out->values.data();
  const int64_t rows = a.rows();
  // Partition over destination segments (owner computes); each chunk zeroes
  // its own segment range before accumulating, so re-running the kernel on
  // a retained output buffer starts clean.
  auto kernel = [av, ov, cols, rows, num_segments](const int* seg, const int* cnt) {
    util::ParallelFor(0, num_segments, ScatterGrain(num_segments, rows, cols),
                      [av, ov, seg, cnt, cols, rows](int64_t sb, int64_t se) {
                        std::fill(ov + sb * cols, ov + se * cols, 0.0f);
                        for (int64_t r = 0; r < rows; ++r) {
                          const int s = seg[r];
                          if (s < sb || s >= se) continue;
                          const float inv = 1.0f / static_cast<float>(cnt[s]);
                          const size_t src = static_cast<size_t>(r) * cols;
                          const size_t dst = static_cast<size_t>(s) * cols;
                          for (int c = 0; c < cols; ++c) ov[dst + c] += av[src + c] * inv;
                        }
                      });
  };
  kernel(segment_ids.data(), counts.data());
  if (rec::Recording()) {
    rec::Record("SegmentMeanRows", out, {a.node()},
                [kernel, segment_ids, counts]() { kernel(segment_ids.data(), counts.data()); });
  }
  AttachBackward(out, {a}, [segment_ids, counts, cols](TensorNode* o) {
    TensorNode* an = o->parents[0].get();
    if (!an->requires_grad) return;
    an->EnsureGrad();
    const float* g = o->grad.data();
    float* ga = an->grad.data();
    const int* seg = segment_ids.data();
    const int* cnt = counts.data();
    // Gather shape: each source row reads one segment row -> partition over r.
    util::ParallelFor(0, an->rows, RowGrain(cols), [g, ga, seg, cnt, cols](int64_t rb, int64_t re) {
      for (int64_t r = rb; r < re; ++r) {
        const int s = seg[r];
        const float inv = 1.0f / static_cast<float>(cnt[s]);
        const size_t src = static_cast<size_t>(s) * cols;
        const size_t dst = static_cast<size_t>(r) * cols;
        for (int c = 0; c < cols; ++c) ga[dst + c] += g[src + c] * inv;
      }
    });
  });
  return Tensor::FromNode(out);
}

Tensor SegmentSumRows(const Tensor& a, const std::vector<int>& segment_ids, int num_segments) {
  CHECK_EQ(a.rows(), static_cast<int>(segment_ids.size()));
  const int cols = a.cols();
  // Every (segment, column) slot is overwritten by its owning chunk below.
  auto out = NewNodeUninit(num_segments, cols);
  const float* av = a.values().data();
  float* ov = out->values.data();
  const int64_t rows = a.rows();
  // Partition over destination segments (owner computes). Each (segment,
  // column) sums through a double accumulator in row-scan order so the result
  // matches a serial Sum over the segment's rows bitwise, at any thread count.
  auto kernel = [av, ov, cols, rows, num_segments](const int* seg) {
    util::ParallelFor(0, num_segments, ScatterGrain(num_segments, rows, cols),
                      [av, ov, seg, cols, rows](int64_t sb, int64_t se) {
                        std::vector<double> acc(static_cast<size_t>(se - sb) * cols, 0.0);
                        for (int64_t r = 0; r < rows; ++r) {
                          const int s = seg[r];
                          DCHECK(s >= 0);
                          if (s < sb || s >= se) continue;
                          const size_t src = static_cast<size_t>(r) * cols;
                          const size_t dst = static_cast<size_t>(s - sb) * cols;
                          for (int c = 0; c < cols; ++c) acc[dst + c] += av[src + c];
                        }
                        for (int64_t s = sb; s < se; ++s) {
                          const size_t dst = static_cast<size_t>(s) * cols;
                          const size_t local = static_cast<size_t>(s - sb) * cols;
                          for (int c = 0; c < cols; ++c) {
                            ov[dst + c] = static_cast<float>(acc[local + c]);
                          }
                        }
                      });
  };
  kernel(segment_ids.data());
  if (rec::Recording()) {
    rec::Record("SegmentSumRows", out, {a.node()},
                [kernel, segment_ids]() { kernel(segment_ids.data()); });
  }
  AttachBackward(out, {a}, [segment_ids, cols](TensorNode* o) {
    TensorNode* an = o->parents[0].get();
    if (!an->requires_grad) return;
    an->EnsureGrad();
    const float* g = o->grad.data();
    float* ga = an->grad.data();
    const int* seg = segment_ids.data();
    // Gather shape: each source row reads one segment row -> partition over r.
    util::ParallelFor(0, an->rows, RowGrain(cols), [g, ga, seg, cols](int64_t rb, int64_t re) {
      for (int64_t r = rb; r < re; ++r) {
        const int s = seg[r];
        const size_t src = static_cast<size_t>(s) * cols;
        const size_t dst = static_cast<size_t>(r) * cols;
        for (int c = 0; c < cols; ++c) ga[dst + c] += g[src + c];
      }
    });
  });
  return Tensor::FromNode(out);
}

Tensor SegmentMaxRows(const Tensor& a, const std::vector<int>& segment_ids, int num_segments) {
  CHECK_EQ(a.rows(), static_cast<int>(segment_ids.size()));
  const int cols = a.cols();
  auto out = NewNode(num_segments, cols);
  // argmax[(s, c)] = row index feeding the max (-1 for empty segments).
  // Shared between the forward kernel and the backward closure so a replayed
  // forward refreshes the routing the backward reads; the kernel re-arms it
  // to -1 on every invocation. Empty segments keep the zero-initialized
  // output value (the buffer is never recycled while the tape is alive).
  auto argmax = std::make_shared<std::vector<int>>(static_cast<size_t>(num_segments) * cols, -1);
  const float* av = a.values().data();
  float* ov = out->values.data();
  int* arg = argmax->data();
  const int64_t rows = a.rows();
  const int64_t flats = static_cast<int64_t>(argmax->size());
  // Partition over destination segments (owner computes).
  auto kernel = [av, ov, arg, cols, rows, num_segments, flats](const int* seg) {
    std::fill(arg, arg + flats, -1);
    util::ParallelFor(0, num_segments, ScatterGrain(num_segments, rows, cols),
                      [av, ov, seg, arg, cols, rows, num_segments](int64_t sb, int64_t se) {
                        (void)num_segments;
                        for (int64_t r = 0; r < rows; ++r) {
                          const int s = seg[r];
                          DCHECK(s >= 0 && s < num_segments);
                          if (s < sb || s >= se) continue;
                          for (int c = 0; c < cols; ++c) {
                            const size_t flat = static_cast<size_t>(s) * cols + c;
                            const float value = av[static_cast<size_t>(r) * cols + c];
                            if (arg[flat] < 0 || value > ov[flat]) {
                              ov[flat] = value;
                              arg[flat] = static_cast<int>(r);
                            }
                          }
                        }
                      });
  };
  kernel(segment_ids.data());
  if (rec::Recording()) {
    rec::Record("SegmentMaxRows", out, {a.node()},
                [kernel, segment_ids]() { kernel(segment_ids.data()); });
  }
  AttachBackward(out, {a}, [argmax, cols](TensorNode* o) {
    TensorNode* an = o->parents[0].get();
    if (!an->requires_grad) return;
    an->EnsureGrad();
    const float* g = o->grad.data();
    float* ga = an->grad.data();
    const int* arg = argmax->data();
    const int64_t flats = static_cast<int64_t>(argmax->size());
    // Two (segment, c) slots can share an argmax row but never a column, so
    // partitioning over columns gives every grad element a single writer.
    util::ParallelFor(0, cols, ScatterGrain(cols, flats, 1),
                      [g, ga, arg, cols, flats](int64_t cb, int64_t ce) {
                        for (int64_t flat = 0; flat < flats; ++flat) {
                          const int64_t c = flat % cols;
                          if (c < cb || c >= ce) continue;
                          if (arg[flat] < 0) continue;
                          ga[static_cast<size_t>(arg[flat]) * cols + c] += g[flat];
                        }
                      });
  });
  return Tensor::FromNode(out);
}

Tensor Select(const Tensor& a, int row, int col) {
  CHECK(row >= 0 && row < a.rows() && col >= 0 && col < a.cols())
      << "Select(" << row << "," << col << ") out of range " << a.rows() << "x" << a.cols();
  auto out = NewNode(1, 1);
  const size_t flat = static_cast<size_t>(row) * a.cols() + col;
  const float* av = a.values().data();
  float* ov = out->values.data();
  auto run = [av, ov, flat]() { ov[0] = av[flat]; };
  run();
  if (rec::Recording()) {
    rec::Record("Select", out, {a.node()}, run);
  }
  AttachBackward(out, {a}, [flat](TensorNode* o) {
    TensorNode* an = o->parents[0].get();
    if (!an->requires_grad) return;
    an->EnsureGrad();
    an->grad[flat] += o->grad[0];
  });
  return Tensor::FromNode(out);
}

Tensor SelectMany(const Tensor& a, const std::vector<int>& rows, const std::vector<int>& cols) {
  CHECK_EQ(rows.size(), cols.size());
  const int a_rows = a.rows();
  const int a_cols = a.cols();
  const int64_t n = static_cast<int64_t>(rows.size());
  for (int64_t k = 0; k < n; ++k) {
    CHECK(rows[k] >= 0 && rows[k] < a_rows && cols[k] >= 0 && cols[k] < a_cols)
        << "SelectMany(" << rows[k] << "," << cols[k] << ") out of range " << a_rows << "x"
        << a_cols;
  }
  auto out = NewNodeUninit(static_cast<int>(n), 1);
  const float* av = a.values().data();
  float* ov = out->values.data();
  auto kernel = [av, ov, a_cols, n](const int* rp, const int* cp) {
    util::ParallelFor(0, n, RowGrain(1), [av, ov, rp, cp, a_cols](int64_t kb, int64_t ke) {
      for (int64_t k = kb; k < ke; ++k) {
        ov[k] = av[static_cast<size_t>(rp[k]) * a_cols + cp[k]];
      }
    });
  };
  kernel(rows.data(), cols.data());
  if (rec::Recording()) {
    rec::Record("SelectMany", out, {a.node()},
                [kernel, rows, cols]() { kernel(rows.data(), cols.data()); });
  }
  AttachBackward(out, {a}, [rows, cols, a_rows, a_cols](TensorNode* o) {
    TensorNode* an = o->parents[0].get();
    if (!an->requires_grad) return;
    an->EnsureGrad();
    const float* g = o->grad.data();
    float* ga = an->grad.data();
    const int* rp = rows.data();
    const int* cp = cols.data();
    const int64_t n = static_cast<int64_t>(rows.size());
    // Partition over the input's rows; each chunk scans all picks and
    // applies the ones landing in its range, so duplicate (row, col)
    // sources accumulate in index order for any thread count.
    util::ParallelFor(0, a_rows, ScatterGrain(a_rows, n, 1),
                      [g, ga, rp, cp, a_cols, n](int64_t rb, int64_t re) {
                        for (int64_t k = 0; k < n; ++k) {
                          const int r = rp[k];
                          if (r < rb || r >= re) continue;
                          ga[static_cast<size_t>(r) * a_cols + cp[k]] += g[k];
                        }
                      });
  });
  return Tensor::FromNode(out);
}

Tensor NllLoss(const Tensor& log_probs, const std::vector<int>& targets) {
  CHECK_EQ(log_probs.rows(), static_cast<int>(targets.size()));
  CHECK_GT(targets.size(), 0u);
  const int cols = log_probs.cols();
  auto out = NewNode(1, 1);
  const float* lp = log_probs.values().data();
  float* ov = out->values.data();
  const int64_t n = static_cast<int64_t>(targets.size());
  auto kernel = [lp, ov, cols, n](const int* tgt) {
    double acc = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      DCHECK(tgt[i] >= 0 && tgt[i] < cols);
      acc -= lp[static_cast<size_t>(i) * cols + tgt[i]];
    }
    ov[0] = static_cast<float>(acc / static_cast<double>(n));
  };
  kernel(targets.data());
  if (rec::Recording()) {
    rec::Record("NllLoss", out, {log_probs.node()},
                [kernel, targets]() { kernel(targets.data()); });
  }
  AttachBackward(out, {log_probs}, [targets, cols](TensorNode* o) {
    TensorNode* ln = o->parents[0].get();
    if (!ln->requires_grad) return;
    ln->EnsureGrad();
    const float g = -o->grad[0] / static_cast<float>(targets.size());
    for (size_t i = 0; i < targets.size(); ++i) {
      ln->grad[i * cols + targets[i]] += g;
    }
  });
  return Tensor::FromNode(out);
}

}  // namespace revelio::tensor
