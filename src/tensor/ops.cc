#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "tensor/op_helpers.h"

namespace revelio::tensor {

using internal::TensorNode;

Tensor Add(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Add");
  auto out = NewNodeLike(a);
  const auto& av = a.values();
  const auto& bv = b.values();
  for (size_t i = 0; i < av.size(); ++i) out->values[i] = av[i] + bv[i];
  AttachBackward(out, {a, b}, [](TensorNode* o) {
    AccumulateInto(o->parents[0].get(), o->grad, 1.0f);
    AccumulateInto(o->parents[1].get(), o->grad, 1.0f);
  });
  return Tensor::FromNode(out);
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Sub");
  auto out = NewNodeLike(a);
  const auto& av = a.values();
  const auto& bv = b.values();
  for (size_t i = 0; i < av.size(); ++i) out->values[i] = av[i] - bv[i];
  AttachBackward(out, {a, b}, [](TensorNode* o) {
    AccumulateInto(o->parents[0].get(), o->grad, 1.0f);
    AccumulateInto(o->parents[1].get(), o->grad, -1.0f);
  });
  return Tensor::FromNode(out);
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Mul");
  auto out = NewNodeLike(a);
  const auto& av = a.values();
  const auto& bv = b.values();
  for (size_t i = 0; i < av.size(); ++i) out->values[i] = av[i] * bv[i];
  AttachBackward(out, {a, b}, [](TensorNode* o) {
    TensorNode* an = o->parents[0].get();
    TensorNode* bn = o->parents[1].get();
    if (an->requires_grad) {
      an->EnsureGrad();
      for (size_t i = 0; i < o->grad.size(); ++i) an->grad[i] += o->grad[i] * bn->values[i];
    }
    if (bn->requires_grad) {
      bn->EnsureGrad();
      for (size_t i = 0; i < o->grad.size(); ++i) bn->grad[i] += o->grad[i] * an->values[i];
    }
  });
  return Tensor::FromNode(out);
}

Tensor AddRowBroadcast(const Tensor& matrix, const Tensor& row) {
  CHECK_EQ(row.rows(), 1);
  CHECK_EQ(row.cols(), matrix.cols());
  auto out = NewNodeLike(matrix);
  const auto& mv = matrix.values();
  const auto& rv = row.values();
  const int cols = matrix.cols();
  for (int r = 0; r < matrix.rows(); ++r) {
    for (int c = 0; c < cols; ++c) {
      out->values[static_cast<size_t>(r) * cols + c] = mv[static_cast<size_t>(r) * cols + c] + rv[c];
    }
  }
  AttachBackward(out, {matrix, row}, [](TensorNode* o) {
    TensorNode* mn = o->parents[0].get();
    TensorNode* rn = o->parents[1].get();
    AccumulateInto(mn, o->grad, 1.0f);
    if (rn->requires_grad) {
      rn->EnsureGrad();
      const int cols = o->cols;
      for (int r = 0; r < o->rows; ++r) {
        for (int c = 0; c < cols; ++c) {
          rn->grad[c] += o->grad[static_cast<size_t>(r) * cols + c];
        }
      }
    }
  });
  return Tensor::FromNode(out);
}

Tensor AddScalar(const Tensor& a, float s) {
  auto out = NewNodeLike(a);
  const auto& av = a.values();
  for (size_t i = 0; i < av.size(); ++i) out->values[i] = av[i] + s;
  AttachBackward(out, {a},
                 [](TensorNode* o) { AccumulateInto(o->parents[0].get(), o->grad, 1.0f); });
  return Tensor::FromNode(out);
}

Tensor MulScalar(const Tensor& a, float s) {
  auto out = NewNodeLike(a);
  const auto& av = a.values();
  for (size_t i = 0; i < av.size(); ++i) out->values[i] = av[i] * s;
  AttachBackward(out, {a},
                 [s](TensorNode* o) { AccumulateInto(o->parents[0].get(), o->grad, s); });
  return Tensor::FromNode(out);
}

Tensor Neg(const Tensor& a) { return MulScalar(a, -1.0f); }

Tensor ScaleByScalarTensor(const Tensor& a, const Tensor& scalar) {
  CHECK(scalar.is_scalar());
  auto out = NewNodeLike(a);
  const auto& av = a.values();
  const float s = scalar.Value();
  for (size_t i = 0; i < av.size(); ++i) out->values[i] = av[i] * s;
  AttachBackward(out, {a, scalar}, [](TensorNode* o) {
    TensorNode* an = o->parents[0].get();
    TensorNode* sn = o->parents[1].get();
    const float s = sn->values[0];
    if (an->requires_grad) {
      an->EnsureGrad();
      for (size_t i = 0; i < o->grad.size(); ++i) an->grad[i] += o->grad[i] * s;
    }
    if (sn->requires_grad) {
      sn->EnsureGrad();
      float acc = 0.0f;
      for (size_t i = 0; i < o->grad.size(); ++i) acc += o->grad[i] * an->values[i];
      sn->grad[0] += acc;
    }
  });
  return Tensor::FromNode(out);
}

Tensor Relu(const Tensor& a) {
  auto out = NewNodeLike(a);
  const auto& av = a.values();
  for (size_t i = 0; i < av.size(); ++i) out->values[i] = av[i] > 0.0f ? av[i] : 0.0f;
  AttachBackward(out, {a}, [](TensorNode* o) {
    TensorNode* an = o->parents[0].get();
    if (!an->requires_grad) return;
    an->EnsureGrad();
    for (size_t i = 0; i < o->grad.size(); ++i) {
      if (an->values[i] > 0.0f) an->grad[i] += o->grad[i];
    }
  });
  return Tensor::FromNode(out);
}

Tensor LeakyRelu(const Tensor& a, float negative_slope) {
  auto out = NewNodeLike(a);
  const auto& av = a.values();
  for (size_t i = 0; i < av.size(); ++i) {
    out->values[i] = av[i] > 0.0f ? av[i] : negative_slope * av[i];
  }
  AttachBackward(out, {a}, [negative_slope](TensorNode* o) {
    TensorNode* an = o->parents[0].get();
    if (!an->requires_grad) return;
    an->EnsureGrad();
    for (size_t i = 0; i < o->grad.size(); ++i) {
      an->grad[i] += o->grad[i] * (an->values[i] > 0.0f ? 1.0f : negative_slope);
    }
  });
  return Tensor::FromNode(out);
}

Tensor Tanh(const Tensor& a) {
  auto out = NewNodeLike(a);
  const auto& av = a.values();
  for (size_t i = 0; i < av.size(); ++i) out->values[i] = std::tanh(av[i]);
  AttachBackward(out, {a}, [](TensorNode* o) {
    TensorNode* an = o->parents[0].get();
    if (!an->requires_grad) return;
    an->EnsureGrad();
    for (size_t i = 0; i < o->grad.size(); ++i) {
      an->grad[i] += o->grad[i] * (1.0f - o->values[i] * o->values[i]);
    }
  });
  return Tensor::FromNode(out);
}

Tensor Sigmoid(const Tensor& a) {
  auto out = NewNodeLike(a);
  const auto& av = a.values();
  for (size_t i = 0; i < av.size(); ++i) out->values[i] = 1.0f / (1.0f + std::exp(-av[i]));
  AttachBackward(out, {a}, [](TensorNode* o) {
    TensorNode* an = o->parents[0].get();
    if (!an->requires_grad) return;
    an->EnsureGrad();
    for (size_t i = 0; i < o->grad.size(); ++i) {
      an->grad[i] += o->grad[i] * o->values[i] * (1.0f - o->values[i]);
    }
  });
  return Tensor::FromNode(out);
}

Tensor Exp(const Tensor& a) {
  auto out = NewNodeLike(a);
  const auto& av = a.values();
  for (size_t i = 0; i < av.size(); ++i) out->values[i] = std::exp(av[i]);
  AttachBackward(out, {a}, [](TensorNode* o) {
    TensorNode* an = o->parents[0].get();
    if (!an->requires_grad) return;
    an->EnsureGrad();
    for (size_t i = 0; i < o->grad.size(); ++i) an->grad[i] += o->grad[i] * o->values[i];
  });
  return Tensor::FromNode(out);
}

Tensor Log(const Tensor& a, float eps) {
  auto out = NewNodeLike(a);
  const auto& av = a.values();
  for (size_t i = 0; i < av.size(); ++i) out->values[i] = std::log(std::max(av[i], eps));
  AttachBackward(out, {a}, [eps](TensorNode* o) {
    TensorNode* an = o->parents[0].get();
    if (!an->requires_grad) return;
    an->EnsureGrad();
    for (size_t i = 0; i < o->grad.size(); ++i) {
      an->grad[i] += o->grad[i] / std::max(an->values[i], eps);
    }
  });
  return Tensor::FromNode(out);
}

Tensor Softplus(const Tensor& a) {
  auto out = NewNodeLike(a);
  const auto& av = a.values();
  for (size_t i = 0; i < av.size(); ++i) {
    // Numerically stable softplus: log(1 + exp(x)) = max(x, 0) + log1p(exp(-|x|)).
    const float x = av[i];
    out->values[i] = std::max(x, 0.0f) + std::log1p(std::exp(-std::fabs(x)));
  }
  AttachBackward(out, {a}, [](TensorNode* o) {
    TensorNode* an = o->parents[0].get();
    if (!an->requires_grad) return;
    an->EnsureGrad();
    for (size_t i = 0; i < o->grad.size(); ++i) {
      const float s = 1.0f / (1.0f + std::exp(-an->values[i]));
      an->grad[i] += o->grad[i] * s;
    }
  });
  return Tensor::FromNode(out);
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  CHECK_EQ(a.cols(), b.rows()) << "MatMul shape mismatch: " << a.rows() << "x" << a.cols()
                               << " times " << b.rows() << "x" << b.cols();
  const int n = a.rows();
  const int k = a.cols();
  const int m = b.cols();
  auto out = NewNode(n, m);
  // ikj loop order: unit-stride inner loop, autovectorizes well.
  const float* av = a.values().data();
  const float* bv = b.values().data();
  float* ov = out->values.data();
  for (int i = 0; i < n; ++i) {
    float* orow = ov + static_cast<size_t>(i) * m;
    for (int kk = 0; kk < k; ++kk) {
      const float aik = av[static_cast<size_t>(i) * k + kk];
      if (aik == 0.0f) continue;
      const float* brow = bv + static_cast<size_t>(kk) * m;
      for (int j = 0; j < m; ++j) orow[j] += aik * brow[j];
    }
  }
  AttachBackward(out, {a, b}, [n, k, m](TensorNode* o) {
    TensorNode* an = o->parents[0].get();
    TensorNode* bn = o->parents[1].get();
    const float* g = o->grad.data();
    if (an->requires_grad) {
      // dA = G * B^T  (n x m)(m x k^T) -> iterate to keep unit stride.
      an->EnsureGrad();
      float* ga = an->grad.data();
      const float* bv = bn->values.data();
      for (int i = 0; i < n; ++i) {
        const float* grow = g + static_cast<size_t>(i) * m;
        float* garow = ga + static_cast<size_t>(i) * k;
        for (int kk = 0; kk < k; ++kk) {
          const float* brow = bv + static_cast<size_t>(kk) * m;
          float acc = 0.0f;
          for (int j = 0; j < m; ++j) acc += grow[j] * brow[j];
          garow[kk] += acc;
        }
      }
    }
    if (bn->requires_grad) {
      // dB = A^T * G.
      bn->EnsureGrad();
      float* gb = bn->grad.data();
      const float* av = an->values.data();
      for (int i = 0; i < n; ++i) {
        const float* grow = g + static_cast<size_t>(i) * m;
        const float* arow = av + static_cast<size_t>(i) * k;
        for (int kk = 0; kk < k; ++kk) {
          const float aik = arow[kk];
          if (aik == 0.0f) continue;
          float* gbrow = gb + static_cast<size_t>(kk) * m;
          for (int j = 0; j < m; ++j) gbrow[j] += aik * grow[j];
        }
      }
    }
  });
  return Tensor::FromNode(out);
}

Tensor Sum(const Tensor& a) {
  auto out = NewNode(1, 1);
  double acc = 0.0;
  for (float v : a.values()) acc += v;
  out->values[0] = static_cast<float>(acc);
  AttachBackward(out, {a}, [](TensorNode* o) {
    TensorNode* an = o->parents[0].get();
    if (!an->requires_grad) return;
    an->EnsureGrad();
    const float g = o->grad[0];
    for (auto& v : an->grad) v += g;
  });
  return Tensor::FromNode(out);
}

Tensor Mean(const Tensor& a) {
  CHECK_GT(a.numel(), 0);
  return MulScalar(Sum(a), 1.0f / static_cast<float>(a.numel()));
}

Tensor RowSoftmax(const Tensor& a) {
  auto out = NewNodeLike(a);
  const int cols = a.cols();
  const auto& av = a.values();
  for (int r = 0; r < a.rows(); ++r) {
    const size_t base = static_cast<size_t>(r) * cols;
    float max_v = av[base];
    for (int c = 1; c < cols; ++c) max_v = std::max(max_v, av[base + c]);
    double denom = 0.0;
    for (int c = 0; c < cols; ++c) {
      out->values[base + c] = std::exp(av[base + c] - max_v);
      denom += out->values[base + c];
    }
    for (int c = 0; c < cols; ++c) out->values[base + c] /= static_cast<float>(denom);
  }
  AttachBackward(out, {a}, [cols](TensorNode* o) {
    TensorNode* an = o->parents[0].get();
    if (!an->requires_grad) return;
    an->EnsureGrad();
    for (int r = 0; r < o->rows; ++r) {
      const size_t base = static_cast<size_t>(r) * cols;
      double dot = 0.0;
      for (int c = 0; c < cols; ++c) dot += o->grad[base + c] * o->values[base + c];
      for (int c = 0; c < cols; ++c) {
        an->grad[base + c] +=
            o->values[base + c] * (o->grad[base + c] - static_cast<float>(dot));
      }
    }
  });
  return Tensor::FromNode(out);
}

Tensor RowLogSoftmax(const Tensor& a) {
  auto out = NewNodeLike(a);
  const int cols = a.cols();
  const auto& av = a.values();
  for (int r = 0; r < a.rows(); ++r) {
    const size_t base = static_cast<size_t>(r) * cols;
    float max_v = av[base];
    for (int c = 1; c < cols; ++c) max_v = std::max(max_v, av[base + c]);
    double denom = 0.0;
    for (int c = 0; c < cols; ++c) denom += std::exp(av[base + c] - max_v);
    const float log_denom = max_v + static_cast<float>(std::log(denom));
    for (int c = 0; c < cols; ++c) out->values[base + c] = av[base + c] - log_denom;
  }
  AttachBackward(out, {a}, [cols](TensorNode* o) {
    TensorNode* an = o->parents[0].get();
    if (!an->requires_grad) return;
    an->EnsureGrad();
    for (int r = 0; r < o->rows; ++r) {
      const size_t base = static_cast<size_t>(r) * cols;
      double grad_sum = 0.0;
      for (int c = 0; c < cols; ++c) grad_sum += o->grad[base + c];
      for (int c = 0; c < cols; ++c) {
        an->grad[base + c] += o->grad[base + c] -
                              std::exp(o->values[base + c]) * static_cast<float>(grad_sum);
      }
    }
  });
  return Tensor::FromNode(out);
}

}  // namespace revelio::tensor
