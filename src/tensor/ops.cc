#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/bf16.h"
#include "tensor/op_helpers.h"
#include "tensor/record.h"
#include "tensor/simd.h"
#include "util/parallel.h"

// Parallelization strategy (see DESIGN.md "Parallel execution"): every
// kernel partitions its OUTPUT range — rows for matmul/row-wise ops, the
// flat index space for elementwise ops — so each output element is written
// by exactly one chunk and the accumulation order within an element matches
// the serial loop. Results are bitwise-identical for any thread count.
//
// Recording (DESIGN.md §12): when a plan tape is active, each op appends the
// very same kernel lambda it just ran, bound to the same node buffers, so
// replay recomputes identical bits. Kernels therefore read every varying
// input through node-backed pointers (not by-value snapshots), and any
// scratch state is reset inside the lambda. obs spans/counters stay outside
// the recorded closure: replay is on the hot path and must not re-count.
//
// SIMD (DESIGN.md §13): chunk bodies dispatch to the tensor/simd.h kernels
// when simd::Enabled(), falling back to the scalar loops below otherwise.
// The dispatch lives INSIDE the chunk lambdas, so recorded tapes honor the
// runtime toggle on replay and fused elementwise chains vectorize through
// the same kernels. Vectorized bodies are bitwise-equal to the scalar loops
// (mul-then-add per element in the same order) except the dot-product
// reductions in MatMul's dA, flagged below, which are ulp-bounded.
// Transcendental forwards (Tanh/Sigmoid/Exp/Log/Softplus) stay scalar: libm
// is not lane-invariant, and they are compute- not bandwidth-bound.

namespace revelio::tensor {

using internal::TensorNode;

namespace {

// Elementwise loops share one shape: hoist the raw pointers once, then
// split the flat range.
template <typename Fn>
void ElementwiseFor(int64_t n, const Fn& fn) {
  util::ParallelFor(0, n, kElementwiseGrain, fn);
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Add");
  auto out = NewNodeLikeUninit(a);
  const float* av = a.values().data();
  const float* bv = b.values().data();
  float* ov = out->values.data();
  auto chunk = [av, bv, ov](int64_t begin, int64_t end) {
    if (simd::Enabled()) {
      simd::AddF32(av + begin, bv + begin, ov + begin, end - begin);
      return;
    }
    for (int64_t i = begin; i < end; ++i) ov[i] = av[i] + bv[i];
  };
  ElementwiseFor(out->numel(), chunk);
  if (simd::Enabled()) simd::CountSweep(out->numel());
  if (rec::Recording()) {
    rec::RecordElementwise("Add", out, {a.node(), b.node()}, out->numel(), chunk);
  }
  AttachBackward(out, {a, b}, [](TensorNode* o) {
    AccumulateInto(o->parents[0].get(), o->grad, 1.0f);
    AccumulateInto(o->parents[1].get(), o->grad, 1.0f);
  });
  return Tensor::FromNode(out);
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Sub");
  auto out = NewNodeLikeUninit(a);
  const float* av = a.values().data();
  const float* bv = b.values().data();
  float* ov = out->values.data();
  auto chunk = [av, bv, ov](int64_t begin, int64_t end) {
    if (simd::Enabled()) {
      simd::SubF32(av + begin, bv + begin, ov + begin, end - begin);
      return;
    }
    for (int64_t i = begin; i < end; ++i) ov[i] = av[i] - bv[i];
  };
  ElementwiseFor(out->numel(), chunk);
  if (simd::Enabled()) simd::CountSweep(out->numel());
  if (rec::Recording()) {
    rec::RecordElementwise("Sub", out, {a.node(), b.node()}, out->numel(), chunk);
  }
  AttachBackward(out, {a, b}, [](TensorNode* o) {
    AccumulateInto(o->parents[0].get(), o->grad, 1.0f);
    AccumulateInto(o->parents[1].get(), o->grad, -1.0f);
  });
  return Tensor::FromNode(out);
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Mul");
  auto out = NewNodeLikeUninit(a);
  const float* av = a.values().data();
  const float* bv = b.values().data();
  float* ov = out->values.data();
  auto chunk = [av, bv, ov](int64_t begin, int64_t end) {
    if (simd::Enabled()) {
      simd::MulF32(av + begin, bv + begin, ov + begin, end - begin);
      return;
    }
    for (int64_t i = begin; i < end; ++i) ov[i] = av[i] * bv[i];
  };
  ElementwiseFor(out->numel(), chunk);
  if (simd::Enabled()) simd::CountSweep(out->numel());
  if (rec::Recording()) {
    rec::RecordElementwise("Mul", out, {a.node(), b.node()}, out->numel(), chunk);
  }
  AttachBackward(out, {a, b}, [](TensorNode* o) {
    TensorNode* an = o->parents[0].get();
    TensorNode* bn = o->parents[1].get();
    const int64_t n = static_cast<int64_t>(o->grad.size());
    const float* g = o->grad.data();
    if (an->requires_grad) {
      an->EnsureGrad();
      float* ga = an->grad.data();
      const float* bv = bn->values.data();
      ElementwiseFor(n, [g, ga, bv](int64_t begin, int64_t end) {
        if (simd::Enabled()) {
          simd::MulPairAccF32(g + begin, bv + begin, ga + begin, end - begin);
          return;
        }
        for (int64_t i = begin; i < end; ++i) ga[i] += g[i] * bv[i];
      });
    }
    if (bn->requires_grad) {
      bn->EnsureGrad();
      float* gb = bn->grad.data();
      const float* av = an->values.data();
      ElementwiseFor(n, [g, gb, av](int64_t begin, int64_t end) {
        if (simd::Enabled()) {
          simd::MulPairAccF32(g + begin, av + begin, gb + begin, end - begin);
          return;
        }
        for (int64_t i = begin; i < end; ++i) gb[i] += g[i] * av[i];
      });
    }
  });
  return Tensor::FromNode(out);
}

Tensor AddRowBroadcast(const Tensor& matrix, const Tensor& row) {
  CHECK_EQ(row.rows(), 1);
  CHECK_EQ(row.cols(), matrix.cols());
  auto out = NewNodeLikeUninit(matrix);
  const float* mv = matrix.values().data();
  const float* rv = row.values().data();
  float* ov = out->values.data();
  const int cols = matrix.cols();
  const int rows = matrix.rows();
  auto run = [mv, rv, ov, cols, rows]() {
    util::ParallelFor(0, rows, RowGrain(cols), [mv, rv, ov, cols](int64_t rb, int64_t re) {
      for (int64_t r = rb; r < re; ++r) {
        const size_t base = static_cast<size_t>(r) * cols;
        if (simd::Enabled()) {
          simd::AddF32(mv + base, rv, ov + base, cols);
          continue;
        }
        for (int c = 0; c < cols; ++c) ov[base + c] = mv[base + c] + rv[c];
      }
    });
  };
  run();
  if (simd::Enabled()) simd::CountSweep(out->numel());
  if (rec::Recording()) {
    rec::Record("AddRowBroadcast", out, {matrix.node(), row.node()}, run);
  }
  bf16::MaybePackOutput(out.get());
  AttachBackward(out, {matrix, row}, [](TensorNode* o) {
    TensorNode* mn = o->parents[0].get();
    TensorNode* rn = o->parents[1].get();
    AccumulateInto(mn, o->grad, 1.0f);
    if (rn->requires_grad) {
      rn->EnsureGrad();
      const int cols = o->cols;
      const int rows = o->rows;
      const float* g = o->grad.data();
      float* gr = rn->grad.data();
      // Column-partitioned so each grad entry has one owner; the per-column
      // sum keeps the serial row order.
      util::ParallelFor(0, cols, RowGrain(rows), [g, gr, cols, rows](int64_t cb, int64_t ce) {
        for (int64_t c = cb; c < ce; ++c) {
          float acc = 0.0f;
          for (int r = 0; r < rows; ++r) acc += g[static_cast<size_t>(r) * cols + c];
          gr[c] += acc;
        }
      });
    }
  });
  return Tensor::FromNode(out);
}

Tensor AddScalar(const Tensor& a, float s) {
  auto out = NewNodeLikeUninit(a);
  const float* av = a.values().data();
  float* ov = out->values.data();
  auto chunk = [av, ov, s](int64_t begin, int64_t end) {
    if (simd::Enabled()) {
      simd::AddScalarF32(av + begin, s, ov + begin, end - begin);
      return;
    }
    for (int64_t i = begin; i < end; ++i) ov[i] = av[i] + s;
  };
  ElementwiseFor(out->numel(), chunk);
  if (simd::Enabled()) simd::CountSweep(out->numel());
  if (rec::Recording()) {
    rec::RecordElementwise("AddScalar", out, {a.node()}, out->numel(), chunk);
  }
  AttachBackward(out, {a},
                 [](TensorNode* o) { AccumulateInto(o->parents[0].get(), o->grad, 1.0f); });
  return Tensor::FromNode(out);
}

Tensor MulScalar(const Tensor& a, float s) {
  auto out = NewNodeLikeUninit(a);
  const float* av = a.values().data();
  float* ov = out->values.data();
  auto chunk = [av, ov, s](int64_t begin, int64_t end) {
    if (simd::Enabled()) {
      simd::MulScalarF32(av + begin, s, ov + begin, end - begin);
      return;
    }
    for (int64_t i = begin; i < end; ++i) ov[i] = av[i] * s;
  };
  ElementwiseFor(out->numel(), chunk);
  if (simd::Enabled()) simd::CountSweep(out->numel());
  if (rec::Recording()) {
    rec::RecordElementwise("MulScalar", out, {a.node()}, out->numel(), chunk);
  }
  AttachBackward(out, {a},
                 [s](TensorNode* o) { AccumulateInto(o->parents[0].get(), o->grad, s); });
  return Tensor::FromNode(out);
}

Tensor Neg(const Tensor& a) { return MulScalar(a, -1.0f); }

Tensor ScaleByScalarTensor(const Tensor& a, const Tensor& scalar) {
  CHECK(scalar.is_scalar());
  auto out = NewNodeLikeUninit(a);
  const float* av = a.values().data();
  float* ov = out->values.data();
  // The scalar is read through its node buffer inside the chunk (not hoisted
  // by value): on plan replay the scale has been re-trained since recording.
  const float* sv = scalar.values().data();
  auto chunk = [av, ov, sv](int64_t begin, int64_t end) {
    const float s = sv[0];
    if (simd::Enabled()) {
      simd::MulScalarF32(av + begin, s, ov + begin, end - begin);
      return;
    }
    for (int64_t i = begin; i < end; ++i) ov[i] = av[i] * s;
  };
  ElementwiseFor(out->numel(), chunk);
  if (simd::Enabled()) simd::CountSweep(out->numel());
  if (rec::Recording()) {
    rec::RecordElementwise("ScaleByScalarTensor", out, {a.node(), scalar.node()}, out->numel(),
                           chunk);
  }
  AttachBackward(out, {a, scalar}, [](TensorNode* o) {
    TensorNode* an = o->parents[0].get();
    TensorNode* sn = o->parents[1].get();
    const float s = sn->values[0];
    const int64_t n = static_cast<int64_t>(o->grad.size());
    const float* g = o->grad.data();
    if (an->requires_grad) {
      an->EnsureGrad();
      float* ga = an->grad.data();
      ElementwiseFor(n, [g, ga, s](int64_t begin, int64_t end) {
        if (simd::Enabled()) {
          simd::MulAccF32(g + begin, s, ga + begin, end - begin);
          return;
        }
        for (int64_t i = begin; i < end; ++i) ga[i] += g[i] * s;
      });
    }
    if (sn->requires_grad) {
      sn->EnsureGrad();
      // Scalar reduction: serial, in index order, for determinism.
      const float* av = an->values.data();
      float acc = 0.0f;
      for (int64_t i = 0; i < n; ++i) acc += g[i] * av[i];
      sn->grad[0] += acc;
    }
  });
  return Tensor::FromNode(out);
}

Tensor Relu(const Tensor& a) {
  auto out = NewNodeLikeUninit(a);
  const float* av = a.values().data();
  float* ov = out->values.data();
  auto chunk = [av, ov](int64_t begin, int64_t end) {
    if (simd::Enabled()) {
      simd::ReluF32(av + begin, ov + begin, end - begin);
      return;
    }
    for (int64_t i = begin; i < end; ++i) ov[i] = av[i] > 0.0f ? av[i] : 0.0f;
  };
  ElementwiseFor(out->numel(), chunk);
  if (simd::Enabled()) simd::CountSweep(out->numel());
  if (rec::Recording()) {
    rec::RecordElementwise("Relu", out, {a.node()}, out->numel(), chunk);
  }
  bf16::MaybePackOutput(out.get());
  AttachBackward(out, {a}, [](TensorNode* o) {
    TensorNode* an = o->parents[0].get();
    if (!an->requires_grad) return;
    an->EnsureGrad();
    const float* g = o->grad.data();
    const float* av = an->values.data();
    float* ga = an->grad.data();
    ElementwiseFor(static_cast<int64_t>(o->grad.size()),
                   [g, av, ga](int64_t begin, int64_t end) {
                     if (simd::Enabled()) {
                       simd::ReluGradAccF32(g + begin, av + begin, ga + begin, end - begin);
                       return;
                     }
                     for (int64_t i = begin; i < end; ++i) {
                       if (av[i] > 0.0f) ga[i] += g[i];
                     }
                   });
  });
  return Tensor::FromNode(out);
}

Tensor LeakyRelu(const Tensor& a, float negative_slope) {
  auto out = NewNodeLikeUninit(a);
  const float* av = a.values().data();
  float* ov = out->values.data();
  auto chunk = [av, ov, negative_slope](int64_t begin, int64_t end) {
    if (simd::Enabled()) {
      simd::LeakyReluF32(av + begin, negative_slope, ov + begin, end - begin);
      return;
    }
    for (int64_t i = begin; i < end; ++i) {
      ov[i] = av[i] > 0.0f ? av[i] : negative_slope * av[i];
    }
  };
  ElementwiseFor(out->numel(), chunk);
  if (simd::Enabled()) simd::CountSweep(out->numel());
  if (rec::Recording()) {
    rec::RecordElementwise("LeakyRelu", out, {a.node()}, out->numel(), chunk);
  }
  bf16::MaybePackOutput(out.get());
  AttachBackward(out, {a}, [negative_slope](TensorNode* o) {
    TensorNode* an = o->parents[0].get();
    if (!an->requires_grad) return;
    an->EnsureGrad();
    const float* g = o->grad.data();
    const float* av = an->values.data();
    float* ga = an->grad.data();
    ElementwiseFor(static_cast<int64_t>(o->grad.size()),
                   [g, av, ga, negative_slope](int64_t begin, int64_t end) {
                     if (simd::Enabled()) {
                       simd::LeakyReluGradAccF32(g + begin, av + begin, negative_slope,
                                                 ga + begin, end - begin);
                       return;
                     }
                     for (int64_t i = begin; i < end; ++i) {
                       ga[i] += g[i] * (av[i] > 0.0f ? 1.0f : negative_slope);
                     }
                   });
  });
  return Tensor::FromNode(out);
}

Tensor Tanh(const Tensor& a) {
  auto out = NewNodeLikeUninit(a);
  const float* av = a.values().data();
  float* ov = out->values.data();
  auto chunk = [av, ov](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) ov[i] = std::tanh(av[i]);
  };
  ElementwiseFor(out->numel(), chunk);
  if (rec::Recording()) {
    rec::RecordElementwise("Tanh", out, {a.node()}, out->numel(), chunk);
  }
  bf16::MaybePackOutput(out.get());
  AttachBackward(out, {a}, [](TensorNode* o) {
    TensorNode* an = o->parents[0].get();
    if (!an->requires_grad) return;
    an->EnsureGrad();
    const float* g = o->grad.data();
    const float* ov = o->values.data();
    float* ga = an->grad.data();
    ElementwiseFor(static_cast<int64_t>(o->grad.size()),
                   [g, ov, ga](int64_t begin, int64_t end) {
                     if (simd::Enabled()) {
                       simd::TanhGradAccF32(g + begin, ov + begin, ga + begin, end - begin);
                       return;
                     }
                     for (int64_t i = begin; i < end; ++i) {
                       ga[i] += g[i] * (1.0f - ov[i] * ov[i]);
                     }
                   });
  });
  return Tensor::FromNode(out);
}

Tensor Sigmoid(const Tensor& a) {
  auto out = NewNodeLikeUninit(a);
  const float* av = a.values().data();
  float* ov = out->values.data();
  auto chunk = [av, ov](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) ov[i] = 1.0f / (1.0f + std::exp(-av[i]));
  };
  ElementwiseFor(out->numel(), chunk);
  if (rec::Recording()) {
    rec::RecordElementwise("Sigmoid", out, {a.node()}, out->numel(), chunk);
  }
  bf16::MaybePackOutput(out.get());
  AttachBackward(out, {a}, [](TensorNode* o) {
    TensorNode* an = o->parents[0].get();
    if (!an->requires_grad) return;
    an->EnsureGrad();
    const float* g = o->grad.data();
    const float* ov = o->values.data();
    float* ga = an->grad.data();
    ElementwiseFor(static_cast<int64_t>(o->grad.size()),
                   [g, ov, ga](int64_t begin, int64_t end) {
                     if (simd::Enabled()) {
                       simd::SigmoidGradAccF32(g + begin, ov + begin, ga + begin, end - begin);
                       return;
                     }
                     for (int64_t i = begin; i < end; ++i) {
                       ga[i] += g[i] * ov[i] * (1.0f - ov[i]);
                     }
                   });
  });
  return Tensor::FromNode(out);
}

Tensor Exp(const Tensor& a) {
  auto out = NewNodeLikeUninit(a);
  const float* av = a.values().data();
  float* ov = out->values.data();
  auto chunk = [av, ov](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) ov[i] = std::exp(av[i]);
  };
  ElementwiseFor(out->numel(), chunk);
  if (rec::Recording()) {
    rec::RecordElementwise("Exp", out, {a.node()}, out->numel(), chunk);
  }
  AttachBackward(out, {a}, [](TensorNode* o) {
    TensorNode* an = o->parents[0].get();
    if (!an->requires_grad) return;
    an->EnsureGrad();
    const float* g = o->grad.data();
    const float* ov = o->values.data();
    float* ga = an->grad.data();
    ElementwiseFor(static_cast<int64_t>(o->grad.size()),
                   [g, ov, ga](int64_t begin, int64_t end) {
                     if (simd::Enabled()) {
                       simd::MulPairAccF32(g + begin, ov + begin, ga + begin, end - begin);
                       return;
                     }
                     for (int64_t i = begin; i < end; ++i) ga[i] += g[i] * ov[i];
                   });
  });
  return Tensor::FromNode(out);
}

Tensor Log(const Tensor& a, float eps) {
  auto out = NewNodeLikeUninit(a);
  const float* av = a.values().data();
  float* ov = out->values.data();
  auto chunk = [av, ov, eps](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) ov[i] = std::log(std::max(av[i], eps));
  };
  ElementwiseFor(out->numel(), chunk);
  if (rec::Recording()) {
    rec::RecordElementwise("Log", out, {a.node()}, out->numel(), chunk);
  }
  AttachBackward(out, {a}, [eps](TensorNode* o) {
    TensorNode* an = o->parents[0].get();
    if (!an->requires_grad) return;
    an->EnsureGrad();
    const float* g = o->grad.data();
    const float* av = an->values.data();
    float* ga = an->grad.data();
    ElementwiseFor(static_cast<int64_t>(o->grad.size()),
                   [g, av, ga, eps](int64_t begin, int64_t end) {
                     for (int64_t i = begin; i < end; ++i) {
                       ga[i] += g[i] / std::max(av[i], eps);
                     }
                   });
  });
  return Tensor::FromNode(out);
}

Tensor Softplus(const Tensor& a) {
  auto out = NewNodeLikeUninit(a);
  const float* av = a.values().data();
  float* ov = out->values.data();
  auto chunk = [av, ov](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      // Numerically stable softplus: log(1 + exp(x)) = max(x, 0) + log1p(exp(-|x|)).
      const float x = av[i];
      ov[i] = std::max(x, 0.0f) + std::log1p(std::exp(-std::fabs(x)));
    }
  };
  ElementwiseFor(out->numel(), chunk);
  if (rec::Recording()) {
    rec::RecordElementwise("Softplus", out, {a.node()}, out->numel(), chunk);
  }
  AttachBackward(out, {a}, [](TensorNode* o) {
    TensorNode* an = o->parents[0].get();
    if (!an->requires_grad) return;
    an->EnsureGrad();
    const float* g = o->grad.data();
    const float* av = an->values.data();
    float* ga = an->grad.data();
    ElementwiseFor(static_cast<int64_t>(o->grad.size()),
                   [g, av, ga](int64_t begin, int64_t end) {
                     for (int64_t i = begin; i < end; ++i) {
                       const float s = 1.0f / (1.0f + std::exp(-av[i]));
                       ga[i] += g[i] * s;
                     }
                   });
  });
  return Tensor::FromNode(out);
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  CHECK_EQ(a.cols(), b.rows()) << "MatMul shape mismatch: " << a.rows() << "x" << a.cols()
                               << " times " << b.rows() << "x" << b.cols();
  const int n = a.rows();
  const int k = a.cols();
  const int m = b.cols();
  obs::ScopedSpan span("tensor.MatMul", obs::FlightPolicy::kSkip);
  static obs::Counter* calls = obs::MetricsRegistry::Global().GetCounter("tensor.matmul.calls");
  static obs::Counter* flops = obs::MetricsRegistry::Global().GetCounter("tensor.matmul.flops");
  static obs::Counter* bytes = obs::MetricsRegistry::Global().GetCounter("tensor.matmul.bytes");
  static obs::Counter* input_bytes =
      obs::MetricsRegistry::Global().GetCounter("tensor.matmul.input_bytes");
  // bf16 eval tier (tensor/bf16.h): inside an EvalScope, grad-free operands
  // with a packed mirror are read at half width. Never taken while recording
  // (replayed tapes must stay f32-exact) or when a gradient is needed.
  const uint16_t* ap = nullptr;
  const uint16_t* bp = nullptr;
  if (bf16::EvalScope::Active() && !rec::Recording() && !a.requires_grad() &&
      !b.requires_grad()) {
    ap = bf16::PackedOperand(a.node().get());
    bp = bf16::PackedOperand(b.node().get());
  }
  calls->Increment();
  flops->Add(uint64_t{2} * n * k * m);
  // Input traffic at the width actually read (2 bytes for bf16-packed
  // operands, 4 for f32) — the counter the bf16-halving bench gate watches.
  const uint64_t in_bytes = (ap != nullptr ? 2u : 4u) * uint64_t{1} * n * k +
                            (bp != nullptr ? 2u : 4u) * uint64_t{1} * k * m;
  input_bytes->Add(in_bytes);
  bytes->Add(in_bytes + sizeof(float) * uint64_t{1} * n * m);
  auto out = NewNodeUninit(n, m);
  // ikj loop order: unit-stride inner loop. Rows of the output are
  // independent, so the i loop is partitioned across threads. Each chunk
  // zeroes its own rows before accumulating (first-touch, and the pooled
  // buffer arrives dirty), matching the zero-initialized serial path.
  const float* av = a.values().data();
  const float* bv = b.values().data();
  float* ov = out->values.data();
  const int64_t row_flops = int64_t{2} * k * m;
  if (ap != nullptr || bp != nullptr) {
    // Inference-only mixed-precision path: f32 accumulate, bf16 operands
    // widened on the fly in-register. No recording, no backward.
    util::ParallelFor(0, n, RowGrain(row_flops),
                      [av, ap, bv, bp, ov, k, m](int64_t ib, int64_t ie) {
                        simd::MatMulRowsMixed(ap ? nullptr : av, ap, bp ? nullptr : bv, bp, ov,
                                              ib, ie, k, m);
                      });
    simd::CountSweep(static_cast<int64_t>(n) * m);
    bf16::MaybePackOutput(out.get());
    return Tensor::FromNode(out);
  }
  auto run = [av, bv, ov, n, k, m, row_flops]() {
    util::ParallelFor(0, n, RowGrain(row_flops), [av, bv, ov, k, m](int64_t ib, int64_t ie) {
      if (simd::Enabled()) {
        simd::MatMulRowsF32(av, bv, ov, ib, ie, k, m);
        return;
      }
      for (int64_t i = ib; i < ie; ++i) {
        float* orow = ov + static_cast<size_t>(i) * m;
        std::fill(orow, orow + m, 0.0f);
        for (int kk = 0; kk < k; ++kk) {
          const float aik = av[static_cast<size_t>(i) * k + kk];
          if (aik == 0.0f) continue;
          const float* brow = bv + static_cast<size_t>(kk) * m;
          for (int j = 0; j < m; ++j) orow[j] += aik * brow[j];
        }
      }
    });
  };
  run();
  if (simd::Enabled()) simd::CountSweep(static_cast<int64_t>(n) * m);
  if (rec::Recording()) {
    rec::Record("MatMul", out, {a.node(), b.node()}, run);
  }
  bf16::MaybePackOutput(out.get());
  AttachBackward(out, {a, b}, [n, k, m](TensorNode* o) {
    TensorNode* an = o->parents[0].get();
    TensorNode* bn = o->parents[1].get();
    const float* g = o->grad.data();
    const int64_t row_flops = int64_t{2} * k * m;
    if (an->requires_grad) {
      // dA = G * B^T, computed as dot products against rows of B (the
      // transposed-B fast path: both factors are read with unit stride).
      // dA rows are independent -> partition over i. The SIMD path reduces
      // each dot with fixed lane partials: ulp-bounded, not bitwise (the
      // one such kernel on the MatMul path — see simd.h).
      an->EnsureGrad();
      float* ga = an->grad.data();
      const float* bv = bn->values.data();
      util::ParallelFor(0, n, RowGrain(row_flops), [g, ga, bv, k, m](int64_t ib, int64_t ie) {
        if (simd::Enabled()) {
          simd::MatMulGradARowsF32(g, bv, ga, ib, ie, k, m);
          return;
        }
        for (int64_t i = ib; i < ie; ++i) {
          const float* grow = g + static_cast<size_t>(i) * m;
          float* garow = ga + static_cast<size_t>(i) * k;
          for (int kk = 0; kk < k; ++kk) {
            const float* brow = bv + static_cast<size_t>(kk) * m;
            float acc = 0.0f;
            for (int j = 0; j < m; ++j) acc += grow[j] * brow[j];
            garow[kk] += acc;
          }
        }
      });
    }
    if (bn->requires_grad) {
      // dB = A^T * G. Partitioned over dB rows (kk); the i loop stays
      // innermost-outer so each dB element accumulates in serial order.
      bn->EnsureGrad();
      float* gb = bn->grad.data();
      const float* av = an->values.data();
      const int64_t col_flops = int64_t{2} * n * m;
      util::ParallelFor(0, k, RowGrain(col_flops), [g, gb, av, n, k, m](int64_t kb, int64_t ke) {
        if (simd::Enabled()) {
          simd::MatMulGradBRowsF32(g, av, gb, kb, ke, n, k, m);
          return;
        }
        for (int i = 0; i < n; ++i) {
          const float* grow = g + static_cast<size_t>(i) * m;
          const float* arow = av + static_cast<size_t>(i) * k;
          for (int64_t kk = kb; kk < ke; ++kk) {
            const float aik = arow[kk];
            if (aik == 0.0f) continue;
            float* gbrow = gb + static_cast<size_t>(kk) * m;
            for (int j = 0; j < m; ++j) gbrow[j] += aik * grow[j];
          }
        }
      });
    }
  });
  return Tensor::FromNode(out);
}

Tensor Sum(const Tensor& a) {
  auto out = NewNodeUninit(1, 1);
  // Scalar reduction stays serial: a single double accumulator in index
  // order keeps the result independent of the thread count.
  const float* av = a.values().data();
  const int64_t n = a.numel();
  float* ov = out->values.data();
  auto run = [av, n, ov]() {
    double acc = 0.0;
    for (int64_t i = 0; i < n; ++i) acc += av[i];
    ov[0] = static_cast<float>(acc);
  };
  run();
  if (rec::Recording()) {
    rec::Record("Sum", out, {a.node()}, run);
  }
  AttachBackward(out, {a}, [](TensorNode* o) {
    TensorNode* an = o->parents[0].get();
    if (!an->requires_grad) return;
    an->EnsureGrad();
    const float g = o->grad[0];
    float* ga = an->grad.data();
    ElementwiseFor(static_cast<int64_t>(an->grad.size()),
                   [ga, g](int64_t begin, int64_t end) {
                     if (simd::Enabled()) {
                       simd::AddScalarAccF32(g, ga + begin, end - begin);
                       return;
                     }
                     for (int64_t i = begin; i < end; ++i) ga[i] += g;
                   });
  });
  return Tensor::FromNode(out);
}

Tensor Mean(const Tensor& a) {
  CHECK_GT(a.numel(), 0);
  return MulScalar(Sum(a), 1.0f / static_cast<float>(a.numel()));
}

Tensor RowSoftmax(const Tensor& a) {
  auto out = NewNodeLikeUninit(a);
  const int cols = a.cols();
  const float* av = a.values().data();
  float* ov = out->values.data();
  const int rows = a.rows();
  auto run = [av, ov, cols, rows]() {
    util::ParallelFor(0, rows, RowGrain(3 * cols), [av, ov, cols](int64_t rb, int64_t re) {
      for (int64_t r = rb; r < re; ++r) {
        const size_t base = static_cast<size_t>(r) * cols;
        float max_v = av[base];
        for (int c = 1; c < cols; ++c) max_v = std::max(max_v, av[base + c]);
        double denom = 0.0;
        for (int c = 0; c < cols; ++c) {
          ov[base + c] = std::exp(av[base + c] - max_v);
          denom += ov[base + c];
        }
        for (int c = 0; c < cols; ++c) ov[base + c] /= static_cast<float>(denom);
      }
    });
  };
  run();
  if (rec::Recording()) {
    rec::Record("RowSoftmax", out, {a.node()}, run);
  }
  AttachBackward(out, {a}, [cols](TensorNode* o) {
    TensorNode* an = o->parents[0].get();
    if (!an->requires_grad) return;
    an->EnsureGrad();
    const float* g = o->grad.data();
    const float* ov = o->values.data();
    float* ga = an->grad.data();
    util::ParallelFor(0, o->rows, RowGrain(3 * cols), [g, ov, ga, cols](int64_t rb, int64_t re) {
      for (int64_t r = rb; r < re; ++r) {
        const size_t base = static_cast<size_t>(r) * cols;
        double dot = 0.0;
        for (int c = 0; c < cols; ++c) dot += g[base + c] * ov[base + c];
        for (int c = 0; c < cols; ++c) {
          ga[base + c] += ov[base + c] * (g[base + c] - static_cast<float>(dot));
        }
      }
    });
  });
  return Tensor::FromNode(out);
}

Tensor RowLogSoftmax(const Tensor& a) {
  auto out = NewNodeLikeUninit(a);
  const int cols = a.cols();
  const float* av = a.values().data();
  float* ov = out->values.data();
  const int rows = a.rows();
  auto run = [av, ov, cols, rows]() {
    util::ParallelFor(0, rows, RowGrain(3 * cols), [av, ov, cols](int64_t rb, int64_t re) {
      for (int64_t r = rb; r < re; ++r) {
        const size_t base = static_cast<size_t>(r) * cols;
        float max_v = av[base];
        for (int c = 1; c < cols; ++c) max_v = std::max(max_v, av[base + c]);
        double denom = 0.0;
        for (int c = 0; c < cols; ++c) denom += std::exp(av[base + c] - max_v);
        const float log_denom = max_v + static_cast<float>(std::log(denom));
        for (int c = 0; c < cols; ++c) ov[base + c] = av[base + c] - log_denom;
      }
    });
  };
  run();
  if (rec::Recording()) {
    rec::Record("RowLogSoftmax", out, {a.node()}, run);
  }
  AttachBackward(out, {a}, [cols](TensorNode* o) {
    TensorNode* an = o->parents[0].get();
    if (!an->requires_grad) return;
    an->EnsureGrad();
    const float* g = o->grad.data();
    const float* ov = o->values.data();
    float* ga = an->grad.data();
    util::ParallelFor(0, o->rows, RowGrain(3 * cols), [g, ov, ga, cols](int64_t rb, int64_t re) {
      for (int64_t r = rb; r < re; ++r) {
        const size_t base = static_cast<size_t>(r) * cols;
        double grad_sum = 0.0;
        for (int c = 0; c < cols; ++c) grad_sum += g[base + c];
        for (int c = 0; c < cols; ++c) {
          ga[base + c] += g[base + c] - std::exp(ov[base + c]) * static_cast<float>(grad_sum);
        }
      }
    });
  });
  return Tensor::FromNode(out);
}

}  // namespace revelio::tensor
