#ifndef REVELIO_TENSOR_OPS_H_
#define REVELIO_TENSOR_OPS_H_

// Differentiable operations over Tensor. Every op returns a fresh tensor
// whose backward function accumulates gradients into its inputs.
//
// Index-based ops (GatherRows / ScatterAddRows / RowScale / Segment*) are the
// message-passing primitives: a GNN layer is
//   messages = RowScale(GatherRows(H, src), coeff * mask)
//   H'       = ScatterAddRows(messages, dst, num_nodes)

#include <vector>

#include "tensor/sparse.h"
#include "tensor/tensor.h"

namespace revelio::tensor {

// --- Elementwise binary (same shape) ----------------------------------------
Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);

// Adds a 1 x C row vector to every row of an N x C matrix (bias add).
Tensor AddRowBroadcast(const Tensor& matrix, const Tensor& row);

// --- Scalar ------------------------------------------------------------------
Tensor AddScalar(const Tensor& a, float s);
Tensor MulScalar(const Tensor& a, float s);
Tensor Neg(const Tensor& a);

// Multiplies every entry of `a` by a differentiable 1x1 tensor (used for the
// per-layer exp(w_l) factor in the paper's Eq. 5).
Tensor ScaleByScalarTensor(const Tensor& a, const Tensor& scalar);

// --- Activations -------------------------------------------------------------
Tensor Relu(const Tensor& a);
Tensor LeakyRelu(const Tensor& a, float negative_slope);
Tensor Tanh(const Tensor& a);
Tensor Sigmoid(const Tensor& a);
Tensor Exp(const Tensor& a);
// Natural log; inputs are clamped to >= eps for numerical safety.
Tensor Log(const Tensor& a, float eps = 1e-12f);
Tensor Softplus(const Tensor& a);

// --- Linear algebra ------------------------------------------------------------
// (N x K) times (K x M) -> (N x M).
Tensor MatMul(const Tensor& a, const Tensor& b);

// --- Reductions ----------------------------------------------------------------
Tensor Sum(const Tensor& a);   // -> 1x1
Tensor Mean(const Tensor& a);  // -> 1x1

// --- Row-wise softmax ------------------------------------------------------------
Tensor RowSoftmax(const Tensor& a);
Tensor RowLogSoftmax(const Tensor& a);

// --- Indexing / message passing ----------------------------------------------
// out[i] = a[indices[i]] for each row. indices values must be in [0, a.rows()).
Tensor GatherRows(const Tensor& a, const std::vector<int>& indices);

// out has `num_rows` rows; out[indices[i]] += src[i]. Rows never touched stay 0.
Tensor ScatterAddRows(const Tensor& src, const std::vector<int>& indices, int num_rows);

// out[i, :] = a[i, :] * scale[i]; scale is (N x 1) matching a's row count.
Tensor RowScale(const Tensor& a, const Tensor& scale);

// Concatenates along columns: (N x A), (N x B) -> (N x (A+B)).
Tensor ConcatCols(const Tensor& a, const Tensor& b);

// Softmax over entries sharing a segment id. `values` is (M x 1); entries of
// segment s are normalized among themselves. Used for GAT attention where the
// segment is the destination node of each edge.
Tensor SegmentSoftmax(const Tensor& values, const std::vector<int>& segment_ids,
                      int num_segments);

// Mean of rows per segment: (N x C) -> (S x C). Empty segments produce zeros.
// Used as the graph-classification readout over batched graphs.
Tensor SegmentMeanRows(const Tensor& a, const std::vector<int>& segment_ids, int num_segments);

// Sum of rows per segment: (N x C) -> (S x C). Empty segments produce zeros.
// Each (segment, column) accumulates in a serial double accumulator scanning
// rows in index order, so with C = 1 and a segment's rows contiguous it is
// bitwise-equal to Sum() over that slice — the contract the mega-batched
// explainer loss relies on for per-instance loss terms.
Tensor SegmentSumRows(const Tensor& a, const std::vector<int>& segment_ids, int num_segments);

// Column-wise max per segment: (N x C) -> (S x C). Gradient flows to the
// argmax row of each (segment, column). Empty segments produce zeros.
Tensor SegmentMaxRows(const Tensor& a, const std::vector<int>& segment_ids, int num_segments);

// --- Fused sparse aggregation -------------------------------------------------
// Generalized SpMM over a CsrPattern: one fused pass replacing the
// Gather -> RowScale -> ScatterAdd message-passing chain (bitwise-equal to it,
// see ops_spmm.cc). out[j] = sum over row j's nonzeros of w_k * x[col_k].

// Unweighted sum (w_k = 1). Rows with no nonzeros are exactly zero.
Tensor SpmmCsr(const CsrPatternRef& pattern, const Tensor& x);

// Per-edge weighted sum; `weights` is (pattern->num_edges x 1) and
// differentiable, so Eq. 6 masks and GAT attention flow through this kernel.
Tensor SpmmCsrWeighted(const CsrPatternRef& pattern, const Tensor& weights, const Tensor& x);

// Per-row mean (sum scaled by 1/degree). Zero-degree rows stay exactly zero.
Tensor SpmmCsrMean(const CsrPatternRef& pattern, const Tensor& x);

// Extracts a single element as a 1x1 tensor (differentiable).
Tensor Select(const Tensor& a, int row, int col);

// Batched Select: out[k] = a[rows[k], cols[k]] as an N x 1 tensor. Each
// output entry applies the same float math as Select on its (row, col)
// pair; the backward partitions over the input rows and accumulates
// duplicate sources in index order, so results are bitwise-stable across
// thread counts. The mega-batched explainers use this to read every
// instance's explained probability in one op.
Tensor SelectMany(const Tensor& a, const std::vector<int>& rows, const std::vector<int>& cols);

// Mean negative log-likelihood: `log_probs` is (N x C) of log probabilities,
// `targets` has N class indices. Returns a 1x1 loss.
Tensor NllLoss(const Tensor& log_probs, const std::vector<int>& targets);

}  // namespace revelio::tensor

#endif  // REVELIO_TENSOR_OPS_H_
