#ifndef REVELIO_TENSOR_OP_REGISTRY_H_
#define REVELIO_TENSOR_OP_REGISTRY_H_

// Central inventory of the differentiable ops declared in ops.h. The property
// suite enumerates this registry to enforce 100% gradcheck coverage: a new op
// added to ops.h must also be added here and given a gradcheck harness, or
// tests/prop/gradcheck_test fails.

#include <string>
#include <vector>

namespace revelio::tensor {

// Names of every public differentiable op, in ops.h declaration order.
// Must stay in sync with ops.h (enforced by gradcheck_test, which parses the
// header and diffs the two lists).
const std::vector<std::string>& RegisteredOpNames();

// True if `name` is in RegisteredOpNames().
bool IsRegisteredOp(const std::string& name);

}  // namespace revelio::tensor

#endif  // REVELIO_TENSOR_OP_REGISTRY_H_
