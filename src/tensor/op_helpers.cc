#include "tensor/op_helpers.h"

#include "tensor/pool.h"
#include "tensor/simd.h"

namespace revelio::tensor {

using internal::TensorNode;

std::shared_ptr<TensorNode> NewNode(int rows, int cols) {
  CHECK_GE(rows, 0);
  CHECK_GE(cols, 0);
  auto node = std::make_shared<TensorNode>();
  node->rows = rows;
  node->cols = cols;
  node->values = AcquireZeroedBuffer(static_cast<size_t>(rows) * cols);
  return node;
}

std::shared_ptr<TensorNode> NewNodeLike(const Tensor& like) {
  CHECK(like.defined());
  return NewNode(like.rows(), like.cols());
}

std::shared_ptr<TensorNode> NewNodeUninit(int rows, int cols) {
  CHECK_GE(rows, 0);
  CHECK_GE(cols, 0);
  auto node = std::make_shared<TensorNode>();
  node->rows = rows;
  node->cols = cols;
  node->values = AcquireBuffer(static_cast<size_t>(rows) * cols);
  return node;
}

std::shared_ptr<TensorNode> NewNodeLikeUninit(const Tensor& like) {
  CHECK(like.defined());
  return NewNodeUninit(like.rows(), like.cols());
}

void AttachBackward(const std::shared_ptr<TensorNode>& out, std::initializer_list<Tensor> inputs,
                    std::function<void(TensorNode*)> backward) {
  bool any_grad = false;
  for (const Tensor& t : inputs) {
    CHECK(t.defined());
    if (t.requires_grad()) any_grad = true;
  }
  if (!any_grad) return;
  out->requires_grad = true;
  out->parents.reserve(inputs.size());
  for (const Tensor& t : inputs) out->parents.push_back(t.node());
  TensorNode* raw = out.get();
  out->backward_fn = [raw, backward = std::move(backward)]() {
    raw->EnsureGrad();
    backward(raw);
  };
}

void AccumulateInto(TensorNode* target, const std::vector<float>& grad, float scale) {
  if (!target->requires_grad) return;
  target->EnsureGrad();
  CHECK_EQ(target->grad.size(), grad.size());
  const float* g = grad.data();
  float* t = target->grad.data();
  util::ParallelFor(0, static_cast<int64_t>(grad.size()), kElementwiseGrain,
                    [g, t, scale](int64_t begin, int64_t end) {
                      if (simd::Enabled()) {
                        simd::MulAccF32(g + begin, scale, t + begin, end - begin);
                        return;
                      }
                      for (int64_t i = begin; i < end; ++i) t[i] += scale * g[i];
                    });
}

void CheckSameShape(const Tensor& a, const Tensor& b, const char* op_name) {
  CHECK(a.defined() && b.defined()) << op_name << " on undefined tensor";
  CHECK(a.rows() == b.rows() && a.cols() == b.cols())
      << op_name << " shape mismatch: " << a.rows() << "x" << a.cols() << " vs " << b.rows()
      << "x" << b.cols();
}

}  // namespace revelio::tensor
