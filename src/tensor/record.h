#ifndef REVELIO_TENSOR_RECORD_H_
#define REVELIO_TENSOR_RECORD_H_

// Op-tape recording hooks for the plan subsystem (src/plan).
//
// While a thread-local tape is installed (rec::SetActiveTape), every op
// implementation appends one RecordedOp describing how to recompute its
// output values in place from its input nodes' current values. The closure
// captures raw pointers into the node buffers — valid for the lifetime of
// the tape, which pins every node via shared_ptr — plus by-value copies of
// any caller-owned index vectors (copied only when recording, so the eager
// path pays nothing beyond one thread-local null check per op).
//
// Elementwise ops additionally expose their per-chunk kernel (ChunkFn over
// the flat index space), which lets the plan compiler fuse consecutive
// same-extent elementwise ops into a single parallel sweep. A chunked
// kernel must write out[i] only from inputs at the same flat index i.
//
// The recorded closures re-run the exact float expressions of the eager
// kernels (they are the same lambdas), so replay is bitwise-equal to eager
// execution at any thread count — the contract proven by
// tests/prop/plan_equivalence_test.cc.

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace revelio::tensor::rec {

// Per-chunk elementwise kernel over [begin, end) of the flat index space.
using ChunkFn = std::function<void(int64_t begin, int64_t end)>;

struct RecordedOp {
  const char* name = "";  // registry name (tensor/op_registry.cc)
  std::shared_ptr<internal::TensorNode> out;
  std::vector<std::shared_ptr<internal::TensorNode>> inputs;
  // Recomputes out->values from the inputs' current values. Never touches
  // grads, obs counters, or the pool; always safe to re-run.
  std::function<void()> replay;
  // Set only for fusable elementwise ops: the kernel behind `replay`,
  // invocable per chunk. `numel` is its flat extent.
  ChunkFn chunk;
  int64_t numel = 0;
};

// A recorded epoch: ops in construction order (a topological order of the
// data dependencies by definition of program order).
struct OpTape {
  std::vector<RecordedOp> ops;
};

namespace detail {
// Exposed for the inline readers below; use ActiveTape()/SetActiveTape().
extern thread_local OpTape* g_active_tape;
}  // namespace detail

// The calling thread's active tape (nullptr when not recording). Inline so
// the per-op Recording() guard compiles to one thread-local load + compare.
inline OpTape* ActiveTape() { return detail::g_active_tape; }
inline void SetActiveTape(OpTape* tape) { detail::g_active_tape = tape; }
inline bool Recording() { return ActiveTape() != nullptr; }

// Appends one op to the active tape. Callers must guard with Recording()
// so the eager path never pays for closure materialization.
void Record(const char* name, std::shared_ptr<internal::TensorNode> out,
            std::vector<std::shared_ptr<internal::TensorNode>> inputs,
            std::function<void()> replay);

// Elementwise variant: derives `replay` from the chunk kernel and marks the
// op fusable.
void RecordElementwise(const char* name, std::shared_ptr<internal::TensorNode> out,
                       std::vector<std::shared_ptr<internal::TensorNode>> inputs, int64_t numel,
                       ChunkFn chunk);

}  // namespace revelio::tensor::rec

#endif  // REVELIO_TENSOR_RECORD_H_
