#ifndef REVELIO_TENSOR_TENSOR_H_
#define REVELIO_TENSOR_TENSOR_H_

// Dense float tensor with reverse-mode automatic differentiation.
//
// This is the substrate that stands in for libtorch: all GNN layers, losses
// and the Revelio mask-learning machinery are differentiated through it.
// Tensors are 2-D (rows x cols); column vectors are N x 1. A Tensor is a
// cheap value-semantic handle onto a shared node in the autograd graph.
//
// Typical usage:
//   Tensor w = Tensor::Randn(in, out, &rng).WithRequiresGrad();
//   Tensor y = MatMul(x, w);
//   Tensor loss = Mean(y);
//   loss.Backward();
//   // w.GradAt(i, j) now holds dloss/dw[i,j].

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "util/check.h"
#include "util/rng.h"

namespace revelio::tensor {

class Tensor;

namespace internal {

// One node of the autograd graph. Owned via shared_ptr by Tensor handles and
// by child nodes (through `parents`), so a forward graph stays alive until
// the last handle to its output is dropped. Storage comes from the
// thread-local TensorPool (tensor/pool.h); the destructor returns both
// buffers to the current thread's pool.
struct TensorNode {
  TensorNode() = default;
  ~TensorNode();

  int rows = 0;
  int cols = 0;
  std::vector<float> values;
  std::vector<float> grad;  // allocated on demand, same size as values
  bool requires_grad = false;

  // bf16-packed mirror of `values` for inference-only eval passes
  // (tensor/bf16.h); null when absent. Every in-place mutation of `values`
  // must drop it via bf16::InvalidatePacked.
  std::shared_ptr<const std::vector<uint16_t>> bf16_values;

  // Upstream nodes this node was computed from (empty for leaves).
  std::vector<std::shared_ptr<TensorNode>> parents;

  // Propagates this node's grad into its parents' grads. Only set when
  // requires_grad is true and the node is not a leaf.
  std::function<void()> backward_fn;

  int64_t numel() const { return static_cast<int64_t>(rows) * cols; }
  // Pool-backed zero-initialized grad buffer (no-op if already present).
  void EnsureGrad();
};

// Appends to `order` the post-order DFS over requires_grad parents rooted at
// `root` (parents before children when read backwards — the order Backward()
// runs backward_fns in). Shared by Tensor::Backward and the plan subsystem,
// which caches the order at seal time so replayed backward passes are
// bitwise-identical to eager ones.
void CollectBackwardOrder(TensorNode* root, std::vector<TensorNode*>* order);

}  // namespace internal

// Value-semantic handle to a tensor node.
class Tensor {
 public:
  // Default-constructed tensors are empty (rows == cols == 0) and must be
  // assigned before use.
  Tensor() = default;

  // --- Factories -----------------------------------------------------------

  static Tensor Zeros(int rows, int cols);
  // Unspecified contents (pool-recycled storage is not cleared): every entry
  // must be written before it is read. Under REVELIO_POISON_POOL recycled
  // storage is NaN-filled, so a violation poisons downstream results.
  static Tensor Empty(int rows, int cols);
  static Tensor Ones(int rows, int cols);
  static Tensor Full(int rows, int cols, float value);
  static Tensor FromData(int rows, int cols, std::vector<float> values);
  // Column vector (n x 1) from raw values.
  static Tensor FromVector(const std::vector<float>& values);
  // I.i.d. standard normal entries.
  static Tensor Randn(int rows, int cols, util::Rng* rng);
  // I.i.d. uniform entries in [lo, hi).
  static Tensor Uniform(int rows, int cols, float lo, float hi, util::Rng* rng);

  // Marks this (leaf) tensor as a trainable parameter and returns it.
  Tensor WithRequiresGrad();

  // Clears requires_grad on this leaf tensor and drops any accumulated
  // gradient. Frozen parameters are skipped by Backward(), which keeps
  // concurrent backward passes through a shared model race-free.
  void DisableGrad();

  // --- Shape and element access --------------------------------------------

  bool defined() const { return node_ != nullptr; }
  int rows() const { return node_ ? node_->rows : 0; }
  int cols() const { return node_ ? node_->cols : 0; }
  int64_t numel() const { return node_ ? node_->numel() : 0; }
  bool is_scalar() const { return rows() == 1 && cols() == 1; }

  float At(int r, int c) const;
  // Mutates a value in place. Only valid on leaf tensors (no backward_fn);
  // used when building inputs and by optimizers.
  void SetAt(int r, int c, float value);

  // Scalar extraction; requires a 1x1 tensor.
  float Value() const;

  const std::vector<float>& values() const;
  std::vector<float>* mutable_values();

  // --- Autograd -------------------------------------------------------------

  bool requires_grad() const { return node_ && node_->requires_grad; }

  // Runs backpropagation from this scalar tensor: seeds d(self)/d(self) = 1
  // and accumulates gradients into every upstream tensor with requires_grad.
  void Backward() const;

  // Gradient accumulated by the last Backward() calls (0 if none reached it).
  float GradAt(int r, int c) const;
  // Gradient values as a flat vector (empty if no gradient was accumulated).
  std::vector<float> GradData() const;
  // Same, by reference (no copy): valid until the node dies or the grad is
  // released. Optimizers read this every step.
  const std::vector<float>& GradValues() const;
  // Clears the accumulated gradient (optimizers call this between steps).
  void ZeroGrad();

  // Severs the autograd tape behind this tensor: clears backward_fn and the
  // parent links (and releases the grad buffer) of every reachable non-leaf
  // node, so intermediates kept alive only by the tape return their storage
  // to the pool immediately. This tensor's values survive; leaf parameters
  // (and their grads) are untouched. Call at the end of each training epoch,
  // after the optimizer step.
  void ReleaseTape() const;

  // A leaf copy of the values, detached from the autograd graph.
  Tensor Detach() const;

  // Human-readable rendering, e.g. for test failure messages.
  std::string DebugString(int max_entries = 32) const;

  // --- Internal (used by op implementations) --------------------------------

  const std::shared_ptr<internal::TensorNode>& node() const { return node_; }
  static Tensor FromNode(std::shared_ptr<internal::TensorNode> node);

 private:
  std::shared_ptr<internal::TensorNode> node_;
};

}  // namespace revelio::tensor

#endif  // REVELIO_TENSOR_TENSOR_H_
