#ifndef REVELIO_TENSOR_SIMD_H_
#define REVELIO_TENSOR_SIMD_H_

// Width-agnostic SIMD kernel tier for the hot float loops.
//
// The instruction set is selected at COMPILE time — exactly one of AVX2
// (8 lanes), NEON (4 lanes) or the scalar fallback (1 lane) is baked into
// simd.cc, which is the only translation unit built with vector ISA flags
// (see src/tensor/CMakeLists.txt). Every other TU sees only the plain
// function declarations below, so the rest of the tree keeps the default
// target arch and the scalar reference loops stay un-widened.
//
// At RUNTIME the tier can be disabled with REVELIO_SIMD=0 (or SetEnabled):
// kernel call sites in ops.cc / ops_index.cc / ops_spmm.cc check Enabled()
// inside their chunk lambdas and fall back to the original scalar loops.
// Because the check lives inside the chunk, recorded plan tapes (PR 9)
// honor the toggle on replay too, and fused elementwise chains vectorize
// through the very same kernels.
//
// Equivalence contract (proven by tests/prop/simd_equivalence_test.cc):
//  - Elementwise kernels, axpy-style accumulations and the matmul/spmm
//    forward kernels are BITWISE-equal to the scalar loops: they issue the
//    same mul-then-add per element in the same order (no FMA contraction —
//    simd.cc is never built with -mfma), and the scalar tail runs the
//    identical expression. Branchy updates (Relu backward) use blends that
//    preserve the unmodified accumulator bits exactly.
//  - DotF32 (used by MatMul dA, SpmmBackwardW and RowScale's dscale) is a
//    REDUCTION: it keeps kLanes fixed partial sums and reduces them in a
//    fixed left-to-right order. The result is deterministic at every thread
//    count, but only ulp-bounded against the serial accumulation order —
//    the "ulp-bounded" tolerance class of util::proptest. All three dot
//    call sites share this one implementation, so identities that compare
//    them against each other (fused SpMM vs the legacy chain) stay bitwise.
//
// Tail handling: every kernel processes floor(n / Lanes()) full vectors and
// finishes the remainder with the scalar expression. Owner-computes
// partitioning (DESIGN.md "Parallel execution") is per-element, so chunk
// boundaries falling inside a vector simply shift which iterations are
// vector-bodied vs tail — the computed bits are unchanged at any thread
// count or shape (regression: tests/parallel_test.cc, odd-shape cases).
//
// Observability: call sites report sweep shapes via CountSweep, which feeds
// the tensor.simd.{lanes,vector_ops,scalar_tail} counters (vector bodies
// issued and tail elements processed). Counting happens at op granularity,
// outside recorded closures, so plan replay does not re-count.

#include <cstdint>

namespace revelio::tensor::simd {

// --- Selection and introspection -------------------------------------------

// Compiled lane width: 8 (AVX2), 4 (NEON), 1 (scalar build).
int Lanes();

// "avx2", "neon" or "scalar".
const char* IsaName();

// True when the CPU this process runs on can execute the compiled ISA.
// The revelio_simd_selftest ctest fails fast when this is false.
bool CpuSupportsCompiledIsa();

// Runtime toggle. Defaults to true when the compiled width is > 1 unless
// REVELIO_SIMD=0/false/off is set in the environment.
bool Enabled();
void SetEnabled(bool enabled);

// Adds n / Lanes() to tensor.simd.vector_ops and n % Lanes() to
// tensor.simd.scalar_tail (and pins tensor.simd.lanes). No-op counters when
// the tier is disabled; call once per op-level sweep of n elements.
void CountSweep(int64_t n);

// --- Elementwise kernels over [0, n) — bitwise class ------------------------

void AddF32(const float* a, const float* b, float* o, int64_t n);         // o = a + b
void SubF32(const float* a, const float* b, float* o, int64_t n);         // o = a - b
void MulF32(const float* a, const float* b, float* o, int64_t n);         // o = a * b
void AddScalarF32(const float* a, float s, float* o, int64_t n);          // o = a + s
void MulScalarF32(const float* a, float s, float* o, int64_t n);          // o = a * s
void AddAccF32(const float* a, float* o, int64_t n);                      // o += a
void AddScalarAccF32(float s, float* o, int64_t n);                       // o += s
void MulAccF32(const float* a, float s, float* o, int64_t n);             // o += a * s
void MulPairAccF32(const float* a, const float* b, float* o, int64_t n);  // o += a * b
// y += a * x. With a == 1.0f this reproduces `y[i] += 1.0f * x[i]` exactly
// (the unweighted SpMM expression).
void AxpyF32(float a, const float* x, float* y, int64_t n);

void ReluF32(const float* a, float* o, int64_t n);  // o = max(a, 0), sign-exact
// ga += g where a > 0; untouched lanes keep their exact bits (blend).
void ReluGradAccF32(const float* g, const float* a, float* ga, int64_t n);
void LeakyReluF32(const float* a, float slope, float* o, int64_t n);
// ga += g * (a > 0 ? 1 : slope); the positive branch adds g (times 1.0f).
void LeakyReluGradAccF32(const float* g, const float* a, float slope, float* ga, int64_t n);
// ga += g * ov * (1 - ov): Sigmoid backward (left-assoc, matches scalar).
void SigmoidGradAccF32(const float* g, const float* ov, float* ga, int64_t n);
// ga += g * (1 - ov * ov): Tanh backward.
void TanhGradAccF32(const float* g, const float* ov, float* ga, int64_t n);

// --- Reductions — ulp-bounded class ----------------------------------------

// <a, b> with kLanes fixed partials reduced left-to-right. Deterministic,
// not bitwise-equal to the serial order.
float DotF32(const float* a, const float* b, int64_t n);

// --- Row-blocked matmul kernels --------------------------------------------
// All operate on rows [ib, ie) of the output and preserve the scalar loop's
// per-element accumulation order (bitwise class unless noted). Layouts:
// a is n x k, b is k x m, o is n x m, all row-major.

// o[i,:] = sum_kk a[i,kk] * b[kk,:], zero-filling each row first and
// skipping a[i,kk] == 0 like the scalar kernel.
void MatMulRowsF32(const float* a, const float* b, float* o, int64_t ib, int64_t ie, int k,
                   int m);
// ga[i,kk] += <g[i,:], b[kk,:]> — DotF32-based, ulp-bounded class.
void MatMulGradARowsF32(const float* g, const float* b, float* ga, int64_t ib, int64_t ie, int k,
                        int m);
// gb[kk,:] += a[i,kk] * g[i,:] for kk in [kb, ke), i ascending — bitwise.
void MatMulGradBRowsF32(const float* g, const float* a, float* gb, int64_t kb, int64_t ke, int n,
                        int k, int m);

// --- bf16 storage kernels (tensor/bf16.h) ----------------------------------
// Inputs are bf16-packed (uint16_t); lanes are widened to f32 on the fly and
// all arithmetic stays in f32. Stated-epsilon class.

// y += a * widen(x).
void AxpyBf16(float a, const uint16_t* x, float* y, int64_t n);
// o[i,:] accumulated in f32 from operands that are independently f32 or
// bf16-packed (pass nullptr for the representation not in use).
void MatMulRowsMixed(const float* a32, const uint16_t* a16, const float* b32,
                     const uint16_t* b16, float* o, int64_t ib, int64_t ie, int k, int m);
// Round-to-nearest-even f32 -> bf16 pack / zero-extend widen sweeps.
void PackBf16(const float* src, uint16_t* dst, int64_t n);
void WidenBf16(const uint16_t* src, float* dst, int64_t n);

}  // namespace revelio::tensor::simd

#endif  // REVELIO_TENSOR_SIMD_H_
