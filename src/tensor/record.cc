#include "tensor/record.h"

#include <utility>

#include "tensor/op_helpers.h"
#include "util/parallel.h"

namespace revelio::tensor::rec {

namespace detail {
thread_local OpTape* g_active_tape = nullptr;
}  // namespace detail

using detail::g_active_tape;

void Record(const char* name, std::shared_ptr<internal::TensorNode> out,
            std::vector<std::shared_ptr<internal::TensorNode>> inputs,
            std::function<void()> replay) {
  OpTape* tape = g_active_tape;
  if (tape == nullptr) return;
  RecordedOp op;
  op.name = name;
  op.out = std::move(out);
  op.inputs = std::move(inputs);
  op.replay = std::move(replay);
  tape->ops.push_back(std::move(op));
}

void RecordElementwise(const char* name, std::shared_ptr<internal::TensorNode> out,
                       std::vector<std::shared_ptr<internal::TensorNode>> inputs, int64_t numel,
                       ChunkFn chunk) {
  OpTape* tape = g_active_tape;
  if (tape == nullptr) return;
  RecordedOp op;
  op.name = name;
  op.out = std::move(out);
  op.inputs = std::move(inputs);
  op.numel = numel;
  op.replay = [chunk, numel]() {
    util::ParallelFor(0, numel, kElementwiseGrain,
                      [&chunk](int64_t begin, int64_t end) { chunk(begin, end); });
  };
  op.chunk = std::move(chunk);
  tape->ops.push_back(std::move(op));
}

}  // namespace revelio::tensor::rec
