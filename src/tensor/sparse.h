#ifndef REVELIO_TENSOR_SPARSE_H_
#define REVELIO_TENSOR_SPARSE_H_

// Shared CSR sparsity pattern for the fused SpMM aggregation ops (ops.h).
//
// A pattern describes a sparse num_rows x num_cols aggregation matrix whose
// k-th nonzero sits at (rows[k], cols[k]) and draws its value from an
// external per-edge weight vector at index edge_idx[k]. For GNN aggregation
// the weight vector is the per-layer-edge coefficient-times-mask vector of
// the paper's Eq. 6 (or a GAT head's attention coefficients), so masks and
// attention flow through the same fused kernel.
//
// The transposed (CSC) view is precomputed alongside the forward CSR so
// reverse-mode SpMM can partition over *input* rows with the same
// owner-computes determinism contract as the forward pass. Patterns are
// immutable after construction and shared by shared_ptr between graphs,
// layer-edge sets and autograd closures (backward functions capture the ref,
// so a pattern outlives every forward graph built on it).

#include <memory>
#include <vector>

namespace revelio::tensor {

struct CsrPattern {
  int num_rows = 0;   // output rows (aggregation destinations)
  int num_cols = 0;   // input rows (aggregation sources)
  int num_edges = 0;  // length of the external weight vector

  // Forward CSR, grouped by output row. Entries within a row keep increasing
  // edge order — the serial scatter-scan order the fused kernels reproduce,
  // which is what keeps them bitwise-equal to the legacy chain.
  std::vector<int> row_ptr;   // num_rows + 1
  std::vector<int> col_idx;   // nnz: input row per nonzero
  std::vector<int> edge_idx;  // nnz: weight-vector index per nonzero

  // Transposed (CSC) view, grouped by input row, same intra-group edge order.
  std::vector<int> tcol_ptr;   // num_cols + 1
  std::vector<int> trow_idx;   // nnz: output row per nonzero
  std::vector<int> tedge_idx;  // nnz: weight-vector index per nonzero

  int nnz() const { return static_cast<int>(col_idx.size()); }
};

using CsrPatternRef = std::shared_ptr<const CsrPattern>;

// Builds the pattern (and its transpose) for nonzeros (rows[k], cols[k]),
// k = 0..rows.size()-1, with weight index k. Counting sort keeps entries in
// increasing k within every row and every transpose column, matching the
// accumulation order of the legacy gather/scatter chain bit for bit.
CsrPatternRef BuildCsrPattern(int num_rows, int num_cols, const std::vector<int>& rows,
                              const std::vector<int>& cols);

}  // namespace revelio::tensor

#endif  // REVELIO_TENSOR_SPARSE_H_
