#include "tensor/tensor.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "tensor/bf16.h"
#include "tensor/pool.h"

namespace revelio::tensor {

using internal::TensorNode;

namespace internal {

TensorNode::~TensorNode() {
  ReleaseBuffer(&grad);
  ReleaseBuffer(&values);
}

void TensorNode::EnsureGrad() {
  if (grad.empty()) grad = AcquireZeroedBuffer(values.size());
}

void CollectBackwardOrder(TensorNode* root, std::vector<TensorNode*>* order) {
  // Iterative post-order DFS producing a topological order (children after
  // all of their parents when traversed in reverse). The containers are
  // thread_local: Backward runs hundreds of times per explained instance and
  // reusing their storage keeps the steady-state epoch allocation-free.
  thread_local std::unordered_set<TensorNode*> visited;
  thread_local std::vector<std::pair<TensorNode*, size_t>> stack;
  visited.clear();
  stack.clear();
  stack.emplace_back(root, 0);
  visited.insert(root);
  while (!stack.empty()) {
    auto& [current, next_parent] = stack.back();
    if (next_parent < current->parents.size()) {
      TensorNode* parent = current->parents[next_parent].get();
      ++next_parent;
      if (parent->requires_grad && visited.insert(parent).second) {
        stack.emplace_back(parent, 0);
      }
    } else {
      order->push_back(current);
      stack.pop_back();
    }
  }
}

}  // namespace internal

namespace {

std::shared_ptr<TensorNode> NewLeaf(int rows, int cols) {
  CHECK_GE(rows, 0);
  CHECK_GE(cols, 0);
  auto node = std::make_shared<TensorNode>();
  node->rows = rows;
  node->cols = cols;
  node->values = AcquireZeroedBuffer(static_cast<size_t>(rows) * cols);
  return node;
}

// For factories that overwrite every entry (Full/Randn/Uniform/Empty): a
// recycled buffer is handed out dirty, skipping the zero-fill.
std::shared_ptr<TensorNode> NewLeafUninit(int rows, int cols) {
  CHECK_GE(rows, 0);
  CHECK_GE(cols, 0);
  auto node = std::make_shared<TensorNode>();
  node->rows = rows;
  node->cols = cols;
  node->values = AcquireBuffer(static_cast<size_t>(rows) * cols);
  return node;
}

}  // namespace

Tensor Tensor::FromNode(std::shared_ptr<TensorNode> node) {
  Tensor t;
  t.node_ = std::move(node);
  return t;
}

Tensor Tensor::Zeros(int rows, int cols) { return FromNode(NewLeaf(rows, cols)); }

Tensor Tensor::Empty(int rows, int cols) { return FromNode(NewLeafUninit(rows, cols)); }

Tensor Tensor::Ones(int rows, int cols) { return Full(rows, cols, 1.0f); }

Tensor Tensor::Full(int rows, int cols, float value) {
  auto node = NewLeafUninit(rows, cols);
  for (auto& v : node->values) v = value;
  return FromNode(std::move(node));
}

Tensor Tensor::FromData(int rows, int cols, std::vector<float> values) {
  CHECK_EQ(static_cast<int64_t>(values.size()), static_cast<int64_t>(rows) * cols);
  auto node = std::make_shared<TensorNode>();
  node->rows = rows;
  node->cols = cols;
  node->values = std::move(values);
  return FromNode(std::move(node));
}

Tensor Tensor::FromVector(const std::vector<float>& values) {
  return FromData(static_cast<int>(values.size()), 1, values);
}

Tensor Tensor::Randn(int rows, int cols, util::Rng* rng) {
  auto node = NewLeafUninit(rows, cols);
  for (auto& v : node->values) v = static_cast<float>(rng->Normal());
  return FromNode(std::move(node));
}

Tensor Tensor::Uniform(int rows, int cols, float lo, float hi, util::Rng* rng) {
  auto node = NewLeafUninit(rows, cols);
  for (auto& v : node->values) v = static_cast<float>(rng->Uniform(lo, hi));
  return FromNode(std::move(node));
}

Tensor Tensor::WithRequiresGrad() {
  CHECK(node_ != nullptr);
  CHECK(!node_->backward_fn) << "requires_grad can only be set on leaf tensors";
  node_->requires_grad = true;
  return *this;
}

void Tensor::DisableGrad() {
  CHECK(node_ != nullptr);
  CHECK(!node_->backward_fn) << "DisableGrad is only valid on leaf tensors";
  node_->requires_grad = false;
  ReleaseBuffer(&node_->grad);
}

float Tensor::At(int r, int c) const {
  CHECK(node_ != nullptr);
  DCHECK(r >= 0 && r < node_->rows && c >= 0 && c < node_->cols)
      << "index (" << r << "," << c << ") out of range " << node_->rows << "x" << node_->cols;
  return node_->values[static_cast<size_t>(r) * node_->cols + c];
}

void Tensor::SetAt(int r, int c, float value) {
  CHECK(node_ != nullptr);
  CHECK(!node_->backward_fn) << "SetAt is only valid on leaf tensors";
  CHECK(r >= 0 && r < node_->rows && c >= 0 && c < node_->cols);
  if (node_->bf16_values != nullptr) bf16::InvalidatePacked(node_.get());
  node_->values[static_cast<size_t>(r) * node_->cols + c] = value;
}

float Tensor::Value() const {
  CHECK(is_scalar()) << "Value() requires a 1x1 tensor, got " << rows() << "x" << cols();
  return node_->values[0];
}

const std::vector<float>& Tensor::values() const {
  CHECK(node_ != nullptr);
  return node_->values;
}

std::vector<float>* Tensor::mutable_values() {
  CHECK(node_ != nullptr);
  CHECK(!node_->backward_fn) << "mutable_values is only valid on leaf tensors";
  if (node_->bf16_values != nullptr) bf16::InvalidatePacked(node_.get());
  return &node_->values;
}

void Tensor::Backward() const {
  CHECK(node_ != nullptr);
  CHECK(is_scalar()) << "Backward() must start from a scalar loss";
  CHECK(node_->requires_grad) << "Backward() on a tensor that does not require grad";

  thread_local std::vector<TensorNode*> order;
  order.clear();
  internal::CollectBackwardOrder(node_.get(), &order);

  node_->EnsureGrad();
  node_->grad[0] += 1.0f;
  // `order` is post-order: parents before children, so walk it backwards.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if ((*it)->backward_fn) (*it)->backward_fn();
  }
}

float Tensor::GradAt(int r, int c) const {
  CHECK(node_ != nullptr);
  CHECK(r >= 0 && r < node_->rows && c >= 0 && c < node_->cols);
  if (node_->grad.empty()) return 0.0f;
  return node_->grad[static_cast<size_t>(r) * node_->cols + c];
}

std::vector<float> Tensor::GradData() const {
  CHECK(node_ != nullptr);
  return node_->grad;
}

const std::vector<float>& Tensor::GradValues() const {
  CHECK(node_ != nullptr);
  return node_->grad;
}

void Tensor::ReleaseTape() const {
  if (node_ == nullptr || !node_->backward_fn) return;
  // Two phases: collect every reachable node (holding shared_ptrs so the
  // graph cannot die mid-walk), then cut all edges at once. Cutting first
  // also flattens destruction: once no parent links remain, each node dies
  // independently instead of through a deep recursive shared_ptr chain.
  thread_local std::vector<std::shared_ptr<TensorNode>> reachable;
  thread_local std::unordered_set<TensorNode*> visited;
  thread_local std::vector<TensorNode*> stack;
  reachable.clear();
  visited.clear();
  stack.clear();
  stack.push_back(node_.get());
  visited.insert(node_.get());
  while (!stack.empty()) {
    TensorNode* current = stack.back();
    stack.pop_back();
    for (const auto& parent : current->parents) {
      if (visited.insert(parent.get()).second) {
        reachable.push_back(parent);
        stack.push_back(parent.get());
      }
    }
  }
  auto sever = [](TensorNode* node) {
    if (!node->backward_fn) return;  // leaf parameter: keep values and grad
    node->backward_fn = nullptr;
    node->parents.clear();
    ReleaseBuffer(&node->grad);
  };
  sever(node_.get());
  for (const auto& node : reachable) sever(node.get());
  reachable.clear();  // drop the temporary refs: orphaned intermediates die here
}

void Tensor::ZeroGrad() {
  CHECK(node_ != nullptr);
  std::fill(node_->grad.begin(), node_->grad.end(), 0.0f);
}

Tensor Tensor::Detach() const {
  CHECK(node_ != nullptr);
  auto node = NewLeafUninit(rows(), cols());
  std::copy(node_->values.begin(), node_->values.end(), node->values.begin());
  return FromNode(std::move(node));
}

std::string Tensor::DebugString(int max_entries) const {
  if (!defined()) return "Tensor(undefined)";
  std::ostringstream out;
  out << "Tensor(" << rows() << "x" << cols() << ", [";
  const int64_t n = numel();
  for (int64_t i = 0; i < n && i < max_entries; ++i) {
    if (i > 0) out << ", ";
    out << node_->values[i];
  }
  if (n > max_entries) out << ", ...";
  out << "])";
  return out.str();
}

}  // namespace revelio::tensor
