#include "tensor/bf16.h"

#include <array>
#include <atomic>
#include <cstdlib>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "tensor/op_helpers.h"
#include "tensor/simd.h"
#include "util/parallel.h"

namespace revelio::tensor::bf16 {

namespace {

bool EvalBf16Default() {
  const char* env = std::getenv("REVELIO_EVAL_BF16");
  if (env == nullptr) return false;
  const std::string value(env);
  return value == "1" || value == "true" || value == "on";
}

std::atomic<bool>& EvalFlag() {
  static std::atomic<bool> flag(EvalBf16Default());
  return flag;
}

thread_local int tls_scope_depth = 0;

// Striped pack/invalidate lock so eval workers can share frozen weights.
constexpr size_t kLockShards = 16;
std::mutex& ShardFor(const void* node) {
  static std::array<std::mutex, kLockShards> shards;
  return shards[(reinterpret_cast<uintptr_t>(node) >> 4) % kLockShards];
}

// Caller holds the node's shard lock.
std::shared_ptr<const std::vector<uint16_t>> PackNow(internal::TensorNode* node) {
  static obs::Counter* packs = obs::MetricsRegistry::Global().GetCounter("tensor.bf16.packs");
  static obs::Counter* pack_bytes =
      obs::MetricsRegistry::Global().GetCounter("tensor.bf16.pack_bytes");
  const int64_t n = node->numel();
  packs->Increment();
  pack_bytes->Add(static_cast<uint64_t>(n) * (sizeof(float) + sizeof(uint16_t)));
  auto packed = std::make_shared<std::vector<uint16_t>>(static_cast<size_t>(n));
  const float* src = node->values.data();
  uint16_t* dst = packed->data();
  util::ParallelFor(0, n, kElementwiseGrain, [src, dst](int64_t begin, int64_t end) {
    simd::PackBf16(src + begin, dst + begin, end - begin);
  });
  return packed;
}

}  // namespace

bool EvalStorageEnabled() { return EvalFlag().load(std::memory_order_relaxed); }

void SetEvalStorage(bool enabled) { EvalFlag().store(enabled, std::memory_order_relaxed); }

EvalScope::EvalScope() { ++tls_scope_depth; }
EvalScope::~EvalScope() { --tls_scope_depth; }

bool EvalScope::Active() { return tls_scope_depth > 0 && EvalStorageEnabled(); }

const uint16_t* PackedOperand(internal::TensorNode* node) {
  if (!EvalScope::Active() || node->requires_grad) return nullptr;
  std::lock_guard<std::mutex> lock(ShardFor(node));
  if (node->bf16_values != nullptr) return node->bf16_values->data();
  // Leaves (features, frozen weights) are packed on first use: they are
  // reused across every probe of a sweep, so the one-time pack amortizes.
  // Unpacked intermediates stay f32 — packing a single-use buffer would cost
  // more traffic than it saves; the mixed kernels widen per operand instead.
  const bool leaf = node->parents.empty() && !node->backward_fn;
  if (!leaf) return nullptr;
  node->bf16_values = PackNow(node);
  return node->bf16_values->data();
}

void MaybePackOutput(internal::TensorNode* node) {
  if (!EvalScope::Active() || node->requires_grad) return;
  std::lock_guard<std::mutex> lock(ShardFor(node));
  if (node->bf16_values != nullptr) return;
  // The values were written by the calling op microseconds ago, so the pack
  // pass reads cache-hot data; downstream eval ops then stream 2-byte rows.
  node->bf16_values = PackNow(node);
}

void InvalidatePacked(internal::TensorNode* node) {
  std::lock_guard<std::mutex> lock(ShardFor(node));
  node->bf16_values.reset();
}

uint16_t FromF32(float value) {
  uint16_t packed;
  simd::PackBf16(&value, &packed, 1);
  return packed;
}

float ToF32(uint16_t packed) {
  float value;
  simd::WidenBf16(&packed, &value, 1);
  return value;
}

}  // namespace revelio::tensor::bf16
