#include <algorithm>
#include <cstdint>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/bf16.h"
#include "tensor/op_helpers.h"
#include "tensor/ops.h"
#include "tensor/record.h"
#include "tensor/simd.h"
#include "tensor/sparse.h"
#include "util/parallel.h"

// Fused CSR SpMM aggregation kernels. One pass replaces the legacy
// Gather -> RowScale -> ScatterAdd chain without materializing the per-edge
// feature matrix. All loops follow the owner-computes contract: the forward
// pass and d-weights partition over output rows via the CSR view, dX
// partitions over input rows via the precomputed transpose, so every float
// has exactly one writer and results are bitwise-identical for any thread
// count. Within a row, nonzeros are visited in increasing edge order and
// accumulated as multiply-then-add into a zero-initialized accumulator —
// exactly the operation sequence of the legacy chain, which keeps the fused
// path bitwise-equal to it (no FMA contraction on the baseline target).

namespace revelio::tensor {

using internal::TensorNode;

namespace {

// Rows per chunk for an SpMM partitioned over `num_rows` rows with `nnz`
// total nonzeros and `cols` features: per-row cost is the feature width times
// the average degree (plus the pointer walk).
int64_t SpmmGrain(int64_t num_rows, int64_t nnz, int64_t cols) {
  const int64_t avg_degree = nnz / std::max<int64_t>(1, num_rows);
  return RowGrain(cols * (1 + avg_degree));
}

void RecordSpmmMetrics(const CsrPattern& p, int cols, bool x_bf16) {
  static obs::Counter* calls = obs::MetricsRegistry::Global().GetCounter("tensor.spmm.calls");
  static obs::Counter* flops = obs::MetricsRegistry::Global().GetCounter("tensor.spmm.flops");
  static obs::Counter* bytes = obs::MetricsRegistry::Global().GetCounter("tensor.spmm.bytes");
  static obs::Counter* input_bytes =
      obs::MetricsRegistry::Global().GetCounter("tensor.spmm.input_bytes");
  calls->Increment();
  flops->Add(uint64_t{2} * p.nnz() * cols);
  // Feature rows gathered per nonzero, at the width actually read (2 bytes
  // when x is bf16-packed) — the counter the bf16-halving bench gate watches.
  const uint64_t in = (x_bf16 ? 2u : 4u) * static_cast<uint64_t>(p.nnz()) * cols;
  input_bytes->Add(in);
  bytes->Add(in + sizeof(float) * static_cast<uint64_t>(p.num_rows) * cols);
}

// out[j, :] = sum_k w[edge_idx[k]] * x[col_idx[k], :] over row j's nonzeros.
// `wv == nullptr` means all-ones weights (the unweighted sum variant).
// `xp != nullptr` reads x from its bf16-packed mirror instead of xv
// (inference-only eval path; widened on the fly, f32 accumulate).
void SpmmForward(const CsrPattern& p, const float* wv, const float* xv, const uint16_t* xp,
                 float* ov, int cols) {
  const int* row_ptr = p.row_ptr.data();
  const int* col_idx = p.col_idx.data();
  const int* edge_idx = p.edge_idx.data();
  util::ParallelFor(0, p.num_rows, SpmmGrain(p.num_rows, p.nnz(), cols),
                    [=](int64_t rb, int64_t re) {
                      const bool use_simd = simd::Enabled();
                      for (int64_t j = rb; j < re; ++j) {
                        float* out_row = ov + static_cast<size_t>(j) * cols;
                        // The pooled output buffer arrives dirty; zeroing the
                        // row here (inside its owning chunk) preserves the
                        // accumulator semantics and first-touch locality.
                        std::fill(out_row, out_row + cols, 0.0f);
                        for (int k = row_ptr[j]; k < row_ptr[j + 1]; ++k) {
                          const size_t xbase = static_cast<size_t>(col_idx[k]) * cols;
                          const float w = wv ? wv[edge_idx[k]] : 1.0f;
                          if (xp != nullptr) {
                            simd::AxpyBf16(w, xp + xbase, out_row, cols);
                          } else if (use_simd) {
                            simd::AxpyF32(w, xv + xbase, out_row, cols);
                          } else {
                            const float* x_row = xv + xbase;
                            for (int c = 0; c < cols; ++c) out_row[c] += w * x_row[c];
                          }
                        }
                      }
                    });
}

// dX[i, :] += sum over transpose-column i of w[tedge_idx[k]] * g[trow_idx[k], :].
void SpmmBackwardX(const CsrPattern& p, const float* wv, const float* g, float* gx, int cols) {
  const int* tcol_ptr = p.tcol_ptr.data();
  const int* trow_idx = p.trow_idx.data();
  const int* tedge_idx = p.tedge_idx.data();
  util::ParallelFor(0, p.num_cols, SpmmGrain(p.num_cols, p.nnz(), cols),
                    [=](int64_t ib, int64_t ie) {
                      const bool use_simd = simd::Enabled();
                      for (int64_t i = ib; i < ie; ++i) {
                        float* gx_row = gx + static_cast<size_t>(i) * cols;
                        for (int k = tcol_ptr[i]; k < tcol_ptr[i + 1]; ++k) {
                          const float* g_row = g + static_cast<size_t>(trow_idx[k]) * cols;
                          const float w = wv ? wv[tedge_idx[k]] : 1.0f;
                          if (use_simd) {
                            simd::AxpyF32(w, g_row, gx_row, cols);
                            continue;
                          }
                          for (int c = 0; c < cols; ++c) gx_row[c] += w * g_row[c];
                        }
                      }
                    });
}

// dW[edge_idx[k]] += <g[row of k, :], x[col_idx[k], :]>. Partitioned over
// output rows; every edge id appears exactly once in the pattern, so each
// grad slot has a single writer.
void SpmmBackwardW(const CsrPattern& p, const float* g, const float* xv, float* gw, int cols) {
  const int* row_ptr = p.row_ptr.data();
  const int* col_idx = p.col_idx.data();
  const int* edge_idx = p.edge_idx.data();
  util::ParallelFor(0, p.num_rows, SpmmGrain(p.num_rows, p.nnz(), cols),
                    [=](int64_t rb, int64_t re) {
                      // The SIMD dot is the shared DotF32 reduction (ulp-
                      // bounded class) — the same kernel RowScale's dscale
                      // uses, so the fused-vs-chain backward identity stays
                      // bitwise between the two paths.
                      const bool use_simd = simd::Enabled();
                      for (int64_t j = rb; j < re; ++j) {
                        const float* g_row = g + static_cast<size_t>(j) * cols;
                        for (int k = row_ptr[j]; k < row_ptr[j + 1]; ++k) {
                          const float* x_row = xv + static_cast<size_t>(col_idx[k]) * cols;
                          if (use_simd) {
                            gw[edge_idx[k]] += simd::DotF32(g_row, x_row, cols);
                            continue;
                          }
                          float acc = 0.0f;
                          for (int c = 0; c < cols; ++c) acc += g_row[c] * x_row[c];
                          gw[edge_idx[k]] += acc;
                        }
                      }
                    });
}

void CheckPattern(const CsrPatternRef& pattern, const Tensor& x, const char* op) {
  CHECK(pattern != nullptr) << op << ": null CSR pattern";
  CHECK_EQ(pattern->num_cols, x.rows()) << op << ": pattern/input row mismatch";
}

}  // namespace

Tensor SpmmCsr(const CsrPatternRef& pattern, const Tensor& x) {
  CheckPattern(pattern, x, "SpmmCsr");
  const int cols = x.cols();
  obs::ScopedSpan span("tensor.SpmmCsr", obs::FlightPolicy::kSkip);
  // bf16 eval tier: gather x rows at half width inside an EvalScope when no
  // gradient is needed and no tape is recording (tensor/bf16.h).
  const uint16_t* xp = nullptr;
  if (bf16::EvalScope::Active() && !rec::Recording() && !x.requires_grad()) {
    xp = bf16::PackedOperand(x.node().get());
  }
  RecordSpmmMetrics(*pattern, cols, xp != nullptr);
  auto out = NewNodeUninit(pattern->num_rows, cols);
  const float* xv = x.values().data();
  float* ov = out->values.data();
  SpmmForward(*pattern, nullptr, xv, xp, ov, cols);
  if (xp != nullptr || simd::Enabled()) {
    simd::CountSweep(static_cast<int64_t>(pattern->nnz()) * cols);
  }
  if (rec::Recording()) {
    rec::Record("SpmmCsr", out, {x.node()}, [pattern, xv, ov, cols]() {
      SpmmForward(*pattern, nullptr, xv, nullptr, ov, cols);
    });
  }
  bf16::MaybePackOutput(out.get());
  AttachBackward(out, {x}, [pattern, cols](TensorNode* o) {
    TensorNode* xn = o->parents[0].get();
    if (!xn->requires_grad) return;
    xn->EnsureGrad();
    SpmmBackwardX(*pattern, nullptr, o->grad.data(), xn->grad.data(), cols);
  });
  return Tensor::FromNode(out);
}

Tensor SpmmCsrWeighted(const CsrPatternRef& pattern, const Tensor& weights, const Tensor& x) {
  CheckPattern(pattern, x, "SpmmCsrWeighted");
  CHECK_EQ(weights.rows(), pattern->num_edges) << "SpmmCsrWeighted: weight vector length";
  CHECK_EQ(weights.cols(), 1);
  const int cols = x.cols();
  obs::ScopedSpan span("tensor.SpmmCsr", obs::FlightPolicy::kSkip);
  // Only x moves nnz*cols bytes; the weight vector stays f32 (it is nnz
  // floats, typically a fresh per-probe mask with no reuse to amortize a
  // pack against).
  const uint16_t* xp = nullptr;
  if (bf16::EvalScope::Active() && !rec::Recording() && !x.requires_grad() &&
      !weights.requires_grad()) {
    xp = bf16::PackedOperand(x.node().get());
  }
  RecordSpmmMetrics(*pattern, cols, xp != nullptr);
  auto out = NewNodeUninit(pattern->num_rows, cols);
  const float* wv = weights.values().data();
  const float* xv = x.values().data();
  float* ov = out->values.data();
  SpmmForward(*pattern, wv, xv, xp, ov, cols);
  if (xp != nullptr || simd::Enabled()) {
    simd::CountSweep(static_cast<int64_t>(pattern->nnz()) * cols);
  }
  if (rec::Recording()) {
    rec::Record("SpmmCsrWeighted", out, {weights.node(), x.node()},
                [pattern, wv, xv, ov, cols]() {
                  SpmmForward(*pattern, wv, xv, nullptr, ov, cols);
                });
  }
  bf16::MaybePackOutput(out.get());
  AttachBackward(out, {weights, x}, [pattern, cols](TensorNode* o) {
    TensorNode* wn = o->parents[0].get();
    TensorNode* xn = o->parents[1].get();
    if (xn->requires_grad) {
      xn->EnsureGrad();
      SpmmBackwardX(*pattern, wn->values.data(), o->grad.data(), xn->grad.data(), cols);
    }
    if (wn->requires_grad) {
      wn->EnsureGrad();
      SpmmBackwardW(*pattern, o->grad.data(), xn->values.data(), wn->grad.data(), cols);
    }
  });
  return Tensor::FromNode(out);
}

Tensor SpmmCsrMean(const CsrPatternRef& pattern, const Tensor& x) {
  CheckPattern(pattern, x, "SpmmCsrMean");
  const int cols = x.cols();
  obs::ScopedSpan span("tensor.SpmmCsr", obs::FlightPolicy::kSkip);
  const uint16_t* xp = nullptr;
  if (bf16::EvalScope::Active() && !rec::Recording() && !x.requires_grad()) {
    xp = bf16::PackedOperand(x.node().get());
  }
  RecordSpmmMetrics(*pattern, cols, xp != nullptr);
  // Mean = sum with per-nonzero weight 1/degree(row); rows with no nonzeros
  // keep their zero initialization. The weight vector is indexed by edge id
  // so the same kernels apply unchanged.
  auto degree_weights = std::make_shared<std::vector<float>>(
      static_cast<size_t>(pattern->num_edges), 0.0f);
  for (int j = 0; j < pattern->num_rows; ++j) {
    const int begin = pattern->row_ptr[static_cast<size_t>(j)];
    const int end = pattern->row_ptr[static_cast<size_t>(j) + 1];
    if (begin == end) continue;
    const float inv = 1.0f / static_cast<float>(end - begin);
    for (int k = begin; k < end; ++k) {
      (*degree_weights)[static_cast<size_t>(pattern->edge_idx[static_cast<size_t>(k)])] = inv;
    }
  }
  auto out = NewNodeUninit(pattern->num_rows, cols);
  const float* xv = x.values().data();
  float* ov = out->values.data();
  SpmmForward(*pattern, degree_weights->data(), xv, xp, ov, cols);
  if (xp != nullptr || simd::Enabled()) {
    simd::CountSweep(static_cast<int64_t>(pattern->nnz()) * cols);
  }
  if (rec::Recording()) {
    rec::Record("SpmmCsrMean", out, {x.node()}, [pattern, degree_weights, xv, ov, cols]() {
      SpmmForward(*pattern, degree_weights->data(), xv, nullptr, ov, cols);
    });
  }
  bf16::MaybePackOutput(out.get());
  AttachBackward(out, {x}, [pattern, degree_weights, cols](TensorNode* o) {
    TensorNode* xn = o->parents[0].get();
    if (!xn->requires_grad) return;
    xn->EnsureGrad();
    SpmmBackwardX(*pattern, degree_weights->data(), o->grad.data(), xn->grad.data(), cols);
  });
  return Tensor::FromNode(out);
}

}  // namespace revelio::tensor
