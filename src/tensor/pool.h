#ifndef REVELIO_TENSOR_POOL_H_
#define REVELIO_TENSOR_POOL_H_

// Pooled tensor storage with per-thread size-class free lists.
//
// Revelio's mask learning rebuilds the full autograd tape every Adam epoch
// from tensors of the *same* shapes, so the allocator sees the same exact
// sequence of sizes hundreds of times per explained instance. The pool turns
// that churn into free-list reuse: every TensorNode buffer (values and grad)
// is acquired from the current thread's pool and returned to it when the
// node dies. Buckets are keyed by exact element count; after a short warmup
// an explanation epoch performs zero pool misses (asserted in tests via the
// tensor.pool.miss counter).
//
// Threading: each thread owns an independent pool (no locks). A buffer
// released on a different thread than it was acquired on simply lands in the
// releasing thread's free lists — safe, and irrelevant in practice because
// ExplainAll parallelizes per instance, so each worker's explanations are
// self-contained. Per-thread PoolStats are plain counters read only by the
// owning thread; cross-thread visibility goes through the obs counters
// tensor.pool.{hit,miss,bytes_in_use,bytes_peak} instead.
//
// Toggles:
//   REVELIO_TENSOR_POOL=0  (env) or SetPoolEnabled(false): every acquisition
//     falls back to a plain zero-initialized allocation and releases free
//     immediately — the legacy allocator, bitwise-identical numerics.
//   REVELIO_POISON_POOL=1  (env) or SetPoolPoison(true): recycled buffers
//     are filled with a signaling NaN pattern on release, so any kernel that
//     reads an "uninitialized" acquisition before writing it propagates NaNs
//     into results the test suites catch.

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace revelio::tensor {

// Process-wide switches (relaxed atomics; defaults read the environment once).
bool PoolEnabled();
void SetPoolEnabled(bool enabled);
bool PoolPoisonEnabled();
void SetPoolPoison(bool enabled);

// Counters for one thread's pool. Plain (non-atomic) — owner-thread reads
// only. Byte figures track float payload (count * sizeof(float)).
struct PoolStats {
  uint64_t hits = 0;      // acquisitions served from a free list
  uint64_t misses = 0;    // acquisitions that had to allocate
  uint64_t releases = 0;  // buffers returned (retained or discarded)
  uint64_t discards = 0;  // releases dropped by the retention cap
  uint64_t bytes_in_use = 0;    // acquired minus released (clamped at 0)
  uint64_t bytes_peak = 0;      // high-water mark of bytes_in_use
  uint64_t bytes_retained = 0;  // currently parked in free lists
};

// One thread's free lists. Use the free functions below on hot paths; they
// handle the disabled/teardown fallbacks.
class TensorPool {
 public:
  // The calling thread's pool, or nullptr after the thread's pool has been
  // destroyed (thread_local teardown order) — callers must fall back to
  // plain allocation then.
  static TensorPool* ThreadLocal();

  // A buffer of exactly `count` floats with unspecified contents: recycled
  // (dirty, or poisoned under REVELIO_POISON_POOL) on a hit, zero-filled on
  // a miss (std::vector value-initializes fresh storage).
  std::vector<float> Acquire(size_t count);
  // Same, but guaranteed all-zero.
  std::vector<float> AcquireZeroed(size_t count);

  // Parks `*buffer` in its size bucket (or frees it when the retention cap
  // is reached) and leaves `*buffer` empty. Accepts foreign buffers that
  // were never acquired from any pool.
  void Release(std::vector<float>* buffer);

  // Drops every free list (bytes_retained -> 0).
  void Trim();
  // Drops retained buffers until bytes_retained <= bytes_peak. MemoryScope
  // calls this on exit so a one-off large explanation cannot pin memory.
  void TrimToHighWater();

  const PoolStats& stats() const { return stats_; }
  void ResetStats();

 private:
  void DiscardUntil(uint64_t target_retained_bytes);

  std::unordered_map<size_t, std::vector<std::vector<float>>> buckets_;
  PoolStats stats_;
};

// Hot-path entry points used by TensorNode and the op helpers. When the pool
// is disabled (or this thread's pool is already torn down) they degrade to a
// plain zero-initialized allocation / normal free.
std::vector<float> AcquireBuffer(size_t count);        // unspecified contents
std::vector<float> AcquireZeroedBuffer(size_t count);  // all zeros
void ReleaseBuffer(std::vector<float>* buffer);

// RAII scope for one explanation / training run: publishes the scope's pool
// delta to the obs gauges and trims the thread's retention back to its
// in-use high-water mark on exit.
class MemoryScope {
 public:
  explicit MemoryScope(const char* label);
  ~MemoryScope();
  MemoryScope(const MemoryScope&) = delete;
  MemoryScope& operator=(const MemoryScope&) = delete;

  // Stats accumulated since the scope opened (zeros if the pool is gone).
  PoolStats Delta() const;

 private:
  const char* label_;
  PoolStats entry_;
};

}  // namespace revelio::tensor

#endif  // REVELIO_TENSOR_POOL_H_
