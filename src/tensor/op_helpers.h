#ifndef REVELIO_TENSOR_OP_HELPERS_H_
#define REVELIO_TENSOR_OP_HELPERS_H_

// Shared plumbing for op implementations. Internal to src/tensor.

#include <algorithm>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <memory>
#include <vector>

#include "tensor/tensor.h"
#include "util/parallel.h"

namespace revelio::tensor {

// Parallelization grains (items per chunk), sized so small tensors stay on
// the single-call serial path of util::ParallelFor.
constexpr int64_t kElementwiseGrain = int64_t{1} << 14;  // flat floats per chunk

// Rows per chunk for row-partitioned kernels whose per-row cost is
// `per_row_cost` (flops or floats touched).
inline int64_t RowGrain(int64_t per_row_cost) {
  constexpr int64_t kMinChunkCost = int64_t{1} << 15;
  return std::max<int64_t>(1, kMinChunkCost / std::max<int64_t>(1, per_row_cost));
}

// Allocates a zero-initialized result node (pool-backed). Kernels that
// accumulate with += into their output need this variant.
std::shared_ptr<internal::TensorNode> NewNode(int rows, int cols);

// Result node with the same shape as `like`.
std::shared_ptr<internal::TensorNode> NewNodeLike(const Tensor& like);

// Result node with unspecified contents: for kernels that fully overwrite
// their output (elementwise, gather, concat, softmax) or zero it themselves
// inside the parallel region. Recycled pool buffers skip the zero-fill;
// under REVELIO_POISON_POOL they arrive NaN-filled instead, so a kernel that
// violates the full-overwrite contract fails the numeric suites.
std::shared_ptr<internal::TensorNode> NewNodeUninit(int rows, int cols);
std::shared_ptr<internal::TensorNode> NewNodeLikeUninit(const Tensor& like);

// If any input requires grad, records `inputs` as parents of `out` and
// installs `backward` (invoked with the raw result node; parents are
// reachable as out->parents in the same order as `inputs`). Otherwise the
// result stays detached from the graph.
void AttachBackward(const std::shared_ptr<internal::TensorNode>& out,
                    std::initializer_list<Tensor> inputs,
                    std::function<void(internal::TensorNode*)> backward);

// target->grad[i] += scale * grad[i] for all i (no-op if target does not
// require grad). Shapes must match.
void AccumulateInto(internal::TensorNode* target, const std::vector<float>& grad, float scale);

// CHECK-fails unless a and b have identical shapes.
void CheckSameShape(const Tensor& a, const Tensor& b, const char* op_name);

}  // namespace revelio::tensor

#endif  // REVELIO_TENSOR_OP_HELPERS_H_
