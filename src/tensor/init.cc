#include "tensor/init.h"

#include <cmath>

namespace revelio::tensor {

Tensor XavierUniform(int fan_in, int fan_out, util::Rng* rng) {
  const float a = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return Tensor::Uniform(fan_in, fan_out, -a, a, rng);
}

Tensor HeNormal(int fan_in, int fan_out, util::Rng* rng) {
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  Tensor t = Tensor::Randn(fan_in, fan_out, rng);
  for (auto& v : *t.mutable_values()) v *= stddev;
  return t;
}

}  // namespace revelio::tensor
