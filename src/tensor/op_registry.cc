#include "tensor/op_registry.h"

#include <algorithm>

namespace revelio::tensor {

const std::vector<std::string>& RegisteredOpNames() {
  static const std::vector<std::string>* const kNames = new std::vector<std::string>{
      // Elementwise binary.
      "Add", "Sub", "Mul", "AddRowBroadcast",
      // Scalar.
      "AddScalar", "MulScalar", "Neg", "ScaleByScalarTensor",
      // Activations.
      "Relu", "LeakyRelu", "Tanh", "Sigmoid", "Exp", "Log", "Softplus",
      // Linear algebra.
      "MatMul",
      // Reductions.
      "Sum", "Mean",
      // Row-wise softmax.
      "RowSoftmax", "RowLogSoftmax",
      // Indexing / message passing.
      "GatherRows", "ScatterAddRows", "RowScale", "ConcatCols", "SegmentSoftmax",
      "SegmentMeanRows", "SegmentSumRows", "SegmentMaxRows", "Select", "SelectMany", "NllLoss",
      // Fused sparse aggregation.
      "SpmmCsr", "SpmmCsrWeighted", "SpmmCsrMean",
  };
  return *kNames;
}

bool IsRegisteredOp(const std::string& name) {
  const std::vector<std::string>& names = RegisteredOpNames();
  return std::find(names.begin(), names.end(), name) != names.end();
}

}  // namespace revelio::tensor
