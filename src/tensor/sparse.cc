#include "tensor/sparse.h"

#include "util/check.h"

namespace revelio::tensor {

CsrPatternRef BuildCsrPattern(int num_rows, int num_cols, const std::vector<int>& rows,
                              const std::vector<int>& cols) {
  CHECK(num_rows >= 0 && num_cols >= 0) << "BuildCsrPattern: negative shape";
  CHECK_EQ(rows.size(), cols.size()) << "BuildCsrPattern: rows/cols length mismatch";
  const int nnz = static_cast<int>(rows.size());

  auto pattern = std::make_shared<CsrPattern>();
  pattern->num_rows = num_rows;
  pattern->num_cols = num_cols;
  pattern->num_edges = nnz;

  pattern->row_ptr.assign(static_cast<size_t>(num_rows) + 1, 0);
  pattern->tcol_ptr.assign(static_cast<size_t>(num_cols) + 1, 0);
  for (int k = 0; k < nnz; ++k) {
    const int r = rows[static_cast<size_t>(k)];
    const int c = cols[static_cast<size_t>(k)];
    CHECK(r >= 0 && r < num_rows) << "BuildCsrPattern: row index " << r << " out of range";
    CHECK(c >= 0 && c < num_cols) << "BuildCsrPattern: col index " << c << " out of range";
    ++pattern->row_ptr[static_cast<size_t>(r) + 1];
    ++pattern->tcol_ptr[static_cast<size_t>(c) + 1];
  }
  for (int r = 0; r < num_rows; ++r) {
    pattern->row_ptr[static_cast<size_t>(r) + 1] += pattern->row_ptr[static_cast<size_t>(r)];
  }
  for (int c = 0; c < num_cols; ++c) {
    pattern->tcol_ptr[static_cast<size_t>(c) + 1] += pattern->tcol_ptr[static_cast<size_t>(c)];
  }

  pattern->col_idx.resize(static_cast<size_t>(nnz));
  pattern->edge_idx.resize(static_cast<size_t>(nnz));
  pattern->trow_idx.resize(static_cast<size_t>(nnz));
  pattern->tedge_idx.resize(static_cast<size_t>(nnz));

  // Stable counting-sort passes in increasing k: entries within each row (and
  // each transpose column) stay in increasing edge order, reproducing the
  // legacy serial scatter-scan accumulation order bit for bit.
  std::vector<int> fill(pattern->row_ptr.begin(), pattern->row_ptr.end() - 1);
  std::vector<int> tfill(pattern->tcol_ptr.begin(), pattern->tcol_ptr.end() - 1);
  for (int k = 0; k < nnz; ++k) {
    const int r = rows[static_cast<size_t>(k)];
    const int c = cols[static_cast<size_t>(k)];
    const int slot = fill[static_cast<size_t>(r)]++;
    pattern->col_idx[static_cast<size_t>(slot)] = c;
    pattern->edge_idx[static_cast<size_t>(slot)] = k;
    const int tslot = tfill[static_cast<size_t>(c)]++;
    pattern->trow_idx[static_cast<size_t>(tslot)] = r;
    pattern->tedge_idx[static_cast<size_t>(tslot)] = k;
  }
  return pattern;
}

}  // namespace revelio::tensor
