#ifndef REVELIO_TENSOR_BF16_H_
#define REVELIO_TENSOR_BF16_H_

// bf16 storage tier for inference-only evaluation passes.
//
// Fidelity sweeps and AUC scoring (src/eval) re-run the frozen model's
// forward pass hundreds of times per instance; those probes are memory-bound
// on the feature/weight streams. Inside an EvalScope (and only when
// REVELIO_EVAL_BF16=1), MatMul and the SpMM family read eligible operands
// from a bfloat16-packed side buffer cached on the tensor node — halving
// operand traffic — and widen lanes back to f32 on the fly inside the SIMD
// loops (tensor/simd.h). All arithmetic, accumulation and outputs stay f32;
// only the STORAGE of operands is narrowed.
//
// Training and gradient paths are never touched: the tier disengages when
// any input requires grad, when a plan tape is recording, or outside an
// EvalScope. The committed goldens and every tier-1 suite run with the env
// toggle off; tests/prop/bf16_eval_test.cc proves the stated-epsilon bound
// and that flow rankings / Fid orderings are unchanged on the oracle graphs.
//
// Conversion is round-to-nearest-even on the high 16 bits of the f32
// pattern (|x - roundtrip(x)| <= 2^-8 |x| for finite x, Inf exact, NaN kept
// NaN); widening is a zero-extend and therefore exact. See simd::PackBf16.
//
// Cache coherence: the packed buffer mirrors node->values at pack time and
// is dropped by every in-place mutation path (Tensor::SetAt,
// Tensor::mutable_values — the optimizer route — and plan replay). Packing
// is guarded by a striped mutex so concurrent eval workers can share frozen
// weights; readers follow the same no-concurrent-mutation contract as the
// f32 buffer itself.

#include <cstdint>
#include <memory>

#include "tensor/tensor.h"

namespace revelio::tensor::bf16 {

// Process-wide toggle, default off; initialized from REVELIO_EVAL_BF16
// (1/true/on enable).
bool EvalStorageEnabled();
void SetEvalStorage(bool enabled);

// RAII marker for an inference-only region on the current thread. Nestable.
class EvalScope {
 public:
  EvalScope();
  ~EvalScope();
  EvalScope(const EvalScope&) = delete;
  EvalScope& operator=(const EvalScope&) = delete;
  // True when the calling thread is inside a scope AND the toggle is on.
  static bool Active();
};

// Packed view of `node`'s values for use as a kernel operand, or nullptr
// when the tier must not engage: outside an active scope, for grad-bearing
// nodes, or for unpacked intermediates (non-leaf nodes only return their
// producer-packed cache; leaves are packed on first use and cached).
const uint16_t* PackedOperand(internal::TensorNode* node);

// Packs `node`'s just-computed values into its cache so downstream eval ops
// read 2-byte operands. No-op unless EvalScope::Active() and the node is
// grad-free. Called by the forward ops on the inference path right after
// they fill values.
void MaybePackOutput(internal::TensorNode* node);

// Drops the packed cache (no-op when none). Must be called by every path
// that mutates node->values in place.
void InvalidatePacked(internal::TensorNode* node);

// Scalar converts, exposed for tests (kernel sweeps live in tensor/simd.h).
uint16_t FromF32(float value);
float ToF32(uint16_t packed);

}  // namespace revelio::tensor::bf16

#endif  // REVELIO_TENSOR_BF16_H_
