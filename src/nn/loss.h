#ifndef REVELIO_NN_LOSS_H_
#define REVELIO_NN_LOSS_H_

// Losses and probability helpers shared by the GNN trainer and explainers.

#include <vector>

#include "tensor/tensor.h"

namespace revelio::nn {

// Mean cross-entropy of raw logits (N x C) against integer targets.
tensor::Tensor CrossEntropyFromLogits(const tensor::Tensor& logits,
                                      const std::vector<int>& targets);

// Differentiable P(Y = cls) for one row of logits (softmax of that row).
tensor::Tensor ClassProbability(const tensor::Tensor& logits, int row, int cls);

// Paper Eq. (1): factual explanation objective -log P(Y = c | ...).
tensor::Tensor FactualObjective(const tensor::Tensor& logits, int row, int cls);

// Paper Eq. (2): counterfactual objective -log(1 - P(Y = c | ...)).
tensor::Tensor CounterfactualObjective(const tensor::Tensor& logits, int row, int cls);

// Fraction of rows whose argmax equals the target (non-differentiable).
double Accuracy(const tensor::Tensor& logits, const std::vector<int>& targets,
                const std::vector<int>& row_subset = {});

// Argmax class of a logits row.
int ArgmaxRow(const tensor::Tensor& logits, int row);

// Softmax probabilities of one logits row (non-differentiable convenience).
std::vector<double> SoftmaxRow(const tensor::Tensor& logits, int row);

}  // namespace revelio::nn

#endif  // REVELIO_NN_LOSS_H_
