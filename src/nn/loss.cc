#include "nn/loss.h"

#include <cmath>

#include "tensor/ops.h"

namespace revelio::nn {

tensor::Tensor CrossEntropyFromLogits(const tensor::Tensor& logits,
                                      const std::vector<int>& targets) {
  return tensor::NllLoss(tensor::RowLogSoftmax(logits), targets);
}

tensor::Tensor ClassProbability(const tensor::Tensor& logits, int row, int cls) {
  return tensor::Select(tensor::RowSoftmax(logits), row, cls);
}

tensor::Tensor FactualObjective(const tensor::Tensor& logits, int row, int cls) {
  return tensor::Neg(tensor::Log(ClassProbability(logits, row, cls)));
}

tensor::Tensor CounterfactualObjective(const tensor::Tensor& logits, int row, int cls) {
  tensor::Tensor p = ClassProbability(logits, row, cls);
  // -log(1 - p), i.e. binary cross entropy against target 0 (paper Eq. 2).
  return tensor::Neg(tensor::Log(tensor::AddScalar(tensor::Neg(p), 1.0f)));
}

double Accuracy(const tensor::Tensor& logits, const std::vector<int>& targets,
                const std::vector<int>& row_subset) {
  CHECK_EQ(logits.rows(), static_cast<int>(targets.size()));
  std::vector<int> rows = row_subset;
  if (rows.empty()) {
    rows.resize(targets.size());
    for (size_t i = 0; i < targets.size(); ++i) rows[i] = static_cast<int>(i);
  }
  if (rows.empty()) return 0.0;
  int correct = 0;
  for (int r : rows) {
    if (ArgmaxRow(logits, r) == targets[r]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(rows.size());
}

int ArgmaxRow(const tensor::Tensor& logits, int row) {
  int best = 0;
  float best_v = logits.At(row, 0);
  for (int c = 1; c < logits.cols(); ++c) {
    if (logits.At(row, c) > best_v) {
      best_v = logits.At(row, c);
      best = c;
    }
  }
  return best;
}

std::vector<double> SoftmaxRow(const tensor::Tensor& logits, int row) {
  std::vector<double> probs(logits.cols());
  double max_v = logits.At(row, 0);
  for (int c = 1; c < logits.cols(); ++c) max_v = std::max<double>(max_v, logits.At(row, c));
  double denom = 0.0;
  for (int c = 0; c < logits.cols(); ++c) {
    probs[c] = std::exp(logits.At(row, c) - max_v);
    denom += probs[c];
  }
  for (auto& p : probs) p /= denom;
  return probs;
}

}  // namespace revelio::nn
