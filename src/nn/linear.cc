#include "nn/linear.h"

#include "tensor/init.h"
#include "tensor/ops.h"

namespace revelio::nn {

Linear::Linear(int in_features, int out_features, util::Rng* rng, bool bias)
    : in_features_(in_features), out_features_(out_features) {
  weight_ = RegisterParameter(tensor::XavierUniform(in_features, out_features, rng));
  if (bias) {
    bias_ = RegisterParameter(tensor::Tensor::Zeros(1, out_features));
  }
}

tensor::Tensor Linear::Forward(const tensor::Tensor& input) const {
  tensor::Tensor out = tensor::MatMul(input, weight_);
  if (bias_.defined()) out = tensor::AddRowBroadcast(out, bias_);
  return out;
}

Mlp::Mlp(const std::vector<int>& dims, util::Rng* rng) {
  CHECK_GE(dims.size(), 2u);
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.push_back(std::make_unique<Linear>(dims[i], dims[i + 1], rng));
    RegisterChild(layers_.back().get());
  }
}

tensor::Tensor Mlp::Forward(const tensor::Tensor& input) const {
  tensor::Tensor h = input;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i]->Forward(h);
    if (i + 1 < layers_.size()) h = tensor::Relu(h);
  }
  return h;
}

}  // namespace revelio::nn
