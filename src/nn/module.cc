#include "nn/module.h"

namespace revelio::nn {

std::vector<tensor::Tensor> Module::Parameters() const {
  std::vector<tensor::Tensor> all = parameters_;
  for (const Module* child : children_) {
    auto child_params = child->Parameters();
    all.insert(all.end(), child_params.begin(), child_params.end());
  }
  return all;
}

int64_t Module::NumParameters() const {
  int64_t total = 0;
  for (const auto& p : Parameters()) total += p.numel();
  return total;
}

void Module::Freeze() {
  for (auto& p : parameters_) p.DisableGrad();
  for (Module* child : children_) child->Freeze();
}

tensor::Tensor Module::RegisterParameter(tensor::Tensor parameter) {
  parameter.WithRequiresGrad();
  parameters_.push_back(parameter);
  return parameter;
}

void Module::RegisterChild(Module* child) {
  CHECK(child != nullptr);
  children_.push_back(child);
}

}  // namespace revelio::nn
