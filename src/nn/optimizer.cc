#include "nn/optimizer.h"

#include <cmath>

namespace revelio::nn {

void Optimizer::ZeroGrad() {
  for (auto& p : parameters_) p.ZeroGrad();
}

Sgd::Sgd(std::vector<tensor::Tensor> parameters, float learning_rate, float weight_decay)
    : Optimizer(std::move(parameters)),
      learning_rate_(learning_rate),
      weight_decay_(weight_decay) {}

void Sgd::Step() {
  for (auto& p : parameters_) {
    const std::vector<float>& grad = p.GradValues();
    if (grad.empty()) continue;
    std::vector<float>* values = p.mutable_values();
    for (size_t i = 0; i < values->size(); ++i) {
      const float g = grad[i] + weight_decay_ * (*values)[i];
      (*values)[i] -= learning_rate_ * g;
    }
  }
}

Adam::Adam(std::vector<tensor::Tensor> parameters, float learning_rate, float beta1, float beta2,
           float epsilon, float weight_decay)
    : Optimizer(std::move(parameters)),
      learning_rate_(learning_rate),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon),
      weight_decay_(weight_decay) {
  first_moment_.resize(parameters_.size());
  second_moment_.resize(parameters_.size());
  for (size_t i = 0; i < parameters_.size(); ++i) {
    first_moment_[i].assign(parameters_[i].numel(), 0.0f);
    second_moment_[i].assign(parameters_[i].numel(), 0.0f);
  }
}

void Adam::Step() {
  ++step_count_;
  const float bias1 = 1.0f - std::pow(beta1_, static_cast<float>(step_count_));
  const float bias2 = 1.0f - std::pow(beta2_, static_cast<float>(step_count_));
  for (size_t pi = 0; pi < parameters_.size(); ++pi) {
    auto& p = parameters_[pi];
    const std::vector<float>& grad = p.GradValues();
    if (grad.empty()) continue;
    std::vector<float>* values = p.mutable_values();
    auto& m = first_moment_[pi];
    auto& v = second_moment_[pi];
    for (size_t i = 0; i < values->size(); ++i) {
      const float g = grad[i] + weight_decay_ * (*values)[i];
      m[i] = beta1_ * m[i] + (1.0f - beta1_) * g;
      v[i] = beta2_ * v[i] + (1.0f - beta2_) * g * g;
      const float m_hat = m[i] / bias1;
      const float v_hat = v[i] / bias2;
      (*values)[i] -= learning_rate_ * m_hat / (std::sqrt(v_hat) + epsilon_);
    }
  }
}

}  // namespace revelio::nn
