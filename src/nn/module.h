#ifndef REVELIO_NN_MODULE_H_
#define REVELIO_NN_MODULE_H_

// Base class providing a recursive trainable-parameter registry, mirroring
// the torch.nn.Module idiom that GNN layers and explainers are built on.

#include <vector>

#include "tensor/tensor.h"

namespace revelio::nn {

class Module {
 public:
  virtual ~Module() = default;

  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  // All trainable parameters of this module and its registered children.
  std::vector<tensor::Tensor> Parameters() const;

  // Number of scalar parameters (for reporting).
  int64_t NumParameters() const;

  // Clears requires_grad on every parameter (recursively). A frozen module
  // can be shared by concurrent backward passes: autograd never visits its
  // parameter nodes, so no thread writes their grad buffers. Training after
  // Freeze() is not supported.
  void Freeze();

 protected:
  // Records a leaf tensor as trainable and returns it (sets requires_grad).
  tensor::Tensor RegisterParameter(tensor::Tensor parameter);

  // Records a child whose parameters are included in Parameters(). The child
  // must outlive this module (typically it is a member).
  void RegisterChild(Module* child);

 private:
  std::vector<tensor::Tensor> parameters_;
  std::vector<Module*> children_;
};

}  // namespace revelio::nn

#endif  // REVELIO_NN_MODULE_H_
