#ifndef REVELIO_NN_LINEAR_H_
#define REVELIO_NN_LINEAR_H_

// Fully-connected layers and small MLPs.

#include <memory>
#include <vector>

#include "nn/module.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace revelio::nn {

// y = x W + b with W Xavier-initialized.
class Linear : public Module {
 public:
  Linear(int in_features, int out_features, util::Rng* rng, bool bias = true);

  tensor::Tensor Forward(const tensor::Tensor& input) const;

  int in_features() const { return in_features_; }
  int out_features() const { return out_features_; }
  const tensor::Tensor& weight() const { return weight_; }
  const tensor::Tensor& bias() const { return bias_; }

 private:
  int in_features_;
  int out_features_;
  tensor::Tensor weight_;  // in x out
  tensor::Tensor bias_;    // 1 x out (undefined when bias = false)
};

// Stack of Linear layers with ReLU between hidden layers (none after the
// final layer). `dims` lists layer widths, e.g. {16, 32, 2}.
class Mlp : public Module {
 public:
  Mlp(const std::vector<int>& dims, util::Rng* rng);

  tensor::Tensor Forward(const tensor::Tensor& input) const;

  int num_layers() const { return static_cast<int>(layers_.size()); }

 private:
  std::vector<std::unique_ptr<Linear>> layers_;
};

}  // namespace revelio::nn

#endif  // REVELIO_NN_LINEAR_H_
