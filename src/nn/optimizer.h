#ifndef REVELIO_NN_OPTIMIZER_H_
#define REVELIO_NN_OPTIMIZER_H_

// First-order optimizers operating on leaf parameter tensors.

#include <vector>

#include "tensor/tensor.h"

namespace revelio::nn {

class Optimizer {
 public:
  explicit Optimizer(std::vector<tensor::Tensor> parameters)
      : parameters_(std::move(parameters)) {}
  virtual ~Optimizer() = default;

  // Applies one update using the gradients currently stored on parameters.
  virtual void Step() = 0;

  // Clears parameter gradients; call between iterations.
  void ZeroGrad();

 protected:
  std::vector<tensor::Tensor> parameters_;
};

// Plain SGD with optional weight decay.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<tensor::Tensor> parameters, float learning_rate, float weight_decay = 0.0f);
  void Step() override;

 private:
  float learning_rate_;
  float weight_decay_;
};

// Adam (Kingma & Ba) with bias correction; the optimizer used for GNN
// training and mask learning throughout the paper's experiments.
class Adam : public Optimizer {
 public:
  Adam(std::vector<tensor::Tensor> parameters, float learning_rate, float beta1 = 0.9f,
       float beta2 = 0.999f, float epsilon = 1e-8f, float weight_decay = 0.0f);
  void Step() override;

 private:
  float learning_rate_;
  float beta1_;
  float beta2_;
  float epsilon_;
  float weight_decay_;
  int step_count_ = 0;
  std::vector<std::vector<float>> first_moment_;
  std::vector<std::vector<float>> second_moment_;
};

}  // namespace revelio::nn

#endif  // REVELIO_NN_OPTIMIZER_H_
