// Tests for the core Revelio explainer: mask machinery (Eqs. 4-9), score
// conventions (§IV-C), regularizer behavior, and end-to-end recovery of a
// planted important edge.

#include "core/revelio.h"

#include <cmath>

#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "explain/random_explainer.h"
#include "gnn/trainer.h"
#include "graph/subgraph.h"
#include "nn/loss.h"

namespace revelio::core {
namespace {

using explain::ExplanationTask;
using explain::Objective;

class RevelioFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    state_ = new State();
    auto& s = *state_;
    // Two communities whose labels are feature-determined; community edges
    // propagate the label signal.
    s.graph = graph::Graph(12);
    for (int i = 0; i < 6; ++i) s.graph.AddUndirectedEdge(i, (i + 1) % 6);
    for (int i = 6; i < 12; ++i) s.graph.AddUndirectedEdge(i, 6 + (i + 1 - 6) % 6);
    s.graph.AddUndirectedEdge(1, 7);
    s.features = tensor::Tensor::Zeros(12, 3);
    for (int v = 0; v < 12; ++v) {
      s.labels.push_back(v < 6 ? 0 : 1);
      s.features.SetAt(v, s.labels[v], 1.0f);
    }
    gnn::GnnConfig config;
    config.arch = gnn::GnnArch::kGcn;
    config.input_dim = 3;
    config.hidden_dim = 8;
    config.num_classes = 2;
    s.model = std::make_unique<gnn::GnnModel>(config);
    util::Rng rng(7);
    gnn::Split split = gnn::MakeSplit(12, 0.8, 0.1, &rng);
    gnn::TrainConfig train_config;
    train_config.epochs = 60;
    gnn::TrainNodeModel(s.model.get(), s.graph, s.features, s.labels, split, train_config);

    graph::Subgraph sub = graph::ExtractKHopInSubgraph(s.graph, 3, 3);
    s.instance_graph = std::move(sub.graph);
    s.instance_features = graph::SliceRows(s.features, sub.node_map);
    s.target = sub.target_local;
  }
  static void TearDownTestSuite() {
    delete state_;
    state_ = nullptr;
  }

  ExplanationTask MakeTask() const {
    ExplanationTask task;
    task.model = state_->model.get();
    task.graph = &state_->instance_graph;
    task.features = state_->instance_features;
    task.target_node = state_->target;
    task.target_class = explain::PredictedClass(task);
    return task;
  }

  struct State {
    graph::Graph graph;
    tensor::Tensor features;
    std::vector<int> labels;
    std::unique_ptr<gnn::GnnModel> model;
    graph::Graph instance_graph;
    tensor::Tensor instance_features;
    int target = 0;
  };
  static State* state_;
};

RevelioFixture::State* RevelioFixture::state_ = nullptr;

RevelioOptions FastOptions() {
  RevelioOptions options;
  options.epochs = 40;
  return options;
}

TEST_F(RevelioFixture, FactualScoresRespectRanges) {
  RevelioExplainer revelio(FastOptions());
  const ExplanationTask task = MakeTask();
  const auto result = revelio.ExplainFlows(task, Objective::kFactual);

  const gnn::LayerEdgeSet edges = gnn::BuildLayerEdges(*task.graph);
  const int64_t expected_flows = flow::CountFlowsToTarget(edges, task.target_node, 3);
  EXPECT_EQ(static_cast<int64_t>(result.flows.num_flows()), expected_flows);
  ASSERT_EQ(static_cast<int>(result.flow_scores.size()), result.flows.num_flows());
  for (double s : result.flow_scores) {
    EXPECT_GT(s, -1.0);  // tanh range (Eq. 4)
    EXPECT_LT(s, 1.0);
  }
  ASSERT_EQ(static_cast<int>(result.layer_edge_masks.size()), 3);
  for (const auto& layer : result.layer_edge_masks) {
    for (double m : layer) {
      EXPECT_GE(m, 0.0);  // sigmoid range (Eq. 5)
      EXPECT_LE(m, 1.0);
    }
  }
  EXPECT_EQ(static_cast<int>(result.edge_scores.size()), task.graph->num_edges());
  EXPECT_EQ(static_cast<int>(result.layer_weights.size()), 3);
}

TEST_F(RevelioFixture, CounterfactualFollowsSectionIVC) {
  // Same seed, zero epochs: the counterfactual run must report exactly the
  // negated flow scores and 1 - mask of the factual run (§IV-C), since no
  // learning separates them.
  RevelioOptions options;
  options.epochs = 0;
  RevelioExplainer revelio(options);
  const ExplanationTask task = MakeTask();
  const auto factual = revelio.ExplainFlows(task, Objective::kFactual);
  const auto counterfactual = revelio.ExplainFlows(task, Objective::kCounterfactual);
  for (int k = 0; k < factual.flows.num_flows(); ++k) {
    EXPECT_NEAR(counterfactual.flow_scores[k], -factual.flow_scores[k], 1e-6);
  }
  for (int l = 0; l < 3; ++l) {
    for (size_t e = 0; e < factual.layer_edge_masks[l].size(); ++e) {
      EXPECT_NEAR(counterfactual.layer_edge_masks[l][e],
                  1.0 - factual.layer_edge_masks[l][e], 1e-6);
    }
  }
}

TEST_F(RevelioFixture, DeterministicAcrossRuns) {
  RevelioExplainer revelio_a(FastOptions());
  RevelioExplainer revelio_b(FastOptions());
  const ExplanationTask task = MakeTask();
  const auto a = revelio_a.Explain(task, Objective::kFactual);
  const auto b = revelio_b.Explain(task, Objective::kFactual);
  for (size_t e = 0; e < a.edge_scores.size(); ++e) {
    EXPECT_NEAR(a.edge_scores[e], b.edge_scores[e], 1e-7);
  }
}

TEST_F(RevelioFixture, StrongerAlphaShrinksFactualMasks) {
  const ExplanationTask task = MakeTask();
  RevelioOptions weak = FastOptions();
  weak.alpha = 0.0f;
  RevelioOptions strong = FastOptions();
  strong.alpha = 2.0f;
  const auto weak_result = RevelioExplainer(weak).ExplainFlows(task, Objective::kFactual);
  const auto strong_result = RevelioExplainer(strong).ExplainFlows(task, Objective::kFactual);
  auto mean_mask = [](const RevelioExplainer::FlowExplanation& r) {
    double total = 0.0;
    int count = 0;
    for (const auto& layer : r.layer_edge_masks) {
      for (double m : layer) {
        total += m;
        ++count;
      }
    }
    return total / count;
  };
  EXPECT_LT(mean_mask(strong_result), mean_mask(weak_result))
      << "Eq. 8's alpha penalizes dense explanations";
}

TEST_F(RevelioFixture, LearningImprovesFactualObjective) {
  // The learned masks should preserve the prediction better than the
  // initial (epoch-0) masks when the same number of edges is kept.
  const ExplanationTask task = MakeTask();
  RevelioOptions untrained = FastOptions();
  untrained.epochs = 0;
  RevelioOptions trained = FastOptions();
  trained.epochs = 120;
  const auto scores_untrained =
      RevelioExplainer(untrained).Explain(task, Objective::kFactual).edge_scores;
  const auto scores_trained =
      RevelioExplainer(trained).Explain(task, Objective::kFactual).edge_scores;
  const double fidelity_untrained = eval::FidelityMinus(task, scores_untrained, 0.5);
  const double fidelity_trained = eval::FidelityMinus(task, scores_trained, 0.5);
  EXPECT_LE(fidelity_trained, fidelity_untrained + 0.05)
      << "training must not hurt the factual objective materially";
}

TEST_F(RevelioFixture, AblationVariantsRun) {
  const ExplanationTask task = MakeTask();
  for (auto scaling : {RevelioOptions::LayerScaling::kExp,
                       RevelioOptions::LayerScaling::kSoftplus,
                       RevelioOptions::LayerScaling::kNone}) {
    for (bool tanh_masks : {true, false}) {
      RevelioOptions options = FastOptions();
      options.epochs = 10;
      options.layer_scaling = scaling;
      options.use_tanh_flow_masks = tanh_masks;
      const auto result = RevelioExplainer(options).Explain(task, Objective::kFactual);
      EXPECT_EQ(static_cast<int>(result.edge_scores.size()), task.graph->num_edges());
    }
  }
}

TEST_F(RevelioFixture, MasksMatchEquationFiveExactly) {
  // With zero training epochs the reported layer-edge masks must equal the
  // hand-computed Eq. 4/5/7 pipeline at initialization: M ~ 0.1*Randn(seed),
  // omega[F] = tanh(M), w = 0 so exp(w_l) = 1, and
  // omega[e^l] = sigmoid(sum of omega[F] over flows on (l, e)).
  RevelioOptions options;
  options.epochs = 0;
  options.seed = 12345;
  RevelioExplainer revelio(options);
  const ExplanationTask task = MakeTask();
  const auto result = revelio.ExplainFlows(task, Objective::kFactual);

  const gnn::LayerEdgeSet edges = gnn::BuildLayerEdges(*task.graph);
  util::Rng rng(options.seed);
  tensor::Tensor m = tensor::Tensor::Randn(result.flows.num_flows(), 1, &rng);
  std::vector<double> omega(result.flows.num_flows());
  for (int k = 0; k < result.flows.num_flows(); ++k) {
    omega[k] = std::tanh(0.1f * m.At(k, 0));
    EXPECT_NEAR(result.flow_scores[k], omega[k], 1e-6);
  }
  for (int l = 0; l < result.flows.num_layers(); ++l) {
    std::vector<double> accumulated(edges.num_layer_edges(), 0.0);
    for (int k = 0; k < result.flows.num_flows(); ++k) {
      accumulated[result.flows.EdgeAt(l, k)] += omega[k];
    }
    for (int e = 0; e < edges.num_layer_edges(); ++e) {
      const double expected = 1.0 / (1.0 + std::exp(-accumulated[e]));
      EXPECT_NEAR(result.layer_edge_masks[l][e], expected, 1e-5)
          << "layer " << l << " edge " << e;
    }
  }
}

TEST_F(RevelioFixture, PrefilterRestrictsToTopKFlows) {
  const ExplanationTask task = MakeTask();
  const gnn::LayerEdgeSet edges = gnn::BuildLayerEdges(*task.graph);
  const int64_t all_flows = flow::CountFlowsToTarget(edges, task.target_node, 3);
  ASSERT_GT(all_flows, 8);

  RevelioOptions options = FastOptions();
  options.prefilter_top_k = 8;
  RevelioExplainer revelio(options);
  const auto result = revelio.ExplainFlows(task, Objective::kFactual);
  EXPECT_EQ(result.flows.num_flows(), 8);
  EXPECT_EQ(result.flow_scores.size(), 8u);
  EXPECT_EQ(static_cast<int>(result.edge_scores.size()), task.graph->num_edges());
  // Every kept flow must still end at the target.
  for (int k = 0; k < result.flows.num_flows(); ++k) {
    EXPECT_EQ(result.flows.FlowNodes(k, edges).back(), task.target_node);
  }
}

TEST_F(RevelioFixture, PrefilterLargerThanFlowCountIsNoOp) {
  const ExplanationTask task = MakeTask();
  RevelioOptions options = FastOptions();
  options.prefilter_top_k = 1'000'000;
  RevelioExplainer revelio(options);
  RevelioOptions baseline_options = FastOptions();
  RevelioExplainer baseline(baseline_options);
  const auto filtered = revelio.ExplainFlows(task, Objective::kFactual);
  const auto full = baseline.ExplainFlows(task, Objective::kFactual);
  EXPECT_EQ(filtered.flows.num_flows(), full.flows.num_flows());
  for (size_t e = 0; e < full.edge_scores.size(); ++e) {
    EXPECT_NEAR(filtered.edge_scores[e], full.edge_scores[e], 1e-7);
  }
}

TEST_F(RevelioFixture, GraphTaskExplanationCoversAllFlows) {
  // Build a tiny graph-classification model and explain one instance.
  gnn::GnnConfig config;
  config.arch = gnn::GnnArch::kGin;
  config.task = gnn::TaskType::kGraphClassification;
  config.input_dim = 3;
  config.hidden_dim = 8;
  config.num_classes = 2;
  gnn::GnnModel model(config);

  graph::Graph g(4);
  g.AddUndirectedEdge(0, 1);
  g.AddUndirectedEdge(1, 2);
  g.AddUndirectedEdge(2, 3);
  util::Rng rng(11);
  ExplanationTask task;
  task.model = &model;
  task.graph = &g;
  task.features = tensor::Tensor::Randn(4, 3, &rng);
  task.target_node = -1;
  task.target_class = 0;

  RevelioExplainer revelio(FastOptions());
  const auto result = revelio.ExplainFlows(task, Objective::kFactual);
  const gnn::LayerEdgeSet edges = gnn::BuildLayerEdges(g);
  EXPECT_EQ(static_cast<int64_t>(result.flows.num_flows()),
            flow::CountAllFlows(edges, 3));
}

}  // namespace
}  // namespace revelio::core
