// Standalone validator for the mega-batched explanation sweep, used as a
// ctest fixture after `bench_table5_runtime --batch-sweep`:
//   megabatch_bench_check <BENCH_megabatch.json>
// Exit 0 when the file carries the shared BENCH_*.json envelope, the sweep
// has a sequential baseline (batch_size 0) and at least one batched point,
// every batched point's explanations were bitwise-equal to the sequential
// loop, and the fused path beats sequential by a clear margin (speedup >=
// 1.25) at the largest group size — the committed sweep measures ~1.8x, so
// the gate has headroom against scheduler noise without ever accepting a
// regression to parity. Exit 1 on validation failure, 2 on usage/IO errors.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/json.h"

namespace {

using revelio::obs::JsonValue;

const JsonValue* RequireNumber(const JsonValue& object, const char* key) {
  const JsonValue* value = object.Find(key);
  if (value == nullptr || !value->is_number()) {
    std::fprintf(stderr, "megabatch_bench_check: missing numeric \"%s\"\n", key);
    return nullptr;
  }
  return value;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: megabatch_bench_check <BENCH_megabatch.json>\n");
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "megabatch_bench_check: cannot open %s\n", argv[1]);
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  JsonValue root;
  std::string error;
  if (!revelio::obs::ParseJson(buffer.str(), &root, &error)) {
    std::fprintf(stderr, "megabatch_bench_check: %s is malformed JSON: %s\n", argv[1],
                 error.c_str());
    return 1;
  }
  if (!root.is_object()) {
    std::fprintf(stderr, "megabatch_bench_check: top level is not an object\n");
    return 1;
  }

  // Shared envelope (bench/bench_common.h WriteBenchJson).
  const JsonValue* schema = root.Find("schema_version");
  if (schema == nullptr || !schema->is_number() || schema->number_value != 1) {
    std::fprintf(stderr, "megabatch_bench_check: missing schema_version 1\n");
    return 1;
  }
  const JsonValue* bench = root.Find("bench");
  if (bench == nullptr || !bench->is_string() || bench->string_value != "megabatch_sweep") {
    std::fprintf(stderr, "megabatch_bench_check: bench name is not megabatch_sweep\n");
    return 1;
  }
  const JsonValue* data = root.Find("data");
  if (data == nullptr || !data->is_object()) {
    std::fprintf(stderr, "megabatch_bench_check: missing data object\n");
    return 1;
  }
  const JsonValue* points = data->Find("points");
  if (points == nullptr || !points->is_array() || points->array_items.empty()) {
    std::fprintf(stderr, "megabatch_bench_check: missing non-empty data.points array\n");
    return 1;
  }

  int baselines = 0;
  int batched_points = 0;
  double largest_batch = -1.0;
  double largest_speedup = 0.0;
  for (size_t i = 0; i < points->array_items.size(); ++i) {
    const JsonValue& point = points->array_items[i];
    if (!point.is_object()) {
      std::fprintf(stderr, "megabatch_bench_check: point %zu is not an object\n", i);
      return 1;
    }
    const JsonValue* batch_size = RequireNumber(point, "batch_size");
    const JsonValue* seconds = RequireNumber(point, "seconds");
    const JsonValue* throughput = RequireNumber(point, "explanations_per_sec");
    const JsonValue* speedup = RequireNumber(point, "speedup");
    if (batch_size == nullptr || seconds == nullptr || throughput == nullptr ||
        speedup == nullptr) {
      return 1;
    }
    if (seconds->number_value <= 0.0) {
      std::fprintf(stderr, "megabatch_bench_check: point %zu has non-positive seconds\n", i);
      return 1;
    }
    if (batch_size->number_value == 0) {
      ++baselines;
      continue;  // the sequential baseline row carries no equivalence claim
    }
    ++batched_points;
    const JsonValue* bitwise = point.Find("bitwise_equal");
    if (bitwise == nullptr || bitwise->type != JsonValue::Type::kBool) {
      std::fprintf(stderr, "megabatch_bench_check: point %zu lacks bool bitwise_equal\n", i);
      return 1;
    }
    if (!bitwise->bool_value) {
      std::fprintf(stderr,
                   "megabatch_bench_check: point %zu (batch_size=%.0f): batched "
                   "explanations diverged from the sequential loop\n",
                   i, batch_size->number_value);
      return 1;
    }
    if (batch_size->number_value > largest_batch) {
      largest_batch = batch_size->number_value;
      largest_speedup = speedup->number_value;
    }
  }

  if (baselines == 0) {
    std::fprintf(stderr, "megabatch_bench_check: no sequential baseline (batch_size 0)\n");
    return 1;
  }
  if (batched_points == 0) {
    std::fprintf(stderr, "megabatch_bench_check: no batched points in the sweep\n");
    return 1;
  }
  if (largest_speedup < 1.25) {
    std::fprintf(stderr,
                 "megabatch_bench_check: mega-batched path lost its margin over sequential "
                 "at the largest group size (batch_size=%.0f, speedup=%.3fx < 1.25x)\n",
                 largest_batch, largest_speedup);
    return 1;
  }
  std::printf(
      "megabatch_bench_check: %s ok (%d batched points, largest batch_size=%.0f "
      "speedup=%.2fx)\n",
      argv[1], batched_points, largest_batch, largest_speedup);
  return 0;
}
