// Tests for util::ParallelFor and the determinism contract of the parallel
// tensor kernels: every index covered exactly once under adversarial grain
// sizes, and bitwise-identical results for 1 vs N worker threads.

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "gnn/model.h"
#include "gnn/trainer.h"
#include "graph/graph.h"
#include "tensor/ops.h"
#include "tensor/simd.h"
#include "tensor/tensor.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace revelio {
namespace {

// Every test leaves the process-wide thread count back at 1 so test order
// does not matter.
class ParallelTest : public ::testing::Test {
 protected:
  void TearDown() override { util::SetNumThreads(1); }
};

TEST_F(ParallelTest, CoversEveryIndexExactlyOnce) {
  util::SetNumThreads(4);
  const int64_t kRanges[] = {0, 1, 2, 3, 7, 64, 1000, 1001};
  const int64_t kGrains[] = {-3, 0, 1, 3, 7, 63, 64, 65, 1005};
  for (int64_t n : kRanges) {
    for (int64_t grain : kGrains) {
      std::vector<std::atomic<int>> hits(n);
      for (auto& h : hits) h.store(0);
      util::ParallelFor(0, n, grain, [&hits, n](int64_t begin, int64_t end) {
        ASSERT_GE(begin, 0);
        ASSERT_LE(end, n);
        ASSERT_LE(begin, end);
        for (int64_t i = begin; i < end; ++i) hits[i].fetch_add(1);
      });
      for (int64_t i = 0; i < n; ++i) {
        ASSERT_EQ(hits[i].load(), 1) << "index " << i << " range " << n << " grain " << grain;
      }
    }
  }
}

TEST_F(ParallelTest, NonZeroBeginCoversExactRange) {
  util::SetNumThreads(3);
  std::vector<std::atomic<int>> hits(100);
  for (auto& h : hits) h.store(0);
  util::ParallelFor(17, 83, 5, [&hits](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (int64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(hits[i].load(), (i >= 17 && i < 83) ? 1 : 0) << i;
  }
}

TEST_F(ParallelTest, EmptyAndReversedRangesAreNoOps) {
  util::SetNumThreads(4);
  int calls = 0;
  util::ParallelFor(5, 5, 1, [&calls](int64_t, int64_t) { ++calls; });
  util::ParallelFor(9, 2, 1, [&calls](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST_F(ParallelTest, NestedCallsRunSerially) {
  util::SetNumThreads(4);
  std::atomic<int> inner_total{0};
  util::ParallelFor(0, 8, 1, [&inner_total](int64_t begin, int64_t end) {
    EXPECT_TRUE(util::InParallelRegion());
    for (int64_t i = begin; i < end; ++i) {
      // Must not deadlock and must still cover its range (serially).
      util::ParallelFor(0, 10, 1,
                        [&inner_total](int64_t b, int64_t e) {
                          inner_total.fetch_add(static_cast<int>(e - b));
                        });
    }
  });
  EXPECT_EQ(inner_total.load(), 80);
  EXPECT_FALSE(util::InParallelRegion());
}

TEST_F(ParallelTest, ConcurrentParallelForFromManyThreads) {
  util::SetNumThreads(4);
  constexpr int kCallers = 6;
  std::vector<int64_t> sums(kCallers, 0);
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int t = 0; t < kCallers; ++t) {
    callers.emplace_back([t, &sums] {
      std::vector<std::atomic<int64_t>> partial(1);
      partial[0].store(0);
      util::ParallelFor(0, 5000, 64, [&partial](int64_t begin, int64_t end) {
        int64_t local = 0;
        for (int64_t i = begin; i < end; ++i) local += i;
        partial[0].fetch_add(local);
      });
      sums[t] = partial[0].load();
    });
  }
  for (auto& caller : callers) caller.join();
  for (int t = 0; t < kCallers; ++t) EXPECT_EQ(sums[t], 5000LL * 4999 / 2);
}

TEST_F(ParallelTest, SetNumThreadsIsRespected) {
  util::SetNumThreads(2);
  EXPECT_EQ(util::NumThreads(), 2);
  util::SetNumThreads(7);
  EXPECT_EQ(util::NumThreads(), 7);
}

// --- Bitwise 1-vs-N determinism of the tensor kernels -----------------------

// Runs `compute` under `threads` workers and returns the flat values of its
// result tensors.
template <typename Fn>
std::vector<float> RunWithThreads(int threads, Fn compute) {
  util::SetNumThreads(threads);
  return compute();
}

TEST_F(ParallelTest, MatMulForwardBackwardBitwiseIdentical) {
  // Non-divisible sizes, above the parallel grain thresholds.
  auto compute = [] {
    util::Rng rng(5);
    tensor::Tensor a = tensor::Tensor::Randn(64, 129, &rng).WithRequiresGrad();
    tensor::Tensor b = tensor::Tensor::Randn(129, 97, &rng).WithRequiresGrad();
    tensor::Tensor c = tensor::MatMul(a, b);
    tensor::Sum(c).Backward();
    std::vector<float> flat = c.values();
    const std::vector<float> ga = a.GradData();
    const std::vector<float> gb = b.GradData();
    flat.insert(flat.end(), ga.begin(), ga.end());
    flat.insert(flat.end(), gb.begin(), gb.end());
    return flat;
  };
  const std::vector<float> serial = RunWithThreads(1, compute);
  for (int threads : {2, 4, 5}) {
    EXPECT_EQ(RunWithThreads(threads, compute), serial) << threads << " threads";
  }
}

TEST_F(ParallelTest, GatherScatterGradientsBitwiseIdentical) {
  auto compute = [] {
    util::Rng rng(6);
    const int nodes = 700;
    const int edges = 4000;
    tensor::Tensor h = tensor::Tensor::Randn(nodes, 24, &rng).WithRequiresGrad();
    std::vector<int> src(edges), dst(edges);
    for (int e = 0; e < edges; ++e) {
      src[e] = rng.UniformInt(nodes);
      dst[e] = rng.UniformInt(nodes);
    }
    tensor::Tensor messages = tensor::GatherRows(h, src);
    tensor::Tensor aggregated = tensor::ScatterAddRows(messages, dst, nodes);
    tensor::Sum(tensor::Mul(aggregated, aggregated)).Backward();
    std::vector<float> flat = aggregated.values();
    const std::vector<float> gh = h.GradData();
    flat.insert(flat.end(), gh.begin(), gh.end());
    return flat;
  };
  const std::vector<float> serial = RunWithThreads(1, compute);
  for (int threads : {2, 4}) {
    EXPECT_EQ(RunWithThreads(threads, compute), serial) << threads << " threads";
  }
}

TEST_F(ParallelTest, SegmentSoftmaxBitwiseIdentical) {
  auto compute = [] {
    util::Rng rng(7);
    const int entries = 5000;
    const int segments = 40;
    tensor::Tensor values = tensor::Tensor::Randn(entries, 1, &rng).WithRequiresGrad();
    std::vector<int> seg(entries);
    for (int i = 0; i < entries; ++i) seg[i] = rng.UniformInt(segments);
    tensor::Tensor soft = tensor::SegmentSoftmax(values, seg, segments);
    tensor::Sum(tensor::Mul(soft, soft)).Backward();
    std::vector<float> flat = soft.values();
    const std::vector<float> gv = values.GradData();
    flat.insert(flat.end(), gv.begin(), gv.end());
    return flat;
  };
  const std::vector<float> serial = RunWithThreads(1, compute);
  for (int threads : {2, 4}) {
    EXPECT_EQ(RunWithThreads(threads, compute), serial) << threads << " threads";
  }
}

TEST_F(ParallelTest, OddShapesStayBitwiseAcrossThreadsWithSimd) {
  // Regression for the SIMD tier (tensor/simd.h): owner-computes chunk
  // boundaries land mid-vector on shapes that are not multiples of the lane
  // width, shifting iterations between one chunk's vector body and another's
  // scalar tail. Those must compute identical bits at every thread count.
  tensor::simd::SetEnabled(true);
  struct Shape {
    int rows, cols;
  };
  // 7, 13, 61: coprime to every supported lane width (1/4/8).
  for (const Shape s : {Shape{601, 61}, Shape{7, 13}, Shape{1, 7}}) {
    auto compute = [s] {
      util::Rng rng(11);
      tensor::Tensor a = tensor::Tensor::Randn(s.rows, s.cols, &rng).WithRequiresGrad();
      tensor::Tensor b = tensor::Tensor::Randn(s.rows, s.cols, &rng).WithRequiresGrad();
      tensor::Tensor y = tensor::Relu(tensor::Mul(tensor::Add(a, b), a));
      tensor::Sum(y).Backward();
      std::vector<float> flat = y.values();
      const std::vector<float> ga = a.GradData();
      const std::vector<float> gb = b.GradData();
      flat.insert(flat.end(), ga.begin(), ga.end());
      flat.insert(flat.end(), gb.begin(), gb.end());
      return flat;
    };
    const std::vector<float> serial = RunWithThreads(1, compute);
    for (int threads : {2, 7, 16}) {
      EXPECT_EQ(RunWithThreads(threads, compute), serial)
          << s.rows << "x" << s.cols << " at " << threads << " threads";
    }
  }
  tensor::simd::SetEnabled(tensor::simd::Lanes() > 1);
}

TEST_F(ParallelTest, GcnTrainingStepBitwiseIdentical) {
  // A full training run: forward, loss, backward, SGD updates. Any ordering
  // difference in any kernel would compound across epochs and show up here.
  auto compute = [] {
    util::Rng rng(8);
    const int nodes = 400;
    graph::Graph g(nodes);
    for (int v = 1; v < nodes; ++v) g.AddUndirectedEdge(v, rng.UniformInt(v));
    tensor::Tensor features = tensor::Tensor::Randn(nodes, 16, &rng);
    std::vector<int> labels(nodes);
    for (int v = 0; v < nodes; ++v) labels[v] = rng.UniformInt(3);

    gnn::GnnConfig config;
    config.arch = gnn::GnnArch::kGcn;
    config.input_dim = 16;
    config.hidden_dim = 64;
    config.num_classes = 3;
    config.seed = 99;
    gnn::GnnModel model(config);

    gnn::TrainConfig train_config;
    train_config.epochs = 2;
    util::Rng split_rng(9);
    const gnn::Split split = gnn::MakeSplit(nodes, 0.8, 0.1, &split_rng);
    gnn::TrainNodeModel(&model, g, features, labels, split, train_config);

    std::vector<float> flat;
    for (const auto& p : model.Parameters()) {
      flat.insert(flat.end(), p.values().begin(), p.values().end());
    }
    return flat;
  };
  const std::vector<float> serial = RunWithThreads(1, compute);
  for (int threads : {2, 4}) {
    EXPECT_EQ(RunWithThreads(threads, compute), serial) << threads << " threads";
  }
}

}  // namespace
}  // namespace revelio
