// Standalone validator for the tensor-pool bench result, used as a ctest
// fixture after `bench_micro_kernels --quick --pool-only`:
//   pool_bench_check <BENCH_pool.json>
// Exit 0 when the file carries the shared BENCH_*.json envelope, the sweep
// has at least one point, every point's pooled scores were bitwise-equal to
// the unpooled run, every point reached the zero-miss steady state after
// warmup (warm_misses == 0 with warm_hits > 0), and the pooled path is at
// least as fast as the legacy allocator (speedup >= 1.0) at the largest
// problem size. Exit 1 on validation failure, 2 on usage/IO errors.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/json.h"

namespace {

using revelio::obs::JsonValue;

const JsonValue* RequireNumber(const JsonValue& object, const char* key) {
  const JsonValue* value = object.Find(key);
  if (value == nullptr || !value->is_number()) {
    std::fprintf(stderr, "pool_bench_check: missing numeric \"%s\"\n", key);
    return nullptr;
  }
  return value;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: pool_bench_check <BENCH_pool.json>\n");
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "pool_bench_check: cannot open %s\n", argv[1]);
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  JsonValue root;
  std::string error;
  if (!revelio::obs::ParseJson(buffer.str(), &root, &error)) {
    std::fprintf(stderr, "pool_bench_check: %s is malformed JSON: %s\n", argv[1],
                 error.c_str());
    return 1;
  }
  if (!root.is_object()) {
    std::fprintf(stderr, "pool_bench_check: top level is not an object\n");
    return 1;
  }

  // Shared envelope (bench/bench_common.h WriteBenchJson).
  const JsonValue* schema = root.Find("schema_version");
  if (schema == nullptr || !schema->is_number() || schema->number_value != 1) {
    std::fprintf(stderr, "pool_bench_check: missing schema_version 1\n");
    return 1;
  }
  const JsonValue* bench = root.Find("bench");
  if (bench == nullptr || !bench->is_string() || bench->string_value != "tensor_pool") {
    std::fprintf(stderr, "pool_bench_check: bench name is not tensor_pool\n");
    return 1;
  }
  const JsonValue* data = root.Find("data");
  if (data == nullptr || !data->is_object()) {
    std::fprintf(stderr, "pool_bench_check: missing data object\n");
    return 1;
  }
  const JsonValue* points = data->Find("points");
  if (points == nullptr || !points->is_array() || points->array_items.empty()) {
    std::fprintf(stderr, "pool_bench_check: missing non-empty data.points array\n");
    return 1;
  }

  double largest_edges = -1.0;
  double largest_speedup = 0.0;
  for (size_t i = 0; i < points->array_items.size(); ++i) {
    const JsonValue& point = points->array_items[i];
    if (!point.is_object()) {
      std::fprintf(stderr, "pool_bench_check: point %zu is not an object\n", i);
      return 1;
    }
    const JsonValue* layer_edges = RequireNumber(point, "layer_edges");
    const JsonValue* unpooled_s = RequireNumber(point, "unpooled_seconds");
    const JsonValue* pooled_s = RequireNumber(point, "pooled_seconds");
    const JsonValue* speedup = RequireNumber(point, "pool_speedup");
    const JsonValue* warm_misses = RequireNumber(point, "warm_misses");
    const JsonValue* warm_hits = RequireNumber(point, "warm_hits");
    if (layer_edges == nullptr || unpooled_s == nullptr || pooled_s == nullptr ||
        speedup == nullptr || warm_misses == nullptr || warm_hits == nullptr) {
      return 1;
    }
    const JsonValue* bitwise = point.Find("bitwise_equal");
    if (bitwise == nullptr || bitwise->type != JsonValue::Type::kBool) {
      std::fprintf(stderr, "pool_bench_check: point %zu lacks bool bitwise_equal\n", i);
      return 1;
    }
    if (!bitwise->bool_value) {
      std::fprintf(stderr,
                   "pool_bench_check: point %zu (layer_edges=%.0f): pooled scores diverged "
                   "from the unpooled run\n",
                   i, layer_edges->number_value);
      return 1;
    }
    // The steady-state contract: after the two-explanation warmup, every
    // acquisition must be served from the free lists.
    if (warm_misses->number_value != 0.0) {
      std::fprintf(stderr,
                   "pool_bench_check: point %zu (layer_edges=%.0f): %.0f pool misses in a "
                   "post-warmup explanation (expected 0)\n",
                   i, layer_edges->number_value, warm_misses->number_value);
      return 1;
    }
    if (warm_hits->number_value <= 0.0) {
      std::fprintf(stderr,
                   "pool_bench_check: point %zu (layer_edges=%.0f): no pool hits in a "
                   "post-warmup explanation — the pool is not wired in\n",
                   i, layer_edges->number_value);
      return 1;
    }
    if (unpooled_s->number_value <= 0.0 || pooled_s->number_value <= 0.0) {
      std::fprintf(stderr, "pool_bench_check: point %zu has non-positive timings\n", i);
      return 1;
    }
    if (layer_edges->number_value > largest_edges) {
      largest_edges = layer_edges->number_value;
      largest_speedup = speedup->number_value;
    }
  }

  if (largest_speedup < 1.0) {
    std::fprintf(stderr,
                 "pool_bench_check: pooled allocator slower than the legacy path at the "
                 "largest size (layer_edges=%.0f, speedup=%.3fx < 1.0x)\n",
                 largest_edges, largest_speedup);
    return 1;
  }
  std::printf(
      "pool_bench_check: %s ok (%zu points, largest size layer_edges=%.0f speedup=%.2fx, "
      "0 steady-state misses)\n",
      argv[1], points->array_items.size(), largest_edges, largest_speedup);
  return 0;
}
