// Tests for GNN model save/load: lossless round-trip of trained weights and
// robust failure on malformed files.

#include "gnn/serialization.h"

#include <fstream>

#include <gtest/gtest.h>

#include "gnn/trainer.h"
#include "tensor/ops.h"

namespace revelio::gnn {
namespace {

GnnConfig SmallConfig(GnnArch arch) {
  GnnConfig config;
  config.arch = arch;
  config.input_dim = 3;
  config.hidden_dim = 8;
  config.num_classes = 2;
  config.seed = 21;
  return config;
}

class SerializationRoundTrip : public ::testing::TestWithParam<GnnArch> {};

TEST_P(SerializationRoundTrip, LogitsIdenticalAfterReload) {
  GnnModel model(SmallConfig(GetParam()));
  // Perturb the weights so we are not just reloading the seeded init.
  util::Rng rng(5);
  for (auto& parameter : model.Parameters()) {
    for (auto& v : *parameter.mutable_values()) v += 0.01f * static_cast<float>(rng.Normal());
  }
  graph::Graph g(4);
  g.AddUndirectedEdge(0, 1);
  g.AddUndirectedEdge(1, 2);
  g.AddUndirectedEdge(2, 3);
  tensor::Tensor x = tensor::Tensor::Randn(4, 3, &rng);
  const tensor::Tensor original = model.Logits(g, x);

  const std::string path = ::testing::TempDir() + "/revelio_model.bin";
  ASSERT_TRUE(SaveModel(model, path).ok());
  auto loaded = LoadModel(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const tensor::Tensor reloaded = loaded.value()->Logits(g, x);
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 2; ++c) {
      EXPECT_EQ(original.At(r, c), reloaded.At(r, c))
          << "hex-float round trip must be bit-exact";
    }
  }
  EXPECT_EQ(loaded.value()->config().arch, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Archs, SerializationRoundTrip,
                         ::testing::Values(GnnArch::kGcn, GnnArch::kGin, GnnArch::kGat));

TEST(SerializationTest, PreservesConfigFlags) {
  GnnConfig config = SmallConfig(GnnArch::kGcn);
  config.gcn_normalize = false;
  config.task = TaskType::kGraphClassification;
  GnnModel model(config);
  const std::string path = ::testing::TempDir() + "/revelio_model2.bin";
  ASSERT_TRUE(SaveModel(model, path).ok());
  auto loaded = LoadModel(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_FALSE(loaded.value()->config().gcn_normalize);
  EXPECT_EQ(loaded.value()->config().task, TaskType::kGraphClassification);
  EXPECT_EQ(loaded.value()->NumParameters(), model.NumParameters());
}

TEST(SerializationTest, RejectsMissingAndMalformedFiles) {
  EXPECT_FALSE(LoadModel("/nonexistent/revelio.bin").ok());
  const std::string path = ::testing::TempDir() + "/revelio_bad.bin";
  {
    std::ofstream out(path);
    out << "not-a-model\n1 2 3\n";
  }
  auto bad_magic = LoadModel(path);
  EXPECT_FALSE(bad_magic.ok());
  EXPECT_EQ(bad_magic.status().code(), util::StatusCode::kInvalidArgument);
  {
    std::ofstream out(path);
    out << "revelio-gnn-v1\n0 0 3 8 2 3 8 1 21\n999\n";  // wrong parameter count
  }
  EXPECT_FALSE(LoadModel(path).ok());
  {
    std::ofstream out(path);
    out << "revelio-gnn-v1\n0 0 3 8\n";  // truncated config
  }
  EXPECT_FALSE(LoadModel(path).ok());
}

}  // namespace
}  // namespace revelio::gnn
