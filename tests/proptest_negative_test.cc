// Negative-path tests for the util::proptest framework (ISSUE PR 9,
// satellite 2): a deliberately failing property must (a) converge to the
// minimal counterexample via greedy shrinking, (b) print a replayable
// REVELIO_PROP_SEED line, and (c) reproduce bitwise when that seed is fed
// back through a replay-mode PropConfig. The passing-path behavior is
// exercised throughout tests/prop/; this file pins the failure machinery
// those suites rely on when they do fire.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/proptest.h"
#include "util/rng.h"

namespace revelio {
namespace {

// Integers in [0, 1000) shrinking toward zero: halving then decrement, the
// classic ladder that lets greedy shrinking reach the boundary exactly.
util::Domain<int> IntDomain() {
  util::Domain<int> domain;
  domain.generate = [](util::Rng& rng) { return static_cast<int>(rng.UniformInt(1000)); };
  domain.shrink = [](const int& value) {
    std::vector<int> out;
    if (value > 0) {
      out.push_back(value / 2);
      out.push_back(value - 1);
    }
    return out;
  };
  domain.describe = [](const int& value) { return std::to_string(value); };
  return domain;
}

// Vectors of small ints shrinking by dropping one element or shrinking one
// element; minimal counterexample for "no element >= 7" is exactly {7}.
util::Domain<std::vector<int>> VecDomain() {
  util::Domain<std::vector<int>> domain;
  domain.generate = [](util::Rng& rng) {
    std::vector<int> v(1 + rng.UniformInt(8));
    for (auto& x : v) x = static_cast<int>(rng.UniformInt(20));
    return v;
  };
  domain.shrink = [](const std::vector<int>& value) {
    std::vector<std::vector<int>> out;
    for (size_t i = 0; i < value.size(); ++i) {
      std::vector<int> dropped = value;
      dropped.erase(dropped.begin() + static_cast<long>(i));
      out.push_back(std::move(dropped));
    }
    for (size_t i = 0; i < value.size(); ++i) {
      if (value[i] > 0) {
        std::vector<int> halved = value;
        halved[i] /= 2;
        out.push_back(std::move(halved));
        std::vector<int> less = value;
        --less[i];
        out.push_back(std::move(less));
      }
    }
    return out;
  };
  domain.describe = [](const std::vector<int>& value) {
    std::string s = "{";
    for (size_t i = 0; i < value.size(); ++i) {
      if (i > 0) s += ", ";
      s += std::to_string(value[i]);
    }
    return s + "}";
  };
  return domain;
}

std::string NotAtLeast500(const int& value) {
  return value >= 500 ? "value " + std::to_string(value) + " >= 500" : "";
}

TEST(ProptestNegativeTest, FailingPropertyShrinksToBoundaryCounterexample) {
  util::PropConfig config;
  config.num_cases = 200;
  config.seed = 0xfeedULL;
  config.max_shrink_steps = 5000;  // decrement ladder: ~2 evals per step down
  const util::CheckResult result = util::ForAll<int>("int >= 500 fails", IntDomain(),
                                                     NotAtLeast500, config);
  ASSERT_FALSE(result.ok);
  EXPECT_GT(result.shrink_steps, 0);
  // Greedy halve/decrement shrinking from any failing value lands exactly on
  // the boundary: 500 is the minimal failing input.
  EXPECT_NE(result.report.find("counterexample: 500"), std::string::npos) << result.report;
  EXPECT_NE(result.report.find("failure: value 500 >= 500"), std::string::npos) << result.report;
}

TEST(ProptestNegativeTest, StructuredShrinkReachesMinimalVector) {
  util::PropConfig config;
  config.num_cases = 300;
  config.seed = 0xabcdULL;
  config.max_shrink_steps = 10000;
  const util::CheckResult result = util::ForAll<std::vector<int>>(
      "no element >= 7", VecDomain(),
      [](const std::vector<int>& v) -> std::string {
        for (int x : v) {
          if (x >= 7) return "element " + std::to_string(x) + " >= 7";
        }
        return "";
      },
      config);
  ASSERT_FALSE(result.ok);
  // Minimal counterexample: a single element at the boundary.
  EXPECT_NE(result.report.find("counterexample: {7}"), std::string::npos) << result.report;
}

TEST(ProptestNegativeTest, ReportCarriesReproLineAndShrinkCount) {
  util::PropConfig config;
  config.num_cases = 200;
  config.seed = 0x1234ULL;
  config.max_shrink_steps = 5000;
  const util::CheckResult result = util::ForAll<int>("repro line", IntDomain(),
                                                     NotAtLeast500, config);
  ASSERT_FALSE(result.ok);
  EXPECT_NE(result.report.find("[proptest] property 'repro line' FAILED"), std::string::npos);
  EXPECT_NE(result.report.find("reproduce with: REVELIO_PROP_SEED=0x"), std::string::npos);
  EXPECT_NE(result.report.find(" REVELIO_PROP_CASES=1 "), std::string::npos);
  EXPECT_NE(result.report.find("counterexample shrunk in " +
                               std::to_string(result.shrink_steps) + " steps"),
            std::string::npos)
      << result.report;
}

// The printed case seed, fed back through a replay-mode config (what
// REVELIO_PROP_SEED does via DefaultPropConfig), reproduces the identical
// failure: same counterexample, same report tail, in a single case.
TEST(ProptestNegativeTest, PrintedSeedReplaysTheFailureBitwise) {
  util::PropConfig config;
  config.num_cases = 200;
  config.seed = 0x5eedULL;
  config.max_shrink_steps = 5000;
  const util::CheckResult first = util::ForAll<int>("replayable", IntDomain(),
                                                    NotAtLeast500, config);
  ASSERT_FALSE(first.ok);

  // Parse the case seed out of the repro line.
  const std::string marker = "REVELIO_PROP_SEED=";
  const size_t at = first.report.find(marker);
  ASSERT_NE(at, std::string::npos);
  const uint64_t case_seed =
      std::stoull(first.report.substr(at + marker.size()), nullptr, 16);

  util::PropConfig replay;
  replay.num_cases = 1;
  replay.seed = case_seed;
  replay.replay = true;
  replay.max_shrink_steps = 5000;
  const util::CheckResult second = util::ForAll<int>("replayable", IntDomain(),
                                                     NotAtLeast500, replay);
  ASSERT_FALSE(second.ok);
  EXPECT_EQ(second.cases_run, 1);

  // Identical counterexample and failure text; only the case-index line may
  // differ (case 0 of 1 vs case k of 200).
  auto tail = [](const std::string& report) {
    return report.substr(report.find("counterexample"));
  };
  EXPECT_EQ(tail(first.report), tail(second.report));
}

TEST(ProptestNegativeTest, PassingPropertyRunsAllCasesWithEmptyReport) {
  util::PropConfig config;
  config.num_cases = 50;
  config.seed = 0x77ULL;
  const util::CheckResult result = util::ForAll<int>(
      "always holds", IntDomain(), [](const int&) { return std::string(); }, config);
  EXPECT_TRUE(result.ok);
  EXPECT_TRUE(result.report.empty());
  EXPECT_EQ(result.cases_run, 50);
  EXPECT_EQ(result.shrink_steps, 0);
}

TEST(ProptestNegativeTest, ShrinkBudgetBoundsTheSearch) {
  util::PropConfig config;
  config.num_cases = 200;
  config.seed = 0x9999ULL;
  config.max_shrink_steps = 3;
  const util::CheckResult result = util::ForAll<int>("bounded shrink", IntDomain(),
                                                     NotAtLeast500, config);
  ASSERT_FALSE(result.ok);
  EXPECT_LE(result.shrink_steps, 4);  // may overshoot by the final ++ check
}

}  // namespace
}  // namespace revelio
