// Unit tests for the Tensor container and forward values of every op.

#include "tensor/tensor.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tensor/init.h"
#include "tensor/ops.h"

namespace revelio::tensor {
namespace {

TEST(TensorTest, FactoriesProduceExpectedShapesAndValues) {
  Tensor zeros = Tensor::Zeros(2, 3);
  EXPECT_EQ(zeros.rows(), 2);
  EXPECT_EQ(zeros.cols(), 3);
  EXPECT_EQ(zeros.numel(), 6);
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 3; ++c) EXPECT_EQ(zeros.At(r, c), 0.0f);
  }

  Tensor full = Tensor::Full(2, 2, 3.5f);
  EXPECT_EQ(full.At(1, 1), 3.5f);

  Tensor ones = Tensor::Ones(1, 4);
  EXPECT_EQ(ones.At(0, 3), 1.0f);

  Tensor data = Tensor::FromData(2, 2, {1.0f, 2.0f, 3.0f, 4.0f});
  EXPECT_EQ(data.At(0, 0), 1.0f);
  EXPECT_EQ(data.At(0, 1), 2.0f);
  EXPECT_EQ(data.At(1, 0), 3.0f);
  EXPECT_EQ(data.At(1, 1), 4.0f);

  Tensor vector = Tensor::FromVector({5.0f, 6.0f});
  EXPECT_EQ(vector.rows(), 2);
  EXPECT_EQ(vector.cols(), 1);
}

TEST(TensorTest, DefaultConstructedIsUndefined) {
  Tensor t;
  EXPECT_FALSE(t.defined());
  EXPECT_EQ(t.rows(), 0);
  EXPECT_EQ(t.numel(), 0);
}

TEST(TensorTest, SetAtMutatesLeafValues) {
  Tensor t = Tensor::Zeros(2, 2);
  t.SetAt(0, 1, 7.0f);
  EXPECT_EQ(t.At(0, 1), 7.0f);
}

TEST(TensorTest, ValueRequiresScalar) {
  Tensor s = Tensor::Full(1, 1, 2.0f);
  EXPECT_EQ(s.Value(), 2.0f);
}

TEST(TensorTest, DetachCopiesValuesWithoutGraph) {
  Tensor t = Tensor::Full(2, 2, 1.0f).WithRequiresGrad();
  Tensor d = Tensor::FromNode(t.node());
  Tensor detached = d.Detach();
  EXPECT_FALSE(detached.requires_grad());
  EXPECT_EQ(detached.At(0, 0), 1.0f);
  detached.SetAt(0, 0, 9.0f);
  EXPECT_EQ(t.At(0, 0), 1.0f) << "detached copy must not alias the source";
}

TEST(TensorTest, RandnIsDeterministicPerSeed) {
  util::Rng rng_a(42);
  util::Rng rng_b(42);
  Tensor a = Tensor::Randn(3, 3, &rng_a);
  Tensor b = Tensor::Randn(3, 3, &rng_b);
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) EXPECT_EQ(a.At(r, c), b.At(r, c));
  }
}

TEST(OpsForwardTest, AddSubMul) {
  Tensor a = Tensor::FromData(1, 3, {1.0f, 2.0f, 3.0f});
  Tensor b = Tensor::FromData(1, 3, {4.0f, 5.0f, 6.0f});
  Tensor sum = Add(a, b);
  Tensor diff = Sub(a, b);
  Tensor prod = Mul(a, b);
  EXPECT_EQ(sum.At(0, 2), 9.0f);
  EXPECT_EQ(diff.At(0, 0), -3.0f);
  EXPECT_EQ(prod.At(0, 1), 10.0f);
}

TEST(OpsForwardTest, AddRowBroadcast) {
  Tensor m = Tensor::FromData(2, 2, {1.0f, 2.0f, 3.0f, 4.0f});
  Tensor row = Tensor::FromData(1, 2, {10.0f, 20.0f});
  Tensor out = AddRowBroadcast(m, row);
  EXPECT_EQ(out.At(0, 0), 11.0f);
  EXPECT_EQ(out.At(1, 1), 24.0f);
}

TEST(OpsForwardTest, ScalarOps) {
  Tensor a = Tensor::FromData(1, 2, {1.0f, -2.0f});
  EXPECT_EQ(AddScalar(a, 1.5f).At(0, 0), 2.5f);
  EXPECT_EQ(MulScalar(a, -2.0f).At(0, 1), 4.0f);
  EXPECT_EQ(Neg(a).At(0, 0), -1.0f);
  Tensor s = Tensor::Full(1, 1, 3.0f);
  EXPECT_EQ(ScaleByScalarTensor(a, s).At(0, 1), -6.0f);
}

TEST(OpsForwardTest, Activations) {
  Tensor a = Tensor::FromData(1, 4, {-2.0f, -0.5f, 0.5f, 2.0f});
  Tensor relu = Relu(a);
  EXPECT_EQ(relu.At(0, 0), 0.0f);
  EXPECT_EQ(relu.At(0, 3), 2.0f);
  Tensor leaky = LeakyRelu(a, 0.1f);
  EXPECT_FLOAT_EQ(leaky.At(0, 0), -0.2f);
  Tensor tanh_out = Tanh(a);
  EXPECT_NEAR(tanh_out.At(0, 3), std::tanh(2.0f), 1e-6);
  Tensor sigmoid_out = Sigmoid(a);
  EXPECT_NEAR(sigmoid_out.At(0, 1), 1.0f / (1.0f + std::exp(0.5f)), 1e-6);
  Tensor exp_out = Exp(a);
  EXPECT_NEAR(exp_out.At(0, 0), std::exp(-2.0f), 1e-6);
  Tensor softplus_out = Softplus(a);
  EXPECT_NEAR(softplus_out.At(0, 3), std::log1p(std::exp(2.0f)), 1e-5);
}

TEST(OpsForwardTest, LogClampsAtEps) {
  Tensor a = Tensor::FromData(1, 2, {0.0f, 1.0f});
  Tensor out = Log(a, 1e-6f);
  EXPECT_NEAR(out.At(0, 0), std::log(1e-6f), 1e-3);
  EXPECT_NEAR(out.At(0, 1), 0.0f, 1e-6);
}

TEST(OpsForwardTest, MatMul) {
  Tensor a = Tensor::FromData(2, 3, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromData(3, 2, {7, 8, 9, 10, 11, 12});
  Tensor out = MatMul(a, b);
  EXPECT_EQ(out.rows(), 2);
  EXPECT_EQ(out.cols(), 2);
  EXPECT_EQ(out.At(0, 0), 58.0f);
  EXPECT_EQ(out.At(0, 1), 64.0f);
  EXPECT_EQ(out.At(1, 0), 139.0f);
  EXPECT_EQ(out.At(1, 1), 154.0f);
}

TEST(OpsForwardTest, SumAndMean) {
  Tensor a = Tensor::FromData(2, 2, {1, 2, 3, 4});
  EXPECT_EQ(Sum(a).Value(), 10.0f);
  EXPECT_EQ(Mean(a).Value(), 2.5f);
}

TEST(OpsForwardTest, RowSoftmaxNormalizes) {
  Tensor a = Tensor::FromData(2, 3, {1, 2, 3, 100, 100, 100});
  Tensor out = RowSoftmax(a);
  for (int r = 0; r < 2; ++r) {
    float total = 0.0f;
    for (int c = 0; c < 3; ++c) total += out.At(r, c);
    EXPECT_NEAR(total, 1.0f, 1e-5);
  }
  EXPECT_NEAR(out.At(1, 0), 1.0f / 3.0f, 1e-5);
  EXPECT_GT(out.At(0, 2), out.At(0, 1));
}

TEST(OpsForwardTest, RowLogSoftmaxMatchesLogOfSoftmax) {
  Tensor a = Tensor::FromData(1, 3, {0.5f, -1.0f, 2.0f});
  Tensor log_soft = RowLogSoftmax(a);
  Tensor soft = RowSoftmax(a);
  for (int c = 0; c < 3; ++c) {
    EXPECT_NEAR(log_soft.At(0, c), std::log(soft.At(0, c)), 1e-5);
  }
}

TEST(OpsForwardTest, GatherAndScatter) {
  Tensor a = Tensor::FromData(3, 2, {1, 2, 3, 4, 5, 6});
  Tensor gathered = GatherRows(a, {2, 0, 2});
  EXPECT_EQ(gathered.rows(), 3);
  EXPECT_EQ(gathered.At(0, 0), 5.0f);
  EXPECT_EQ(gathered.At(1, 1), 2.0f);
  EXPECT_EQ(gathered.At(2, 0), 5.0f);

  Tensor scattered = ScatterAddRows(gathered, {0, 0, 1}, 2);
  EXPECT_EQ(scattered.rows(), 2);
  EXPECT_EQ(scattered.At(0, 0), 6.0f);  // rows 0 and 1 of gathered
  EXPECT_EQ(scattered.At(1, 0), 5.0f);
}

TEST(OpsForwardTest, RowScale) {
  Tensor a = Tensor::FromData(2, 2, {1, 2, 3, 4});
  Tensor s = Tensor::FromVector({2.0f, -1.0f});
  Tensor out = RowScale(a, s);
  EXPECT_EQ(out.At(0, 1), 4.0f);
  EXPECT_EQ(out.At(1, 0), -3.0f);
}

TEST(OpsForwardTest, ConcatCols) {
  Tensor a = Tensor::FromData(2, 1, {1, 2});
  Tensor b = Tensor::FromData(2, 2, {3, 4, 5, 6});
  Tensor out = ConcatCols(a, b);
  EXPECT_EQ(out.cols(), 3);
  EXPECT_EQ(out.At(0, 0), 1.0f);
  EXPECT_EQ(out.At(0, 2), 4.0f);
  EXPECT_EQ(out.At(1, 1), 5.0f);
}

TEST(OpsForwardTest, SegmentSoftmaxNormalizesPerSegment) {
  Tensor values = Tensor::FromVector({1.0f, 2.0f, 3.0f, 0.0f});
  Tensor out = SegmentSoftmax(values, {0, 0, 1, 1}, 2);
  EXPECT_NEAR(out.At(0, 0) + out.At(1, 0), 1.0f, 1e-5);
  EXPECT_NEAR(out.At(2, 0) + out.At(3, 0), 1.0f, 1e-5);
  EXPECT_GT(out.At(1, 0), out.At(0, 0));
}

TEST(OpsForwardTest, SegmentMeanRows) {
  Tensor a = Tensor::FromData(3, 2, {1, 2, 3, 4, 5, 6});
  Tensor out = SegmentMeanRows(a, {0, 0, 1}, 2);
  EXPECT_EQ(out.At(0, 0), 2.0f);
  EXPECT_EQ(out.At(0, 1), 3.0f);
  EXPECT_EQ(out.At(1, 0), 5.0f);
}

TEST(OpsForwardTest, SegmentMaxRows) {
  Tensor a = Tensor::FromData(4, 2, {1, 9, 5, 2, 3, 7, -1, -2});
  Tensor out = SegmentMaxRows(a, {0, 0, 1, 1}, 3);
  EXPECT_EQ(out.At(0, 0), 5.0f);
  EXPECT_EQ(out.At(0, 1), 9.0f);
  EXPECT_EQ(out.At(1, 0), 3.0f);
  EXPECT_EQ(out.At(1, 1), 7.0f);
  EXPECT_EQ(out.At(2, 0), 0.0f) << "empty segments stay zero";
}

TEST(OpsForwardTest, SelectAndNll) {
  Tensor a = Tensor::FromData(2, 2, {0.1f, 0.9f, 0.8f, 0.2f});
  EXPECT_FLOAT_EQ(Select(a, 1, 0).Value(), 0.8f);
  Tensor log_probs = RowLogSoftmax(Tensor::FromData(2, 2, {0, 0, 0, 0}));
  Tensor loss = NllLoss(log_probs, {0, 1});
  EXPECT_NEAR(loss.Value(), std::log(2.0f), 1e-5);
}

TEST(InitTest, XavierBoundsAndHeScale) {
  util::Rng rng(1);
  Tensor xavier = XavierUniform(100, 50, &rng);
  const float bound = std::sqrt(6.0f / 150.0f);
  for (float v : xavier.values()) {
    EXPECT_LE(std::fabs(v), bound + 1e-6);
  }
  Tensor he = HeNormal(1000, 10, &rng);
  double variance = 0.0;
  for (float v : he.values()) variance += v * v;
  variance /= he.numel();
  EXPECT_NEAR(variance, 2.0 / 1000.0, 5e-4);
}

}  // namespace
}  // namespace revelio::tensor
