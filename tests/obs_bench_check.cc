// Standalone validator for the flight-recorder overhead sweep, used as a
// ctest fixture after `bench_table5_runtime --obs-out`:
//   obs_bench_check <BENCH_obs.json> [--no-overhead-gate]
// Exit 0 when the file carries the shared BENCH_*.json envelope, at least one
// measured point exists, every point's explanations were bitwise-equal with
// the recorder on vs off, the enabled run actually recorded events, and the
// enabled overhead stays inside the ISSUE budget: overhead_ratio <= 1.05, or
// an absolute on-minus-off delta under 25 ms (noise floor for the quick
// fixture's sub-second timings). --no-overhead-gate skips only the timing
// budget: sanitizer builds pass it because instrumented atomics inflate the
// recorder's relative cost far beyond the release-build contract
// (EXPERIMENTS.md: never quote timings from a sanitized binary) while the
// correctness checks still apply. Exit 1 on validation failure, 2 on
// usage/IO errors.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/json.h"

namespace {

using revelio::obs::JsonValue;

constexpr double kMaxOverheadRatio = 1.05;
constexpr double kAbsoluteNoiseFloorSeconds = 0.025;

const JsonValue* RequireNumber(const JsonValue& object, const char* key) {
  const JsonValue* value = object.Find(key);
  if (value == nullptr || !value->is_number()) {
    std::fprintf(stderr, "obs_bench_check: missing numeric \"%s\"\n", key);
    return nullptr;
  }
  return value;
}

}  // namespace

int main(int argc, char** argv) {
  bool overhead_gate = true;
  if (argc == 3 && std::strcmp(argv[2], "--no-overhead-gate") == 0) {
    overhead_gate = false;
  } else if (argc != 2) {
    std::fprintf(stderr, "usage: obs_bench_check <BENCH_obs.json> [--no-overhead-gate]\n");
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "obs_bench_check: cannot open %s\n", argv[1]);
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  JsonValue root;
  std::string error;
  if (!revelio::obs::ParseJson(buffer.str(), &root, &error)) {
    std::fprintf(stderr, "obs_bench_check: %s is malformed JSON: %s\n", argv[1], error.c_str());
    return 1;
  }
  const JsonValue* schema = root.Find("schema_version");
  if (schema == nullptr || !schema->is_number() || schema->number_value != 1) {
    std::fprintf(stderr, "obs_bench_check: missing schema_version 1\n");
    return 1;
  }
  const JsonValue* bench = root.Find("bench");
  if (bench == nullptr || !bench->is_string() || bench->string_value != "table5_obs") {
    std::fprintf(stderr, "obs_bench_check: bench name is not table5_obs\n");
    return 1;
  }
  const JsonValue* data = root.Find("data");
  if (data == nullptr || !data->is_object()) {
    std::fprintf(stderr, "obs_bench_check: missing data object\n");
    return 1;
  }
  const JsonValue* capacity = RequireNumber(*data, "flight_capacity");
  if (capacity == nullptr) return 1;
  if (capacity->number_value <= 0) {
    std::fprintf(stderr, "obs_bench_check: flight_capacity is not positive\n");
    return 1;
  }
  const JsonValue* points = data->Find("points");
  if (points == nullptr || !points->is_array() || points->array_items.empty()) {
    std::fprintf(stderr, "obs_bench_check: missing non-empty data.points array\n");
    return 1;
  }

  double worst_ratio = 0.0;
  for (size_t i = 0; i < points->array_items.size(); ++i) {
    const JsonValue& point = points->array_items[i];
    if (!point.is_object()) {
      std::fprintf(stderr, "obs_bench_check: point %zu is not an object\n", i);
      return 1;
    }
    const JsonValue* off_seconds = RequireNumber(point, "off_seconds");
    const JsonValue* on_seconds = RequireNumber(point, "on_seconds");
    const JsonValue* ratio = RequireNumber(point, "overhead_ratio");
    const JsonValue* events = RequireNumber(point, "flight_events");
    if (off_seconds == nullptr || on_seconds == nullptr || ratio == nullptr ||
        events == nullptr) {
      return 1;
    }
    if (off_seconds->number_value <= 0.0 || on_seconds->number_value <= 0.0) {
      std::fprintf(stderr, "obs_bench_check: point %zu has non-positive timings\n", i);
      return 1;
    }
    const JsonValue* bitwise = point.Find("bitwise_equal");
    if (bitwise == nullptr || bitwise->type != JsonValue::Type::kBool) {
      std::fprintf(stderr, "obs_bench_check: point %zu lacks bool bitwise_equal\n", i);
      return 1;
    }
    if (!bitwise->bool_value) {
      std::fprintf(stderr,
                   "obs_bench_check: point %zu: explanations diverged with the flight "
                   "recorder enabled — the observability layer touched the numerics\n",
                   i);
      return 1;
    }
    if (events->number_value <= 0) {
      std::fprintf(stderr,
                   "obs_bench_check: point %zu recorded no flight events while enabled\n", i);
      return 1;
    }
    const double delta = on_seconds->number_value - off_seconds->number_value;
    if (overhead_gate && ratio->number_value > kMaxOverheadRatio &&
        delta > kAbsoluteNoiseFloorSeconds) {
      std::fprintf(stderr,
                   "obs_bench_check: point %zu: flight-recorder overhead %.3fx "
                   "(off %.4fs -> on %.4fs, +%.4fs) exceeds the %.2fx budget\n",
                   i, ratio->number_value, off_seconds->number_value,
                   on_seconds->number_value, delta, kMaxOverheadRatio);
      return 1;
    }
    if (ratio->number_value > worst_ratio) worst_ratio = ratio->number_value;
  }

  std::printf("obs_bench_check: %s ok (%zu points, worst overhead %.3fx)\n", argv[1],
              points->array_items.size(), worst_ratio);
  return 0;
}
