// Standalone Chrome trace-event validator for ctest fixtures:
//   trace_check <trace.json> [required-span-name...]
// Exit 0 when the file parses as trace JSON, every event is structurally
// valid ("name"/"ph"/"ts" present; "X" events carry "dur"), and every
// required span name appears in at least one event. Exit 1 on validation
// failure, 2 on usage/IO errors.

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "obs/json.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: trace_check <trace.json> [required-span-name...]\n");
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "trace_check: cannot open %s\n", argv[1]);
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string document = buffer.str();

  using revelio::obs::JsonValue;
  JsonValue root;
  std::string error;
  if (!revelio::obs::ParseJson(document, &root, &error)) {
    std::fprintf(stderr, "trace_check: %s is malformed JSON: %s\n", argv[1], error.c_str());
    return 1;
  }
  if (root.type != JsonValue::Type::kObject) {
    std::fprintf(stderr, "trace_check: top level is not an object\n");
    return 1;
  }
  const JsonValue* events = root.Find("traceEvents");
  if (events == nullptr || events->type != JsonValue::Type::kArray) {
    std::fprintf(stderr, "trace_check: missing traceEvents array\n");
    return 1;
  }

  std::set<std::string> seen_names;
  int complete_events = 0;
  for (size_t i = 0; i < events->array_items.size(); ++i) {
    const JsonValue& event = events->array_items[i];
    if (event.type != JsonValue::Type::kObject) {
      std::fprintf(stderr, "trace_check: event %zu is not an object\n", i);
      return 1;
    }
    const JsonValue* name = event.Find("name");
    const JsonValue* ph = event.Find("ph");
    if (name == nullptr || name->type != JsonValue::Type::kString || ph == nullptr ||
        ph->type != JsonValue::Type::kString) {
      std::fprintf(stderr, "trace_check: event %zu lacks string name/ph\n", i);
      return 1;
    }
    if (ph->string_value == "M") continue;  // metadata events carry no ts
    const JsonValue* ts = event.Find("ts");
    if (ts == nullptr || ts->type != JsonValue::Type::kNumber) {
      std::fprintf(stderr, "trace_check: event %zu (\"%s\") lacks numeric ts\n", i,
                   name->string_value.c_str());
      return 1;
    }
    if (ph->string_value == "X") {
      const JsonValue* dur = event.Find("dur");
      if (dur == nullptr || dur->type != JsonValue::Type::kNumber || dur->number_value < 0) {
        std::fprintf(stderr, "trace_check: X event %zu (\"%s\") lacks non-negative dur\n", i,
                     name->string_value.c_str());
        return 1;
      }
      ++complete_events;
    }
    seen_names.insert(name->string_value);
  }

  bool ok = true;
  for (int a = 2; a < argc; ++a) {
    if (seen_names.count(argv[a]) == 0) {
      std::fprintf(stderr, "trace_check: required span \"%s\" not found\n", argv[a]);
      ok = false;
    }
  }
  if (!ok) return 1;
  std::printf("trace_check: %s ok (%d complete events, %zu distinct spans)\n", argv[1],
              complete_events, seen_names.size());
  return 0;
}
