// Schema check for the shared BENCH_*.json envelope: WriteBenchJson's output
// must parse with the repo's own JSON parser and carry the documented keys
// (schema_version, bench, threads, hardware_threads, data, metrics) in order,
// so downstream tooling can rely on the envelope across every bench binary.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "bench_common.h"
#include "obs/json.h"

namespace revelio::bench {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream file(path);
  std::ostringstream out;
  out << file.rdbuf();
  return out.str();
}

TEST(BenchJsonTest, EnvelopeMatchesSchema) {
  // A bare filename is routed into the gitignored artifacts/ directory by
  // PrepareArtifactPath; read it back from there.
  const std::string path = "artifacts/bench_json_test_envelope.json";
  const bool ok = WriteBenchJson("bench_json_test_envelope.json", "schema_probe",
                                 [](obs::JsonWriter* w) {
    w->BeginObject();
    w->Key("answer");
    w->Int(42);
    w->Key("items");
    w->BeginArray();
    w->Double(1.5);
    w->String("two");
    w->EndArray();
    w->EndObject();
  });
  ASSERT_TRUE(ok);

  const std::string text = ReadFile(path);
  std::remove(path.c_str());
  ASSERT_FALSE(text.empty());

  obs::JsonValue doc;
  std::string error;
  ASSERT_TRUE(obs::ParseJson(text, &doc, &error)) << error;
  ASSERT_TRUE(doc.is_object());

  // The envelope keys, in the documented order.
  ASSERT_EQ(doc.object_items.size(), 6u);
  EXPECT_EQ(doc.object_items[0].first, "schema_version");
  EXPECT_EQ(doc.object_items[1].first, "bench");
  EXPECT_EQ(doc.object_items[2].first, "threads");
  EXPECT_EQ(doc.object_items[3].first, "hardware_threads");
  EXPECT_EQ(doc.object_items[4].first, "data");
  EXPECT_EQ(doc.object_items[5].first, "metrics");

  const obs::JsonValue* version = doc.Find("schema_version");
  ASSERT_NE(version, nullptr);
  ASSERT_TRUE(version->is_number());
  EXPECT_EQ(version->number_value, 1.0);

  const obs::JsonValue* bench = doc.Find("bench");
  ASSERT_NE(bench, nullptr);
  ASSERT_TRUE(bench->is_string());
  EXPECT_EQ(bench->string_value, "schema_probe");

  const obs::JsonValue* threads = doc.Find("threads");
  ASSERT_NE(threads, nullptr);
  ASSERT_TRUE(threads->is_number());
  EXPECT_GE(threads->number_value, 1.0);

  const obs::JsonValue* hardware = doc.Find("hardware_threads");
  ASSERT_NE(hardware, nullptr);
  ASSERT_TRUE(hardware->is_number());
  EXPECT_GE(hardware->number_value, 1.0);

  // The bench-specific payload round-trips intact.
  const obs::JsonValue* data = doc.Find("data");
  ASSERT_NE(data, nullptr);
  ASSERT_TRUE(data->is_object());
  const obs::JsonValue* answer = data->Find("answer");
  ASSERT_NE(answer, nullptr);
  EXPECT_EQ(answer->number_value, 42.0);
  const obs::JsonValue* items = data->Find("items");
  ASSERT_NE(items, nullptr);
  ASSERT_TRUE(items->is_array());
  ASSERT_EQ(items->array_items.size(), 2u);
  EXPECT_EQ(items->array_items[0].number_value, 1.5);
  EXPECT_EQ(items->array_items[1].string_value, "two");

  const obs::JsonValue* metrics = doc.Find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_TRUE(metrics->is_object());
}

TEST(BenchJsonTest, UnwritablePathReturnsFalse) {
  // PrepareArtifactPath creates missing parent directories (so a merely
  // nonexistent directory no longer fails, even as root); block the write by
  // putting a regular file where a parent directory would have to go.
  const std::string blocker = "bench_json_test_blocker";
  std::remove(blocker.c_str());
  {
    std::ofstream file(blocker);
    file << "not a directory";
  }
  const bool ok = WriteBenchJson(blocker + "/out.json", "schema_probe",
                                 [](obs::JsonWriter* w) { w->Null(); });
  EXPECT_FALSE(ok);
  std::remove(blocker.c_str());
}

}  // namespace
}  // namespace revelio::bench
