// Tests for the obs telemetry subsystem: JSON writer/parser round trips,
// counter/histogram correctness under ParallelFor contention, span nesting
// across threads, the disabled-mode zero-allocation contract, and the
// Chrome-trace / metrics JSON exports parsed back for well-formedness.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/parallel.h"

// --- Global allocation counting (for the disabled-mode contract) -------------
// Counting is gated so gtest's own allocations do not interfere; only the
// window between StartCountingAllocations/StopCountingAllocations counts.

namespace {
std::atomic<bool> g_count_allocations{false};
std::atomic<int64_t> g_allocation_count{0};

void StartCountingAllocations() {
  g_allocation_count.store(0, std::memory_order_relaxed);
  g_count_allocations.store(true, std::memory_order_relaxed);
}

int64_t StopCountingAllocations() {
  g_count_allocations.store(false, std::memory_order_relaxed);
  return g_allocation_count.load(std::memory_order_relaxed);
}
}  // namespace

void* operator new(std::size_t size) {
  if (g_count_allocations.load(std::memory_order_relaxed)) {
    g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace revelio {
namespace {

// Every test leaves telemetry disabled and the thread count restored.
class ObsTest : public ::testing::Test {
 protected:
  void TearDown() override {
    obs::SetEnabled(false);
    obs::TraceRecorder::Global().Clear();
    util::SetNumThreads(util::HardwareThreads());
  }
};

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

// --- JSON --------------------------------------------------------------------

TEST_F(ObsTest, JsonWriterRoundTrip) {
  obs::JsonWriter writer;
  writer.BeginObject();
  writer.Key("text");
  writer.String("line1\nline2 \"quoted\" \\ tab\t");
  writer.Key("int");
  writer.Int(-42);
  writer.Key("uint");
  writer.Uint(uint64_t{1} << 60);
  writer.Key("pi");
  writer.Double(3.25);
  writer.Key("flag");
  writer.Bool(true);
  writer.Key("nothing");
  writer.Null();
  writer.Key("items");
  writer.BeginArray();
  writer.Int(1);
  writer.Int(2);
  writer.BeginObject();
  writer.Key("nested");
  writer.String("yes");
  writer.EndObject();
  writer.EndArray();
  writer.EndObject();

  obs::JsonValue root;
  std::string error;
  ASSERT_TRUE(obs::ParseJson(writer.str(), &root, &error)) << error;
  ASSERT_TRUE(root.is_object());
  ASSERT_NE(root.Find("text"), nullptr);
  EXPECT_EQ(root.Find("text")->string_value, "line1\nline2 \"quoted\" \\ tab\t");
  EXPECT_EQ(root.Find("int")->number_value, -42.0);
  EXPECT_EQ(root.Find("pi")->number_value, 3.25);
  EXPECT_TRUE(root.Find("flag")->bool_value);
  EXPECT_EQ(root.Find("nothing")->type, obs::JsonValue::Type::kNull);
  ASSERT_TRUE(root.Find("items")->is_array());
  ASSERT_EQ(root.Find("items")->array_items.size(), 3u);
  EXPECT_EQ(root.Find("items")->array_items[2].Find("nested")->string_value, "yes");
}

TEST_F(ObsTest, JsonWriterNonFiniteBecomesNull) {
  obs::JsonWriter writer;
  writer.BeginArray();
  writer.Double(std::numeric_limits<double>::infinity());
  writer.Double(std::numeric_limits<double>::quiet_NaN());
  writer.EndArray();
  EXPECT_EQ(writer.str(), "[null,null]");
}

TEST_F(ObsTest, JsonParserRejectsMalformed) {
  obs::JsonValue root;
  std::string error;
  EXPECT_FALSE(obs::ParseJson("{\"a\": 1,}", &root, &error));
  EXPECT_FALSE(obs::ParseJson("{\"a\" 1}", &root, &error));
  EXPECT_FALSE(obs::ParseJson("[1, 2", &root, &error));
  EXPECT_FALSE(obs::ParseJson("{} trailing", &root, &error));
  EXPECT_FALSE(obs::ParseJson("", &root, &error));
}

TEST_F(ObsTest, JsonParserHandlesEscapes) {
  obs::JsonValue root;
  std::string error;
  ASSERT_TRUE(obs::ParseJson(R"({"s": "aA\n\t\"\\"})", &root, &error)) << error;
  EXPECT_EQ(root.Find("s")->string_value, "aA\n\t\"\\");
}

// --- Metrics -----------------------------------------------------------------

TEST_F(ObsTest, CounterUnderParallelForContention) {
  obs::SetEnabled(true);
  util::SetNumThreads(4);
  obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("test.counter.contention");
  counter->Reset();
  constexpr int64_t kItems = 200'000;
  util::ParallelFor(0, kItems, 1000, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) counter->Increment();
  });
  EXPECT_EQ(counter->Total(), static_cast<uint64_t>(kItems));
  counter->Add(0);  // no-op by contract
  EXPECT_EQ(counter->Total(), static_cast<uint64_t>(kItems));
}

TEST_F(ObsTest, CounterIgnoredWhenDisabled) {
  obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter("test.counter.disabled");
  counter->Reset();
  obs::SetEnabled(false);
  counter->Add(7);
  EXPECT_EQ(counter->Total(), 0u);
  obs::SetEnabled(true);
  counter->Add(7);
  EXPECT_EQ(counter->Total(), 7u);
}

TEST_F(ObsTest, GaugeGatedOnEnabled) {
  obs::Gauge* gauge = obs::MetricsRegistry::Global().GetGauge("test.gauge");
  gauge->Reset();
  obs::SetEnabled(false);
  gauge->Set(1.5);
  EXPECT_EQ(gauge->Value(), 0.0);
  obs::SetEnabled(true);
  gauge->Set(2.5);
  EXPECT_EQ(gauge->Value(), 2.5);
}

TEST_F(ObsTest, HistogramBucketsAndContention) {
  obs::SetEnabled(true);
  util::SetNumThreads(4);
  obs::Histogram* histogram =
      obs::MetricsRegistry::Global().GetHistogram("test.histogram", {1.0, 2.0, 3.0});
  histogram->Reset();
  // Values cycle 0.5 / 1.5 / 2.5 / 4.0 -> one observation per bucket per cycle.
  constexpr int64_t kCycles = 10'000;
  const double values[4] = {0.5, 1.5, 2.5, 4.0};
  util::ParallelFor(0, kCycles * 4, 500, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) histogram->Observe(values[i % 4]);
  });
  EXPECT_EQ(histogram->Count(), static_cast<uint64_t>(kCycles * 4));
  const std::vector<uint64_t> counts = histogram->BucketCounts();
  ASSERT_EQ(counts.size(), 4u);
  for (uint64_t c : counts) EXPECT_EQ(c, static_cast<uint64_t>(kCycles));
  EXPECT_NEAR(histogram->Sum(), kCycles * (0.5 + 1.5 + 2.5 + 4.0), 1e-6);
}

TEST_F(ObsTest, RegistryReturnsStablePointers) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::Counter* a = registry.GetCounter("test.stable");
  obs::Counter* b = registry.GetCounter("test.stable");
  EXPECT_EQ(a, b);
  obs::Histogram* h1 = registry.GetHistogram("test.stable.h", {1.0});
  obs::Histogram* h2 = registry.GetHistogram("test.stable.h", {5.0, 6.0});
  EXPECT_EQ(h1, h2);  // re-registration keeps the original bounds
  EXPECT_EQ(h1->bucket_bounds().size(), 1u);
}

TEST_F(ObsTest, MetricsJsonExportParsesBack) {
  obs::SetEnabled(true);
  obs::MetricsRegistry::Global().GetCounter("test.export.counter")->Reset();
  obs::MetricsRegistry::Global().GetCounter("test.export.counter")->Add(5);
  const std::string path = TempPath("metrics_export.json");
  ASSERT_TRUE(obs::WriteMetricsJsonFile(path));
  obs::JsonValue root;
  std::string error;
  ASSERT_TRUE(obs::ParseJson(ReadFile(path), &root, &error)) << error;
  const obs::JsonValue* metrics = root.Find("metrics");
  ASSERT_NE(metrics, nullptr);
  const obs::JsonValue* counters = metrics->Find("counters");
  ASSERT_NE(counters, nullptr);
  const obs::JsonValue* value = counters->Find("test.export.counter");
  ASSERT_NE(value, nullptr);
  EXPECT_EQ(value->number_value, 5.0);
  ASSERT_NE(metrics->Find("gauges"), nullptr);
  ASSERT_NE(metrics->Find("histograms"), nullptr);
  std::remove(path.c_str());
}

// --- Spans -------------------------------------------------------------------

TEST_F(ObsTest, SpanNestingOnOneThread) {
  obs::SetEnabled(true);
  obs::TraceRecorder::Global().Clear();
  {
    obs::ScopedSpan outer("test.outer");
    obs::ScopedSpan inner("test.inner");
  }
  const std::vector<obs::TraceEvent> events = obs::TraceRecorder::Global().Consolidated();
  const obs::TraceEvent* outer = nullptr;
  const obs::TraceEvent* inner = nullptr;
  for (const auto& event : events) {
    if (event.name == "test.outer") outer = &event;
    if (event.name == "test.inner") inner = &event;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->tid, inner->tid);
  EXPECT_EQ(inner->depth, outer->depth + 1);
  // Containment: the inner interval lies within the outer one.
  EXPECT_GE(inner->start_us, outer->start_us);
  EXPECT_LE(inner->start_us + inner->dur_us, outer->start_us + outer->dur_us + 1e-6);
}

TEST_F(ObsTest, SpansAcrossParallelForThreads) {
  obs::SetEnabled(true);
  util::SetNumThreads(4);
  obs::TraceRecorder::Global().Clear();
  util::ParallelFor(0, 16, 1, [](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      obs::ScopedSpan span("test.task");
      volatile double sink = 0.0;
      for (int k = 0; k < 1000; ++k) sink += k;
      (void)sink;
    }
  });
  const std::vector<obs::TraceEvent> events = obs::TraceRecorder::Global().Consolidated();
  int tasks = 0;
  int workers = 0;
  for (const auto& event : events) {
    if (event.name == "test.task") {
      ++tasks;
      // Each task span is nested inside its thread's ParallelFor.worker span.
      EXPECT_GE(event.depth, 1);
    }
    if (event.name == "ParallelFor.worker") ++workers;
  }
  EXPECT_EQ(tasks, 16);
  EXPECT_GE(workers, 1);
}

TEST_F(ObsTest, EventCapCountsDropped) {
  obs::SetEnabled(true);
  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  recorder.Clear();
  const size_t original_cap = recorder.max_events_per_thread();
  recorder.SetMaxEventsPerThread(4);
  for (int i = 0; i < 10; ++i) {
    obs::ScopedSpan span("test.capped");
  }
  EXPECT_GE(recorder.dropped_events(), 1u);
  EXPECT_LE(recorder.Consolidated().size(), 4u);
  recorder.SetMaxEventsPerThread(original_cap);
}

TEST_F(ObsTest, DisabledSpansAndMetricsAllocateNothing) {
  // Warm the thread-local shard and span log while enabled so registration
  // allocations happen outside the measured window.
  obs::SetEnabled(true);
  obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter("test.noalloc");
  {
    obs::ScopedSpan warm("test.warm");
    counter->Increment();
  }
  obs::SetEnabled(false);

  StartCountingAllocations();
  for (int i = 0; i < 100; ++i) {
    obs::ScopedSpan span("test.noalloc.span");
    counter->Add(3);
  }
  const int64_t allocations = StopCountingAllocations();
  EXPECT_EQ(allocations, 0);
}

TEST_F(ObsTest, ChromeTraceExportIsWellFormed) {
  obs::SetEnabled(true);
  util::SetNumThreads(2);
  obs::TraceRecorder::Global().Clear();
  {
    obs::ScopedSpan outer("test.export.outer");
    util::ParallelFor(0, 8, 1, [](int64_t, int64_t) {
      obs::ScopedSpan task("test.export.task");
    });
  }
  const std::string path = TempPath("trace_export.json");
  ASSERT_TRUE(obs::TraceRecorder::Global().WriteChromeTrace(path));

  obs::JsonValue root;
  std::string error;
  ASSERT_TRUE(obs::ParseJson(ReadFile(path), &root, &error)) << error;
  ASSERT_NE(root.Find("displayTimeUnit"), nullptr);
  EXPECT_EQ(root.Find("displayTimeUnit")->string_value, "ms");
  const obs::JsonValue* events = root.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  bool saw_outer = false;
  bool saw_task = false;
  bool saw_thread_metadata = false;
  for (const auto& event : events->array_items) {
    ASSERT_TRUE(event.is_object());
    const obs::JsonValue* name = event.Find("name");
    const obs::JsonValue* ph = event.Find("ph");
    ASSERT_NE(name, nullptr);
    ASSERT_NE(ph, nullptr);
    if (ph->string_value == "X") {
      ASSERT_NE(event.Find("ts"), nullptr);
      ASSERT_NE(event.Find("dur"), nullptr);
      ASSERT_NE(event.Find("tid"), nullptr);
      if (name->string_value == "test.export.outer") saw_outer = true;
      if (name->string_value == "test.export.task") saw_task = true;
    } else if (ph->string_value == "M" && name->string_value == "thread_name") {
      saw_thread_metadata = true;
    }
  }
  EXPECT_TRUE(saw_outer);
  EXPECT_TRUE(saw_task);
  EXPECT_TRUE(saw_thread_metadata);
  std::remove(path.c_str());
}

TEST_F(ObsTest, ProfileTableAggregatesSpans) {
  obs::SetEnabled(true);
  obs::TraceRecorder::Global().Clear();
  {
    obs::ScopedSpan outer("test.profile.outer");
    obs::ScopedSpan inner("test.profile.inner");
  }
  const std::string table = obs::TraceRecorder::Global().ProfileTable();
  EXPECT_NE(table.find("test.profile.outer"), std::string::npos);
  EXPECT_NE(table.find("test.profile.inner"), std::string::npos);
  EXPECT_NE(table.find("Self"), std::string::npos);
  obs::TraceRecorder::Global().Clear();
  EXPECT_TRUE(obs::TraceRecorder::Global().ProfileTable().empty());
}

TEST_F(ObsTest, SnapshotIsSortedByName) {
  obs::MetricsRegistry::Global().GetCounter("test.zz");
  obs::MetricsRegistry::Global().GetCounter("test.aa");
  const obs::MetricsSnapshot snapshot = obs::MetricsRegistry::Global().Snapshot();
  for (size_t i = 1; i < snapshot.counters.size(); ++i) {
    EXPECT_LT(snapshot.counters[i - 1].first, snapshot.counters[i].first);
  }
}

// --- JSON escaping round trips (audit/trace writers depend on these) ---------

TEST_F(ObsTest, JsonEscapeControlCharactersRoundTrip) {
  // Every byte below 0x20 plus the named escapes must survive write -> parse.
  std::string raw;
  for (int c = 1; c < 0x20; ++c) raw.push_back(static_cast<char>(c));
  raw += "\"\\/ plain ASCII";
  obs::JsonWriter writer;
  writer.BeginObject();
  writer.Key(raw);  // keys are escaped through the same path as values
  writer.String(raw);
  writer.EndObject();

  obs::JsonValue root;
  std::string error;
  ASSERT_TRUE(obs::ParseJson(writer.str(), &root, &error)) << error;
  ASSERT_EQ(root.object_items.size(), 1u);
  EXPECT_EQ(root.object_items[0].first, raw);
  EXPECT_EQ(root.object_items[0].second.string_value, raw);
}

TEST_F(ObsTest, JsonEscapeEmbeddedNulAndHighBytes) {
  const std::string raw = std::string("a\0b", 3) + "\xc3\xa9";  // NUL + UTF-8 é
  obs::JsonWriter writer;
  writer.String(raw);
  // NUL is escaped as \u0000 so the document itself stays NUL-free.
  EXPECT_EQ(writer.str().find('\0'), std::string::npos);
  obs::JsonValue root;
  std::string error;
  ASSERT_TRUE(obs::ParseJson(writer.str(), &root, &error)) << error;
  EXPECT_EQ(root.string_value, raw);
}

TEST_F(ObsTest, JsonNonFiniteParsesBackAsNull) {
  obs::JsonWriter writer;
  writer.BeginArray();
  writer.Double(std::numeric_limits<double>::infinity());
  writer.Double(-std::numeric_limits<double>::infinity());
  writer.Double(std::numeric_limits<double>::quiet_NaN());
  writer.Double(1.5);
  writer.EndArray();
  obs::JsonValue root;
  std::string error;
  ASSERT_TRUE(obs::ParseJson(writer.str(), &root, &error)) << error;
  ASSERT_EQ(root.array_items.size(), 4u);
  EXPECT_EQ(root.array_items[0].type, obs::JsonValue::Type::kNull);
  EXPECT_EQ(root.array_items[1].type, obs::JsonValue::Type::kNull);
  EXPECT_EQ(root.array_items[2].type, obs::JsonValue::Type::kNull);
  EXPECT_EQ(root.array_items[3].number_value, 1.5);
}

// --- SLO histogram summarization ---------------------------------------------

obs::MetricsSnapshot::HistogramEntry MakeEntry(std::vector<double> bounds,
                                               std::vector<uint64_t> counts) {
  obs::MetricsSnapshot::HistogramEntry entry;
  entry.name = "test.quantile";
  entry.bounds = std::move(bounds);
  entry.counts = std::move(counts);
  for (uint64_t c : entry.counts) entry.count += c;
  return entry;
}

TEST_F(ObsTest, HistogramQuantileUniformSingleBucket) {
  // 100 observations all in (0, 10]: the estimate interpolates linearly, so
  // p50 = 5, p95 = 9.5, p99 = 9.9.
  const auto entry = MakeEntry({10.0}, {100, 0});
  EXPECT_DOUBLE_EQ(obs::HistogramQuantile(entry, 0.50), 5.0);
  EXPECT_DOUBLE_EQ(obs::HistogramQuantile(entry, 0.95), 9.5);
  EXPECT_DOUBLE_EQ(obs::HistogramQuantile(entry, 0.99), 9.9);
  EXPECT_DOUBLE_EQ(obs::HistogramQuantile(entry, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(obs::HistogramQuantile(entry, 1.0), 10.0);
}

TEST_F(ObsTest, HistogramQuantileSeededDistributionLandsInRightBucket) {
  // A seeded skewed grid: 80 fast, 15 medium, 4 slow, 1 overflow.
  const auto entry = MakeEntry({0.001, 0.01, 0.1, 1.0}, {80, 15, 4, 0, 1});
  const obs::HistogramSummary summary = obs::SummarizeHistogram(entry);
  // p50 lands inside the first bucket (rank 50 of 80).
  EXPECT_GT(summary.p50, 0.0);
  EXPECT_LE(summary.p50, 0.001);
  EXPECT_DOUBLE_EQ(summary.p50, 0.001 * (50.0 / 80.0));
  // p95 is exactly the second bucket's upper bound (rank 95 = cum end).
  EXPECT_DOUBLE_EQ(summary.p95, 0.01);
  // p99 lands in the third bucket: rank 99, 4 observations span (0.01, 0.1].
  EXPECT_DOUBLE_EQ(summary.p99, 0.01 + (0.1 - 0.01) * ((99.0 - 95.0) / 4.0));
}

TEST_F(ObsTest, HistogramQuantileOverflowSaturatesAtLargestBound) {
  // Most mass in the overflow bucket: every quantile past the finite buckets
  // reports the largest finite bound instead of extrapolating.
  const auto entry = MakeEntry({1.0, 2.0}, {1, 1, 98});
  EXPECT_DOUBLE_EQ(obs::HistogramQuantile(entry, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(obs::HistogramQuantile(entry, 0.99), 2.0);
  // Out-of-range q is clamped.
  EXPECT_DOUBLE_EQ(obs::HistogramQuantile(entry, 1.5), 2.0);
  EXPECT_DOUBLE_EQ(obs::HistogramQuantile(entry, -0.5), 0.0);
}

TEST_F(ObsTest, HistogramQuantileEmptyAndNegativeGrids) {
  const auto empty = MakeEntry({1.0}, {0, 0});
  EXPECT_DOUBLE_EQ(obs::HistogramQuantile(empty, 0.5), 0.0);
  // A grid starting below zero uses bounds[0] as the first lower edge.
  const auto negative = MakeEntry({-1.0, 1.0}, {0, 10, 0});
  EXPECT_DOUBLE_EQ(obs::HistogramQuantile(negative, 0.5), 0.0);  // midpoint of (-1, 1)
}

TEST_F(ObsTest, HistogramMergeIsCommutativeAndAssociative) {
  const auto a = MakeEntry({1.0, 2.0}, {1, 2, 3});
  const auto b = MakeEntry({1.0, 2.0}, {4, 0, 1});
  const auto c = MakeEntry({1.0, 2.0}, {0, 7, 2});

  // (a + b) + c
  auto left = a;
  ASSERT_TRUE(obs::MergeHistogramEntry(&left, b));
  ASSERT_TRUE(obs::MergeHistogramEntry(&left, c));
  // a + (b + c)
  auto right_inner = b;
  ASSERT_TRUE(obs::MergeHistogramEntry(&right_inner, c));
  auto right = a;
  ASSERT_TRUE(obs::MergeHistogramEntry(&right, right_inner));
  // b + a (commutativity)
  auto swapped = b;
  ASSERT_TRUE(obs::MergeHistogramEntry(&swapped, a));

  EXPECT_EQ(left.counts, right.counts);
  EXPECT_EQ(left.count, right.count);
  EXPECT_DOUBLE_EQ(left.sum, right.sum);
  auto ab = a;
  ASSERT_TRUE(obs::MergeHistogramEntry(&ab, b));
  EXPECT_EQ(ab.counts, swapped.counts);
  // Quantiles of the merge depend only on the merged counts.
  EXPECT_DOUBLE_EQ(obs::SummarizeHistogram(left).p95, obs::SummarizeHistogram(right).p95);
}

TEST_F(ObsTest, HistogramMergeRejectsMismatchedBounds) {
  auto into = MakeEntry({1.0, 2.0}, {1, 2, 3});
  const auto original = into;
  const auto other = MakeEntry({1.0, 3.0}, {4, 5, 6});
  EXPECT_FALSE(obs::MergeHistogramEntry(&into, other));
  EXPECT_EQ(into.counts, original.counts) << "failed merge must leave `into` untouched";
  EXPECT_EQ(into.count, original.count);
}

TEST_F(ObsTest, SnapshotQuantilesMatchShardedObservation) {
  // Observations spread across ParallelFor shards summarize the same as the
  // single-shard math: the snapshot merges shards before we summarize.
  obs::SetEnabled(true);
  util::SetNumThreads(4);
  obs::Histogram* histogram =
      obs::MetricsRegistry::Global().GetHistogram("test.quantile.sharded", {1.0, 2.0, 4.0});
  histogram->Reset();
  util::ParallelFor(0, 400, 25, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) histogram->Observe(0.5 + 3.0 * (i % 2));
  });
  const obs::MetricsSnapshot snapshot = obs::MetricsRegistry::Global().Snapshot();
  const obs::MetricsSnapshot::HistogramEntry* entry = nullptr;
  for (const auto& h : snapshot.histograms) {
    if (h.name == "test.quantile.sharded") entry = &h;
  }
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->count, 400u);
  // 200 at 0.5 (bucket <=1), 200 at 3.5 (bucket <=4): p50 is the first
  // bucket's upper edge, p95 interpolates inside (2, 4].
  const obs::HistogramSummary summary = obs::SummarizeHistogram(*entry);
  EXPECT_DOUBLE_EQ(summary.p50, 1.0);
  EXPECT_DOUBLE_EQ(summary.p95, 2.0 + 2.0 * ((380.0 - 200.0) / 200.0));
}

}  // namespace
}  // namespace revelio
