// Standalone validator for the fused-SpMM bench result, used as a ctest
// fixture after `bench_micro_kernels --quick`:
//   spmm_bench_check <BENCH_spmm.json>
// Exit 0 when the file carries the shared BENCH_*.json envelope, the sweep
// has at least one point, every point's fused output was bitwise-equal to
// the legacy chain, and the fused path is at least as fast as the chain
// (speedup >= 1.0) at the largest problem size. Exit 1 on validation
// failure, 2 on usage/IO errors.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/json.h"

namespace {

using revelio::obs::JsonValue;

const JsonValue* RequireNumber(const JsonValue& object, const char* key) {
  const JsonValue* value = object.Find(key);
  if (value == nullptr || !value->is_number()) {
    std::fprintf(stderr, "spmm_bench_check: missing numeric \"%s\"\n", key);
    return nullptr;
  }
  return value;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: spmm_bench_check <BENCH_spmm.json>\n");
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "spmm_bench_check: cannot open %s\n", argv[1]);
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  JsonValue root;
  std::string error;
  if (!revelio::obs::ParseJson(buffer.str(), &root, &error)) {
    std::fprintf(stderr, "spmm_bench_check: %s is malformed JSON: %s\n", argv[1],
                 error.c_str());
    return 1;
  }
  if (!root.is_object()) {
    std::fprintf(stderr, "spmm_bench_check: top level is not an object\n");
    return 1;
  }

  // Shared envelope (bench/bench_common.h WriteBenchJson).
  const JsonValue* schema = root.Find("schema_version");
  if (schema == nullptr || !schema->is_number() || schema->number_value != 1) {
    std::fprintf(stderr, "spmm_bench_check: missing schema_version 1\n");
    return 1;
  }
  const JsonValue* bench = root.Find("bench");
  if (bench == nullptr || !bench->is_string() ||
      bench->string_value != "spmm_fused_vs_chain") {
    std::fprintf(stderr, "spmm_bench_check: bench name is not spmm_fused_vs_chain\n");
    return 1;
  }
  const JsonValue* data = root.Find("data");
  if (data == nullptr || !data->is_object()) {
    std::fprintf(stderr, "spmm_bench_check: missing data object\n");
    return 1;
  }
  const JsonValue* points = data->Find("points");
  if (points == nullptr || !points->is_array() || points->array_items.empty()) {
    std::fprintf(stderr, "spmm_bench_check: missing non-empty data.points array\n");
    return 1;
  }

  double largest_edges = -1.0;
  double largest_speedup = 0.0;
  for (size_t i = 0; i < points->array_items.size(); ++i) {
    const JsonValue& point = points->array_items[i];
    if (!point.is_object()) {
      std::fprintf(stderr, "spmm_bench_check: point %zu is not an object\n", i);
      return 1;
    }
    const JsonValue* edges = RequireNumber(point, "edges");
    const JsonValue* chain_s = RequireNumber(point, "chain_seconds");
    const JsonValue* fused_s = RequireNumber(point, "fused_seconds");
    const JsonValue* speedup = RequireNumber(point, "fused_speedup");
    if (edges == nullptr || chain_s == nullptr || fused_s == nullptr || speedup == nullptr) {
      return 1;
    }
    const JsonValue* bitwise = point.Find("bitwise_equal");
    if (bitwise == nullptr || bitwise->type != JsonValue::Type::kBool) {
      std::fprintf(stderr, "spmm_bench_check: point %zu lacks bool bitwise_equal\n", i);
      return 1;
    }
    if (!bitwise->bool_value) {
      std::fprintf(stderr,
                   "spmm_bench_check: point %zu (edges=%.0f): fused output diverged "
                   "from the legacy chain\n",
                   i, edges->number_value);
      return 1;
    }
    if (fused_s->number_value <= 0.0 || chain_s->number_value <= 0.0) {
      std::fprintf(stderr, "spmm_bench_check: point %zu has non-positive timings\n", i);
      return 1;
    }
    if (edges->number_value > largest_edges) {
      largest_edges = edges->number_value;
      largest_speedup = speedup->number_value;
    }
  }

  if (largest_speedup < 1.0) {
    std::fprintf(stderr,
                 "spmm_bench_check: fused path slower than the legacy chain at the "
                 "largest size (edges=%.0f, speedup=%.3fx < 1.0x)\n",
                 largest_edges, largest_speedup);
    return 1;
  }
  std::printf("spmm_bench_check: %s ok (%zu points, largest size edges=%.0f speedup=%.2fx)\n",
              argv[1], points->array_items.size(), largest_edges, largest_speedup);
  return 0;
}
