// Standalone validator for the SIMD tier bench result, used as a ctest
// fixture after `bench_micro_kernels --simd-sweep --quick`:
//   simd_bench_check <BENCH_simd.json>
// Exit 0 when the file carries the shared BENCH_*.json envelope, every sweep
// point's SIMD output was bitwise-equal to the scalar loop, the SIMD path is
// at least 1.3x faster than scalar on the LARGEST elementwise and matmul
// sizes at 1 thread, and the bf16 eval probe moved exactly half the operand
// bytes of the f32 probe. On a scalar build (lanes == 1) the speedup gates
// are vacuous and skipped — there is no vector tier to regress. Exit 1 on
// validation failure, 2 on usage/IO errors.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/json.h"

namespace {

using revelio::obs::JsonValue;

const JsonValue* RequireNumber(const JsonValue& object, const char* key) {
  const JsonValue* value = object.Find(key);
  if (value == nullptr || !value->is_number()) {
    std::fprintf(stderr, "simd_bench_check: missing numeric \"%s\"\n", key);
    return nullptr;
  }
  return value;
}

bool HasPrefix(const std::string& s, const char* prefix) {
  return s.compare(0, std::strlen(prefix), prefix) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: simd_bench_check <BENCH_simd.json>\n");
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "simd_bench_check: cannot open %s\n", argv[1]);
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  JsonValue root;
  std::string error;
  if (!revelio::obs::ParseJson(buffer.str(), &root, &error)) {
    std::fprintf(stderr, "simd_bench_check: %s is malformed JSON: %s\n", argv[1], error.c_str());
    return 1;
  }
  if (!root.is_object()) {
    std::fprintf(stderr, "simd_bench_check: top level is not an object\n");
    return 1;
  }

  // Shared envelope (bench/bench_common.h WriteBenchJson).
  const JsonValue* schema = root.Find("schema_version");
  if (schema == nullptr || !schema->is_number() || schema->number_value != 1) {
    std::fprintf(stderr, "simd_bench_check: missing schema_version 1\n");
    return 1;
  }
  const JsonValue* bench = root.Find("bench");
  if (bench == nullptr || !bench->is_string() || bench->string_value != "simd_sweep") {
    std::fprintf(stderr, "simd_bench_check: bench name is not simd_sweep\n");
    return 1;
  }
  const JsonValue* data = root.Find("data");
  if (data == nullptr || !data->is_object()) {
    std::fprintf(stderr, "simd_bench_check: missing data object\n");
    return 1;
  }
  const JsonValue* lanes = RequireNumber(*data, "lanes");
  if (lanes == nullptr) return 1;
  const JsonValue* points = data->Find("points");
  if (points == nullptr || !points->is_array() || points->array_items.empty()) {
    std::fprintf(stderr, "simd_bench_check: missing non-empty data.points array\n");
    return 1;
  }

  // Per-family largest point (by flat element count) and its speedup.
  double largest_ew = -1.0, ew_speedup = 0.0;
  double largest_mm = -1.0, mm_speedup = 0.0;
  for (size_t i = 0; i < points->array_items.size(); ++i) {
    const JsonValue& point = points->array_items[i];
    if (!point.is_object()) {
      std::fprintf(stderr, "simd_bench_check: point %zu is not an object\n", i);
      return 1;
    }
    const JsonValue* kernel = point.Find("kernel");
    if (kernel == nullptr || !kernel->is_string()) {
      std::fprintf(stderr, "simd_bench_check: point %zu lacks kernel name\n", i);
      return 1;
    }
    const JsonValue* elements = RequireNumber(point, "elements");
    const JsonValue* scalar_s = RequireNumber(point, "scalar_seconds");
    const JsonValue* simd_s = RequireNumber(point, "simd_seconds");
    const JsonValue* speedup = RequireNumber(point, "simd_speedup");
    if (elements == nullptr || scalar_s == nullptr || simd_s == nullptr || speedup == nullptr) {
      return 1;
    }
    if (scalar_s->number_value <= 0.0 || simd_s->number_value <= 0.0) {
      std::fprintf(stderr, "simd_bench_check: point %zu has non-positive timings\n", i);
      return 1;
    }
    const JsonValue* bitwise = point.Find("bitwise_equal");
    if (bitwise == nullptr || bitwise->type != JsonValue::Type::kBool) {
      std::fprintf(stderr, "simd_bench_check: point %zu lacks bool bitwise_equal\n", i);
      return 1;
    }
    if (!bitwise->bool_value) {
      std::fprintf(stderr, "simd_bench_check: %s: SIMD output diverged from the scalar loop\n",
                   kernel->string_value.c_str());
      return 1;
    }
    if (HasPrefix(kernel->string_value, "elementwise_") &&
        elements->number_value > largest_ew) {
      largest_ew = elements->number_value;
      ew_speedup = speedup->number_value;
    }
    if (HasPrefix(kernel->string_value, "matmul_") && elements->number_value > largest_mm) {
      largest_mm = elements->number_value;
      mm_speedup = speedup->number_value;
    }
  }

  constexpr double kMinSpeedup = 1.3;
  if (lanes->number_value > 1.0) {
    if (largest_ew < 0.0 || largest_mm < 0.0) {
      std::fprintf(stderr, "simd_bench_check: sweep lacks elementwise or matmul points\n");
      return 1;
    }
    if (ew_speedup < kMinSpeedup) {
      std::fprintf(stderr,
                   "simd_bench_check: elementwise speedup %.3fx < %.1fx at the largest size "
                   "(%.0f elements, 1 thread)\n",
                   ew_speedup, kMinSpeedup, largest_ew);
      return 1;
    }
    if (mm_speedup < kMinSpeedup) {
      std::fprintf(stderr,
                   "simd_bench_check: matmul speedup %.3fx < %.1fx at the largest size "
                   "(%.0f flops, 1 thread)\n",
                   mm_speedup, kMinSpeedup, largest_mm);
      return 1;
    }
  } else {
    std::printf("simd_bench_check: scalar build (lanes=1), speedup gates skipped\n");
  }

  // bf16 probe: operand traffic must be EXACTLY halved — the counter records
  // the per-element width the kernel actually read, so anything else means
  // the tier silently failed to engage (or engaged where it must not).
  const JsonValue* bf16 = data->Find("bf16");
  if (bf16 == nullptr || !bf16->is_object()) {
    std::fprintf(stderr, "simd_bench_check: missing data.bf16 object\n");
    return 1;
  }
  const JsonValue* f32_bytes = RequireNumber(*bf16, "f32_input_bytes");
  const JsonValue* bf16_bytes = RequireNumber(*bf16, "bf16_input_bytes");
  if (f32_bytes == nullptr || bf16_bytes == nullptr) return 1;
  if (f32_bytes->number_value <= 0.0 ||
      bf16_bytes->number_value * 2.0 != f32_bytes->number_value) {
    std::fprintf(stderr,
                 "simd_bench_check: bf16 probe moved %.0f operand bytes, expected exactly "
                 "half of the f32 probe's %.0f\n",
                 bf16_bytes->number_value, f32_bytes->number_value);
    return 1;
  }

  std::printf(
      "simd_bench_check: %s ok (%zu points, elementwise %.2fx, matmul %.2fx, bf16 bytes "
      "%.0f -> %.0f)\n",
      argv[1], points->array_items.size(), ew_speedup, mm_speedup, f32_bytes->number_value,
      bf16_bytes->number_value);
  return 0;
}
