// Recorded execution plans (src/plan/): replaying a recorded epoch must be
// BITWISE-equal to re-running it eagerly — across thread counts, pool on/off,
// the sequential and mega-batched explainer loops, and fusion on/off. The
// differential harness trains full mini-GNN explanations both ways and
// compares every score; the validity suite checks the structural properties
// every compiled plan must satisfy (topological step order, non-overlapping
// live arena ranges, key/shape changes forcing a re-record) over randomly
// generated tensor programs via util::proptest.

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/revelio.h"
#include "explain/batch_runner.h"
#include "explain/explainer.h"
#include "explain/gnnexplainer.h"
#include "flow/flow_scores.h"
#include "gnn/model.h"
#include "graph/graph.h"
#include "obs/metrics.h"
#include "plan/plan.h"
#include "prop/prop_util.h"
#include "tensor/ops.h"
#include "tensor/pool.h"
#include "util/parallel.h"
#include "util/proptest.h"
#include "util/rng.h"

namespace revelio::proptest {
namespace {

using tensor::Tensor;

constexpr uint64_t kSeed = 20260809;
constexpr int kFeatureDim = 4;

// Self-owning task storage (ExplanationTask holds pointers).
struct TaskData {
  graph::Graph graph;
  Tensor features;
  int target_node = -1;
  int target_class = 0;

  explain::ExplanationTask MakeTask(const gnn::GnnModel* model) const {
    explain::ExplanationTask task;
    task.model = model;
    task.graph = &graph;
    task.features = features;
    task.target_node = target_node;
    task.target_class = target_class;
    return task;
  }
};

// Ring + random chords: connected, every node has in-edges, so flow
// enumeration to any target is non-empty at any depth.
TaskData MakeNodeTaskData(uint64_t seed) {
  util::Rng rng(seed);
  TaskData data;
  const int n = 6 + rng.UniformInt(5);
  data.graph = graph::Graph(n);
  for (int v = 0; v < n; ++v) data.graph.AddUndirectedEdge(v, (v + 1) % n);
  for (int i = 0; i < 4; ++i) {
    const int u = rng.UniformInt(n);
    const int v = rng.UniformInt(n);
    if (u != v && !data.graph.HasEdge(u, v)) data.graph.AddEdge(u, v);
  }
  data.features = Tensor::Uniform(n, kFeatureDim, -1.0f, 1.0f, &rng);
  data.target_node = rng.UniformInt(n);
  data.target_class = rng.UniformInt(2);
  return data;
}

gnn::GnnConfig ModelConfig() {
  gnn::GnnConfig config;
  config.arch = gnn::GnnArch::kGcn;
  config.task = gnn::TaskType::kNodeClassification;
  config.input_dim = kFeatureDim;
  config.hidden_dim = 6;
  config.num_classes = 2;
  config.num_layers = 2;
  config.seed = kSeed + 1;
  return config;
}

core::RevelioOptions RevelioTestOptions() {
  core::RevelioOptions options;
  options.epochs = 6;
  options.seed = kSeed + 2;
  return options;
}

explain::GnnExplainerOptions GnnExplainerTestOptions() {
  explain::GnnExplainerOptions options;
  options.epochs = 6;
  options.seed = kSeed + 3;
  return options;
}

void ExpectFlowExplanationsBitwiseEqual(
    const core::RevelioExplainer::FlowExplanation& expected,
    const core::RevelioExplainer::FlowExplanation& actual, const std::string& context) {
  EXPECT_EQ(expected.flow_scores, actual.flow_scores) << context << ": flow scores differ";
  EXPECT_EQ(expected.edge_scores, actual.edge_scores) << context << ": edge scores differ";
  EXPECT_EQ(expected.layer_edge_masks, actual.layer_edge_masks)
      << context << ": layer edge masks differ";
  EXPECT_EQ(expected.layer_weights, actual.layer_weights)
      << context << ": layer weights differ";
  EXPECT_EQ(flow::TopKFlows(expected.flow_scores, 10), flow::TopKFlows(actual.flow_scores, 10))
      << context << ": top-k flow rankings differ";
}

uint64_t ReplayCount() {
  return obs::MetricsRegistry::Global().GetCounter("plan.replays")->Total();
}

class PlanEquivalenceTest : public ::testing::Test {
 protected:
  // Metrics are off by default; the vacuity guards below read plan.* counters.
  void SetUp() override { obs::SetEnabled(true); }

  void TearDown() override {
    obs::SetEnabled(false);
    util::SetNumThreads(1);
    tensor::SetPoolEnabled(true);
    explain::SetMegaBatchEnabled(true);
    explain::SetMegaBatchSize(32);
    plan::SetExecPlanEnabled(true);
    plan::SetPlanFuseEnabled(true);
  }
};

// ---------------------------------------------------------------------------
// Differential harness: plan replay vs eager, explainer level
// ---------------------------------------------------------------------------

// The headline contract: for seeded random mini-GNN tasks, the plan-replay
// loop equals the eager loop bitwise across threads {1, 2, 7, 16}, pool
// on/off, and the sequential vs mega-batched path.
TEST_F(PlanEquivalenceTest, RevelioReplayEqualsEagerAcrossThreadsPoolAndBatch) {
  util::SetNumThreads(1);
  tensor::SetPoolEnabled(true);
  gnn::GnnModel model(ModelConfig());
  model.Freeze();
  std::vector<TaskData> data;
  std::vector<explain::ExplanationTask> tasks;
  for (int i = 0; i < 5; ++i) data.push_back(MakeNodeTaskData(kSeed + 10 + i));
  for (const TaskData& d : data) tasks.push_back(d.MakeTask(&model));
  std::vector<const explain::ExplanationTask*> group;
  for (const auto& task : tasks) group.push_back(&task);

  // Eager reference: plans disabled, 1 thread, pool on.
  plan::SetExecPlanEnabled(false);
  core::RevelioExplainer explainer(RevelioTestOptions());
  std::vector<core::RevelioExplainer::FlowExplanation> reference;
  for (const auto& task : tasks) {
    reference.push_back(explainer.ExplainFlows(task, explain::Objective::kFactual));
    ASSERT_FALSE(reference.back().flow_scores.empty());
  }

  plan::SetExecPlanEnabled(true);
  const uint64_t replays_before = ReplayCount();
  for (const int threads : {1, 2, 7, 16}) {
    for (const bool pool_on : {true, false}) {
      util::SetNumThreads(threads);
      tensor::SetPoolEnabled(pool_on);
      const std::string context =
          "threads=" + std::to_string(threads) + " pool=" + (pool_on ? "on" : "off");
      // Megabatch off: the sequential per-task loop, plan-replayed.
      for (size_t i = 0; i < tasks.size(); ++i) {
        ExpectFlowExplanationsBitwiseEqual(
            reference[i], explainer.ExplainFlows(tasks[i], explain::Objective::kFactual),
            context + " megabatch=off instance=" + std::to_string(i));
      }
      // Megabatch on: the fused loop, plan-replayed.
      const std::vector<core::RevelioExplainer::FlowExplanation> batched =
          explainer.ExplainFlowsBatch(group, explain::Objective::kFactual);
      ASSERT_EQ(batched.size(), group.size());
      for (size_t i = 0; i < batched.size(); ++i) {
        ExpectFlowExplanationsBitwiseEqual(
            reference[i], batched[i],
            context + " megabatch=on instance=" + std::to_string(i));
      }
    }
  }
  // Guard against vacuity: the grid above must actually have replayed plans.
  EXPECT_GT(ReplayCount(), replays_before) << "plan path never replayed";
}

TEST_F(PlanEquivalenceTest, GnnExplainerReplayEqualsEagerAcrossThreadsPoolAndBatch) {
  util::SetNumThreads(1);
  tensor::SetPoolEnabled(true);
  gnn::GnnModel model(ModelConfig());
  model.Freeze();
  std::vector<TaskData> data;
  std::vector<explain::ExplanationTask> tasks;
  for (int i = 0; i < 5; ++i) data.push_back(MakeNodeTaskData(kSeed + 40 + i));
  for (const TaskData& d : data) tasks.push_back(d.MakeTask(&model));
  std::vector<const explain::ExplanationTask*> group;
  for (const auto& task : tasks) group.push_back(&task);

  plan::SetExecPlanEnabled(false);
  explain::GnnExplainerMethod explainer(GnnExplainerTestOptions());
  std::vector<explain::Explanation> reference;
  for (const auto& task : tasks) {
    reference.push_back(explainer.Explain(task, explain::Objective::kFactual));
  }

  plan::SetExecPlanEnabled(true);
  const uint64_t replays_before = ReplayCount();
  for (const int threads : {1, 2, 7, 16}) {
    for (const bool pool_on : {true, false}) {
      util::SetNumThreads(threads);
      tensor::SetPoolEnabled(pool_on);
      for (size_t i = 0; i < tasks.size(); ++i) {
        EXPECT_EQ(reference[i].edge_scores,
                  explainer.Explain(tasks[i], explain::Objective::kFactual).edge_scores)
            << "threads=" << threads << " pool=" << (pool_on ? "on" : "off")
            << " megabatch=off instance=" << i;
      }
      const std::vector<explain::Explanation> batched =
          explainer.ExplainBatch(group, explain::Objective::kFactual);
      ASSERT_EQ(batched.size(), group.size());
      for (size_t i = 0; i < batched.size(); ++i) {
        EXPECT_EQ(reference[i].edge_scores, batched[i].edge_scores)
            << "threads=" << threads << " pool=" << (pool_on ? "on" : "off")
            << " megabatch=on instance=" << i;
      }
    }
  }
  EXPECT_GT(ReplayCount(), replays_before) << "plan path never replayed";
}

// Fusion is bitwise-neutral: replays with REVELIO_PLAN_FUSE on and off both
// equal the eager loop (counterfactual objective for variety).
TEST_F(PlanEquivalenceTest, FusionOnOffBothEqualEager) {
  util::SetNumThreads(1);
  tensor::SetPoolEnabled(true);
  gnn::GnnModel model(ModelConfig());
  model.Freeze();
  const TaskData data = MakeNodeTaskData(kSeed + 70);
  const explain::ExplanationTask task = data.MakeTask(&model);
  core::RevelioExplainer explainer(RevelioTestOptions());

  plan::SetExecPlanEnabled(false);
  const core::RevelioExplainer::FlowExplanation reference =
      explainer.ExplainFlows(task, explain::Objective::kCounterfactual);

  plan::SetExecPlanEnabled(true);
  for (const bool fuse : {true, false}) {
    plan::SetPlanFuseEnabled(fuse);
    ExpectFlowExplanationsBitwiseEqual(
        reference, explainer.ExplainFlows(task, explain::Objective::kCounterfactual),
        std::string("fuse=") + (fuse ? "on" : "off"));
  }
}

// Property with shrinking over random graph families: GNNExplainer with
// plans on equals plans off bitwise on every graph that has a mask to learn.
TEST_F(PlanEquivalenceTest, ReplayEqualsEagerOnRandomGraphs) {
  util::SetNumThreads(1);
  const util::Domain<GraphSpec> domain = GraphDomain(3, 8, /*allow_empty=*/false);
  const util::CheckResult result = util::ForAll<GraphSpec>(
      "plan_replay_equals_eager", domain,
      [](const GraphSpec& spec) -> std::string {
        const graph::Graph graph = MakeGraph(spec);
        if (graph.num_edges() == 0) return "";  // no mask to learn
        util::Rng rng(kSeed + 100);
        TaskData data;
        data.graph = graph;
        data.features = Tensor::Uniform(graph.num_nodes(), kFeatureDim, -1.0f, 1.0f, &rng);
        data.target_node = rng.UniformInt(graph.num_nodes());
        data.target_class = rng.UniformInt(2);
        gnn::GnnModel model(ModelConfig());
        model.Freeze();
        const explain::ExplanationTask task = data.MakeTask(&model);
        explain::GnnExplainerMethod explainer(GnnExplainerTestOptions());

        plan::SetExecPlanEnabled(false);
        const explain::Explanation eager = explainer.Explain(task, explain::Objective::kFactual);
        plan::SetExecPlanEnabled(true);
        const explain::Explanation replayed =
            explainer.Explain(task, explain::Objective::kFactual);
        if (replayed.edge_scores != eager.edge_scores) {
          return "plan replay diverged from eager";
        }
        return "";
      },
      util::DefaultPropConfig(25, kSeed + 101));
  EXPECT_TRUE(result.ok) << result.report;
}

// ---------------------------------------------------------------------------
// Plan validity properties (PlanSession introspection)
// ---------------------------------------------------------------------------

// A small random tensor program: `branches` independent chains of `depth`
// elementwise steps over a (rows x cols) parameter, mixed through a MatMul,
// reduced to a scalar. Gives plans with real fusion runs, multiple levels,
// and independent same-level subgraphs.
struct ProgramSpec {
  int rows = 2;
  int cols = 2;
  int depth = 1;
  int branches = 1;
  uint64_t seed = 0;
};

std::string DescribeProgram(const ProgramSpec& spec) {
  std::ostringstream out;
  out << "program rows=" << spec.rows << " cols=" << spec.cols << " depth=" << spec.depth
      << " branches=" << spec.branches << " seed=" << spec.seed;
  return out.str();
}

util::Domain<ProgramSpec> ProgramDomain() {
  util::Domain<ProgramSpec> domain;
  domain.generate = [](util::Rng& rng) {
    ProgramSpec spec;
    spec.rows = 1 + rng.UniformInt(6);
    spec.cols = 1 + rng.UniformInt(4);
    spec.depth = 1 + rng.UniformInt(4);
    spec.branches = 1 + rng.UniformInt(3);
    spec.seed = rng.NextUint64();
    return spec;
  };
  domain.shrink = [](const ProgramSpec& spec) {
    std::vector<ProgramSpec> out;
    auto with = [&spec](auto mutate) {
      ProgramSpec smaller = spec;
      mutate(smaller);
      return smaller;
    };
    if (spec.depth > 1) out.push_back(with([](ProgramSpec& s) { --s.depth; }));
    if (spec.branches > 1) out.push_back(with([](ProgramSpec& s) { --s.branches; }));
    if (spec.rows > 1) out.push_back(with([](ProgramSpec& s) { --s.rows; }));
    if (spec.cols > 1) out.push_back(with([](ProgramSpec& s) { --s.cols; }));
    return out;
  };
  domain.describe = DescribeProgram;
  return domain;
}

// Records spec's program into `session`, returning the scalar loss. `param`
// must be a (rows x cols) leaf with requires_grad.
Tensor RecordProgram(const ProgramSpec& spec, const Tensor& param,
                     plan::PlanSession* session) {
  util::Rng rng(spec.seed);
  const Tensor mixer =
      Tensor::Uniform(spec.cols, spec.rows, -1.0f, 1.0f, &rng);  // constant
  plan::PlanSession::RecordScope record(session);
  Tensor total;
  for (int b = 0; b < spec.branches; ++b) {
    Tensor h = tensor::AddScalar(param, 0.1f * static_cast<float>(b + 1));
    for (int d = 0; d < spec.depth; ++d) {
      h = tensor::Tanh(tensor::MulScalar(h, 0.7f));
    }
    Tensor mixed = tensor::Sum(tensor::MatMul(h, mixer));
    total = total.defined() ? tensor::Add(total, mixed) : mixed;
  }
  return total;
}

// Structural validity: every compiled plan's steps partition the tape in
// order, levels are topologically consistent, and the static arena never
// byte-overlaps two live-overlapping tensors.
TEST_F(PlanEquivalenceTest, CompiledPlansAreTopologicalWithValidArena) {
  util::SetNumThreads(1);
  const util::CheckResult result = util::ForAll<ProgramSpec>(
      "plan_validity", ProgramDomain(),
      [](const ProgramSpec& spec) -> std::string {
        plan::PlanSession session;
        util::Rng param_rng(spec.seed ^ 0x9e3779b9);
        Tensor param =
            Tensor::Uniform(spec.rows, spec.cols, -1.0f, 1.0f, &param_rng).WithRequiresGrad();
        Tensor loss = RecordProgram(spec, param, &session);
        loss.Backward();
        session.Seal(loss, plan::PlanKey{{spec.seed}});

        const plan::Plan* plan = session.plan();
        if (plan == nullptr) return "no plan sealed";
        const auto& ops = session.tape().ops;

        // Steps partition [0, num_ops) in tape order.
        int next_op = 0;
        for (const auto& step : plan->steps()) {
          if (step.op_indices.empty()) return "empty step";
          for (int op : step.op_indices) {
            if (op != next_op) return "steps do not partition the tape in order";
            ++next_op;
          }
          if (step.fused && step.op_indices.size() < 2) return "fused step with one op";
        }
        if (next_op != static_cast<int>(ops.size())) return "steps missed tape ops";

        // Topological levels: every recorded input's producer sits at a
        // strictly lower level.
        std::vector<int> producer_level(ops.size(), -1);
        for (const auto& step : plan->steps()) {
          for (int op : step.op_indices) producer_level[op] = step.level;
        }
        for (const auto& step : plan->steps()) {
          for (int op : step.op_indices) {
            for (const auto& input : ops[op].inputs) {
              for (size_t other = 0; other < ops.size(); ++other) {
                const bool in_step = producer_level[other] == step.level &&
                                     std::find(step.op_indices.begin(), step.op_indices.end(),
                                               static_cast<int>(other)) != step.op_indices.end();
                if (ops[other].out.get() == input.get() && !in_step &&
                    producer_level[other] >= step.level) {
                  return "producer not at a lower level";
                }
              }
            }
          }
        }

        // Arena: liveness-sound, in-bounds, no live byte overlap.
        if (!plan::ValidateMemoryPlan(plan->memory())) return "arena validation failed";
        if (plan->memory().slots.size() != ops.size()) return "arena slot count mismatch";
        return "";
      },
      util::DefaultPropConfig(30, kSeed + 200));
  EXPECT_TRUE(result.ok) << result.report;
}

// Replay correctness at the session level: after mutating the leaf the way an
// optimizer would, Replay() recomputes values and gradients bitwise-equal to
// a from-scratch eager build, at several thread counts, with zero pool
// acquisitions during the replay.
TEST_F(PlanEquivalenceTest, SessionReplayMatchesEagerRebuildBitwise) {
  const util::CheckResult result = util::ForAll<ProgramSpec>(
      "plan_session_replay_bitwise", ProgramDomain(),
      [](const ProgramSpec& spec) -> std::string {
        for (const int threads : {1, 2, 7}) {
          util::SetNumThreads(threads);
          // Two identical leaves: one trained through the plan session, one
          // through fresh eager graphs.
          util::Rng planned_rng(spec.seed ^ 0x51ed);
          util::Rng eager_rng(spec.seed ^ 0x51ed);
          Tensor planned_param =
              Tensor::Uniform(spec.rows, spec.cols, -1.0f, 1.0f, &planned_rng).WithRequiresGrad();
          Tensor eager_param =
              Tensor::Uniform(spec.rows, spec.cols, -1.0f, 1.0f, &eager_rng).WithRequiresGrad();
          plan::PlanSession session;
          Tensor planned_loss;
          for (int epoch = 0; epoch < 4; ++epoch) {
            const bool replayed = session.Replay(plan::PlanKey{{spec.seed}});
            if (epoch == 0 && replayed) return "replayed before any seal";
            if (epoch > 0 && !replayed) return "sealed plan failed to replay";
            if (!replayed) {
              planned_loss = RecordProgram(spec, planned_param, &session);
              planned_loss.Backward();
              session.Seal(planned_loss, plan::PlanKey{{spec.seed}});
            }
            Tensor eager_loss = RecordProgram(spec, eager_param, nullptr);
            eager_loss.Backward();
            if (planned_loss.At(0, 0) != eager_loss.At(0, 0)) {
              return "loss diverged at epoch " + std::to_string(epoch) + " threads " +
                     std::to_string(threads);
            }
            for (int r = 0; r < spec.rows; ++r) {
              for (int c = 0; c < spec.cols; ++c) {
                if (planned_param.GradAt(r, c) != eager_param.GradAt(r, c)) {
                  return "gradient diverged at epoch " + std::to_string(epoch);
                }
              }
            }
            // SGD-style update on both copies (identical float math), plus a
            // grad reset for the eager copy (Replay zeroes its own grads).
            for (int r = 0; r < spec.rows; ++r) {
              for (int c = 0; c < spec.cols; ++c) {
                const float step = 0.05f * planned_param.GradAt(r, c);
                (*planned_param.mutable_values())[r * spec.cols + c] -= step;
                (*eager_param.mutable_values())[r * spec.cols + c] -= step;
              }
            }
            planned_param.ZeroGrad();
            eager_param.ZeroGrad();
            eager_loss.ReleaseTape();
          }
        }
        util::SetNumThreads(1);
        return "";
      },
      util::DefaultPropConfig(15, kSeed + 300));
  EXPECT_TRUE(result.ok) << result.report;
}

// Key and global-version changes force a re-record; a matching key replays
// with zero pool acquisitions.
TEST_F(PlanEquivalenceTest, ShapeChangeAndVersionBumpForceReRecord) {
  util::SetNumThreads(1);
  tensor::SetPoolEnabled(true);
  ProgramSpec spec;
  spec.rows = 4;
  spec.cols = 3;
  spec.depth = 3;
  spec.branches = 2;
  spec.seed = kSeed + 400;

  plan::PlanSession session;
  util::Rng param_rng(spec.seed);
  Tensor param =
      Tensor::Uniform(spec.rows, spec.cols, -1.0f, 1.0f, &param_rng).WithRequiresGrad();
  Tensor loss = RecordProgram(spec, param, &session);
  loss.Backward();
  session.Seal(loss, plan::PlanKey{{spec.seed, 4, 3}});
  ASSERT_TRUE(session.sealed());

  // Matching key: replays, and touches the pool zero times.
  tensor::TensorPool* pool = tensor::TensorPool::ThreadLocal();
  ASSERT_NE(pool, nullptr);
  const uint64_t acquires_before = pool->stats().hits + pool->stats().misses;
  EXPECT_TRUE(session.Replay(plan::PlanKey{{spec.seed, 4, 3}}));
  EXPECT_EQ(pool->stats().hits + pool->stats().misses, acquires_before)
      << "replay acquired tensors from the pool";

  // Shape change (different key): replay refuses and drops the plan.
  EXPECT_FALSE(session.Replay(plan::PlanKey{{spec.seed, 5, 3}}));
  EXPECT_FALSE(session.sealed());

  // Re-record, then a global version bump also forces a re-record.
  loss = RecordProgram(spec, param, &session);
  loss.Backward();
  session.Seal(loss, plan::PlanKey{{spec.seed, 4, 3}});
  EXPECT_TRUE(session.Replay(plan::PlanKey{{spec.seed, 4, 3}}));
  plan::BumpGlobalPlanVersion();
  EXPECT_FALSE(session.Replay(plan::PlanKey{{spec.seed, 4, 3}}));
  EXPECT_FALSE(session.sealed());
}

// A graph mutation between explanations changes the structure version and
// therefore the plan key — the second run must re-record against the new
// topology, not replay the stale plan. Mirrors the PR 4 dirty-heap case at
// the plan layer.
TEST_F(PlanEquivalenceTest, GraphMutationBetweenRunsReRecords) {
  util::SetNumThreads(1);
  gnn::GnnModel model(ModelConfig());
  model.Freeze();
  TaskData data = MakeNodeTaskData(kSeed + 500);
  explain::GnnExplainerMethod explainer(GnnExplainerTestOptions());

  plan::SetExecPlanEnabled(true);
  const explain::ExplanationTask before = data.MakeTask(&model);
  const explain::Explanation first = explainer.Explain(before, explain::Objective::kFactual);

  // Mutate: add one edge. Plans keyed on the old structure version must not
  // survive; the new run must match a fully eager run on the mutated graph.
  const uint64_t version_before = data.graph.structure_version();
  int u = 0, v = 2;
  while (data.graph.HasEdge(u, v)) v = (v + 1) % data.graph.num_nodes();
  data.graph.AddEdge(u, v);
  EXPECT_NE(data.graph.structure_version(), version_before);

  const explain::ExplanationTask after = data.MakeTask(&model);
  const explain::Explanation mutated = explainer.Explain(after, explain::Objective::kFactual);
  plan::SetExecPlanEnabled(false);
  const explain::Explanation eager = explainer.Explain(after, explain::Objective::kFactual);
  EXPECT_EQ(mutated.edge_scores, eager.edge_scores)
      << "post-mutation plan run diverged from eager on the new topology";
  EXPECT_NE(first.edge_scores.size(), 0u);
}

}  // namespace
}  // namespace revelio::proptest
