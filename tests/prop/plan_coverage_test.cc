// Plan coverage audit (ISSUE PR 9, satellite 6): every op in the tensor op
// registry must be plan-replayable — its implementation records a tape entry
// via rec::Record/rec::RecordElementwise — or be explicitly accounted for as
// a composite that lowers to recorded ops (Neg, Mean) or as eager-only.
//
// Two layers of enforcement:
//  1. A static audit parses src/tensor/*.cc for rec::Record calls and diffs
//     the recorded-name set against RegisteredOpNames(). Adding an op to the
//     registry without a recording hook (or an explicit entry in the maps
//     below) fails here with the missing name.
//  2. A runtime differential records every op harness case from the shared
//     prop_util registry into a PlanSession, mutates the leaf values, and
//     checks that replay is bitwise-equal to an eager rebuild at the same
//     values — forward values and leaf gradients both.

#include <cstdint>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "plan/plan.h"
#include "prop_util.h"
#include "tensor/op_registry.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace revelio::proptest {
namespace {

using tensor::Tensor;

constexpr uint64_t kSeed = 20260808ULL;

// Ops implemented as compositions of other registered ops: they never record
// under their own name, but every constituent does, so they are replayable.
const std::map<std::string, std::vector<std::string>>& CompositeOps() {
  static const auto* const kComposites = new std::map<std::string, std::vector<std::string>>{
      {"Neg", {"MulScalar"}},
      {"Mean", {"Sum", "MulScalar"}},
  };
  return *kComposites;
}

// Ops deliberately excluded from plan replay. Currently empty: everything in
// the registry replays. An op added here must also be rejected (or ignored)
// by the recording hooks, and the exclusion documented in DESIGN.md §12.
const std::set<std::string>& EagerOnlyOps() {
  static const auto* const kEagerOnly = new std::set<std::string>{};
  return *kEagerOnly;
}

// Collects the op names passed to rec::Record / rec::RecordElementwise in
// the tensor op implementation files.
void RecordedOpNamesFromSources(std::set<std::string>* names) {
  const std::vector<std::string> files = {"ops.cc", "ops_index.cc", "ops_spmm.cc"};
  for (const std::string& file : files) {
    const std::string path = std::string(REVELIO_SOURCE_DIR) + "/src/tensor/" + file;
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << "cannot open " << path;
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    for (const std::string& call : {std::string("rec::Record("), std::string("rec::RecordElementwise(")}) {
      size_t pos = 0;
      while ((pos = text.find(call, pos)) != std::string::npos) {
        pos += call.size();
        // Skip whitespace/newlines up to the opening quote of the name.
        while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\n')) ++pos;
        ASSERT_LT(pos, text.size());
        ASSERT_EQ(text[pos], '"') << "unparsable " << call << " in " << file;
        const size_t end = text.find('"', pos + 1);
        ASSERT_NE(end, std::string::npos);
        names->insert(text.substr(pos + 1, end - pos - 1));
        pos = end;
      }
    }
  }
}

TEST(PlanCoverageTest, EveryRegisteredOpIsReplayableOrAccountedFor) {
  std::set<std::string> recorded;
  ASSERT_NO_FATAL_FAILURE(RecordedOpNamesFromSources(&recorded));
  ASSERT_FALSE(recorded.empty());

  // Everything recorded must be a registered op (no stray tape names).
  for (const std::string& name : recorded) {
    EXPECT_TRUE(tensor::IsRegisteredOp(name)) << "recorded but unregistered op: " << name;
  }

  for (const std::string& name : tensor::RegisteredOpNames()) {
    if (recorded.count(name) > 0) continue;
    if (EagerOnlyOps().count(name) > 0) continue;
    const auto composite = CompositeOps().find(name);
    ASSERT_NE(composite, CompositeOps().end())
        << "op '" << name << "' is registered but neither records a tape entry, nor is listed "
        << "as a composite or eager-only op — plans silently skip it";
    for (const std::string& part : composite->second) {
      EXPECT_TRUE(recorded.count(part) > 0)
          << "composite op '" << name << "' lowers to '" << part << "', which does not record";
    }
  }

  // The maps must not rot: a composite/eager-only entry for an op that now
  // records (or left the registry) is stale.
  for (const auto& [name, parts] : CompositeOps()) {
    EXPECT_TRUE(tensor::IsRegisteredOp(name)) << "stale composite entry: " << name;
    EXPECT_EQ(recorded.count(name), 0u) << "composite op '" << name << "' now records directly";
  }
  for (const std::string& name : EagerOnlyOps()) {
    EXPECT_TRUE(tensor::IsRegisteredOp(name)) << "stale eager-only entry: " << name;
    EXPECT_EQ(recorded.count(name), 0u) << "eager-only op '" << name << "' now records";
  }
}

// ---------------------------------------------------------------------------
// Runtime differential: record → mutate → replay ≡ eager rebuild, per op case.
// ---------------------------------------------------------------------------

void ExpectBitwiseEqual(const std::vector<float>& a, const std::vector<float>& b,
                        const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    uint32_t ab = 0, bb = 0;
    std::memcpy(&ab, &a[i], sizeof(ab));
    std::memcpy(&bb, &b[i], sizeof(bb));
    ASSERT_EQ(ab, bb) << what << " diverges at flat index " << i << " (" << a[i] << " vs " << b[i]
                      << ")";
  }
}

// Scale every leaf value by 1.5: preserves sign, positivity (Log inputs), and
// pairwise distinctness (SegmentMaxRows inputs), so every case stays in its
// op's valid domain while all values change.
void MutateLeaves(std::vector<Tensor>* inputs) {
  for (Tensor& t : *inputs) {
    for (float& v : *t.mutable_values()) v *= 1.5f;
  }
}

std::vector<float> LeafGrads(const std::vector<Tensor>& inputs) {
  std::vector<float> out;
  for (const Tensor& t : inputs) {
    if (!t.requires_grad()) continue;
    for (int r = 0; r < t.rows(); ++r) {
      for (int c = 0; c < t.cols(); ++c) out.push_back(t.GradAt(r, c));
    }
  }
  return out;
}

TEST(PlanCoverageTest, EveryOpCaseReplaysBitwiseEqualAfterValueMutation) {
  const std::vector<OpCase> cases = MakeOpCases(kSeed, /*include_large=*/false);
  ASSERT_FALSE(cases.empty());

  // The case registry itself must span the registry minus eager-only ops,
  // otherwise this differential proves less than it claims.
  std::set<std::string> covered;
  for (const OpCase& c : cases) covered.insert(c.op);
  for (const std::string& name : tensor::RegisteredOpNames()) {
    if (EagerOnlyOps().count(name) > 0) continue;
    EXPECT_TRUE(covered.count(name) > 0) << "no op harness case for replayable op " << name;
  }

  for (const OpCase& c : cases) {
    SCOPED_TRACE(c.op + " [" + c.variant + "]");
    const uint64_t value_seed = kSeed ^ std::hash<std::string>{}(c.op + c.variant);

    // Planned path: record one run, mutate leaves, replay.
    util::Rng rng(value_seed);
    std::vector<Tensor> inputs = c.make_inputs(rng);
    plan::PlanSession session;
    const plan::PlanKey key{{value_seed}};
    Tensor y;
    Tensor loss;
    {
      plan::PlanSession::RecordScope record(&session);
      y = c.forward(inputs);
      loss = tensor::Sum(y);
    }
    loss.Backward();
    session.Seal(loss, key);
    ASSERT_TRUE(session.sealed());

    MutateLeaves(&inputs);
    for (Tensor& t : inputs) t.ZeroGrad();
    ASSERT_TRUE(session.Replay(key));

    // Eager reference: identical leaf values, fresh graph.
    util::Rng ref_rng(value_seed);
    std::vector<Tensor> ref_inputs = c.make_inputs(ref_rng);
    MutateLeaves(&ref_inputs);
    Tensor ref_y = c.forward(ref_inputs);
    Tensor ref_loss = tensor::Sum(ref_y);
    ref_loss.Backward();

    ExpectBitwiseEqual(y.values(), ref_y.values(), "forward values");
    ExpectBitwiseEqual(loss.values(), ref_loss.values(), "loss");
    ExpectBitwiseEqual(LeafGrads(inputs), LeafGrads(ref_inputs), "leaf gradients");

    // Replay is idempotent at fixed inputs.
    const std::vector<float> first = y.values();
    for (Tensor& t : inputs) t.ZeroGrad();
    ASSERT_TRUE(session.Replay(key));
    ExpectBitwiseEqual(y.values(), first, "second replay");
    ExpectBitwiseEqual(LeafGrads(inputs), LeafGrads(ref_inputs), "second replay gradients");

    ref_loss.ReleaseTape();
  }
}

}  // namespace
}  // namespace revelio::proptest
