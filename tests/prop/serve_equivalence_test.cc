// Serving-path equivalence: pushing a workload through the explanation
// server — any worker count, any coalescing setting, the legacy fallback
// loop, any arrival interleaving across models — is a pure scheduling
// change. Every response must be BITWISE-equal (edge scores, flow scores,
// top-k flow rankings) to batch eval::ExplainAll over the same tasks: the
// same contract the mega-batch and pool suites pin for their layers.

#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "eval/runner.h"
#include "explain/explainer.h"
#include "flow/flow_scores.h"
#include "gnn/model.h"
#include "graph/graph.h"
#include "plan/plan.h"
#include "serve/model_registry.h"
#include "serve/server.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace revelio::proptest {
namespace {

using tensor::Tensor;

constexpr uint64_t kSeed = 20260808;
constexpr int kFeatureDim = 4;
constexpr int kNumTasks = 8;

// Self-owning task storage (ExplanationTask holds pointers). The server gets
// its own copy of the graph/features through ExplainRequest, which is part
// of the point: equality must hold across distinct owners.
struct TaskData {
  std::string model_name;
  graph::Graph graph;
  Tensor features;
  int target_node = -1;
  int target_class = 0;

  explain::ExplanationTask MakeTask(const gnn::GnnModel* model) const {
    explain::ExplanationTask task;
    task.model = model;
    task.graph = &graph;
    task.features = features;
    task.target_node = target_node;
    task.target_class = target_class;
    return task;
  }

  serve::ExplainRequest MakeRequest(explain::Objective objective) const {
    serve::ExplainRequest request;
    request.model = model_name;
    request.method = "Revelio";
    request.objective = objective;
    request.graph = graph;
    request.features = features;
    request.target_node = target_node;
    request.target_class = target_class;
    return request;
  }
};

// Ring + random chords: connected, every node has in-edges, so flow
// enumeration to any target is non-empty at any depth.
TaskData MakeTaskData(uint64_t seed, const std::string& model_name) {
  util::Rng rng(seed);
  TaskData data;
  data.model_name = model_name;
  const int n = 6 + rng.UniformInt(5);
  data.graph = graph::Graph(n);
  for (int v = 0; v < n; ++v) data.graph.AddUndirectedEdge(v, (v + 1) % n);
  for (int i = 0; i < 4; ++i) {
    const int u = rng.UniformInt(n);
    const int v = rng.UniformInt(n);
    if (u != v && !data.graph.HasEdge(u, v)) data.graph.AddEdge(u, v);
  }
  data.features = Tensor::Uniform(n, kFeatureDim, -1.0f, 1.0f, &rng);
  data.target_node = rng.UniformInt(n);
  data.target_class = rng.UniformInt(2);
  return data;
}

std::unique_ptr<gnn::GnnModel> MakeModel(uint64_t seed) {
  gnn::GnnConfig config;
  config.arch = gnn::GnnArch::kGcn;
  config.task = gnn::TaskType::kNodeClassification;
  config.input_dim = kFeatureDim;
  config.hidden_dim = 6;
  config.num_classes = 2;
  config.num_layers = 2;
  config.seed = seed;
  return std::make_unique<gnn::GnnModel>(config);
}

eval::RunnerConfig ExplainerConfig() {
  eval::RunnerConfig config;
  config.seed = kSeed + 2;
  config.explainer_epochs = 6;
  return config;
}

void ExpectBitwiseEqual(const explain::Explanation& expected,
                        const explain::Explanation& actual, const std::string& context) {
  EXPECT_EQ(expected.edge_scores, actual.edge_scores) << context << ": edge scores differ";
  EXPECT_EQ(expected.has_flow_scores, actual.has_flow_scores) << context;
  EXPECT_EQ(expected.flow_scores, actual.flow_scores) << context << ": flow scores differ";
  if (expected.has_flow_scores) {
    EXPECT_EQ(flow::TopKFlows(expected.flow_scores, 10),
              flow::TopKFlows(actual.flow_scores, 10))
        << context << ": top-k flow rankings differ";
  }
}

class ServeEquivalenceTest : public ::testing::Test {
 protected:
  ServeEquivalenceTest() {
    EXPECT_TRUE(registry_.Register("m1", MakeModel(kSeed + 10)).ok());
    EXPECT_TRUE(registry_.Register("m2", MakeModel(kSeed + 11)).ok());
    // Interleave the two resident models so coalescing sees genuine key
    // boundaries mid-stream, not one homogeneous run.
    for (int i = 0; i < kNumTasks; ++i) {
      tasks_.push_back(MakeTaskData(kSeed + 100 + i, i % 3 == 2 ? "m2" : "m1"));
    }
  }

  std::vector<explain::Explanation> Reference(explain::Objective objective) {
    std::unique_ptr<explain::Explainer> explainer =
        eval::MakeExplainer("Revelio", ExplainerConfig());
    std::vector<explain::ExplanationTask> batch;
    batch.reserve(tasks_.size());
    for (const TaskData& data : tasks_) {
      batch.push_back(data.MakeTask(registry_.Lookup(data.model_name)));
    }
    return eval::ExplainAll(explainer.get(), batch, objective);
  }

  // Serves every task through a fresh server with the given scheduling
  // configuration and compares each response to the reference, index by
  // index.
  void RunConfiguration(int workers, bool coalesce, bool legacy,
                        explain::Objective objective,
                        const std::vector<explain::Explanation>& reference,
                        const std::string& context) {
    serve::ServeOptions options;
    options.queue_capacity = tasks_.size();
    options.num_workers = workers > 0 ? workers : 1;
    options.coalesce = coalesce;
    options.legacy_loop = legacy;
    serve::ExplanationServer server(&registry_, options);
    server.RegisterExplainer("Revelio", eval::MakeExplainer("Revelio", ExplainerConfig()));
    if (workers > 0) server.Start();

    std::vector<std::future<serve::ExplainResponse>> futures;
    for (const TaskData& data : tasks_) {
      auto submitted = server.Submit(data.MakeRequest(objective));
      ASSERT_TRUE(submitted.ok()) << context << ": " << submitted.status().ToString();
      futures.push_back(std::move(submitted).value());
    }
    server.Shutdown(serve::ExplanationServer::DrainMode::kDrain);

    for (size_t i = 0; i < futures.size(); ++i) {
      serve::ExplainResponse response = futures[i].get();
      ASSERT_TRUE(response.status.ok())
          << context << " task " << i << ": " << response.status.ToString();
      ExpectBitwiseEqual(reference[i], response.explanation,
                         context + " task " + std::to_string(i));
    }
    const serve::ServerStats stats = server.stats();
    EXPECT_EQ(stats.completed, tasks_.size()) << context;
    EXPECT_EQ(stats.timed_out + stats.cancelled + stats.rejected_full +
                  stats.rejected_invalid + stats.rejected_shutdown,
              0u)
        << context;
  }

  serve::ModelRegistry registry_;
  std::vector<TaskData> tasks_;
};

TEST_F(ServeEquivalenceTest, ServedResultsMatchBatchExplainAllBitwise) {
  const std::vector<explain::Explanation> reference =
      Reference(explain::Objective::kFactual);
  for (const explain::Explanation& expected : reference) {
    ASSERT_TRUE(expected.status.ok());
    ASSERT_FALSE(expected.edge_scores.empty());
  }
  // Synchronous drain (no workers), with and without coalescing.
  RunConfiguration(0, true, false, explain::Objective::kFactual, reference,
                   "sync+coalesce");
  RunConfiguration(0, false, false, explain::Objective::kFactual, reference,
                   "sync");
  // Real worker threads racing over the admission queue.
  RunConfiguration(2, true, false, explain::Objective::kFactual, reference,
                   "workers=2+coalesce");
  RunConfiguration(2, false, false, explain::Objective::kFactual, reference,
                   "workers=2");
  // Legacy fallback: every request through sequential eval::ExplainAll.
  RunConfiguration(1, true, true, explain::Objective::kFactual, reference,
                   "legacy");
}

TEST_F(ServeEquivalenceTest, CounterfactualObjectiveMatchesToo) {
  const std::vector<explain::Explanation> reference =
      Reference(explain::Objective::kCounterfactual);
  RunConfiguration(2, true, false, explain::Objective::kCounterfactual, reference,
                   "cf workers=2+coalesce");
}

// serve × plan (ISSUE PR 9, satellite 3): the recorded-execution-plan path
// is invisible to clients. With REVELIO_EXEC_PLAN on and off, every served
// response is bitwise-equal to the same eager batch reference, across the
// sync drain, racing workers, and coalescing.
TEST_F(ServeEquivalenceTest, ExecPlanOnAndOffServeBitwiseEqualResponses) {
  plan::SetExecPlanEnabled(false);
  const std::vector<explain::Explanation> reference =
      Reference(explain::Objective::kFactual);
  for (const bool plan_on : {true, false}) {
    plan::SetExecPlanEnabled(plan_on);
    const std::string context = std::string("exec_plan=") + (plan_on ? "on" : "off");
    RunConfiguration(0, true, false, explain::Objective::kFactual, reference,
                     context + " sync+coalesce");
    RunConfiguration(2, false, false, explain::Objective::kFactual, reference,
                     context + " workers=2");
  }
  plan::SetExecPlanEnabled(true);
}

}  // namespace
}  // namespace revelio::proptest
